"""The repro.api façade: config validation, Engine parity, report
schema, unified registry (DESIGN.md §10).

The load-bearing contract: on the same :class:`SolverConfig`,
``Engine.solve`` is bit-identical to
:func:`repro.core.pipeline.solve_allocation` and ``Engine.solve_mpc``
to :func:`repro.core.mpc_driver.solve_allocation_mpc` — the façade
changes how solves are addressed, never what they compute.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import registry
from repro.api import (
    CONFIG_SCHEMA,
    AllocationReport,
    Engine,
    SolverConfig,
)
from repro.core.mpc_driver import solve_allocation_mpc
from repro.core.pipeline import solve_allocation
from repro.graphs.generators import union_of_forests
from repro.kernels import use_backend


@pytest.fixture
def instance():
    return union_of_forests(60, 45, 3, capacity=2, seed=2)


@pytest.fixture
def small_instance():
    return union_of_forests(20, 16, 2, capacity=2, seed=1)


# ----------------------------------------------------------------------
# SolverConfig validation
# ----------------------------------------------------------------------

def test_config_defaults_match_historical_entry_points():
    config = SolverConfig()
    assert config.epsilon == 0.2
    assert config.mode == "simulate"
    assert config.repair and config.boost
    assert config.backend is None and config.substrate is None


def test_config_unknown_backend_lists_choices():
    with pytest.raises(ValueError, match=r"unknown kernel backend 'nope'"):
        SolverConfig(backend="nope")
    with pytest.raises(
        ValueError, match=r"available: \['auto', 'native', 'optimized', 'reference'\]"
    ):
        SolverConfig(backend="nope")


def test_config_unknown_substrate_lists_choices():
    with pytest.raises(ValueError, match=r"unknown MPC substrate 'nope'"):
        SolverConfig(substrate="nope")
    with pytest.raises(ValueError, match=r"available: \['columnar', 'object'\]"):
        SolverConfig(substrate="nope")


def test_config_unknown_stage_lists_choices():
    with pytest.raises(ValueError, match=r"unknown pipeline stage 'polish'"):
        SolverConfig(stages=("fractional", "polish"))
    with pytest.raises(
        ValueError, match=r"available: \['boost', 'fractional', 'repair', 'rounding'\]"
    ):
        SolverConfig(stages=("polish",))


@pytest.mark.parametrize(
    "bad",
    [
        {"epsilon": 0.9},
        {"epsilon": -0.1},
        {"mode": "psychic"},
        {"boost_mode": "harder"},
        {"alpha": 1.5},
        {"seed": True},
        {"seed": "zero"},
        {"rounding_copies": 0},
        {"lam": 0},
        {"max_workers": 0},
        {"stages": "rounding"},  # a string is not a sequence of names
    ],
)
def test_config_rejects_bad_fields(bad):
    with pytest.raises(ValueError):
        SolverConfig(**bad)


def test_config_json_round_trip():
    config = SolverConfig(
        epsilon=0.15,
        backend="reference",
        substrate="object",
        mode="faithful",
        seed=7,
        stages=("fractional", "rounding", "repair"),
        repair=False,
        boost=False,
        rounding_copies=3,
        lam=4,
        alpha=0.6,
        max_workers=2,
    )
    assert SolverConfig.from_json(config.to_json()) == config
    payload = config.to_dict()
    assert payload["schema"] == CONFIG_SCHEMA
    assert payload["stages"] == ["fractional", "rounding", "repair"]
    assert SolverConfig.from_dict(payload) == config


def test_config_from_dict_rejects_wrong_schema_and_unknown_fields():
    with pytest.raises(ValueError, match="unsupported SolverConfig schema"):
        SolverConfig.from_dict({"schema": "repro.api/SolverConfig/v999"})
    with pytest.raises(ValueError, match="unknown SolverConfig fields"):
        SolverConfig.from_dict({"schema": CONFIG_SCHEMA, "epsilonn": 0.1})


def test_config_replace_revalidates():
    config = SolverConfig()
    assert config.replace(epsilon=0.1).epsilon == 0.1
    with pytest.raises(ValueError):
        config.replace(backend="nope")


# ----------------------------------------------------------------------
# Engine.solve / Engine.solve_mpc bit-parity
# ----------------------------------------------------------------------

def test_engine_solve_bit_identical_to_solve_allocation(instance):
    config = SolverConfig(epsilon=0.2, boost=False, seed=5)
    with Engine(config) as engine:
        report = engine.solve(instance)
    direct = solve_allocation(instance, 0.2, seed=5, boost=False)
    assert np.array_equal(report.edge_mask, direct.edge_mask)
    assert report.summary() == direct.summary()
    assert report.meta == direct.meta
    assert report.size == direct.size
    assert report.certificate == direct.mpc.certificate


def test_engine_solve_full_pipeline_parity(instance):
    with Engine(seed=3) as engine:
        report = engine.solve(instance)
    direct = solve_allocation(instance, 0.2, seed=3)
    assert np.array_equal(report.edge_mask, direct.edge_mask)
    assert report.summary() == direct.summary()


def test_engine_solve_parity_under_reference_backend(instance):
    with Engine(backend="reference", boost=False, seed=9) as engine:
        report = engine.solve(instance)
    with use_backend("reference"):
        direct = solve_allocation(instance, 0.2, seed=9, boost=False)
    assert np.array_equal(report.edge_mask, direct.edge_mask)
    assert report.summary() == direct.summary()


def test_engine_solve_explicit_stage_names_parity(instance):
    config = SolverConfig(stages=("fractional", "rounding", "repair"), seed=4)
    report = Engine(config).solve(instance)
    direct = solve_allocation(instance, 0.2, seed=4, boost=False)
    assert np.array_equal(report.edge_mask, direct.edge_mask)
    assert [r.stage for r in report.stage_records] == [
        "fractional", "rounding", "repair",
    ]


def test_engine_solve_mpc_parity(instance):
    config = SolverConfig(seed=5)
    report = Engine(config).solve_mpc(instance)
    direct = solve_allocation_mpc(instance, 0.2, seed=5)
    assert np.array_equal(report.allocation.x, direct.allocation.x)
    assert report.certificate == direct.certificate
    assert report.round_ledger.by_category == direct.ledger.by_category
    assert report.local_rounds == direct.local_rounds
    assert report.mpc_rounds == direct.mpc_rounds


def test_engine_solve_mpc_faithful_parity(small_instance):
    config = SolverConfig(mode="faithful", substrate="object", lam=2, seed=7)
    report = Engine(config).solve_mpc(small_instance, sample_budget=6,
                                      space_slack=512.0)
    direct = solve_allocation_mpc(
        small_instance, 0.2, lam=2, mode="faithful", substrate="object",
        seed=7, sample_budget=6, space_slack=512.0,
    )
    assert np.array_equal(report.allocation.x, direct.allocation.x)
    assert report.round_ledger.by_category == direct.ledger.by_category
    assert report.meta["substrate"] == "object"


def test_engine_seed_policy_and_per_call_override(instance):
    engine = Engine(seed=11, boost=False)
    from_policy = engine.solve(instance)
    explicit = engine.solve(instance, seed=11)
    assert np.array_equal(from_policy.edge_mask, explicit.edge_mask)
    other = engine.solve(instance, seed=12)
    assert other.summary() != from_policy.summary() or not np.array_equal(
        other.edge_mask, from_policy.edge_mask
    )


def test_engine_per_call_config_overrides(instance):
    engine = Engine(boost=False)
    report = engine.solve(instance, seed=2, epsilon=0.1)
    direct = solve_allocation(instance, 0.1, seed=2, boost=False)
    assert np.array_equal(report.edge_mask, direct.edge_mask)
    with pytest.raises(ValueError):
        engine.solve(instance, epsilon=0.9)


def test_engine_rounding_copies_override(instance):
    report = Engine(rounding_copies=2, boost=False, seed=3).solve(instance)
    assert report.meta["rounding_copies"] == 2
    assert report.size >= 1
    assert report.certified


# ----------------------------------------------------------------------
# Engine lifecycle: scoped backend/substrate activation
# ----------------------------------------------------------------------

def test_engine_context_scopes_backend_selection():
    from repro.kernels import get_backend

    before = type(get_backend()).__name__
    with Engine(backend="reference"):
        assert type(get_backend()).__name__ == "ReferenceBackend"
    assert type(get_backend()).__name__ == before


def test_engine_context_scopes_substrate_selection():
    from repro.mpc.substrate import get_substrate

    before = get_substrate()
    other = "object" if before != "object" else "columnar"
    with Engine(substrate=other):
        assert get_substrate() == other
    assert get_substrate() == before


def test_engine_activate_close_pair():
    from repro.kernels import get_backend

    before = type(get_backend()).__name__
    engine = Engine(backend="reference").activate()
    try:
        assert type(get_backend()).__name__ == "ReferenceBackend"
        engine.activate()  # idempotent
    finally:
        engine.close()
    assert type(get_backend()).__name__ == before
    engine.close()  # second close is a no-op


def test_engine_rejects_non_config():
    with pytest.raises(TypeError, match="SolverConfig"):
        Engine({"epsilon": 0.2})


# ----------------------------------------------------------------------
# AllocationReport schema
# ----------------------------------------------------------------------

def test_report_json_round_trip_pipeline(instance):
    report = Engine(boost=False, seed=5).solve(instance)
    text = report.to_json()
    detached = AllocationReport.from_json(text)
    assert detached.detached and not report.detached
    assert detached.to_json() == text
    assert detached.kind == "pipeline"
    assert detached.size == report.size
    assert detached.summary() == report.summary()
    assert detached.certificate == report.certificate
    assert detached.stage_records == report.stage_records
    assert detached.round_ledger.by_category == report.round_ledger.by_category
    assert np.array_equal(detached.edge_mask, report.edge_mask)
    assert np.array_equal(detached.final_exponents, report.final_exponents)
    assert detached.allocation is None  # fractional x not serialized here


def test_report_json_round_trip_mpc(instance):
    report = Engine(seed=5).solve_mpc(instance)
    detached = AllocationReport.from_json(report.to_json())
    assert detached.kind == "mpc"
    assert detached.size is None and detached.edge_mask is None
    assert np.array_equal(detached.allocation.x, report.allocation.x)
    assert detached.certificate == report.certificate
    assert detached.summary()["certified"] is True


def test_report_rejects_wrong_schema_or_kind():
    with pytest.raises(ValueError, match="unsupported AllocationReport schema"):
        AllocationReport.from_dict({"schema": "nope", "kind": "pipeline"})
    with pytest.raises(ValueError, match="report kind"):
        AllocationReport.from_dict(
            {"schema": "repro.api/AllocationReport/v1", "kind": "psychic"}
        )


def test_report_from_result_dispatch(instance):
    pipeline = solve_allocation(instance, 0.2, seed=1, boost=False)
    mpc = solve_allocation_mpc(instance, 0.2, seed=1)
    assert AllocationReport.from_result(pipeline).kind == "pipeline"
    assert AllocationReport.from_result(mpc).kind == "mpc"
    with pytest.raises(TypeError):
        AllocationReport.from_result({"not": "a result"})


# ----------------------------------------------------------------------
# batch / stream / sessions through the Engine
# ----------------------------------------------------------------------

def test_engine_batch_matches_solve_stream(instance):
    from repro.serve import AllocationSession, SolveRequest, solve_stream

    requests = [SolveRequest(), SolveRequest(capacity_updates={0: 3})]
    with Engine(boost=False, seed=4) as engine:
        reports = engine.batch(instance, requests)
    session = AllocationSession(instance, epsilon=0.2, boost=False)
    direct = solve_stream(session, requests, seed=4)
    assert [r.size for r in reports] == [r.size for r in direct]
    assert [r.meta.get("warm_start") for r in reports] == [False, True]


def test_engine_batch_accepts_json_requests(instance):
    with Engine(boost=False, seed=4) as engine:
        reports = engine.batch(
            instance, [{"seed": 1}, {"epsilon": 0.15, "warm": False}]
        )
    assert len(reports) == 2
    assert all(r.certified for r in reports)


def test_engine_open_session_warm_contract(instance):
    with Engine(boost=False) as engine:
        session = engine.open_session(instance)
        cold = session.solve(seed=0)
        warm = session.solve(seed=1)
    assert not cold.meta["warm_start"]
    assert warm.meta["warm_start"]
    assert session.stats.warm_solves == 1


def test_engine_stream_over_scenario(instance):
    from repro.dynamic import SCENARIOS

    deltas = SCENARIOS["diurnal_wave"](instance, 3, seed=0)
    with Engine(boost=False, seed=2) as engine:
        outcome = engine.stream(instance, deltas)
    assert outcome.prime is not None and outcome.prime.certified
    assert len(outcome.steps) == 3
    assert all(row["certified"] for row in outcome.rows())
    assert len(outcome.reports) == 3
    # the session stays resident for further events
    assert outcome.session.stats.deltas_applied == 3


def test_engine_stream_accepts_json_deltas(instance):
    with Engine(boost=False, seed=2) as engine:
        outcome = engine.stream(
            instance,
            [{"type": "capacity_scale", "factor": 1.5}],
        )
    assert len(outcome.steps) == 1 and outcome.rows()[0]["certified"]


def test_engine_generate_and_load_instance(tmp_path):
    from repro.graphs.io import save_instance

    inst = Engine.generate_instance(
        "union_of_forests", n_left=20, n_right=16, k=2, seed=0
    )
    path = tmp_path / "inst.json"
    save_instance(inst, path)
    loaded = Engine.load_instance(path)
    assert loaded.n_left == 20 and loaded.n_right == 16
    with pytest.raises(ValueError, match="unknown family"):
        Engine.generate_instance("nope")


# ----------------------------------------------------------------------
# The unified registry
# ----------------------------------------------------------------------

def test_registry_kinds_and_availability():
    assert registry.KINDS == ("kernel_backend", "mpc_substrate", "pipeline_stage")
    assert set(registry.available("kernel_backend")) >= {"optimized", "reference"}
    assert set(registry.available("mpc_substrate")) >= {"columnar", "object"}
    assert set(registry.available("pipeline_stage")) >= {
        "fractional", "rounding", "repair", "boost",
    }


def test_registry_unknown_kind_and_name():
    with pytest.raises(ValueError, match="unknown registry kind"):
        registry.available("quantum")
    with pytest.raises(ValueError, match="unknown kernel_backend 'nope'"):
        registry.resolve("kernel_backend", "nope")


def test_registry_resolve_semantics():
    from repro.kernels import KernelBackend

    backend = registry.resolve("kernel_backend", "reference")
    assert isinstance(backend, KernelBackend)
    substrate_factory = registry.resolve("mpc_substrate", "object")
    assert callable(substrate_factory)
    stage_factory = registry.resolve("pipeline_stage", "repair")
    assert stage_factory(SolverConfig()).name == "repair"


def test_registry_custom_stage_flows_into_config(instance):
    from repro.core.pipeline import RepairStage

    registry.register(
        "pipeline_stage", "canonical_repair",
        lambda config: RepairStage(order="canonical"),
    )
    try:
        config = SolverConfig(
            stages=("fractional", "rounding", "canonical_repair"), seed=6
        )
        report = Engine(config).solve(instance)
        assert [r.stage for r in report.stage_records][-1] == "repair"
        assert report.certified
    finally:
        registry._STAGE_FACTORIES.pop("canonical_repair")


def test_registry_register_backend_visible_both_ways():
    from repro.kernels import ReferenceBackend, available_backends

    class NamedBackend(ReferenceBackend):
        name = "test_registry_backend"

    registry.register("kernel_backend", "test_registry_backend", NamedBackend)
    try:
        assert "test_registry_backend" in registry.available("kernel_backend")
        assert "test_registry_backend" in available_backends()
        config = SolverConfig(backend="test_registry_backend")
        assert config.backend == "test_registry_backend"
    finally:
        from repro.kernels import backends as backends_module

        backends_module._FACTORIES.pop("test_registry_backend")


def test_json_payloads_are_pure(instance):
    report = Engine(boost=False, seed=1).solve(instance)
    # json round trip must not lose anything to numpy scalar types
    assert json.loads(report.to_json()) == report.to_dict()
