"""CLI coverage: generate → info → solve round trips, the batch
subcommand, engine-selection flags, and failure exit codes."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.graphs.generators import union_of_forests
from repro.graphs.io import save_instance


@pytest.fixture
def instance_file(tmp_path):
    inst = union_of_forests(25, 20, 2, capacity=2, seed=1)
    path = tmp_path / "inst.json"
    save_instance(inst, path)
    return path


# ----------------------------------------------------------------------
# Round trip: generate → info → solve through a tmp directory
# ----------------------------------------------------------------------

def test_cli_round_trip(tmp_path, capsys):
    path = tmp_path / "roundtrip.json"
    assert cli_main([
        "generate", "union_of_forests", "--out", str(path),
        "--n-left", "30", "--n-right", "24", "--k", "2", "--seed", "3",
    ]) == 0
    assert path.exists()
    assert "forests(k=2)" in capsys.readouterr().out

    assert cli_main(["info", str(path)]) == 0
    info = json.loads(capsys.readouterr().out)
    assert info["n_left"] == 30
    assert info["n_right"] == 24
    assert info["degeneracy"] >= 1

    assert cli_main(["solve", str(path), "--epsilon", "0.2", "--no-boost"]) == 0
    out = json.loads(capsys.readouterr().out)
    assert out["instance"]["n_left"] == 30
    assert out["result"]["final_size"] >= 1


def test_cli_solve_with_opt(instance_file, capsys):
    assert cli_main(["solve", str(instance_file), "--epsilon", "0.2", "--with-opt"]) == 0
    out = json.loads(capsys.readouterr().out)
    assert out["result"]["final_size"] >= 1
    assert out["result"]["ratio"] >= 1.0


def test_cli_solve_deterministic(instance_file, capsys):
    assert cli_main(["solve", str(instance_file), "--seed", "5", "--no-boost"]) == 0
    first = json.loads(capsys.readouterr().out)
    assert cli_main(["solve", str(instance_file), "--seed", "5", "--no-boost"]) == 0
    second = json.loads(capsys.readouterr().out)
    assert first == second


def test_cli_generate_unknown_family(tmp_path, capsys):
    assert cli_main(["generate", "nope", "--out", str(tmp_path / "x.json")]) == 2


# ----------------------------------------------------------------------
# Failure exit codes
# ----------------------------------------------------------------------

def test_cli_solve_missing_instance(tmp_path, capsys):
    assert cli_main(["solve", str(tmp_path / "nothing.json")]) == 2
    assert "not found" in capsys.readouterr().err


def test_cli_info_malformed_instance(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text("this is not json")
    assert cli_main(["info", str(bad)]) == 2
    assert "not valid JSON" in capsys.readouterr().err


def test_cli_solve_wrong_format(tmp_path, capsys):
    bad = tmp_path / "wrong.json"
    bad.write_text(json.dumps({"format": "something-else"}))
    assert cli_main(["solve", str(bad)]) == 2
    assert "malformed instance file" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Engine-selection flags
# ----------------------------------------------------------------------

def test_cli_backend_flag(instance_file, capsys):
    from repro.kernels import get_backend, set_backend

    previous = get_backend()
    try:
        assert cli_main([
            "solve", str(instance_file), "--no-boost", "--backend", "reference",
        ]) == 0
        assert type(get_backend()).__name__ == "ReferenceBackend"
    finally:
        set_backend(previous)
    json.loads(capsys.readouterr().out)


def test_cli_substrate_flag(instance_file, capsys):
    from repro.mpc.substrate import get_substrate, set_substrate

    previous = get_substrate()
    try:
        assert cli_main([
            "solve", str(instance_file), "--no-boost", "--substrate", "object",
        ]) == 0
        assert get_substrate() == "object"
    finally:
        set_substrate(previous)
    json.loads(capsys.readouterr().out)


def test_cli_unknown_backend(instance_file, capsys):
    assert cli_main(["solve", str(instance_file), "--backend", "nope"]) == 2
    assert "unknown kernel backend" in capsys.readouterr().err


def test_cli_unknown_substrate(instance_file, capsys):
    assert cli_main(["solve", str(instance_file), "--substrate", "nope"]) == 2
    assert "unknown MPC substrate" in capsys.readouterr().err


# ----------------------------------------------------------------------
# batch subcommand
# ----------------------------------------------------------------------

def _write_requests(tmp_path, rows):
    path = tmp_path / "requests.jsonl"
    path.write_text("".join(json.dumps(row) + "\n" for row in rows))
    return path


def test_cli_batch_round_trip(tmp_path, instance_file, capsys):
    requests = _write_requests(tmp_path, [
        {"seed": 1},
        {"capacity_updates": {"0": 3}},
        {"epsilon": 0.15, "warm": False, "tag": "cold-sweep"},
    ])
    assert cli_main([
        "batch", str(requests), "--instance", str(instance_file),
        "--no-boost", "--workers", "2", "--seed", "4",
    ]) == 0
    out = capsys.readouterr()
    rows = [json.loads(line) for line in out.out.strip().splitlines()]
    assert [row["request"] for row in rows] == [0, 1, 2]
    assert all(row["final_size"] >= 1 for row in rows)
    assert rows[2]["tag"] == "cold-sweep"
    # The first request primes the resident session (cold), the rest
    # warm-start unless they opted out (request 2 has warm=false).
    assert [row["warm_start"] for row in rows] == [False, True, False]
    stats = json.loads(out.err.strip().splitlines()[-1])["session_stats"]
    assert stats["solves"] == 3  # every executed request is counted
    assert stats["warm_solves"] == 1


def test_cli_batch_deterministic(tmp_path, instance_file, capsys):
    requests = _write_requests(tmp_path, [{}, {}, {}])
    args = [
        "batch", str(requests), "--instance", str(instance_file),
        "--no-boost", "--seed", "9", "--workers", "1",
    ]
    assert cli_main(args) == 0
    first = capsys.readouterr().out
    assert cli_main(args + ["--workers", "3"]) == 0
    second = capsys.readouterr().out
    assert first == second


def test_cli_batch_malformed_request(tmp_path, instance_file, capsys):
    requests = tmp_path / "requests.jsonl"
    requests.write_text('{"seed": 1}\nnot json\n')
    assert cli_main([
        "batch", str(requests), "--instance", str(instance_file),
    ]) == 2
    assert "line 2" in capsys.readouterr().err


def test_cli_batch_line_numbers_count_blank_lines(tmp_path, instance_file, capsys):
    requests = tmp_path / "requests.jsonl"
    requests.write_text('\n{"seed": 1}\n\nnot json\n')
    assert cli_main([
        "batch", str(requests), "--instance", str(instance_file),
    ]) == 2
    assert "line 4" in capsys.readouterr().err


def test_cli_batch_non_mapping_capacity_updates(tmp_path, instance_file, capsys):
    requests = _write_requests(tmp_path, [{"capacity_updates": [1, 2]}])
    assert cli_main([
        "batch", str(requests), "--instance", str(instance_file),
    ]) == 2
    assert "malformed request on line 1" in capsys.readouterr().err


def test_cli_batch_unknown_field(tmp_path, instance_file, capsys):
    requests = _write_requests(tmp_path, [{"epsilonn": 0.1}])
    assert cli_main([
        "batch", str(requests), "--instance", str(instance_file),
    ]) == 2
    assert "unknown request fields" in capsys.readouterr().err


def test_cli_batch_out_of_range_capacity_update(tmp_path, instance_file, capsys):
    requests = _write_requests(tmp_path, [{"capacity_updates": {"99999": 3}}])
    assert cli_main([
        "batch", str(requests), "--instance", str(instance_file),
    ]) == 2
    assert "invalid request" in capsys.readouterr().err


def test_cli_batch_missing_request_file(tmp_path, instance_file, capsys):
    assert cli_main([
        "batch", str(tmp_path / "none.jsonl"), "--instance", str(instance_file),
    ]) == 2
    assert "cannot read request file" in capsys.readouterr().err


def test_cli_batch_bad_session_epsilon(tmp_path, instance_file, capsys):
    requests = _write_requests(tmp_path, [{}])
    assert cli_main([
        "batch", str(requests), "--instance", str(instance_file),
        "--epsilon", "0.9",
    ]) == 2
    assert "epsilon" in capsys.readouterr().err


def test_cli_batch_out_of_range_epsilon_request(tmp_path, instance_file, capsys):
    requests = _write_requests(tmp_path, [{"epsilon": 0.9}])
    assert cli_main([
        "batch", str(requests), "--instance", str(instance_file),
    ]) == 2
    assert "line 1" in capsys.readouterr().err


def test_cli_batch_missing_instance(tmp_path, capsys):
    requests = _write_requests(tmp_path, [{}])
    assert cli_main([
        "batch", str(requests), "--instance", str(tmp_path / "none.json"),
    ]) == 2
    assert "not found" in capsys.readouterr().err
