"""Unit + property tests for the dual-CSR bipartite graph."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import build_graph, from_neighbor_lists
from repro.kernels import segment_max, segment_sum


def test_empty_graph():
    g = build_graph(0, 0, [], [])
    assert g.n_edges == 0
    assert g.n_vertices == 0
    g.validate()


def test_isolated_vertices():
    g = build_graph(3, 4, [0], [2])
    assert g.n_edges == 1
    assert g.left_degrees.tolist() == [1, 0, 0]
    assert g.right_degrees.tolist() == [0, 0, 1, 0]
    g.validate()


def test_path_structure(path_graph):
    g = path_graph
    g.validate()
    assert g.n_edges == 3
    assert g.left_neighbors(0).tolist() == [0]
    assert g.left_neighbors(1).tolist() == [0, 1]
    assert g.right_neighbors(0).tolist() == [0, 1]
    assert g.right_neighbors(1).tolist() == [1]
    assert g.max_degree == 2


def test_edges_canonical_order():
    g = build_graph(3, 3, [2, 0, 1, 0], [0, 1, 2, 0])
    assert list(g.edges()) == [(0, 0), (0, 1), (1, 2), (2, 0)]


def test_has_edge(path_graph):
    g = path_graph
    assert g.has_edge(0, 0)
    assert g.has_edge(1, 1)
    assert not g.has_edge(0, 1)


def test_parallel_edges_rejected():
    with pytest.raises(ValueError, match="parallel edge"):
        build_graph(2, 2, [0, 0], [1, 1])


def test_out_of_range_rejected():
    with pytest.raises(ValueError):
        build_graph(2, 2, [0], [5])
    with pytest.raises(ValueError):
        build_graph(2, 2, [-1], [0])


def test_left_right_csr_agree(path_graph):
    g = path_graph
    # Every edge appears once on each side and cross-maps are consistent.
    for e in range(g.n_edges):
        u, v = int(g.edge_u[e]), int(g.edge_v[e])
        assert e in g.left_incident_edges(u).tolist()
        assert e in g.right_incident_edges(v).tolist()


def test_subgraph_by_edges_bool(path_graph):
    sub = path_graph.subgraph_by_edges(np.array([True, False, True]))
    assert sub.n_edges == 2
    assert list(sub.edges()) == [(0, 0), (1, 1)]
    sub.validate()


def test_subgraph_by_edges_ids(path_graph):
    sub = path_graph.subgraph_by_edges(np.array([2]))
    assert list(sub.edges()) == [(1, 1)]


def test_induced_subgraph(path_graph):
    sub, left_ids, right_ids = path_graph.induced_subgraph(
        np.array([1]), np.array([0, 1])
    )
    assert left_ids.tolist() == [1]
    assert right_ids.tolist() == [0, 1]
    assert sub.n_edges == 2
    sub.validate()


def test_reverse_roundtrip(path_graph):
    rev = path_graph.reverse()
    assert rev.n_left == path_graph.n_right
    assert sorted((v, u) for u, v in path_graph.edges()) == sorted(rev.edges())
    rev.validate()


def test_undirected_edges_offset(path_graph):
    a, b = path_graph.undirected_edges()
    assert b.min() >= path_graph.n_left


def test_from_neighbor_lists():
    g = from_neighbor_lists([[0, 1], [1]], 2)
    assert g.n_edges == 3
    assert g.left_neighbors(0).tolist() == [0, 1]


def test_segment_sum_with_empty_rows():
    indptr = np.array([0, 2, 2, 3], dtype=np.int64)
    vals = np.array([1.0, 2.0, 5.0])
    assert segment_sum(vals, indptr).tolist() == [3.0, 0.0, 5.0]


def test_segment_max_with_empty_rows():
    indptr = np.array([0, 2, 2, 3], dtype=np.int64)
    vals = np.array([1.0, 7.0, 5.0])
    assert segment_max(vals, indptr, -1.0).tolist() == [7.0, -1.0, 5.0]


def test_segment_helpers_on_graph(path_graph):
    g = path_graph
    ones = np.ones(g.n_edges)
    assert g.left_segment_sum(ones).tolist() == g.left_degrees.tolist()
    assert g.right_segment_sum(ones).tolist() == g.right_degrees.tolist()


@st.composite
def random_edge_sets(draw):
    n_left = draw(st.integers(1, 8))
    n_right = draw(st.integers(1, 8))
    universe = [(u, v) for u in range(n_left) for v in range(n_right)]
    edges = draw(st.lists(st.sampled_from(universe), max_size=20, unique=True))
    return n_left, n_right, edges


@given(random_edge_sets())
@settings(max_examples=60, deadline=None)
def test_property_graph_consistency(data):
    n_left, n_right, edges = data
    eu = [e[0] for e in edges]
    ev = [e[1] for e in edges]
    g = build_graph(n_left, n_right, eu, ev)
    g.validate()
    assert g.n_edges == len(edges)
    assert sorted(g.edges()) == sorted(edges)
    assert int(g.left_degrees.sum()) == len(edges)
    assert int(g.right_degrees.sum()) == len(edges)
    # Neighborhood round trips.
    for u in range(n_left):
        expected = sorted(v for (uu, v) in edges if uu == u)
        assert g.left_neighbors(u).tolist() == expected
    for v in range(n_right):
        expected = sorted(u for (u, vv) in edges if vv == v)
        assert g.right_neighbors(v).tolist() == expected


@given(random_edge_sets(), st.integers(0, 2**31 - 1))
@settings(max_examples=40, deadline=None)
def test_property_subgraph_edges_subset(data, seed):
    n_left, n_right, edges = data
    g = build_graph(n_left, n_right, [e[0] for e in edges], [e[1] for e in edges])
    rng = np.random.default_rng(seed)
    mask = rng.random(g.n_edges) < 0.5
    sub = g.subgraph_by_edges(mask)
    sub.validate()
    assert sub.n_edges == int(mask.sum())
    assert set(sub.edges()) <= set(g.edges())
