"""Every ```python block in docs/*.md and README.md executes cleanly.

A lightweight doctest-style runner for the documentation tree: blocks
are extracted per page and executed *in order in one shared namespace*
(tutorial pages build state across blocks, exactly as a reader pasting
them into one interpreter session would).  A failing block reports the
page, the block index, and the offending source so docs rot is caught
in CI, not by readers.

Only fenced ``python`` blocks run; ``bash`` blocks and plain fences
are prose.  Pages are free to assert their own claims inline — an
assertion failure inside a block fails the page like any other error.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[1]
PAGES = sorted((ROOT / "docs").glob("*.md")) + [ROOT / "README.md"]

_FENCE = re.compile(r"^```python\n(.*?)^```", re.DOTALL | re.MULTILINE)


def python_blocks(page: Path) -> list[str]:
    return _FENCE.findall(page.read_text(encoding="utf-8"))


def test_documentation_pages_exist():
    names = {p.name for p in PAGES}
    assert {
        "architecture.md", "api.md", "tutorial_dynamic.md",
        "experiments.md", "README.md",
    } <= names


@pytest.mark.parametrize("page", PAGES, ids=lambda p: p.name)
def test_docs_python_blocks_execute(page, capsys):
    blocks = python_blocks(page)
    if not blocks:
        pytest.skip(f"{page.name} has no python blocks")
    namespace: dict = {"__name__": f"docs_snippets::{page.name}"}
    for index, source in enumerate(blocks):
        code = compile(source, f"{page.name}[python block {index}]", "exec")
        try:
            exec(code, namespace)
        except Exception as exc:  # pragma: no cover - the failure path
            raise AssertionError(
                f"{page.name}, python block {index} failed with "
                f"{type(exc).__name__}: {exc}\n--- block source ---\n{source}"
            ) from exc
