"""The CI benchmark-floor guard itself (benchmarks/check_bench_floors.py).

The guard is the last line of defense against committing a regressed
BENCH_*.json — so it gets its own tests, driven through the injectable
``run_checks(root)`` / ``main(root)`` entry points against synthetic
payload trees: a fully passing set, each checker's missed-bar cases,
the hardware-conditional ``applicable: false`` escape hatch, malformed
JSON, and missing required files.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))
from benchmarks.bench_trajectory import build_bars, build_trajectory
from benchmarks.check_bench_floors import (
    CHECKS,
    diff_against_trajectory,
    main,
    run_checks,
)


def _passing_payloads() -> dict[str, dict]:
    return {
        "BENCH_serving.json": {
            "meets_2x_bar": True,
            "session_speedup_over_cold": 3.5,
        },
        "BENCH_dynamic.json": {
            "meets_3x_bar": {"diurnal_wave": True, "flash_crowd": True},
        },
        "BENCH_kernels.json": {
            "optimized_beats_seed": True,
            "largest_instance_speedup": 5.0,
        },
        "BENCH_mpc_substrate.json": {
            "columnar_beats_object": True,
            "parity_checked": True,
        },
        "BENCH_mpc_adaptive.json": {
            "frontier_bar": {"threshold": 4.0, "met": True},
            "frontier_ratio": 16.0,
            "certificates_bit_checked": True,
        },
        "BENCH_sharding.json": {
            "determinism_bit_identical": True,
            "scaling_bar": {"applicable": True, "met": True,
                            "speedup_4_workers": 2.9, "threshold": 2.5},
        },
        "BENCH_service.json": {
            "restart_warmth": {
                "meets_3x_bar": True,
                "restart_speedup": 5.0,
                "restored_warm_start": True,
            },
            "concurrent_load": {
                "latency": {"p50_ms": 20.0, "p95_ms": 60.0, "p99_ms": 75.0},
            },
        },
    }


def _write_tree(root: Path, payloads: dict[str, dict]) -> None:
    for name, payload in payloads.items():
        (root / name).write_text(json.dumps(payload))
    # A trajectory consistent with whatever the tree holds, exactly as
    # benchmarks/bench_trajectory.py would regenerate it.
    (root / "BENCH_trajectory.json").write_text(
        json.dumps(build_trajectory(root, missing_ok=True))
    )


def test_checks_cover_every_committed_payload():
    # One checker row per guarded payload; the set is the contract.
    names = [name for name, _, _ in CHECKS]
    assert names == [
        "BENCH_serving.json",
        "BENCH_dynamic.json",
        "BENCH_kernels.json",
        "BENCH_mpc_substrate.json",
        "BENCH_mpc_adaptive.json",
        "BENCH_sharding.json",
        "BENCH_service.json",
    ]


def test_all_bars_held_passes(tmp_path):
    _write_tree(tmp_path, _passing_payloads())
    assert run_checks(tmp_path) == []
    assert main(tmp_path) == 0


def test_repo_committed_payloads_pass():
    # The actual committed payloads must hold their floors right now.
    assert run_checks() == []


def test_missing_required_file_fails(tmp_path):
    payloads = _passing_payloads()
    del payloads["BENCH_kernels.json"]
    _write_tree(tmp_path, payloads)
    failures = run_checks(tmp_path)
    assert failures == ["BENCH_kernels.json: missing from the repo root"]
    assert main(tmp_path) == 1


def test_malformed_json_fails_without_crashing(tmp_path):
    _write_tree(tmp_path, _passing_payloads())
    (tmp_path / "BENCH_serving.json").write_text("{not json")
    failures = run_checks(tmp_path)
    assert len(failures) == 1
    assert failures[0].startswith("BENCH_serving.json: not valid JSON")
    assert main(tmp_path) == 1


def test_missed_serving_bar_fails(tmp_path):
    payloads = _passing_payloads()
    payloads["BENCH_serving.json"] = {
        "meets_2x_bar": False,
        "session_speedup_over_cold": 1.4,
    }
    _write_tree(tmp_path, payloads)
    failures = run_checks(tmp_path)
    assert any("meets_2x_bar" in f for f in failures)
    assert any("1.4" in f for f in failures)


def test_missed_dynamic_scenario_is_named(tmp_path):
    payloads = _passing_payloads()
    payloads["BENCH_dynamic.json"] = {
        "meets_3x_bar": {"diurnal_wave": True, "flash_crowd": False},
    }
    _write_tree(tmp_path, payloads)
    failures = run_checks(tmp_path)
    assert failures == ["BENCH_dynamic.json: meets_3x_bar['flash_crowd'] is not true"]


def test_missed_adaptive_frontier_fails(tmp_path):
    payloads = _passing_payloads()
    payloads["BENCH_mpc_adaptive.json"] = {
        "frontier_bar": {"threshold": 4.0, "met": False},
        "frontier_ratio": 2.0,
        "certificates_bit_checked": True,
    }
    _write_tree(tmp_path, payloads)
    failures = run_checks(tmp_path)
    assert any("frontier_bar not met" in f for f in failures)
    assert any("frontier_ratio 2.0 < 4.0 floor" in f for f in failures)


def test_adaptive_without_certificate_check_fails(tmp_path):
    payloads = _passing_payloads()
    payloads["BENCH_mpc_adaptive.json"]["certificates_bit_checked"] = False
    _write_tree(tmp_path, payloads)
    failures = run_checks(tmp_path)
    assert failures == [
        "BENCH_mpc_adaptive.json: certificates_bit_checked is not true"
    ]


def test_adaptive_missing_bar_dict_fails(tmp_path):
    payloads = _passing_payloads()
    del payloads["BENCH_mpc_adaptive.json"]["frontier_bar"]
    _write_tree(tmp_path, payloads)
    failures = run_checks(tmp_path)
    assert "BENCH_mpc_adaptive.json: frontier_bar missing" in failures


def test_sharding_not_applicable_is_not_a_regression(tmp_path):
    # An honest "single-core host, could not measure" must pass...
    payloads = _passing_payloads()
    payloads["BENCH_sharding.json"]["scaling_bar"] = {
        "applicable": False, "met": None,
        "speedup_4_workers": 0.9, "threshold": 2.5,
    }
    _write_tree(tmp_path, payloads)
    assert run_checks(tmp_path) == []


def test_sharding_applicable_but_missed_fails(tmp_path):
    # ...but a recorded applicable miss must not.
    payloads = _passing_payloads()
    payloads["BENCH_sharding.json"]["scaling_bar"] = {
        "applicable": True, "met": False,
        "speedup_4_workers": 1.1, "threshold": 2.5,
    }
    _write_tree(tmp_path, payloads)
    failures = run_checks(tmp_path)
    assert any("applicable but not met" in f for f in failures)


def test_sharding_ambiguous_applicability_fails(tmp_path):
    payloads = _passing_payloads()
    payloads["BENCH_sharding.json"]["scaling_bar"] = {"met": True}
    _write_tree(tmp_path, payloads)
    failures = run_checks(tmp_path)
    assert any("applicable must be true or false" in f for f in failures)


def test_kernels_regression_fails(tmp_path):
    payloads = _passing_payloads()
    payloads["BENCH_kernels.json"] = {
        "optimized_beats_seed": False,
        "largest_instance_speedup": 0.8,
    }
    _write_tree(tmp_path, payloads)
    failures = run_checks(tmp_path)
    assert any("optimized_beats_seed" in f for f in failures)
    assert any("0.8" in f for f in failures)


def test_service_missed_restart_bar_fails(tmp_path):
    payloads = _passing_payloads()
    payloads["BENCH_service.json"]["restart_warmth"] = {
        "meets_3x_bar": False,
        "restart_speedup": 1.7,
        "restored_warm_start": True,
    }
    _write_tree(tmp_path, payloads)
    failures = run_checks(tmp_path)
    assert any("meets_3x_bar is not true" in f for f in failures)
    assert any("1.7" in f and "3.0 floor" in f for f in failures)


def test_service_cold_restore_fails(tmp_path):
    payloads = _passing_payloads()
    payloads["BENCH_service.json"]["restart_warmth"]["restored_warm_start"] = False
    _write_tree(tmp_path, payloads)
    failures = run_checks(tmp_path)
    assert failures == ["BENCH_service.json: restored_warm_start is not true"]


def test_service_incomplete_latency_histogram_fails(tmp_path):
    payloads = _passing_payloads()
    del payloads["BENCH_service.json"]["concurrent_load"]["latency"]["p99_ms"]
    _write_tree(tmp_path, payloads)
    failures = run_checks(tmp_path)
    assert failures == [
        "BENCH_service.json: concurrent_load latency histogram incomplete"
    ]


def test_substrate_parity_flag_required(tmp_path):
    payloads = _passing_payloads()
    payloads["BENCH_mpc_substrate.json"]["parity_checked"] = False
    _write_tree(tmp_path, payloads)
    failures = run_checks(tmp_path)
    assert failures == ["BENCH_mpc_substrate.json: parity_checked is not true"]


# ----------------------------------------------------------------------
# Trajectory gate: BENCH_trajectory.json consistency + --diff mode
# ----------------------------------------------------------------------


def test_trajectory_missing_fails(tmp_path):
    _write_tree(tmp_path, _passing_payloads())
    (tmp_path / "BENCH_trajectory.json").unlink()
    failures = run_checks(tmp_path)
    assert failures == ["BENCH_trajectory.json: missing from the repo root"]


def test_trajectory_injected_regression_fails(tmp_path):
    # Edit a bar value inside the trajectory only: the payloads still
    # pass their floors, but the index now lies — that's a failure.
    _write_tree(tmp_path, _passing_payloads())
    trajectory = json.loads((tmp_path / "BENCH_trajectory.json").read_text())
    trajectory["bars"]["serving/session_speedup_over_cold"]["value"] = 1.2
    (tmp_path / "BENCH_trajectory.json").write_text(json.dumps(trajectory))
    failures = run_checks(tmp_path)
    assert failures == [
        f for f in failures
        if "serving/session_speedup_over_cold" in f and "disagrees" in f
    ]
    assert failures


def test_trajectory_stale_after_payload_regen_fails(tmp_path):
    # Regenerate a payload with a new number but forget the trajectory.
    payloads = _passing_payloads()
    _write_tree(tmp_path, payloads)
    payloads["BENCH_kernels.json"]["largest_instance_speedup"] = 6.0
    (tmp_path / "BENCH_kernels.json").write_text(
        json.dumps(payloads["BENCH_kernels.json"])
    )
    failures = run_checks(tmp_path)
    assert any(
        "kernels/largest_instance_speedup" in f and "disagrees" in f
        for f in failures
    )


def test_trajectory_orphan_bar_fails(tmp_path):
    _write_tree(tmp_path, _passing_payloads())
    trajectory = json.loads((tmp_path / "BENCH_trajectory.json").read_text())
    trajectory["bars"]["made_up/bar"] = {
        "file": "BENCH_made_up.json", "value": 1.0, "floor": 1.0,
        "applicable": True, "met": True,
    }
    (tmp_path / "BENCH_trajectory.json").write_text(json.dumps(trajectory))
    failures = run_checks(tmp_path)
    assert failures == ["BENCH_trajectory.json: bar 'made_up/bar' has no source payload"]


def test_trajectory_unknown_schema_fails(tmp_path):
    _write_tree(tmp_path, _passing_payloads())
    trajectory = json.loads((tmp_path / "BENCH_trajectory.json").read_text())
    trajectory["schema"] = "repro.bench/trajectory/v999"
    (tmp_path / "BENCH_trajectory.json").write_text(json.dumps(trajectory))
    failures = run_checks(tmp_path)
    assert failures == [
        "BENCH_trajectory.json: unknown schema 'repro.bench/trajectory/v999'"
    ]


def test_committed_trajectory_indexes_every_bar():
    # The committed trajectory must cover every guarded payload's bars.
    repo = Path(__file__).resolve().parents[1]
    trajectory = json.loads((repo / "BENCH_trajectory.json").read_text())
    bars = trajectory["bars"]
    for expected in (
        "serving/session_speedup_over_cold",
        "dynamic/scenarios.flash_crowd.warm_speedup_over_cold",
        "kernels/largest_instance_speedup",
        "mpc_substrate/columnar_beats_object",
        "mpc_adaptive/frontier_ratio",
        "sharding/determinism_bit_identical",
        "sharding/scaling_bar.speedup_4_workers",
        "service/restart_warmth.restart_speedup",
        "e5_mpc_rounds/allocations_match",
    ):
        assert expected in bars, expected
    guarded = {name for name, _, _ in CHECKS} | {"BENCH_e5_mpc_rounds.json"}
    assert {entry["file"] for entry in bars.values()} == guarded
    rebuilt, missing = build_bars(repo)
    assert missing == []
    assert rebuilt == bars


def test_diff_fresh_regression_fails(tmp_path):
    committed_root = tmp_path / "committed"
    fresh_root = tmp_path / "fresh"
    committed_root.mkdir()
    fresh_root.mkdir()
    _write_tree(committed_root, _passing_payloads())
    fresh = _passing_payloads()["BENCH_serving.json"]
    fresh["session_speedup_over_cold"] = 0.9
    (fresh_root / "BENCH_serving.json").write_text(json.dumps(fresh))
    failures, notes = diff_against_trajectory(fresh_root, committed_root)
    assert failures == [
        "serving/session_speedup_over_cold: fresh value 0.9 "
        "below committed floor 2.0"
    ]
    assert any("not in fresh run" in n for n in notes)
    assert main(committed_root, argv=["--diff", str(fresh_root)]) == 1


def test_diff_fresh_pass_and_empty_fresh_fails(tmp_path):
    committed_root = tmp_path / "committed"
    fresh_root = tmp_path / "fresh"
    committed_root.mkdir()
    fresh_root.mkdir()
    _write_tree(committed_root, _passing_payloads())
    (fresh_root / "BENCH_serving.json").write_text(
        json.dumps(_passing_payloads()["BENCH_serving.json"])
    )
    failures, _ = diff_against_trajectory(fresh_root, committed_root)
    assert failures == []
    assert main(committed_root, argv=["--diff", str(fresh_root)]) == 0
    # A fresh dir with nothing to compare must not vacuously pass.
    empty = tmp_path / "empty"
    empty.mkdir()
    failures, _ = diff_against_trajectory(empty, committed_root)
    assert any("no fresh bars" in f for f in failures)


def test_diff_not_applicable_fresh_bar_is_skipped(tmp_path):
    committed_root = tmp_path / "committed"
    fresh_root = tmp_path / "fresh"
    committed_root.mkdir()
    fresh_root.mkdir()
    _write_tree(committed_root, _passing_payloads())
    fresh = _passing_payloads()["BENCH_sharding.json"]
    fresh["scaling_bar"] = {
        "applicable": False, "met": None,
        "speedup_4_workers": 0.8, "threshold": 2.5,
    }
    (fresh_root / "BENCH_sharding.json").write_text(json.dumps(fresh))
    failures, notes = diff_against_trajectory(fresh_root, committed_root)
    assert failures == []
    assert any("not applicable on this host" in n for n in notes)
