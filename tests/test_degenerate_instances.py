"""Degenerate-instance hardening: every driver must handle emptiness.

Empty edge sets, fully isolated sides, and single-vertex instances are
the classic places distributed-algorithm implementations break; these
tests pin the library's behaviour on all of them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.auction import auction_allocation
from repro.baselines.azm18 import solve_azm18_mpc
from repro.baselines.exact import solve_exact
from repro.baselines.greedy import greedy_allocation, is_maximal_allocation
from repro.boosting.boost import boost_allocation
from repro.core.fractional import FractionalAllocation
from repro.core.local_driver import (
    solve_fractional_fixed_tau,
    solve_fractional_until_certificate,
)
from repro.core.mpc_driver import solve_allocation_mpc
from repro.core.proportional import ProportionalRun
from repro.core.sampled import SampledRun
from repro.graphs import build_graph, degeneracy, exact_arboricity
from repro.graphs.instances import AllocationInstance
from repro.mpc.simulation import simulate_local_rounds_on_cluster
from repro.rounding.sampling import round_best_of, round_once


@pytest.fixture
def empty_instance():
    """Vertices but no edges."""
    return AllocationInstance(
        graph=build_graph(3, 2, [], []), capacities=np.array([1, 2]), name="empty"
    )


@pytest.fixture
def single_edge_instance():
    return AllocationInstance(
        graph=build_graph(1, 1, [0], [0]), capacities=np.array([1]), name="one-edge"
    )


def test_empty_exact(empty_instance):
    sol = solve_exact(empty_instance.graph, empty_instance.capacities)
    assert sol.value == 0
    assert sol.edge_mask.size == 0


def test_empty_proportional(empty_instance):
    run = ProportionalRun(empty_instance.graph, empty_instance.capacities, 0.25)
    run.run(3)
    # All-isolated right vertices are under-allocated forever: β rises.
    assert run.beta_exp.tolist() == [3, 3]
    assert run.match_weight() == 0.0


def test_empty_certificate_fires_immediately(empty_instance):
    res = solve_fractional_until_certificate(empty_instance, 0.25)
    # N(L_2τ) is empty, so the mass condition (0 ≥ 0) fires at round 1.
    assert res.rounds == 1
    assert res.match_weight == 0.0


def test_empty_fixed_tau(empty_instance):
    res = solve_fractional_fixed_tau(empty_instance, 0.25)
    assert res.match_weight == 0.0
    assert res.allocation.x.size == 0


def test_empty_mpc_driver(empty_instance):
    res = solve_allocation_mpc(empty_instance, 0.2, lam=1, seed=0)
    assert res.match_weight == 0.0
    assert res.mpc_rounds >= 1


def test_empty_sampled(empty_instance):
    run = SampledRun(
        empty_instance.graph, empty_instance.capacities, 0.25, block=2, sample_budget=4
    )
    run.run_rounds(4)
    assert run.match_weight() == 0.0


def test_empty_rounding(empty_instance):
    frac = FractionalAllocation(x=np.zeros(0))
    out = round_once(empty_instance.graph, empty_instance.capacities, frac, seed=0)
    assert out.size == 0
    best = round_best_of(
        empty_instance.graph, empty_instance.capacities, frac, copies=3, seed=0
    )
    assert best.size == 0


def test_empty_boosting(empty_instance):
    res = boost_allocation(
        empty_instance, np.zeros(0, dtype=bool), 0.5, mode="deterministic"
    )
    assert res.final_size == 0


def test_empty_baselines(empty_instance):
    g, caps = empty_instance.graph, empty_instance.capacities
    assert int(greedy_allocation(g, caps).sum()) == 0
    assert is_maximal_allocation(g, caps, np.zeros(0, dtype=bool))
    assert auction_allocation(g, caps).size == 0
    assert solve_azm18_mpc(empty_instance, 0.25).match_weight == 0.0


def test_empty_arboricity(empty_instance):
    assert exact_arboricity(empty_instance.graph).value == 0
    assert degeneracy(empty_instance.graph) == 0


def test_empty_direct_simulation(empty_instance):
    res = simulate_local_rounds_on_cluster(
        empty_instance.graph, empty_instance.capacities, 0.25, tau=2
    )
    assert res.beta_exp.tolist() == [2, 2]
    assert res.violations == []


def test_single_edge_pipeline(single_edge_instance):
    inst = single_edge_instance
    res = solve_fractional_until_certificate(inst, 0.25)
    assert res.match_weight == pytest.approx(1.0)
    sol = solve_exact(inst.graph, inst.capacities)
    assert sol.value == 1


def test_no_left_side():
    inst = AllocationInstance(
        graph=build_graph(0, 2, [], []), capacities=np.array([1, 1])
    )
    res = solve_fractional_until_certificate(inst, 0.25)
    assert res.match_weight == 0.0


def test_isolated_mixed_with_active():
    # Two active edges plus isolated vertices on both sides.
    inst = AllocationInstance(
        graph=build_graph(4, 3, [0, 1], [0, 0]), capacities=np.array([2, 1, 1])
    )
    res = solve_fractional_until_certificate(inst, 0.25)
    assert res.match_weight == pytest.approx(2.0, abs=0.1)
