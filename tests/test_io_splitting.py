"""Tests for instance serialization and the splitting reduction."""

from __future__ import annotations

import io as stdio

import numpy as np
import pytest

from repro.baselines.exact import optimum_value, solve_exact
from repro.graphs.generators import star_instance, union_of_forests
from repro.graphs.io import (
    instance_from_json,
    instance_to_json,
    load_instance,
    read_edge_list,
    save_instance,
    write_edge_list,
)
from repro.graphs.splitting import lift_matching, split_to_matching_instance
from repro.graphs import exact_arboricity, unit_capacities

from tests.conftest import assert_feasible_integral


# ----------------------------------------------------------------------
# io
# ----------------------------------------------------------------------

def test_edge_list_round_trip(small_forest_instance):
    buf = stdio.StringIO()
    write_edge_list(small_forest_instance, buf)
    buf.seek(0)
    back = read_edge_list(buf)
    assert back.graph.n_left == small_forest_instance.graph.n_left
    assert np.array_equal(back.graph.edge_u, small_forest_instance.graph.edge_u)
    assert np.array_equal(back.capacities, small_forest_instance.capacities)


def test_edge_list_malformed_header():
    with pytest.raises(ValueError, match="header"):
        read_edge_list(stdio.StringIO("1 2\n"))


def test_edge_list_missing_capacities_marker():
    with pytest.raises(ValueError, match="capacities"):
        read_edge_list(stdio.StringIO("1 1 1\n0 0\nnope\n1\n"))


def test_json_round_trip(small_forest_instance):
    text = instance_to_json(small_forest_instance)
    back = instance_from_json(text)
    assert back.name == small_forest_instance.name
    assert back.arboricity_upper_bound == small_forest_instance.arboricity_upper_bound
    assert np.array_equal(back.graph.edge_v, small_forest_instance.graph.edge_v)
    assert back.metadata == small_forest_instance.metadata


def test_json_format_validation():
    with pytest.raises(ValueError, match="format"):
        instance_from_json('{"format": "other"}')


def test_file_round_trip(tmp_path, small_forest_instance):
    path = tmp_path / "inst.json"
    save_instance(small_forest_instance, path)
    back = load_instance(path)
    assert optimum_value(back) == optimum_value(small_forest_instance)


# ----------------------------------------------------------------------
# splitting reduction
# ----------------------------------------------------------------------

def test_split_star_becomes_complete_bipartite():
    n = 6
    inst = star_instance(n, center_capacity=n - 1)
    split = split_to_matching_instance(inst.graph, inst.capacities)
    assert split.graph.n_right == n - 1
    assert split.graph.n_edges == n * (n - 1)
    # The remark's blow-up: arboricity 1 → ~n/2.
    assert exact_arboricity(inst.graph).value == 1
    assert exact_arboricity(split.graph).value >= n // 2


def test_split_preserves_optimum():
    for seed in range(3):
        inst = union_of_forests(12, 8, 2, capacity=3, seed=seed)
        split = split_to_matching_instance(inst.graph, inst.capacities)
        unit = unit_capacities(split.graph)
        assert optimum_value(inst) == solve_exact(split.graph, unit).value


def test_split_max_edges_guard():
    inst = star_instance(50, center_capacity=49)
    with pytest.raises(ValueError, match="max_edges"):
        split_to_matching_instance(inst.graph, inst.capacities, max_edges=100)


def test_lift_matching_round_trip():
    inst = union_of_forests(10, 6, 2, capacity=2, seed=4)
    split = split_to_matching_instance(inst.graph, inst.capacities)
    unit = unit_capacities(split.graph)
    sol = solve_exact(split.graph, unit)
    lifted = lift_matching(inst.graph, split, sol.edge_mask)
    assert_feasible_integral(inst.graph, inst.capacities, lifted)
    assert int(lifted.sum()) == sol.value == optimum_value(inst)


def test_lift_matching_shape_checked(small_star):
    split = split_to_matching_instance(small_star.graph, small_star.capacities)
    with pytest.raises(ValueError):
        lift_matching(small_star.graph, split, np.zeros(3, dtype=bool))


def test_copy_owner_mapping():
    inst = star_instance(4, center_capacity=3)
    split = split_to_matching_instance(inst.graph, inst.capacities)
    assert split.copy_owner.tolist() == [0, 0, 0]
    assert split.n_copies == 3
