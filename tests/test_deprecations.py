"""The deprecation shims around the pre-Engine configuration surface.

``kernels.set_backend``, ``mpc.set_substrate``, and the
``REPRO_KERNEL_BACKEND`` / ``REPRO_MPC_SUBSTRATE`` environment reads
each emit a single :class:`DeprecationWarning` pointing at
:class:`repro.api.SolverConfig` — and keep their historical behavior
unchanged.  The supported replacements (``use_backend`` /
``use_substrate`` scoping and the Engine lifecycle) stay silent.
"""

from __future__ import annotations

import warnings

import pytest

from repro.api import Engine
from repro.kernels import backends as backends_module
from repro.kernels import get_backend, set_backend, use_backend
from repro.mpc import substrate as substrate_module
from repro.mpc.substrate import get_substrate, set_substrate, use_substrate


def test_set_backend_warns_once_and_still_switches():
    before = get_backend()
    with pytest.warns(DeprecationWarning, match="SolverConfig") as record:
        previous = set_backend("reference")
    try:
        assert len(record) == 1
        assert previous is before
        assert type(get_backend()).__name__ == "ReferenceBackend"
    finally:
        backends_module._set_backend_impl(before)


def test_set_substrate_warns_once_and_still_switches():
    before = get_substrate()
    other = "object" if before != "object" else "columnar"
    with pytest.warns(DeprecationWarning, match="SolverConfig") as record:
        previous = set_substrate(other)
    try:
        assert len(record) == 1
        assert previous == before
        assert get_substrate() == other
    finally:
        substrate_module._set_substrate_impl(before)


def test_backend_env_var_read_warns(monkeypatch):
    monkeypatch.setattr(backends_module, "_ACTIVE", None)
    monkeypatch.setenv(backends_module.ENV_VAR, "reference")
    with pytest.warns(DeprecationWarning, match=backends_module.ENV_VAR):
        backend = get_backend()
    assert type(backend).__name__ == "ReferenceBackend"


def test_backend_env_var_absent_does_not_warn(monkeypatch):
    monkeypatch.setattr(backends_module, "_ACTIVE", None)
    monkeypatch.delenv(backends_module.ENV_VAR, raising=False)
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert type(get_backend()).__name__ == "OptimizedBackend"


def test_substrate_env_var_read_warns(monkeypatch):
    monkeypatch.setattr(substrate_module, "_ACTIVE", None)
    monkeypatch.setenv(substrate_module.ENV_VAR, "object")
    with pytest.warns(DeprecationWarning, match=substrate_module.ENV_VAR):
        assert get_substrate() == "object"


def test_substrate_env_var_absent_does_not_warn(monkeypatch):
    monkeypatch.setattr(substrate_module, "_ACTIVE", None)
    monkeypatch.delenv(substrate_module.ENV_VAR, raising=False)
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert get_substrate() == substrate_module.DEFAULT_SUBSTRATE


def test_scoped_selection_does_not_warn():
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        with use_backend("reference"):
            assert type(get_backend()).__name__ == "ReferenceBackend"
        with use_substrate("object"):
            assert get_substrate() == "object"


def test_engine_activation_does_not_warn():
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        with Engine(backend="reference", substrate="object"):
            assert type(get_backend()).__name__ == "ReferenceBackend"
            assert get_substrate() == "object"
