"""Tests for degeneracy, exact arboricity, and densest subgraph.

Exact arboricity is cross-checked against a brute-force Nash–Williams
computation on tiny graphs and against networkx's flow machinery where
applicable (networkx is a test-only dependency).
"""

from __future__ import annotations

from fractions import Fraction
from itertools import combinations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import build_graph, degeneracy, exact_arboricity
from repro.graphs.arboricity import (
    core_numbers,
    densest_subgraph,
    forest_partition,
    nash_williams_witness_density,
)
from repro.graphs.generators import (
    complete_bipartite_instance,
    cycle_instance,
    grid_instance,
    star_instance,
    union_of_forests,
)


def brute_force_arboricity(n: int, edges: list[tuple[int, int]]) -> int:
    """Nash–Williams by subset enumeration (tiny graphs only)."""
    if not edges:
        return 0
    verts = sorted({v for e in edges for v in e})
    best = 1
    for size in range(2, len(verts) + 1):
        for subset in combinations(verts, size):
            s = set(subset)
            m_s = sum(1 for a, b in edges if a in s and b in s)
            if m_s > 0:
                need = -(-m_s // (size - 1))  # ceil
                best = max(best, need)
    return best


def test_core_numbers_path():
    # Path a-b-c: all core numbers 1.
    cores = core_numbers(3, np.array([0, 1]), np.array([1, 2]))
    assert cores.tolist() == [1, 1, 1]


def test_core_numbers_triangle_plus_pendant():
    # Triangle {0,1,2} with pendant 3 attached to 0.
    ea = np.array([0, 1, 2, 0])
    eb = np.array([1, 2, 0, 3])
    cores = core_numbers(4, ea, eb)
    assert cores.tolist() == [2, 2, 2, 1]


def test_core_numbers_empty():
    assert core_numbers(0, np.array([], dtype=np.int64), np.array([], dtype=np.int64)).size == 0
    assert core_numbers(3, np.array([], dtype=np.int64), np.array([], dtype=np.int64)).tolist() == [0, 0, 0]


def test_degeneracy_star():
    inst = star_instance(10)
    assert degeneracy(inst.graph) == 1


def test_degeneracy_complete_bipartite():
    inst = complete_bipartite_instance(4, 4)
    assert degeneracy(inst.graph) == 4


def test_exact_arboricity_star():
    res = exact_arboricity(star_instance(8).graph)
    assert res.value == 1
    assert len(res.partition) == 1


def test_exact_arboricity_cycle():
    res = exact_arboricity(cycle_instance(4).graph)
    assert res.value == 2
    # The density floor ceil(m/(n-1)) = 2 lets the search skip k=1, so
    # no failure witness is produced — the partition is the certificate.
    assert len(res.partition) == 2


def test_exact_arboricity_grid():
    res = exact_arboricity(grid_instance(4, 4).graph)
    assert res.value == 2


def test_exact_arboricity_complete_bipartite():
    # K_{3,3}: ceil(9 / 5) = 2; K_{4,4}: ceil(16/7) = 3.
    assert exact_arboricity(complete_bipartite_instance(3, 3).graph).value == 2
    assert exact_arboricity(complete_bipartite_instance(4, 4).graph).value == 3


def test_union_of_forests_respects_bound():
    for k in (1, 2, 3):
        inst = union_of_forests(15, 12, k, seed=k)
        res = exact_arboricity(inst.graph)
        assert res.value <= k
        assert res.value <= inst.arboricity_upper_bound


def test_forest_partition_is_valid_partition():
    inst = union_of_forests(12, 12, 3, seed=1)
    g = inst.graph
    ea, eb = g.undirected_edges()
    partition, witness = forest_partition(g.n_vertices, ea, eb, 3)
    assert witness is None
    all_ids = np.concatenate(partition) if partition else np.array([])
    assert sorted(all_ids.tolist()) == list(range(g.n_edges))
    # Each part is a forest: verify via union-find.
    for part in partition:
        parent = list(range(g.n_vertices))

        def find(x):
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for eid in part.tolist():
            a, b = int(ea[eid]), int(eb[eid])
            ra, rb = find(a), find(b)
            assert ra != rb, "cycle inside a forest part"
            parent[ra] = rb


def test_forest_partition_failure_yields_witness():
    # K_{4,4} has arboricity 3: partition into 2 forests must fail.
    g = complete_bipartite_instance(4, 4).graph
    ea, eb = g.undirected_edges()
    partition, witness = forest_partition(g.n_vertices, ea, eb, 2)
    assert partition is None
    assert witness is not None
    dens = nash_williams_witness_density(g.n_vertices, ea, eb, witness)
    assert dens > 2


def test_degeneracy_sandwich():
    """λ ≤ degeneracy ≤ 2λ − 1 on the small zoo."""
    for inst in (
        star_instance(7),
        complete_bipartite_instance(3, 5),
        grid_instance(3, 5),
        union_of_forests(10, 10, 2, seed=0),
    ):
        lam = exact_arboricity(inst.graph).value
        d = degeneracy(inst.graph)
        assert lam <= d <= max(1, 2 * lam - 1)


def test_densest_subgraph_complete_bipartite():
    g = complete_bipartite_instance(3, 3).graph
    ea, eb = g.undirected_edges()
    res = densest_subgraph(g.n_vertices, ea, eb)
    assert res.density == Fraction(9, 6)
    assert res.vertices.size == 6


def test_densest_subgraph_star():
    g = star_instance(6).graph
    ea, eb = g.undirected_edges()
    res = densest_subgraph(g.n_vertices, ea, eb)
    # Star density: 6 edges / 7 vertices (whole graph is densest).
    assert res.density == Fraction(6, 7)


def test_densest_subgraph_empty():
    res = densest_subgraph(4, np.array([], dtype=np.int64), np.array([], dtype=np.int64))
    assert res.density == 0


def test_densest_subgraph_planted():
    # K_{3,3} plus a long pendant path: the core is the densest part.
    eu = [0, 0, 0, 1, 1, 1, 2, 2, 2]
    ev = [0, 1, 2, 0, 1, 2, 0, 1, 2]
    # pendant path hanging off left vertex 3: 3-3r, 4-3r ... sparse tail
    eu += [3, 4, 4, 5]
    ev += [3, 3, 4, 4]
    g = build_graph(6, 5, eu, ev)
    ea, eb = g.undirected_edges()
    res = densest_subgraph(g.n_vertices, ea, eb)
    assert res.density == Fraction(9, 6)
    core = {0, 1, 2, 6, 7, 8}  # left 0..2 and right 0..2 (offset 6)
    assert set(res.vertices.tolist()) == core


@st.composite
def tiny_graphs(draw):
    n_left = draw(st.integers(1, 4))
    n_right = draw(st.integers(1, 4))
    universe = [(u, v) for u in range(n_left) for v in range(n_right)]
    edges = draw(st.lists(st.sampled_from(universe), max_size=12, unique=True))
    return n_left, n_right, edges


@given(tiny_graphs())
@settings(max_examples=30, deadline=None)
def test_property_exact_matches_brute_force(data):
    n_left, n_right, edges = data
    g = build_graph(n_left, n_right, [e[0] for e in edges], [e[1] for e in edges])
    res = exact_arboricity(g)
    merged = [(u, v + n_left) for (u, v) in edges]
    assert res.value == brute_force_arboricity(g.n_vertices, merged)


@given(tiny_graphs())
@settings(max_examples=30, deadline=None)
def test_property_degeneracy_matches_networkx(data):
    nx = pytest.importorskip("networkx")
    n_left, n_right, edges = data
    if not edges:
        return
    g = build_graph(n_left, n_right, [e[0] for e in edges], [e[1] for e in edges])
    G = nx.Graph()
    G.add_nodes_from(range(g.n_vertices))
    ea, eb = g.undirected_edges()
    G.add_edges_from(zip(ea.tolist(), eb.tolist()))
    ours = core_numbers(g.n_vertices, ea, eb)
    theirs = nx.core_number(G)
    assert {v: int(ours[v]) for v in range(g.n_vertices)} == theirs
