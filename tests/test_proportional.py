"""Tests for the Algorithm 1/3 dynamics (repro.core.proportional)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.proportional import (
    ConstantThresholds,
    ProportionalRun,
    ReplayThresholds,
    compute_x_alloc,
    match_weight_from_alloc,
)
from repro.graphs import build_graph
from repro.graphs.generators import (
    complete_bipartite_instance,
    star_instance,
    union_of_forests,
)

from tests.conftest import assert_feasible_fractional


def make_run(inst, eps=0.25, thresholds=None):
    return ProportionalRun(inst.graph, inst.capacities, eps, thresholds=thresholds)


def reference_round(graph, capacities, beta_exp, eps):
    """Straightforward per-vertex reimplementation of lines 2-4 used as
    an oracle against the vectorized fast path."""
    beta = (1.0 + eps) ** beta_exp.astype(np.float64)
    x = {}
    for u in range(graph.n_left):
        nbrs = graph.left_neighbors(u)
        if nbrs.size == 0:
            continue
        denom = beta[nbrs].sum()
        for v in nbrs.tolist():
            x[(u, v)] = beta[v] / denom
    alloc = np.zeros(graph.n_right)
    for (u, v), val in x.items():
        alloc[v] += val
    decisions = np.zeros(graph.n_right, dtype=np.int64)
    for v in range(graph.n_right):
        if alloc[v] <= capacities[v] / (1 + eps):
            decisions[v] = 1
        elif alloc[v] >= capacities[v] * (1 + eps):
            decisions[v] = -1
    return x, alloc, decisions


def test_single_round_star_uniform_split():
    inst = star_instance(4, center_capacity=2)
    run = make_run(inst, eps=0.5)
    run.step()
    # Every leaf sends its whole unit to the unique center.
    assert np.allclose(run.x_slots, 1.0)
    assert np.allclose(run.alloc, [4.0])
    # alloc=4 ≥ 2·1.5 ⇒ β decreases.
    assert run.beta_exp.tolist() == [-1]


def test_two_centers_proportional_split():
    # One left vertex, two right vertices with β exponents 1 and 0.
    g = build_graph(1, 2, [0, 0], [0, 1])
    caps = np.array([1, 1])
    run = ProportionalRun(g, caps, 0.5)
    run.beta_exp = np.array([1, 0], dtype=np.int64)
    x, alloc = run.compute_x_alloc()
    # β = (1.5, 1.0) ⇒ x = (0.6, 0.4).
    assert np.allclose(x, [0.6, 0.4])
    assert np.allclose(alloc, [0.6, 0.4])


def test_vectorized_matches_reference_oracle(small_forest_instance):
    inst = small_forest_instance
    eps = 0.3
    run = make_run(inst, eps)
    for _ in range(6):
        beta_before = run.beta_exp.copy()
        _, alloc_ref, dec_ref = reference_round(
            inst.graph, inst.capacities.astype(float), beta_before, eps
        )
        decisions = run.step()
        assert np.allclose(run.alloc, alloc_ref, atol=1e-9)
        assert np.array_equal(decisions, dec_ref)


def test_isolated_right_vertex_rises_forever():
    g = build_graph(1, 2, [0], [0])  # right vertex 1 isolated
    run = ProportionalRun(g, np.array([1, 1]), 0.25)
    run.run(5)
    assert run.beta_exp[1] == 5
    assert run.top_level_mask()[1]


def test_isolated_left_vertex_ignored():
    g = build_graph(2, 1, [0], [0])  # left vertex 1 isolated
    run = ProportionalRun(g, np.array([1]), 0.25)
    run.run(3)
    assert run.alloc[0] == pytest.approx(1.0)


def test_no_overflow_with_huge_exponent_spread():
    # Exponent gap of ±5000 would overflow naive (1+ε)^b computation.
    g = build_graph(1, 2, [0, 0], [0, 1])
    run = ProportionalRun(g, np.array([1, 1]), 0.25)
    run.beta_exp = np.array([5000, -5000], dtype=np.int64)
    x, alloc = run.compute_x_alloc()
    assert np.all(np.isfinite(x))
    assert x[0] == pytest.approx(1.0)
    assert x[1] == pytest.approx(0.0)


def test_level_bookkeeping():
    inst = union_of_forests(10, 8, 2, seed=0)
    run = make_run(inst, 0.25)
    run.run(4)
    levels = run.level_indices()
    assert levels.min() >= 0 and levels.max() <= 8
    hist = run.level_histogram()
    assert hist.sum() == inst.graph.n_right
    assert hist.shape == (9,)
    assert int(run.top_level_mask().sum()) == hist[8]
    assert int(run.bottom_level_mask().sum()) == hist[0]


def test_beta_moves_at_most_one_per_round(medium_forest_instance):
    run = make_run(medium_forest_instance, 0.2)
    prev = run.beta_exp.copy()
    for _ in range(5):
        run.step()
        assert np.all(np.abs(run.beta_exp - prev) <= 1)
        prev = run.beta_exp.copy()


def test_decide_thresholds_mutually_exclusive(medium_forest_instance):
    run = make_run(medium_forest_instance, 0.2)
    run.step()
    d = run.last_decisions
    assert set(np.unique(d)).issubset({-1, 0, 1})


def test_output_allocation_feasible(medium_forest_instance):
    inst = medium_forest_instance
    run = make_run(inst, 0.2)
    run.run(10)
    out = run.fractional_allocation()
    assert_feasible_fractional(inst.graph, inst.capacities, out.x)
    assert out.weight == pytest.approx(run.match_weight(), abs=1e-6)


def test_match_weight_from_alloc():
    caps = np.array([2.0, 1.0])
    alloc = np.array([3.0, 0.5])
    assert match_weight_from_alloc(caps, alloc) == pytest.approx(2.5)


def test_requires_started():
    inst = star_instance(3)
    run = make_run(inst)
    with pytest.raises(RuntimeError):
        run.match_weight()
    with pytest.raises(RuntimeError):
        run.fractional_allocation()


def test_run_negative_rejected(small_star):
    with pytest.raises(ValueError):
        make_run(small_star).run(-1)


def test_step_with_decisions_validates(small_star):
    run = make_run(small_star)
    with pytest.raises(ValueError):
        run.step_with_decisions(np.array([5]))
    with pytest.raises(ValueError):
        run.step_with_decisions(np.zeros(7, dtype=np.int64))


def test_step_with_decisions_applies(small_star):
    run = make_run(small_star)
    run.step_with_decisions(np.array([1], dtype=np.int64))
    assert run.beta_exp.tolist() == [1]
    assert run.rounds_completed == 1


def test_constant_thresholds_validation():
    with pytest.raises(ValueError):
        ConstantThresholds(0.0)


def test_replay_thresholds():
    sched = ReplayThresholds(table=[np.array([2.0, 2.0])])
    assert sched.thresholds(0, 2).tolist() == [2.0, 2.0]
    with pytest.raises(IndexError):
        sched.thresholds(1, 2)
    with pytest.raises(ValueError):
        sched.thresholds(0, 3)


def test_adaptive_thresholds_change_dynamics(medium_forest_instance):
    inst = medium_forest_instance
    base = make_run(inst, 0.2).run(8)
    loose = ProportionalRun(
        inst.graph, inst.capacities, 0.2, thresholds=ConstantThresholds(4.0)
    ).run(8)
    # Loose thresholds keep more vertices in the middle band.
    assert int((loose.beta_exp == 0).sum()) >= int((base.beta_exp == 0).sum())


def test_complete_bipartite_converges_to_balanced():
    # K_{4,4} capacity 1: symmetric instance, alloc should settle near 1.
    inst = complete_bipartite_instance(4, 4, capacity=1)
    run = make_run(inst, 0.25)
    run.run(20)
    assert np.allclose(run.alloc, 1.0, atol=0.3)


@given(st.integers(0, 2**31 - 1), st.sampled_from([0.1, 0.25, 0.5, 1.0]))
@settings(max_examples=20, deadline=None)
def test_property_x_is_left_normalized(seed, eps):
    inst = union_of_forests(12, 9, 2, seed=seed)
    run = ProportionalRun(inst.graph, inst.capacities, eps)
    run.run(1 + seed % 5)
    left_loads = np.bincount(
        inst.graph.edge_u, weights=run.x_slots, minlength=inst.graph.n_left
    )
    nonisolated = inst.graph.left_degrees > 0
    assert np.allclose(left_loads[nonisolated], 1.0, atol=1e-9)
    assert np.allclose(left_loads[~nonisolated], 0.0)


@given(st.integers(0, 2**31 - 1))
@settings(max_examples=15, deadline=None)
def test_property_alloc_conserves_left_mass(seed):
    inst = union_of_forests(10, 10, 2, seed=seed)
    run = ProportionalRun(inst.graph, inst.capacities, 0.25)
    run.run(3)
    n_active = int((inst.graph.left_degrees > 0).sum())
    assert run.alloc.sum() == pytest.approx(n_active, abs=1e-9)
