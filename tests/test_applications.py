"""Tests for the makespan-minimization application layer."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.applications.makespan import max_serviceable, minimize_makespan
from repro.graphs import build_graph
from repro.graphs.generators import (
    load_balancing_instance,
    star_instance,
    union_of_forests,
)


def brute_force_makespan(graph) -> int:
    """Reference: smallest uniform T serving every serviceable client,
    by linear scan with the exact oracle."""
    from repro.baselines.exact import solve_exact
    from repro.graphs.capacities import uniform_capacities

    target = max_serviceable(graph)
    if target == 0:
        return 0
    for t in range(1, graph.n_left + 1):
        if solve_exact(graph, uniform_capacities(graph, t)).value >= target:
            return t
    raise AssertionError("unreachable: T = n_left always serves everyone")


def test_star_makespan():
    inst = star_instance(7)
    res = minimize_makespan(inst.graph)
    # One server must absorb everything.
    assert res.makespan == 7
    assert res.serves_everyone


def test_two_servers_split():
    # 4 clients, each eligible for both servers: makespan 2.
    g = build_graph(4, 2, [0, 0, 1, 1, 2, 2, 3, 3], [0, 1, 0, 1, 0, 1, 0, 1])
    res = minimize_makespan(g)
    assert res.makespan == 2
    assert res.serves_everyone


def test_empty_graph():
    g = build_graph(3, 2, [], [])
    res = minimize_makespan(g)
    assert res.makespan == 0
    assert res.served == 0


def test_matches_brute_force():
    for seed in range(3):
        inst = load_balancing_instance(25, 5, locality=2, seed=seed)
        res = minimize_makespan(inst.graph)
        assert res.meta["optimal_T"] == brute_force_makespan(inst.graph)
        assert res.serves_everyone
        assert res.makespan <= res.meta["optimal_T"]


@pytest.mark.parametrize("oracle", ["exact", "proportional"])
def test_oracles_agree(oracle):
    inst = load_balancing_instance(30, 6, locality=3, seed=4)
    res = minimize_makespan(inst.graph, oracle=oracle, seed=1)
    assert res.serves_everyone
    assert res.meta["optimal_T"] == brute_force_makespan(inst.graph)


def test_oracle_calls_logarithmic():
    inst = load_balancing_instance(60, 6, locality=3, seed=2)
    res = minimize_makespan(inst.graph)
    # Binary search over [ceil(60/6), max right degree].
    assert res.oracle_calls <= 8


@given(st.integers(0, 2**31 - 1))
@settings(max_examples=8, deadline=None)
def test_property_assignment_feasible(seed):
    inst = union_of_forests(12, 6, 2, seed=seed)
    res = minimize_makespan(inst.graph, seed=seed)
    loads = np.bincount(
        inst.graph.edge_v[res.edge_mask], minlength=inst.graph.n_right
    )
    assert int(loads.max(initial=0)) == res.makespan
    left_used = np.bincount(
        inst.graph.edge_u[res.edge_mask], minlength=inst.graph.n_left
    )
    assert np.all(left_used <= 1)
    assert res.serves_everyone
