"""API-surface snapshot: the public names and signatures of
``repro.api`` (plus the unified-registry protocol) against a
checked-in snapshot, so accidental breakage of the versioned surface
fails CI instead of shipping.

Regenerate after an *intentional* surface change with::

    PYTHONPATH=src python tests/test_api_surface.py --write

and commit the updated ``api_surface_snapshot.json`` alongside the
change (bump the schema versions in ``repro.api`` when the change is
breaking).
"""

from __future__ import annotations

import inspect
import json
import sys
from pathlib import Path

SNAPSHOT_PATH = Path(__file__).resolve().parent / "api_surface_snapshot.json"


def _describe_callable(obj) -> str:
    try:
        return str(inspect.signature(obj))
    except (TypeError, ValueError):  # pragma: no cover - builtins without sigs
        return "<no signature>"


def _describe_class(cls) -> dict:
    members: dict[str, str] = {}
    for name in sorted(dir(cls)):
        if name.startswith("_"):
            continue
        static = inspect.getattr_static(cls, name)
        if isinstance(static, property):
            members[name] = "<property>"
        elif isinstance(static, staticmethod):
            members[name] = "static" + _describe_callable(static.__func__)
        elif isinstance(static, classmethod):
            members[name] = "class" + _describe_callable(static.__func__)
        elif callable(static):
            members[name] = _describe_callable(static)
        else:
            members[name] = f"<attribute default={static!r}>"
    return {
        "kind": "class",
        "init": _describe_callable(cls),
        "members": members,
    }


def _describe(obj) -> dict:
    if inspect.isclass(obj):
        return _describe_class(obj)
    if callable(obj):
        return {"kind": "function", "signature": _describe_callable(obj)}
    return {"kind": "constant", "value": repr(obj)}


def build_surface() -> dict:
    """The surface document: every ``repro.api`` export plus the
    unified-registry protocol functions."""
    import repro.api as api
    from repro import registry

    surface = {
        "repro.api": {
            name: _describe(getattr(api, name)) for name in sorted(api.__all__)
        },
        "repro.registry": {
            name: _describe(getattr(registry, name))
            for name in sorted(registry.__all__)
        },
    }
    return surface


def test_api_surface_matches_snapshot():
    assert SNAPSHOT_PATH.exists(), (
        f"missing {SNAPSHOT_PATH.name}; generate it with "
        "`PYTHONPATH=src python tests/test_api_surface.py --write`"
    )
    expected = json.loads(SNAPSHOT_PATH.read_text(encoding="utf-8"))
    actual = build_surface()
    assert actual == expected, (
        "the public repro.api surface drifted from the checked-in "
        "snapshot.  If the change is intentional, regenerate with "
        "`PYTHONPATH=src python tests/test_api_surface.py --write` and "
        "commit the diff (bumping the schema versions if breaking); "
        "otherwise restore the surface."
    )


def test_registry_kinds_are_stable():
    from repro import registry

    assert registry.KINDS == ("kernel_backend", "mpc_substrate", "pipeline_stage")


def test_top_level_exports_present():
    import repro

    for name in ("Engine", "SolverConfig", "AllocationReport", "__version__"):
        assert name in repro.__all__
    assert repro.__version__ == "2.0.0"


if __name__ == "__main__":
    if "--write" in sys.argv:
        SNAPSHOT_PATH.write_text(
            json.dumps(build_surface(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote {SNAPSHOT_PATH}")
    else:
        print(__doc__)
