"""Tests for augmenting paths and the App. B boosting framework."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.exact import optimum_value, solve_exact
from repro.baselines.greedy import greedy_allocation
from repro.boosting.augment import (
    AugmentingPath,
    apply_augmenting_path,
    eliminate_short_augmenting_paths,
    find_augmenting_path,
    matched_partner_structure,
)
from repro.boosting.boost import boost_allocation, k_for_epsilon
from repro.boosting.layered import build_layered_graph, find_layered_augmenting_paths
from repro.graphs import build_graph
from repro.graphs.generators import star_instance, union_of_forests

from tests.conftest import assert_feasible_integral


def test_augmenting_path_structure_validation():
    with pytest.raises(ValueError):
        AugmentingPath([0], [1])  # lengths must differ by exactly one
    p = AugmentingPath([0, 1], [2])
    assert p.length == 3


def test_matched_partner_structure(path_graph):
    mask = np.array([True, False, False])
    left_match, right_load = matched_partner_structure(path_graph, mask)
    assert left_match.tolist() == [0, -1]
    assert right_load.tolist() == [1, 0]


def test_find_augmenting_path_trivial():
    # Single edge, nothing matched: the path is that edge.
    g = build_graph(1, 1, [0], [0])
    caps = np.array([1])
    path = find_augmenting_path(g, caps, np.array([False]))
    assert path is not None
    assert path.length == 1
    new = apply_augmenting_path(np.array([False]), path)
    assert new.tolist() == [True]


def test_find_augmenting_path_alternating():
    # P4: L0-R0, L1-R0, L1-R1; match (L1,R0); augmenting path of len 3
    # frees R0 for L0.
    g = build_graph(2, 2, [0, 1, 1], [0, 0, 1])
    caps = np.array([1, 1])
    mask = np.zeros(3, dtype=bool)
    mask[1] = True  # (L1, R0)
    path = find_augmenting_path(g, caps, mask)
    assert path is not None
    assert path.length == 3
    new = apply_augmenting_path(mask, path)
    assert int(new.sum()) == 2


def test_find_augmenting_path_respects_max_length():
    g = build_graph(2, 2, [0, 1, 1], [0, 0, 1])
    caps = np.array([1, 1])
    mask = np.zeros(3, dtype=bool)
    mask[1] = True
    assert find_augmenting_path(g, caps, mask, max_length=1) is None
    assert find_augmenting_path(g, caps, mask, max_length=3) is not None


def test_find_augmenting_path_none_when_optimal():
    inst = star_instance(4, center_capacity=2)
    sol = solve_exact(inst.graph, inst.capacities)
    assert find_augmenting_path(inst.graph, inst.capacities, sol.edge_mask) is None


def test_apply_validates_edge_states():
    with pytest.raises(ValueError):
        apply_augmenting_path(np.array([True]), AugmentingPath([0], []))


def test_eliminate_unbounded_reaches_optimum():
    for seed in range(4):
        inst = union_of_forests(20, 15, 2, capacity=2, seed=seed)
        start = greedy_allocation(inst.graph, inst.capacities, order="random", seed=seed)
        mask, _ = eliminate_short_augmenting_paths(
            inst.graph, inst.capacities, start
        )
        assert int(mask.sum()) == optimum_value(inst)
        assert_feasible_integral(inst.graph, inst.capacities, mask)


def test_eliminate_bounded_gives_1_plus_1_over_k():
    """No augmenting path of length ≤ 2k−1 ⇒ size ≥ OPT·k/(k+1)."""
    for seed in range(3):
        inst = union_of_forests(25, 18, 3, capacity=2, seed=seed)
        start = greedy_allocation(inst.graph, inst.capacities, order="random", seed=seed)
        opt = optimum_value(inst)
        for k in (1, 2, 3):
            mask, _ = eliminate_short_augmenting_paths(
                inst.graph, inst.capacities, start, max_length=2 * k - 1
            )
            assert int(mask.sum()) * (k + 1) >= opt * k


def test_augmentation_budget_respected(small_forest_instance):
    inst = small_forest_instance
    start = np.zeros(inst.graph.n_edges, dtype=bool)
    mask, n = eliminate_short_augmenting_paths(
        inst.graph, inst.capacities, start, max_augmentations=2
    )
    assert n == 2
    assert int(mask.sum()) == 2


# ----------------------------------------------------------------------
# Layered framework
# ----------------------------------------------------------------------

def test_layered_graph_structure(medium_forest_instance):
    inst = medium_forest_instance
    mask = greedy_allocation(inst.graph, inst.capacities, order="random", seed=0)
    layered = build_layered_graph(inst.graph, inst.capacities, mask, k=3, seed=1)
    # Every matched left vertex is a head of exactly the layer of its arc.
    left_match, _ = matched_partner_structure(inst.graph, mask)
    for u in range(inst.graph.n_left):
        if left_match[u] >= 0:
            layer = int(layered.head_layer_of_left[u])
            assert 1 <= layer <= 3
            assert layered.matched_arc_of_left[u] == left_match[u]
            v = int(inst.graph.edge_v[left_match[u]])
            assert left_match[u] in layered.tail_arcs[layer][v]
        elif inst.graph.left_degrees[u] >= 0:
            assert layered.head_layer_of_left[u] == 0
    # Surviving slot edges satisfy the Step-4 co-location condition.
    for slot in range(4):
        for eid in layered.slot_edges[slot].tolist():
            u = int(inst.graph.edge_u[eid])
            assert layered.head_layer_of_left[u] == slot


def test_layered_graph_rejects_infeasible(small_star):
    bad = np.ones(small_star.graph.n_edges, dtype=bool)
    with pytest.raises(ValueError):
        build_layered_graph(small_star.graph, small_star.capacities, bad, k=2)


def test_layered_paths_are_valid_augmentations():
    inst = union_of_forests(30, 20, 2, capacity=2, seed=5)
    mask = greedy_allocation(inst.graph, inst.capacities, order="random", seed=5)
    found_any = False
    for seed in range(30):
        layered = build_layered_graph(inst.graph, inst.capacities, mask, k=2, seed=seed)
        paths = find_layered_augmenting_paths(inst.graph, layered, seed=seed)
        current = mask.copy()
        for path in paths:
            found_any = True
            current = apply_augmenting_path(current, path)
        assert_feasible_integral(inst.graph, inst.capacities, current)
        assert int(current.sum()) == int(mask.sum()) + len(paths)
    assert found_any or int(mask.sum()) == optimum_value(inst)


@pytest.mark.parametrize("matcher", ["greedy", "proportional"])
def test_boost_layered_improves(matcher):
    inst = union_of_forests(40, 30, 2, capacity=2, seed=9)
    # Deliberately bad start: empty allocation.
    start = np.zeros(inst.graph.n_edges, dtype=bool)
    res = boost_allocation(
        inst, start, epsilon=0.34, mode="layered", iterations=40,
        layer_matcher=matcher, seed=3,
    )
    assert res.final_size > res.initial_size
    assert_feasible_integral(inst.graph, inst.capacities, res.edge_mask)
    opt = optimum_value(inst)
    assert res.final_size * (res.k + 1) >= opt * res.k * 0.8  # near the target


def test_boost_deterministic_certifies():
    inst = union_of_forests(30, 24, 3, capacity=2, seed=4)
    start = greedy_allocation(inst.graph, inst.capacities, order="random", seed=4)
    eps = 0.5
    res = boost_allocation(inst, start, epsilon=eps, mode="deterministic")
    opt = optimum_value(inst)
    k = k_for_epsilon(eps)
    assert res.k == k
    assert res.final_size * (k + 1) >= opt * k
    assert find_augmenting_path(
        inst.graph, inst.capacities, res.edge_mask, max_length=2 * k - 1
    ) is None


def test_boost_unknown_mode(small_star):
    with pytest.raises(ValueError):
        boost_allocation(
            small_star, np.zeros(small_star.graph.n_edges, dtype=bool),
            0.5, mode="bogus",
        )


def test_k_for_epsilon():
    assert k_for_epsilon(1.0) == 1
    assert k_for_epsilon(0.5) == 2
    assert k_for_epsilon(0.1) == 10


@given(st.integers(0, 2**31 - 1))
@settings(max_examples=10, deadline=None)
def test_property_layered_paths_feasible(seed):
    inst = union_of_forests(15, 12, 2, capacity=2, seed=seed)
    mask = greedy_allocation(inst.graph, inst.capacities, order="random", seed=seed)
    layered = build_layered_graph(inst.graph, inst.capacities, mask, k=2, seed=seed)
    paths = find_layered_augmenting_paths(inst.graph, layered, seed=seed)
    current = mask.copy()
    for path in paths:
        current = apply_augmenting_path(current, path)
    assert_feasible_integral(inst.graph, inst.capacities, current)
