"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import build_graph
from repro.graphs.generators import (
    complete_bipartite_instance,
    erdos_renyi_instance,
    load_balancing_instance,
    power_law_instance,
    star_instance,
    union_of_forests,
)
from repro.graphs.instances import AllocationInstance


@pytest.fixture
def path_graph():
    """P4: L0 - R0 - L1 - R1 (a path with 3 edges)."""
    return build_graph(2, 2, [0, 1, 1], [0, 0, 1])


@pytest.fixture
def small_star():
    return star_instance(6, center_capacity=3)


@pytest.fixture
def small_forest_instance():
    return union_of_forests(20, 15, 2, capacity=2, seed=7)


@pytest.fixture
def medium_forest_instance():
    return union_of_forests(120, 90, 4, capacity=3, seed=11)


@pytest.fixture
def skewed_instance():
    return power_law_instance(80, 30, mean_left_degree=3, seed=5)


def small_instance_zoo() -> list[AllocationInstance]:
    """A fixed zoo of small instances spanning the generator families;
    used by parametrized feasibility/approximation tests."""
    return [
        star_instance(5, center_capacity=2),
        complete_bipartite_instance(4, 3, capacity=2),
        union_of_forests(12, 10, 2, capacity=2, seed=3),
        erdos_renyi_instance(10, 8, 25, capacity=2, seed=4),
        load_balancing_instance(15, 5, locality=2, seed=9),
        power_law_instance(20, 8, mean_left_degree=2, seed=2),
    ]


def assert_feasible_fractional(graph, capacities, x_edge, tol=1e-9):
    """Shared invariant: x is a fractional allocation (Definition 6)."""
    assert x_edge.shape == (graph.n_edges,)
    assert np.all(x_edge >= -tol)
    assert np.all(x_edge <= 1 + tol)
    left_load = np.bincount(graph.edge_u, weights=x_edge, minlength=graph.n_left)
    right_load = np.bincount(graph.edge_v, weights=x_edge, minlength=graph.n_right)
    assert np.all(left_load <= 1 + 1e-6)
    assert np.all(right_load <= capacities + 1e-6)


def assert_feasible_integral(graph, capacities, edge_mask):
    """Shared invariant: mask is an allocation (Definition 5)."""
    edge_mask = np.asarray(edge_mask, dtype=bool)
    left_used = np.bincount(graph.edge_u[edge_mask], minlength=graph.n_left)
    right_used = np.bincount(graph.edge_v[edge_mask], minlength=graph.n_right)
    assert np.all(left_used <= 1)
    assert np.all(right_used <= capacities)
