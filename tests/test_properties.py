"""Tests for the structural profile module."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import build_graph
from repro.graphs.generators import (
    cycle_instance,
    grid_instance,
    star_instance,
    union_of_forests,
)
from repro.graphs.properties import (
    DegreeProfile,
    bfs_eccentricity,
    component_sizes,
    connected_components,
    degree_profile,
    diameter_lower_bound,
    profile_graph,
)


def test_degree_profile_star():
    inst = star_instance(6)
    left, right = degree_profile(inst.graph)
    assert left.maximum == 1 and left.minimum == 1
    assert right.maximum == 6
    assert right.isolated == 0


def test_degree_profile_empty():
    p = DegreeProfile.from_degrees(np.empty(0, dtype=np.int64))
    assert p.maximum == 0 and p.isolated == 0


def test_components_disjoint_edges():
    g = build_graph(3, 3, [0, 1, 2], [0, 1, 2])
    labels = connected_components(g)
    assert len(set(labels.tolist())) == 3
    assert component_sizes(g).tolist() == [2, 2, 2]


def test_components_with_isolated():
    g = build_graph(2, 2, [0], [0])
    sizes = component_sizes(g)
    assert sizes.tolist() == [2, 1, 1]


def test_components_connected_star():
    inst = star_instance(5)
    assert component_sizes(inst.graph).tolist() == [6]


def test_eccentricity_path():
    # P4: L0-R0-L1-R1; ecc from L0 (merged id 0) = 3.
    g = build_graph(2, 2, [0, 1, 1], [0, 0, 1])
    assert bfs_eccentricity(g, 0) == 3
    assert bfs_eccentricity(g, 2) == 2  # R0 is central


def test_diameter_lower_bound_path():
    g = build_graph(2, 2, [0, 1, 1], [0, 0, 1])
    assert diameter_lower_bound(g) == 3


def test_diameter_lower_bound_cycle():
    inst = cycle_instance(6)  # C12: diameter 6
    assert diameter_lower_bound(inst.graph) == 6


def test_diameter_empty():
    assert diameter_lower_bound(build_graph(2, 2, [], [])) == 0


def test_profile_graph_full():
    inst = grid_instance(4, 5)
    prof = profile_graph(inst.graph)
    assert prof.m == inst.graph.n_edges
    assert prof.degeneracy == 2
    assert prof.n_components == 1
    assert prof.largest_component == 20
    d = prof.as_dict()
    assert d["degeneracy"] == 2
    assert d["diameter_lb"] >= 7  # grid 4x5 diameter = 7


def test_profile_supports_log_lambda_vs_diameter_story():
    """The regime the paper targets: log λ far below the diameter."""
    inst = grid_instance(12, 12)
    prof = profile_graph(inst.graph)
    assert prof.degeneracy <= 3
    assert prof.diameter_lower_bound >= 20


@given(st.integers(0, 2**31 - 1))
@settings(max_examples=15, deadline=None)
def test_property_components_partition(seed):
    inst = union_of_forests(10, 8, 2, seed=seed)
    labels = connected_components(inst.graph)
    assert labels.shape == (18,)
    assert labels.min() >= 0
    # Endpoints of every edge share a label.
    ea, eb = inst.graph.undirected_edges()
    assert np.all(labels[ea] == labels[eb])
    # Sizes sum to n.
    assert int(component_sizes(inst.graph).sum()) == 18
