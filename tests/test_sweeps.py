"""The sweep orchestration subsystem (repro.sweeps).

Covers the acceptance contract: grid expansion and content-hash cell
id stability, resumable running (including a SIGKILL mid-grid followed
by a resume that must produce byte-identical cell records), the
process-executor parity with inline runs, the extract/plot stages, and
the adversarial round-maximizer family exceeding every other sized
family in a sweep-produced table.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.graphs.generators import SIZED_FAMILIES
from repro.sweeps import (
    SweepCell,
    SweepSpec,
    ascii_chart,
    comparison_table,
    load_manifest,
    load_records,
    plot_payload,
    record_path,
    run_sweep,
)
from repro.sweeps.extract import flatten_record
from repro.sweeps.spec import CELL_SCHEMA

REPO = Path(__file__).resolve().parents[1]


def _small_spec(**overrides) -> SweepSpec:
    base = dict(
        name="unit",
        families=("star", "union_of_forests"),
        sizes=(16, 32),
        epsilons=(0.2,),
        seeds=(0,),
    )
    base.update(overrides)
    return SweepSpec(**base)


# ----------------------------------------------------------------------
# Spec validation and grid expansion
# ----------------------------------------------------------------------

def test_expand_is_the_full_product_with_unique_ids():
    spec = _small_spec(
        epsilons=(0.1, 0.2), seeds=(0, 1),
        config_axes={"backend": (None, "optimized")},
    )
    cells = spec.expand()
    assert len(cells) == spec.n_cells == 2 * 2 * 2 * 2 * 2
    assert len({c.cell_id for c in cells}) == len(cells)
    assert {c.family for c in cells} == {"star", "union_of_forests"}
    assert all(dict(c.config)["backend"] in (None, "optimized") for c in cells)


def test_spec_rejects_unknown_family_size_and_config_field():
    with pytest.raises(ValueError, match="unknown families"):
        _small_spec(families=("nope",))
    with pytest.raises(ValueError, match="sizes must be"):
        _small_spec(sizes=(0,))
    with pytest.raises(ValueError, match="not a SolverConfig field"):
        _small_spec(config_axes={"not_a_field": (1,)})
    with pytest.raises(ValueError, match="instance axis"):
        _small_spec(config_axes={"epsilon": (0.1,)})
    with pytest.raises(ValueError, match="instance axis"):
        _small_spec(base_config={"seed": 3})


def test_expand_fails_fast_on_invalid_config_combination():
    # Invalid SolverConfig values surface at expansion, before any run.
    spec = _small_spec(config_axes={"backend": ("definitely_not_a_backend",)})
    with pytest.raises(ValueError):
        spec.expand()


def test_cell_id_is_content_addressed_and_name_independent():
    a = _small_spec(name="first").expand()
    b = _small_spec(name="renamed").expand()
    assert [c.cell_id for c in a] == [c.cell_id for c in b]

    cell = a[0]
    round_tripped = SweepCell.from_dict(json.loads(json.dumps(cell.to_dict())))
    assert round_tripped == cell
    assert round_tripped.cell_id == cell.cell_id

    tampered = dict(cell.to_dict())
    tampered["cell_id"] = "0" * 16
    with pytest.raises(ValueError, match="cell_id mismatch"):
        SweepCell.from_dict(tampered)


def test_spec_json_round_trip():
    spec = _small_spec(
        config_axes={"backend": (None, "optimized")}, base_config={"repair": True}
    )
    assert SweepSpec.from_json(spec.to_json()) == spec


# ----------------------------------------------------------------------
# Resumable runner
# ----------------------------------------------------------------------

def test_run_sweep_writes_records_and_resumes(tmp_path):
    spec = _small_spec()
    first = run_sweep(spec, tmp_path)
    assert (first.ran, first.skipped) == (4, 0) and first.complete

    manifest = load_manifest(tmp_path)
    assert manifest["spec"] == spec.to_dict()
    before = {
        cid: record_path(tmp_path, cid).read_bytes()
        for cid in manifest["cell_ids"]
    }

    second = run_sweep(spec, tmp_path)
    assert (second.ran, second.skipped) == (0, 4)
    after = {
        cid: record_path(tmp_path, cid).read_bytes()
        for cid in manifest["cell_ids"]
    }
    assert after == before


def test_run_sweep_refuses_to_mix_grids(tmp_path):
    run_sweep(_small_spec(), tmp_path)
    other = _small_spec(name="other", sizes=(16,))
    with pytest.raises(ValueError, match="refusing to mix grids"):
        run_sweep(other, tmp_path)


def test_records_hold_only_deterministic_fields(tmp_path):
    run_sweep(_small_spec(sizes=(16,)), tmp_path)
    for record in load_records(tmp_path):
        assert record["schema"] == CELL_SCHEMA
        assert set(record) == {"schema", "cell_id", "cell", "result"}
        assert set(record["result"]) == {
            "size", "match_weight", "local_rounds", "mpc_rounds",
            "certified", "guarantee",
        }
        assert record["result"]["certified"] is True


def test_process_executor_records_bit_identical_to_inline(tmp_path):
    spec = _small_spec(config_axes={"backend": (None, "optimized")})
    inline_dir = tmp_path / "inline"
    process_dir = tmp_path / "process"
    run_sweep(spec, inline_dir, executor="inline")
    run_sweep(spec, process_dir, executor="process", workers=2)
    ids = load_manifest(inline_dir)["cell_ids"]
    for cid in ids:
        assert (
            record_path(inline_dir, cid).read_bytes()
            == record_path(process_dir, cid).read_bytes()
        ), cid


def test_sigkill_mid_grid_then_resume_is_byte_identical(tmp_path):
    # An 8-cell grid at sizes where each cell takes a noticeable
    # fraction of a second, run through the real CLI in a subprocess,
    # SIGKILLed after the first record lands, then resumed.  The
    # records must match an uninterrupted reference run byte-for-byte.
    spec = SweepSpec(
        name="kill",
        families=("slow_spread", "adversarial_rounds"),
        sizes=(192, 288),
        epsilons=(0.2,),
        seeds=(0, 1),
    )
    spec_path = tmp_path / "spec.json"
    spec_path.write_text(spec.to_json())

    reference = tmp_path / "reference"
    run_sweep(spec, reference)
    ids = load_manifest(reference)["cell_ids"]
    assert len(ids) == 8

    killed = tmp_path / "killed"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "sweep", "run",
            "--spec", str(spec_path), "--out", str(killed),
        ],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    try:
        cells_dir = killed / "cells"
        deadline = time.time() + 60
        while time.time() < deadline:
            if cells_dir.is_dir() and any(cells_dir.glob("*.json")):
                break
            time.sleep(0.01)
        else:
            pytest.fail("subprocess produced no record within 60s")
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()

    done = {p.stem for p in cells_dir.glob("*.json")}
    assert done, "kill landed before any record"
    assert done < set(ids), "kill landed after the grid finished"

    resumed = run_sweep(spec, killed)
    assert resumed.skipped == len(done)
    assert resumed.ran == len(ids) - len(done)
    for cid in ids:
        assert (
            record_path(killed, cid).read_bytes()
            == record_path(reference, cid).read_bytes()
        ), cid


# ----------------------------------------------------------------------
# Extract + plot stages
# ----------------------------------------------------------------------

def _synthetic_records() -> list[dict]:
    rows = []
    for family, n, rounds in (
        ("star", 16, 1), ("star", 32, 2),
        ("slow_spread", 16, 7), ("slow_spread", 32, 9),
    ):
        cell = SweepCell(family=family, n=n, epsilon=0.2, seed=0)
        rows.append({
            "schema": CELL_SCHEMA,
            "cell_id": cell.cell_id,
            "cell": cell.axes(),
            "result": {
                "size": n, "match_weight": float(n), "local_rounds": rounds,
                "mpc_rounds": None, "certified": True, "guarantee": 2.2,
            },
        })
    return rows


def test_comparison_table_pivots_and_aggregates():
    records = _synthetic_records()
    table = comparison_table(records, rows="family", cols="n",
                             value="local_rounds")
    by_family = {row["family"]: row for row in table.rows}
    assert by_family["star"] == {"family": "star", "n=16": 1, "n=32": 2}
    assert by_family["slow_spread"] == {
        "family": "slow_spread", "n=16": 7, "n=32": 9,
    }
    # Aggregation across a collapsed axis: both sizes in one cell.
    collapsed = comparison_table(records, rows="family", cols="epsilon",
                                 value="local_rounds", agg="max")
    by_family = {row["family"]: row for row in collapsed.rows}
    assert by_family["slow_spread"]["epsilon=0.2"] == 9


def test_comparison_table_marks_missing_cells():
    records = _synthetic_records()[:3]  # drop (slow_spread, 32)
    table = comparison_table(records, rows="family", cols="n",
                             value="local_rounds")
    by_family = {row["family"]: row for row in table.rows}
    assert by_family["slow_spread"]["n=32"] == "—"


def test_extract_unknown_axis_names_the_valid_ones():
    with pytest.raises(KeyError, match="family"):
        comparison_table(_synthetic_records(), rows="nope", cols="n")


def test_flatten_record_merges_axes_config_and_result():
    record = _synthetic_records()[0]
    record["cell"]["config"] = {"backend": "numpy"}
    flat = flatten_record(record)
    assert flat["family"] == "star"
    assert flat["backend"] == "numpy"
    assert flat["local_rounds"] == 1


def test_plot_payload_and_ascii_chart():
    payload = plot_payload(_synthetic_records(), x="n", y="local_rounds",
                           group="family")
    assert payload["series"]["star"] == [[16.0, 1.0], [32.0, 2.0]]
    assert payload["series"]["slow_spread"] == [[16.0, 7.0], [32.0, 9.0]]
    chart = ascii_chart(payload)
    assert "local_rounds vs n" in chart
    assert "slow_spread" in chart and "star" in chart
    with pytest.raises(ValueError, match="unknown plot schema"):
        ascii_chart({"schema": "nope", "series": {}})


# ----------------------------------------------------------------------
# The adversarial round-maximizer, through a real sweep
# ----------------------------------------------------------------------

def test_adversarial_rounds_exceeds_every_family_at_equal_n(tmp_path):
    spec = SweepSpec(
        name="round-maximizer",
        families=tuple(sorted(SIZED_FAMILIES)),
        sizes=(64,),
        epsilons=(0.2,),
        seeds=(0,),
    )
    run_sweep(spec, tmp_path)
    table = comparison_table(load_records(tmp_path), rows="family", cols="n",
                             value="local_rounds")
    rounds = {row["family"]: row["n=64"] for row in table.rows}
    adversarial = rounds.pop("adversarial_rounds")
    assert rounds, "sweep produced no other families"
    for family, value in rounds.items():
        assert adversarial > value, (
            f"adversarial_rounds ({adversarial}) does not exceed "
            f"{family} ({value})"
        )


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

def test_cli_sweep_cells_run_extract_plot(tmp_path, capsys):
    from repro.cli import main as cli_main

    spec = _small_spec()
    spec_path = tmp_path / "spec.json"
    spec_path.write_text(spec.to_json())
    out = tmp_path / "out"

    assert cli_main(["sweep", "cells", "--spec", str(spec_path)]) == 0
    listing = capsys.readouterr().out
    for cell in spec.expand():
        assert cell.cell_id in listing

    assert cli_main([
        "sweep", "run", "--spec", str(spec_path), "--out", str(out),
    ]) == 0
    assert "4 cells (4 ran, 0 already recorded)" in capsys.readouterr().out

    assert cli_main(["sweep", "extract", "--out", str(out)]) == 0
    assert "star" in capsys.readouterr().out

    json_out = tmp_path / "plot.json"
    assert cli_main([
        "sweep", "plot", "--out", str(out), "--json-out", str(json_out),
    ]) == 0
    payload = json.loads(json_out.read_text())
    assert payload["schema"] == "repro.sweeps/plot/v1"
    assert set(payload["series"]) == {"star", "union_of_forests"}


def test_cli_sweep_bad_inputs_exit_2(tmp_path, capsys):
    from repro.cli import main as cli_main

    missing = tmp_path / "missing.json"
    assert cli_main([
        "sweep", "run", "--spec", str(missing), "--out", str(tmp_path / "x"),
    ]) == 2
    assert "spec file not found" in capsys.readouterr().err

    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    assert cli_main([
        "sweep", "cells", "--spec", str(bad),
    ]) == 2
    assert "not valid JSON" in capsys.readouterr().err

    malformed = tmp_path / "malformed.json"
    malformed.write_text(json.dumps({
        "schema": "repro.sweeps/SweepSpec/v1",
        "name": "x", "families": ["nope"], "sizes": [8],
    }))
    assert cli_main([
        "sweep", "cells", "--spec", str(malformed),
    ]) == 2
    assert "malformed sweep spec" in capsys.readouterr().err

    assert cli_main([
        "sweep", "extract", "--out", str(tmp_path / "never_ran"),
    ]) == 2
    assert "extract failed" in capsys.readouterr().err
