"""Durable-session service layer (DESIGN.md §14).

Covers the snapshot/restore machinery (schema, atomicity, torn-file
and stale-schema fallback, certificate re-verification), the
property-based round-trip contract — snapshot → restore → next solve
bit-identical to a never-snapshotted session, across every dynamic
scenario family — and the asyncio front end: request coalescing,
typed admission control on the wire, eviction-to-snapshot with warm
re-admission, and the deterministic seed cursor.  Subprocess
SIGKILL crash recovery lives in tests/test_service_recovery.py.
"""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dynamic.scenarios import SCENARIOS
from repro.dynamic.session import DynamicSession
from repro.graphs.generators import erdos_renyi_instance, power_law_instance
from repro.serve.service import AllocationService, ServiceClient
from repro.serve.session import AllocationSession
from repro.serve.shm import instance_hash
from repro.serve.snapshot import (
    SNAPSHOT_SCHEMA,
    SnapshotStore,
    restore_dynamic,
    restore_session,
    snapshot_dynamic,
    snapshot_session,
    verify_exponents,
)


@pytest.fixture()
def instance():
    return power_law_instance(n_left=60, n_right=24, seed=3)


@pytest.fixture()
def other_instance():
    return erdos_renyi_instance(40, 20, 120, seed=9)


def _session(instance, **kwargs) -> AllocationSession:
    kwargs.setdefault("epsilon", 0.2)
    return AllocationSession(instance, **kwargs)


# ---------------------------------------------------------------------------
# Snapshot payload + store
# ---------------------------------------------------------------------------
def test_snapshot_payload_shape(instance):
    session = _session(instance)
    session.solve(seed=7)
    payload = snapshot_session(session, seed_cursor=4)
    assert payload["schema"] == SNAPSHOT_SCHEMA
    assert payload["kind"] == "allocation"
    assert payload["instance_hash"] == instance_hash(instance)
    assert payload["seed_cursor"] == 4
    assert payload["exponents"] is not None
    assert payload["fractional_x"] is not None
    # Pure JSON: the payload must survive a dumps/loads round trip.
    assert json.loads(json.dumps(payload)) == payload


def test_snapshot_restore_roundtrip_bit_identical(instance):
    live = _session(instance)
    live.solve(seed=7)
    payload = snapshot_session(live)
    restored = restore_session(payload)
    assert restored.warm and restored.reason is None
    np.testing.assert_array_equal(
        live.exponents_snapshot(), restored.session.exponents_snapshot()
    )
    # The *next* solve must be bit-identical to the uninterrupted one.
    a = live.solve(seed=11)
    b = restored.session.solve(seed=11)
    np.testing.assert_array_equal(a.edge_mask, b.edge_mask)
    np.testing.assert_array_equal(
        a.mpc.final_exponents, b.mpc.final_exponents
    )
    assert b.meta["warm_start"] is True


def test_restore_preserves_stats_and_reroll(instance):
    live = _session(instance)
    live.solve(seed=7)
    live.solve(seed=8)
    restored = restore_session(snapshot_session(live))
    assert restored.session.stats.as_dict() == live.stats.as_dict()
    # The retained fractional solve survives: re-roll works across
    # the snapshot boundary and stays feasible (validated inside).
    a = live.reroll_rounding(seed=3)
    b = restored.session.reroll_rounding(seed=3)
    np.testing.assert_array_equal(a.edge_mask, b.edge_mask)


def test_restore_cold_session_snapshot(instance):
    payload = snapshot_session(_session(instance))
    restored = restore_session(payload)
    assert not restored.warm
    assert restored.reason == "no warm state"
    assert restored.session.exponents_snapshot() is None


def test_restore_rejects_wrong_schema(instance):
    payload = snapshot_session(_session(instance))
    payload["schema"] = "repro.serve/SessionSnapshot/v0"
    with pytest.raises(ValueError, match="unsupported snapshot schema"):
        restore_session(payload)


def test_restore_bad_exponent_shape_falls_back_cold(instance):
    session = _session(instance)
    session.solve(seed=7)
    payload = snapshot_session(session)
    payload["exponents"] = payload["exponents"][:-3]
    restored = restore_session(payload)
    assert not restored.warm
    assert restored.reason == "exponent shape mismatch"
    # Cold fallback still solves fine.
    assert restored.session.solve(seed=1).size > 0


def test_restore_unverifiable_exponents_fall_back_cold(instance):
    session = _session(instance)
    session.solve(seed=7)
    payload = snapshot_session(session)
    # An absurd vector: valid shape, but wildly spread priorities the
    # dynamics cannot re-certify within the verification cap.
    payload["exponents"] = [i * 10**5 for i in range(instance.graph.n_right)]
    restored = restore_session(payload, verify_round_cap=3)
    assert not restored.warm
    assert restored.reason == "certificate re-verification failed"


def test_verify_exponents_accepts_converged_vector(instance):
    session = _session(instance)
    result = session.solve(seed=7)
    assert verify_exponents(
        instance, result.mpc.final_exponents, session.epsilon
    )


def test_store_atomic_save_and_latest(tmp_path, instance):
    store = SnapshotStore(tmp_path)
    session = _session(instance)
    session.solve(seed=7)
    p1 = store.save(snapshot_session(session, seed_cursor=1))
    session.solve(seed=8)
    p2 = store.save(snapshot_session(session, seed_cursor=2))
    assert p1 != p2 and p1.parent == p2.parent
    assert not list(tmp_path.glob("*.tmp"))
    latest = store.latest(instance_hash(instance))
    assert latest is not None and latest["seed_cursor"] == 2


def test_store_skips_torn_snapshot(tmp_path, instance):
    store = SnapshotStore(tmp_path)
    session = _session(instance)
    session.solve(seed=7)
    store.save(snapshot_session(session, seed_cursor=1))
    good = store.save(snapshot_session(session, seed_cursor=2))
    # Truncate the newest file mid-document: a torn write.
    good.write_text(good.read_text()[: len(good.read_text()) // 2])
    latest = store.latest(instance_hash(instance))
    assert latest is not None and latest["seed_cursor"] == 1


def test_store_skips_stale_schema(tmp_path, instance):
    store = SnapshotStore(tmp_path)
    session = _session(instance)
    session.solve(seed=7)
    store.save(snapshot_session(session, seed_cursor=1))
    newest = store.save(snapshot_session(session, seed_cursor=2))
    stale = json.loads(newest.read_text())
    stale["schema"] = "repro.serve/SessionSnapshot/v999"
    newest.write_text(json.dumps(stale))
    latest = store.latest(instance_hash(instance))
    assert latest is not None and latest["seed_cursor"] == 1


def test_store_all_invalid_yields_none(tmp_path, instance):
    store = SnapshotStore(tmp_path)
    session = _session(instance)
    store.save(snapshot_session(session))
    for path in tmp_path.glob("*.json"):
        path.write_text("{")
    assert store.latest(instance_hash(instance)) is None
    assert store.latest_all() == {}


def test_store_prune_keeps_newest(tmp_path, instance):
    store = SnapshotStore(tmp_path)
    session = _session(instance)
    for cursor in range(5):
        store.save(snapshot_session(session, seed_cursor=cursor))
    removed = store.prune(keep=2)
    assert removed == 3
    assert store.latest(instance_hash(instance))["seed_cursor"] == 4


# ---------------------------------------------------------------------------
# Property-based round trip across every dynamic scenario family
# ---------------------------------------------------------------------------
@settings(max_examples=6, deadline=None)
@given(
    family=st.sampled_from(sorted(SCENARIOS)),
    seed=st.integers(min_value=0, max_value=2**16 - 1),
)
def test_dynamic_snapshot_roundtrip_bit_identical(family, seed):
    """snapshot → restore → next delta ≡ never-snapshotted session,
    for every scenario family and arbitrary stream seeds."""
    instance = power_law_instance(n_left=40, n_right=16, seed=seed % 7)
    deltas = SCENARIOS[family](instance, 3, seed=seed)

    def advance(ds, upto):
        ds.resolve(seed=0)
        for delta in deltas[:upto]:
            ds.step(delta, seed=0)

    baseline = DynamicSession(instance, epsilon=0.2)
    advance(baseline, 2)
    snapped = DynamicSession(instance, epsilon=0.2)
    advance(snapped, 2)
    restored = restore_dynamic(snapshot_dynamic(snapped, seed_cursor=2))
    assert restored.seed_cursor == 2
    assert restored.warm

    _, a = baseline.step(deltas[2], seed=0)
    _, b = restored.session.step(deltas[2], seed=0)
    np.testing.assert_array_equal(a.edge_mask, b.edge_mask)
    np.testing.assert_array_equal(a.mpc.final_exponents, b.mpc.final_exponents)
    assert restored.session.stats.deltas_applied == baseline.stats.deltas_applied


def test_dynamic_snapshot_requires_dynamic_kind(instance):
    session = _session(instance)
    payload = snapshot_session(session)  # kind="allocation"
    with pytest.raises(ValueError, match="expected a 'dynamic' snapshot"):
        restore_dynamic(payload)


# ---------------------------------------------------------------------------
# Asyncio front end: coalescing, admission, eviction, seed cursor
# ---------------------------------------------------------------------------
def _run_service(test_coro_factory, **service_kwargs):
    """Drive a service plus client work inside one asyncio.run call."""

    async def main():
        service_kwargs.setdefault("session_kwargs", {"epsilon": 0.2})
        service_kwargs.setdefault("seed", 0)
        store_dir = service_kwargs.pop("store_dir")
        service = AllocationService(store_dir, **service_kwargs)
        await service.start()
        try:
            return await test_coro_factory(service)
        finally:
            await service.stop()

    return asyncio.run(main())


def test_concurrent_identical_requests_coalesce(tmp_path, instance):
    h = instance_hash(instance)

    async def scenario(service):
        loop = asyncio.get_running_loop()

        def one():
            with ServiceClient(service.socket_path) as c:
                c.open(instance)
                return c.solve(h)  # seedless and identical → coalescable

        responses = await asyncio.gather(
            *(loop.run_in_executor(None, one) for _ in range(4))
        )
        return responses, service.counters

    responses, counters = _run_service(
        scenario, store_dir=tmp_path, max_sessions=2
    )
    # One solve executed, the rest coalesced onto its future...
    assert counters.solves == 1
    assert counters.coalesced == 3
    assert sorted(r["coalesced"] for r in responses) == [False, True, True, True]
    # ...and every client got the same result for one seed position.
    masks = {json.dumps(r["report"]["edge_mask"], sort_keys=True) for r in responses}
    assert len(masks) == 1
    assert len({r["seed_used"] for r in responses}) == 1


def test_distinct_requests_do_not_coalesce(tmp_path, instance):
    h = instance_hash(instance)

    async def scenario(service):
        loop = asyncio.get_running_loop()

        def one(seed):
            with ServiceClient(service.socket_path) as c:
                c.open(instance)
                return c.solve(h, seed=seed)

        await asyncio.gather(
            *(loop.run_in_executor(None, one, s) for s in (1, 2, 3))
        )
        return service.counters

    counters = _run_service(scenario, store_dir=tmp_path, max_sessions=2)
    assert counters.solves == 3
    assert counters.coalesced == 0


def test_admission_rejected_typed_error_on_wire(tmp_path, instance, other_instance):
    async def scenario(service):
        loop = asyncio.get_running_loop()

        def fill_then_overflow():
            with ServiceClient(service.socket_path) as c:
                assert c.open(instance)["ok"]
                # The sole resident is mid-solve: not evictable.
                service._residents[instance_hash(instance)].busy += 1
                try:
                    return c.open(other_instance)
                finally:
                    service._residents[instance_hash(instance)].busy -= 1

        return await loop.run_in_executor(None, fill_then_overflow)

    response = _run_service(scenario, store_dir=tmp_path, max_sessions=1)
    assert response["ok"] is False
    assert response["error"]["type"] == "admission_rejected"
    assert "busy" in response["error"]["message"]


def test_eviction_to_snapshot_readmission_stays_warm(
    tmp_path, instance, other_instance
):
    h = instance_hash(instance)

    async def scenario(service):
        loop = asyncio.get_running_loop()

        def work():
            with ServiceClient(service.socket_path) as c:
                c.open(instance)
                first = c.solve(h, seed=7)
                # Admitting a second instance under max_sessions=1
                # evicts the first resident to a snapshot...
                c.open(other_instance)
                assert h not in service._residents
                # ...and re-admission restores it, warm.
                reopened = c.open(instance)
                second = c.solve(h, seed=8)
                return first, reopened, second

        return await loop.run_in_executor(None, work)

    first, reopened, second = _run_service(
        scenario, store_dir=tmp_path, max_sessions=1
    )
    assert first["warm_start"] is False
    assert reopened["restored"] is True and reopened["warm"] is True
    assert second["warm_start"] is True


def test_eviction_matches_uninterrupted_session(tmp_path, instance, other_instance):
    """Evict-then-readmit must not change results: the solve after the
    round trip is bit-identical to one resident session's."""
    h = instance_hash(instance)

    async def scenario(service):
        loop = asyncio.get_running_loop()

        def work():
            with ServiceClient(service.socket_path) as c:
                c.open(instance)
                c.solve(h, seed=7)
                c.open(other_instance)   # evicts
                c.open(instance)         # restores
                return c.solve(h, seed=11)

        return await loop.run_in_executor(None, work)

    evicted = _run_service(scenario, store_dir=tmp_path, max_sessions=1)
    live = AllocationSession(instance, epsilon=0.2)
    live.solve(seed=7)
    expected = live.solve(seed=11)
    restored_mask = evicted["report"]["edge_mask"]
    np.testing.assert_array_equal(
        np.flatnonzero(expected.edge_mask), np.asarray(restored_mask["true_edges"])
    )


def test_seed_cursor_deterministic_and_persistent(tmp_path, instance):
    h = instance_hash(instance)

    def seeds_from_fresh_store(store_dir, n, checkpoint):
        async def scenario(service):
            loop = asyncio.get_running_loop()

            def work():
                with ServiceClient(service.socket_path) as c:
                    c.open(instance)
                    return [c.solve(h)["seed_used"] for _ in range(n)]

            return await loop.run_in_executor(None, work)

        return _run_service(
            scenario,
            store_dir=store_dir,
            max_sessions=1,
            checkpoint_on_commit=checkpoint,
        )

    # Deterministic: same service seed → same derived seed sequence.
    s1 = seeds_from_fresh_store(tmp_path / "a", 3, False)
    s2 = seeds_from_fresh_store(tmp_path / "b", 3, False)
    assert s1 == s2
    assert len(set(s1)) == 3  # distinct positions → distinct seeds

    # Persistent: a restart continues the cursor, not restarts it.
    first_two = seeds_from_fresh_store(tmp_path / "c", 2, True)
    assert first_two == s1[:2]
    third = seeds_from_fresh_store(tmp_path / "c", 1, True)
    assert third == [s1[2]]


def test_unknown_instance_typed_error(tmp_path):
    async def scenario(service):
        loop = asyncio.get_running_loop()

        def work():
            with ServiceClient(service.socket_path) as c:
                return c.solve("0" * 64)

        return await loop.run_in_executor(None, work)

    response = _run_service(scenario, store_dir=tmp_path)
    assert response["ok"] is False
    assert response["error"]["type"] == "unknown_instance"


def test_bad_request_typed_errors(tmp_path, instance):
    h = instance_hash(instance)

    async def scenario(service):
        loop = asyncio.get_running_loop()

        def work():
            with ServiceClient(service.socket_path) as c:
                c.open(instance)
                return [
                    c.call({"op": "nope"}),
                    c.call({"op": "open", "instance": "not-an-object"}),
                    c.solve(h, epsilon="high"),
                    c.solve(h, bogus_field=1),
                ]

        return await loop.run_in_executor(None, work)

    responses = _run_service(scenario, store_dir=tmp_path)
    assert all(r["ok"] is False for r in responses)
    assert {r["error"]["type"] for r in responses} == {"bad_request"}


def test_service_stats_and_forced_snapshot(tmp_path, instance):
    h = instance_hash(instance)

    async def scenario(service):
        loop = asyncio.get_running_loop()

        def work():
            with ServiceClient(service.socket_path) as c:
                c.open(instance)
                c.solve(h, seed=1)
                stats = c.stats()
                snap = c.snapshot()
                return stats, snap

        return await loop.run_in_executor(None, work)

    stats, snap = _run_service(scenario, store_dir=tmp_path)
    assert stats["counters"]["solves"] == 1
    resident = stats["residents"][h]
    assert resident["warm"] is True and resident["dirty"] is True
    assert snap == {"ok": True, "checkpointed": 1}


def test_engine_open_service_carries_config(tmp_path):
    from repro.api import Engine

    engine = Engine(epsilon=0.15, seed=42)
    service = engine.open_service(tmp_path, max_sessions=3)
    assert service.max_sessions == 3
    assert service.seed == 42
    assert service.session_kwargs["epsilon"] == 0.15
