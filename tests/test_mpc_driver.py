"""Tests for the full MPC algorithm (Theorem 3 driver)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.exact import optimum_value
from repro.core import params
from repro.core.mpc_driver import solve_allocation_mpc
from repro.graphs.generators import (
    load_balancing_instance,
    star_instance,
    union_of_forests,
)
from repro.mpc.costmodel import MPCCostModel

from tests.conftest import assert_feasible_fractional


EPS = 0.2


def test_simulate_mode_basic():
    inst = union_of_forests(40, 30, 2, capacity=2, seed=1)
    res = solve_allocation_mpc(inst, EPS, lam=2, seed=0)
    assert res.certificate is not None and res.certificate.satisfied
    assert res.mpc_rounds > 0
    assert res.ledger.phases >= 1
    assert_feasible_fractional(inst.graph, inst.capacities, res.allocation.x)
    opt = optimum_value(inst)
    assert opt <= res.guarantee * res.match_weight + 1e-9


def test_simulate_mode_with_guessing():
    inst = union_of_forests(40, 30, 3, capacity=2, seed=2)
    res = solve_allocation_mpc(inst, EPS, seed=0)
    assert res.meta["lambda_known"] is False
    assert res.meta["used_guess"] in res.ledger.guesses
    opt = optimum_value(inst)
    assert opt <= res.guarantee * res.match_weight + 1e-9


def test_ledger_categories_charged():
    inst = union_of_forests(30, 24, 2, capacity=2, seed=3)
    res = solve_allocation_mpc(inst, EPS, lam=2, seed=0)
    for cat in ("grouping", "sampling", "writeback", "termination_test"):
        assert res.ledger.by_category.get(cat, 0) >= 1, cat
    assert res.mpc_rounds == res.ledger.total_rounds


def test_rounds_below_azm18_baseline():
    """The headline: MPC rounds beat the O(log n / ε²) baseline."""
    inst = union_of_forests(200, 160, 2, capacity=2, seed=4)
    res = solve_allocation_mpc(inst, EPS, lam=2, seed=0)
    baseline = params.tau_azm18(inst.graph.n_right, EPS)
    assert res.mpc_rounds < baseline


def test_epsilon_cap():
    inst = star_instance(4)
    with pytest.raises(ValueError):
        solve_allocation_mpc(inst, 0.5)


def test_alpha_validated():
    inst = star_instance(4)
    with pytest.raises(ValueError):
        solve_allocation_mpc(inst, EPS, alpha=2.0)


def test_faithful_mode_matches_simulate_bitwise():
    inst = union_of_forests(14, 12, 2, capacity=2, seed=5)
    faithful = solve_allocation_mpc(
        inst, EPS, lam=2, mode="faithful", seed=123, sample_budget=6,
        space_slack=512.0,
    )
    simulate = solve_allocation_mpc(
        inst, EPS, lam=2, mode="simulate", sampler="keyed", seed=123,
        sample_budget=6,
    )
    assert np.array_equal(faithful.allocation.x, simulate.allocation.x)
    assert faithful.match_weight == simulate.match_weight
    assert faithful.local_rounds == simulate.local_rounds
    # Faithful mode routes real records, so the ledger saw their skew;
    # simulate mode never routes and its peak stays 0.
    assert faithful.ledger.peak_routed_records > 0
    assert simulate.ledger.peak_routed_records == 0


def test_faithful_mode_enforces_space():
    inst = union_of_forests(14, 12, 2, capacity=2, seed=5)
    res = solve_allocation_mpc(
        inst, EPS, lam=2, mode="faithful", seed=1, sample_budget=6,
        space_slack=512.0,
    )
    assert res.ledger.peak_machine_words > 0
    assert res.ledger.violations == []


def test_faithful_rejects_fast_sampler():
    inst = star_instance(4)
    with pytest.raises(ValueError, match="keyed"):
        solve_allocation_mpc(inst, EPS, lam=1, mode="faithful", sampler="fast")


def test_known_lambda_uses_fewer_or_equal_rounds_than_guessing():
    inst = union_of_forests(60, 50, 4, capacity=2, seed=8)
    known = solve_allocation_mpc(inst, EPS, lam=4, seed=0)
    guessed = solve_allocation_mpc(inst, EPS, seed=0)
    assert known.mpc_rounds <= guessed.mpc_rounds * 1.01 + 5


def test_load_balancing_instance_end_to_end():
    inst = load_balancing_instance(100, 10, locality=3, seed=9)
    res = solve_allocation_mpc(inst, EPS, lam=3, seed=0)
    opt = optimum_value(inst)
    # Balanced load-balancing instances are easy: near-optimal output.
    assert res.match_weight >= opt / (2 + 16 * EPS) - 1e-9
    assert_feasible_fractional(inst.graph, inst.capacities, res.allocation.x)


def test_mpc_rounds_consistent_with_cost_model_shape():
    """Measured rounds stay within small constant factors of the cost
    model's prediction for the same (n, λ, ε, α)."""
    inst = union_of_forests(100, 80, 4, capacity=2, seed=10)
    res = solve_allocation_mpc(inst, EPS, lam=4, seed=0)
    model = MPCCostModel(n=inst.graph.n_vertices, lam=4, epsilon=EPS, alpha=0.5)
    predicted = model.rounds_known_lambda()
    # The driver may stop early via the certificate, so measured ≤
    # predicted always; and it should be within 0.05–1× of prediction.
    assert res.mpc_rounds <= predicted
    assert res.mpc_rounds >= 1
