"""Golden regression tests: frozen outputs for fixed seeds.

These pin exact numeric outcomes of the deterministic pipeline so that
refactors cannot silently change algorithm semantics.  If one of these
fails after an intentional semantic change, regenerate the constants
with the printed values — but treat any unexpected diff as a bug.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.proportional import ProportionalRun
from repro.core.sampled import SampledRun
from repro.core.termination import evaluate_certificate
from repro.graphs.generators import slow_spread_instance, union_of_forests
from repro.rounding.sampling import round_once
from repro.core.local_driver import solve_fractional_fixed_tau


def test_golden_proportional_trajectory():
    inst = union_of_forests(30, 24, 3, capacity=2, seed=123)
    run = ProportionalRun(inst.graph, inst.capacities, 0.25)
    run.run(10)
    # Level-set histogram after 10 rounds is a complete fingerprint of
    # the integer-exponent trajectory.
    hist = run.level_histogram()
    assert hist.sum() == 24
    assert run.beta_exp.min() >= -10 and run.beta_exp.max() <= 10
    # Total capacity (48) exceeds the active left mass, so the dynamics
    # allocate every unit: weight = |active L| = 30, exactly.
    assert run.match_weight() == pytest.approx(30.0, abs=1e-9)


def test_golden_certificate_round():
    inst = slow_spread_instance(8, width=4)
    run = ProportionalRun(inst.graph, inst.capacities, 0.1)
    fired = None
    for r in range(1, 64):
        run.step()
        if evaluate_certificate(run).satisfied:
            fired = r
            break
    assert fired == 17


def test_golden_sampled_run():
    inst = union_of_forests(20, 16, 2, capacity=2, seed=7)
    run = SampledRun(
        inst.graph, inst.capacities, 0.25, block=2, sample_budget=8,
        sampler="keyed", seed=99,
    )
    run.run_rounds(6)
    assert run.rounds_completed == 6
    assert run.match_weight() == pytest.approx(20.0, abs=1e-9)


def test_golden_rounding_size():
    inst = union_of_forests(40, 30, 2, capacity=2, seed=11)
    frac = solve_fractional_fixed_tau(inst, 0.25).allocation
    out = round_once(inst.graph, inst.capacities, frac, seed=2024)
    assert out.size == int(out.edge_mask.sum())
    # Frozen: the exact sampled size for this (instance, seed).
    assert out.size == 9


def test_golden_values_stable_across_runs():
    """The same constructions twice — catches hidden global state."""
    vals = []
    for _ in range(2):
        inst = union_of_forests(25, 20, 2, capacity=2, seed=5)
        run = ProportionalRun(inst.graph, inst.capacities, 0.2).run(8)
        vals.append((run.match_weight(), tuple(run.beta_exp.tolist())))
    assert vals[0] == vals[1]


def _service_transcript() -> list[tuple]:
    """One canonical service conversation, reduced to a comparable
    transcript: (op, warm_start, seed_used, final_size) per solve."""
    import asyncio
    import tempfile

    from repro.graphs.generators import power_law_instance
    from repro.serve.service import AllocationService, ServiceClient
    from repro.serve.shm import instance_hash

    instance = power_law_instance(n_left=60, n_right=24, seed=3)
    h = instance_hash(instance)

    async def run():
        service = AllocationService(
            tempfile.mkdtemp(prefix="golden_service_"),
            seed=0,
            session_kwargs={"epsilon": 0.2},
        )
        await service.start()
        loop = asyncio.get_running_loop()

        def conversation():
            rows = []
            with ServiceClient(service.socket_path) as client:
                client.open(instance)
                for request in (
                    {},                                       # cursor seed 0
                    {"capacity_updates": {"0": 3}},           # cursor seed 1
                    {"seed": 77},                             # explicit seed
                    {},                                       # cursor seed 2
                ):
                    r = client.solve(h, **request)
                    rows.append((
                        "solve",
                        r["warm_start"],
                        r["seed_used"],
                        r["report"]["summary"]["final_size"],
                    ))
            return rows

        rows = await loop.run_in_executor(None, conversation)
        await service.stop()
        return rows

    return asyncio.run(run())


def test_golden_service_transcript():
    """The full wire path — open, seed cursor, warm lineage — is a
    deterministic function of (instance, service seed, request order).

    Pins the structural fingerprint (warm flags, seed equality
    pattern, sizes stable across identical runs) rather than raw seed
    integers, so the golden survives platforms while still catching
    any change to cursor derivation or warm-start plumbing.
    """
    first = _service_transcript()
    second = _service_transcript()
    # Bit-stable across service lifetimes (fresh store each time).
    assert first == second
    warm_flags = [row[1] for row in first]
    assert warm_flags == [False, True, True, True]
    assert first[2][2] == 77                      # explicit seed honored
    seeds = [row[2] for row in first]
    assert len({seeds[0], seeds[1], seeds[3]}) == 3   # distinct cursor draws
    assert all(row[3] > 0 for row in first)
