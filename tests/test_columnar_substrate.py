"""Parity suite: columnar vs object MPC substrate (DESIGN.md §7).

The contract under test: both substrates execute the same
communication pattern, so round ledgers, per-machine word counters,
budget-violation strings, and numeric trajectories are bit-identical.
Plus the substrate registry, dtype word accounting, and the edge cases
the ISSUE calls out (empty exchanges, single-machine clusters,
zero-record routes, exact-budget batches, degree-0 vertices).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.mpc_driver import solve_allocation_mpc
from repro.graphs.generators import union_of_forests
from repro.mpc.cluster import MPCCluster
from repro.mpc.columnar import ColumnarCluster, Shipment
from repro.mpc.columns import ColumnBatch, dtype_words, ragged_from_rows
from repro.mpc.exponentiation import collect_balls
from repro.mpc.machine import SpaceViolation, sizeof_words
from repro.mpc.primitives import (
    route_by_key,
    sample_sort,
    tree_broadcast,
    tree_reduce,
    tree_reduce_vector,
)
from repro.mpc.simulation import simulate_local_rounds_on_cluster
from repro.mpc import substrate as substrate_mod
from repro.mpc.substrate import (
    available_substrates,
    get_substrate,
    make_cluster,
    set_substrate,
    use_substrate,
)


def ledger_of(cluster) -> list[tuple]:
    return [
        (r.round_index, r.label, r.total_words_moved, r.max_sent, r.max_received)
        for r in cluster.round_log
    ]


def machine_counters(cluster) -> list[tuple]:
    return [
        (
            m.stored_words,
            m.peak_stored_words,
            m.sent_words_this_round,
            m.received_words_this_round,
            m.peak_traffic_words,
        )
        for m in cluster.machines
    ]


def pair(n_machines=4, words=10_000, strict=True):
    return (
        MPCCluster(n_machines, words, strict=strict),
        ColumnarCluster(n_machines, words, strict=strict),
    )


# ----------------------------------------------------------------------
# dtype word accounting
# ----------------------------------------------------------------------

def test_dtype_words_rounds_up_subword_scalars():
    assert dtype_words(np.int64) == 1
    assert dtype_words(np.float64) == 1
    assert dtype_words(np.bool_) == 1
    assert dtype_words(np.int32) == 1


def test_batch_words_match_sizeof_words_fixed():
    # ("edge", u, v) → 3 words, priced from dtypes, not traversal.
    batch = ColumnBatch(
        "edge", {"u": np.arange(5, dtype=np.int64), "v": np.arange(5, dtype=np.int64)}
    )
    per = batch.words_per_record()
    assert per.tolist() == [sizeof_words(("edge", int(i), int(i))) for i in range(5)]
    # ("cvert", v, flag, alloc) → 4 words; bool still costs a word.
    batch = ColumnBatch(
        "cvert",
        {
            "v": np.arange(3, dtype=np.int64),
            "flag": np.array([True, False, True]),
            "alloc": np.zeros(3),
        },
    )
    assert batch.words_per_record().tolist() == [
        sizeof_words(("cvert", v, bool(v % 2 == 0), 0.0)) for v in range(3)
    ]


def test_batch_words_match_sizeof_words_ragged():
    rows = [((0, 1), (1, 2)), (), ((3, 4),)]
    offsets, payload = ragged_from_rows(
        [[c for p in row for c in p] for row in rows]
    )
    batch = ColumnBatch(
        "ball", {"v": np.arange(3, dtype=np.int64)}, offsets, payload
    )
    assert batch.words_per_record().tolist() == [
        sizeof_words(("ball", i, rows[i])) for i in range(3)
    ]


def test_batch_take_and_concat_ragged():
    offsets, payload = ragged_from_rows([[1, 2], [], [3, 4, 5]])
    batch = ColumnBatch("k", {"v": np.arange(3, dtype=np.int64)}, offsets, payload)
    taken = batch.take(np.array([2, 0]))
    assert taken.payload_row(0).tolist() == [3, 4, 5]
    assert taken.payload_row(1).tolist() == [1, 2]
    both = ColumnBatch.concat([batch, taken])
    assert both.n_records == 5
    assert both.total_words() == batch.total_words() + taken.total_words()


def test_batch_validation():
    with pytest.raises(ValueError, match="ragged column lengths"):
        ColumnBatch("k", {"a": np.zeros(2), "b": np.zeros(3)})
    with pytest.raises(ValueError, match="at least one column"):
        ColumnBatch("k", {})
    with pytest.raises(ValueError, match="key column"):
        ColumnBatch("k", {"a": np.zeros(2)}, key="missing")


# ----------------------------------------------------------------------
# substrate registry
# ----------------------------------------------------------------------

def test_registry_names_and_make_cluster():
    assert {"object", "columnar"} <= set(available_substrates())
    assert isinstance(make_cluster(2, 64, substrate="object"), MPCCluster)
    assert isinstance(make_cluster(2, 64, substrate="columnar"), ColumnarCluster)
    with pytest.raises(ValueError, match="unknown MPC substrate"):
        make_cluster(2, 64, substrate="sparse")


def test_set_and_use_substrate():
    before = get_substrate()
    prev = set_substrate("object")
    try:
        assert prev == before
        assert isinstance(make_cluster(1, 32), MPCCluster)
        with use_substrate("columnar"):
            assert isinstance(make_cluster(1, 32), ColumnarCluster)
        assert get_substrate() == "object"
    finally:
        set_substrate(before)


def test_env_var_initialises_substrate(monkeypatch):
    monkeypatch.setattr(substrate_mod, "_ACTIVE", None)
    monkeypatch.setenv(substrate_mod.ENV_VAR, "object")
    assert get_substrate() == "object"
    monkeypatch.setattr(substrate_mod, "_ACTIVE", None)
    monkeypatch.delenv(substrate_mod.ENV_VAR, raising=False)
    assert get_substrate() == substrate_mod.DEFAULT_SUBSTRATE


# ----------------------------------------------------------------------
# exchange-level parity and edge cases
# ----------------------------------------------------------------------

def load_pair(co, cc, n=12):
    co.load([("rec", i, i * 10) for i in range(n)])
    cc.load_batches(
        [
            ColumnBatch(
                "rec",
                {
                    "k": np.arange(n, dtype=np.int64),
                    "val": np.arange(n, dtype=np.int64) * 10,
                },
                key="k",
            )
        ]
    )


def test_route_by_key_parity():
    co, cc = pair()
    load_pair(co, cc)
    h_o = route_by_key(co, key_fn=lambda rec: rec[1], return_histogram=True)
    h_c = route_by_key(cc, return_histogram=True)
    assert np.array_equal(h_o, h_c)
    assert ledger_of(co) == ledger_of(cc)
    assert machine_counters(co) == machine_counters(cc)
    batch, home = cc.rows("rec")
    assert np.array_equal(batch.cols["k"] % 4, home)


def test_columnar_rejects_callable_keys():
    cc = ColumnarCluster(2, 1000)
    cc.load_batches([ColumnBatch("r", {"k": np.arange(3, dtype=np.int64)}, key="k")])
    with pytest.raises(TypeError, match="column name"):
        route_by_key(cc, key_fn=lambda rec: rec[1])
    with pytest.raises(TypeError, match="column name"):
        sample_sort(cc, key_fn=lambda rec: rec[1])


def test_zero_record_route_by_key_both_substrates():
    co, cc = pair()
    co.load([])
    cc.load_batches([])
    route_by_key(co, key_fn=lambda rec: rec[1])
    route_by_key(cc)
    assert ledger_of(co) == ledger_of(cc)
    assert co.rounds_executed == cc.rounds_executed == 1
    assert ledger_of(cc)[0][2:] == (0, 0, 0)


def test_empty_exchange_on_empty_kind():
    # A kind whose batch has zero records persists as an empty kind.
    cc = ColumnarCluster(3, 100)
    cc.load_batches(
        [ColumnBatch("rec", {"k": np.empty(0, dtype=np.int64)}, key="k")]
    )
    route_by_key(cc)
    assert cc.has_kind("rec")
    assert cc.rows("rec")[0].n_records == 0
    assert cc.total_stored_words() == 0


def test_single_machine_cluster_both_substrates():
    co, cc = pair(n_machines=1, words=1000)
    load_pair(co, cc, n=5)
    route_by_key(co, key_fn=lambda rec: rec[1])
    route_by_key(cc)
    assert tree_broadcast(co, (1.0, 2.0)) == 0
    assert tree_broadcast(cc, (1.0, 2.0)) == 0
    assert ledger_of(co) == ledger_of(cc)
    total_o, r_o = tree_reduce(
        co, lambda rec: rec[2] if rec[0] == "rec" else None, lambda a, b: a + b, 0
    )
    total_c, r_c = tree_reduce_vector(
        cc,
        np.array([[float(cc.rows("rec")[0].cols["val"].sum())]]),
    )
    assert (total_o, r_o) == (int(total_c[0]), r_c) == (100, 0)


def test_exact_budget_batch_is_legal_one_word_over_raises():
    # 5 records × 3 words on one machine: exactly S=15 is fine...
    for sub in ("object", "columnar"):
        co = make_cluster(2, 15, substrate=sub)
        if sub == "object":
            co.load([("r", i, 0) for i in range(5)], by=lambda rec: 0)
            assert co.machines[0].stored_words == 15
        else:
            co.load_batches(
                [
                    ColumnBatch(
                        "r",
                        {
                            "k": np.arange(5, dtype=np.int64),
                            "x": np.zeros(5, dtype=np.int64),
                        },
                        key="k",
                    )
                ],
                home=[np.zeros(5, dtype=np.int64)],
            )
            assert co.machines[0].stored_words == 15
        assert co.violations == []
    # ... and one more word over the budget raises on both substrates.
    co = make_cluster(2, 14, substrate="object")
    with pytest.raises(SpaceViolation):
        co.load([("r", i, 0) for i in range(5)], by=lambda rec: 0)
    cc = make_cluster(2, 14, substrate="columnar")
    with pytest.raises(SpaceViolation):
        cc.load_batches(
            [
                ColumnBatch(
                    "r",
                    {"k": np.arange(5, dtype=np.int64), "x": np.zeros(5, dtype=np.int64)},
                    key="k",
                )
            ],
            home=[np.zeros(5, dtype=np.int64)],
        )
    # Identical violation strings in non-strict mode.
    pair_clusters = pair(n_machines=2, words=14, strict=False)
    pair_clusters[0].load([("r", i, 0) for i in range(5)], by=lambda rec: 0)
    pair_clusters[1].load_batches(
        [
            ColumnBatch(
                "r",
                {"k": np.arange(5, dtype=np.int64), "x": np.zeros(5, dtype=np.int64)},
                key="k",
            )
        ],
        home=[np.zeros(5, dtype=np.int64)],
    )
    assert pair_clusters[0].violations == pair_clusters[1].violations != []


def test_traffic_violation_parity_strings():
    co, cc = pair(n_machines=2, words=6, strict=False)
    co.load([("a", 1, 0), ("b", 1, 0)])
    cc.load_batches(
        [
            ColumnBatch(
                "rec",
                {"k": np.ones(2, dtype=np.int64), "x": np.zeros(2, dtype=np.int64)},
                key="k",
            )
        ]
    )
    # Funnel everything onto machine 1: 3 words sent by machine 0 is
    # fine, but storage of 6 is fine too — tighten traffic via words=6:
    # machine 0 ships one 3-word record (ok), then overload via repeat.
    def flood(mid, records):
        for rec in records:
            yield 1, rec

    co.exchange(flood)
    batch, home = cc.rows("rec")
    cc.exchange_columnar(
        [Shipment(batch, home, np.ones(batch.n_records, dtype=np.int64))]
    )
    assert ledger_of(co) == ledger_of(cc)
    assert co.violations == cc.violations


def test_out_of_range_destination_raises():
    cc = ColumnarCluster(2, 100)
    cc.load_batches([ColumnBatch("r", {"k": np.arange(2, dtype=np.int64)}, key="k")])
    batch, home = cc.rows("r")
    with pytest.raises(ValueError, match="out of range"):
        cc.exchange_columnar([Shipment(batch, home, np.array([0, 5]))])


# ----------------------------------------------------------------------
# primitives parity
# ----------------------------------------------------------------------

def test_tree_broadcast_parity():
    co, cc = pair(n_machines=9, words=1000)
    co.load([])
    cc.load_batches([])
    r_o = tree_broadcast(co, (1.0, 2.0, 3.0), tag="cfg")
    r_c = tree_broadcast(cc, (1.0, 2.0, 3.0), tag="cfg")
    assert r_o == r_c >= 1
    assert ledger_of(co) == ledger_of(cc)
    assert machine_counters(co) == machine_counters(cc)
    # Every machine holds the payload on both substrates.
    assert all(("cfg", (1.0, 2.0, 3.0)) in m.storage for m in co.machines)
    batch, home = cc.rows("cfg")
    assert sorted(home.tolist()) == list(range(9))
    assert all(batch.payload_row(i).tolist() == [1.0, 2.0, 3.0] for i in range(9))


def test_tree_reduce_parity_with_vector():
    co, cc = pair(n_machines=5, words=1000)
    vals = list(range(1, 11))
    co.load([("val", v) for v in vals])
    cc.load_batches(
        [ColumnBatch("val", {"v": np.asarray(vals, dtype=np.int64)}, key="v")]
    )
    total_o, r_o = tree_reduce(
        co, extract=lambda rec: rec[1], combine=lambda a, b: a + b, zero=0
    )
    # Columnar: per-machine partials computed vectorized, same fold tree.
    batch, home = cc.rows("val")
    partials = np.bincount(home, weights=batch.cols["v"], minlength=5).reshape(-1, 1)
    total_c, r_c = tree_reduce_vector(cc, partials)
    assert total_o == int(total_c[0]) == 55
    assert r_o == r_c
    assert ledger_of(co) == ledger_of(cc)
    assert machine_counters(co) == machine_counters(cc)
    assert not cc.has_kind("reduce")


def test_tree_reduce_vector_requires_columnar_and_shape():
    co, cc = pair(n_machines=3, words=100)
    with pytest.raises(TypeError, match="tree_reduce_vector"):
        tree_reduce(cc, lambda r: r, lambda a, b: a, 0)
    with pytest.raises(ValueError, match="partial rows"):
        tree_reduce_vector(cc, np.zeros((2, 1)))


def test_sample_sort_parity():
    rng = np.random.default_rng(3)
    values = rng.permutation(60).tolist()
    co, cc = pair(n_machines=4, words=10_000)
    co.load([("rec", v) for v in values])
    cc.load_batches(
        [ColumnBatch("rec", {"v": np.asarray(values, dtype=np.int64)}, key="v")]
    )
    r_o = sample_sort(co, key_fn=lambda rec: rec[1], seed=1)
    r_c = sample_sort(cc, seed=1)
    assert r_o == r_c >= 3
    assert ledger_of(co) == ledger_of(cc)
    flat_o = [rec[1] for m in co.machines for rec in m.storage]
    batch, home = cc.rows("rec")
    assert flat_o == batch.cols["v"].tolist() == sorted(values)
    assert np.all(home[:-1] <= home[1:])


@given(st.lists(st.integers(0, 1000), min_size=0, max_size=60), st.integers(2, 5))
@settings(max_examples=20, deadline=None)
def test_property_sample_sort_parity(values, n_machines):
    co = MPCCluster(n_machines, 100_000)
    cc = ColumnarCluster(n_machines, 100_000)
    co.load([("rec", v) for v in values])
    cc.load_batches(
        [ColumnBatch("rec", {"v": np.asarray(values, dtype=np.int64)}, key="v")]
    )
    sample_sort(co, key_fn=lambda rec: rec[1], seed=0)
    sample_sort(cc, seed=0)
    assert ledger_of(co) == ledger_of(cc)
    assert [rec[1] for m in co.machines for rec in m.storage] == sorted(values)
    assert cc.rows("rec")[0].cols["v"].tolist() == sorted(values)


# ----------------------------------------------------------------------
# exponentiation parity (incl. degree-0 vertices)
# ----------------------------------------------------------------------

def test_collect_balls_parity_with_degree_zero_vertices():
    # Vertices 5 and 6 are isolated; the path 0-1-2-3-4 is connected.
    edges = [(i, i + 1) for i in range(4)]
    co, cc = pair(n_machines=3, words=10_000)
    balls_o, r_o = collect_balls(co, 7, edges, radius=2)
    balls_c, r_c = collect_balls(cc, 7, edges, radius=2)
    assert r_o == r_c == 2
    assert balls_o == balls_c
    assert balls_c[5] == () and balls_c[6] == ()
    assert ledger_of(co) == ledger_of(cc)
    assert machine_counters(co) == machine_counters(cc)


def test_collect_balls_parity_random_graph():
    inst = union_of_forests(10, 8, 2, seed=5)
    ea, eb = inst.graph.undirected_edges()
    edges = list(zip(ea.tolist(), eb.tolist()))
    co, cc = pair(n_machines=4, words=100_000)
    balls_o, r_o = collect_balls(co, inst.graph.n_vertices, edges, radius=4)
    balls_c, r_c = collect_balls(cc, inst.graph.n_vertices, edges, radius=4)
    assert balls_o == balls_c
    assert r_o == r_c
    assert ledger_of(co) == ledger_of(cc)
    assert machine_counters(co) == machine_counters(cc)


def test_collect_balls_custom_owner_parity():
    edges = [(0, 1), (1, 2), (2, 3)]
    co, cc = pair(n_machines=3, words=10_000)
    owner = lambda v: (v * 2 + 1) % 3
    balls_o, _ = collect_balls(co, 4, edges, radius=2, owner_of_vertex=owner)
    balls_c, _ = collect_balls(cc, 4, edges, radius=2, owner_of_vertex=owner)
    assert balls_o == balls_c
    assert ledger_of(co) == ledger_of(cc)


# ----------------------------------------------------------------------
# direct simulation and driver parity
# ----------------------------------------------------------------------

def test_direct_simulation_bitwise_parity():
    inst = union_of_forests(20, 16, 3, capacity=2, seed=7)
    co = MPCCluster(9, 8192)
    cc = ColumnarCluster(9, 8192)
    res_o = simulate_local_rounds_on_cluster(
        inst.graph, inst.capacities, 0.2, tau=6, cluster=co
    )
    res_c = simulate_local_rounds_on_cluster(
        inst.graph, inst.capacities, 0.2, tau=6, cluster=cc
    )
    assert np.array_equal(res_o.beta_exp, res_c.beta_exp)
    assert np.array_equal(res_o.alloc, res_c.alloc)  # bit-identical
    assert res_o.peak_machine_words == res_c.peak_machine_words
    assert res_o.violations == res_c.violations == []
    assert ledger_of(co) == ledger_of(cc)
    assert machine_counters(co) == machine_counters(cc)


@given(st.integers(0, 2**31 - 1), st.integers(1, 4))
@settings(max_examples=8, deadline=None)
def test_property_direct_simulation_parity(seed, tau):
    inst = union_of_forests(10, 8, 2, capacity=2, seed=seed)
    kwargs = dict(space_slack=1024.0)
    res_o = simulate_local_rounds_on_cluster(
        inst.graph, inst.capacities, 0.3, tau=tau, substrate="object", **kwargs
    )
    res_c = simulate_local_rounds_on_cluster(
        inst.graph, inst.capacities, 0.3, tau=tau, substrate="columnar", **kwargs
    )
    assert np.array_equal(res_o.beta_exp, res_c.beta_exp)
    assert np.array_equal(res_o.alloc, res_c.alloc)
    assert res_o.mpc_rounds == res_c.mpc_rounds


def test_faithful_driver_substrate_parity():
    inst = union_of_forests(14, 12, 2, capacity=2, seed=5)
    kwargs = dict(lam=2, mode="faithful", seed=123, sample_budget=6, space_slack=512.0)
    res_o = solve_allocation_mpc(inst, 0.2, substrate="object", **kwargs)
    res_c = solve_allocation_mpc(inst, 0.2, substrate="columnar", **kwargs)
    assert res_o.ledger.by_category == res_c.ledger.by_category
    assert res_o.mpc_rounds == res_c.mpc_rounds
    assert res_o.ledger.phases == res_c.ledger.phases
    assert res_o.ledger.peak_machine_words == res_c.ledger.peak_machine_words
    assert res_o.ledger.peak_global_words == res_c.ledger.peak_global_words
    assert res_o.ledger.peak_routed_records == res_c.ledger.peak_routed_records
    assert res_o.ledger.violations == res_c.ledger.violations == []
    assert res_o.certificate == res_c.certificate  # incl. float upper_mass
    assert np.array_equal(res_o.allocation.x, res_c.allocation.x)
    assert res_o.match_weight == res_c.match_weight
    assert res_o.meta["substrate"] == "object"
    assert res_c.meta["substrate"] == "columnar"


def test_faithful_driver_respects_active_substrate():
    inst = union_of_forests(10, 8, 2, capacity=2, seed=3)
    with use_substrate("object"):
        res = solve_allocation_mpc(
            inst, 0.2, lam=2, mode="faithful", seed=9, sample_budget=6,
            space_slack=512.0,
        )
    assert res.meta["substrate"] == "object"
