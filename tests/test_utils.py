"""Tests for the shared utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.rng import (
    RngFactory,
    as_generator,
    choice_without_replacement,
    permutation_inverse,
    spawn,
)
from repro.utils.tables import Table, geometric_mean, summarize_series
from repro.utils.validation import (
    check_fraction,
    check_in_range,
    check_integer_array,
    check_nonnegative_int,
    check_positive_int,
    check_probability,
)


def test_as_generator_passthrough():
    g = np.random.default_rng(0)
    assert as_generator(g) is g


def test_as_generator_from_int_deterministic():
    a = as_generator(42).integers(0, 1000, 5)
    b = as_generator(42).integers(0, 1000, 5)
    assert np.array_equal(a, b)


def test_spawn_independence_and_determinism():
    kids_a = spawn(7, 3)
    kids_b = spawn(7, 3)
    vals_a = [g.integers(0, 10**9) for g in kids_a]
    vals_b = [g.integers(0, 10**9) for g in kids_b]
    assert vals_a == vals_b
    assert len(set(vals_a)) == 3  # overwhelmingly likely distinct


def test_spawn_negative_rejected():
    with pytest.raises(ValueError):
        spawn(0, -1)


def test_rng_factory_keyed_reproducibility():
    f = RngFactory(123)
    x = f.get(1, 2, 3).integers(0, 10**9)
    y = f.get(1, 2, 3).integers(0, 10**9)
    z = f.get(1, 2, 4).integers(0, 10**9)
    assert x == y
    assert x != z


def test_rng_factory_rejects_non_int_keys():
    f = RngFactory(0)
    with pytest.raises(TypeError):
        f.get("a")  # type: ignore[arg-type]


def test_permutation_inverse():
    perm = np.array([2, 0, 1])
    inv = permutation_inverse(perm)
    assert np.array_equal(perm[inv], np.arange(3))


def test_choice_without_replacement_degenerates():
    rng = np.random.default_rng(0)
    full = choice_without_replacement(rng, 5, 10)
    assert np.array_equal(full, np.arange(5))
    sub = choice_without_replacement(rng, 100, 10)
    assert len(set(sub.tolist())) == 10


def test_table_rendering():
    t = Table(title="demo")
    t.add_row(a=1, b=2.5)
    t.add_row(a=3, c="x")
    t.add_note("a note")
    ascii_out = t.to_ascii()
    assert "demo" in ascii_out and "a note" in ascii_out
    md = t.to_markdown()
    assert md.count("|") > 4
    assert t.column("a") == [1, 3]
    assert t.column("c") == [None, "x"]
    js = t.to_json()
    assert '"title"' in js


def test_summarize_series():
    s = summarize_series([1.0, 2.0, 3.0])
    assert s["mean"] == 2.0 and s["min"] == 1.0 and s["max"] == 3.0
    with pytest.raises(ValueError):
        summarize_series([])


def test_geometric_mean():
    assert abs(geometric_mean([1, 4]) - 2.0) < 1e-12
    with pytest.raises(ValueError):
        geometric_mean([0.0, 1.0])


def test_validators():
    assert check_positive_int(3, "x") == 3
    with pytest.raises(ValueError):
        check_positive_int(0, "x")
    with pytest.raises(TypeError):
        check_positive_int(1.5, "x")
    with pytest.raises(TypeError):
        check_positive_int(True, "x")
    assert check_nonnegative_int(0, "x") == 0
    assert check_fraction(0.25, "eps") == 0.25
    with pytest.raises(ValueError):
        check_fraction(0.0, "eps")
    with pytest.raises(ValueError):
        check_fraction(float("nan"), "eps")
    assert check_probability(0.0, "p") == 0.0
    with pytest.raises(ValueError):
        check_probability(1.5, "p")
    assert check_in_range(2.0, "v", 1, 3) == 2.0
    with pytest.raises(ValueError):
        check_in_range(5, "v", 1, 3)


def test_check_integer_array_coercions():
    out = check_integer_array(np.array([1.0, 2.0]), "arr")
    assert out.dtype == np.int64
    with pytest.raises(ValueError):
        check_integer_array(np.array([1.5]), "arr")
    with pytest.raises(TypeError):
        check_integer_array(np.array(["a"]), "arr")
