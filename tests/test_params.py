"""Tests for the closed-form parameter schedules (repro.core.params)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import params


def test_tau_two_approx_monotone_in_lambda():
    taus = [params.tau_two_approx(lam, 0.1) for lam in (1, 2, 8, 64, 1024)]
    assert taus == sorted(taus)
    assert taus[-1] > taus[0]


def test_tau_two_approx_matches_formula():
    lam, eps = 16, 0.25
    expected = math.ceil(math.log(4 * lam / eps) / math.log(1.25)) + 1
    assert params.tau_two_approx(lam, eps) == expected


def test_tau_two_approx_decreasing_in_eps():
    assert params.tau_two_approx(8, 0.05) > params.tau_two_approx(8, 0.5)


def test_tau_one_plus_eps_dominates_two_approx():
    # The (1+eps) regime is much longer than the 2-approx regime.
    assert params.tau_one_plus_eps(1000, 0.1) > params.tau_two_approx(1000, 0.1)


def test_tau_azm18_grows_with_n():
    assert params.tau_azm18(10**6, 0.1) > params.tau_azm18(10**2, 0.1)


def test_approx_factors():
    assert params.approx_factor_two_regime(0.1) == pytest.approx(3.0)
    assert params.approx_factor_adaptive(0.25, 4.0) == pytest.approx(2 + 16 * 0.25)
    assert params.approx_factor_one_plus_eps(0.25, 4.0) == pytest.approx(1 + 18 * 0.25)
    with pytest.raises(ValueError):
        params.approx_factor_adaptive(0.1, 0.5)


def test_block_length_min_of_two_terms():
    # Tiny λ: the λ term wins and clamps at 1.
    assert params.block_length(2**30, 2, 0.25, 0.5) >= 1
    # With divisor 1 the λ dependence is visible.
    small = params.block_length(2**30, 2**4, 0.25, 0.9, divisor=1)
    large = params.block_length(2**30, 2**24, 0.25, 0.9, divisor=1)
    assert large > small


def test_block_length_respects_alpha():
    lo = params.block_length(2**20, 2**30, 0.25, 0.1, divisor=1)
    hi = params.block_length(2**20, 2**30, 0.25, 0.9, divisor=1)
    assert hi >= lo


def test_block_length_validation():
    with pytest.raises(ValueError):
        params.block_length(10, 2, 0.25, 1.5)
    with pytest.raises(ValueError):
        params.block_length(10, 2, 0.25, 0.5, divisor=0)


def test_sample_size_grows_with_block():
    assert params.sample_size(4, 0.25, 1000) > params.sample_size(1, 0.25, 1000)


def test_lemma11_sample_size():
    s = params.lemma11_sample_size(2.0, 0.25, 1000)
    assert s >= 20 * 4 * math.log(1000) / 0.25**4 - 1
    with pytest.raises(ValueError):
        params.lemma11_sample_size(0.5, 0.25, 10)


def test_lambda_guess_schedule():
    assert params.lambda_guess(0) == 2
    assert params.lambda_guess(1) == 16
    assert params.lambda_guess(2) == 65536
    sched = params.lambda_guess_schedule(100)
    assert sched == [2, 16, 65536]
    with pytest.raises(ValueError):
        params.lambda_guess(-1)


def test_lambda_guess_sqrt_log_doubles():
    for i in range(4):
        assert math.sqrt(math.log2(params.lambda_guess(i))) == pytest.approx(2**i)


def test_predicted_mpc_rounds_shape():
    # More blocks per phase → fewer phases → fewer rounds overall.
    slow = params.predicted_mpc_rounds(100, 1)
    fast = params.predicted_mpc_rounds(100, 10)
    assert fast < slow


@given(st.integers(1, 2**20), st.sampled_from([0.05, 0.1, 0.25, 0.5, 1.0]))
@settings(max_examples=50, deadline=None)
def test_property_tau_budget_positive_and_sane(lam, eps):
    tau = params.tau_two_approx(lam, eps)
    assert tau >= 1
    # The budget must cover the analysis requirement log_{1+eps}(4λ/ε)+1.
    assert tau >= math.log(4 * lam / eps) / math.log1p(eps)


@given(st.integers(2, 2**16), st.sampled_from([0.05, 0.25]), st.floats(0.1, 0.9))
@settings(max_examples=30, deadline=None)
def test_property_block_length_valid(n, eps, alpha):
    b = params.block_length(n, 8, eps, alpha)
    assert b >= 1
