"""Tests for Algorithm 2 (sampled phases) and the Lemma 13 machinery."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import params
from repro.core.adaptive import (
    K_MAX,
    K_MIN,
    RandomizedThresholds,
    reconstruct_round_thresholds,
)
from repro.core.proportional import ProportionalRun, ReplayThresholds
from repro.core.sampled import (
    FastSampler,
    KeyedSampler,
    SampledRun,
    build_side_groups,
)
from repro.graphs.generators import (
    planted_dense_core_instance,
    star_instance,
    union_of_forests,
)

from tests.conftest import assert_feasible_fractional


# ----------------------------------------------------------------------
# Side groups
# ----------------------------------------------------------------------

def test_build_side_groups_partition():
    indptr = np.array([0, 3, 3, 5], dtype=np.int64)
    keys = np.array([2, 1, 2, 0, 0], dtype=np.int64)
    groups = build_side_groups(indptr, keys)
    # Row 0 has keys {1: one slot, 2: two slots}; row 2 has {0: two}.
    assert groups.n_groups == 3
    assert groups.group_row.tolist() == [0, 0, 2]
    assert groups.group_key.tolist() == [1, 2, 0]
    assert groups.group_sizes.tolist() == [1, 2, 2]
    # slot_order covers all slots exactly once.
    assert sorted(groups.slot_order.tolist()) == list(range(5))
    # Slots in each group indeed carry the group key and row.
    gid = groups.position_group_ids()
    for pos in range(5):
        slot = groups.slot_order[pos]
        g = gid[pos]
        assert keys[slot] == groups.group_key[g]


def test_build_side_groups_empty():
    groups = build_side_groups(np.array([0, 0], dtype=np.int64), np.empty(0, dtype=np.int64))
    assert groups.n_groups == 0
    assert groups.group_sizes.size == 0


# ----------------------------------------------------------------------
# Samplers
# ----------------------------------------------------------------------

def _demo_groups():
    indptr = np.array([0, 6, 10], dtype=np.int64)
    keys = np.array([0, 0, 0, 1, 1, 1, 0, 0, 0, 0], dtype=np.int64)
    return build_side_groups(indptr, keys)


@pytest.mark.parametrize("sampler_cls", [KeyedSampler, FastSampler])
def test_sampler_budget_respected(sampler_cls):
    groups = _demo_groups()
    sampler = sampler_cls(seed=0)
    pos = sampler.sample_positions(groups, 0, 0, budget=2)
    gid = groups.position_group_ids()
    counts = np.bincount(gid[pos], minlength=groups.n_groups)
    assert np.all(counts == np.minimum(2, groups.group_sizes))
    # No duplicate positions.
    assert len(set(pos.tolist())) == pos.size


@pytest.mark.parametrize("sampler_cls", [KeyedSampler, FastSampler])
def test_sampler_full_budget_takes_everything(sampler_cls):
    groups = _demo_groups()
    sampler = sampler_cls(seed=1)
    pos = sampler.sample_positions(groups, 0, 3, budget=100)
    assert sorted(pos.tolist()) == list(range(groups.n_slots))


def test_keyed_sampler_reproducible_per_vertex():
    groups = _demo_groups()
    a = KeyedSampler(seed=42).sample_positions(groups, 0, 5, budget=2)
    b = KeyedSampler(seed=42).sample_positions(groups, 0, 5, budget=2)
    assert np.array_equal(a, b)
    c = KeyedSampler(seed=43).sample_positions(groups, 0, 5, budget=2)
    assert not np.array_equal(a, c) or groups.n_slots <= 2


def test_fast_sampler_varies_between_rounds():
    groups = _demo_groups()
    sampler = FastSampler(seed=0)
    a = sampler.sample_positions(groups, 0, 0, budget=2)
    b = sampler.sample_positions(groups, 0, 1, budget=2)
    assert not np.array_equal(a, b)


# ----------------------------------------------------------------------
# SampledRun ≡ exact run under full sampling
# ----------------------------------------------------------------------

@pytest.mark.parametrize("sampler", ["keyed", "fast"])
def test_full_budget_matches_algorithm1(sampler):
    inst = union_of_forests(30, 24, 3, capacity=2, seed=7)
    eps = 0.25
    tau = 10
    exact = ProportionalRun(inst.graph, inst.capacities, eps).run(tau)
    sampled = SampledRun(
        inst.graph, inst.capacities, eps, block=3,
        sample_budget=10**6, sampler=sampler, seed=0,
    ).run_rounds(tau)
    assert np.array_equal(exact.beta_exp, sampled.beta_exp)
    assert np.allclose(exact.alloc, sampled.alloc, atol=1e-9)
    assert sampled.match_weight() == pytest.approx(exact.match_weight())


def test_theoretical_budget_is_exact_at_small_scale():
    inst = union_of_forests(15, 12, 2, capacity=2, seed=3)
    eps = 0.25
    run = SampledRun(inst.graph, inst.capacities, eps, block=2, seed=1)
    # Theoretical t is astronomically larger than any group here.
    assert run.sample_budget >= params.sample_size(2, eps, 27)
    run.run_rounds(6)
    exact = ProportionalRun(inst.graph, inst.capacities, eps).run(6)
    assert np.array_equal(run.beta_exp, exact.beta_exp)
    for report in run.phase_reports:
        assert report.max_beta_error() == pytest.approx(0.0, abs=1e-9)
        assert report.max_alloc_error() == pytest.approx(0.0, abs=1e-9)


def test_subsampled_run_stays_feasible_and_close():
    inst = planted_dense_core_instance(6, 6, 40, 40, seed=2)
    eps = 0.25
    run = SampledRun(
        inst.graph, inst.capacities, eps, block=3, sample_budget=8,
        sampler="fast", seed=5,
    )
    run.run_rounds(12)
    out = run.fractional_allocation()
    assert_feasible_fractional(inst.graph, inst.capacities, out.x)
    # Estimates with budget 8 should be within a crude factor.
    for report in run.phase_reports:
        assert report.max_beta_error() < 1.5


def test_estimate_errors_shrink_with_budget():
    inst = planted_dense_core_instance(8, 8, 30, 30, seed=4)
    eps = 0.25
    errs = []
    for budget in (2, 64):
        run = SampledRun(
            inst.graph, inst.capacities, eps, block=2,
            sample_budget=budget, sampler="fast", seed=9,
        )
        run.run_phase()
        errs.append(run.phase_reports[0].max_alloc_error())
    assert errs[1] <= errs[0] + 1e-12


def test_pooled_estimator_also_exact_at_full_budget():
    inst = union_of_forests(20, 15, 2, capacity=2, seed=11)
    eps = 0.25
    run = SampledRun(
        inst.graph, inst.capacities, eps, block=2, sample_budget=10**6,
        estimator="pooled", seed=0,
    )
    run.run_rounds(6)
    exact = ProportionalRun(inst.graph, inst.capacities, eps).run(6)
    assert np.array_equal(run.beta_exp, exact.beta_exp)


def test_run_rounds_partial_phase():
    inst = union_of_forests(10, 8, 2, seed=0)
    run = SampledRun(inst.graph, inst.capacities, 0.25, block=4, sample_budget=10)
    run.run_rounds(6)  # one full phase of 4, one partial of 2
    assert run.rounds_completed == 6
    assert run.phases_completed == 2


def test_invalid_configs_rejected(small_forest_instance):
    inst = small_forest_instance
    with pytest.raises(ValueError):
        SampledRun(inst.graph, inst.capacities, 0.25, block=2, estimator="bogus")
    with pytest.raises(ValueError):
        SampledRun(inst.graph, inst.capacities, 0.25, block=2, sampler="bogus")
    with pytest.raises(ValueError):
        SampledRun(inst.graph, inst.capacities, 0.25, block=0)
    run = SampledRun(inst.graph, inst.capacities, 0.25, block=2)
    with pytest.raises(RuntimeError):
        run.match_weight()


# ----------------------------------------------------------------------
# Lemma 13: threshold reconstruction
# ----------------------------------------------------------------------

def test_reconstruct_case_analysis():
    eps = 0.25
    caps = np.ones(7)
    alloc = np.array([0.5, 0.99, 2.0, 1.05, 1.0, 3.0, 0.0])
    decisions = np.array([1, 1, -1, -1, 0, 0, 1])
    witness = reconstruct_round_thresholds(alloc, caps, decisions, eps)
    assert witness.feasible.tolist() == [True, False, True, False, True, False, True]
    k = witness.k
    assert np.all((k >= K_MIN) & (k <= K_MAX))
    # Spot-check semantics for feasible entries.
    for i in np.nonzero(witness.feasible)[0]:
        thr_lo = caps[i] / (1 + k[i] * eps)
        thr_hi = caps[i] * (1 + k[i] * eps)
        if decisions[i] == 1:
            assert alloc[i] <= thr_lo + 1e-12
        elif decisions[i] == -1:
            assert alloc[i] >= thr_hi - 1e-12
        else:
            assert thr_lo < alloc[i] < thr_hi


def test_reconstruct_zero_alloc_keep_infeasible():
    witness = reconstruct_round_thresholds(
        np.array([0.0]), np.array([1.0]), np.array([0]), 0.25
    )
    assert not witness.feasible[0]


def test_reconstruct_shape_mismatch():
    with pytest.raises(ValueError):
        reconstruct_round_thresholds(
            np.zeros(2), np.ones(3), np.zeros(2, dtype=int), 0.25
        )


def test_lemma13_replay_on_sampled_run():
    """End-to-end Lemma 13: reconstruct thresholds from a sampled run's
    decisions + true allocs, then replay Algorithm 3 with them and
    recover the identical β trajectory."""
    inst = union_of_forests(25, 20, 2, capacity=2, seed=21)
    eps = 0.25
    tau = 8
    sampled = SampledRun(
        inst.graph, inst.capacities, eps, block=2, sample_budget=16,
        sampler="keyed", seed=2,
    ).run_rounds(tau)

    tables = []
    all_feasible = True
    for report in sampled.phase_reports:
        for rnd in report.rounds:
            witness = reconstruct_round_thresholds(
                rnd.alloc_true, inst.capacities, rnd.decisions, eps
            )
            all_feasible = all_feasible and witness.all_feasible
            tables.append(witness.k)
    if not all_feasible:
        pytest.skip("estimation failure event hit (low budget); Lemma 13 is a whp claim")
    replay = ProportionalRun(
        inst.graph, inst.capacities, eps, thresholds=ReplayThresholds(table=tables)
    ).run(tau)
    assert np.array_equal(replay.beta_exp, sampled.beta_exp)


def test_randomized_thresholds_range():
    sched = RandomizedThresholds(k0=4.0, seed=0)
    k = sched.thresholds(0, 100)
    assert np.all((k >= 0.25) & (k <= 4.0))
    with pytest.raises(ValueError):
        RandomizedThresholds(k0=0.5)


def test_theorem16_randomized_thresholds_keep_guarantee():
    """Theorem 16: any thresholds in [1/4, 4] still give 2+(2·4+8)ε."""
    from repro.baselines.exact import optimum_value

    eps = 0.2
    inst = union_of_forests(30, 25, 2, capacity=2, seed=17)
    run = ProportionalRun(
        inst.graph, inst.capacities, eps,
        thresholds=RandomizedThresholds(k0=4.0, seed=3),
    )
    run.run(params.tau_two_approx(2, eps))
    opt = optimum_value(inst)
    factor = params.approx_factor_adaptive(eps, 4.0)
    assert opt <= factor * run.match_weight() + 1e-9


# ----------------------------------------------------------------------
# Property tests
# ----------------------------------------------------------------------

@given(st.integers(0, 2**31 - 1))
@settings(max_examples=10, deadline=None)
def test_property_full_budget_equivalence(seed):
    inst = union_of_forests(12, 10, 2, capacity=2, seed=seed)
    eps = 0.3
    exact = ProportionalRun(inst.graph, inst.capacities, eps).run(5)
    sampled = SampledRun(
        inst.graph, inst.capacities, eps, block=2, sample_budget=10**6, seed=seed
    ).run_rounds(5)
    assert np.array_equal(exact.beta_exp, sampled.beta_exp)


@given(st.integers(0, 2**31 - 1), st.integers(1, 12))
@settings(max_examples=10, deadline=None)
def test_property_sampled_output_feasible(seed, budget):
    inst = union_of_forests(14, 12, 2, capacity=2, seed=seed)
    run = SampledRun(
        inst.graph, inst.capacities, 0.25, block=2, sample_budget=budget,
        sampler="fast", seed=seed,
    ).run_rounds(6)
    out = run.fractional_allocation()
    assert_feasible_fractional(inst.graph, inst.capacities, out.x)
