"""Smoke tests of the experiment suite.

Every experiment must stay permanently runnable at smoke scale and
carry its claim's expected shape; the heavy versions live under
``benchmarks/``.
"""

from __future__ import annotations

import pytest

from repro.experiments.harness import (
    REGISTRY,
    get_experiment,
    run_and_save,
    run_experiment,
)

ALL_IDS = ["e0"] + [f"e{i}" for i in range(1, 13)]


def test_registry_complete():
    get_experiment("e1")  # force module loading
    assert sorted(REGISTRY) == sorted(ALL_IDS)
    for spec in REGISTRY.values():
        assert spec.title and spec.claim


def test_unknown_experiment():
    with pytest.raises(KeyError, match="unknown experiment"):
        get_experiment("e99")


@pytest.mark.parametrize("exp_id", ALL_IDS)
def test_experiment_smoke(exp_id):
    table = run_experiment(exp_id, scale="smoke", seed=0)
    assert table.rows, f"{exp_id} produced no rows"
    assert table.columns
    # Claim note attached by the harness.
    assert any("claim:" in note for note in table.notes)
    # Rendering works in both formats.
    assert table.to_ascii()
    assert table.to_markdown()


def test_run_and_save_persists(tmp_path):
    run_and_save("e9", scale="smoke", results_dir=tmp_path, echo=False)
    assert (tmp_path / "e9.md").exists()
    assert (tmp_path / "e9.json").exists()


def test_cli_list_and_run(capsys, tmp_path, monkeypatch):
    from repro.experiments.__main__ import main

    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "e1" in out and "claim" in out

    # --list prints the id/title/claim table, one row per experiment.
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    for column in ("id", "title", "claim"):
        assert column in out
    for exp_id in ("e0", "e5", "e12"):
        assert exp_id in out

    import repro.experiments.harness as harness

    monkeypatch.setattr(harness, "default_results_dir", lambda: tmp_path)
    assert main(["e9", "--scale", "smoke"]) == 0
    assert main(["--exp", "e9", "--scale", "smoke"]) == 0
    assert main(["nope"]) == 2
    assert main([]) == 2
    assert main(["e9", "--exp", "e1"]) == 2


def test_cli_unknown_exp_names_valid_ids(capsys):
    from repro.experiments.__main__ import main

    assert main(["--exp", "zz"]) == 2
    err = capsys.readouterr().err
    assert "unknown experiment 'zz'" in err
    assert "e0" in err and "e12" in err


def test_e1_claim_shape_smoke():
    table = run_experiment("e1", scale="smoke", seed=0)
    assert all(v for v in table.column("within_budget") if v is not None)


def test_e3_claim_shape_smoke():
    table = run_experiment("e3", scale="smoke", seed=0)
    ours = table.column("ours_rounds")
    assert max(ours) - min(ours) <= 2


def test_e9_claim_shape_smoke():
    table = run_experiment("e9", scale="smoke", seed=0)
    rows = table.rows
    assert rows[-1]["split_lambda"] > rows[0]["split_lambda"]
