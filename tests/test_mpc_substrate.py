"""Tests for the MPC cluster, primitives, exponentiation, cost model."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import build_graph
from repro.graphs.generators import star_instance, union_of_forests
from repro.mpc.cluster import MPCCluster, cluster_for
from repro.mpc.costmodel import MPCCostModel
from repro.mpc.exponentiation import collect_balls, expected_doubling_rounds
from repro.mpc.machine import Machine, SpaceViolation, sizeof_words
from repro.mpc.primitives import (
    fan_out,
    route_by_key,
    sample_sort,
    tree_broadcast,
    tree_depth,
    tree_reduce,
)


# ----------------------------------------------------------------------
# sizeof / machine
# ----------------------------------------------------------------------

def test_sizeof_words():
    assert sizeof_words(1) == 1
    assert sizeof_words(2.5) == 1
    assert sizeof_words("tag") == 1
    assert sizeof_words(("edge", 1, 2)) == 3
    assert sizeof_words([("a", 1), ("b", 2)]) == 4
    assert sizeof_words({"k": 1}) == 2
    assert sizeof_words(np.int64(3)) == 1


def test_machine_budget_checks():
    m = Machine(0, capacity_words=3)
    m.store((1, 2))
    assert m.check_budget(strict=True) == []
    m.store((1, 2))
    with pytest.raises(SpaceViolation):
        m.check_budget(strict=True)
    problems = m.check_budget(strict=False)
    assert len(problems) == 1


def test_cluster_load_round_robin():
    c = MPCCluster(3, 100)
    c.load(list(range(10)))
    sizes = [len(m.storage) for m in c.machines]
    assert sum(sizes) == 10
    assert max(sizes) - min(sizes) <= 1


def test_exchange_moves_and_accounts():
    c = MPCCluster(2, 100)
    c.load([("x", 1), ("x", 2)], by=lambda r: 0)

    def mapper(mid, records):
        for rec in records:
            yield 1, rec

    c.exchange(mapper)
    assert len(c.machines[0].storage) == 0
    assert len(c.machines[1].storage) == 2
    assert c.rounds_executed == 1
    assert c.round_log[0].total_words_moved == 4
    assert c.machines[1].received_words_this_round == 4


def test_exchange_local_restore_free():
    c = MPCCluster(2, 100)
    c.load([1, 2, 3, 4])

    def keep(mid, records):
        for rec in records:
            yield mid, rec

    c.exchange(keep)
    assert all(m.sent_words_this_round == 0 for m in c.machines)


def test_space_violation_on_traffic():
    # One 2-word record per machine fits the 3-word budget; funnelling
    # both onto machine 1 breaches it.
    c = MPCCluster(2, words_per_machine=3)
    c.load([("a", 1), ("b", 2)])

    def flood(mid, records):
        for rec in records:
            yield 1, rec

    with pytest.raises(SpaceViolation):
        c.exchange(flood)


def test_nonstrict_records_violations():
    c = MPCCluster(2, words_per_machine=3, strict=False)
    c.load([("a", 1), ("b", 2)])

    def flood(mid, records):
        for rec in records:
            yield 1, rec

    c.exchange(flood)
    assert c.violations


def test_cluster_for_sizing():
    c = cluster_for(total_words=1000, n_for_alpha=256, alpha=0.5, slack=4.0)
    assert c.words_per_machine == 64
    assert c.n_machines * c.words_per_machine >= 2 * 1000


# ----------------------------------------------------------------------
# primitives
# ----------------------------------------------------------------------

def test_route_by_key_groups():
    c = MPCCluster(4, 1000)
    c.load([("v", i, i * 10) for i in range(20)])
    route_by_key(c, key_fn=lambda rec: rec[1])
    for m in c.machines:
        for rec in m.storage:
            assert rec[1] % 4 == m.machine_id


def test_tree_broadcast_reaches_everyone():
    c = MPCCluster(9, 1000)
    c.load([])
    rounds = tree_broadcast(c, (1, 2, 3), tag="cfg")
    assert rounds >= 1
    for m in c.machines:
        assert ("cfg", (1, 2, 3)) in m.storage


def test_tree_broadcast_single_machine():
    c = MPCCluster(1, 100)
    c.load([])
    assert tree_broadcast(c, "p") == 0
    assert ("bcast", "p") in c.machines[0].storage


def test_tree_reduce_sums():
    c = MPCCluster(5, 1000)
    c.load([("val", i) for i in range(1, 11)])
    total, rounds = tree_reduce(
        c, extract=lambda rec: rec[1], combine=lambda a, b: a + b, zero=0
    )
    assert total == 55
    assert rounds >= 1
    # Original records intact, no partials left behind.
    vals = sorted(rec[1] for rec in c.all_records())
    assert vals == list(range(1, 11))


def test_tree_reduce_skips_none():
    c = MPCCluster(3, 1000)
    c.load([("a", 5), ("skip", 7)])
    total, _ = tree_reduce(
        c,
        extract=lambda rec: rec[1] if rec[0] == "a" else None,
        combine=lambda a, b: a + b,
        zero=0,
    )
    assert total == 5


def test_fan_out_and_depth():
    c = MPCCluster(8, 100)
    assert fan_out(c, 10) == 10
    assert tree_depth(8, 2) == 3
    assert tree_depth(1, 2) == 1
    with pytest.raises(ValueError):
        fan_out(c, 0)


def test_fan_out_raises_on_oversized_payload():
    """A payload beyond S cannot be shipped at all: that is a budget
    violation, not a silent fan-out-2 tree."""
    c = MPCCluster(8, 100)
    with pytest.raises(SpaceViolation, match="exceeds the per-machine budget"):
        fan_out(c, 101)
    # The boundary payload (exactly S) is shippable, at the documented
    # minimum fan-out of 2.
    assert fan_out(c, 100) == 2


def test_fan_out_nonstrict_records_violation_and_clamps():
    """strict=False clusters record the violation and keep the
    historical clamp, like every other budget check."""
    c = MPCCluster(8, 100, strict=False)
    assert fan_out(c, 101) == 2
    assert any("exceeds the per-machine budget" in v for v in c.violations)


def test_fan_out_documented_clamp_when_budget_tight():
    """S // payload == 1 clamps to fan-out 2; the per-round traffic
    check still polices a parent that really sends to two children."""
    c = MPCCluster(4, 100)
    assert fan_out(c, 60) == 2
    # Broadcasting a 59-word payload (60 with the tag) through 4
    # machines makes the root send 2 copies = 120 > S in one round:
    # the exchange-time traffic check catches what fan_out clamped.
    c.load([])
    with pytest.raises(SpaceViolation, match="in one round"):
        tree_broadcast(c, tuple(range(59)))


def test_sample_sort_orders_globally():
    rng = np.random.default_rng(3)
    values = rng.permutation(60).tolist()
    c = MPCCluster(4, 10_000)
    c.load([("rec", v) for v in values])
    rounds = sample_sort(c, key_fn=lambda rec: rec[1], seed=1)
    assert rounds >= 3
    chunks = [[rec[1] for rec in m.storage] for m in c.machines]
    flat = [v for chunk in chunks for v in chunk]
    assert flat == sorted(values)  # concatenation of machines is sorted
    for chunk in chunks:
        assert chunk == sorted(chunk)


@given(st.lists(st.integers(0, 1000), min_size=1, max_size=80), st.integers(2, 6))
@settings(max_examples=25, deadline=None)
def test_property_sample_sort(values, n_machines):
    c = MPCCluster(n_machines, 100_000)
    c.load([("rec", v) for v in values])
    sample_sort(c, key_fn=lambda rec: rec[1], seed=0)
    flat = [rec[1] for m in c.machines for rec in m.storage]
    assert flat == sorted(values)


# ----------------------------------------------------------------------
# exponentiation
# ----------------------------------------------------------------------

def path_edges(n):
    return [(i, i + 1) for i in range(n - 1)]


def test_collect_balls_radius_one():
    c = MPCCluster(3, 10_000)
    balls, rounds = collect_balls(c, 5, path_edges(5), radius=1)
    assert rounds == 0
    assert balls[0] == ((0, 1),)
    assert balls[2] == ((1, 2), (2, 3))


def test_collect_balls_radius_two_path():
    c = MPCCluster(3, 10_000)
    balls, rounds = collect_balls(c, 6, path_edges(6), radius=2)
    assert rounds == 2  # one doubling join = 2 exchanges
    # Ball of radius 2 around vertex 2: edges touching distance ≤ 1.
    assert balls[2] == ((0, 1), (1, 2), (2, 3), (3, 4))


def test_collect_balls_radius_four_path():
    c = MPCCluster(4, 10_000)
    balls, rounds = collect_balls(c, 9, path_edges(9), radius=4)
    assert rounds == 2 * expected_doubling_rounds(4)
    assert balls[4] == tuple((i, i + 1) for i in range(8))


def test_collect_balls_star():
    inst = star_instance(5)
    ea, eb = inst.graph.undirected_edges()
    edges = list(zip(ea.tolist(), eb.tolist()))
    c = MPCCluster(3, 10_000)
    balls, _ = collect_balls(c, inst.graph.n_vertices, edges, radius=2)
    # Center (vertex 5) at radius 2 sees the whole star.
    assert len(balls[5]) == 5
    # Each leaf at radius 2 also sees everything (via the center).
    assert len(balls[0]) == 5


def test_collect_balls_validates_radius():
    c = MPCCluster(2, 1000)
    with pytest.raises(ValueError):
        collect_balls(c, 3, path_edges(3), radius=0)


def test_collect_balls_matches_bfs_oracle():
    inst = union_of_forests(10, 8, 2, seed=5)
    g = inst.graph
    ea, eb = g.undirected_edges()
    edges = list(zip(ea.tolist(), eb.tolist()))
    c = MPCCluster(4, 100_000)
    balls, _ = collect_balls(c, g.n_vertices, edges, radius=3)

    # BFS oracle.
    from collections import defaultdict, deque

    adj = defaultdict(set)
    for a, b in edges:
        adj[a].add(b)
        adj[b].add(a)
    for center in range(g.n_vertices):
        dist = {center: 0}
        q = deque([center])
        while q:
            v = q.popleft()
            if dist[v] >= 3:
                continue
            for w in adj[v]:
                if w not in dist:
                    dist[w] = dist[v] + 1
                    q.append(w)
        expected = tuple(
            sorted(
                (a, b)
                for a, b in edges
                if a in dist and b in dist and min(dist[a], dist[b]) <= 2
            )
        )
        assert balls[center] == expected, f"ball mismatch at {center}"


# ----------------------------------------------------------------------
# cost model
# ----------------------------------------------------------------------

def test_cost_model_basics():
    model = MPCCostModel(n=2**16, lam=16, epsilon=0.25, alpha=0.5)
    assert model.tau() >= 1
    assert model.block() >= 1
    assert model.phases() == math.ceil(model.tau() / model.block())
    assert model.rounds_known_lambda() == model.phases() * model.phase_cost().total


def test_cost_model_improves_on_baseline_for_low_lambda():
    model = MPCCostModel(n=2**20, lam=4, epsilon=0.25, alpha=0.5)
    assert model.rounds_known_lambda() < model.baseline_rounds_azm18()


def test_cost_model_guessing_constant_factor():
    for lam in (4, 64, 2**12):
        model = MPCCostModel(n=2**20, lam=lam, epsilon=0.25, alpha=0.5)
        assert model.guessing_overhead() < 6.0


def test_cost_model_space_bound_shape():
    model = MPCCostModel(n=2**12, lam=8, epsilon=0.25, alpha=0.5)
    assert model.words_per_machine() == 2**6
    assert model.predicted_global_words(m_edges=10_000) > 10_000


def test_cost_model_validation():
    with pytest.raises(ValueError):
        MPCCostModel(n=10, lam=2, epsilon=0.25, alpha=1.5)
