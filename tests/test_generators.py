"""Tests for the workload generators and capacity profiles."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import degeneracy, exact_arboricity
from repro.graphs.capacities import (
    degree_proportional_capacities,
    uniform_capacities,
    unit_capacities,
    validate_capacities,
    zipf_capacities,
)
from repro.graphs.generators import (
    FAMILY_BUILDERS,
    POWER_LAW_EXPONENT_RANGE,
    SIZED_FAMILIES,
    adversarial_rounds_instance,
    adwords_instance,
    complete_bipartite_instance,
    cycle_instance,
    double_star_instance,
    erdos_renyi_instance,
    grid_instance,
    heavy_tailed_instance,
    load_balancing_instance,
    planted_dense_core_instance,
    power_law_instance,
    random_bipartite_forest_edges,
    regular_instance,
    sized_instance,
    skew_frontier_instance,
    star_instance,
    union_of_forests,
)


def _is_forest(n: int, ea: np.ndarray, eb: np.ndarray) -> bool:
    parent = list(range(n))

    def find(x):
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for a, b in zip(ea.tolist(), eb.tolist()):
        ra, rb = find(a), find(b)
        if ra == rb:
            return False
        parent[ra] = rb
    return True


def test_random_forest_is_forest():
    for seed in range(6):
        eu, ev = random_bipartite_forest_edges(12, 9, seed)
        assert _is_forest(21, eu, ev + 12)


def test_random_forest_spans_most_vertices():
    eu, ev = random_bipartite_forest_edges(50, 50, 0)
    # A forest over 100 vertices inserted in random order has few roots.
    assert eu.size >= 90


def test_union_of_forests_metadata():
    inst = union_of_forests(20, 15, 3, seed=0)
    assert inst.arboricity_upper_bound == 3
    assert inst.metadata["family"] == "union_of_forests"
    inst.graph.validate()


def test_union_of_forests_deterministic():
    a = union_of_forests(20, 15, 2, seed=5)
    b = union_of_forests(20, 15, 2, seed=5)
    assert np.array_equal(a.graph.edge_u, b.graph.edge_u)
    assert np.array_equal(a.graph.edge_v, b.graph.edge_v)
    c = union_of_forests(20, 15, 2, seed=6)
    assert not (
        np.array_equal(a.graph.edge_u, c.graph.edge_u)
        and np.array_equal(a.graph.edge_v, c.graph.edge_v)
    )


def test_star_shape():
    inst = star_instance(9)
    assert inst.graph.n_left == 9
    assert inst.graph.n_right == 1
    assert inst.graph.n_edges == 9
    assert inst.capacities.tolist() == [9]
    assert exact_arboricity(inst.graph).value == 1


def test_double_star():
    inst = double_star_instance(10, shared_fraction=0.4)
    inst.graph.validate()
    assert inst.graph.n_right == 2
    assert exact_arboricity(inst.graph).value <= 2


def test_complete_bipartite_exact_arboricity_claim():
    for a, b in ((2, 2), (3, 4), (4, 4)):
        inst = complete_bipartite_instance(a, b)
        claimed = inst.metadata["exact_arboricity"]
        assert exact_arboricity(inst.graph).value == claimed


def test_erdos_renyi_edge_count():
    inst = erdos_renyi_instance(10, 10, 37, seed=1)
    assert inst.graph.n_edges == 37
    inst.graph.validate()


def test_erdos_renyi_bounds_checked():
    with pytest.raises(ValueError):
        erdos_renyi_instance(3, 3, 10, seed=0)


def test_power_law_degrees_positive():
    inst = power_law_instance(50, 20, mean_left_degree=3, seed=2)
    assert np.all(inst.graph.left_degrees >= 1)
    inst.graph.validate()


def test_regular_instance_degrees():
    inst = regular_instance(12, 3, seed=4)
    assert np.all(inst.graph.left_degrees == 3)
    assert np.all(inst.graph.right_degrees == 3)
    assert inst.arboricity_upper_bound == 3
    assert exact_arboricity(inst.graph).value <= 3


def test_grid_instance_arboricity():
    inst = grid_instance(5, 6)
    assert inst.graph.n_vertices == 30
    assert inst.graph.n_edges == 5 * 5 + 4 * 6  # (cols-1)*rows + (rows-1)*cols
    assert exact_arboricity(inst.graph).value <= 2


def test_cycle_instance():
    inst = cycle_instance(5)
    assert inst.graph.n_edges == 10
    assert np.all(inst.graph.left_degrees == 2)
    assert exact_arboricity(inst.graph).value == 2


def test_cycle_too_short():
    with pytest.raises(ValueError):
        cycle_instance(1)


def test_planted_dense_core():
    inst = planted_dense_core_instance(5, 5, 30, 30, core_density=1.0, seed=3)
    inst.graph.validate()
    # Degeneracy is driven by the core (K_{5,5} ⇒ degeneracy 5).
    assert degeneracy(inst.graph) >= 4


def test_load_balancing_locality_degrees():
    inst = load_balancing_instance(40, 8, locality=3, seed=0)
    assert np.all(inst.graph.left_degrees == 3)
    assert inst.arboricity_upper_bound == 3
    # Default capacity = balanced load ceiling.
    assert inst.capacities[0] == 5


def test_load_balancing_locality_bound():
    with pytest.raises(ValueError):
        load_balancing_instance(10, 3, locality=5)


def test_adwords_instance():
    inst = adwords_instance(60, 12, seed=8)
    inst.graph.validate()
    assert np.all(inst.capacities >= 1)


def test_family_registry_builders_all_runnable():
    kwargs = {
        "union_of_forests": dict(n_left=10, n_right=8, k=2, seed=0),
        "star": dict(n_leaves=5),
        "double_star": dict(n_leaves=6),
        "complete_bipartite": dict(a=3, b=3),
        "erdos_renyi": dict(n_left=8, n_right=8, m=20, seed=0),
        "power_law": dict(n_left=20, n_right=8, seed=0),
        "regular": dict(n=8, d=2, seed=0),
        "grid": dict(rows=3, cols=4),
        "cycle": dict(half_length=4),
        "planted_dense_core": dict(
            core_left=3, core_right=3, fringe_left=8, fringe_right=8, seed=0
        ),
        "slow_spread": dict(core_right=3, width=2, seed=0),
        "load_balancing": dict(n_clients=12, n_servers=4, seed=0),
        "adwords": dict(n_impressions=15, n_advertisers=5, seed=0),
        "skew_frontier": dict(n_left=10, seed=0),
        "heavy_tailed": dict(n_left=20, seed=0),
        "adversarial_rounds": dict(n_left=16, seed=0),
    }
    assert set(kwargs) == set(FAMILY_BUILDERS)
    for name, builder in FAMILY_BUILDERS.items():
        inst = builder(**kwargs[name])
        inst.graph.validate()
        validate_capacities(inst.graph, inst.capacities)


# ----------------------------------------------------------------------
# Capacities
# ----------------------------------------------------------------------

def test_unit_and_uniform_capacities():
    inst = union_of_forests(6, 5, 1, seed=0)
    assert unit_capacities(inst.graph).tolist() == [1] * 5
    assert uniform_capacities(inst.graph, 4).tolist() == [4] * 5


def test_degree_proportional_capacities():
    inst = complete_bipartite_instance(6, 3)
    caps = degree_proportional_capacities(inst.graph, fraction=0.5)
    assert caps.tolist() == [3, 3, 3]


def test_zipf_capacities_bounds():
    inst = union_of_forests(10, 30, 1, seed=0)
    caps = zipf_capacities(inst.graph, exponent=2.0, maximum=7, seed=1)
    assert caps.min() >= 1
    assert caps.max() <= 7


def test_zipf_capacities_exponent_validated():
    inst = union_of_forests(5, 5, 1, seed=0)
    with pytest.raises(ValueError):
        zipf_capacities(inst.graph, exponent=1.0)


def test_validate_capacities_shape_and_range():
    inst = union_of_forests(5, 5, 1, seed=0)
    with pytest.raises(ValueError):
        validate_capacities(inst.graph, np.ones(3, dtype=np.int64))
    with pytest.raises(ValueError):
        validate_capacities(inst.graph, np.zeros(5, dtype=np.int64))


# ----------------------------------------------------------------------
# Workload zoo: degenerate parameters and determinism
# ----------------------------------------------------------------------

def test_power_law_exponent_clamped_at_both_edges():
    lo, hi = POWER_LAW_EXPONENT_RANGE
    below = power_law_instance(30, 10, exponent=0.2, seed=0)
    assert below.metadata["exponent"] == lo
    assert below.metadata["requested_exponent"] == 0.2
    above = power_law_instance(30, 10, exponent=50.0, seed=0)
    assert above.metadata["exponent"] == hi
    assert above.metadata["requested_exponent"] == 50.0
    # Clamped runs are exactly the edge-value runs, not new families.
    edge = power_law_instance(30, 10, exponent=lo, seed=0)
    assert below.graph.left_indptr.tobytes() == edge.graph.left_indptr.tobytes()
    assert below.graph.left_adj.tobytes() == edge.graph.left_adj.tobytes()
    inside = power_law_instance(30, 10, exponent=2.5, seed=0)
    assert inside.metadata["exponent"] == 2.5
    below.graph.validate()
    above.graph.validate()


def test_skew_frontier_degree_one_is_pure_hub():
    inst = skew_frontier_instance(12, left_degree=1, seed=0)
    inst.graph.validate()
    assert np.all(inst.graph.left_degrees == 1)
    # Every edge lands on the hub (right vertex 0).
    assert np.all(inst.graph.edge_v == 0)
    validate_capacities(inst.graph, inst.capacities)


def test_union_of_forests_zero_forests_is_edgeless():
    inst = union_of_forests(8, 6, 0, seed=0)
    inst.graph.validate()
    assert inst.graph.n_edges == 0
    assert inst.arboricity_upper_bound >= 1
    validate_capacities(inst.graph, inst.capacities)


def test_heavy_tailed_capacities_are_heavy_tailed():
    inst = heavy_tailed_instance(64, seed=0)
    inst.graph.validate()
    validate_capacities(inst.graph, inst.capacities)
    caps = np.sort(inst.capacities)[::-1]
    # Head dominates: the largest server holds a big multiple of the median.
    assert caps[0] >= 4 * np.median(caps)
    assert inst.metadata["family"] == "heavy_tailed"


def test_adversarial_rounds_structure():
    inst = adversarial_rounds_instance(32, seed=0)
    inst.graph.validate()
    validate_capacities(inst.graph, inst.capacities)
    b = inst.metadata["core_right"]
    assert b == max(2, 32 // 8)
    assert np.all(inst.capacities == 1)
    # Every client touches the whole core plus one mid and one fringe.
    assert np.all(inst.graph.left_degrees == b + 2)


def test_sized_families_cover_zoo_and_reject_unknown():
    assert {"heavy_tailed", "adversarial_rounds", "slow_spread",
            "skew_frontier"} <= set(SIZED_FAMILIES)
    with pytest.raises(KeyError, match="unknown family"):
        sized_instance("nope", 32)


def test_sized_zoo_seed_determinism_csr_bytes():
    # Same seed -> bit-identical CSR arrays and capacities; the sweep
    # subsystem's cell records depend on this.
    for family in sorted(SIZED_FAMILIES):
        a = sized_instance(family, 48, seed=7)
        b = sized_instance(family, 48, seed=7)
        assert a.graph.left_indptr.tobytes() == b.graph.left_indptr.tobytes(), family
        assert a.graph.left_adj.tobytes() == b.graph.left_adj.tobytes(), family
        assert a.capacities.tobytes() == b.capacities.tobytes(), family
        a.graph.validate()
