"""Tests for the AZM18-in-MPC baseline and the auction comparator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.auction import auction_allocation
from repro.baselines.azm18 import solve_azm18_mpc
from repro.baselines.exact import optimum_value
from repro.core import params
from repro.graphs.generators import star_instance, union_of_forests

from tests.conftest import assert_feasible_fractional, assert_feasible_integral


def test_azm18_runs_published_budget(small_forest_instance):
    inst = small_forest_instance
    eps = 0.25
    res = solve_azm18_mpc(inst, eps)
    assert res.local_rounds == params.tau_azm18(inst.graph.n_right, eps)
    assert res.mpc_rounds == res.local_rounds
    assert_feasible_fractional(inst.graph, inst.capacities, res.allocation.x)


def test_azm18_near_optimal_quality():
    inst = union_of_forests(40, 30, 2, capacity=2, seed=3)
    eps = 0.2
    res = solve_azm18_mpc(inst, eps)
    opt = optimum_value(inst)
    # The long budget should land close to optimal — well inside 1+18ε.
    assert opt <= res.guarantee * res.match_weight + 1e-9
    assert opt <= 1.3 * res.match_weight


def test_azm18_custom_tau(small_forest_instance):
    res = solve_azm18_mpc(small_forest_instance, 0.25, tau=5)
    assert res.local_rounds == 5


def test_azm18_more_rounds_than_certificate():
    """The headline comparison: AZM18's bill exceeds the certificate-
    stopped round count on low-λ instances."""
    from repro.core.local_driver import solve_fractional_until_certificate

    inst = union_of_forests(100, 80, 2, capacity=2, seed=5)
    eps = 0.2
    ours = solve_fractional_until_certificate(inst, eps)
    theirs = solve_azm18_mpc(inst, eps)
    assert theirs.mpc_rounds > ours.rounds


def test_auction_feasible_and_good(medium_forest_instance):
    inst = medium_forest_instance
    res = auction_allocation(inst.graph, inst.capacities, epsilon=0.05)
    assert_feasible_integral(inst.graph, inst.capacities, res.edge_mask)
    opt = optimum_value(inst)
    assert res.size >= opt / 2  # auction with small eps is near-optimal


def test_auction_star():
    inst = star_instance(6, center_capacity=3)
    res = auction_allocation(inst.graph, inst.capacities)
    assert res.size == 3


def test_auction_prices_monotone():
    inst = union_of_forests(20, 10, 2, capacity=1, seed=1)
    res = auction_allocation(inst.graph, inst.capacities)
    assert np.all(res.prices >= 0)
    assert res.iterations > 0


def test_auction_eps_validated(small_star):
    with pytest.raises(ValueError):
        auction_allocation(small_star.graph, small_star.capacities, epsilon=0.0)


def test_lazy_baseline_exports():
    import repro.baselines as b

    assert b.solve_azm18_mpc is solve_azm18_mpc.__wrapped__ if hasattr(
        solve_azm18_mpc, "__wrapped__"
    ) else b.solve_azm18_mpc is solve_azm18_mpc
    assert callable(b.auction_allocation)
    with pytest.raises(AttributeError):
        b.does_not_exist
