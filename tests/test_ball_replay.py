"""Tests for the ball-locality verifier (the §5 compression claim).

The decisive check: every right vertex's phase trajectory is exactly
reproducible from its radius-2B ball of the sampled graph — the
executable form of "collect the neighbourhood, simulate locally".
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ball_replay import (
    ball_around,
    replay_center_decisions,
    verify_phase_locality,
)
from repro.core.sampled import SampledRun
from repro.graphs.generators import planted_dense_core_instance, union_of_forests


def make_run(inst, block=2, budget=4, seed=5):
    return SampledRun(
        inst.graph, inst.capacities, 0.25, block=block, sample_budget=budget,
        sampler="keyed", seed=seed,
    )


def test_ball_around_bfs():
    from repro.graphs import build_graph

    g = build_graph(3, 3, [0, 1, 2], [0, 1, 2])
    # Path in merged ids: 0-3, 1-4, 2-5 (three disjoint edges).
    edges = {(0, 3), (1, 4), (2, 5)}
    ball = ball_around(g, edges, 0, radius=2)
    assert ball == {0, 3}


def test_phase_locality_forests():
    inst = union_of_forests(18, 14, 2, capacity=2, seed=3)
    run = make_run(inst)
    results = verify_phase_locality(run, rounds=2)
    assert all(results.values()), (
        f"non-local vertices: {[v for v, ok in results.items() if not ok]}"
    )


def test_phase_locality_dense_core():
    inst = planted_dense_core_instance(4, 4, 12, 12, seed=1)
    run = make_run(inst, block=2, budget=3, seed=9)
    results = verify_phase_locality(run, rounds=2)
    assert all(results.values())


def test_phase_locality_across_consecutive_phases():
    inst = union_of_forests(14, 10, 2, capacity=2, seed=8)
    run = make_run(inst, block=2, budget=4, seed=2)
    assert all(verify_phase_locality(run, rounds=2).values())
    # Second phase starts from evolved state; locality must still hold.
    assert all(verify_phase_locality(run, rounds=2).values())


def test_radius_b_can_be_insufficient():
    """With radius B (instead of 2B) some vertex's replay must lose
    validity on a dense enough instance — the dependency-radius
    subtlety the module documents."""
    inst = planted_dense_core_instance(5, 5, 10, 10, core_density=1.0, seed=0)
    run = make_run(inst, block=3, budget=3, seed=4)
    g = run.graph
    left_groups, right_groups = run.build_phase_groups()
    beta_start = run.beta_exp.copy()
    start_round = run.rounds_completed

    # Union sampled graph (as the verifier builds it).
    from repro.core.sampled import LEFT_SIDE, RIGHT_SIDE

    sample_edges = set()
    for s in range(3):
        pos_l = run.sampler.sample_positions(left_groups, LEFT_SIDE, start_round + s, run.sample_budget)
        for slot in left_groups.slot_order[pos_l].tolist():
            u = int(np.searchsorted(g.left_indptr, slot, side="right") - 1)
            sample_edges.add((u, g.n_left + int(g.left_adj[slot])))
        pos_r = run.sampler.sample_positions(right_groups, RIGHT_SIDE, start_round + s, run.sample_budget)
        for slot in right_groups.slot_order[pos_r].tolist():
            v = int(np.searchsorted(g.right_indptr, slot, side="right") - 1)
            sample_edges.add((int(g.right_adj[slot]), g.n_left + v))

    any_invalid = False
    for v in range(g.n_right):
        small_ball = ball_around(g, sample_edges, g.n_left + v, radius=3)
        out = replay_center_decisions(
            run, left_groups, right_groups, beta_start, start_round,
            v, small_ball, rounds=3,
        )
        if not out.all_valid:
            any_invalid = True
            break
    assert any_invalid, "radius B unexpectedly sufficed everywhere"


def test_replay_validates_sampler_and_center():
    inst = union_of_forests(8, 6, 2, seed=0)
    fast = SampledRun(
        inst.graph, inst.capacities, 0.25, block=2, sample_budget=4,
        sampler="fast", seed=0,
    )
    lg, rg = fast.build_phase_groups()
    with pytest.raises(ValueError, match="keyed"):
        replay_center_decisions(
            fast, lg, rg, fast.beta_exp.copy(), 0, 0, {inst.graph.n_left}, 1
        )
    keyed = make_run(inst)
    lg, rg = keyed.build_phase_groups()
    with pytest.raises(ValueError, match="inside its own ball"):
        replay_center_decisions(
            keyed, lg, rg, keyed.beta_exp.copy(), 0, 0, {0}, 1
        )
