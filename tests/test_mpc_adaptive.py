"""Adaptive budget throttling on the faithful MPC path (DESIGN.md §13).

Covers the controller/estimator units, the driver integration
(trajectory rows, discarded attempts, certificate crosscheck,
substrate parity), and the two load-bearing claims of the feature:

* at one shared absolute ``S`` the adaptive policy completes instances
  where the same cap budget held *fixed* dies on a SpaceViolation, and
* adaptive peak machine words grow sublinearly in n on the stress
  family (the throttle tracks the safety band, not the instance size).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.mpc_driver import solve_allocation_mpc
from repro.graphs.generators import skew_frontier_instance, union_of_forests
from repro.mpc.adaptive import AdaptiveBudgetController, PeakHoldEstimator
from repro.mpc.machine import SpaceViolation

EPS = 0.2
ALPHA = 0.5
S_TARGET = 16384
CAP = 6

_DECISIONS = {"init", "ramp", "hold", "throttle", "backoff", "fixed"}
_METRIC_KEYS = {
    "phase", "guess", "round_start", "rounds", "sample_budget", "decision",
    "attempts", "accepted", "predicted_peak_words", "observed_peak_words",
    "budget_words", "safety_fraction", "ball_count", "payload_words_p50",
    "payload_words_p95", "payload_words_p99", "payload_words_max",
    "words_moved", "routing_skew",
}


def _solve_skew(n, *, policy, substrate=None, safety_fraction=0.8):
    instance = skew_frontier_instance(n, seed=0)
    kwargs = dict(
        lam=4, mode="faithful", seed=0, sample_budget=CAP, alpha=ALPHA,
        block_override=1,
        space_slack=S_TARGET / instance.graph.n_vertices ** ALPHA,
        budget_policy=policy,
    )
    if policy == "adaptive":
        kwargs["safety_fraction"] = safety_fraction
    if substrate is not None:
        kwargs["substrate"] = substrate
    return solve_allocation_mpc(instance, EPS, **kwargs)


# ----------------------------------------------------------------------
# PeakHoldEstimator
# ----------------------------------------------------------------------
class TestPeakHoldEstimator:
    def test_no_prediction_before_first_observation(self):
        assert PeakHoldEstimator().predict(3) is None

    def test_hold_decays_and_is_replaced_by_fresh_peaks(self):
        est = PeakHoldEstimator(decay=0.5)
        est.observe(2, 1000)
        est.observe(2, 10)          # 10 < 500 (decayed hold): hold decays
        assert est.held_peak == pytest.approx(500.0)
        est.observe(2, 600)         # 600 >= 250: fresh peak takes over
        assert est.held_peak == pytest.approx(600.0)
        assert est.held_budget == 2

    def test_gamma_default_until_two_distinct_budgets(self):
        est = PeakHoldEstimator()
        est.observe(2, 100)
        est.observe(2, 120)
        assert est.gamma() == pytest.approx(1.5)

    def test_gamma_measured_from_distinct_budgets_and_clamped(self):
        est = PeakHoldEstimator()
        est.observe(1, 100)
        est.observe(2, 400)         # slope log4/log2 = 2, inside the clamp
        assert est.gamma() == pytest.approx(2.0)
        est2 = PeakHoldEstimator()
        est2.observe(1, 100)
        est2.observe(2, 100_000)    # raw slope ~10 → clamped to 3
        assert est2.gamma() == pytest.approx(3.0)
        est3 = PeakHoldEstimator()
        est3.observe(1, 100)
        est3.observe(2, 101)        # raw slope ~0.014 → clamped to 0.5
        assert est3.gamma() == pytest.approx(0.5)

    def test_predict_follows_power_law(self):
        est = PeakHoldEstimator()
        est.observe(1, 100)
        est.observe(2, 400)         # γ = 2 from these two points
        assert est.predict(4) == pytest.approx(400.0 * 4.0)


# ----------------------------------------------------------------------
# AdaptiveBudgetController
# ----------------------------------------------------------------------
class TestAdaptiveBudgetController:
    def _controller(self, **kw):
        defaults = dict(budget_words=1000, max_budget=8, safety_fraction=0.8)
        defaults.update(kw)
        return AdaptiveBudgetController(**defaults)

    def test_first_proposal_is_init_at_small_budget(self):
        budget, decision = self._controller().propose()
        assert (budget, decision) == (1, "init")

    def test_ramps_on_headroom(self):
        ctl = self._controller()
        ctl.propose()
        ctl.observe(1, 100)         # far below cap 800
        budget, decision = ctl.propose()
        assert decision == "ramp" and budget == 2

    def test_exploratory_ramp_despite_conservative_prior(self):
        # With one observation the γ=1.5 prior may predict over the cap
        # for any larger budget; the controller must still explore
        # upward (backoff makes an over-step recoverable).
        ctl = self._controller()
        ctl.propose()
        ctl.observe(1, 700)         # predict(2) = 700·2^1.5 ≈ 1980 > 800
        budget, decision = ctl.propose()
        assert decision == "ramp" and budget == 2

    def test_holds_once_a_higher_budget_is_known_too_heavy(self):
        ctl = self._controller()
        ctl.propose()
        ctl.observe(1, 700)
        ctl.propose()               # exploratory ramp to 2
        ctl.observe(2, 790)         # fits, but predict(4) over cap
        budget, decision = ctl.propose()
        assert decision == "ramp" and budget == 4   # 790 ≤ cap: keep ramping
        ctl.observe(4, 795)
        assert ctl.propose() == (8, "ramp")
        ctl.observe(8, 799)
        assert ctl.propose() == (8, "hold")         # at max_budget

    def test_throttles_before_predicted_violation(self):
        ctl = self._controller()
        ctl.propose()
        ctl.observe(1, 100)
        ctl.propose()               # ramp to 2
        ctl.observe(2, 900)         # over the 800 cap
        budget, decision = ctl.propose()
        assert decision == "throttle" and budget == 1

    def test_backoff_halves_and_pins_estimator_over_s(self):
        ctl = self._controller()
        ctl.propose()
        retry = ctl.backoff(4, peak_words=50)   # violation at budget 4
        assert retry == 2
        # The pin records ≥ S+1 for budget 4 even though the cluster
        # only counted 50 words before dying.
        assert (4, 1001) in ctl.estimator.history
        assert ctl.predicted_peak(4) is not None
        assert ctl.predicted_peak(4) > ctl.cap_words

    def test_backoff_at_budget_one_reports_genuine_violation(self):
        ctl = self._controller()
        ctl.propose()
        assert ctl.backoff(1) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            self._controller(safety_fraction=0.0)
        with pytest.raises(ValueError):
            self._controller(ramp_factor=1.0)
        with pytest.raises(ValueError):
            self._controller(budget_words=0)


# ----------------------------------------------------------------------
# Driver integration: the frontier claim
# ----------------------------------------------------------------------
class TestAdaptiveFrontier:
    def test_fixed_budget_violates_where_adaptive_completes(self):
        # Same family, same absolute S, same cap budget: fixed dies,
        # adaptive completes — at a size well past the fixed frontier.
        with pytest.raises(SpaceViolation):
            _solve_skew(48, policy="fixed")
        result = _solve_skew(128, policy="adaptive")
        assert result.ledger.violations == []
        assert result.certificate is not None and result.certificate.mass_condition
        assert result.meta["certificate_crosscheck"] is True

    def test_adaptive_peaks_stay_sublinear_in_n(self):
        sizes = [64, 128, 256]
        peaks, verts = [], []
        for n in sizes:
            res = _solve_skew(n, policy="adaptive")
            assert res.ledger.peak_machine_words <= S_TARGET
            peaks.append(res.ledger.peak_machine_words)
            verts.append(skew_frontier_instance(n, seed=0).graph.n_vertices)
        slope = float(np.polyfit(np.log(verts), np.log(peaks), 1)[0])
        assert slope < 1.0, f"adaptive peak words grew superlinearly: {slope:.2f}"

    def test_genuine_violation_still_raises_after_backoff_exhausts(self):
        # At a small enough S even budget 1 overflows; the driver must
        # re-raise instead of looping.
        instance = union_of_forests(48, 48, 2, capacity=2, seed=3)
        with pytest.raises(SpaceViolation):
            solve_allocation_mpc(
                instance, EPS, lam=2, mode="faithful", seed=0,
                sample_budget=CAP, block_override=1, space_slack=96.0,
                certificate_cadence="per_guess", budget_policy="adaptive",
            )


# ----------------------------------------------------------------------
# Driver integration: trajectory auditability
# ----------------------------------------------------------------------
class TestTrajectory:
    def test_trajectory_rows_are_complete_and_within_bounds(self):
        result = _solve_skew(64, policy="adaptive")
        trajectory = result.ledger.trajectory
        assert trajectory, "adaptive run recorded no trajectory rows"
        accepted = [r for r in trajectory if r["accepted"]]
        assert len(accepted) == result.ledger.phases
        for row in trajectory:
            assert _METRIC_KEYS <= set(row)
            assert row["decision"] in _DECISIONS
            assert 1 <= row["sample_budget"] <= CAP
            assert row["safety_fraction"] == pytest.approx(0.8)
            assert row["observed_peak_words"] > 0
            assert isinstance(row["words_moved"], dict)
            assert row["routing_skew"] >= 1.0
        for row in accepted:
            assert row["payload_words_p50"] <= row["payload_words_p95"]
            assert row["payload_words_p95"] <= row["payload_words_p99"]
            assert row["payload_words_p99"] <= row["payload_words_max"]
            assert row["observed_peak_words"] <= row["budget_words"]

    def test_ramp_throttle_hold_dynamics_are_recorded(self):
        # Calibrated so the controller ramps 1→2, observes the heavier
        # phase, throttles back to 1, then holds (per-guess cadence
        # gives the run enough phases to show the whole cycle).
        instance = union_of_forests(48, 48, 2, capacity=2, seed=3)
        result = solve_allocation_mpc(
            instance, EPS, lam=2, mode="faithful", seed=0,
            sample_budget=CAP, block_override=1, space_slack=512.0,
            certificate_cadence="per_guess", budget_policy="adaptive",
        )
        decisions = [r["decision"] for r in result.ledger.trajectory]
        assert decisions[:3] == ["init", "ramp", "throttle"]
        assert "hold" in decisions[3:]
        # Prediction is recorded before the observation updates the
        # estimator, so ramp/hold rows carry an auditable forecast.
        for row in result.ledger.trajectory:
            if row["decision"] in ("ramp", "hold", "throttle"):
                assert row["predicted_peak_words"] is not None

    def test_discarded_attempt_appears_as_unaccepted_backoff_row(self):
        # capacity=1 concentrates contention: the exploratory ramp to
        # budget 2 overflows, is discarded, and the phase retries at 1.
        instance = skew_frontier_instance(64, capacity=1, seed=0)
        result = solve_allocation_mpc(
            instance, EPS, lam=4, mode="faithful", seed=0,
            sample_budget=CAP, alpha=ALPHA, block_override=1,
            space_slack=S_TARGET / instance.graph.n_vertices ** ALPHA,
            budget_policy="adaptive",
        )
        rows = result.ledger.trajectory
        discarded = [r for r in rows if not r["accepted"]]
        assert len(discarded) == 1
        assert discarded[0]["decision"] == "backoff"
        assert discarded[0]["observed_peak_words"] > discarded[0]["budget_words"]
        # The retry that followed was accepted at the halved budget.
        retry = rows[rows.index(discarded[0]) + 1]
        assert retry["accepted"] and retry["decision"] == "backoff"
        assert retry["sample_budget"] == discarded[0]["sample_budget"] // 2
        assert result.ledger.violations == []

    def test_fixed_faithful_also_records_trajectory(self):
        result = _solve_skew(32, policy="fixed")
        rows = result.ledger.trajectory
        assert rows and all(r["decision"] == "fixed" for r in rows)
        assert all(r["sample_budget"] == CAP for r in rows)
        assert all(r["predicted_peak_words"] is None for r in rows)

    def test_simulate_mode_records_no_trajectory(self):
        instance = union_of_forests(32, 32, 2, capacity=2, seed=0)
        result = solve_allocation_mpc(instance, EPS, lam=2, seed=0)
        assert result.ledger.trajectory == []
        assert result.meta["budget_policy"] == "fixed"


# ----------------------------------------------------------------------
# Determinism, substrate parity, certificates
# ----------------------------------------------------------------------
class TestDeterminismAndParity:
    def test_adaptive_is_deterministic(self):
        a = _solve_skew(64, policy="adaptive")
        b = _solve_skew(64, policy="adaptive")
        assert np.array_equal(a.allocation.x, b.allocation.x)
        assert a.ledger.trajectory == b.ledger.trajectory
        assert a.certificate == b.certificate

    def test_substrates_agree_bit_for_bit(self):
        res_o = _solve_skew(64, policy="adaptive", substrate="object")
        res_c = _solve_skew(64, policy="adaptive", substrate="columnar")
        assert np.array_equal(res_o.allocation.x, res_c.allocation.x)
        assert res_o.ledger.by_category == res_c.ledger.by_category
        assert res_o.ledger.trajectory == res_c.ledger.trajectory
        assert res_o.certificate == res_c.certificate

    def test_certificate_crosscheck_recorded_in_meta(self):
        result = _solve_skew(64, policy="adaptive")
        assert result.meta["budget_policy"] == "adaptive"
        assert result.meta["safety_fraction"] == pytest.approx(0.8)
        assert result.meta["certificate_crosscheck"] is True

    def test_adaptive_allocation_matches_quality_of_generous_fixed(self):
        # Inside the fixed frontier both policies must certify the same
        # ε guarantee; adaptive never trades correctness for space.
        fixed = _solve_skew(24, policy="fixed")
        adaptive = _solve_skew(24, policy="adaptive")
        assert fixed.certificate.mass_condition
        assert adaptive.certificate.mass_condition
        assert adaptive.guarantee == fixed.guarantee


# ----------------------------------------------------------------------
# Validation of the new knobs
# ----------------------------------------------------------------------
class TestKnobValidation:
    def test_adaptive_requires_faithful_mode(self):
        instance = union_of_forests(16, 16, 2, capacity=2, seed=0)
        with pytest.raises(ValueError, match="faithful"):
            solve_allocation_mpc(
                instance, EPS, lam=2, seed=0, budget_policy="adaptive"
            )

    def test_unknown_policy_rejected(self):
        instance = union_of_forests(16, 16, 2, capacity=2, seed=0)
        with pytest.raises(ValueError, match="budget_policy"):
            solve_allocation_mpc(
                instance, EPS, lam=2, seed=0, budget_policy="greedy"
            )

    def test_safety_fraction_validated(self):
        instance = union_of_forests(16, 16, 2, capacity=2, seed=0)
        with pytest.raises(ValueError):
            solve_allocation_mpc(
                instance, EPS, lam=2, mode="faithful", seed=0,
                budget_policy="adaptive", safety_fraction=0.0,
            )
