"""The serving layer: sessions, warm starts, the batch executor.

The contracts under test (DESIGN.md §8):

* cold-path bit-parity — a session's ``warm=False`` solve equals
  :func:`solve_allocation` exactly (edge masks and audit summaries);
* warm-path validity — warm solves end with a satisfied λ-free
  certificate and a feasible integral allocation, and converge in no
  more rounds than cold solves;
* batch determinism — seed-per-position, snapshot warm bases, and
  thread-count independence.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pipeline import (
    BoostStage,
    FractionalStage,
    RepairStage,
    RoundingStage,
    default_stages,
    run_pipeline,
    solve_allocation,
)
from repro.core.proportional import ProportionalRun
from repro.graphs.generators import load_balancing_instance, union_of_forests
from repro.serve import AllocationSession, SolveRequest, solve_batch
from repro.utils.rng import spawn

from tests.conftest import assert_feasible_integral


@pytest.fixture
def serving_instance():
    return union_of_forests(120, 90, 3, capacity=2, seed=0)


@pytest.fixture
def session(serving_instance):
    return AllocationSession(serving_instance, epsilon=0.2, boost=False)


# ----------------------------------------------------------------------
# Pipeline stage layer
# ----------------------------------------------------------------------

def test_default_stages_shape():
    names = [s.name for s in default_stages()]
    assert names == ["fractional", "rounding", "repair", "boost"]
    names = [s.name for s in default_stages(repair=False, boost=False)]
    assert names == ["fractional", "rounding"]


def test_run_pipeline_equals_solve_allocation(serving_instance):
    """The stage sequence is the monolith: identical masks + summaries."""
    direct = solve_allocation(serving_instance, 0.2, seed=3, boost=False)
    staged = run_pipeline(
        serving_instance,
        default_stages(boost=False, boost_epsilon=0.25),
        0.2,
        seed=3,
    )
    assert np.array_equal(direct.edge_mask, staged.edge_mask)
    assert direct.summary() == staged.summary()


def test_stage_records_audit_trail(serving_instance):
    res = solve_allocation(serving_instance, 0.2, seed=3)
    assert [r.stage for r in res.stage_records] == [
        "fractional", "rounding", "repair", "boost",
    ]
    assert res.stage_records[0].size is None
    assert res.stage_records[-1].size == res.size
    sizes = [r.size for r in res.stage_records[1:]]
    assert sizes == sorted(sizes)  # stages are monotone


def test_custom_stage_sequence_rounding_only(serving_instance):
    """Declarative configuration: fractional → rounding, nothing else."""
    res = run_pipeline(
        serving_instance,
        (FractionalStage(), RoundingStage(copies=4)),
        0.2,
        seed=5,
    )
    assert res.boosting is None
    assert res.repaired_size == res.rounding.size == res.size
    assert_feasible_integral(
        serving_instance.graph, serving_instance.capacities, res.edge_mask
    )


def test_run_pipeline_requires_rounding(serving_instance):
    with pytest.raises(RuntimeError, match="rounding"):
        run_pipeline(serving_instance, (FractionalStage(),), 0.2, seed=0)
    with pytest.raises(RuntimeError, match="fractional allocation"):
        run_pipeline(serving_instance, (RoundingStage(),), 0.2, seed=0)


def test_stage_stream_slots_are_fixed(serving_instance):
    """Removing repair must not shift boosting's stream: the flags path
    and an explicit stage list agree stage-for-stage."""
    flags = solve_allocation(serving_instance, 0.2, seed=9, repair=False)
    explicit = run_pipeline(
        serving_instance,
        (FractionalStage(), RoundingStage(), BoostStage(epsilon=0.25)),
        0.2,
        seed=9,
    )
    assert np.array_equal(flags.edge_mask, explicit.edge_mask)


# ----------------------------------------------------------------------
# Warm-start plumbing
# ----------------------------------------------------------------------

def test_proportional_warm_start_levels():
    inst = union_of_forests(40, 30, 2, capacity=2, seed=1)
    cold = ProportionalRun(inst.graph, inst.capacities, 0.2)
    cold.run(10)
    warm = ProportionalRun(
        inst.graph, inst.capacities, 0.2, initial_exponents=cold.beta_exp
    )
    assert np.array_equal(warm.beta_exp, cold.beta_exp)
    warm.step()
    # Level sets are relative to the warm base: one round moves every
    # vertex into levels {0, 1, 2} of this run.
    assert set(np.unique(warm.level_indices())) <= {0, 1, 2}
    assert np.array_equal(
        warm.top_level_mask(), warm.beta_exp == cold.beta_exp + 1
    )


def test_initial_exponents_validation():
    inst = union_of_forests(20, 15, 2, capacity=2, seed=2)
    with pytest.raises(ValueError, match="shape"):
        ProportionalRun(
            inst.graph, inst.capacities, 0.2,
            initial_exponents=np.zeros(3, dtype=np.int64),
        )
    with pytest.raises(TypeError, match="integer"):
        ProportionalRun(
            inst.graph, inst.capacities, 0.2,
            initial_exponents=np.zeros(inst.graph.n_right, dtype=np.float64),
        )


# ----------------------------------------------------------------------
# AllocationSession
# ----------------------------------------------------------------------

def test_session_cold_bit_parity(serving_instance, session):
    """warm=False solves are bit-identical to solve_allocation."""
    res = session.solve(SolveRequest(seed=11, warm=False))
    direct = solve_allocation(serving_instance, 0.2, seed=11, boost=False)
    assert np.array_equal(res.edge_mask, direct.edge_mask)
    assert res.summary() == direct.summary()


def test_session_first_solve_is_cold(session):
    res = session.solve(SolveRequest(seed=1))
    assert res.meta["warm_start"] is False
    assert session.stats.cold_solves == 1


def test_session_warm_solve_validated(session):
    cold = session.solve(SolveRequest(seed=1, warm=False))
    warm = session.solve(SolveRequest(seed=2))
    assert warm.meta["warm_start"] is True
    assert warm.mpc.certificate is not None and warm.mpc.certificate.satisfied
    assert_feasible_integral(
        session.instance.graph, session.instance.capacities, warm.edge_mask
    )
    # Warm-started dynamics never need more rounds than the cold solve.
    assert warm.mpc.local_rounds <= cold.mpc.local_rounds
    assert session.stats.warm_solves == 1


def test_session_capacity_update_request(session):
    session.solve(SolveRequest(seed=1))
    warm = session.solve(SolveRequest(seed=2, capacity_updates={0: 5, 3: 1}))
    capacities = session.instance.capacities.copy()
    capacities[0] = 5
    capacities[3] = 1
    assert warm.mpc.certificate.satisfied
    assert_feasible_integral(session.instance.graph, capacities, warm.edge_mask)
    # The base instance is untouched.
    assert session.instance.capacities[0] != 5 or session.instance.capacities[3] != 1


def test_session_epsilon_sweep(session):
    session.solve(SolveRequest(seed=1))
    for eps in (0.1, 0.15, 0.25):
        res = session.solve(SolveRequest(seed=3, epsilon=eps))
        assert res.meta["epsilon"] == eps
        assert res.mpc.certificate.satisfied


def test_session_reset_goes_cold(session):
    session.solve(SolveRequest(seed=1))
    session.reset()
    res = session.solve(SolveRequest(seed=2))
    assert res.meta["warm_start"] is False


def test_session_request_validation():
    with pytest.raises(ValueError, match="not both"):
        SolveRequest(capacities=[1, 2], capacity_updates={0: 1})
    with pytest.raises(ValueError, match="unknown request fields"):
        SolveRequest.from_json({"epsilonn": 0.2})


def test_session_request_from_json_rejects_non_mapping_updates():
    with pytest.raises(ValueError, match="capacity_updates must be an object"):
        SolveRequest.from_json({"capacity_updates": [1, 2]})


def test_session_request_from_json_rejects_non_integer_capacity():
    with pytest.raises(ValueError, match="must be an integer"):
        SolveRequest.from_json({"capacity_updates": {"0": 2.7}})
    with pytest.raises(ValueError, match="must be an integer"):
        SolveRequest.from_json({"capacity_updates": {"0": True}})
    with pytest.raises(ValueError, match=r"capacities\[0\] must be an integer"):
        SolveRequest.from_json({"capacities": [1.9, 2]})
    with pytest.raises(ValueError, match="capacities must be an array"):
        SolveRequest.from_json({"capacities": "12"})


def test_session_request_from_json_rejects_bad_scalars():
    with pytest.raises(ValueError, match="'seed' must be an integer"):
        SolveRequest.from_json({"seed": "abc"})
    with pytest.raises(ValueError, match="'warm' must be a boolean"):
        SolveRequest.from_json({"warm": "no"})
    with pytest.raises(ValueError, match="epsilon"):
        SolveRequest.from_json({"epsilon": 0.9})


def test_run_pipeline_rejects_cached_fractional_with_fractional_stage(
    serving_instance,
):
    cold = solve_allocation(serving_instance, 0.2, seed=1, boost=False)
    with pytest.raises(ValueError, match="cached_fractional"):
        run_pipeline(
            serving_instance,
            default_stages(boost=False),
            0.2,
            seed=2,
            cached_fractional=cold.mpc,
        )


def test_session_result_meta_json_serializable(session):
    """meta stays plain scalars (the solved instance is a typed field)."""
    import json

    res = session.solve(SolveRequest(seed=1, capacity_updates={0: 3}))
    json.dumps(res.meta)  # must not raise
    assert res.instance is not None
    assert res.instance.capacities[0] == 3


def test_session_capacity_update_out_of_range(session):
    n_right = session.instance.graph.n_right
    with pytest.raises(ValueError, match="out of range"):
        session.solve(SolveRequest(seed=0, capacity_updates={n_right: 3}))
    with pytest.raises(ValueError, match="out of range"):
        session.solve(SolveRequest(seed=0, capacity_updates={-1: 3}))


def test_session_reroll_rounding(session):
    first = session.solve(SolveRequest(seed=1))
    rerolls = [session.reroll_rounding(seed=s) for s in (5, 5, 6)]
    # Same cached fractional solve, same seed → identical re-roll.
    assert np.array_equal(rerolls[0].edge_mask, rerolls[1].edge_mask)
    assert rerolls[0].mpc is first.mpc
    assert rerolls[0].meta["rounding_reroll"] is True
    assert session.stats.rounding_rerolls == 3
    for rr in rerolls:
        assert_feasible_integral(
            session.instance.graph, session.instance.capacities, rr.edge_mask
        )


def test_session_reroll_uses_last_solved_capacities(session):
    """A re-roll after a capacity-override request must stay feasible
    for the *solved* instance, not the session's base capacities."""
    tightened = {v: 1 for v in range(10)}
    session.solve(SolveRequest(seed=1, capacity_updates=tightened))
    rr = session.reroll_rounding(seed=2)
    g = session.instance.graph
    right_used = np.bincount(g.edge_v[rr.edge_mask], minlength=g.n_right)
    assert np.all(right_used[:10] <= 1)


def test_session_reroll_inherits_last_request_config(session):
    """A re-roll reproduces the last request's effective stage config
    (here rounding_copies) unless explicitly overridden."""
    session.solve(SolveRequest(seed=1, rounding_copies=8))
    inherited = session.reroll_rounding(seed=2)
    explicit = session.reroll_rounding(seed=2, copies=8)
    assert np.array_equal(inherited.edge_mask, explicit.edge_mask)
    assert inherited.rounding.size == explicit.rounding.size


def test_session_reroll_requires_solve(serving_instance):
    fresh = AllocationSession(serving_instance, boost=False)
    with pytest.raises(RuntimeError, match="no completed solve"):
        fresh.reroll_rounding(seed=0)


# ----------------------------------------------------------------------
# solve_batch
# ----------------------------------------------------------------------

def test_solve_batch_empty(session):
    assert solve_batch(session, [], seed=0) == []


def test_solve_batch_seed_per_position(session):
    """Entry i equals a detached solve with spawn(seed, n)[i] from the
    same snapshot — the solve_allocation_many contract, extended."""
    session.solve(SolveRequest(seed=0, warm=False))  # establish warm state
    snapshot = session.exponents_snapshot()
    requests = [SolveRequest(), SolveRequest(capacity_updates={1: 4}), SolveRequest()]
    batch = solve_batch(session, requests, seed=7, commit=False)
    streams = spawn(7, len(requests))
    for i, req in enumerate(requests):
        lone = session.solve_detached(
            req, seed=streams[i], initial_exponents=snapshot.copy()
        )
        assert np.array_equal(batch[i].edge_mask, lone.edge_mask)
        assert batch[i].summary() == lone.summary()


def test_solve_batch_thread_count_independent(session):
    session.solve(SolveRequest(seed=0, warm=False))
    requests = [SolveRequest() for _ in range(8)]
    serial = solve_batch(session, requests, seed=3, max_workers=1, commit=False)
    threaded = solve_batch(session, requests, seed=3, max_workers=4, commit=False)
    for a, b in zip(serial, threaded):
        assert np.array_equal(a.edge_mask, b.edge_mask)
        assert a.summary() == b.summary()


def test_solve_batch_commits_last_position(session):
    session.solve(SolveRequest(seed=0, warm=False))
    requests = [SolveRequest(), SolveRequest(capacity_updates={2: 5})]
    results = solve_batch(session, requests, seed=1)
    assert np.array_equal(
        session.exponents_snapshot(), results[-1].mpc.final_exponents
    )


def test_solve_batch_explicit_seed_wins(session):
    session.solve(SolveRequest(seed=0, warm=False))
    snapshot = session.exponents_snapshot()
    [res] = solve_batch(session, [SolveRequest(seed=123)], seed=9, commit=False)
    lone = session.solve_detached(
        SolveRequest(seed=123), initial_exponents=snapshot
    )
    assert np.array_equal(res.edge_mask, lone.edge_mask)


def test_solve_batch_multi_session():
    """Multi-tenant: per-request sessions, results keep request order."""
    inst_a = union_of_forests(60, 45, 2, capacity=2, seed=1)
    inst_b = load_balancing_instance(50, 8, locality=3, seed=2)
    sess_a = AllocationSession(inst_a, boost=False)
    sess_b = AllocationSession(inst_b, boost=False)
    sessions = [sess_a, sess_b, sess_a]
    requests = [SolveRequest() for _ in sessions]
    results = solve_batch(sessions, requests, seed=5, max_workers=3)
    assert len(results) == 3
    assert_feasible_integral(inst_a.graph, inst_a.capacities, results[0].edge_mask)
    assert_feasible_integral(inst_b.graph, inst_b.capacities, results[1].edge_mask)
    assert sess_a.stats.solves == 2  # every executed request is counted
    assert sess_b.stats.solves == 1


def test_solve_batch_session_count_mismatch(session):
    with pytest.raises(ValueError, match="sessions"):
        solve_batch([session], [SolveRequest(), SolveRequest()], seed=0)


def test_solve_stream_primes_then_warms(serving_instance):
    from repro.serve import solve_stream

    fresh = AllocationSession(serving_instance, epsilon=0.2, boost=False)
    results = solve_stream(fresh, [SolveRequest() for _ in range(4)], seed=3)
    assert [r.meta["warm_start"] for r in results] == [False, True, True, True]
    # Position 0 equals a plain session solve with spawn(seed, n)[0].
    other = AllocationSession(serving_instance, epsilon=0.2, boost=False)
    lone = other.solve(SolveRequest(seed=spawn(3, 4)[0]))
    assert np.array_equal(results[0].edge_mask, lone.edge_mask)


def test_solve_stream_empty(session):
    from repro.serve import solve_stream

    assert solve_stream(session, [], seed=0) == []
