"""Tests for the b-matching generalization."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.exact import optimum_value
from repro.bmatching.exact import optimum_bmatching_value, solve_exact_bmatching
from repro.bmatching.greedy import greedy_bmatching
from repro.bmatching.problem import BMatchingInstance, from_allocation, to_allocation
from repro.bmatching.proportional import proportional_bmatching
from repro.core import params
from repro.graphs import build_graph
from repro.graphs.generators import complete_bipartite_instance, union_of_forests
from repro.utils.rng import as_generator


def random_bminstance(seed, n_left=12, n_right=10, m=30, bmax=3):
    rng = as_generator(seed)
    chosen = rng.choice(n_left * n_right, size=m, replace=False)
    g = build_graph(
        n_left, n_right,
        (chosen // n_right).astype(np.int64),
        (chosen % n_right).astype(np.int64),
    )
    return BMatchingInstance(
        graph=g,
        b_left=rng.integers(1, bmax + 1, size=n_left),
        b_right=rng.integers(1, bmax + 1, size=n_right),
    )


def test_instance_validation():
    g = build_graph(2, 2, [0, 1], [0, 1])
    with pytest.raises(ValueError):
        BMatchingInstance(graph=g, b_left=np.array([1]), b_right=np.array([1, 1]))
    with pytest.raises(ValueError):
        BMatchingInstance(graph=g, b_left=np.array([0, 1]), b_right=np.array([1, 1]))


def test_allocation_embedding_round_trip(small_forest_instance):
    bm = from_allocation(small_forest_instance)
    assert np.all(bm.b_left == 1)
    back = to_allocation(bm)
    assert np.array_equal(back.capacities, small_forest_instance.capacities)


def test_to_allocation_requires_unit_left():
    g = build_graph(2, 2, [0, 1], [0, 1])
    bm = BMatchingInstance(graph=g, b_left=np.array([2, 1]), b_right=np.array([1, 1]))
    with pytest.raises(ValueError):
        to_allocation(bm)


def test_exact_bmatching_agrees_with_allocation_oracle():
    for seed in range(3):
        inst = union_of_forests(15, 12, 2, capacity=3, seed=seed)
        bm = from_allocation(inst)
        assert optimum_bmatching_value(bm) == optimum_value(inst)


def test_exact_bmatching_two_sided():
    # K_{3,3} with b_left = 2, b_right = 2: optimum = min(6, 6, 9) = 6.
    inst = complete_bipartite_instance(3, 3).graph
    bm = BMatchingInstance(
        graph=inst, b_left=np.full(3, 2), b_right=np.full(3, 2)
    )
    sol = solve_exact_bmatching(bm)
    assert sol.value == 6
    assert bm.check_feasible(sol.edge_mask)


def test_greedy_bmatching_half_approx():
    for seed in range(4):
        bm = random_bminstance(seed)
        mask = greedy_bmatching(bm, seed=seed)
        assert bm.check_feasible(mask)
        assert int(mask.sum()) * 2 >= optimum_bmatching_value(bm)


def test_greedy_bmatching_order_validated():
    bm = random_bminstance(0)
    with pytest.raises(ValueError):
        greedy_bmatching(bm, order="bogus")


def test_proportional_bmatching_feasible_and_competitive():
    for seed in range(3):
        bm = random_bminstance(seed, n_left=20, n_right=15, m=60)
        tau = params.tau_azm18(bm.graph.n_right, 0.2)
        out = proportional_bmatching(bm, 0.2, tau)
        assert out.check_feasible(bm)
        opt = optimum_bmatching_value(bm)
        # Experimental: empirically lands within 2.5x on these families.
        assert out.weight * 2.5 >= opt


def test_proportional_bmatching_reduces_to_allocation():
    inst = union_of_forests(20, 15, 2, capacity=2, seed=6)
    bm = from_allocation(inst)
    tau = params.tau_two_approx(2, 0.25)
    out = proportional_bmatching(bm, 0.25, tau)
    from repro.core.local_driver import solve_fractional_fixed_tau

    ref = solve_fractional_fixed_tau(inst, 0.25, tau=tau)
    # With unit left b-values the dynamics coincide with Algorithm 1.
    assert out.weight == pytest.approx(ref.match_weight, rel=1e-9)


@given(st.integers(0, 2**31 - 1))
@settings(max_examples=10, deadline=None)
def test_property_bmatching_feasibility(seed):
    bm = random_bminstance(seed, n_left=8, n_right=6, m=16)
    out = proportional_bmatching(bm, 0.25, tau=6)
    assert out.check_feasible(bm)
    mask = greedy_bmatching(bm, seed=seed)
    assert bm.check_feasible(mask)
