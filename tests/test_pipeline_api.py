"""Tests for the single-call pipeline API (the CLI suite lives in
``tests/test_cli.py``; the stage layer and serving tests in
``tests/test_serve.py``)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.exact import optimum_value
from repro.core.pipeline import solve_allocation, solve_allocation_many
from repro.graphs.generators import union_of_forests
from repro.kernels import workspace_for

from tests.conftest import assert_feasible_integral


def test_solve_allocation_full(medium_forest_instance):
    inst = medium_forest_instance
    res = solve_allocation(inst, 0.2, seed=1)
    assert_feasible_integral(inst.graph, inst.capacities, res.edge_mask)
    assert res.size == int(res.edge_mask.sum())
    assert res.size >= res.repaired_size >= res.rounding.size
    opt = optimum_value(inst)
    assert res.size * 1.5 >= opt  # boosted to within 1+1/k, k>=4 here
    summary = res.summary()
    assert summary["final_size"] == res.size
    assert summary["mpc_rounds"] >= 1


def test_solve_allocation_stages_optional(small_forest_instance):
    inst = small_forest_instance
    bare = solve_allocation(inst, 0.2, seed=2, repair=False, boost=False)
    assert bare.boosting is None
    assert bare.size == bare.rounding.size
    with_repair = solve_allocation(inst, 0.2, seed=2, boost=False)
    assert with_repair.size >= bare.size


def test_solve_allocation_deterministic(small_forest_instance):
    a = solve_allocation(small_forest_instance, 0.2, seed=7)
    b = solve_allocation(small_forest_instance, 0.2, seed=7)
    assert np.array_equal(a.edge_mask, b.edge_mask)


def test_solve_allocation_epsilon_capped(small_forest_instance):
    with pytest.raises(ValueError):
        solve_allocation(small_forest_instance, 0.5)


def test_solve_allocation_many_batches(small_forest_instance):
    instances = [
        small_forest_instance,
        union_of_forests(24, 20, 2, capacity=2, seed=5),
    ]
    results = solve_allocation_many(instances, 0.2, seed=3, boost=False)
    assert len(results) == len(instances)
    for inst, res in zip(instances, results):
        assert_feasible_integral(inst.graph, inst.capacities, res.edge_mask)


def test_solve_allocation_many_shares_workspace(monkeypatch, small_forest_instance):
    """Instances sharing a graph must be solved with one shared cached
    workspace — observed by spying on the per-instance solve calls."""
    import dataclasses

    import repro.core.pipeline as pipeline_module

    twin = dataclasses.replace(small_forest_instance)  # same graph object
    seen = []
    original = pipeline_module.solve_allocation

    def spy(instance, epsilon, **kwargs):
        seen.append(kwargs.get("workspace"))
        return original(instance, epsilon, **kwargs)

    monkeypatch.setattr(pipeline_module, "solve_allocation", spy)
    pipeline_module.solve_allocation_many(
        [small_forest_instance, twin], 0.2, seed=3, boost=False
    )
    assert len(seen) == 2
    assert seen[0] is not None
    assert seen[0] is seen[1]
    assert seen[0] is workspace_for(small_forest_instance.graph)


def test_solve_allocation_many_matches_single(small_forest_instance):
    """Batched solving changes amortization, never results: with the
    same spawned seed, the batch entry equals the single-call result."""
    from repro.utils.rng import spawn

    batch = solve_allocation_many([small_forest_instance], 0.2, seed=9, boost=False)
    single = solve_allocation(
        small_forest_instance, 0.2, seed=spawn(9, 1)[0], boost=False
    )
    assert np.array_equal(batch[0].edge_mask, single.edge_mask)


def test_solve_allocation_many_empty_batch():
    assert solve_allocation_many([], 0.2, seed=0) == []


def test_solve_allocation_many_rejects_workspace_kwarg(small_forest_instance):
    with pytest.raises(TypeError, match="workspace"):
        solve_allocation_many(
            [small_forest_instance], 0.2, seed=0,
            workspace=workspace_for(small_forest_instance.graph),
        )
