"""Multi-process sharded serving (DESIGN.md §12).

What is covered here:

* the shared-memory instance round trip (publish → attach → identical
  arrays, attached-workspace fast-path identity, exponent segment
  versioning);
* the routing rule (stable content hash: metadata-blind, capacity-
  sensitive, same instance → same shard);
* the process-boundary pickle contracts (``SolverConfig``,
  ``AllocationReport`` live→detached, ``SolveRequest``);
* the cross-executor determinism matrix: one request stream through
  the thread batch, a 1-worker process pool, and a 4-worker process
  pool must yield bit-identical allocations, certificates, and round
  counts;
* fleet lifecycle: warm state across batches, crash respawn with warm
  recovery from shared memory, clean shutdown/unlink via
  ``Engine.close()``;
* the sharded dynamic replay vs the in-process ``Engine.stream``.
"""

from __future__ import annotations

import glob
import pickle
import time

import numpy as np
import pytest

from repro.api import Engine, SolverConfig
from repro.api.report import AllocationReport
from repro.graphs.generators import erdos_renyi_instance, power_law_instance
from repro.serve import (
    AllocationSession,
    ShardedExecutor,
    SharedInstance,
    SolveRequest,
    attach_instance,
    instance_hash,
    solve_batch,
    solve_stream,
)

_GRAPH_FIELDS = (
    "edge_u", "edge_v",
    "left_indptr", "left_adj", "left_edge",
    "right_indptr", "right_adj", "right_edge",
)


@pytest.fixture(scope="module")
def instance():
    return power_law_instance(n_left=60, n_right=24, seed=3)


@pytest.fixture(scope="module")
def other_instance():
    return erdos_renyi_instance(n_left=40, n_right=18, m=120, seed=7)


def _requests(n, *, epsilon=0.2):
    return [
        SolveRequest(epsilon=epsilon, capacity_updates={i % 5: 2})
        for i in range(n)
    ]


def _dicts(reports):
    return [r.to_dict() for r in reports]


def _leaked_segments():
    return glob.glob("/dev/shm/repro_*")


# ----------------------------------------------------------------------
# Content hash (the routing key)
# ----------------------------------------------------------------------
class TestInstanceHash:
    def test_stable_across_calls(self, instance):
        assert instance_hash(instance) == instance_hash(instance)

    def test_ignores_name_and_metadata(self, instance):
        from repro.graphs.instances import AllocationInstance

        renamed = AllocationInstance(
            graph=instance.graph,
            capacities=instance.capacities,
            arboricity_upper_bound=instance.arboricity_upper_bound,
            name="renamed-tenant",
            metadata={"anything": "else"},
        )
        assert instance_hash(renamed) == instance_hash(instance)

    def test_sensitive_to_capacities(self, instance):
        from repro.graphs.instances import AllocationInstance

        bumped = AllocationInstance(
            graph=instance.graph,
            capacities=instance.capacities + 1,
            name=instance.name,
        )
        assert instance_hash(bumped) != instance_hash(instance)

    def test_distinct_instances_distinct_hashes(self, instance, other_instance):
        assert instance_hash(instance) != instance_hash(other_instance)

    def test_shard_routing_is_hash_mod_workers(self, instance):
        executor = ShardedExecutor(3)
        try:
            expected = int(instance_hash(instance), 16) % 3
            assert executor.shard_of(instance) == expected
        finally:
            executor.close()


# ----------------------------------------------------------------------
# Shared-memory round trip
# ----------------------------------------------------------------------
class TestSharedInstance:
    def test_publish_attach_round_trip(self, instance):
        handle = SharedInstance.publish(instance)
        attached = attach_instance(handle.descriptor)
        try:
            g1, g2 = instance.graph, attached.instance.graph
            for field in _GRAPH_FIELDS:
                assert np.array_equal(getattr(g1, field), getattr(g2, field))
            assert np.array_equal(instance.capacities, attached.instance.capacities)
            assert attached.instance.name == instance.name
            assert not attached.instance.capacities.flags.writeable
        finally:
            attached.close()
            handle.unlink()

    def test_attached_workspace_fast_path_identity(self, instance):
        """The optimized backend trusts a layout only when
        ``layout.indptr is indptr`` — the attach path must preserve
        that identity over the shm views."""
        handle = SharedInstance.publish(instance)
        attached = attach_instance(handle.descriptor)
        try:
            graph = attached.instance.graph
            assert graph.left_layout.indptr is graph.left_indptr
            assert graph.right_layout.indptr is graph.right_indptr
            # and the layout invariants match a fresh derivation
            fresh = instance.graph
            assert np.array_equal(
                graph.left_layout.slot_owner, fresh.left_layout.slot_owner
            )
            assert np.array_equal(
                graph.right_layout.reduce_starts,
                fresh.right_layout.reduce_starts,
            )
        finally:
            attached.close()
            handle.unlink()

    def test_solve_on_attached_instance_bit_identical(self, instance):
        handle = SharedInstance.publish(instance)
        attached = attach_instance(handle.descriptor)
        try:
            a = AllocationSession(instance).solve(SolveRequest(seed=5))
            b = AllocationSession(attached.instance).solve(SolveRequest(seed=5))
            assert np.array_equal(a.edge_mask, b.edge_mask)
            assert a.mpc.local_rounds == b.mpc.local_rounds
            assert np.array_equal(a.mpc.final_exponents, b.mpc.final_exponents)
        finally:
            attached.close()
            handle.unlink()

    def test_exponent_segment_versioning(self, instance):
        handle = SharedInstance.publish(instance)
        attached = attach_instance(handle.descriptor)
        try:
            assert attached.load_exponents() is None
            assert handle.exponents() == (0, None)
            vec = np.arange(instance.n_right, dtype=np.int64)
            attached.store_exponents(vec)
            assert np.array_equal(attached.load_exponents(), vec)
            version, owner_view = handle.exponents()
            assert version == 1
            assert np.array_equal(owner_view, vec)
            attached.store_exponents(vec + 1)
            assert handle.exponents()[0] == 2
            with pytest.raises(ValueError):
                attached.store_exponents(np.zeros(3, dtype=np.int64))
        finally:
            attached.close()
            handle.unlink()

    def test_half_written_commit_detected_previous_version_used(self, instance):
        """Regression: a writer dying mid-commit must not lose warmth.

        The exponent segment's two-slot commit protocol writes a
        ``begin_seq`` marker, then the vector into the *inactive* slot,
        then the ``committed_seq``.  Death between ``begin`` and
        ``commit`` therefore leaves the committed slot untouched:
        readers must report the tear and return the previous committed
        vector — the fleet rebuild re-primes from real warm state
        instead of silently adopting garbage or falling back cold.
        """
        from repro.serve.shm import EXP_HEADER_WORDS

        handle = SharedInstance.publish(instance)
        attached = attach_instance(handle.descriptor)
        try:
            committed = np.arange(instance.n_right, dtype=np.int64)
            attached.store_exponents(committed)
            assert attached.commit_info() == {
                "committed": 1, "begin": 1, "torn": False,
            }

            # Simulate the writer dying mid-commit of version 2: begin
            # marker written, half the vector scribbled into slot
            # 2 % 2 == 0, commit word never written.
            buf = attached._exp_shm.buf
            header = np.ndarray((EXP_HEADER_WORDS,), dtype=np.int64, buffer=buf)
            header[1] = 2
            torn_slot = np.ndarray(
                (instance.n_right,), dtype=np.int64, buffer=buf,
                offset=8 * EXP_HEADER_WORDS,
            )
            torn_slot[: instance.n_right // 2] = -999

            info = attached.commit_info()
            assert info["torn"] is True and info["committed"] == 1
            # Both the attaching reader and the owner still see the
            # previous committed vector, bit-exact.
            assert np.array_equal(attached.load_exponents(), committed)
            version, owner_view = handle.exponents()
            assert version == 1
            assert np.array_equal(owner_view, committed)

            # A subsequent successful store supersedes the tear: the
            # writer restarts the commit at the next sequence.
            attached.store_exponents(committed + 5)
            assert attached.commit_info()["torn"] is False
            assert np.array_equal(attached.load_exponents(), committed + 5)
        finally:
            attached.close()
            handle.unlink()

    def test_unlink_is_idempotent_and_frees_segments(self, instance):
        before = set(_leaked_segments())
        handle = SharedInstance.publish(instance)
        assert len(_leaked_segments()) == len(before) + 2
        handle.unlink()
        handle.unlink()
        assert set(_leaked_segments()) == before


# ----------------------------------------------------------------------
# Process-boundary pickling (the silent prerequisite)
# ----------------------------------------------------------------------
class TestPickling:
    def test_solver_config_round_trip(self):
        config = SolverConfig(
            epsilon=0.15, seed=9, executor="process", shard_workers=2,
            boost=False, lam=4,
        )
        clone = pickle.loads(pickle.dumps(config))
        assert clone == config
        assert clone.to_json() == config.to_json()

    def test_allocation_report_pickles_as_detached(self, instance):
        live = Engine(seed=3).solve(instance)
        assert not live.detached
        clone = pickle.loads(pickle.dumps(live))
        assert clone.detached
        assert clone.to_dict() == live.to_dict()
        assert clone.size == live.size
        assert clone.certified == live.certified
        assert clone.local_rounds == live.local_rounds
        assert np.array_equal(clone.edge_mask, live.edge_mask)

    def test_detached_report_pickles_too(self, instance):
        detached = AllocationReport.from_json(Engine(seed=3).solve(instance).to_json())
        clone = pickle.loads(pickle.dumps(detached))
        assert clone.to_dict() == detached.to_dict()

    def test_solve_request_round_trip(self):
        request = SolveRequest(
            epsilon=0.2, capacity_updates={1: 3}, seed=7, tag="t"
        )
        clone = pickle.loads(pickle.dumps(request))
        assert clone == request

    def test_solve_request_with_generator_seed_pickles(self):
        request = SolveRequest(seed=np.random.default_rng(3))
        clone = pickle.loads(pickle.dumps(request))
        # same stream state: identical draws
        assert clone.seed.integers(1 << 30) == np.random.default_rng(3).integers(1 << 30)


# ----------------------------------------------------------------------
# Cross-executor determinism (the contract the curve rides on)
# ----------------------------------------------------------------------
class TestCrossExecutorDeterminism:
    def test_thread_vs_1_vs_4_workers_bit_identical(self, instance):
        requests = _requests(6)
        session = AllocationSession(instance)
        thread_results = solve_stream(session, requests, seed=42)
        reference = _dicts(
            AllocationReport.from_pipeline(r) for r in thread_results
        )
        for workers in (1, 4):
            with ShardedExecutor(workers) as executor:
                reports = executor.run_batch(instance, requests, seed=42)
            assert _dicts(reports) == reference, f"{workers}-worker mismatch"
        # certificates and round counts are inside to_dict, but assert
        # the headline fields explicitly — they are the acceptance bar.
        with ShardedExecutor(2) as executor:
            reports = executor.run_batch(instance, requests, seed=42)
        for report, result in zip(reports, thread_results):
            assert report.certified
            assert report.local_rounds == result.mpc.local_rounds
            assert np.array_equal(report.edge_mask, result.edge_mask)

    def test_unprimed_batch_matches_solve_batch(self, instance):
        requests = _requests(5)
        session = AllocationSession(instance)
        reference = _dicts(
            AllocationReport.from_pipeline(r)
            for r in solve_batch(session, requests, seed=11, max_workers=2)
        )
        with ShardedExecutor(2) as executor:
            reports = executor.run_batch(instance, requests, seed=11, prime=False)
        assert _dicts(reports) == reference

    def test_multi_instance_routing_matches_thread_groups(
        self, instance, other_instance
    ):
        """Interleaved tenants: each instance's sub-stream must follow
        the same solve_stream semantics the thread path applies to an
        aligned session sequence."""
        instances = [instance, other_instance, instance, other_instance, instance]
        requests = _requests(5)
        session_a = AllocationSession(instance)
        session_b = AllocationSession(other_instance)
        aligned = [
            session_a if inst is instance else session_b for inst in instances
        ]
        reference = _dicts(
            AllocationReport.from_pipeline(r)
            for r in solve_batch(aligned, requests, seed=13, max_workers=1)
        )
        with ShardedExecutor(2) as executor:
            reports = executor.run_batch(
                instances, requests, seed=13, prime=False
            )
            stats = executor.stats()
        assert _dicts(reports) == reference
        assert stats["published_instances"] == 2
        # same instance → same shard: every solve of one content hash
        # is owned by exactly one worker
        owners = {
            content: worker
            for worker, shard in stats["shards"].items()
            if shard is not None
            for content in shard["sessions"]
        }
        assert len(owners) == 2

    def test_engine_batch_executor_parity(self, instance):
        requests = _requests(4)
        with Engine(seed=21) as engine:
            thread_reports = engine.batch(instance, requests)
            process_reports = engine.batch(
                instance, requests, executor="process", workers=2
            )
        assert _dicts(process_reports) == _dicts(thread_reports)

    def test_explicit_request_seeds_win(self, instance):
        requests = [SolveRequest(seed=123), SolveRequest(seed=123)]
        with ShardedExecutor(1) as executor:
            reports = executor.run_batch(instance, requests, seed=0, prime=False)
        assert reports[0].to_dict() == reports[1].to_dict()


# ----------------------------------------------------------------------
# Fleet lifecycle: warmth, crashes, cleanup
# ----------------------------------------------------------------------
class TestFleetLifecycle:
    def test_warm_state_across_batches(self, instance):
        requests = _requests(3)
        with ShardedExecutor(1) as executor:
            assert executor.warm_exponents(instance) is None
            first = executor.run_batch(instance, requests, seed=1)
            assert executor.warm_exponents(instance) is not None
            second = executor.run_batch(instance, requests, seed=1)
        assert first[0].meta["warm_start"] is False
        # second batch: the resident session is warm, so even the
        # primed first request warm-starts — exactly like a thread
        # session serving stream after stream
        assert all(r.meta["warm_start"] for r in second)
        session = AllocationSession(instance)
        solve_stream(session, requests, seed=1)
        reference = _dicts(
            AllocationReport.from_pipeline(r)
            for r in solve_stream(session, requests, seed=1)
        )
        assert _dicts(second) == reference

    def test_crash_respawn_recovers_warm_state(self, instance):
        requests = _requests(3)
        with ShardedExecutor(1) as executor:
            executor.run_batch(instance, requests, seed=1)
            # kill the only worker between batches
            executor._procs[0].terminate()
            executor._procs[0].join(timeout=5.0)
            reports = executor.run_batch(instance, requests, seed=1)
            assert executor.restarts == 1
        # the respawned worker primed from the shm exponent segment:
        # same answers as an uninterrupted fleet's second batch
        with ShardedExecutor(1) as executor:
            executor.run_batch(instance, requests, seed=1)
            uninterrupted = executor.run_batch(instance, requests, seed=1)
        assert _dicts(reports) == _dicts(uninterrupted)
        assert all(r.meta["warm_start"] for r in reports)

    def test_worker_death_mid_batch_raises(self, instance):
        with ShardedExecutor(1) as executor:
            executor.run_batch(instance, _requests(1), seed=0)
            executor._procs[0].terminate()
            executor._procs[0].join(timeout=5.0)
            # Freeze the pre-dispatch respawn so the death happens
            # "mid-batch": collection must detect the dead shard with
            # positions in flight instead of hanging.
            real_ensure = executor._ensure_workers
            executor._ensure_workers = lambda: None
            try:
                with pytest.raises(RuntimeError, match="died"):
                    executor.run_batch(instance, _requests(2), seed=0, timeout=60)
            finally:
                executor._ensure_workers = real_ensure
            # the next batch respawns the shard and serves normally
            reports = executor.run_batch(instance, _requests(2), seed=0)
            assert all(r.certified for r in reports)

    def test_worker_exception_propagates(self, instance):
        bad = SolveRequest(capacity_updates={instance.n_right + 99: 1})
        with ShardedExecutor(1) as executor:
            with pytest.raises(RuntimeError, match="failed on positions"):
                executor.run_batch(instance, [bad], seed=0, timeout=60)
            # the fleet survives a request-level failure
            ok = executor.run_batch(instance, _requests(1), seed=0)
        assert ok[0].certified

    def test_close_unlinks_segments_and_stops_workers(self, instance):
        before = set(_leaked_segments())
        executor = ShardedExecutor(2)
        executor.run_batch(instance, _requests(2), seed=0)
        procs = [p for p in executor._procs if p is not None]
        assert len(_leaked_segments()) > len(before)
        executor.close()
        executor.close()  # idempotent
        assert set(_leaked_segments()) == before
        deadline = time.monotonic() + 10
        while any(p.is_alive() for p in procs) and time.monotonic() < deadline:
            time.sleep(0.05)
        assert not any(p.is_alive() for p in procs)
        with pytest.raises(RuntimeError, match="closed"):
            executor.run_batch(instance, _requests(1), seed=0)

    def test_engine_close_shuts_fleet_down(self, instance):
        before = set(_leaked_segments())
        engine = Engine(seed=2).activate()
        engine.batch(instance, _requests(2), executor="process", workers=2)
        fleet = engine._fleet
        assert fleet is not None
        engine.close()
        assert engine._fleet is None
        assert set(_leaked_segments()) == before
        assert fleet._closed

    def test_process_executor_rejects_sessions(self, instance):
        engine = Engine()
        with pytest.raises(TypeError, match="instances, not sessions"):
            engine.batch(
                AllocationSession(instance), _requests(1), executor="process"
            )

    def test_misaligned_instances_rejected(self, instance):
        with ShardedExecutor(1) as executor:
            with pytest.raises(ValueError, match="instances for"):
                executor.run_batch([instance, instance], _requests(3), seed=0)

    def test_config_validation(self):
        with pytest.raises(ValueError, match="executor"):
            SolverConfig(executor="fork-bomb")
        with pytest.raises(ValueError, match="shard_workers"):
            SolverConfig(shard_workers=0)
        with pytest.raises(ValueError):
            ShardedExecutor(0)


# ----------------------------------------------------------------------
# Sharded dynamic replay
# ----------------------------------------------------------------------
class TestShardedReplay:
    def test_replay_matches_engine_stream(self, instance):
        from repro.dynamic import SCENARIOS

        deltas = SCENARIOS["diurnal_wave"](instance, 4, seed=5)
        with Engine(seed=5) as engine:
            stream = engine.stream(instance, deltas)
            with ShardedExecutor(2) as executor:
                remote = executor.run_replay(instance, deltas, seed=5)
        assert remote.prime is not None and stream.prime is not None
        assert remote.prime.to_dict() == stream.prime.to_dict()
        assert list(remote.rows) == stream.rows()
        assert _dicts(remote.reports) == _dicts(stream.reports)
        assert remote.stats == stream.session.stats.as_dict()
