"""Tests for the round-for-round MPC simulation of Algorithm 1."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.proportional import ProportionalRun
from repro.graphs.generators import star_instance, union_of_forests
from repro.mpc.simulation import simulate_local_rounds_on_cluster


def test_direct_matches_vectorized_star():
    inst = star_instance(6, center_capacity=3)
    res = simulate_local_rounds_on_cluster(
        inst.graph, inst.capacities, 0.25, tau=5, space_slack=512.0
    )
    ref = ProportionalRun(inst.graph, inst.capacities, 0.25).run(5)
    assert np.array_equal(res.beta_exp, ref.beta_exp)
    assert np.allclose(res.alloc, ref.alloc, atol=1e-9)


def test_direct_costs_three_rounds_per_local_round():
    inst = union_of_forests(15, 12, 2, capacity=2, seed=4)
    res = simulate_local_rounds_on_cluster(
        inst.graph, inst.capacities, 0.2, tau=4, space_slack=512.0
    )
    assert res.mpc_rounds == 3 * 4
    assert res.local_rounds == 4
    assert res.violations == []
    assert res.peak_machine_words > 0


def test_direct_validates_inputs(small_star):
    with pytest.raises(ValueError):
        simulate_local_rounds_on_cluster(
            small_star.graph, small_star.capacities, 0.25, tau=0
        )


@given(st.integers(0, 2**31 - 1), st.integers(1, 5))
@settings(max_examples=10, deadline=None)
def test_property_direct_equivalence(seed, tau):
    inst = union_of_forests(10, 8, 2, capacity=2, seed=seed)
    res = simulate_local_rounds_on_cluster(
        inst.graph, inst.capacities, 0.3, tau=tau, space_slack=1024.0
    )
    ref = ProportionalRun(inst.graph, inst.capacities, 0.3).run(tau)
    assert np.array_equal(res.beta_exp, ref.beta_exp)
    assert np.allclose(res.alloc, ref.alloc, atol=1e-9)
