"""Tests for the §6 rounding procedure and the repair extension."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.exact import optimum_value
from repro.core.fractional import FractionalAllocation
from repro.core.local_driver import solve_fractional_fixed_tau
from repro.rounding.repair import greedy_fill
from repro.rounding.sampling import (
    EXPECTATION_FACTOR,
    default_copies,
    expected_size_lower_bound,
    round_best_of,
    round_once,
)
from repro.graphs.generators import star_instance, union_of_forests

from tests.conftest import assert_feasible_integral


def fractional_for(inst, eps=0.25):
    return solve_fractional_fixed_tau(inst, eps).allocation


def test_round_once_feasible(medium_forest_instance):
    inst = medium_forest_instance
    frac = fractional_for(inst)
    out = round_once(inst.graph, inst.capacities, frac, seed=0)
    assert_feasible_integral(inst.graph, inst.capacities, out.edge_mask)
    # Survivors are a subset of the sample.
    assert np.all(~out.edge_mask | out.sampled_mask)


def test_round_once_drops_heavy(small_star):
    # Fractional allocation putting mass 1 on each star edge: with
    # capacity 3 and 6 leaves, heavy centers must lose all edges.
    inst = star_instance(6, center_capacity=1)
    frac = FractionalAllocation(x=np.full(6, 1.0 / 6))
    hits = 0
    for seed in range(200):
        out = round_once(inst.graph, inst.capacities, frac, seed=seed)
        assert_feasible_integral(inst.graph, inst.capacities, out.edge_mask)
        if out.heavy_right[0]:
            assert out.size == 0
            hits += 1
    # Heaviness must occur sometimes but not always.
    assert 0 < hits < 200


def test_expectation_bound_monte_carlo():
    """E[|M|] ≥ wt(M_f)/9 (§6) within Monte-Carlo error."""
    inst = union_of_forests(60, 40, 3, capacity=2, seed=2)
    frac = fractional_for(inst)
    trials = 400
    sizes = [
        round_once(inst.graph, inst.capacities, frac, seed=s).size
        for s in range(trials)
    ]
    mean = float(np.mean(sizes))
    bound = expected_size_lower_bound(frac.weight)
    # Allow 3 standard errors of slack below the bound.
    se = float(np.std(sizes)) / np.sqrt(trials)
    assert mean >= bound - 3 * se


def test_round_best_of_improves_on_median(medium_forest_instance):
    inst = medium_forest_instance
    frac = fractional_for(inst)
    singles = [
        round_once(inst.graph, inst.capacities, frac, seed=s).size for s in range(16)
    ]
    best = round_best_of(inst.graph, inst.capacities, frac, copies=16, seed=0)
    assert best.size >= int(np.median(singles))
    assert_feasible_integral(inst.graph, inst.capacities, best.edge_mask)


def test_default_copies_logarithmic():
    assert default_copies(2) >= 1
    assert default_copies(10**6) > default_copies(10**2)


def test_round_shape_mismatch(small_star):
    with pytest.raises(ValueError):
        round_once(
            small_star.graph, small_star.capacities,
            FractionalAllocation(x=np.zeros(3)), seed=0,
        )


def test_greedy_fill_extends_to_maximal(medium_forest_instance):
    from repro.baselines.greedy import is_maximal_allocation

    inst = medium_forest_instance
    frac = fractional_for(inst)
    out = round_best_of(inst.graph, inst.capacities, frac, copies=4, seed=1)
    filled = greedy_fill(inst.graph, inst.capacities, out.edge_mask, seed=2)
    assert filled.sum() >= out.size
    assert_feasible_integral(inst.graph, inst.capacities, filled)
    assert is_maximal_allocation(inst.graph, inst.capacities, filled)


def test_greedy_fill_rejects_infeasible(small_star):
    bad = np.ones(small_star.graph.n_edges, dtype=bool)
    with pytest.raises(ValueError):
        greedy_fill(small_star.graph, small_star.capacities, bad)


def test_end_to_end_constant_factor():
    """Fractional (2+10ε) → rounded+repaired integral stays within a
    modest constant of OPT across seeds."""
    for seed in range(3):
        inst = union_of_forests(40, 30, 2, capacity=2, seed=seed)
        frac = fractional_for(inst)
        out = round_best_of(inst.graph, inst.capacities, frac, seed=seed)
        filled = greedy_fill(inst.graph, inst.capacities, out.edge_mask, seed=seed)
        opt = optimum_value(inst)
        assert int(filled.sum()) * 2 >= opt  # repair gives maximality ⇒ ½-approx


@given(st.integers(0, 2**31 - 1))
@settings(max_examples=15, deadline=None)
def test_property_rounding_feasible(seed):
    inst = union_of_forests(15, 12, 2, capacity=2, seed=seed)
    frac = fractional_for(inst)
    out = round_once(inst.graph, inst.capacities, frac, seed=seed)
    assert_feasible_integral(inst.graph, inst.capacities, out.edge_mask)
