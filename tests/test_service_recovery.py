"""Fault-injection: SIGKILL the service, restart, replay bit-identically.

The crash-recovery acceptance tests (DESIGN.md §14).  A real service
subprocess (``python -m repro.cli serve``) with checkpoint-on-commit
is killed with SIGKILL mid-stream — no atexit, no flush, the honest
crash — then restarted against the same store directory.  The
continued request stream must be **bit-identical** to an uninterrupted
run: same derived seeds (the cursor survives), same warm lineage
(exponents restored from the last committed snapshot), same edge
masks.  Restored sessions must pass certificate re-verification and
Definition-5 integral validation.  Torn snapshot files (truncated
JSON) and stale schema versions must be skipped with a cold fallback —
never a crash.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.graphs.capacities import validate_integral_allocation
from repro.graphs.generators import power_law_instance
from repro.graphs.io import save_instance
from repro.serve.service import ServiceClient
from repro.serve.shm import instance_hash
from repro.serve.snapshot import SnapshotStore, restore_session

_SRC = str(Path(__file__).resolve().parents[1] / "src")


@pytest.fixture()
def instance():
    return power_law_instance(n_left=60, n_right=24, seed=3)


@pytest.fixture()
def instance_file(tmp_path, instance):
    path = tmp_path / "instance.json"
    save_instance(instance, path)
    return path


def _start_service(store: Path, instance_file: Path) -> tuple[subprocess.Popen, str]:
    """Launch the real CLI service; block until its ready line."""
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--store-dir", str(store),
            "--instance", str(instance_file),
            "--checkpoint-every-solve",
            "--epsilon", "0.2", "--seed", "0",
        ],
        stdout=subprocess.PIPE,
        env=env,
        text=True,
    )
    ready = json.loads(proc.stdout.readline())
    assert ready["ready"] is True
    return proc, ready["socket"]


def _solve_n(socket_path: str, h: str, n: int, start: int = 0) -> list[dict]:
    """``n`` seedless requests (the seed cursor does the seeding) with
    rotating capacity patches — one slice of the canonical stream."""
    out = []
    with ServiceClient(socket_path) as client:
        for i in range(start, start + n):
            request = {}
            if i % 2 == 1:
                request = {"capacity_updates": {str(i % 24): 2}}
            response = client.solve(h, **request)
            assert response["ok"], response
            out.append(response)
    return out


def _mask_of(response: dict) -> list[int]:
    return response["report"]["edge_mask"]["true_edges"]


def _kill_hard(proc: subprocess.Popen) -> None:
    proc.send_signal(signal.SIGKILL)
    proc.wait(timeout=30)


def _shutdown(socket_path: str, proc: subprocess.Popen) -> None:
    with ServiceClient(socket_path) as client:
        client.shutdown()
    proc.wait(timeout=30)


def test_sigkill_restart_replay_bit_identical(tmp_path, instance, instance_file):
    h = instance_hash(instance)
    total, cut = 6, 3

    # Uninterrupted reference run.
    ref_store = tmp_path / "ref"
    proc, sock = _start_service(ref_store, instance_file)
    try:
        reference = _solve_n(sock, h, total)
    finally:
        _shutdown(sock, proc)

    # Interrupted run: SIGKILL mid-stream, restart on the same store.
    crash_store = tmp_path / "crash"
    proc, sock = _start_service(crash_store, instance_file)
    try:
        before = _solve_n(sock, h, cut)
    finally:
        _kill_hard(proc)
    proc, sock = _start_service(crash_store, instance_file)
    try:
        after = _solve_n(sock, h, total - cut, start=cut)
    finally:
        _shutdown(sock, proc)

    replayed = before + after
    # Bit-identical: same derived seeds, same warm lineage, same masks.
    assert [r["seed_used"] for r in replayed] == [r["seed_used"] for r in reference]
    for got, want in zip(replayed, reference):
        assert _mask_of(got) == _mask_of(want)
        assert got["warm_start"] == want["warm_start"]
    # The first post-restore solve rode the snapshot, not a cold start.
    assert after[0]["warm_start"] is True


def test_restored_session_passes_certificate_and_definition5(
    tmp_path, instance, instance_file
):
    h = instance_hash(instance)
    store = tmp_path / "store"
    proc, sock = _start_service(store, instance_file)
    try:
        _solve_n(sock, h, 2)
    finally:
        _kill_hard(proc)

    # Out-of-process check of the persisted state itself: restore with
    # certificate re-verification on, then validate a warm solve's
    # integral output against Definition 5.
    payload = SnapshotStore(store).latest(h)
    assert payload is not None
    restored = restore_session(payload, epsilon=0.2)
    assert restored.warm, restored.reason
    result = restored.session.solve(seed=123)
    assert result.meta["warm_start"] is True
    cert = result.mpc.certificate
    assert cert is not None and cert.satisfied
    validate_integral_allocation(
        instance.graph, instance.capacities, result.edge_mask
    )

    # And the service itself also warm-starts from it.
    proc, sock = _start_service(store, instance_file)
    try:
        response = _solve_n(sock, h, 1, start=2)[0]
        assert response["warm_start"] is True
    finally:
        _shutdown(sock, proc)


def test_torn_snapshot_skipped_with_fallback(tmp_path, instance, instance_file):
    h = instance_hash(instance)
    store = tmp_path / "store"
    proc, sock = _start_service(store, instance_file)
    try:
        _solve_n(sock, h, 2)
    finally:
        _kill_hard(proc)

    snapshots = sorted(store.glob(f"{h[:16]}-*.json"))
    assert len(snapshots) == 2
    # Tear the newest file mid-document (truncated write / bad copy).
    text = snapshots[-1].read_text()
    snapshots[-1].write_text(text[: len(text) // 2])

    proc, sock = _start_service(store, instance_file)
    try:
        # No crash; the previous snapshot serves, still warm.
        response = _solve_n(sock, h, 1, start=2)[0]
        assert response["warm_start"] is True
    finally:
        _shutdown(sock, proc)


def test_stale_schema_skipped_with_fallback(tmp_path, instance, instance_file):
    h = instance_hash(instance)
    store = tmp_path / "store"
    proc, sock = _start_service(store, instance_file)
    try:
        _solve_n(sock, h, 2)
    finally:
        _kill_hard(proc)

    snapshots = sorted(store.glob(f"{h[:16]}-*.json"))
    payload = json.loads(snapshots[-1].read_text())
    payload["schema"] = "repro.serve/SessionSnapshot/v999"
    snapshots[-1].write_text(json.dumps(payload))

    proc, sock = _start_service(store, instance_file)
    try:
        response = _solve_n(sock, h, 1, start=2)[0]
        assert response["warm_start"] is True
    finally:
        _shutdown(sock, proc)


def test_every_snapshot_invalid_falls_back_cold(tmp_path, instance, instance_file):
    h = instance_hash(instance)
    store = tmp_path / "store"
    proc, sock = _start_service(store, instance_file)
    try:
        _solve_n(sock, h, 1)
    finally:
        _kill_hard(proc)

    for path in store.glob(f"{h[:16]}-*.json"):
        path.write_text("{totally torn")

    proc, sock = _start_service(store, instance_file)
    try:
        # Cold fallback, never a crash: the pre-admitted instance
        # simply starts a fresh session.
        response = _solve_n(sock, h, 1)[0]
        assert response["warm_start"] is False
        # Its derived seed restarts at cursor 0 — matching a fresh
        # store, because no cursor survived.
        np.testing.assert_equal(response["ok"], True)
    finally:
        _shutdown(sock, proc)
