"""Tests for the LOCAL engine and the message-level Algorithm 1.

The headline check: the message-passing program and the vectorized
solver produce *identical* β trajectories (integer exponents) and
matching allocs on every instance tried.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.proportional import ProportionalRun
from repro.graphs import build_graph
from repro.graphs.generators import star_instance, union_of_forests
from repro.local.engine import LocalAlgorithm, LocalEngine
from repro.local.allocation_vertex import merged_neighbors, run_local_proportional


class EchoCounter(LocalAlgorithm):
    """Counts pings: each vertex pings all neighbours every round."""

    def setup(self, vertex, engine):
        return {"received": 0}

    def round(self, vertex, state, inbox, round_index, engine):
        state["received"] += len(inbox)
        return [(int(w), "ping") for w in engine.neighbors(vertex)]


class Rogue(LocalAlgorithm):
    """Tries to message a non-neighbour — must be rejected."""

    def setup(self, vertex, engine):
        return None

    def round(self, vertex, state, inbox, round_index, engine):
        return [((vertex + 2) % engine.n_vertices, "bad")] if vertex == 0 else []


def path_engine():
    g = build_graph(2, 2, [0, 1, 1], [0, 0, 1])
    return g, LocalEngine(g.n_vertices, merged_neighbors(g))


def test_messages_delivered_next_round():
    g, engine = path_engine()
    engine.attach(EchoCounter())
    engine.run_round()
    # Nothing received in round 0 (no prior sends).
    assert all(engine.state_of(v)["received"] == 0 for v in range(4))
    engine.run_round()
    # Every vertex now received one ping per neighbour.
    degs = [1, 2, 2, 1]  # merged: L0, L1, R0, R1
    got = [engine.state_of(v)["received"] for v in range(4)]
    assert sorted(got) == sorted(degs)


def test_stats_accounting():
    g, engine = path_engine()
    engine.attach(EchoCounter())
    engine.run(3)
    assert engine.stats.rounds == 3
    assert engine.stats.messages == 3 * 2 * g.n_edges
    assert engine.stats.max_messages_per_round == 2 * g.n_edges
    # Peak fan-in: every vertex messages each neighbour every round, so
    # the busiest inbox matches the maximum merged degree (2 here).
    assert engine.stats.max_inbox == 2


def test_local_violation_rejected():
    g = build_graph(3, 3, [0, 1, 2], [0, 1, 2])
    engine = LocalEngine(g.n_vertices, merged_neighbors(g))
    engine.attach(Rogue())
    with pytest.raises(ValueError, match="LOCAL violation"):
        engine.run_round()


def test_run_requires_attach():
    g, engine = path_engine()
    with pytest.raises(RuntimeError):
        engine.run_round()


def test_negative_rounds_rejected():
    g, engine = path_engine()
    engine.attach(EchoCounter())
    with pytest.raises(ValueError):
        engine.run(-1)


# ----------------------------------------------------------------------
# Message-level Algorithm 1 ≡ vectorized fast path
# ----------------------------------------------------------------------

@pytest.mark.parametrize("tau", [1, 3, 7])
def test_message_passing_matches_vectorized_star(tau):
    inst = star_instance(5, center_capacity=2)
    beta_msg, alloc_msg, _ = run_local_proportional(
        inst.graph, inst.capacities, 0.25, tau
    )
    run = ProportionalRun(inst.graph, inst.capacities, 0.25).run(tau)
    assert np.array_equal(beta_msg, run.beta_exp)
    assert np.allclose(alloc_msg, run.alloc, atol=1e-9)


@given(st.integers(0, 2**31 - 1), st.integers(1, 6))
@settings(max_examples=15, deadline=None)
def test_property_message_passing_equivalence(seed, tau):
    inst = union_of_forests(8, 6, 2, capacity=2, seed=seed)
    beta_msg, alloc_msg, engine = run_local_proportional(
        inst.graph, inst.capacities, 0.3, tau
    )
    run = ProportionalRun(inst.graph, inst.capacities, 0.3).run(tau)
    assert np.array_equal(beta_msg, run.beta_exp)
    assert np.allclose(alloc_msg, run.alloc, atol=1e-9)
    # Engine round count is exactly 2τ+1 (the documented correspondence).
    assert engine.stats.rounds == 2 * tau + 1


def test_run_local_proportional_validates_tau(small_star):
    with pytest.raises(ValueError):
        run_local_proportional(small_star.graph, small_star.capacities, 0.25, 0)
