"""Tests for the analysis package (metrics, theory fits, concentration)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.concentration import (
    ErrorQuantiles,
    collect_error_quantiles,
    lemma12_violation_rates,
)
from repro.analysis.metrics import (
    approximation_ratio,
    fractional_stats,
    integral_stats,
    plateau_round,
    utilization,
)
from repro.analysis.theory import (
    GROWTH_LAWS,
    fit_against_log,
    growth_exponent,
    linear_fit,
    shape_verdict,
)
from repro.core.fractional import FractionalAllocation
from repro.core.local_driver import solve_fractional_fixed_tau
from repro.core.sampled import SampledRun
from repro.graphs.generators import star_instance, union_of_forests


# ----------------------------------------------------------------------
# metrics
# ----------------------------------------------------------------------

def test_approximation_ratio_edges():
    assert approximation_ratio(0.0, 0.0) == 1.0
    assert approximation_ratio(5.0, 0.0) == float("inf")
    assert approximation_ratio(6.0, 3.0) == 2.0


def test_integral_stats(small_star):
    mask = np.zeros(small_star.graph.n_edges, dtype=bool)
    mask[:2] = True
    stats = integral_stats(small_star.graph, small_star.capacities, mask)
    assert stats.size == 2
    assert 0 < stats.left_utilization < 1
    assert stats.right_utilization == pytest.approx(2 / 3)


def test_integral_stats_rejects_infeasible(small_star):
    mask = np.ones(small_star.graph.n_edges, dtype=bool)
    with pytest.raises(ValueError):
        integral_stats(small_star.graph, small_star.capacities, mask)


def test_fractional_stats(medium_forest_instance):
    inst = medium_forest_instance
    res = solve_fractional_fixed_tau(inst, 0.25)
    stats = fractional_stats(inst.graph, inst.capacities, res.allocation)
    assert stats.weight == pytest.approx(res.match_weight, abs=1e-6)
    assert stats.support_size > 0
    assert stats.entropy > 0  # proportional dynamics spread mass


def test_utilization():
    u = utilization(np.array([2, 4]), np.array([1.0, 4.0]))
    assert u.tolist() == [0.5, 1.0]


def test_plateau_round():
    assert plateau_round([1.0, 2.0, 3.0, 3.0, 3.0]) == 3
    assert plateau_round([5.0]) == 1
    with pytest.raises(ValueError):
        plateau_round([])


# ----------------------------------------------------------------------
# theory fits
# ----------------------------------------------------------------------

def test_linear_fit_exact_line():
    fit = linear_fit([0, 1, 2, 3], [1, 3, 5, 7])
    assert fit.slope == pytest.approx(2.0)
    assert fit.intercept == pytest.approx(1.0)
    assert fit.r_squared == pytest.approx(1.0)
    assert fit.predict(4) == pytest.approx(9.0)


def test_linear_fit_validation():
    with pytest.raises(ValueError):
        linear_fit([1], [2])


def test_fit_against_log_recovers_log_series():
    lams = [2, 4, 8, 16, 32]
    rounds = [3.0 * np.log2(l) + 1 for l in lams]
    fit = fit_against_log(lams, rounds)
    assert fit.slope == pytest.approx(3.0)
    assert fit.r_squared > 0.999


def test_growth_exponent():
    ns = [100, 200, 400, 800]
    assert growth_exponent(ns, [5, 5, 5, 5]) == pytest.approx(0.0, abs=1e-9)
    assert growth_exponent(ns, ns) == pytest.approx(1.0)
    assert growth_exponent(ns, [np.sqrt(n) for n in ns]) == pytest.approx(0.5)


def test_shape_verdict_identifies_log():
    lams = [2.0, 4, 8, 16, 32, 64]
    measurements = [np.log2(l) * 2.5 for l in lams]
    verdict = shape_verdict(lams, measurements)
    assert set(verdict) == set(GROWTH_LAWS)
    assert max(verdict, key=verdict.get) == "log"


def test_shape_verdict_identifies_linear():
    xs = [2.0, 4, 8, 16, 32]
    verdict = shape_verdict(xs, [3 * x for x in xs])
    assert max(verdict, key=verdict.get) == "linear"


def test_shape_verdict_validation():
    with pytest.raises(ValueError):
        shape_verdict([1.0], [1.0])


# ----------------------------------------------------------------------
# concentration
# ----------------------------------------------------------------------

def _sampled_run(budget):
    inst = union_of_forests(20, 16, 3, capacity=2, seed=2)
    run = SampledRun(
        inst.graph, inst.capacities, 0.25, block=2, sample_budget=budget,
        sampler="fast", seed=0,
    )
    run.run_rounds(6)
    return run


def test_error_quantiles_ordering():
    run = _sampled_run(budget=4)
    beta_q, alloc_q = collect_error_quantiles(run.phase_reports)
    for q in (beta_q, alloc_q):
        assert 0 <= q.median <= q.q90 <= q.q99 <= q.maximum
        assert q.n_samples > 0


def test_error_quantiles_empty():
    q = ErrorQuantiles.from_errors(np.empty(0))
    assert q.maximum == 0.0 and q.n_samples == 0


def test_violation_rates_zero_at_full_budget():
    run = _sampled_run(budget=10**6)
    beta_v, alloc_v = lemma12_violation_rates(run)
    assert beta_v == 0.0 and alloc_v == 0.0


def test_violation_rates_bounded():
    run = _sampled_run(budget=2)
    beta_v, alloc_v = lemma12_violation_rates(run)
    assert 0.0 <= beta_v <= 1.0
    assert 0.0 <= alloc_v <= 1.0
