"""Backend parity: reference and optimized kernels are bit-identical.

The kernel-layer contract (DESIGN.md §6) is that backends may differ
in caching and buffer reuse but never in arithmetic: every primitive
performs the same floating-point operations in the same order, so
whole trajectories — Algorithm 1/3, the sampled Algorithm 2 and the
b-matching dynamics — must agree to the last bit.  These tests assert
exact equality (``np.array_equal``, no tolerances).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bmatching.problem import BMatchingInstance
from repro.bmatching.proportional import proportional_bmatching
from repro.core.proportional import ProportionalRun
from repro.core.sampled import SampledRun
from repro.graphs.bipartite import build_graph
from repro.graphs.generators import union_of_forests
from repro.kernels import (
    OptimizedBackend,
    ReferenceBackend,
    available_backends,
    get_backend,
    proportional_round,
    set_backend,
    use_backend,
    workspace_for,
)

REF = ReferenceBackend()
OPT = OptimizedBackend()


def random_graph(n_left, n_right, m, seed):
    """Random simple bipartite graph; may leave vertices isolated."""
    rng = np.random.default_rng(seed)
    if n_left == 0 or n_right == 0 or m == 0:
        return build_graph(n_left, n_right, [], [])
    pairs = {
        (int(rng.integers(n_left)), int(rng.integers(n_right))) for _ in range(m)
    }
    eu, ev = zip(*sorted(pairs))
    return build_graph(n_left, n_right, eu, ev)


GRAPH_CASES = [
    # (n_left, n_right, m, seed) — includes degree-0 vertices on both
    # sides (random sampling leaves isolates), a single-edge graph and
    # the empty graph.
    (1, 1, 1, 0),
    (5, 3, 0, 0),
    (6, 4, 7, 1),
    (30, 20, 55, 2),
    (100, 80, 300, 3),
    (200, 150, 700, 4),
]


# ----------------------------------------------------------------------
# Primitive-level parity
# ----------------------------------------------------------------------
@pytest.mark.parametrize("case", GRAPH_CASES)
def test_segment_primitives_bit_identical(case):
    g = random_graph(*case)
    rng = np.random.default_rng(42)
    per_slot = rng.random(g.n_edges)
    for indptr, layout in (
        (g.left_indptr, g.left_layout),
        (g.right_indptr, g.right_layout),
    ):
        s_ref = REF.segment_sum(per_slot, indptr)
        s_opt = OPT.segment_sum(per_slot, indptr, layout=layout)
        assert np.array_equal(s_ref, s_opt) and s_ref.dtype == s_opt.dtype
        m_ref = REF.segment_max(per_slot, indptr, -1.0)
        m_opt = OPT.segment_max(per_slot, indptr, -1.0, layout=layout)
        assert np.array_equal(m_ref, m_opt) and m_ref.dtype == m_opt.dtype


@pytest.mark.parametrize("case", GRAPH_CASES)
def test_softmax_and_expand_bit_identical(case):
    g = random_graph(*case)
    rng = np.random.default_rng(7)
    exponents = rng.integers(-40, 40, size=g.n_edges)
    scale = float(np.log1p(0.125))
    ref = REF.segment_softmax_shifted(exponents, g.left_indptr, scale)
    opt = OPT.segment_softmax_shifted(
        exponents, g.left_indptr, scale, layout=g.left_layout
    )
    assert np.array_equal(ref, opt)
    per_row = rng.random(g.n_left)
    assert np.array_equal(
        REF.expand_rows(per_row, g.left_indptr),
        OPT.expand_rows(per_row, g.left_indptr, layout=g.left_layout),
    )


def test_softmax_does_not_mutate_input_by_default():
    g = random_graph(30, 20, 55, 2)
    e = np.random.default_rng(0).random(g.n_edges)
    before = e.copy()
    OPT.segment_softmax_shifted(e, g.left_indptr, 0.1, layout=g.left_layout)
    assert np.array_equal(e, before)


def test_scatter_add_matches_bincount_and_add_at():
    rng = np.random.default_rng(3)
    idx = rng.integers(0, 17, size=400)
    w = rng.random(400)
    expected = np.zeros(17)
    np.add.at(expected, idx, w)
    for be in (REF, OPT):
        assert np.array_equal(be.scatter_add(idx, weights=w, minlength=17), expected)
        assert np.array_equal(
            be.scatter_add(idx, minlength=17), np.bincount(idx, minlength=17)
        )


def test_gather_as_float_exact():
    g = random_graph(30, 20, 55, 5)
    ws = workspace_for(g)
    beta = np.random.default_rng(1).integers(-1000, 1000, size=g.n_right)
    ref = REF.gather_as_float(beta, g.left_adj)
    opt = OPT.gather_as_float(beta, g.left_adj, row_buf=ws.beta_f64)
    assert ref.dtype == np.float64 and opt.dtype == np.float64
    assert np.array_equal(ref, opt)


# ----------------------------------------------------------------------
# Trajectory-level parity
# ----------------------------------------------------------------------
def _proportional_trajectory(graph, caps, epsilon, rounds, backend):
    with use_backend(backend):
        run = ProportionalRun(graph, caps, epsilon)
        states = []
        for _ in range(rounds):
            run.step()
            states.append(
                (run.beta_exp.copy(), run.x_slots.copy(), run.alloc.copy())
            )
        return states


@pytest.mark.parametrize("case", GRAPH_CASES)
def test_proportional_run_trajectories_bit_identical(case):
    g = random_graph(*case)
    caps = np.ones(g.n_right, dtype=np.int64)
    ref = _proportional_trajectory(g, caps, 0.1, 12, "reference")
    opt = _proportional_trajectory(g, caps, 0.1, 12, "optimized")
    for (b_r, x_r, a_r), (b_o, x_o, a_o) in zip(ref, opt):
        assert np.array_equal(b_r, b_o)
        assert np.array_equal(x_r, x_o)
        assert np.array_equal(a_r, a_o)


def _sampled_trajectory(graph, caps, backend):
    with use_backend(backend):
        run = SampledRun(
            graph, caps, 0.2, block=3, sample_budget=4, sampler="keyed", seed=11
        )
        run.run_rounds(9)
        return run.beta_exp.copy(), run.x_slots.copy(), run.alloc.copy()


@pytest.mark.parametrize("case", GRAPH_CASES[2:])
def test_sampled_run_trajectories_bit_identical(case):
    g = random_graph(*case)
    caps = np.full(g.n_right, 2, dtype=np.int64)
    b_r, x_r, a_r = _sampled_trajectory(g, caps, "reference")
    b_o, x_o, a_o = _sampled_trajectory(g, caps, "optimized")
    assert np.array_equal(b_r, b_o)
    assert np.array_equal(x_r, x_o)
    assert np.array_equal(a_r, a_o)


@pytest.mark.parametrize("case", GRAPH_CASES[2:])
def test_bmatching_trajectories_bit_identical(case):
    g = random_graph(*case)
    rng = np.random.default_rng(9)
    instance = BMatchingInstance(
        graph=g,
        b_left=rng.integers(1, 4, size=g.n_left),
        b_right=rng.integers(1, 5, size=g.n_right),
    )
    with use_backend("reference"):
        ref = proportional_bmatching(instance, 0.125, 10)
    with use_backend("optimized"):
        opt = proportional_bmatching(instance, 0.125, 10)
    assert np.array_equal(ref.x, opt.x)
    assert ref.weight == opt.weight


def test_round_kernel_with_units_bit_identical():
    g = random_graph(40, 30, 90, 6)
    ws = workspace_for(g)
    beta = np.random.default_rng(2).integers(-5, 5, size=g.n_right)
    units = np.random.default_rng(3).integers(1, 4, size=g.n_left).astype(np.float64)
    x_ref, a_ref = proportional_round(ws, beta, 0.1, left_units=units, backend=REF)
    x_opt, a_opt = proportional_round(ws, beta, 0.1, left_units=units, backend=OPT)
    assert np.array_equal(x_ref, x_opt)
    assert np.array_equal(a_ref, a_opt)


# ----------------------------------------------------------------------
# Registry / workspace mechanics
# ----------------------------------------------------------------------
def test_backend_registry_and_context_manager():
    assert {"reference", "optimized"} <= set(available_backends())
    before = get_backend()
    with use_backend("reference") as be:
        assert be.name == "reference"
        assert get_backend() is be
    assert get_backend().name == before.name
    with pytest.raises(ValueError):
        set_backend("no-such-backend")


def test_workspace_is_cached_per_graph():
    g = random_graph(10, 8, 20, 12)
    ws1 = workspace_for(g)
    ws2 = workspace_for(g)
    assert ws1 is ws2
    assert ws1.left is g.left_layout and ws1.right is g.right_layout


def test_slot_owner_matches_repeat():
    g = random_graph(25, 18, 60, 13)
    assert np.array_equal(
        g.left_slot_owner,
        np.repeat(np.arange(g.n_left), g.left_degrees),
    )
    assert np.array_equal(
        g.right_slot_owner,
        np.repeat(np.arange(g.n_right), g.right_degrees),
    )


def test_compute_x_alloc_rejects_foreign_workspace():
    from repro.core.proportional import compute_x_alloc

    a = random_graph(10, 8, 20, 15)
    b = random_graph(12, 9, 25, 16)
    beta = np.zeros(a.n_right, dtype=np.int64)
    with pytest.raises(ValueError, match="different graph"):
        compute_x_alloc(a, beta, 0.1, workspace=workspace_for(b))


def test_concurrent_solves_on_one_graph_match_serial():
    """Workspace scratch is thread-local: concurrent runs on one graph
    must not corrupt each other — including the pool pattern where all
    runs are *constructed* on the main thread (capturing the same
    cached workspace) and only *stepped* on worker threads."""
    import threading

    g = random_graph(150, 120, 500, 17)
    caps = np.full(g.n_right, 2, dtype=np.int64)
    serial = ProportionalRun(g, caps, 0.1).run(15).beta_exp.copy()

    runs = [ProportionalRun(g, caps, 0.1) for _ in range(4)]
    assert len({id(r.workspace) for r in runs}) == 1  # all share one workspace
    threads = [threading.Thread(target=r.run, args=(15,)) for r in runs]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert all(np.array_equal(serial, r.beta_exp) for r in runs)


def test_workspace_reuse_across_runs_is_bit_identical():
    """Two consecutive runs sharing one workspace must not interfere —
    the scratch buffers carry no state between rounds."""
    g = random_graph(50, 40, 130, 14)
    caps = np.ones(g.n_right, dtype=np.int64)
    with use_backend("optimized"):
        first = ProportionalRun(g, caps, 0.1).run(8)
        second = ProportionalRun(g, caps, 0.1).run(8)
    assert np.array_equal(first.beta_exp, second.beta_exp)
    assert np.array_equal(first.x_slots, second.x_slots)
