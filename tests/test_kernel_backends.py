"""Backend parity across the three registered kernel backends.

The kernel-layer contract (DESIGN.md §6/§11) has two tiers:

* the numpy backends (``reference``/``optimized``) may differ in
  caching and buffer reuse but never in arithmetic — every primitive
  performs the same floating-point operations in the same order, so
  whole trajectories (Algorithm 1/3, the sampled Algorithm 2, the
  b-matching dynamics) must agree to the last bit
  (``np.array_equal``, no tolerances);
* the fused C ``native`` backend is bit-identical for
  order-independent primitives (scatter, max, the exp-table weights)
  and for the integer β dynamics, but folds row sums sequentially
  where numpy's ``reduceat`` uses SIMD/pairwise partial sums — those
  agree to a few ulps, the documented tolerance tier.

The native tests skip (with the probed reason) on hosts without a C
compiler — the graceful-degradation contract.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.bmatching.problem import BMatchingInstance
from repro.bmatching.proportional import proportional_bmatching
from repro.core.proportional import ProportionalRun
from repro.core.sampled import SampledRun
from repro.graphs.bipartite import build_graph
from repro.graphs.generators import union_of_forests
from repro.kernels import (
    OptimizedBackend,
    ReferenceBackend,
    available_backends,
    backend_availability,
    get_backend,
    proportional_round,
    set_backend,
    use_backend,
    workspace_for,
)
from repro.kernels.native import native_available

REF = ReferenceBackend()
OPT = OptimizedBackend()

needs_native = pytest.mark.skipif(
    not native_available(),
    reason=f"native backend unavailable: {backend_availability('native').get('native')}",
)

# ulp-level agreement for the native backend's sequentially-folded row
# sums (weights in (0,1], denominators in [1, deg] — a handful of ulps)
TOL = dict(rtol=1e-12, atol=1e-14)


def NAT():
    from repro.kernels.native import NativeBackend

    return NativeBackend()


def random_graph(n_left, n_right, m, seed):
    """Random simple bipartite graph; may leave vertices isolated."""
    rng = np.random.default_rng(seed)
    if n_left == 0 or n_right == 0 or m == 0:
        return build_graph(n_left, n_right, [], [])
    pairs = {
        (int(rng.integers(n_left)), int(rng.integers(n_right))) for _ in range(m)
    }
    eu, ev = zip(*sorted(pairs))
    return build_graph(n_left, n_right, eu, ev)


GRAPH_CASES = [
    # (n_left, n_right, m, seed) — includes degree-0 vertices on both
    # sides (random sampling leaves isolates), a single-edge graph and
    # the empty graph.
    (1, 1, 1, 0),
    (5, 3, 0, 0),
    (6, 4, 7, 1),
    (30, 20, 55, 2),
    (100, 80, 300, 3),
    (200, 150, 700, 4),
]


# ----------------------------------------------------------------------
# Primitive-level parity
# ----------------------------------------------------------------------
@pytest.mark.parametrize("case", GRAPH_CASES)
def test_segment_primitives_bit_identical(case):
    g = random_graph(*case)
    rng = np.random.default_rng(42)
    per_slot = rng.random(g.n_edges)
    for indptr, layout in (
        (g.left_indptr, g.left_layout),
        (g.right_indptr, g.right_layout),
    ):
        s_ref = REF.segment_sum(per_slot, indptr)
        s_opt = OPT.segment_sum(per_slot, indptr, layout=layout)
        assert np.array_equal(s_ref, s_opt) and s_ref.dtype == s_opt.dtype
        m_ref = REF.segment_max(per_slot, indptr, -1.0)
        m_opt = OPT.segment_max(per_slot, indptr, -1.0, layout=layout)
        assert np.array_equal(m_ref, m_opt) and m_ref.dtype == m_opt.dtype


@pytest.mark.parametrize("case", GRAPH_CASES)
def test_softmax_and_expand_bit_identical(case):
    g = random_graph(*case)
    rng = np.random.default_rng(7)
    exponents = rng.integers(-40, 40, size=g.n_edges)
    scale = float(np.log1p(0.125))
    ref = REF.segment_softmax_shifted(exponents, g.left_indptr, scale)
    opt = OPT.segment_softmax_shifted(
        exponents, g.left_indptr, scale, layout=g.left_layout
    )
    assert np.array_equal(ref, opt)
    per_row = rng.random(g.n_left)
    assert np.array_equal(
        REF.expand_rows(per_row, g.left_indptr),
        OPT.expand_rows(per_row, g.left_indptr, layout=g.left_layout),
    )


def test_softmax_does_not_mutate_input_by_default():
    g = random_graph(30, 20, 55, 2)
    e = np.random.default_rng(0).random(g.n_edges)
    before = e.copy()
    OPT.segment_softmax_shifted(e, g.left_indptr, 0.1, layout=g.left_layout)
    assert np.array_equal(e, before)


def test_scatter_add_matches_bincount_and_add_at():
    rng = np.random.default_rng(3)
    idx = rng.integers(0, 17, size=400)
    w = rng.random(400)
    expected = np.zeros(17)
    np.add.at(expected, idx, w)
    for be in (REF, OPT):
        assert np.array_equal(be.scatter_add(idx, weights=w, minlength=17), expected)
        assert np.array_equal(
            be.scatter_add(idx, minlength=17), np.bincount(idx, minlength=17)
        )


def test_gather_as_float_exact():
    g = random_graph(30, 20, 55, 5)
    ws = workspace_for(g)
    beta = np.random.default_rng(1).integers(-1000, 1000, size=g.n_right)
    ref = REF.gather_as_float(beta, g.left_adj)
    opt = OPT.gather_as_float(beta, g.left_adj, row_buf=ws.beta_f64)
    assert ref.dtype == np.float64 and opt.dtype == np.float64
    assert np.array_equal(ref, opt)


# ----------------------------------------------------------------------
# Trajectory-level parity
# ----------------------------------------------------------------------
def _proportional_trajectory(graph, caps, epsilon, rounds, backend):
    with use_backend(backend):
        run = ProportionalRun(graph, caps, epsilon)
        states = []
        for _ in range(rounds):
            run.step()
            states.append(
                (run.beta_exp.copy(), run.x_slots.copy(), run.alloc.copy())
            )
        return states


@pytest.mark.parametrize("case", GRAPH_CASES)
def test_proportional_run_trajectories_bit_identical(case):
    g = random_graph(*case)
    caps = np.ones(g.n_right, dtype=np.int64)
    ref = _proportional_trajectory(g, caps, 0.1, 12, "reference")
    opt = _proportional_trajectory(g, caps, 0.1, 12, "optimized")
    for (b_r, x_r, a_r), (b_o, x_o, a_o) in zip(ref, opt):
        assert np.array_equal(b_r, b_o)
        assert np.array_equal(x_r, x_o)
        assert np.array_equal(a_r, a_o)


def _sampled_trajectory(graph, caps, backend):
    with use_backend(backend):
        run = SampledRun(
            graph, caps, 0.2, block=3, sample_budget=4, sampler="keyed", seed=11
        )
        run.run_rounds(9)
        return run.beta_exp.copy(), run.x_slots.copy(), run.alloc.copy()


@pytest.mark.parametrize("case", GRAPH_CASES[2:])
def test_sampled_run_trajectories_bit_identical(case):
    g = random_graph(*case)
    caps = np.full(g.n_right, 2, dtype=np.int64)
    b_r, x_r, a_r = _sampled_trajectory(g, caps, "reference")
    b_o, x_o, a_o = _sampled_trajectory(g, caps, "optimized")
    assert np.array_equal(b_r, b_o)
    assert np.array_equal(x_r, x_o)
    assert np.array_equal(a_r, a_o)


@pytest.mark.parametrize("case", GRAPH_CASES[2:])
def test_bmatching_trajectories_bit_identical(case):
    g = random_graph(*case)
    rng = np.random.default_rng(9)
    instance = BMatchingInstance(
        graph=g,
        b_left=rng.integers(1, 4, size=g.n_left),
        b_right=rng.integers(1, 5, size=g.n_right),
    )
    with use_backend("reference"):
        ref = proportional_bmatching(instance, 0.125, 10)
    with use_backend("optimized"):
        opt = proportional_bmatching(instance, 0.125, 10)
    assert np.array_equal(ref.x, opt.x)
    assert ref.weight == opt.weight


def test_round_kernel_with_units_bit_identical():
    g = random_graph(40, 30, 90, 6)
    ws = workspace_for(g)
    beta = np.random.default_rng(2).integers(-5, 5, size=g.n_right)
    units = np.random.default_rng(3).integers(1, 4, size=g.n_left).astype(np.float64)
    x_ref, a_ref = proportional_round(ws, beta, 0.1, left_units=units, backend=REF)
    x_opt, a_opt = proportional_round(ws, beta, 0.1, left_units=units, backend=OPT)
    assert np.array_equal(x_ref, x_opt)
    assert np.array_equal(a_ref, a_opt)


# ----------------------------------------------------------------------
# Registry / workspace mechanics
# ----------------------------------------------------------------------
def test_backend_registry_and_context_manager():
    assert {"reference", "optimized"} <= set(available_backends())
    before = get_backend()
    with use_backend("reference") as be:
        assert be.name == "reference"
        assert get_backend() is be
    assert get_backend().name == before.name
    with pytest.raises(ValueError):
        set_backend("no-such-backend")


# ----------------------------------------------------------------------
# AutoBackend: size-dispatching between optimized and native
# ----------------------------------------------------------------------
class _RecordingNative:
    """Stand-in native delegate that records and defers to reference."""

    def __init__(self):
        self.calls = 0

    def proportional_round(self, workspace, beta_exp, scale, *, left_units=None):
        self.calls += 1
        return REF.proportional_round(
            workspace, beta_exp, scale, left_units=left_units
        )


def _auto_case(n_left=40, n_right=30, m=90, seed=6):
    g = random_graph(n_left, n_right, m, seed)
    ws = workspace_for(g)
    beta = np.random.default_rng(2).integers(-5, 5, size=g.n_right)
    return ws, beta


def test_auto_backend_registered():
    from repro.kernels import AutoBackend

    assert "auto" in available_backends()
    with use_backend("auto") as be:
        assert isinstance(be, AutoBackend)
        assert be.native_min_edges == AutoBackend.AUTO_NATIVE_MIN_EDGES


def test_auto_dispatches_on_edge_count_threshold():
    from repro.kernels import AutoBackend

    ws, beta = _auto_case()
    # Below the crossover the delegate must not be touched.
    auto = AutoBackend(native_min_edges=ws.n_edges + 1)
    fake = _RecordingNative()
    auto._native, auto._native_checked = fake, True
    x_small, a_small = auto.proportional_round(ws, beta, 0.1)
    assert fake.calls == 0
    x_opt, a_opt = OPT.proportional_round(ws, beta, 0.1)
    assert np.array_equal(x_small, x_opt) and np.array_equal(a_small, a_opt)
    # At/above the crossover every fused round goes to the delegate.
    auto = AutoBackend(native_min_edges=ws.n_edges)
    fake = _RecordingNative()
    auto._native, auto._native_checked = fake, True
    auto.proportional_round(ws, beta, 0.1)
    auto.proportional_round(ws, beta, 0.1)
    assert fake.calls == 2


def test_auto_degrades_to_optimized_when_native_unusable(monkeypatch):
    import repro.kernels.native as native_pkg
    from repro.kernels import AutoBackend

    # The delegate probe imports lazily from the package namespace, so
    # patching the re-export is what a compiler-less host looks like.
    monkeypatch.setattr(
        native_pkg, "native_availability", lambda: (False, "no C compiler")
    )
    ws, beta = _auto_case()
    auto = AutoBackend(native_min_edges=1)  # everything is "large"
    x_auto, a_auto = auto.proportional_round(ws, beta, 0.1)
    assert auto._native is None  # probe ran, found nothing, no raise
    x_opt, a_opt = OPT.proportional_round(ws, beta, 0.1)
    assert np.array_equal(x_auto, x_opt) and np.array_equal(a_auto, a_opt)


def test_auto_unfused_primitives_are_exactly_optimized():
    from repro.kernels import AutoBackend

    g = random_graph(30, 20, 55, 2)
    rng = np.random.default_rng(42)
    per_slot = rng.random(g.n_edges)
    auto = AutoBackend()
    assert np.array_equal(
        auto.segment_sum(per_slot, g.right_indptr),
        OPT.segment_sum(per_slot, g.right_indptr),
    )
    assert np.array_equal(
        auto.segment_max(per_slot, g.right_indptr, -1.0),
        OPT.segment_max(per_slot, g.right_indptr, -1.0),
    )


@needs_native
def test_auto_above_crossover_matches_native():
    ws, beta = _auto_case()
    from repro.kernels import AutoBackend

    auto = AutoBackend(native_min_edges=1)
    x_auto, a_auto = auto.proportional_round(ws, beta, 0.1)
    x_nat, a_nat = NAT().proportional_round(ws, beta, 0.1)
    assert np.array_equal(x_auto, x_nat) and np.array_equal(a_auto, a_nat)


def test_workspace_is_cached_per_graph():
    g = random_graph(10, 8, 20, 12)
    ws1 = workspace_for(g)
    ws2 = workspace_for(g)
    assert ws1 is ws2
    assert ws1.left is g.left_layout and ws1.right is g.right_layout


def test_slot_owner_matches_repeat():
    g = random_graph(25, 18, 60, 13)
    assert np.array_equal(
        g.left_slot_owner,
        np.repeat(np.arange(g.n_left), g.left_degrees),
    )
    assert np.array_equal(
        g.right_slot_owner,
        np.repeat(np.arange(g.n_right), g.right_degrees),
    )


def test_compute_x_alloc_rejects_foreign_workspace():
    from repro.core.proportional import compute_x_alloc

    a = random_graph(10, 8, 20, 15)
    b = random_graph(12, 9, 25, 16)
    beta = np.zeros(a.n_right, dtype=np.int64)
    with pytest.raises(ValueError, match="different graph"):
        compute_x_alloc(a, beta, 0.1, workspace=workspace_for(b))


def test_concurrent_solves_on_one_graph_match_serial():
    """Workspace scratch is thread-local: concurrent runs on one graph
    must not corrupt each other — including the pool pattern where all
    runs are *constructed* on the main thread (capturing the same
    cached workspace) and only *stepped* on worker threads."""
    import threading

    g = random_graph(150, 120, 500, 17)
    caps = np.full(g.n_right, 2, dtype=np.int64)
    serial = ProportionalRun(g, caps, 0.1).run(15).beta_exp.copy()

    runs = [ProportionalRun(g, caps, 0.1) for _ in range(4)]
    assert len({id(r.workspace) for r in runs}) == 1  # all share one workspace
    threads = [threading.Thread(target=r.run, args=(15,)) for r in runs]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert all(np.array_equal(serial, r.beta_exp) for r in runs)


def test_workspace_reuse_across_runs_is_bit_identical():
    """Two consecutive runs sharing one workspace must not interfere —
    the scratch buffers carry no state between rounds."""
    g = random_graph(50, 40, 130, 14)
    caps = np.ones(g.n_right, dtype=np.int64)
    with use_backend("optimized"):
        first = ProportionalRun(g, caps, 0.1).run(8)
        second = ProportionalRun(g, caps, 0.1).run(8)
    assert np.array_equal(first.beta_exp, second.beta_exp)
    assert np.array_equal(first.x_slots, second.x_slots)


def test_batch_adopts_workspaces_across_equal_graph_copies():
    """solve_allocation_many structurally shares layouts across
    equal-but-distinct graph objects (the deserialized-request serving
    shape), with results bit-identical to per-instance solves."""
    from repro.core.pipeline import solve_allocation, solve_allocation_many
    from repro.utils.rng import spawn

    def fresh():
        return [
            union_of_forests(60, 50, 3, capacity=2 + (i % 2), seed=5)
            for i in range(4)
        ]

    batch = fresh()
    batched = solve_allocation_many(batch, 0.2, seed=3, boost=False)
    g0 = batch[0].graph
    assert all(inst.graph.left_layout is g0.left_layout for inst in batch[1:])
    assert all(inst.graph.right_layout is g0.right_layout for inst in batch[1:])

    solo = [
        solve_allocation(inst, 0.2, seed=s, boost=False)
        for inst, s in zip(fresh(), spawn(3, 4))
    ]
    for a, b in zip(batched, solo):
        assert np.array_equal(a.edge_mask, b.edge_mask)
        assert a.size == b.size


def test_batch_does_not_adopt_across_different_structures():
    """Same vertex/edge counts but different CSR content must not
    share layouts — the signature only gates the attempt, equality of
    ``indptr`` decides adoption."""
    from repro.core.pipeline import solve_allocation_many

    a = union_of_forests(60, 50, 3, capacity=2, seed=5)
    b = union_of_forests(60, 50, 3, capacity=2, seed=6)
    solve_allocation_many([a, b], 0.2, seed=0, boost=False)
    if a.graph.n_edges == b.graph.n_edges:  # same signature bucket
        assert a.graph.left_layout is not b.graph.left_layout


# ----------------------------------------------------------------------
# Native backend: the two-tier parity contract (DESIGN.md §11)
# ----------------------------------------------------------------------
DEGENERATE_GRAPHS = [
    # zero-edge instance with vertices on both sides
    lambda: build_graph(5, 3, [], []),
    # empty rows on both CSR sides around two edges
    lambda: build_graph(6, 4, [0, 5], [1, 2]),
    # single-slot segments: every left row has exactly one edge
    lambda: build_graph(4, 4, [0, 1, 2, 3], [1, 0, 3, 2]),
    # single right hub: one segment absorbing every slot
    lambda: build_graph(5, 1, [0, 1, 2, 3, 4], [0, 0, 0, 0, 0]),
]


@needs_native
@pytest.mark.parametrize("case", GRAPH_CASES)
def test_native_order_independent_primitives_bit_identical(case):
    g = random_graph(*case)
    nat = NAT()
    rng = np.random.default_rng(21)
    per_slot = rng.random(g.n_edges)
    for indptr, layout in (
        (g.left_indptr, g.left_layout),
        (g.right_indptr, g.right_layout),
    ):
        assert np.array_equal(
            REF.segment_max(per_slot, indptr, -1.0),
            nat.segment_max(per_slot, indptr, -1.0, layout=layout),
        )
    idx = rng.integers(0, max(g.n_right, 1), size=200)
    w = rng.random(200)
    assert np.array_equal(
        REF.scatter_add(idx, weights=w, minlength=g.n_right + 3),
        nat.scatter_add(idx, weights=w, minlength=g.n_right + 3),
    )
    # counting scatter has no weights: the C path is float64-only, the
    # fallback must stay bincount's int64
    assert np.array_equal(
        REF.scatter_add(idx, minlength=g.n_right + 3),
        nat.scatter_add(idx, minlength=g.n_right + 3),
    )


@needs_native
@pytest.mark.parametrize("case", GRAPH_CASES)
def test_native_row_sums_and_softmax_tolerance_tier(case):
    g = random_graph(*case)
    nat = NAT()
    rng = np.random.default_rng(22)
    per_slot = rng.random(g.n_edges)
    for indptr, layout in (
        (g.left_indptr, g.left_layout),
        (g.right_indptr, g.right_layout),
    ):
        np.testing.assert_allclose(
            nat.segment_sum(per_slot, indptr, layout=layout),
            REF.segment_sum(per_slot, indptr),
            **TOL,
        )
    exponents = rng.integers(-40, 40, size=g.n_edges)
    scale = float(np.log1p(0.125))
    sm = nat.segment_softmax_shifted(
        exponents, g.left_indptr, scale, layout=g.left_layout
    )
    np.testing.assert_allclose(
        sm, REF.segment_softmax_shifted(exponents, g.left_indptr, scale), **TOL
    )
    # rows with slots must still normalize to exactly ~1
    if g.n_edges:
        sums = nat.segment_sum(sm, g.left_indptr, layout=g.left_layout)
        np.testing.assert_allclose(sums[g.left_layout.nonempty], 1.0, **TOL)


@needs_native
@pytest.mark.parametrize("case", GRAPH_CASES)
def test_native_trajectories_beta_identical_values_tolerance(case):
    """The integer β dynamics must be *exactly* the reference's every
    round — thresholds never flip on an ulp — while x/alloc sit in the
    tolerance tier."""
    g = random_graph(*case)
    caps = np.ones(g.n_right, dtype=np.int64)
    ref = _proportional_trajectory(g, caps, 0.1, 12, "reference")
    nat = _proportional_trajectory(g, caps, 0.1, 12, "native")
    for (b_r, x_r, a_r), (b_n, x_n, a_n) in zip(ref, nat):
        assert np.array_equal(b_r, b_n)
        np.testing.assert_allclose(x_n, x_r, **TOL)
        np.testing.assert_allclose(a_n, a_r, **TOL)


@needs_native
@pytest.mark.parametrize("make_graph", DEGENERATE_GRAPHS)
def test_native_degenerate_csr_shapes(make_graph):
    g = make_graph()
    nat = NAT()
    ws = workspace_for(g)
    beta = np.random.default_rng(4).integers(-6, 6, size=g.n_right)
    x_ref, a_ref = proportional_round(ws, beta, 0.1, backend=REF)
    x_nat, a_nat = proportional_round(ws, beta, 0.1, backend=nat)
    np.testing.assert_allclose(x_nat, x_ref, **TOL)
    np.testing.assert_allclose(a_nat, a_ref, **TOL)
    # single-slot rows are exact: weight 1/1, no sum ordering involved
    if g.n_edges and np.all(np.diff(g.left_indptr) <= 1):
        assert np.array_equal(x_nat, x_ref)


@needs_native
def test_native_round_with_units_tolerance():
    g = random_graph(40, 30, 90, 6)
    ws = workspace_for(g)
    beta = np.random.default_rng(2).integers(-5, 5, size=g.n_right)
    units = np.random.default_rng(3).integers(1, 4, size=g.n_left).astype(np.float64)
    x_ref, a_ref = proportional_round(ws, beta, 0.1, left_units=units, backend=REF)
    x_nat, a_nat = proportional_round(ws, beta, 0.1, left_units=units, backend=NAT())
    np.testing.assert_allclose(x_nat, x_ref, **TOL)
    np.testing.assert_allclose(a_nat, a_ref, **TOL)


@needs_native
def test_native_huge_exponent_range_no_overflow():
    """Exponent spreads far past the exp-table's underflow point must
    produce exact zeros, never nonsense, and keep rows normalized."""
    g = build_graph(1, 3, [0, 0, 0], [0, 1, 2])
    ws = workspace_for(g)
    beta = np.array([0, -50_000, 100_000], dtype=np.int64)
    x_ref, a_ref = proportional_round(ws, beta, 0.1, backend=REF)
    x_nat, a_nat = proportional_round(ws, beta, 0.1, backend=NAT())
    assert np.array_equal(x_nat, x_ref)  # 1.0 and exact underflow zeros
    assert np.array_equal(a_nat, a_ref)


@needs_native
def test_dynamic_session_structural_delta_under_native():
    """A resident DynamicSession driven by the native backend survives
    a structural delta: warm resolve, transplanted workspace, feasible
    Definition-5 allocation, satisfied certificate."""
    from repro.dynamic import ClientArrival, DynamicSession
    from repro.serve.session import check_integral_feasible

    instance = union_of_forests(40, 30, 3, capacity=2, seed=0)
    with use_backend("native"):
        dyn = DynamicSession(instance, epsilon=0.2, boost=False)
        dyn.resolve(seed=0)
        dyn.apply(ClientArrival(neighbors=((0, 1), (2, 3))))
        warm = dyn.resolve(seed=1)
    assert warm.meta["warm_start"]
    assert dyn.stats.structural_rebuilds == 1
    assert warm.mpc.certificate.satisfied
    check_integral_feasible(warm.instance, warm.edge_mask)


@needs_native
def test_engine_native_cold_solve_certified_and_feasible():
    """Engine(SolverConfig(backend='native')) end-to-end: the cold
    solve must pass the termination certificate and the Definition-5
    feasibility check (the ISSUE's acceptance gate)."""
    from repro.api import Engine, SolverConfig
    from repro.serve.session import check_integral_feasible

    instance = union_of_forests(80, 60, 3, capacity=2, seed=1)
    config = SolverConfig(backend="native", boost=False, seed=7)
    with Engine(config) as engine:
        report = engine.solve(instance)
    assert report.certified
    assert report.certificate.satisfied
    check_integral_feasible(instance, report.edge_mask)
    assert report.size == int(report.edge_mask.sum())


def test_native_unavailability_is_graceful(monkeypatch):
    """Without a compiler the backend stays registered but unusable:
    listing works, the reason is reported, resolving raises it, and
    nothing crashes at import time."""
    import repro.kernels.backends as backends_mod
    from repro.kernels.native import KernelBuildError

    def no_native():
        return False, "no C compiler found (set CC or REPRO_NATIVE_CC)"

    monkeypatch.setitem(backends_mod._PROBES, "native", no_native)
    assert "native" in available_backends()
    assert "native" not in available_backends(usable_only=True)
    reason = backend_availability()["native"]
    assert "compiler" in reason

    def fail_factory():
        raise KernelBuildError(reason)

    monkeypatch.setitem(backends_mod._FACTORIES, "native", fail_factory)
    with pytest.raises(KernelBuildError, match="compiler"):
        with use_backend("native"):
            pass  # pragma: no cover


def test_config_rejects_unavailable_backend(monkeypatch):
    """SolverConfig surfaces the availability reason eagerly."""
    import repro.kernels.backends as backends_mod
    from repro.api import SolverConfig

    monkeypatch.setitem(
        backends_mod._PROBES, "native", lambda: (False, "no C compiler found")
    )
    with pytest.raises(ValueError, match="no C compiler"):
        SolverConfig(backend="native")


# ----------------------------------------------------------------------
# Bench regression guard: the committed BENCH_kernels.json floors
# ----------------------------------------------------------------------
BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_kernels.json"


def test_bench_kernels_committed_floors():
    """The committed full-scale bench must keep the headline speedups
    above their floors: fused native ≥ 5x the reference backend (and ≥
    2.5x optimized) per round on the largest instance, optimized ≥
    1.2x reference.  Guards the artifact, not this host: regenerating
    the JSON below a floor is the regression being caught."""
    if not BENCH_PATH.exists():
        pytest.skip("BENCH_kernels.json not present")
    payload = json.loads(BENCH_PATH.read_text())
    if payload.get("scale") != "full":
        pytest.skip("bench artifact not recorded at full scale")
    assert payload["largest_instance_optimized_speedup"] >= 1.2
    assert payload["optimized_beats_seed"] is True
    largest = payload["round_kernel"][-1]
    if largest.get("native_ms_per_round") is None:
        pytest.skip("bench artifact recorded without a usable native backend")
    assert payload["largest_instance_speedup"] >= 5.0
    assert largest["native_speedup_vs_reference"] >= 5.0
    assert largest["native_speedup_vs_optimized"] >= 2.5
