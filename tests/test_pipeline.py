"""End-to-end pipeline integration (Theorem 1 / Theorem 3 composed).

The paper's complete algorithm is a composition:

    MPC fractional (2+O(ε))  →  §6 rounding (Θ(1) integral)
    →  App. B boosting ((1+ε) integral)

This module runs the whole chain on several instance families and
checks the final quality against the exact oracle, plus determinism of
the full pipeline given one seed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.exact import optimum_value
from repro.boosting.boost import boost_allocation
from repro.core.mpc_driver import solve_allocation_mpc
from repro.graphs.generators import (
    adwords_instance,
    load_balancing_instance,
    union_of_forests,
)
from repro.rounding.repair import greedy_fill
from repro.rounding.sampling import round_best_of

from tests.conftest import assert_feasible_integral


def full_pipeline(instance, *, eps_frac=0.2, eps_boost=0.34, seed=0):
    mpc = solve_allocation_mpc(instance, eps_frac, seed=seed)
    rounded = round_best_of(
        instance.graph, instance.capacities, mpc.allocation, seed=seed
    )
    repaired = greedy_fill(instance.graph, instance.capacities, rounded.edge_mask, seed=seed)
    boosted = boost_allocation(instance, repaired, eps_boost, seed=seed)
    return mpc, boosted


@pytest.mark.parametrize(
    "make",
    [
        lambda: union_of_forests(60, 45, 3, capacity=2, seed=8),
        lambda: load_balancing_instance(80, 10, locality=3, seed=8),
        lambda: adwords_instance(70, 15, seed=8),
    ],
    ids=["forests", "loadbal", "adwords"],
)
def test_pipeline_quality(make):
    inst = make()
    mpc, boosted = full_pipeline(inst)
    opt = optimum_value(inst)
    assert_feasible_integral(inst.graph, inst.capacities, boosted.edge_mask)
    # Fractional stage within its certified factor.
    assert opt <= mpc.guarantee * mpc.match_weight + 1e-9
    # Boosted integral allocation within 1 + 1/k of optimal, with a
    # small randomized-framework slack.
    k = boosted.k
    assert boosted.final_size * (k + 1) >= opt * k * 0.9


def test_pipeline_deterministic():
    inst = union_of_forests(40, 30, 2, capacity=2, seed=1)
    a = full_pipeline(inst, seed=5)[1]
    b = full_pipeline(inst, seed=5)[1]
    assert np.array_equal(a.edge_mask, b.edge_mask)


def test_pipeline_monotone_stages():
    """Each stage may only improve the integral size."""
    inst = union_of_forests(50, 40, 3, capacity=2, seed=2)
    mpc = solve_allocation_mpc(inst, 0.2, seed=3)
    rounded = round_best_of(inst.graph, inst.capacities, mpc.allocation, seed=3)
    repaired = greedy_fill(inst.graph, inst.capacities, rounded.edge_mask, seed=3)
    boosted = boost_allocation(inst, repaired, 0.34, seed=3)
    assert int(repaired.sum()) >= rounded.size
    assert boosted.final_size >= int(repaired.sum())
