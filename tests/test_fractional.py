"""Direct tests for the FractionalAllocation value type."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.fractional import FeasibilityReport, FractionalAllocation
from repro.graphs import build_graph
from repro.graphs.generators import union_of_forests


@pytest.fixture
def triangle_ish():
    # L0-R0, L0-R1, L1-R1
    return build_graph(2, 2, [0, 0, 1], [0, 1, 1])


def test_weight_and_loads(triangle_ish):
    alloc = FractionalAllocation(x=np.array([0.5, 0.5, 1.0]))
    assert alloc.weight == pytest.approx(2.0)
    assert alloc.left_loads(triangle_ish).tolist() == [1.0, 1.0]
    assert alloc.right_loads(triangle_ish).tolist() == [0.5, 1.5]


def test_feasibility_report_pass(triangle_ish):
    alloc = FractionalAllocation(x=np.array([0.5, 0.5, 0.5]))
    report = alloc.check_feasibility(triangle_ish, np.array([1, 1]))
    assert bool(report)
    assert report.max_left_excess <= 0
    assert isinstance(report, FeasibilityReport)


def test_feasibility_report_left_violation(triangle_ish):
    alloc = FractionalAllocation(x=np.array([0.8, 0.8, 0.0]))
    report = alloc.check_feasibility(triangle_ish, np.array([2, 2]))
    assert not report.feasible
    assert report.max_left_excess == pytest.approx(0.6)


def test_feasibility_report_right_violation(triangle_ish):
    alloc = FractionalAllocation(x=np.array([0.0, 1.0, 1.0]))
    report = alloc.check_feasibility(triangle_ish, np.array([1, 1]))
    assert not report.feasible
    assert report.max_right_excess == pytest.approx(1.0)


def test_feasibility_value_range(triangle_ish):
    alloc = FractionalAllocation(x=np.array([-0.1, 0.0, 0.0]))
    assert not alloc.check_feasibility(triangle_ish, np.array([1, 1])).feasible
    alloc = FractionalAllocation(x=np.array([1.2, 0.0, 0.0]))
    assert not alloc.check_feasibility(triangle_ish, np.array([2, 2])).feasible


def test_require_feasible_raises(triangle_ish):
    alloc = FractionalAllocation(x=np.array([1.0, 1.0, 1.0]))
    with pytest.raises(ValueError, match="infeasible"):
        alloc.require_feasible(triangle_ish, np.array([1, 1]))


def test_shape_mismatch_rejected(triangle_ish):
    alloc = FractionalAllocation(x=np.zeros(2))
    with pytest.raises(ValueError, match="shape"):
        alloc.check_feasibility(triangle_ish, np.array([1, 1]))


def test_scaled_into_feasibility(triangle_ish):
    # Right loads 0.5 / 1.5 against capacity 1: vertex 1 scaled by 2/3.
    alloc = FractionalAllocation(x=np.array([0.5, 0.5, 1.0]))
    scaled = alloc.scaled_into_feasibility(triangle_ish, np.array([1, 1]))
    assert scaled.right_loads(triangle_ish).tolist() == pytest.approx([0.5, 1.0])
    assert scaled.check_feasibility(triangle_ish, np.array([1, 1])).feasible
    # Under-capacity vertices untouched.
    assert scaled.x[0] == pytest.approx(0.5)


def test_scaled_noop_when_feasible(triangle_ish):
    alloc = FractionalAllocation(x=np.array([0.2, 0.3, 0.4]))
    scaled = alloc.scaled_into_feasibility(triangle_ish, np.array([1, 1]))
    assert np.allclose(scaled.x, alloc.x)


def test_empty_allocation():
    g = build_graph(2, 2, [], [])
    alloc = FractionalAllocation(x=np.zeros(0))
    assert alloc.weight == 0.0
    assert alloc.check_feasibility(g, np.array([1, 1])).feasible


@given(st.integers(0, 2**31 - 1))
@settings(max_examples=20, deadline=None)
def test_property_scaling_is_idempotent_and_feasible(seed):
    inst = union_of_forests(10, 8, 2, capacity=2, seed=seed)
    rng = np.random.default_rng(seed)
    # Random left-normalized x (feasible on L, arbitrary on R).
    raw = rng.random(inst.graph.n_edges)
    denom = np.maximum(
        np.bincount(inst.graph.edge_u, weights=raw, minlength=inst.graph.n_left), 1e-12
    )
    x = raw / denom[inst.graph.edge_u]
    alloc = FractionalAllocation(x=x)
    scaled = alloc.scaled_into_feasibility(inst.graph, inst.capacities)
    assert scaled.check_feasibility(inst.graph, inst.capacities).feasible
    twice = scaled.scaled_into_feasibility(inst.graph, inst.capacities)
    assert np.allclose(twice.x, scaled.x)
