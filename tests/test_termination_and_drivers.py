"""Tests for the termination certificate, LOCAL drivers, and the
theorem-level approximation guarantees (T9, T20, remark after T9)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.exact import optimum_value
from repro.core import params
from repro.core.local_driver import (
    resolve_lambda_bound,
    solve_fractional_fixed_tau,
    solve_fractional_one_plus_eps,
    solve_fractional_until_certificate,
)
from repro.core.proportional import ProportionalRun
from repro.core.termination import evaluate_certificate, neighbors_of_right_set
from repro.core.trace import run_with_trace
from repro.graphs import build_graph
from repro.graphs.generators import (
    complete_bipartite_instance,
    erdos_renyi_instance,
    grid_instance,
    load_balancing_instance,
    star_instance,
    union_of_forests,
)

from tests.conftest import assert_feasible_fractional, small_instance_zoo


# ----------------------------------------------------------------------
# neighbors_of_right_set
# ----------------------------------------------------------------------

def test_neighbors_of_right_set_basic(path_graph):
    mask = np.array([True, False])
    out = neighbors_of_right_set(path_graph, mask)
    assert out.tolist() == [True, True]
    mask = np.array([False, True])
    assert neighbors_of_right_set(path_graph, mask).tolist() == [False, True]


def test_neighbors_of_right_set_empty(path_graph):
    out = neighbors_of_right_set(path_graph, np.zeros(2, dtype=bool))
    assert not out.any()


def test_neighbors_shape_checked(path_graph):
    with pytest.raises(ValueError):
        neighbors_of_right_set(path_graph, np.zeros(3, dtype=bool))


# ----------------------------------------------------------------------
# Certificate behaviour
# ----------------------------------------------------------------------

def test_certificate_requires_a_round(small_star):
    run = ProportionalRun(small_star.graph, small_star.capacities, 0.25)
    with pytest.raises(RuntimeError):
        evaluate_certificate(run)


def test_certificate_on_underloaded_instance_fires_immediately():
    # Huge capacities: every v under-allocated forever; total allocated
    # mass equals |N'| so the mass condition holds after round 1.
    inst = union_of_forests(20, 10, 2, capacity=50, seed=1)
    run = ProportionalRun(inst.graph, inst.capacities, 0.25)
    run.step()
    cert = evaluate_certificate(run)
    assert cert.mass_condition
    assert cert.satisfied


def test_certificate_counts(path_graph):
    run = ProportionalRun(path_graph, np.array([1, 1]), 0.25)
    run.step()
    cert = evaluate_certificate(run)
    assert cert.rounds == 1
    assert 0 <= cert.n_prime <= 2
    assert cert.top_size + cert.l0_size <= 2 + int((run.beta_exp == 0).sum())


def test_certificate_soundness_guarantee():
    """Certificate satisfied ⇒ OPT ≤ (2+10ε)·MatchWeight (the remark's
    soundness direction), verified against the exact OPT oracle."""
    eps = 0.2
    for seed in range(4):
        inst = union_of_forests(25, 18, 3, capacity=2, seed=seed)
        res = solve_fractional_until_certificate(inst, eps)
        assert res.certificate is not None and res.certificate.satisfied
        opt = optimum_value(inst)
        assert opt <= (2 + 10 * eps) * res.match_weight + 1e-9


def test_certificate_fires_by_theorem_round_bound():
    """Certificate must fire within ⌈log_{1+ε}(4λ/ε)⌉+1 rounds (remark
    after Theorem 9)."""
    eps = 0.25
    for k in (1, 2, 4):
        inst = union_of_forests(40, 30, k, capacity=2, seed=k)
        bound = params.tau_two_approx(k, eps)
        res = solve_fractional_until_certificate(inst, eps)
        assert res.rounds <= bound


# ----------------------------------------------------------------------
# Fixed-τ driver and Theorem 9
# ----------------------------------------------------------------------

@pytest.mark.parametrize("inst", small_instance_zoo(), ids=lambda i: i.name)
def test_theorem9_guarantee_across_zoo(inst):
    eps = 0.25
    res = solve_fractional_fixed_tau(inst, eps)
    assert res.guarantee == pytest.approx(2 + 10 * eps)
    opt = optimum_value(inst)
    assert opt <= res.guarantee * res.match_weight + 1e-9
    assert_feasible_fractional(inst.graph, inst.capacities, res.allocation.x)


@pytest.mark.parametrize("eps", [0.1, 0.25, 0.5])
def test_theorem9_guarantee_eps_sweep(eps):
    inst = union_of_forests(30, 24, 2, capacity=2, seed=13)
    res = solve_fractional_fixed_tau(inst, eps)
    opt = optimum_value(inst)
    assert opt <= (2 + 10 * eps) * res.match_weight + 1e-9


def test_fixed_tau_respects_explicit_budget(small_forest_instance):
    res = solve_fractional_fixed_tau(small_forest_instance, 0.25, tau=3)
    assert res.rounds == 3
    # Short budget ⇒ no certificate of the 2+10ε factor.
    assert res.guarantee is None


def test_fixed_tau_uses_lambda_bound(small_forest_instance):
    res = solve_fractional_fixed_tau(small_forest_instance, 0.25)
    expected = params.tau_two_approx(
        resolve_lambda_bound(small_forest_instance), 0.25
    )
    assert res.rounds == expected


def test_resolve_lambda_bound_prefers_certificate():
    inst = union_of_forests(10, 10, 3, seed=0)
    assert resolve_lambda_bound(inst) == 3
    anon = erdos_renyi_instance(10, 10, 30, seed=0)
    assert resolve_lambda_bound(anon) >= 1


def test_record_trace(small_forest_instance):
    res = solve_fractional_fixed_tau(small_forest_instance, 0.25, record_trace=True)
    assert res.trace is not None
    assert res.trace.rounds == res.rounds
    assert len(res.trace.match_weights()) == res.rounds


# ----------------------------------------------------------------------
# (1+ε) regime (Theorem 20 with k=1)
# ----------------------------------------------------------------------

def test_one_plus_eps_much_tighter_than_two_approx():
    inst = union_of_forests(30, 20, 2, capacity=2, seed=3)
    eps = 0.25
    res = solve_fractional_one_plus_eps(inst, eps)
    opt = optimum_value(inst)
    assert opt <= res.guarantee * res.match_weight + 1e-9
    # Empirically the long regime should land well inside 1.5x.
    assert opt <= 1.5 * res.match_weight + 1e-9


def test_one_plus_eps_star():
    inst = star_instance(8, center_capacity=4)
    res = solve_fractional_one_plus_eps(inst, 0.25)
    assert res.match_weight == pytest.approx(4.0, rel=0.3)


# ----------------------------------------------------------------------
# λ-sensitivity of the round count (the paper's headline shape)
# ----------------------------------------------------------------------

def test_rounds_track_lambda_not_n():
    """Same λ, n growing 8x ⇒ certificate round roughly flat; growing λ
    at fixed n ⇒ round count grows.  This is Theorem 9's shape (E1/E3
    validate it at scale)."""
    eps = 0.25
    rounds_by_n = []
    for n in (40, 320):
        inst = union_of_forests(n, n, 2, capacity=2, seed=5)
        res = solve_fractional_until_certificate(inst, eps)
        rounds_by_n.append(res.rounds)
    assert rounds_by_n[1] <= rounds_by_n[0] + 5  # flat-ish in n

    rounds_by_k = []
    for k in (1, 8):
        inst = union_of_forests(100, 100, k, capacity=2, seed=6)
        res = solve_fractional_until_certificate(inst, eps)
        rounds_by_k.append(res.rounds)
    # More arboricity may need more rounds but stays within the bound.
    assert rounds_by_k[1] <= params.tau_two_approx(8, eps)


# ----------------------------------------------------------------------
# Trace helper
# ----------------------------------------------------------------------

def test_run_with_trace_records_everything(small_forest_instance):
    inst = small_forest_instance
    run = ProportionalRun(inst.graph, inst.capacities, 0.25)
    trace = run_with_trace(run, 5)
    assert trace.rounds == 5
    rec = trace.records[-1]
    assert rec.round_index == 5
    assert rec.n_increased + rec.n_decreased + rec.n_kept == inst.graph.n_right
    assert 0.0 <= rec.saturated_fraction <= 1.0
    assert rec.level_histogram.sum() == inst.graph.n_right


def test_trace_certificate_round(small_forest_instance):
    inst = small_forest_instance
    run = ProportionalRun(inst.graph, inst.capacities, 0.25)
    trace = run_with_trace(run, 25)
    fired = trace.certificate_rounds()
    assert fired is not None
    assert fired <= 25


# ----------------------------------------------------------------------
# Property: Theorem 9 on random low-arboricity instances
# ----------------------------------------------------------------------

@given(st.integers(0, 2**31 - 1), st.integers(1, 3))
@settings(max_examples=10, deadline=None)
def test_property_theorem9(seed, k):
    eps = 0.25
    inst = union_of_forests(16, 12, k, capacity=2, seed=seed)
    res = solve_fractional_fixed_tau(inst, eps, lam=k)
    opt = optimum_value(inst)
    assert opt <= (2 + 10 * eps) * res.match_weight + 1e-9
