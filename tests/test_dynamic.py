"""The dynamic-instance subsystem: deltas, sessions, scenarios, replay.

The contracts under test (DESIGN.md §9):

* delta validity — every applied delta yields an instance that passes
  the library's own validation, with correct surviving-role maps;
* warm continuity — an empty delta leaves the resident session
  bit-identical to a warm re-solve of the unchanged instance, and
  structural deltas remap the retained exponents through the role map;
* degenerate safety — removing every client and zeroing capacities
  (drains) re-solve without errors;
* workspace carry-over — capacity-only deltas keep the workspace
  object resident; structural deltas transplant unchanged CSR sides;
* reproducibility — scenario generators are pure functions of the
  seed, and replays are pure functions of (instance, stream, seed).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.dynamic import (
    SCENARIOS,
    CapacityScale,
    ClientArrival,
    ClientDeparture,
    Compound,
    DemandChange,
    DynamicSession,
    EdgeAdd,
    EdgeRemove,
    ServerArrival,
    ServerDeparture,
    apply_delta,
    delta_from_json,
    delta_to_json,
    remap_exponents,
)
from repro.graphs.generators import slow_spread_instance, union_of_forests
from repro.graphs.io import save_instance
from repro.kernels import transplant_workspace, workspace_for
from repro.serve import replay_stream
from repro.serve.session import check_integral_feasible


@pytest.fixture
def instance():
    return union_of_forests(40, 30, 3, capacity=2, seed=0)


@pytest.fixture
def dynamic(instance):
    return DynamicSession(instance, epsilon=0.2, boost=False)


# ----------------------------------------------------------------------
# Delta algebra
# ----------------------------------------------------------------------

def test_capacity_scale_shares_graph(instance):
    out = apply_delta(instance, CapacityScale(2.0))
    assert not out.structure_changed
    assert out.instance.graph is instance.graph
    assert np.array_equal(out.instance.capacities, instance.capacities * 2)
    assert np.array_equal(out.right_map, np.arange(instance.n_right))


def test_capacity_scale_floors_at_one(instance):
    out = apply_delta(instance, CapacityScale(0.01))
    assert out.instance.capacities.min() == 1


def test_capacity_scale_subset(instance):
    out = apply_delta(instance, CapacityScale(3.0, vertices=(0, 2)))
    caps = out.instance.capacities
    assert caps[0] == instance.capacities[0] * 3
    assert caps[1] == instance.capacities[1]
    assert caps[2] == instance.capacities[2] * 3


def test_demand_change_sets_absolute(instance):
    out = apply_delta(instance, DemandChange({0: 7, 1: 3}))
    assert not out.structure_changed
    assert out.instance.capacities[0] == 7
    assert out.instance.capacities[1] == 3


def test_demand_change_zero_drains_edges(instance):
    v = int(np.argmax(instance.graph.right_degrees))
    deg = int(instance.graph.right_degrees[v])
    assert deg > 0
    out = apply_delta(instance, DemandChange({v: 0}))
    assert out.structure_changed
    assert out.instance.n_edges == instance.n_edges - deg
    # Ids are preserved: a drain is not a removal.
    assert out.instance.n_right == instance.n_right
    assert int(out.instance.graph.right_degrees[v]) == 0
    assert out.instance.capacities[v] == 1  # pinned, Def. 5 floor
    out.instance.graph.validate()


def test_client_arrival_appends(instance):
    out = apply_delta(instance, ClientArrival(neighbors=((0, 1), (2,))))
    assert out.instance.n_left == instance.n_left + 2
    assert out.instance.n_edges == instance.n_edges + 3
    assert out.instance.arboricity_upper_bound is None  # additions clear it
    assert np.array_equal(out.left_map, np.arange(instance.n_left))
    out.instance.graph.validate()


def test_client_departure_compacts(instance):
    out = apply_delta(instance, ClientDeparture(clients=(0, 3)))
    assert out.instance.n_left == instance.n_left - 2
    assert out.left_map[0] == -1 and out.left_map[3] == -1
    assert out.left_map[1] == 0  # survivors compact in order
    # Removal keeps the certified arboricity bound.
    assert out.instance.arboricity_upper_bound == instance.arboricity_upper_bound
    out.instance.graph.validate()


def test_server_departure_remaps_exponents(instance):
    out = apply_delta(instance, ServerDeparture(servers=(1,)))
    assert out.instance.n_right == instance.n_right - 1
    exps = np.arange(instance.n_right, dtype=np.int64)
    remapped = remap_exponents(exps, out.right_map, out.instance.n_right)
    # Server 0 keeps exponent 0; servers 2.. shift down one slot.
    assert remapped[0] == 0
    assert remapped[1] == 2
    assert remapped[-1] == instance.n_right - 1
    out.instance.graph.validate()


def test_server_arrival(instance):
    out = apply_delta(
        instance, ServerArrival(capacities=(2, 1), neighbors=((0, 1), ()))
    )
    assert out.instance.n_right == instance.n_right + 2
    assert out.instance.capacities[-2] == 2
    assert out.instance.capacities[-1] == 1
    out.instance.graph.validate()


def test_edge_add_remove_round_trip(instance):
    g = instance.graph
    pair = (int(g.edge_u[0]), int(g.edge_v[0]))
    removed = apply_delta(instance, EdgeRemove(edges=(pair,)))
    assert removed.instance.n_edges == instance.n_edges - 1
    back = apply_delta(removed.instance, EdgeAdd(edges=(pair,)))
    assert back.instance.n_edges == instance.n_edges
    assert np.array_equal(back.instance.graph.edge_u, g.edge_u)
    assert np.array_equal(back.instance.graph.edge_v, g.edge_v)


def test_edge_add_duplicate_rejected(instance):
    g = instance.graph
    pair = (int(g.edge_u[0]), int(g.edge_v[0]))
    with pytest.raises(ValueError, match="already exists"):
        apply_delta(instance, EdgeAdd(edges=(pair,)))


def test_edge_remove_missing_rejected(instance):
    missing = None
    for u in range(instance.n_left):
        for v in range(instance.n_right):
            if not instance.graph.has_edge(u, v):
                missing = (u, v)
                break
        if missing:
            break
    with pytest.raises(ValueError, match="does not exist"):
        apply_delta(instance, EdgeRemove(edges=(missing,)))


def test_out_of_range_ids_rejected(instance):
    with pytest.raises(ValueError):
        apply_delta(instance, ClientDeparture(clients=(instance.n_left,)))
    with pytest.raises(ValueError):
        apply_delta(instance, DemandChange({instance.n_right: 2}))
    with pytest.raises(ValueError):
        apply_delta(instance, ClientArrival(neighbors=((instance.n_right,),)))


def test_compound_composes_maps(instance):
    out = apply_delta(
        instance,
        Compound(
            deltas=(
                ClientDeparture(clients=(0,)),
                ClientDeparture(clients=(0,)),  # old client 1, post-compaction
                CapacityScale(2.0),
            )
        ),
    )
    assert out.instance.n_left == instance.n_left - 2
    assert out.left_map[0] == -1 and out.left_map[1] == -1
    assert out.left_map[2] == 0
    assert np.array_equal(out.instance.capacities, instance.capacities * 2)


def test_noop_deltas_return_same_instance(instance):
    for delta in (
        CapacityScale(1.0),
        DemandChange({}),
        DemandChange({0: int(instance.capacities[0])}),
        ClientArrival(neighbors=()),
        ClientDeparture(clients=()),
        EdgeAdd(edges=()),
        Compound(deltas=()),
    ):
        out = apply_delta(instance, delta)
        assert out.noop
        assert out.instance is instance


def test_json_round_trip():
    deltas = [
        CapacityScale(1.5),
        CapacityScale(0.5, vertices=(3, 4)),
        DemandChange({0: 2, 5: 0}),
        ClientArrival(neighbors=((0, 1), (2,))),
        ClientDeparture(clients=(7,)),
        ServerArrival(capacities=(2,), neighbors=((0,),)),
        ServerDeparture(servers=(1, 2)),
        EdgeAdd(edges=((0, 1),)),
        EdgeRemove(edges=((2, 3), (4, 5))),
        Compound(deltas=(EdgeAdd(edges=((0, 0),)), DemandChange({0: 2}))),
    ]
    for delta in deltas:
        obj = json.loads(json.dumps(delta_to_json(delta)))
        assert delta_from_json(obj) == delta


def test_json_rejects_malformed():
    with pytest.raises(ValueError, match="unknown delta type"):
        delta_from_json({"type": "warp_speed"})
    with pytest.raises(ValueError, match="unknown fields"):
        delta_from_json({"type": "capacity_scale", "factor": 2.0, "bogus": 1})
    with pytest.raises(ValueError, match="must be a number"):
        delta_from_json({"type": "capacity_scale", "factor": "big"})
    with pytest.raises(ValueError, match=">= 0"):
        delta_from_json({"type": "demand_change", "updates": {"0": -1}})


# ----------------------------------------------------------------------
# Workspace transplant (the kernels-layer incremental rebuild)
# ----------------------------------------------------------------------

def test_transplant_reuses_unchanged_sides(instance):
    parent = workspace_for(instance.graph)
    _ = parent.left.slot_owner  # materialize a lazy invariant
    # Remove then re-add the same edge: both indptrs are unchanged, so
    # both layouts (and their materialized arrays) carry over.
    g = instance.graph
    pair = (int(g.edge_u[0]), int(g.edge_v[0]))
    rebuilt = apply_delta(
        instance, Compound(deltas=(EdgeRemove(edges=(pair,)), EdgeAdd(edges=(pair,))))
    ).instance
    assert rebuilt.graph is not instance.graph
    ws = transplant_workspace(rebuilt.graph, parent)
    assert ws.left is parent.left
    assert ws.right is parent.right
    assert rebuilt.graph.left_layout is parent.left  # graph shares it too
    # The adopted layout's indptr becomes the graph's indptr *object*:
    # the optimized backend only trusts a layout when the identities
    # match, so an equal-but-distinct array would silently demote
    # every segment call on the transplanted graph to the slow path.
    assert rebuilt.graph.left_indptr is parent.left.indptr
    assert rebuilt.graph.right_indptr is parent.right.indptr


def test_transplant_rebuilds_changed_sides(instance):
    parent = workspace_for(instance.graph)
    out = apply_delta(instance, ClientArrival(neighbors=((0, 1),)))
    ws = transplant_workspace(out.instance.graph, parent)
    assert ws.left is not parent.left       # left side grew
    assert ws.right is not parent.right     # right degrees changed
    assert ws.graph is out.instance.graph


def test_transplant_is_cached(instance):
    parent = workspace_for(instance.graph)
    out = apply_delta(instance, ClientDeparture(clients=(0,)))
    ws1 = transplant_workspace(out.instance.graph, parent)
    ws2 = transplant_workspace(out.instance.graph, parent)
    assert ws1 is ws2
    assert workspace_for(out.instance.graph) is ws1


# ----------------------------------------------------------------------
# DynamicSession: the ISSUE's edge cases
# ----------------------------------------------------------------------

def test_empty_delta_bit_identical_to_warm_resolve(instance):
    a = DynamicSession(instance, epsilon=0.2, boost=False)
    b = DynamicSession(instance, epsilon=0.2, boost=False)
    a.resolve(seed=3)
    b.resolve(seed=3)
    out = a.apply(DemandChange({}))
    assert out.noop
    ra = a.resolve(seed=9)
    rb = b.resolve(seed=9)
    assert np.array_equal(ra.edge_mask, rb.edge_mask)
    assert ra.summary() == rb.summary()
    assert a.stats.noop_deltas == 1


def test_delta_removing_every_client(dynamic):
    dynamic.resolve(seed=0)
    out = dynamic.apply(
        ClientDeparture(clients=tuple(range(dynamic.instance.n_left)))
    )
    assert out.instance.n_left == 0
    assert out.instance.n_edges == 0
    result = dynamic.resolve(seed=1)
    assert result.size == 0
    assert result.mpc.certificate.satisfied
    check_integral_feasible(dynamic.instance, result.edge_mask)


def test_delta_zeroing_capacities_no_divide_by_zero(dynamic):
    dynamic.resolve(seed=0)
    # Zero every capacity: all servers drain, every edge disappears —
    # the proportional rounds must not divide by zero anywhere.
    n_right = dynamic.instance.n_right
    out = dynamic.apply(DemandChange({v: 0 for v in range(n_right)}))
    assert out.instance.n_edges == 0
    assert out.instance.capacities.min() >= 1  # Def. 5 floor
    result = dynamic.resolve(seed=1)
    assert result.size == 0
    assert result.mpc.certificate.satisfied


def test_warm_resolve_after_capacity_patch(dynamic):
    cold = dynamic.resolve(seed=0)
    assert not cold.meta["warm_start"]
    dynamic.apply(CapacityScale(2.0))
    warm = dynamic.resolve(seed=1)
    assert warm.meta["warm_start"]
    assert warm.mpc.certificate.satisfied
    assert dynamic.stats.capacity_patches == 1
    assert dynamic.stats.warm_resolves == 1


def test_warm_resolve_after_structural_delta(dynamic):
    dynamic.resolve(seed=0)
    dynamic.apply(ClientArrival(neighbors=((0, 1), (2, 3))))
    warm = dynamic.resolve(seed=1)
    assert warm.meta["warm_start"]
    assert dynamic.stats.structural_rebuilds == 1


def test_exponents_carried_across_server_departure(dynamic):
    dynamic.resolve(seed=0)
    before = dynamic.session.exponents_snapshot()
    out = dynamic.apply(ServerDeparture(servers=(0,)))
    after = dynamic.session.exponents_snapshot()
    assert after is not None and after.shape == (out.instance.n_right,)
    alive = out.right_map >= 0
    assert np.array_equal(after[out.right_map[alive]], before[alive])


def test_first_resolve_without_prime_is_cold(dynamic):
    dynamic.apply(CapacityScale(2.0))
    result = dynamic.resolve(seed=0)
    assert not result.meta["warm_start"]
    assert dynamic.stats.cold_resolves == 1


def test_scenarios_reproducible_and_valid():
    raw = slow_spread_instance(6, width=4)
    # Raise the capacity profile so the diurnal wave (and its ±10%
    # jitter) has room to move — on unit capacities every wave factor
    # floors back to 1 regardless of seed (the same reason
    # bench_dynamic raises the profile).
    base = raw.with_capacities(raw.capacities * 10, suffix="x10")
    for name, gen in SCENARIOS.items():
        a = gen(base, 5, seed=11)
        b = gen(base, 5, seed=11)
        assert [delta_to_json(x) for x in a] == [delta_to_json(x) for x in b], name
        c = gen(base, 5, seed=12)
        assert [delta_to_json(x) for x in a] != [delta_to_json(x) for x in c], name
        # The stream applies cleanly in order.
        current = base
        for delta in a:
            current = apply_delta(current, delta).instance
            current.graph.validate()


def test_replay_stream_deterministic():
    base = slow_spread_instance(6, width=4)
    deltas = SCENARIOS["rolling_maintenance"](base, 4, seed=0)

    def run():
        dyn = DynamicSession(base, epsilon=0.2, boost=False)
        dyn.resolve(seed=0)
        return replay_stream(dyn, deltas, seed=1)

    a, b = run(), run()
    assert [s.as_row() for s in a] == [s.as_row() for s in b]
    for sa, sb in zip(a, b):
        assert np.array_equal(sa.result.edge_mask, sb.result.edge_mask)
    assert all(s.certified for s in a)
    assert all(s.warm_start for s in a)


def test_replay_stream_requests_align():
    base = slow_spread_instance(4, width=3)
    dyn = DynamicSession(base, epsilon=0.2, boost=False)
    with pytest.raises(ValueError, match="requests for"):
        replay_stream(dyn, [CapacityScale(2.0)], requests=[None, None])


# ----------------------------------------------------------------------
# CLI: the `dynamic` subcommand
# ----------------------------------------------------------------------

@pytest.fixture
def instance_file(tmp_path, instance):
    path = tmp_path / "instance.json"
    save_instance(instance, path)
    return str(path)


def test_cli_dynamic_scenario(instance_file, capsys):
    rc = cli_main([
        "dynamic", "--instance", instance_file,
        "--scenario", "diurnal_wave", "--steps", "3", "--no-boost",
    ])
    assert rc == 0
    out = capsys.readouterr().out.strip().splitlines()
    assert json.loads(out[0])["step"] == "prime"
    rows = [json.loads(line) for line in out[1:]]
    assert len(rows) == 3
    assert all(row["certified"] for row in rows)
    assert all(row["warm_start"] for row in rows)


def test_cli_dynamic_jsonl(tmp_path, instance_file, capsys):
    deltas = tmp_path / "deltas.jsonl"
    deltas.write_text(
        '{"type": "capacity_scale", "factor": 2.0}\n'
        '{"type": "client_arrival", "neighbors": [[0, 1]]}\n'
    )
    rc = cli_main([
        "dynamic", str(deltas), "--instance", instance_file, "--no-boost",
    ])
    assert rc == 0
    out = capsys.readouterr().out.strip().splitlines()
    rows = [json.loads(line) for line in out[1:]]
    assert [r["delta"] for r in rows] == ["capacity_scale", "client_arrival"]
    assert rows[1]["structure_changed"]


def test_cli_dynamic_deterministic(tmp_path, instance_file, capsys):
    args = [
        "dynamic", "--instance", instance_file,
        "--scenario", "adversarial_churn", "--steps", "3",
        "--seed", "5", "--no-boost",
    ]
    assert cli_main(args) == 0
    first = capsys.readouterr().out
    assert cli_main(args) == 0
    assert capsys.readouterr().out == first


def test_cli_dynamic_malformed_delta(tmp_path, instance_file, capsys):
    deltas = tmp_path / "bad.jsonl"
    deltas.write_text('{"type": "capacity_scale"}\n')
    rc = cli_main(["dynamic", str(deltas), "--instance", instance_file])
    assert rc == 2
    assert "line 1" in capsys.readouterr().err


def test_cli_dynamic_unknown_scenario(instance_file, capsys):
    rc = cli_main([
        "dynamic", "--instance", instance_file, "--scenario", "earthquake",
    ])
    assert rc == 2
    assert "unknown scenario" in capsys.readouterr().err


def test_cli_dynamic_needs_stream_or_scenario(instance_file, capsys):
    rc = cli_main(["dynamic", "--instance", instance_file])
    assert rc == 2
    assert "deltas.jsonl" in capsys.readouterr().err


def test_cli_dynamic_bad_session_epsilon(instance_file, capsys):
    rc = cli_main([
        "dynamic", "--instance", instance_file,
        "--scenario", "diurnal_wave", "--steps", "2", "--epsilon", "0.9",
    ])
    assert rc == 2
    # A flag problem is reported as one — not blamed on the stream.
    assert "invalid session configuration" in capsys.readouterr().err


def test_cli_dynamic_scenario_instance_mismatch(tmp_path, capsys):
    from repro.graphs.bipartite import build_graph
    from repro.graphs.instances import AllocationInstance

    # No left side at all: flash_crowd generates fine (arrivals create
    # clients), but adversarial_churn needs both sides and must exit 2
    # with a scenario-scoped message instead of a raw traceback.
    servers_only = AllocationInstance(
        graph=build_graph(0, 3, [], []),
        capacities=np.array([1, 1, 1]),
        name="servers_only",
    )
    path = tmp_path / "servers_only.json"
    save_instance(servers_only, path)
    rc = cli_main([
        "dynamic", "--instance", str(path),
        "--scenario", "adversarial_churn", "--steps", "2",
    ])
    assert rc == 2
    assert "cannot generate scenario" in capsys.readouterr().err


def test_cli_dynamic_out_of_range_delta(tmp_path, instance_file, capsys):
    deltas = tmp_path / "oob.jsonl"
    deltas.write_text('{"type": "client_departure", "clients": [9999]}\n')
    rc = cli_main(["dynamic", str(deltas), "--instance", instance_file])
    assert rc == 2
    assert "invalid delta stream" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Trace replay: JSONL event logs <-> (instance, delta stream)
# ----------------------------------------------------------------------

def test_trace_round_trip_bit_identical():
    from repro.dynamic import stream_to_trace, trace_to_stream

    base = slow_spread_instance(6, width=4)
    deltas = SCENARIOS["correlated_flash_crowd"](base, 6, seed=3)
    trace = stream_to_trace(base, deltas)
    inst2, deltas2 = trace_to_stream(trace)
    assert inst2.metadata["family"] == "trace_replay"
    assert stream_to_trace(inst2, deltas2) == trace
    # The parsed stream replays cleanly on the parsed instance.
    current = inst2
    for delta in deltas2:
        current = apply_delta(current, delta).instance
        current.graph.validate()


def test_trace_rejects_malformed():
    from repro.dynamic import trace_to_stream

    with pytest.raises(ValueError, match="empty trace"):
        trace_to_stream([])
    with pytest.raises(ValueError, match="must be 'init'"):
        trace_to_stream([json.dumps({"event": "arrive", "neighbors": []})])
