"""Tests for the Dinic solver, the exact allocation oracle, and greedy."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.dinic import DinicSolver
from repro.baselines.exact import solve_exact, optimum_value
from repro.baselines.greedy import greedy_allocation, is_maximal_allocation
from repro.graphs import build_graph
from repro.graphs.generators import (
    complete_bipartite_instance,
    star_instance,
    union_of_forests,
)

from tests.conftest import assert_feasible_integral, small_instance_zoo


# ----------------------------------------------------------------------
# Dinic
# ----------------------------------------------------------------------

def test_dinic_single_edge():
    net = DinicSolver(2)
    arc = net.add_edge(0, 1, 5)
    assert net.max_flow(0, 1) == 5
    assert net.flow_on(arc) == 5


def test_dinic_series_bottleneck():
    net = DinicSolver(3)
    net.add_edge(0, 1, 10)
    net.add_edge(1, 2, 3)
    assert net.max_flow(0, 2) == 3


def test_dinic_parallel_paths():
    net = DinicSolver(4)
    net.add_edge(0, 1, 2)
    net.add_edge(0, 2, 2)
    net.add_edge(1, 3, 2)
    net.add_edge(2, 3, 2)
    assert net.max_flow(0, 3) == 4


def test_dinic_needs_residual_reroute():
    # Classic diamond where a greedy path must be partially undone.
    net = DinicSolver(4)
    net.add_edge(0, 1, 1)
    net.add_edge(0, 2, 1)
    net.add_edge(1, 2, 1)
    net.add_edge(1, 3, 1)
    net.add_edge(2, 3, 1)
    assert net.max_flow(0, 3) == 2


def test_dinic_disconnected():
    net = DinicSolver(4)
    net.add_edge(0, 1, 3)
    net.add_edge(2, 3, 3)
    assert net.max_flow(0, 3) == 0


def test_dinic_min_cut():
    net = DinicSolver(4)
    net.add_edge(0, 1, 1)
    net.add_edge(1, 2, 10)
    net.add_edge(2, 3, 10)
    net.max_flow(0, 3)
    side = net.min_cut_source_side(0)
    assert side == [True, False, False, False]


def test_dinic_rejects_bad_input():
    net = DinicSolver(2)
    with pytest.raises(ValueError):
        net.add_edge(0, 5, 1)
    with pytest.raises(ValueError):
        net.add_edge(0, 1, -1)
    with pytest.raises(ValueError):
        net.max_flow(0, 0)
    with pytest.raises(ValueError):
        DinicSolver(0)


@given(st.integers(2, 7), st.integers(0, 2**31 - 1))
@settings(max_examples=30, deadline=None)
def test_property_dinic_matches_networkx(n, seed):
    nx = pytest.importorskip("networkx")
    rng = np.random.default_rng(seed)
    net = DinicSolver(n)
    G = nx.DiGraph()
    G.add_nodes_from(range(n))
    for u in range(n):
        for v in range(n):
            if u != v and rng.random() < 0.4:
                cap = int(rng.integers(1, 10))
                net.add_edge(u, v, cap)
                if G.has_edge(u, v):
                    G[u][v]["capacity"] += cap
                else:
                    G.add_edge(u, v, capacity=cap)
    ours = net.max_flow(0, n - 1)
    theirs = nx.maximum_flow_value(G, 0, n - 1)
    assert ours == theirs


# ----------------------------------------------------------------------
# Exact allocation
# ----------------------------------------------------------------------

def test_exact_star_capacity_limits():
    inst = star_instance(6, center_capacity=3)
    sol = solve_exact(inst.graph, inst.capacities)
    assert sol.value == 3
    assert_feasible_integral(inst.graph, inst.capacities, sol.edge_mask)


def test_exact_star_full_capacity():
    inst = star_instance(6, center_capacity=6)
    assert optimum_value(inst) == 6


def test_exact_complete_bipartite():
    inst = complete_bipartite_instance(4, 3, capacity=2)
    # L side limits to 4; R side allows 6 → OPT = 4.
    assert optimum_value(inst) == 4


def test_exact_unit_capacities_is_matching():
    nx = pytest.importorskip("networkx")
    inst = union_of_forests(15, 12, 2, capacity=1, seed=3)
    g = inst.graph
    G = nx.Graph()
    G.add_nodes_from(range(g.n_vertices))
    ea, eb = g.undirected_edges()
    G.add_edges_from(zip(ea.tolist(), eb.tolist()))
    matching = nx.algorithms.matching.max_weight_matching(G, maxcardinality=True)
    assert optimum_value(inst) == len(matching)


@pytest.mark.parametrize("inst", small_instance_zoo(), ids=lambda i: i.name)
def test_exact_feasible_and_maximal(inst):
    sol = solve_exact(inst.graph, inst.capacities)
    assert_feasible_integral(inst.graph, inst.capacities, sol.edge_mask)
    # Optimal ⇒ maximal.
    assert is_maximal_allocation(inst.graph, inst.capacities, sol.edge_mask)


def test_exact_matches_scipy_lp():
    scipy_opt = pytest.importorskip("scipy.optimize")
    inst = union_of_forests(10, 8, 2, capacity=2, seed=42)
    g = inst.graph
    # LP: maximize sum x_e subject to allocation constraints.
    m = g.n_edges
    n_rows = g.n_left + g.n_right
    a_ub = np.zeros((n_rows, m))
    for e in range(m):
        a_ub[g.edge_u[e], e] = 1
        a_ub[g.n_left + g.edge_v[e], e] = 1
    b_ub = np.concatenate([np.ones(g.n_left), inst.capacities.astype(float)])
    res = scipy_opt.linprog(
        c=-np.ones(m), A_ub=a_ub, b_ub=b_ub, bounds=[(0, 1)] * m, method="highs"
    )
    assert res.success
    assert abs(-res.fun - optimum_value(inst)) < 1e-6


# ----------------------------------------------------------------------
# Greedy
# ----------------------------------------------------------------------

@pytest.mark.parametrize("order", ["canonical", "random", "degree"])
def test_greedy_feasible_and_maximal(order, medium_forest_instance):
    inst = medium_forest_instance
    mask = greedy_allocation(inst.graph, inst.capacities, order=order, seed=1)
    assert_feasible_integral(inst.graph, inst.capacities, mask)
    assert is_maximal_allocation(inst.graph, inst.capacities, mask)


def test_greedy_half_approximation():
    for seed in range(5):
        inst = union_of_forests(30, 20, 3, capacity=2, seed=seed)
        opt = optimum_value(inst)
        mask = greedy_allocation(inst.graph, inst.capacities, order="random", seed=seed)
        assert int(mask.sum()) * 2 >= opt


def test_greedy_unknown_order_rejected(small_forest_instance):
    with pytest.raises(ValueError, match="unknown order"):
        greedy_allocation(
            small_forest_instance.graph, small_forest_instance.capacities, order="bogus"
        )


def test_is_maximal_detects_addable_edge():
    g = build_graph(2, 1, [0, 1], [0, 0])
    caps = np.array([2])
    mask = np.array([True, False])
    assert not is_maximal_allocation(g, caps, mask)
