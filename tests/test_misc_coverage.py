"""Coverage for remaining paths: logging, engine details, primitives
edge cases, instance metadata, harness utilities."""

from __future__ import annotations

import logging

import numpy as np
import pytest

from repro.graphs import build_graph, profile_graph
from repro.graphs.generators import star_instance, union_of_forests
from repro.graphs.instances import AllocationInstance
from repro.mpc.cluster import MPCCluster
from repro.mpc.primitives import sample_sort, tree_broadcast, tree_reduce
from repro.utils.logging import enable_progress_logging, get_logger, log_duration


# ----------------------------------------------------------------------
# logging utilities
# ----------------------------------------------------------------------

def test_get_logger_namespacing():
    assert get_logger().name == "repro"
    assert get_logger("mpc").name == "repro.mpc"


def test_enable_progress_logging_idempotent():
    logger = get_logger()
    before = len(logger.handlers)
    enable_progress_logging()
    enable_progress_logging()
    stream_handlers = [
        h for h in logger.handlers if isinstance(h, logging.StreamHandler)
    ]
    assert len(stream_handlers) == max(1, len([h for h in logger.handlers[:before] if isinstance(h, logging.StreamHandler)]) or 1)
    # cleanup
    for h in stream_handlers:
        logger.removeHandler(h)


def test_log_duration(caplog):
    logger = get_logger("test")
    with caplog.at_level(logging.DEBUG, logger="repro.test"):
        with log_duration(logger, "work"):
            pass
    assert any("work took" in rec.message for rec in caplog.records)


# ----------------------------------------------------------------------
# instance metadata
# ----------------------------------------------------------------------

def test_instance_describe_and_with_capacities():
    inst = union_of_forests(10, 8, 2, capacity=2, seed=0)
    desc = inst.describe()
    assert desc["n_left"] == 10 and desc["lambda_bound"] == 2
    recap = inst.with_capacities(np.full(8, 5, dtype=np.int64))
    assert recap.capacities.tolist() == [5] * 8
    assert recap.name.endswith("+recap")
    # Original untouched (capacities frozen).
    with pytest.raises(ValueError):
        inst.capacities[0] = 99


def test_instance_rejects_bad_bound():
    g = build_graph(2, 2, [0], [0])
    with pytest.raises(ValueError):
        AllocationInstance(graph=g, capacities=np.array([1, 1]), arboricity_upper_bound=0)


def test_profile_exported_from_graphs_package():
    inst = star_instance(5)
    prof = profile_graph(inst.graph)
    assert prof.n_components == 1


# ----------------------------------------------------------------------
# MPC primitives: corner cases
# ----------------------------------------------------------------------

def test_sample_sort_single_machine():
    c = MPCCluster(1, 10_000)
    c.load([("r", v) for v in (3, 1, 2)])
    sample_sort(c, key_fn=lambda rec: rec[1])
    assert [rec[1] for rec in c.machines[0].storage] == [1, 2, 3]


def test_sample_sort_empty():
    c = MPCCluster(3, 1000)
    c.load([])
    sample_sort(c, key_fn=lambda rec: rec)
    assert c.all_records() == []


def test_sample_sort_duplicate_keys():
    c = MPCCluster(3, 10_000)
    c.load([("r", v) for v in [5, 5, 5, 1, 1, 9]])
    sample_sort(c, key_fn=lambda rec: rec[1], seed=2)
    flat = [rec[1] for m in c.machines for rec in m.storage]
    assert flat == [1, 1, 5, 5, 5, 9]


def test_tree_reduce_empty_cluster():
    c = MPCCluster(4, 1000)
    c.load([])
    total, _ = tree_reduce(c, extract=lambda r: 1, combine=lambda a, b: a + b, zero=0)
    assert total == 0


def test_tree_broadcast_two_machines():
    c = MPCCluster(2, 1000)
    c.load([])
    rounds = tree_broadcast(c, 42, tag="x")
    assert rounds == 1
    assert ("x", 42) in c.machines[1].storage


def test_cluster_round_log_labels():
    c = MPCCluster(2, 1000)
    c.load([("a", 1)])

    def keep(mid, records):
        for rec in records:
            yield mid, rec

    c.exchange(keep, label="my-label")
    assert c.round_log[-1].label == "my-label"
    assert c.round_log[-1].round_index == 1


def test_exchange_bad_destination():
    c = MPCCluster(2, 1000)
    c.load([("a", 1)])

    def bad(mid, records):
        for rec in records:
            yield 7, rec

    with pytest.raises(ValueError, match="out of range"):
        c.exchange(bad)


# ----------------------------------------------------------------------
# harness utilities
# ----------------------------------------------------------------------

def test_default_results_dir_finds_repo_root():
    from repro.experiments.harness import default_results_dir

    path = default_results_dir()
    assert path.name == "results"
    assert path.parent.name == "benchmarks"


def test_duplicate_experiment_registration_rejected():
    from repro.experiments.harness import register, get_experiment

    get_experiment("e1")  # ensure modules loaded
    with pytest.raises(ValueError, match="duplicate"):
        register("e1", "again", "claim")(lambda **kw: None)
