"""Focused tests: trace records, phase-group bucketing, slow_spread
family invariants, exponentiation corner cases."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.proportional import ProportionalRun
from repro.core.sampled import SampledRun
from repro.core.trace import RoundTrace, run_with_trace
from repro.graphs import build_graph, degeneracy, exact_arboricity
from repro.graphs.generators import slow_spread_instance, union_of_forests
from repro.mpc.cluster import MPCCluster
from repro.mpc.exponentiation import collect_balls


# ----------------------------------------------------------------------
# trace
# ----------------------------------------------------------------------

def test_trace_requires_completed_round(small_star):
    run = ProportionalRun(small_star.graph, small_star.capacities, 0.25)
    trace = RoundTrace()
    with pytest.raises(RuntimeError):
        trace.append_from_run(run)


def test_trace_without_certificate(small_forest_instance):
    inst = small_forest_instance
    run = ProportionalRun(inst.graph, inst.capacities, 0.25)
    run.step()
    trace = RoundTrace()
    rec = trace.append_from_run(run, with_certificate=False)
    assert rec.certificate is None
    assert trace.certificate_rounds() is None


def test_trace_match_weight_monotone_on_underloaded():
    # Plenty of capacity: the dynamics converge upward smoothly.
    inst = union_of_forests(20, 15, 2, capacity=5, seed=0)
    run = ProportionalRun(inst.graph, inst.capacities, 0.25)
    trace = run_with_trace(run, 6)
    weights = trace.match_weights()
    assert weights[-1] >= weights[0] - 1e-9


# ----------------------------------------------------------------------
# phase-group bucketing
# ----------------------------------------------------------------------

def test_right_side_groups_bucket_by_beta_u():
    # Two left vertices with very different β_u must land in different
    # buckets of their common right neighbour's group table.
    # L0 sees {R0}, L1 sees {R0, R1..R9} — after forcing exponents the
    # β_u values split decisively.
    eu = [0] + [1] * 10
    ev = [0] + list(range(10))
    g = build_graph(2, 10, eu, ev)
    caps = np.ones(10, dtype=np.int64)
    run = SampledRun(g, caps, 0.25, block=2, sample_budget=4, seed=0)
    run.beta_exp = np.array([10] + [0] * 9, dtype=np.int64)
    left_groups, right_groups = run.build_phase_groups()
    # R0's neighbourhood {L0, L1}: β_{L0} = (1+ε)^10 ≫ β_{L1} ≈ 10 ·
    # shifted scale — they must not share a bucket.
    r0_groups = [
        gidx for gidx in range(right_groups.n_groups)
        if right_groups.group_row[gidx] == 0
    ]
    assert len(r0_groups) == 2


def test_left_side_groups_use_exact_exponents():
    g = build_graph(1, 4, [0, 0, 0, 0], [0, 1, 2, 3])
    caps = np.ones(4, dtype=np.int64)
    run = SampledRun(g, caps, 0.25, block=1, sample_budget=2, seed=0)
    run.beta_exp = np.array([3, 3, -2, 0], dtype=np.int64)
    left_groups, _ = run.build_phase_groups()
    keys = sorted(left_groups.group_key.tolist())
    assert keys == [-2, 0, 3]
    sizes = {int(k): int(s) for k, s in zip(left_groups.group_key, left_groups.group_sizes)}
    assert sizes[3] == 2


# ----------------------------------------------------------------------
# slow_spread family
# ----------------------------------------------------------------------

def test_slow_spread_structure():
    inst = slow_spread_instance(4, width=3)
    g = inst.graph
    assert g.n_left == 12
    assert g.n_right == 4 + 12
    # Every left vertex: 4 core neighbours + 1 private fringe vertex.
    assert np.all(g.left_degrees == 5)
    # Fringe vertices have degree exactly 1.
    assert np.all(g.right_degrees[4:] == 1)
    assert np.all(inst.capacities == 1)


def test_slow_spread_arboricity_certificate():
    for b in (2, 3, 5):
        inst = slow_spread_instance(b, width=3)
        lam = exact_arboricity(inst.graph).value
        assert lam <= inst.arboricity_upper_bound
        # The dense core keeps λ near b.
        assert lam >= max(1, b - 1)


@given(st.integers(2, 8), st.integers(2, 5))
@settings(max_examples=15, deadline=None)
def test_property_slow_spread_certificate_round_bounded(b, width):
    from repro.core import params
    from repro.core.local_driver import solve_fractional_until_certificate

    inst = slow_spread_instance(b, width=width)
    res = solve_fractional_until_certificate(inst, 0.25)
    assert res.rounds <= params.tau_two_approx(b + 1, 0.25)


# ----------------------------------------------------------------------
# exponentiation corner cases
# ----------------------------------------------------------------------

def test_collect_balls_radius_exceeds_diameter():
    edges = [(0, 1), (1, 2)]
    c = MPCCluster(2, 10_000)
    balls, _ = collect_balls(c, 3, edges, radius=8)
    # Whole graph in every ball once the radius covers the diameter.
    assert balls[0] == ((0, 1), (1, 2))
    assert balls[2] == ((0, 1), (1, 2))


def test_collect_balls_isolated_vertex():
    c = MPCCluster(2, 10_000)
    balls, _ = collect_balls(c, 4, [(0, 1)], radius=2)
    assert balls[3] == ()


def test_collect_balls_disconnected_components():
    edges = [(0, 1), (2, 3)]
    c = MPCCluster(3, 10_000)
    balls, _ = collect_balls(c, 4, edges, radius=4)
    assert balls[0] == ((0, 1),)
    assert balls[2] == ((2, 3),)
