"""E9 — the splitting reduction's arboricity blow-up on stars (§1.1)."""

from benchmarks.conftest import run_experiment_once


def test_e9_star_reduction(benchmark, scale):
    table = run_experiment_once(benchmark, "e9", scale)
    rows = table.rows
    # Split arboricity grows linearly with n (Θ(n) blow-up)…
    assert rows[-1]["split_lambda"] >= rows[-1]["n_leaves"] / 4
    assert rows[-1]["split_lambda"] > rows[0]["split_lambda"]
    # …while the direct algorithm keeps the λ=1 certificate and budget.
    assert all(r["direct_lambda"] == 1 for r in rows)
    budgets = {r["direct_budget"] for r in rows}
    assert len(budgets) == 1  # n-independent
    assert all(r["direct_rounds"] <= r["direct_budget"] for r in rows)
