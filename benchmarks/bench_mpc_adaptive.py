"""Benchmark of adaptive budget throttling on the faithful MPC path.

The faithful driver enforces ``S = O(n^α)`` words per machine
strictly; a fixed per-round sample budget therefore caps the largest
instance that *completes* — one skewed phase over ``S`` raises
:class:`~repro.mpc.machine.SpaceViolation` and kills the run.  The
adaptive policy (DESIGN.md §13) throttles the budget per phase against
a safety fraction of ``S`` instead, so the same cap budget should push
the "largest runnable n" frontier out by a multiple.

This benchmark measures that frontier directly on the stress family
built for it (:func:`repro.graphs.generators.skew_frontier_instance`:
a right-side hub whose exploration load scales with the sampled hub
degree, hence with the budget).  Both arms share one *absolute* space
budget ``S`` (the slack is rescaled per instance so every machine has
the same number of words regardless of n) and the same budget cap:

* **fixed arm** — ``budget_policy="fixed"`` at the cap budget, walked
  up an n-ladder until the first :class:`SpaceViolation`;
* **adaptive arm** — ``budget_policy="adaptive"`` with the same cap,
  walked up a ladder extending well past the fixed frontier.

The recorded bar: the adaptive arm must complete at ≥ 4× the largest
violation-free fixed-budget n.  Every adaptive run must also pass the
driver's certificate crosscheck (the Theorem-2 certificate computed
over the accounted cluster equals the host-side recomputation), and
one size is re-run on both substrates with bit-identical allocations —
a frontier reached by a wrong answer is worthless.  Adaptive peak
machine words are additionally recorded against n so the tests can
assert they grow *sublinearly* (the throttle keeps load near the
safety band instead of tracking instance size).

Run as a script to regenerate ``BENCH_mpc_adaptive.json``::

    PYTHONPATH=src python benchmarks/bench_mpc_adaptive.py [--scale smoke]
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time
from collections import Counter
from pathlib import Path

import numpy as np

try:  # pytest-benchmark path (optional; the script path needs neither)
    import pytest
except ImportError:  # pragma: no cover - script-only environments
    pytest = None

if not __package__:  # invoked as a script: self-contained path setup
    _root = Path(__file__).resolve().parents[1]
    sys.path.insert(0, str(_root))          # for benchmarks._scale
    sys.path.insert(0, str(_root / "src"))  # for repro (no PYTHONPATH needed)
from benchmarks._scale import bench_scale, bench_script_main, cpu_info
from repro.core.mpc_driver import solve_allocation_mpc
from repro.graphs.generators import skew_frontier_instance
from repro.mpc.machine import SpaceViolation

_EPS = 0.2
_ALPHA = 0.5
_LAM = 4                 # the family certifies λ ≤ 12; λ=4 is the known guess
_BUDGET_CAP = 6          # shared by both arms: fixed budget == adaptive cap
_S_TARGET = 16384        # absolute words/machine, identical across the ladder
_SAFETY = 0.8
_FRONTIER_THRESHOLD = 4.0
_SEED = 0

# The fixed arm violates at n=48 under _S_TARGET (hub load at budget 6
# exceeds S); ladders above it only matter for the adaptive arm.
_FIXED_NS = [16, 24, 32, 48]
_ADAPTIVE_NS = {
    "smoke": [64, 128],
    "normal": [64, 128, 256],
    "full": [64, 128, 256, 512],
}


def _solve(instance, *, policy: str, substrate=None):
    """One faithful solve at the shared absolute S and budget cap."""
    nv = instance.graph.n_vertices
    kwargs = dict(
        lam=_LAM, mode="faithful", seed=_SEED, sample_budget=_BUDGET_CAP,
        alpha=_ALPHA, block_override=1,
        space_slack=_S_TARGET / nv ** _ALPHA,
        budget_policy=policy,
    )
    if policy == "adaptive":
        kwargs["safety_fraction"] = _SAFETY
    if substrate is not None:
        kwargs["substrate"] = substrate
    return solve_allocation_mpc(instance, _EPS, **kwargs)


def _base_row(instance, result, seconds: float) -> dict:
    g = instance.graph
    return {
        "n_left": int(instance.metadata["n_left"]),
        "n_vertices": g.n_vertices,
        "n_edges": g.n_edges,
        "s_words": max(16, int((_S_TARGET / g.n_vertices ** _ALPHA)
                               * g.n_vertices ** _ALPHA)),
        "completed": result is not None,
        "seconds": round(seconds, 4),
    }


def _run_fixed(n: int) -> dict:
    instance = skew_frontier_instance(n, seed=_SEED)
    t0 = time.perf_counter()
    try:
        result = _solve(instance, policy="fixed")
    except SpaceViolation as exc:
        row = _base_row(instance, None, time.perf_counter() - t0)
        row["violation"] = str(exc)
        return row
    row = _base_row(instance, result, time.perf_counter() - t0)
    row.update(
        violation=None,
        mpc_rounds=result.mpc_rounds,
        peak_machine_words=result.ledger.peak_machine_words,
    )
    return row


def _run_adaptive(n: int) -> tuple[dict, object]:
    instance = skew_frontier_instance(n, seed=_SEED)
    t0 = time.perf_counter()
    result = _solve(instance, policy="adaptive")  # a violation here is fatal
    seconds = time.perf_counter() - t0
    trajectory = result.ledger.trajectory
    accepted = [row for row in trajectory if row["accepted"]]
    budgets = [row["sample_budget"] for row in accepted]
    row = _base_row(instance, result, seconds)
    row.update(
        mpc_rounds=result.mpc_rounds,
        peak_machine_words=result.ledger.peak_machine_words,
        phases=result.ledger.phases,
        decisions=dict(Counter(r["decision"] for r in trajectory)),
        discarded_attempts=sum(1 for r in trajectory if not r["accepted"]),
        budget_min=min(budgets),
        budget_max=max(budgets),
        payload_words_p99_max=max(r["payload_words_p99"] for r in accepted),
        routing_skew_max=round(max(r["routing_skew"] for r in accepted), 3),
        certificate_crosscheck=bool(result.meta["certificate_crosscheck"]),
    )
    return row, result


def _crosscheck_substrates(n: int) -> dict:
    """Re-run one adaptive size on both substrates; bit-compare."""
    instance = skew_frontier_instance(n, seed=_SEED)
    res_o = _solve(instance, policy="adaptive", substrate="object")
    res_c = _solve(instance, policy="adaptive", substrate="columnar")
    identical = (
        np.array_equal(res_o.allocation.x, res_c.allocation.x)
        and res_o.ledger.by_category == res_c.ledger.by_category
        and res_o.ledger.trajectory == res_c.ledger.trajectory
        and res_o.certificate == res_c.certificate
    )
    if not identical:  # must survive python -O
        raise RuntimeError(
            f"adaptive substrate parity violated on n={n}: "
            "refusing to record the frontier"
        )
    return {"n_left": n, "substrates": ["object", "columnar"],
            "bit_identical": True}


def run_adaptive_benchmarks(scale: str) -> dict:
    fixed_rows = [_run_fixed(n) for n in _FIXED_NS]
    completed = [r["n_left"] for r in fixed_rows if r["completed"]]
    violated = [r["n_left"] for r in fixed_rows if not r["completed"]]
    if not completed or not violated:  # must survive python -O
        raise RuntimeError(
            "fixed-budget ladder must bracket the frontier (needs at least "
            f"one completion and one violation; got {fixed_rows!r})"
        )
    largest_fixed_n = max(completed)

    adaptive_rows = []
    for n in _ADAPTIVE_NS[scale]:
        row, _ = _run_adaptive(n)
        adaptive_rows.append(row)
    largest_adaptive_n = max(r["n_left"] for r in adaptive_rows)

    # Sublinearity evidence: log-log slope of adaptive peak machine
    # words against n_vertices (tests assert < 1; the throttle keeps
    # peaks near safety_fraction·S instead of tracking instance size).
    xs = [math.log(r["n_vertices"]) for r in adaptive_rows]
    ys = [math.log(r["peak_machine_words"]) for r in adaptive_rows]
    slope = float(np.polyfit(xs, ys, 1)[0]) if len(xs) >= 2 else 0.0

    certificates_ok = all(r["certificate_crosscheck"] for r in adaptive_rows)
    crosscheck = _crosscheck_substrates(_ADAPTIVE_NS[scale][0])

    frontier_ratio = largest_adaptive_n / largest_fixed_n
    met = frontier_ratio >= _FRONTIER_THRESHOLD and certificates_ok
    if not met:  # must survive python -O
        raise RuntimeError(
            f"adaptive frontier bar missed: ratio {frontier_ratio:.2f} "
            f"(threshold {_FRONTIER_THRESHOLD}), "
            f"certificates_ok={certificates_ok}"
        )
    return {
        "benchmark": "MPC adaptive budget throttling: runnable-n frontier",
        "scale": scale,
        "family": "skew_frontier",
        "s_words_target": _S_TARGET,
        "alpha": _ALPHA,
        "lam": _LAM,
        "sample_budget_cap": _BUDGET_CAP,
        "safety_fraction": _SAFETY,
        "fixed_runs": fixed_rows,
        "adaptive_runs": adaptive_rows,
        "largest_fixed_n": largest_fixed_n,
        "first_fixed_violation_n": min(violated),
        "largest_adaptive_n": largest_adaptive_n,
        "frontier_ratio": round(frontier_ratio, 3),
        "frontier_bar": {"threshold": _FRONTIER_THRESHOLD, "met": met},
        "adaptive_peak_words_slope": round(slope, 4),
        "adaptive_peaks_sublinear": slope < 1.0,
        "certificates_bit_checked": certificates_ok and crosscheck["bit_identical"],
        "substrate_crosscheck": crosscheck,
        "cpu": cpu_info(),
    }


if pytest is not None:

    def test_fixed_arm_inside_frontier(benchmark):
        """The fixed arm at the last violation-free ladder size."""
        row = benchmark.pedantic(lambda: _run_fixed(32), rounds=1, iterations=1)
        assert row["completed"] and row["violation"] is None

    def test_adaptive_arm_past_frontier(benchmark):
        """The adaptive arm at the scale's largest ladder size."""
        n = _ADAPTIVE_NS[bench_scale()][-1]
        row, result = benchmark.pedantic(
            lambda: _run_adaptive(n), rounds=1, iterations=1
        )
        assert result.ledger.violations == []
        assert row["certificate_crosscheck"]


def main(argv=None) -> None:
    bench_script_main(
        run_adaptive_benchmarks, "BENCH_mpc_adaptive.json",
        description=__doc__, scales=_ADAPTIVE_NS, argv=argv,
    )


if __name__ == "__main__":
    main()
