"""E1 — certificate rounds vs arboricity (Theorem 2/9).

Regenerates the "rounds grow like log λ, within the paper budget"
table and asserts the claim's shape: every row within budget, and on
the stress family a log-law fit beating the linear one.
"""

from benchmarks.conftest import run_experiment_once


def test_e1_rounds_vs_lambda(benchmark, scale):
    table = run_experiment_once(benchmark, "e1", scale)
    assert all(ok for ok in table.column("within_budget") if ok is not None)
    stress = [
        (row["lambda_bound"], row["rounds"])
        for row in table.rows
        if row.get("family") == "slow_spread"
    ]
    assert len(stress) >= 2
    # Rounds must increase with λ on the stress family (the log-λ shape).
    lams = [s[0] for s in stress]
    rounds = [s[1] for s in stress]
    assert rounds[-1] > rounds[0]
    # Sub-linear: λ grew much faster than the rounds did.
    assert (rounds[-1] / rounds[0]) < (lams[-1] / lams[0])
