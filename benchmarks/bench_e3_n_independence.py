"""E3 — rounds flat in n at fixed λ; AZM18 budget grows (the headline
separation of the paper)."""

from benchmarks.conftest import run_experiment_once


def test_e3_n_independence(benchmark, scale):
    table = run_experiment_once(benchmark, "e3", scale)
    ours = table.column("ours_rounds")
    azm18 = table.column("azm18_budget")
    # Flat in n: largest-n round count within +2 of the smallest-n one.
    assert max(ours) - min(ours) <= 2
    # The baseline's budget strictly grows with n.
    assert azm18 == sorted(azm18)
    assert azm18[-1] > azm18[0]
    # Who wins: ours beats the baseline budget at every n.
    assert all(o < a for o, a in zip(ours, azm18))
