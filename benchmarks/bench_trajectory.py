"""Assemble every committed BENCH_*.json bar into one perf trajectory.

Each benchmark payload carries its own acceptance bars (speedup floors,
bit-identity flags, …) in its own shape.  This script flattens all of
them into a single schema-versioned ``BENCH_trajectory.json`` at the
repo root — one entry per bar with its value, floor, and whether it is
met — so the CI floor gate (``check_bench_floors.py``) can guard the
whole performance trajectory uniformly and diff a fresh smoke run
against it.

Regenerate after re-recording any benchmark payload::

    python benchmarks/bench_trajectory.py

``check_bench_floors.py`` fails CI when the committed trajectory
disagrees with the payloads it indexes, so a payload regenerated
without this script shows up as a stale-trajectory error, not a silent
drift.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

if not __package__:  # invoked as a script: self-contained path setup
    sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from benchmarks._scale import REPO_ROOT, stamp_payload, write_bench_payload

__all__ = [
    "TRAJECTORY_SCHEMA",
    "COLLECTORS",
    "build_bars",
    "build_trajectory",
    "main",
]

TRAJECTORY_SCHEMA = "repro.bench/trajectory/v1"

# A collector maps one payload to its bars: (bar_name, value, floor,
# applicable) rows.  Boolean bars use ``floor=True`` (the only passing
# value); numeric bars pass when value >= floor.  Collectors read
# defensively — a bar whose fields are absent is simply not indexed
# (the per-payload checkers in check_bench_floors.py guard required
# fields), which keeps the trajectory a pure function of what the
# payloads actually record.


def _num(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def bars_serving(p: dict) -> list[tuple]:
    out = []
    if _num(p.get("session_speedup_over_cold")):
        out.append(
            ("session_speedup_over_cold", p["session_speedup_over_cold"], 2.0, True)
        )
    if isinstance(p.get("meets_2x_bar"), bool):
        out.append(("meets_2x_bar", p["meets_2x_bar"], True, True))
    return out


def bars_dynamic(p: dict) -> list[tuple]:
    floor = p.get("speedup_bar", 3.0)
    out = []
    for name, row in sorted((p.get("scenarios") or {}).items()):
        if isinstance(row, dict) and _num(row.get("warm_speedup_over_cold")):
            out.append(
                (
                    f"scenarios.{name}.warm_speedup_over_cold",
                    row["warm_speedup_over_cold"],
                    floor,
                    True,
                )
            )
    return out


def bars_kernels(p: dict) -> list[tuple]:
    out = []
    if _num(p.get("largest_instance_speedup")):
        out.append(("largest_instance_speedup", p["largest_instance_speedup"], 1.0, True))
    if isinstance(p.get("optimized_beats_seed"), bool):
        out.append(("optimized_beats_seed", p["optimized_beats_seed"], True, True))
    return out


def bars_mpc_substrate(p: dict) -> list[tuple]:
    out = []
    for flag in ("columnar_beats_object", "parity_checked"):
        if isinstance(p.get(flag), bool):
            out.append((flag, p[flag], True, True))
    return out


def bars_mpc_adaptive(p: dict) -> list[tuple]:
    out = []
    bar = p.get("frontier_bar") or {}
    floor = bar.get("threshold", 4.0)
    if _num(p.get("frontier_ratio")):
        out.append(("frontier_ratio", p["frontier_ratio"], floor, True))
    if isinstance(p.get("certificates_bit_checked"), bool):
        out.append(
            ("certificates_bit_checked", p["certificates_bit_checked"], True, True)
        )
    return out


def bars_sharding(p: dict) -> list[tuple]:
    out = []
    if isinstance(p.get("determinism_bit_identical"), bool):
        out.append(
            ("determinism_bit_identical", p["determinism_bit_identical"], True, True)
        )
    bar = p.get("scaling_bar")
    if isinstance(bar, dict) and _num(bar.get("speedup_4_workers")):
        out.append(
            (
                "scaling_bar.speedup_4_workers",
                bar["speedup_4_workers"],
                bar.get("threshold", 2.5),
                bool(bar.get("applicable")),
            )
        )
    return out


def bars_service(p: dict) -> list[tuple]:
    out = []
    warmth = p.get("restart_warmth") or {}
    if _num(warmth.get("restart_speedup")):
        out.append(
            ("restart_warmth.restart_speedup", warmth["restart_speedup"], 3.0, True)
        )
    if isinstance(warmth.get("restored_warm_start"), bool):
        out.append(
            ("restart_warmth.restored_warm_start", warmth["restored_warm_start"], True, True)
        )
    return out


def bars_e5(p: dict) -> list[tuple]:
    rows = p.get("instances")
    if not isinstance(rows, list) or not rows:
        return []
    out = []
    if all(isinstance(r.get("allocations_match"), bool) for r in rows):
        out.append(
            ("allocations_match", all(r["allocations_match"] for r in rows), True, True)
        )
    if all(_num(r.get("space_violations")) for r in rows):
        out.append(
            ("zero_space_violations",
             all(r["space_violations"] == 0 for r in rows), True, True)
        )
    return out


COLLECTORS = (
    ("BENCH_serving.json", bars_serving),
    ("BENCH_dynamic.json", bars_dynamic),
    ("BENCH_kernels.json", bars_kernels),
    ("BENCH_mpc_substrate.json", bars_mpc_substrate),
    ("BENCH_mpc_adaptive.json", bars_mpc_adaptive),
    ("BENCH_sharding.json", bars_sharding),
    ("BENCH_service.json", bars_service),
    ("BENCH_e5_mpc_rounds.json", bars_e5),
)


def build_bars(
    root: Path | str = REPO_ROOT, *, missing_ok: bool = False
) -> tuple[dict, list[str]]:
    """``({bar_id: entry}, missing_files)`` from the payloads under ``root``.

    Bar ids are ``<payload stem>/<bar name>``; entries hold the bar's
    source file, value, floor, host-applicability, and whether it is
    met (``None`` when not applicable).  With ``missing_ok`` absent or
    unparseable payloads land in ``missing_files`` instead of raising —
    the mode the consistency checker and ``--diff`` use, since missing
    payloads are reported separately.
    """
    root = Path(root)
    bars: dict[str, dict] = {}
    missing: list[str] = []
    for name, collect in COLLECTORS:
        path = root / name
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            if missing_ok:
                missing.append(name)
                continue
            raise
        stem = name[len("BENCH_"):-len(".json")]
        for bar_name, value, floor, applicable in collect(payload):
            if not applicable:
                met = None
            elif isinstance(value, bool):
                met = value is True
            else:
                met = float(value) >= float(floor)
            bars[f"{stem}/{bar_name}"] = {
                "file": name,
                "value": value,
                "floor": floor,
                "applicable": applicable,
                "met": met,
            }
    return bars, missing


def build_trajectory(
    root: Path | str = REPO_ROOT, *, missing_ok: bool = False
) -> dict:
    """The full trajectory payload for the tree under ``root``."""
    bars, missing = build_bars(root, missing_ok=missing_ok)
    payload = {
        "schema": TRAJECTORY_SCHEMA,
        "benchmark": "performance trajectory (all committed bench bars)",
        "bars": bars,
        "bar_count": len(bars),
        "missing_payloads": missing,
    }
    return stamp_payload(payload)


def main(argv=None) -> None:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out", default=None,
        help="output path (default: BENCH_trajectory.json at the repo root)",
    )
    args = parser.parse_args(argv)
    write_bench_payload(
        build_trajectory(REPO_ROOT), args.out, "BENCH_trajectory.json"
    )


if __name__ == "__main__":
    main()
