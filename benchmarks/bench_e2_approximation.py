"""E2 — the (2+10ε) guarantee across families and ε (Theorem 9)."""

from benchmarks.conftest import run_experiment_once


def test_e2_approximation(benchmark, scale):
    table = run_experiment_once(benchmark, "e2", scale)
    # The certified bound must hold on every row.
    assert all(table.column("ok"))
    # And the proportional output should beat plain greedy on average.
    ratios = table.column("ratio")
    greedy = table.column("greedy_ratio")
    assert sum(ratios) / len(ratios) <= sum(greedy) / len(greedy) + 0.25
