"""Benchmark package (one bench per experiment + kernels)."""
