"""Sharded-serving scaling curve: process workers × request counts.

BENCH_serving.json records the GIL ceiling: batch throughput ≈
single-session throughput on a 1-CPU host, and no thread count changes
that.  This benchmark measures what the multi-process tier
(:class:`repro.serve.ShardedExecutor`, DESIGN.md §12) buys: a fleet of
instances is published to shared memory once, requests route to shard
workers by instance-content hash, and the worker count sweeps 1/2/4
while the request stream is held fixed.

What is recorded per (worker count, request count) cell:

* wall seconds and requests/sec for the whole batch,
* worker-side per-request solve latency p50/p95 (the same digest
  BENCH_serving.json records for the serial modes, so the two
  payloads compare request-for-request),
* a repeat of the batch against the now-warm fleet (the steady-state
  number a resident deployment sees).

Determinism is asserted inline: every worker count must return
bit-identical report payloads — the scaling curve is only meaningful
if the answers are the same answers.

The scaling bar (acceptance: 4-worker ≥ 2.5× the 1-worker process
baseline) is conditional on the host actually having parallel
hardware: with ``cpu_count == 1`` the curve is flat by construction
and the payload records ``"applicable": false`` with the measured
numbers — honest hardware context, not a skipped measurement.

Run as a script to regenerate ``BENCH_sharding.json`` at the repo
root::

    PYTHONPATH=src python benchmarks/bench_sharding.py [--scale full]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

if not __package__:  # invoked as a script: self-contained path setup
    _root = Path(__file__).resolve().parents[1]
    sys.path.insert(0, str(_root))          # for benchmarks._scale
    sys.path.insert(0, str(_root / "src"))  # for repro (no PYTHONPATH needed)
from benchmarks._scale import bench_script_main, cpu_info, percentile
from repro.graphs.generators import slow_spread_instance
from repro.serve import ShardedExecutor, SolveRequest

# Workload shapes: a fleet of distinct hard instances (the Theorem-9
# Case-2 stress family, where convergence genuinely costs rounds) and
# a request stream round-robining over them.
_SIZES = {
    "smoke": dict(fleet=2, core=10, width=12, request_counts=(6,), workers=(1, 2)),
    "normal": dict(fleet=4, core=16, width=20, request_counts=(12,), workers=(1, 2, 4)),
    "full": dict(fleet=6, core=20, width=24, request_counts=(12, 24), workers=(1, 2, 4)),
}
_EPSILON = 0.1
_SCALING_BAR = 2.5


def build_fleet(scale: str):
    """Distinct instances (different core sizes → different content
    hashes) so routing actually spreads shards."""
    shape = _SIZES[scale]
    return [
        slow_spread_instance(shape["core"] + 2 * i, width=shape["width"])
        for i in range(shape["fleet"])
    ]


def build_requests(instances, n_requests: int):
    """Round-robin the fleet; rotate capacity bumps like bench_serving."""
    per_request_instances, requests = [], []
    for i in range(n_requests):
        instance = instances[i % len(instances)]
        core = instance.metadata.get("core_right", instance.n_right // 2)
        fringe_span = max(1, instance.n_right - core)
        updates = {
            core + (7 * i) % fringe_span: 2,
            core + (13 * i) % fringe_span: 2,
        }
        per_request_instances.append(instance)
        requests.append(
            SolveRequest(
                capacity_updates=updates,
                epsilon=0.12 if i % 3 == 2 else _EPSILON,
                boost=False,
            )
        )
    return per_request_instances, requests


def _digest(latencies) -> dict:
    valid = [lat for lat in latencies if lat is not None]
    return {
        "p50_ms": round(percentile(valid, 50) * 1000.0, 3),
        "p95_ms": round(percentile(valid, 95) * 1000.0, 3),
    }


def run_sharding_benchmarks(scale: str) -> dict:
    shape = _SIZES[scale]
    instances = build_fleet(scale)
    cpu = cpu_info()

    curve: list[dict] = []
    reference_payloads: dict[int, list] = {}
    for n_requests in shape["request_counts"]:
        per_request, requests = build_requests(instances, n_requests)
        for workers in shape["workers"]:
            with ShardedExecutor(workers) as executor:
                t0 = time.perf_counter()
                reports = executor.run_batch(
                    per_request, requests, seed=0, timeout=600
                )
                cold_seconds = time.perf_counter() - t0
                cold_latency = _digest(executor.last_latencies)

                # The steady-state pass: same stream against the
                # now-warm fleet (sessions resident, shm already
                # attached, exponents retained).
                t0 = time.perf_counter()
                warm_reports = executor.run_batch(
                    per_request, requests, seed=0, timeout=600
                )
                warm_seconds = time.perf_counter() - t0
                warm_latency = _digest(executor.last_latencies)

            payloads = [r.to_dict() for r in reports]
            reference = reference_payloads.setdefault(n_requests, payloads)
            if payloads != reference:
                raise RuntimeError(
                    f"determinism violation: {workers}-worker batch differs "
                    f"from the {shape['workers'][0]}-worker batch"
                )
            if not all(r.certified for r in reports):
                raise RuntimeError("a sharded solve ended uncertified")
            curve.append({
                "workers": workers,
                "n_requests": n_requests,
                "first_batch": {
                    "seconds": round(cold_seconds, 4),
                    "requests_per_second": round(n_requests / cold_seconds, 3),
                    "latency": cold_latency,
                },
                "warm_batch": {
                    "seconds": round(warm_seconds, 4),
                    "requests_per_second": round(n_requests / warm_seconds, 3),
                    "latency": warm_latency,
                },
            })

    # Scaling relative to the 1-worker process baseline, per request
    # count, on the steady-state (warm) pass.
    scaling: dict[str, dict] = {}
    for n_requests in shape["request_counts"]:
        cells = {c["workers"]: c for c in curve if c["n_requests"] == n_requests}
        base = cells[1]["warm_batch"]["seconds"] if 1 in cells else None
        if base is None:
            continue
        scaling[str(n_requests)] = {
            str(w): round(base / cells[w]["warm_batch"]["seconds"], 3)
            for w in sorted(cells)
        }

    logical = cpu["logical_cores"] or 1
    applicable = logical > 1 and 4 in shape["workers"]
    speedup_4 = None
    if any(c["workers"] == 4 for c in curve):
        # the largest request count is the representative cell
        n_rep = str(max(shape["request_counts"]))
        speedup_4 = scaling.get(n_rep, {}).get("4")
    met = None
    if applicable and speedup_4 is not None:
        met = speedup_4 >= _SCALING_BAR

    payload = {
        "benchmark": "sharded serving: process-worker scaling curve",
        "scale": scale,
        "workload": {
            "fleet": [
                {"name": inst.name, "n_left": inst.n_left,
                 "n_right": inst.n_right, "n_edges": inst.n_edges}
                for inst in instances
            ],
            "epsilon": _EPSILON,
            "request_counts": list(shape["request_counts"]),
            "worker_counts": list(shape["workers"]),
            "cpu": cpu,
        },
        "curve": curve,
        "scaling_vs_1_worker": scaling,
        "determinism_bit_identical": True,  # asserted above, per cell
        "scaling_bar": {
            "threshold": _SCALING_BAR,
            # The bar needs parallel hardware: a 1-logical-core host
            # cannot scale by construction, so it is recorded as not
            # applicable there rather than as a failure.
            "applicable": applicable,
            "speedup_4_workers": speedup_4,
            "met": met,
        },
    }
    if applicable and met is False:
        raise RuntimeError(
            f"scaling bar missed: 4-worker speedup {speedup_4} < "
            f"{_SCALING_BAR}x on a {logical}-core host"
        )
    return payload


def main(argv=None) -> None:
    bench_script_main(
        run_sharding_benchmarks, "BENCH_sharding.json",
        description=__doc__, scales=_SIZES, argv=argv,
    )


if __name__ == "__main__":
    main()
