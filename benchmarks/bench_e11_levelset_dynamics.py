"""E11 — level-set dynamics: the densest part saturates first (Remark 1)."""

from benchmarks.conftest import run_experiment_once


def test_e11_levelset_dynamics(benchmark, scale):
    table = run_experiment_once(benchmark, "e11", scale)
    rows = table.rows
    # The dense core is saturated from the very first round…
    assert rows[0]["core_mean_util"] >= 1.0
    # …while the fringe starts unsaturated and climbs monotonically-ish.
    assert rows[0]["fringe_mean_util"] < 1.0
    assert rows[-1]["fringe_mean_util"] > rows[0]["fringe_mean_util"]
    # Mass spreads: the match weight improves over the trace.
    assert rows[-1]["match_weight"] > rows[0]["match_weight"]
