"""Shared benchmark configuration.

Every experiment bench runs its experiment exactly once under
``pytest-benchmark`` (the experiments are deterministic given a seed;
wall-clock is reported but the scientific payload is the table, which
is persisted to ``benchmarks/results/`` and echoed to stdout — run
with ``-s`` to see it live).

Scale selection: set ``REPRO_BENCH_SCALE`` to ``smoke`` / ``normal`` /
``full`` (default ``normal``).
"""

from __future__ import annotations

import os

import pytest


def bench_scale() -> str:
    scale = os.environ.get("REPRO_BENCH_SCALE", "normal")
    if scale not in ("smoke", "normal", "full"):
        raise ValueError(f"REPRO_BENCH_SCALE must be smoke/normal/full, got {scale!r}")
    return scale


@pytest.fixture(scope="session")
def scale() -> str:
    return bench_scale()


def run_experiment_once(benchmark, exp_id: str, scale: str):
    """Run one experiment exactly once under the benchmark timer."""
    from repro.experiments.harness import run_and_save

    return benchmark.pedantic(
        lambda: run_and_save(exp_id, scale=scale, echo=True),
        rounds=1,
        iterations=1,
    )
