"""Shared benchmark configuration.

Every experiment bench runs its experiment exactly once under
``pytest-benchmark`` (the experiments are deterministic given a seed;
wall-clock is reported but the scientific payload is the table, which
is persisted to ``benchmarks/results/`` and echoed to stdout — run
with ``-s`` to see it live).

Scale selection: set ``REPRO_BENCH_SCALE`` to ``smoke`` / ``normal`` /
``full`` (default ``normal``).
"""

from __future__ import annotations

import pytest

from benchmarks._scale import bench_scale

__all__ = ["bench_scale", "scale", "run_experiment_once"]


@pytest.fixture(scope="session")
def scale() -> str:
    return bench_scale()


def run_experiment_once(benchmark, exp_id: str, scale: str):
    """Run one experiment exactly once under the benchmark timer."""
    from repro.experiments.harness import run_and_save

    return benchmark.pedantic(
        lambda: run_and_save(exp_id, scale=scale, echo=True),
        rounds=1,
        iterations=1,
    )
