"""Benchmarks of the MPC substrate: object vs columnar (DESIGN.md §7).

Faithful mode is the only path that actually enforces the model's
space/traffic budgets; the columnar substrate is what lets it reach
real instance sizes.  This module measures both faithful paths —

* the round-for-round direct simulation
  (:func:`repro.mpc.simulation.simulate_local_rounds_on_cluster`),
  whose three accounted exchanges per dynamics round are the
  substrate's bulk-routing hot loop, and
* the full Theorem-3 driver in ``mode="faithful"``.

Every timing is only recorded after asserting substrate parity
(identical round ledgers, bit-identical β/allocations) — a benchmark
of a wrong answer is worthless.  Run as a script to regenerate
``BENCH_mpc_substrate.json`` at the repo root::

    PYTHONPATH=src python benchmarks/bench_mpc_substrate.py [--scale full]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

try:  # pytest-benchmark path (optional; the script path needs neither)
    import pytest
except ImportError:  # pragma: no cover - script-only environments
    pytest = None

if not __package__:  # invoked as a script: self-contained path setup
    _root = Path(__file__).resolve().parents[1]
    sys.path.insert(0, str(_root))          # for benchmarks._scale
    sys.path.insert(0, str(_root / "src"))  # for repro (no PYTHONPATH needed)
from benchmarks._scale import bench_scale, bench_script_main
from repro.core.mpc_driver import solve_allocation_mpc
from repro.graphs.generators import union_of_forests
from repro.mpc.cluster import MPCCluster
from repro.mpc.columnar import ColumnarCluster
from repro.mpc.simulation import simulate_local_rounds_on_cluster

# Direct-simulation instance widths per scale (n_left = n_right = n).
_SIZES = {
    "smoke": [120],
    "normal": [200, 800],
    "full": [200, 800, 2400],
}
_TAU = 8
_EPS = 0.2
# Faithful-driver instance sizes per scale; the slack scales with the
# ball volume so the S-budget stays feasible (zero violations required).
_DRIVER_N = {"smoke": 16, "normal": 32, "full": 48}
_DRIVER_SLACK = {"smoke": 512.0, "normal": 512.0, "full": 1024.0}

_N = _SIZES[bench_scale()][-1]  # pytest path benchmarks the scale's largest size


def _ledger(cluster) -> list[tuple]:
    return [
        (r.round_index, r.label, r.total_words_moved, r.max_sent, r.max_received)
        for r in cluster.round_log
    ]


def _direct_once(instance, substrate: str):
    g = instance.graph
    total_words = 8 * (g.n_edges + g.n_vertices) + 16
    words = max(16, int(64.0 * max(2, g.n_vertices) ** 0.5))
    n_machines = max(1, -(-2 * total_words // words))
    cluster = (
        ColumnarCluster(n_machines, words)
        if substrate == "columnar"
        else MPCCluster(n_machines, words)
    )
    t0 = time.perf_counter()
    res = simulate_local_rounds_on_cluster(
        g, instance.capacities, _EPS, tau=_TAU, cluster=cluster
    )
    return time.perf_counter() - t0, res, cluster


if pytest is not None:

    @pytest.fixture(scope="module")
    def instance():
        return union_of_forests(_N, _N, 3, capacity=2, seed=0)

    @pytest.mark.parametrize("substrate", ["object", "columnar"])
    def test_direct_simulation_by_substrate(benchmark, instance, substrate):
        """The three-exchange dynamics round under each substrate."""
        elapsed, res, _ = benchmark.pedantic(
            lambda: _direct_once(instance, substrate), rounds=1, iterations=1
        )
        assert res.violations == []
        assert res.mpc_rounds == 3 * _TAU

    @pytest.mark.parametrize("substrate", ["object", "columnar"])
    def test_faithful_driver_by_substrate(benchmark, substrate):
        """The Theorem-3 driver in faithful mode under each substrate."""
        n = _DRIVER_N[bench_scale()]
        inst = union_of_forests(n, n, 2, capacity=2, seed=0)
        res = benchmark.pedantic(
            lambda: solve_allocation_mpc(
                inst, _EPS, lam=2, mode="faithful", seed=0, sample_budget=6,
                space_slack=_DRIVER_SLACK[bench_scale()], substrate=substrate,
            ),
            rounds=1,
            iterations=1,
        )
        assert res.ledger.violations == []


# ----------------------------------------------------------------------
# Script mode: object vs columnar substrate → BENCH_mpc_substrate.json
# ----------------------------------------------------------------------
def _assert_direct_parity(res_o, cl_o, res_c, cl_c, n: int) -> None:
    if not (
        np.array_equal(res_o.beta_exp, res_c.beta_exp)
        and np.array_equal(res_o.alloc, res_c.alloc)
        and _ledger(cl_o) == _ledger(cl_c)
    ):  # must survive python -O
        raise RuntimeError(
            f"substrate parity violated on n={n}: refusing to record timings"
        )


def run_substrate_benchmarks(scale: str) -> dict:
    """Benchmark both substrates; returns the JSON payload."""
    per_size = []
    for n in _SIZES[scale]:
        instance = union_of_forests(n, n, 3, capacity=2, seed=0)
        t_obj, res_o, cl_o = _direct_once(instance, "object")
        t_col, res_c, cl_c = _direct_once(instance, "columnar")
        _assert_direct_parity(res_o, cl_o, res_c, cl_c, n)
        per_size.append(
            {
                "n_left": n,
                "n_right": n,
                "n_edges": instance.graph.n_edges,
                "n_machines": cl_o.n_machines,
                "mpc_rounds": res_o.mpc_rounds,
                "words_moved": sum(r.total_words_moved for r in cl_o.round_log),
                "object_seconds": round(t_obj, 4),
                "columnar_seconds": round(t_col, 4),
                "speedup": round(t_obj / t_col, 3),
            }
        )

    n = _DRIVER_N[scale]
    inst = union_of_forests(n, n, 2, capacity=2, seed=0)
    kwargs = dict(
        lam=2, mode="faithful", seed=0, sample_budget=6,
        space_slack=_DRIVER_SLACK[scale],
    )
    t0 = time.perf_counter()
    drv_o = solve_allocation_mpc(inst, _EPS, substrate="object", **kwargs)
    t_obj = time.perf_counter() - t0
    t0 = time.perf_counter()
    drv_c = solve_allocation_mpc(inst, _EPS, substrate="columnar", **kwargs)
    t_col = time.perf_counter() - t0
    if not (
        drv_o.ledger.by_category == drv_c.ledger.by_category
        and np.array_equal(drv_o.allocation.x, drv_c.allocation.x)
    ):  # must survive python -O
        raise RuntimeError("faithful-driver substrate parity violated")

    largest = per_size[-1]
    return {
        "benchmark": "MPC substrate: object vs columnar (faithful paths)",
        "scale": scale,
        "direct_simulation": per_size,
        "faithful_driver": {
            "n_left": n,
            "n_right": n,
            "mpc_rounds": drv_o.mpc_rounds,
            "object_seconds": round(t_obj, 4),
            "columnar_seconds": round(t_col, 4),
            "speedup": round(t_obj / t_col, 3),
        },
        "largest_instance_speedup": largest["speedup"],
        "columnar_beats_object": largest["columnar_seconds"]
        < largest["object_seconds"],
        "parity_checked": True,
    }


def main(argv=None) -> None:
    bench_script_main(
        run_substrate_benchmarks, "BENCH_mpc_substrate.json",
        description=__doc__, scales=_SIZES, argv=argv,
    )


if __name__ == "__main__":
    main()
