"""Micro-benchmarks of the computational kernels.

These are classical pytest-benchmark timings (many iterations) of the
inner loops the experiments spend their time in — useful for tracking
performance regressions of the library itself, orthogonal to the
scientific tables.

The kernel-backend section benchmarks the shared round kernel
(DESIGN.md §6) under both registered backends.  Run this module as a
script to regenerate ``BENCH_kernels.json`` at the repo root::

    PYTHONPATH=src python benchmarks/bench_kernels.py [--scale full]

The JSON records per-size round-kernel timings for the reference
backend (operation-identical to the seed implementation) and the
optimized backend, plus a ``solve_allocation_many`` batch timing.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

try:  # pytest-benchmark path (optional; the script path needs neither)
    import pytest
except ImportError:  # pragma: no cover - script-only environments
    pytest = None

if not __package__:  # invoked as a script: self-contained path setup
    _root = Path(__file__).resolve().parents[1]
    sys.path.insert(0, str(_root))          # for benchmarks._scale
    sys.path.insert(0, str(_root / "src"))  # for repro (no PYTHONPATH needed)
from benchmarks._scale import bench_scale
from repro.baselines.exact import solve_exact
from repro.core.local_driver import solve_fractional_fixed_tau
from repro.core.pipeline import solve_allocation_many
from repro.core.proportional import ProportionalRun
from repro.core.sampled import SampledRun
from repro.graphs.arboricity import core_numbers
from repro.graphs.generators import union_of_forests
from repro.kernels import use_backend
from repro.rounding.sampling import round_once

_SIZES = {"smoke": [200], "normal": [200, 2000], "full": [200, 2000, 20000]}
_N = _SIZES[bench_scale()][-1]  # pytest path benchmarks the scale's largest size


if pytest is not None:

    @pytest.fixture(scope="module")
    def instance():
        return union_of_forests(_N, _N, 4, capacity=2, seed=0)

    def test_kernel_proportional_round(benchmark, instance):
        """One vectorized Algorithm-1 round (the O(m) inner loop)."""
        run = ProportionalRun(instance.graph, instance.capacities, 0.1)
        run.step()
        benchmark(run.step)
        assert run.rounds_completed > 1

    @pytest.mark.parametrize("backend", ["reference", "optimized"])
    def test_kernel_round_by_backend(benchmark, instance, backend):
        """The round kernel under each registered backend."""
        with use_backend(backend):
            run = ProportionalRun(instance.graph, instance.capacities, 0.1)
            run.step()
            benchmark(run.step)
        assert run.rounds_completed > 1

    def test_kernel_sampled_phase(benchmark, instance):
        """One Algorithm-2 phase (grouping + sampling + B rounds)."""
        run = SampledRun(
            instance.graph, instance.capacities, 0.25, block=3, sample_budget=16,
            sampler="fast", seed=0, record_estimates=False,
        )
        benchmark.pedantic(run.run_phase, rounds=3, iterations=1)
        assert run.phases_completed >= 3

    def test_kernel_degeneracy(benchmark, instance):
        ea, eb = instance.graph.undirected_edges()
        n = instance.graph.n_vertices
        result = benchmark(lambda: int(core_numbers(n, ea, eb).max()))
        assert result >= 1

    def test_kernel_exact_optimum(benchmark, instance):
        """The Dinic OPT oracle on the benchmark instance."""
        result = benchmark.pedantic(
            lambda: solve_exact(instance.graph, instance.capacities).value,
            rounds=1,
            iterations=1,
        )
        assert result > 0

    def test_kernel_rounding(benchmark, instance):
        frac = solve_fractional_fixed_tau(instance, 0.25).allocation
        out = benchmark(
            lambda: round_once(instance.graph, instance.capacities, frac, seed=1).size
        )
        assert out >= 0


# ----------------------------------------------------------------------
# Script mode: reference vs optimized backend → BENCH_kernels.json
# ----------------------------------------------------------------------
def _time_round_kernel(instance, backend: str, rounds: int) -> tuple[float, np.ndarray]:
    """Mean seconds per Algorithm-1 round plus the final β trajectory
    (returned so the harness can assert cross-backend parity)."""
    with use_backend(backend):
        run = ProportionalRun(instance.graph, instance.capacities, 0.1)
        run.step()  # warm caches / lazy layouts outside the timer
        t0 = time.perf_counter()
        for _ in range(rounds):
            run.step()
        elapsed = time.perf_counter() - t0
    return elapsed / rounds, run.beta_exp.copy()


def _time_batch(instances, backend: str, repeats: int = 3) -> float:
    """Best-of-``repeats`` batch wall time (min is the standard
    noise-robust estimator for short benchmarks)."""
    best = float("inf")
    with use_backend(backend):
        for _ in range(repeats):
            t0 = time.perf_counter()
            solve_allocation_many(instances, 0.2, seed=0, boost=False)
            best = min(best, time.perf_counter() - t0)
    return best


def run_backend_benchmarks(scale: str) -> dict:
    """Benchmark both backends; returns the BENCH_kernels.json payload."""
    sizes = _SIZES[scale]
    rounds = 40
    per_size = []
    for n in sizes:
        instance = union_of_forests(n, n, 4, capacity=2, seed=0)
        t_ref, beta_ref = _time_round_kernel(instance, "reference", rounds)
        t_opt, beta_opt = _time_round_kernel(instance, "optimized", rounds)
        if not np.array_equal(beta_ref, beta_opt):  # must survive python -O
            raise RuntimeError(
                f"backend parity violated on n={n}: refusing to record timings"
            )
        per_size.append(
            {
                "n_left": n,
                "n_right": n,
                "n_edges": instance.graph.n_edges,
                "rounds_timed": rounds,
                "reference_ms_per_round": round(t_ref * 1e3, 4),
                "optimized_ms_per_round": round(t_opt * 1e3, 4),
                "speedup": round(t_ref / t_opt, 3),
            }
        )

    batch_n = {"smoke": 300, "normal": 800, "full": 1500}[scale]
    batch = [union_of_forests(batch_n, batch_n, 3, capacity=2, seed=s) for s in range(6)]
    batch_ref = _time_batch(batch, "reference")
    batch_opt = _time_batch(batch, "optimized")

    largest = per_size[-1]
    return {
        "benchmark": "round kernel: reference vs optimized backend",
        "scale": scale,
        "round_kernel": per_size,
        "solve_allocation_many": {
            "batch_size": len(batch),
            "instance_n": batch_n,
            "reference_seconds": round(batch_ref, 4),
            "optimized_seconds": round(batch_opt, 4),
            "speedup": round(batch_ref / batch_opt, 3),
        },
        "largest_instance_speedup": largest["speedup"],
        "optimized_beats_seed": largest["optimized_ms_per_round"]
        < largest["reference_ms_per_round"],
    }


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale", choices=sorted(_SIZES), default="full",
        help="instance sizes to benchmark (default: full)",
    )
    parser.add_argument(
        "--out", default=None,
        help="output path (default: BENCH_kernels.json at the repo root)",
    )
    args = parser.parse_args(argv)
    payload = run_backend_benchmarks(args.scale)
    out = Path(args.out) if args.out else Path(__file__).resolve().parents[1] / "BENCH_kernels.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
    print(f"\nwrote {out}")


if __name__ == "__main__":
    main()
