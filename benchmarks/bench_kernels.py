"""Micro-benchmarks of the computational kernels.

These are classical pytest-benchmark timings (many iterations) of the
inner loops the experiments spend their time in — useful for tracking
performance regressions of the library itself, orthogonal to the
scientific tables.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import bench_scale
from repro.baselines.exact import solve_exact
from repro.core.proportional import ProportionalRun
from repro.core.sampled import SampledRun
from repro.graphs.arboricity import core_numbers
from repro.graphs.generators import union_of_forests
from repro.rounding.sampling import round_once
from repro.core.local_driver import solve_fractional_fixed_tau

_N = {"smoke": 200, "normal": 2000, "full": 20000}[bench_scale()]


@pytest.fixture(scope="module")
def instance():
    return union_of_forests(_N, _N, 4, capacity=2, seed=0)


def test_kernel_proportional_round(benchmark, instance):
    """One vectorized Algorithm-1 round (the O(m) inner loop)."""
    run = ProportionalRun(instance.graph, instance.capacities, 0.1)
    run.step()
    benchmark(run.step)
    assert run.rounds_completed > 1


def test_kernel_sampled_phase(benchmark, instance):
    """One Algorithm-2 phase (grouping + sampling + B rounds)."""
    run = SampledRun(
        instance.graph, instance.capacities, 0.25, block=3, sample_budget=16,
        sampler="fast", seed=0, record_estimates=False,
    )
    benchmark.pedantic(run.run_phase, rounds=3, iterations=1)
    assert run.phases_completed >= 3


def test_kernel_degeneracy(benchmark, instance):
    ea, eb = instance.graph.undirected_edges()
    n = instance.graph.n_vertices
    result = benchmark(lambda: int(core_numbers(n, ea, eb).max()))
    assert result >= 1


def test_kernel_exact_optimum(benchmark, instance):
    """The Dinic OPT oracle on the benchmark instance."""
    result = benchmark.pedantic(
        lambda: solve_exact(instance.graph, instance.capacities).value,
        rounds=1,
        iterations=1,
    )
    assert result > 0


def test_kernel_rounding(benchmark, instance):
    frac = solve_fractional_fixed_tau(instance, 0.25).allocation
    out = benchmark(
        lambda: round_once(instance.graph, instance.capacities, frac, seed=1).size
    )
    assert out >= 0
