"""Micro-benchmarks of the computational kernels.

These are classical pytest-benchmark timings (many iterations) of the
inner loops the experiments spend their time in — useful for tracking
performance regressions of the library itself, orthogonal to the
scientific tables.

The kernel-backend section benchmarks the shared round kernel
(DESIGN.md §6/§11) under every registered backend.  Run this module as
a script to regenerate ``BENCH_kernels.json`` at the repo root::

    PYTHONPATH=src python benchmarks/bench_kernels.py [--scale full]

The JSON records, per size, round-kernel timings for the reference
backend (operation-identical to the seed implementation), the
optimized backend, and the fused C ``native`` backend (skipped with a
recorded reason on hosts without a compiler); a per-primitive
breakdown (gather / softmax / reduce / scatter vs. the fused round) on
the largest instance; and a ``solve_allocation_many`` batch timing in
the serving shape — every instance carries its **own deserialized
copy** of the same graph, so the batch's structural workspace adoption
is what is measured, not object-identity caching.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

try:  # pytest-benchmark path (optional; the script path needs neither)
    import pytest
except ImportError:  # pragma: no cover - script-only environments
    pytest = None

if not __package__:  # invoked as a script: self-contained path setup
    _root = Path(__file__).resolve().parents[1]
    sys.path.insert(0, str(_root))          # for benchmarks._scale
    sys.path.insert(0, str(_root / "src"))  # for repro (no PYTHONPATH needed)
from benchmarks._scale import bench_scale, bench_script_main
from repro.baselines.exact import solve_exact
from repro.core.local_driver import solve_fractional_fixed_tau
from repro.core.pipeline import solve_allocation, solve_allocation_many
from repro.core.proportional import ProportionalRun
from repro.core.sampled import SampledRun
from repro.graphs.arboricity import core_numbers
from repro.graphs.generators import union_of_forests
from repro.kernels import backend_availability, use_backend, workspace_for
from repro.rounding.sampling import round_once

_SIZES = {"smoke": [200], "normal": [200, 2000], "full": [200, 2000, 20000]}
_N = _SIZES[bench_scale()][-1]  # pytest path benchmarks the scale's largest size


if pytest is not None:

    @pytest.fixture(scope="module")
    def instance():
        return union_of_forests(_N, _N, 4, capacity=2, seed=0)

    def test_kernel_proportional_round(benchmark, instance):
        """One vectorized Algorithm-1 round (the O(m) inner loop)."""
        run = ProportionalRun(instance.graph, instance.capacities, 0.1)
        run.step()
        benchmark(run.step)
        assert run.rounds_completed > 1

    @pytest.mark.parametrize("backend", ["reference", "optimized", "native"])
    def test_kernel_round_by_backend(benchmark, instance, backend):
        """The round kernel under each registered backend."""
        reason = backend_availability(backend).get(backend)
        if reason is not None:
            pytest.skip(f"backend {backend!r} unavailable: {reason}")
        with use_backend(backend):
            run = ProportionalRun(instance.graph, instance.capacities, 0.1)
            run.step()
            benchmark(run.step)
        assert run.rounds_completed > 1

    def test_kernel_sampled_phase(benchmark, instance):
        """One Algorithm-2 phase (grouping + sampling + B rounds)."""
        run = SampledRun(
            instance.graph, instance.capacities, 0.25, block=3, sample_budget=16,
            sampler="fast", seed=0, record_estimates=False,
        )
        benchmark.pedantic(run.run_phase, rounds=3, iterations=1)
        assert run.phases_completed >= 3

    def test_kernel_degeneracy(benchmark, instance):
        ea, eb = instance.graph.undirected_edges()
        n = instance.graph.n_vertices
        result = benchmark(lambda: int(core_numbers(n, ea, eb).max()))
        assert result >= 1

    def test_kernel_exact_optimum(benchmark, instance):
        """The Dinic OPT oracle on the benchmark instance."""
        result = benchmark.pedantic(
            lambda: solve_exact(instance.graph, instance.capacities).value,
            rounds=1,
            iterations=1,
        )
        assert result > 0

    def test_kernel_rounding(benchmark, instance):
        frac = solve_fractional_fixed_tau(instance, 0.25).allocation
        out = benchmark(
            lambda: round_once(instance.graph, instance.capacities, frac, seed=1).size
        )
        assert out >= 0


# ----------------------------------------------------------------------
# Script mode: all registered backends → BENCH_kernels.json
# ----------------------------------------------------------------------
_BACKENDS = ("reference", "optimized", "native")


def _time_round_kernel(instance, backend: str, rounds: int) -> tuple[float, np.ndarray]:
    """Mean seconds per Algorithm-1 round plus the final β trajectory
    (returned so the harness can assert cross-backend parity)."""
    with use_backend(backend):
        run = ProportionalRun(instance.graph, instance.capacities, 0.1)
        run.step()  # warm caches / lazy layouts outside the timer
        t0 = time.perf_counter()
        for _ in range(rounds):
            run.step()
        elapsed = time.perf_counter() - t0
    return elapsed / rounds, run.beta_exp.copy()


def _time_batch(make_batch, backend: str, repeats: int = 5) -> float:
    """Best-of-``repeats`` batch wall time (min is the standard
    noise-robust estimator for short benchmarks).

    ``make_batch`` builds a **fresh** instance list per repeat — each
    instance with its own graph copy, the deserialized-request serving
    shape — so the timing includes exactly one structural workspace
    build plus adoption by the rest of the batch, never warm
    object-identity hits from a previous repeat.  Generator cost stays
    outside the timer.
    """
    best = float("inf")
    with use_backend(backend):
        for _ in range(repeats):
            instances = make_batch()
            t0 = time.perf_counter()
            solve_allocation_many(instances, 0.2, seed=0, boost=False)
            best = min(best, time.perf_counter() - t0)
    return best


def _time_batch_individual(make_batch, backend: str, repeats: int = 5) -> float:
    """Best-of-``repeats`` wall time for the *unbatched* shape: one
    :func:`solve_allocation` call per instance, each fresh graph copy
    building its own workspace — exactly what the batched path's
    structural adoption amortizes away.  Seeds mirror the batch path's
    per-position spawn so both shapes do identical solve work."""
    from repro.utils.rng import spawn

    best = float("inf")
    with use_backend(backend):
        for _ in range(repeats):
            instances = make_batch()
            streams = spawn(0, len(instances))
            t0 = time.perf_counter()
            for inst, stream in zip(instances, streams):
                solve_allocation(inst, 0.2, seed=stream, boost=False)
            best = min(best, time.perf_counter() - t0)
    return best


def _time_workspace_setup(batch_n: int, repeats: int = 20) -> dict:
    """Cold workspace build vs structural adoption, per graph copy.

    The deterministic micro-number behind the batch fix: building a
    fresh copy's workspace materializes ``slot_owner`` / ``reduceat``
    offsets on both CSR sides, while :func:`transplant_workspace`
    adopts the parent's layouts after one ``indptr`` equality check.
    """
    from repro.kernels import transplant_workspace, workspace_for

    def materialize(ws):
        for side in (ws.left, ws.right):
            side.slot_owner, side.reduce_starts, side.degrees  # noqa: B018

    parent_inst = union_of_forests(batch_n, batch_n, 3, capacity=2, seed=7)
    parent = workspace_for(parent_inst.graph)
    materialize(parent)

    build = float("inf")
    adopt = float("inf")
    for _ in range(repeats):
        fresh = union_of_forests(batch_n, batch_n, 3, capacity=2, seed=7)
        t0 = time.perf_counter()
        materialize(workspace_for(fresh.graph))
        build = min(build, time.perf_counter() - t0)

        fresh = union_of_forests(batch_n, batch_n, 3, capacity=2, seed=7)
        t0 = time.perf_counter()
        materialize(transplant_workspace(fresh.graph, parent))
        adopt = min(adopt, time.perf_counter() - t0)
    return {
        "build_ms_per_graph": round(build * 1e3, 4),
        "adopt_ms_per_graph": round(adopt * 1e3, 4),
        "setup_speedup": round(build / adopt, 1) if adopt > 0 else None,
    }


def _time_primitives(instance, backend: str, repeats: int = 200) -> dict:
    """Per-primitive breakdown of one round on ``instance``: the four
    composed primitives (gather / softmax / reduce / scatter) next to
    the backend's fused ``proportional_round``.  For the numpy
    backends fused ≈ the sum of the parts; for the native backend the
    fused C pass is the point of the comparison."""
    ws = workspace_for(instance.graph)
    scale = float(np.log1p(0.1))
    rng = np.random.default_rng(0)
    beta = rng.integers(0, 30, size=ws.n_right).astype(np.int64)
    with use_backend(backend) as be:
        e_slot = be.gather_as_float(beta, ws.left_adj, row_buf=ws.beta_f64)
        x = be.segment_softmax_shifted(
            e_slot.copy(), ws.left.indptr, scale, layout=ws.left
        )

        def _best(fn) -> float:
            fn()  # warm
            best = float("inf")
            for _ in range(repeats):
                t0 = time.perf_counter()
                fn()
                best = min(best, time.perf_counter() - t0)
            return best

        timings = {
            "gather": _best(
                lambda: be.gather_as_float(beta, ws.left_adj, row_buf=ws.beta_f64)
            ),
            "softmax": _best(
                lambda: be.segment_softmax_shifted(
                    e_slot, ws.left.indptr, scale, layout=ws.left
                )
            ),
            "reduce": _best(
                lambda: be.segment_sum(x, ws.left.indptr, layout=ws.left)
            ),
            "scatter": _best(
                lambda: be.scatter_add(ws.left_adj, weights=x, minlength=ws.n_right)
            ),
            "fused_round": _best(
                lambda: be.proportional_round(ws, beta, scale)
            ),
        }
    return {k: round(v * 1e3, 5) for k, v in timings.items()}


def run_backend_benchmarks(scale: str) -> dict:
    """Benchmark every registered backend; returns the
    BENCH_kernels.json payload.  Parity gates recording: the numpy
    backends must match bit-for-bit, and the native backend must land
    on the identical final integer β trajectory (its row sums differ
    from numpy's by ulps — DESIGN.md §11 — but the integer exponent
    dynamics must not)."""
    availability = backend_availability()
    usable = [b for b in _BACKENDS if availability.get(b) is None]
    # Recorded form: an explicit "available" marker instead of the
    # probe's None (which JSON would render as an ambiguous null).
    availability_recorded = {
        name: ("available" if reason is None else reason)
        for name, reason in availability.items()
    }

    sizes = _SIZES[scale]
    rounds = 40
    per_size = []
    for n in sizes:
        instance = union_of_forests(n, n, 4, capacity=2, seed=0)
        timings: dict[str, float] = {}
        betas: dict[str, np.ndarray] = {}
        for backend in usable:
            timings[backend], betas[backend] = _time_round_kernel(
                instance, backend, rounds
            )
        if not np.array_equal(betas["reference"], betas["optimized"]):
            raise RuntimeError(  # must survive python -O
                f"numpy backend parity violated on n={n}: refusing to record"
            )
        if "native" in betas and not np.array_equal(
            betas["native"], betas["reference"]
        ):
            raise RuntimeError(
                f"native β trajectory diverged on n={n}: refusing to record"
            )
        row = {
            "n_left": n,
            "n_right": n,
            "n_edges": instance.graph.n_edges,
            "rounds_timed": rounds,
            "reference_ms_per_round": round(timings["reference"] * 1e3, 4),
            "optimized_ms_per_round": round(timings["optimized"] * 1e3, 4),
            "native_ms_per_round": (
                round(timings["native"] * 1e3, 4) if "native" in timings else None
            ),
            "optimized_speedup": round(
                timings["reference"] / timings["optimized"], 3
            ),
            # legacy key: reference/optimized ratio, kept for diffability
            "speedup": round(timings["reference"] / timings["optimized"], 3),
        }
        if "native" in timings:
            row["native_speedup_vs_reference"] = round(
                timings["reference"] / timings["native"], 3
            )
            row["native_speedup_vs_optimized"] = round(
                timings["optimized"] / timings["native"], 3
            )
        per_size.append(row)

    largest_instance = union_of_forests(sizes[-1], sizes[-1], 4, capacity=2, seed=0)
    breakdown = {
        backend: _time_primitives(
            largest_instance, backend, repeats={"smoke": 50, "normal": 100, "full": 200}[scale]
        )
        for backend in usable
    }

    batch_n = {"smoke": 300, "normal": 800, "full": 1500}[scale]

    def make_batch():
        # Six fresh graph copies per repeat: the deserialized-request
        # shape (equal CSR structure, distinct objects, varying
        # capacities) that the batch path's structural adoption serves.
        return [
            union_of_forests(batch_n, batch_n, 3, capacity=2 + (i % 3), seed=7)
            for i in range(6)
        ]

    batch_timings = {b: _time_batch(make_batch, b) for b in usable}
    individual = _time_batch_individual(make_batch, "optimized")

    largest = per_size[-1]
    batch_section = {
        "batch_size": 6,
        "instance_n": batch_n,
        "shape": "distinct graph copies per instance (deserialized requests)",
        "reference_seconds": round(batch_timings["reference"], 4),
        "optimized_seconds": round(batch_timings["optimized"], 4),
        "native_seconds": (
            round(batch_timings["native"], 4) if "native" in batch_timings else None
        ),
        "speedup": round(
            batch_timings["reference"] / batch_timings["optimized"], 3
        ),
        # The number the batch entry point owns: batched vs one
        # solve_allocation call per instance on the same fresh copies
        # (default backend).  End-to-end batch time is dominated by
        # the backend-independent sampling/rounding/repair stages, so
        # cross-backend batch ratios hover near 1; this ratio isolates
        # what batching itself amortizes (structural workspace
        # adoption across equal-but-distinct graphs).
        "individual_seconds": round(individual, 4),
        "batched_vs_individual_speedup": round(
            individual / batch_timings["optimized"], 3
        ),
        # Deterministic micro-number for the adoption itself: per-graph
        # workspace setup, cold build vs transplant from a batch parent.
        "workspace_setup": _time_workspace_setup(batch_n),
    }
    if "native" in batch_timings:
        batch_section["native_speedup"] = round(
            batch_timings["reference"] / batch_timings["native"], 3
        )

    payload = {
        "benchmark": "round kernel: reference vs optimized vs native backend",
        "scale": scale,
        "backend_availability": availability_recorded,
        "round_kernel": per_size,
        "primitive_breakdown_ms": breakdown,
        "solve_allocation_many": batch_section,
        # Headline number: fused native C pass vs the seed-identical
        # reference backend, per round, on the largest instance.
        "largest_instance_speedup": largest.get(
            "native_speedup_vs_reference", largest["optimized_speedup"]
        ),
        "largest_instance_optimized_speedup": largest["optimized_speedup"],
        "optimized_beats_seed": largest["optimized_ms_per_round"]
        < largest["reference_ms_per_round"],
    }
    if "native_speedup_vs_optimized" in largest:
        payload["largest_instance_native_vs_optimized"] = largest[
            "native_speedup_vs_optimized"
        ]
    return payload


def main(argv=None) -> None:
    bench_script_main(
        run_backend_benchmarks, "BENCH_kernels.json",
        description=__doc__, scales=_SIZES, argv=argv,
    )


if __name__ == "__main__":
    main()
