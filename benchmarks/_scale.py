"""Benchmark scale selection and host CPU topology, importable
without pytest.

Shared by ``benchmarks/conftest.py`` (the pytest-benchmark path) and
the ``bench_*.py`` script modes.
"""

from __future__ import annotations

import argparse
import json
import os
import re
from pathlib import Path

__all__ = [
    "bench_scale",
    "cpu_info",
    "percentile",
    "stamp_payload",
    "write_bench_payload",
    "bench_script_main",
    "SCHEMA_VERSION",
]

# Version of the BENCH_*.json payload envelope: every payload carries
# ``schema_version`` + ``cpu`` (stamped by write_bench_payload) so
# downstream consumers (check_bench_floors, bench_trajectory) can
# reject formats they don't understand instead of misreading them.
SCHEMA_VERSION = 1

REPO_ROOT = Path(__file__).resolve().parents[1]


def bench_scale() -> str:
    scale = os.environ.get("REPRO_BENCH_SCALE", "normal")
    if scale not in ("smoke", "normal", "full"):
        raise ValueError(f"REPRO_BENCH_SCALE must be smoke/normal/full, got {scale!r}")
    return scale


def cpu_info() -> dict:
    """Logical and physical core counts of the host.

    Physical cores come from the Linux sysfs topology (unique
    ``(package, core_id)`` pairs); ``None`` where sysfs is absent
    (non-Linux, containers masking it).  Every BENCH_*.json payload
    records this so throughput/scaling numbers carry the hardware
    context needed to compare them across hosts.
    """
    logical = os.cpu_count()
    physical = None
    base = "/sys/devices/system/cpu"
    try:
        cores: set[tuple[str, str]] = set()
        for entry in os.listdir(base):
            if not re.fullmatch(r"cpu\d+", entry):
                continue
            topo = os.path.join(base, entry, "topology")
            with open(os.path.join(topo, "physical_package_id")) as f:
                package = f.read().strip()
            with open(os.path.join(topo, "core_id")) as f:
                core = f.read().strip()
            cores.add((package, core))
        physical = len(cores) or None
    except OSError:
        physical = None
    return {"logical_cores": logical, "physical_cores": physical}


def percentile(values, q: float) -> float:
    """The ``q``-th percentile (0–100) by linear interpolation —
    p50/p95 latency digests without a numpy dependency in the digest
    path."""
    data = sorted(float(v) for v in values)
    if not data:
        raise ValueError("percentile of an empty sequence")
    if len(data) == 1:
        return data[0]
    rank = (len(data) - 1) * q / 100.0
    low = int(rank)
    frac = rank - low
    if low + 1 >= len(data):
        return data[-1]
    return data[low] * (1.0 - frac) + data[low + 1] * frac


def stamp_payload(payload: dict) -> dict:
    """Stamp the uniform envelope keys into a bench payload in place.

    ``schema_version`` marks the payload format; ``cpu`` records the
    measuring host's topology.  Existing keys are left alone so a
    benchmark that records richer CPU context keeps it.
    """
    payload.setdefault("schema_version", SCHEMA_VERSION)
    payload.setdefault("cpu", cpu_info())
    return payload


def write_bench_payload(payload: dict, out, default_name: str) -> Path:
    """Stamp, write, and echo a bench payload.

    ``out=None`` targets ``<repo root>/<default_name>`` — the
    committed location every ``bench_*.py`` script-mode run updates.
    """
    payload = stamp_payload(payload)
    path = Path(out) if out else REPO_ROOT / default_name
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
    print(f"\nwrote {path}")
    return path


def bench_script_main(
    run,
    default_name: str,
    *,
    description: str | None = None,
    scales=("smoke", "normal", "full"),
    argv=None,
) -> None:
    """The shared ``--scale``/``--out`` script-mode entry point.

    Every ``bench_*.py`` script mode is the same four lines: parse the
    two flags, call the payload builder with the chosen scale, stamp
    the envelope, write to the repo root.  ``run`` is that builder —
    ``run(scale) -> dict``.
    """
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument(
        "--scale", choices=sorted(scales), default="full",
        help="workload scale to benchmark (default: full)",
    )
    parser.add_argument(
        "--out", default=None,
        help=f"output path (default: {default_name} at the repo root)",
    )
    args = parser.parse_args(argv)
    write_bench_payload(run(args.scale), args.out, default_name)
