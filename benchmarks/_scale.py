"""Benchmark scale selection and host CPU topology, importable
without pytest.

Shared by ``benchmarks/conftest.py`` (the pytest-benchmark path) and
the ``bench_*.py`` script modes.
"""

from __future__ import annotations

import os
import re

__all__ = ["bench_scale", "cpu_info", "percentile"]


def bench_scale() -> str:
    scale = os.environ.get("REPRO_BENCH_SCALE", "normal")
    if scale not in ("smoke", "normal", "full"):
        raise ValueError(f"REPRO_BENCH_SCALE must be smoke/normal/full, got {scale!r}")
    return scale


def cpu_info() -> dict:
    """Logical and physical core counts of the host.

    Physical cores come from the Linux sysfs topology (unique
    ``(package, core_id)`` pairs); ``None`` where sysfs is absent
    (non-Linux, containers masking it).  Every BENCH_*.json payload
    records this so throughput/scaling numbers carry the hardware
    context needed to compare them across hosts.
    """
    logical = os.cpu_count()
    physical = None
    base = "/sys/devices/system/cpu"
    try:
        cores: set[tuple[str, str]] = set()
        for entry in os.listdir(base):
            if not re.fullmatch(r"cpu\d+", entry):
                continue
            topo = os.path.join(base, entry, "topology")
            with open(os.path.join(topo, "physical_package_id")) as f:
                package = f.read().strip()
            with open(os.path.join(topo, "core_id")) as f:
                core = f.read().strip()
            cores.add((package, core))
        physical = len(cores) or None
    except OSError:
        physical = None
    return {"logical_cores": logical, "physical_cores": physical}


def percentile(values, q: float) -> float:
    """The ``q``-th percentile (0–100) by linear interpolation —
    p50/p95 latency digests without a numpy dependency in the digest
    path."""
    data = sorted(float(v) for v in values)
    if not data:
        raise ValueError("percentile of an empty sequence")
    if len(data) == 1:
        return data[0]
    rank = (len(data) - 1) * q / 100.0
    low = int(rank)
    frac = rank - low
    if low + 1 >= len(data):
        return data[-1]
    return data[low] * (1.0 - frac) + data[low + 1] * frac
