"""Benchmark scale selection, importable without pytest.

Shared by ``benchmarks/conftest.py`` (the pytest-benchmark path) and
``benchmarks/bench_kernels.py`` script mode.
"""

from __future__ import annotations

import os

__all__ = ["bench_scale"]


def bench_scale() -> str:
    scale = os.environ.get("REPRO_BENCH_SCALE", "normal")
    if scale not in ("smoke", "normal", "full"):
        raise ValueError(f"REPRO_BENCH_SCALE must be smoke/normal/full, got {scale!r}")
    return scale
