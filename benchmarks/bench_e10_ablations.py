"""E10 — ablations: threshold width, estimator form, phase length."""

from benchmarks.conftest import run_experiment_once


def test_e10_ablations(benchmark, scale):
    table = run_experiment_once(benchmark, "e10", scale)
    thr = [r for r in table.rows if r["ablation"] == "threshold_k"]
    # Theorem 16: every constant threshold in [1/4, 4] stays within its
    # predicted bound.
    assert all(r["ratio"] <= r["predicted_bound"] + 1e-9 for r in thr)
    # Phase-length ablation present with the spread column increasing.
    phase = [r for r in table.rows if r["ablation"] == "phase_length_B"]
    spreads = [r["spread_bound"] for r in phase]
    assert spreads == sorted(spreads)
    est = {r["setting"] for r in table.rows if r["ablation"] == "estimator"}
    assert est == {"stratified", "pooled"}
