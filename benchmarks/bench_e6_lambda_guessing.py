"""E6 — λ-guessing costs only a constant factor (§3.2.2)."""

from benchmarks.conftest import run_experiment_once


def test_e6_lambda_guessing(benchmark, scale):
    table = run_experiment_once(benchmark, "e6", scale)
    for row in table.rows:
        # The §3.2.2 claim: λ-oblivious schedules stay within the
        # worst-case constant of the known-λ budget.  (Eager per-phase
        # testing trades 2 test rounds per phase against earlier
        # stopping, so neither cadence dominates the other — both must
        # simply respect the bound.)
        cap = row["model_worstcase_overhead"] * row["known_budget_rounds"]
        assert row["guessed_rounds"] <= cap
        assert row["guessed_eager_rounds"] <= cap
        # Certificate-stopped known-λ is never slower than its budget.
        assert row["known_cert_rounds"] <= row["known_budget_rounds"]
    # The measured overhead stays bounded across the λ sweep.
    assert max(table.column("overhead_vs_budget")) <= 6.0
