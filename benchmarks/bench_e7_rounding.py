"""E7 — §6 rounding: the E[|M|] ≥ wt/9 bound, best-of, and repair."""

from benchmarks.conftest import run_experiment_once


def test_e7_rounding(benchmark, scale):
    table = run_experiment_once(benchmark, "e7", scale)
    # The §6 expectation bound holds (within Monte-Carlo error) per family.
    assert all(table.column("bound_holds"))
    for row in table.rows:
        # Best-of-copies beats the one-shot mean; repair only grows it.
        assert row["best_of_copies"] >= row["mean_one_shot"] - 1e-9
        assert row["repaired"] >= row["best_of_copies"]
        # Repaired allocations are maximal ⇒ at worst a 2-approximation.
        assert row["repaired_ratio"] <= 2.0 + 1e-9
