"""E4 — sampling concentration vs budget (Lemma 11/12)."""

from benchmarks.conftest import run_experiment_once


def test_e4_sampling_concentration(benchmark, scale):
    table = run_experiment_once(benchmark, "e4", scale)
    rows = table.rows
    # Error shrinks as the budget grows (compare first vs last finite row).
    finite = [r for r in rows if not r["theoretical"]]
    assert finite[0]["alloc_err_q99"] >= finite[-1]["alloc_err_q99"]
    # At the theoretical budget the estimates are exact.
    theoretical = [r for r in rows if r["theoretical"]]
    assert theoretical, "theoretical-budget row missing"
    assert theoretical[0]["beta_err_q99"] == 0
    assert theoretical[0]["alloc_err_q99"] == 0
    assert theoretical[0]["beta_beyond_eps12"] == 0
