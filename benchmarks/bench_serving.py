"""Serving-layer throughput: cold loop vs resident session vs batch.

The serving shape (DESIGN.md §8): one resident graph answering a
stream of solve requests — capacity updates, ε tweaks, fresh seeds.
Three execution modes over the *same* request stream:

* ``cold_loop``   — today's path: one full :func:`solve_allocation`
  per request, every solve restarting the dynamics from ``b ≡ 0``;
* ``session``     — one :class:`~repro.serve.AllocationSession`
  solving the stream serially, each solve warm-started from the last
  converged exponent vector;
* ``batch``       — the same session serving the stream through
  :func:`~repro.serve.solve_batch` on a thread pool.

The workload graph is the paper's Theorem-9 Case-2 stress family
(``slow_spread``), where convergence genuinely costs Θ(log λ) rounds —
the regime the warm start is for.  Easy instances converge in O(1)
rounds cold and serve fast either way; this benchmark measures the
hard-graph serving story.

Run this module as a script to regenerate ``BENCH_serving.json`` at
the repo root::

    PYTHONPATH=src python benchmarks/bench_serving.py [--scale full]

The payload records per-mode wall time and requests/sec, the
session-vs-cold speedup (the acceptance bar is ≥ 2×), and the round
counts that explain it.  Warm-path certificate validity is asserted
inline; cold-path bit-parity is asserted in ``tests/test_serve.py``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

try:  # pytest-benchmark path (optional; the script path needs neither)
    import pytest
except ImportError:  # pragma: no cover - script-only environments
    pytest = None

if not __package__:  # invoked as a script: self-contained path setup
    _root = Path(__file__).resolve().parents[1]
    sys.path.insert(0, str(_root))          # for benchmarks._scale
    sys.path.insert(0, str(_root / "src"))  # for repro (no PYTHONPATH needed)
from benchmarks._scale import bench_scale, bench_script_main, cpu_info, percentile
from repro.core.pipeline import solve_allocation
from repro.graphs.generators import slow_spread_instance
from repro.serve import AllocationSession, SolveRequest, solve_stream
from repro.utils.rng import spawn

# Workload sizes: (core_right, width, n_requests, thread workers).
_SIZES = {
    "smoke": (12, 16, 6, 2),
    "normal": (24, 30, 10, 4),
    "full": (32, 40, 16, 4),
}
_EPSILON = 0.1


def build_workload(scale: str):
    """The shared-graph request stream: capacity updates + ε tweaks."""
    core, width, n_requests, workers = _SIZES[scale]
    instance = slow_spread_instance(core, width=width)
    requests = []
    n_right = instance.n_right
    for i in range(n_requests):
        # Rotate small capacity bumps over the fringe (ids >= core);
        # every third request also sweeps ε — the request mix a session
        # actually sees.
        fringe = core + (7 * i) % (n_right - core)
        updates = {fringe: 2, core + (13 * i) % (n_right - core): 2}
        epsilon = 0.12 if i % 3 == 2 else None
        requests.append(
            SolveRequest(capacity_updates=updates, epsilon=epsilon)
        )
    return instance, requests, workers


def _cold_loop(instance, requests, seed) -> tuple[list, list]:
    """Today's path: full cold pipeline per request."""
    streams = spawn(seed, len(requests))
    session = AllocationSession(instance, epsilon=_EPSILON, boost=False)
    results, latencies = [], []
    for request, stream in zip(requests, streams):
        # solve_detached with no warm base is bit-identical to
        # solve_allocation on the request's instance (tests assert
        # this); routing through it keeps override handling uniform.
        t0 = time.perf_counter()
        results.append(
            session.solve_detached(request, seed=stream, initial_exponents=None)
        )
        latencies.append(time.perf_counter() - t0)
    return results, latencies

def _session_serial(instance, requests, seed):
    session = AllocationSession(instance, epsilon=_EPSILON, boost=False)
    streams = spawn(seed, len(requests))
    results, latencies = [], []
    for request, stream in zip(requests, streams):
        t0 = time.perf_counter()
        results.append(session.solve(request, seed=stream))
        latencies.append(time.perf_counter() - t0)
    return session, results, latencies


def _latency_digest(latencies) -> dict:
    """The p50/p95 shape BENCH_sharding.json also records, so the two
    payloads compare request-for-request."""
    return {
        "p50_ms": round(percentile(latencies, 50) * 1000.0, 3),
        "p95_ms": round(percentile(latencies, 95) * 1000.0, 3),
    }


def _session_batch(instance, requests, seed, workers) -> tuple[AllocationSession, list]:
    """Prime with the stream's first request, batch the rest warm."""
    session = AllocationSession(instance, epsilon=_EPSILON, boost=False)
    results = solve_stream(session, requests, seed=seed, max_workers=workers)
    return session, results


if pytest is not None:

    @pytest.fixture(scope="module")
    def workload():
        return build_workload(bench_scale())

    def test_serving_cold_loop(benchmark, workload):
        instance, requests, _ = workload
        results, _ = benchmark.pedantic(
            lambda: _cold_loop(instance, requests, seed=0), rounds=1, iterations=1
        )
        assert len(results) == len(requests)

    def test_serving_session(benchmark, workload):
        instance, requests, _ = workload
        _, results, _ = benchmark.pedantic(
            lambda: _session_serial(instance, requests, seed=0),
            rounds=1, iterations=1,
        )
        assert all(r.mpc.certificate.satisfied for r in results)

    def test_serving_batch(benchmark, workload):
        instance, requests, workers = workload
        _, results = benchmark.pedantic(
            lambda: _session_batch(instance, requests, seed=0, workers=workers),
            rounds=1, iterations=1,
        )
        assert len(results) == len(requests)


# ----------------------------------------------------------------------
# Script mode: cold vs session vs batch → BENCH_serving.json
# ----------------------------------------------------------------------
def run_serving_benchmarks(scale: str) -> dict:
    instance, requests, workers = build_workload(scale)
    n = len(requests)

    t0 = time.perf_counter()
    cold_results, cold_latencies = _cold_loop(instance, requests, seed=0)
    cold_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    session, warm_results, warm_latencies = _session_serial(
        instance, requests, seed=0
    )
    session_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    _, batch_results = _session_batch(instance, requests, seed=0, workers=workers)
    batch_seconds = time.perf_counter() - t0

    # Validity: every mode satisfied the λ-free certificate on every
    # request (the warm-path contract; solve_detached/solve also
    # re-check integral feasibility on warm solves).
    for results in (cold_results, warm_results, batch_results):
        if not all(r.mpc.certificate is not None and r.mpc.certificate.satisfied
                   for r in results):
            raise RuntimeError("a serving mode ended without a certificate")

    cold_rounds = [r.mpc.local_rounds for r in cold_results]
    warm_rounds = [r.mpc.local_rounds for r in warm_results]
    session_speedup = cold_seconds / session_seconds
    payload = {
        "benchmark": "serving: cold loop vs resident session vs parallel batch",
        "scale": scale,
        "workload": {
            "family": instance.name,
            "n_left": instance.n_left,
            "n_right": instance.n_right,
            "n_edges": instance.n_edges,
            "epsilon": _EPSILON,
            "n_requests": n,
            "batch_workers": workers,
            # Batch-vs-session scaling is bounded by the host: with one
            # CPU the thread pool can only interleave, not overlap.
            # BENCH_sharding.json records the same cpu shape, so the
            # two curves are comparable host-for-host.
            "cpu_count": os.cpu_count(),
            "cpu": cpu_info(),
        },
        "cold_loop": {
            "seconds": round(cold_seconds, 4),
            "requests_per_second": round(n / cold_seconds, 3),
            "local_rounds": cold_rounds,
            "latency": _latency_digest(cold_latencies),
        },
        "session": {
            "seconds": round(session_seconds, 4),
            "requests_per_second": round(n / session_seconds, 3),
            "local_rounds": warm_rounds,
            "warm_solves": session.stats.warm_solves,
            "cold_solves": session.stats.cold_solves,
            "latency": _latency_digest(warm_latencies),
        },
        "batch": {
            "seconds": round(batch_seconds, 4),
            "requests_per_second": round(n / batch_seconds, 3),
            "primed_then_batched": [1, n - 1],
            # Per-request latency inside the thread pool is not
            # individually observable from outside solve_stream;
            # the sharded bench records worker-side latencies instead.
            "latency": None,
        },
        "session_speedup_over_cold": round(session_speedup, 3),
        "batch_speedup_over_cold": round(cold_seconds / batch_seconds, 3),
        "meets_2x_bar": session_speedup >= 2.0,
    }
    return payload


def main(argv=None) -> None:
    bench_script_main(
        run_serving_benchmarks, "BENCH_serving.json",
        description=__doc__, scales=_SIZES, argv=argv,
    )


if __name__ == "__main__":
    main()
