"""Durable-session service: latency under concurrent load + restart warmth.

Two measurements over the :class:`~repro.serve.AllocationService`
front end (DESIGN.md §14), both on the paper's Theorem-9 Case-2
stress family (``slow_spread``) where convergence genuinely costs
Θ(log λ) rounds:

* ``concurrent_load`` — N socket clients issue capacity-update solve
  requests against one resident instance simultaneously; per-request
  wall latency is recorded client-side and digested to p50/p95/p99.
  The single solver thread serializes the heavy work, so the tail
  latencies show the queueing the admission/coalescing layer manages.
* ``restart_warmth`` — the crash-recovery bar: solve once on a fresh
  service (cold, full convergence budget), let checkpoint-on-commit
  persist the session, hard-stop the service, start a new one against
  the same store, and time the first post-restore solve.  The restored
  session re-verifies the λ-free certificate before being declared
  warm, so the first request warm-starts — the acceptance bar is a
  ≥3x speedup over the cold first solve.

Run as a script to regenerate ``BENCH_service.json`` at the repo
root::

    PYTHONPATH=src python benchmarks/bench_service.py [--scale full]
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
import tempfile
import time
from pathlib import Path

if not __package__:  # invoked as a script: self-contained path setup
    _root = Path(__file__).resolve().parents[1]
    sys.path.insert(0, str(_root))          # for benchmarks._scale
    sys.path.insert(0, str(_root / "src"))  # for repro (no PYTHONPATH needed)
from benchmarks._scale import bench_scale, bench_script_main, cpu_info, percentile
from repro.graphs.generators import slow_spread_instance
from repro.serve.service import AllocationService, ServiceClient
from repro.serve.shm import instance_hash

# Workload sizes: (core_right, width, n_clients, requests_per_client).
_SIZES = {
    "smoke": (12, 16, 3, 3),
    "normal": (24, 30, 4, 5),
    "full": (32, 40, 6, 6),
}
_EPSILON = 0.1


def build_workload(scale: str):
    core, width, n_clients, per_client = _SIZES[scale]
    instance = slow_spread_instance(core, width=width)
    return instance, core, n_clients, per_client


def _session_kwargs() -> dict:
    return {"epsilon": _EPSILON, "boost": False}


def run_concurrent_load(scale: str) -> dict:
    """N concurrent socket clients on one resident instance."""
    instance, core, n_clients, per_client = build_workload(scale)
    n_right = instance.n_right
    store = tempfile.mkdtemp(prefix="bench_service_load_")

    async def _run():
        service = AllocationService(
            store, max_sessions=2, seed=0, session_kwargs=_session_kwargs()
        )
        await service.start()
        h = instance_hash(instance)
        sock = service.socket_path

        def client(idx: int) -> list[float]:
            latencies = []
            with ServiceClient(sock) as c:
                c.open(instance)
                for j in range(per_client):
                    # Distinct per-client fringe bumps (no coalescing):
                    # this measures queueing latency, not dedup.
                    fringe = core + (7 * idx + 13 * j) % (n_right - core)
                    t0 = time.perf_counter()
                    r = c.solve(
                        h, capacity_updates={str(fringe): 2}, seed=100 * idx + j
                    )
                    latencies.append(time.perf_counter() - t0)
                    assert r["ok"], r
            return latencies

        loop = asyncio.get_running_loop()
        t0 = time.perf_counter()
        per_client_lat = await asyncio.gather(
            *(loop.run_in_executor(None, client, i) for i in range(n_clients))
        )
        wall = time.perf_counter() - t0
        counters = service.counters.as_dict()
        await service.stop()
        return [lat for lats in per_client_lat for lat in lats], wall, counters

    latencies, wall, counters = asyncio.run(_run())
    n = len(latencies)
    return {
        "n_clients": n_clients,
        "requests_per_client": per_client,
        "n_requests": n,
        "seconds": round(wall, 4),
        "requests_per_second": round(n / wall, 3),
        "latency": {
            "p50_ms": round(percentile(latencies, 50) * 1000.0, 3),
            "p95_ms": round(percentile(latencies, 95) * 1000.0, 3),
            "p99_ms": round(percentile(latencies, 99) * 1000.0, 3),
        },
        "counters": counters,
    }


def run_restart_warmth(scale: str) -> dict:
    """Cold first solve vs first solve after restart-from-snapshot."""
    instance, core, _, _ = build_workload(scale)
    store = tempfile.mkdtemp(prefix="bench_service_warmth_")
    h = instance_hash(instance)

    async def _generation(expect_restored: bool) -> tuple[float, bool]:
        service = AllocationService(
            store,
            max_sessions=2,
            seed=0,
            checkpoint_on_commit=True,
            session_kwargs=_session_kwargs(),
        )
        await service.start()
        sock = service.socket_path
        loop = asyncio.get_running_loop()

        def first_solve() -> tuple[float, bool]:
            with ServiceClient(sock) as c:
                opened = c.open(instance)
                assert opened["warm"] == expect_restored, opened
                t0 = time.perf_counter()
                r = c.solve(h, seed=7)
                dt = time.perf_counter() - t0
                assert r["ok"], r
                return dt, bool(r["warm_start"])

        dt, warm = await loop.run_in_executor(None, first_solve)
        # stop() checkpoints dirty residents — the "deploy restart"
        # path; the SIGKILL path is exercised by the recovery tests
        # and rides on the same checkpoint-on-commit snapshots.
        await service.stop()
        return dt, warm

    cold_seconds, cold_warm = asyncio.run(_generation(expect_restored=False))
    restored_seconds, restored_warm = asyncio.run(_generation(expect_restored=True))
    assert not cold_warm and restored_warm
    speedup = cold_seconds / restored_seconds
    return {
        "cold_first_solve_ms": round(cold_seconds * 1000.0, 3),
        "restored_first_solve_ms": round(restored_seconds * 1000.0, 3),
        "restored_warm_start": restored_warm,
        "restart_speedup": round(speedup, 3),
        "meets_3x_bar": speedup >= 3.0,
    }


def run_service_benchmarks(scale: str) -> dict:
    instance, _, _, _ = build_workload(scale)
    load = run_concurrent_load(scale)
    warmth = run_restart_warmth(scale)
    return {
        "benchmark": "durable-session service: concurrent load + restart warmth",
        "scale": scale,
        "workload": {
            "family": instance.name,
            "n_left": instance.n_left,
            "n_right": instance.n_right,
            "n_edges": instance.n_edges,
            "epsilon": _EPSILON,
            "cpu_count": os.cpu_count(),
            "cpu": cpu_info(),
        },
        "concurrent_load": load,
        "restart_warmth": warmth,
    }


def main(argv=None) -> None:
    bench_script_main(
        run_service_benchmarks, "BENCH_service.json",
        description=__doc__, scales=_SIZES, argv=argv,
    )


if __name__ == "__main__":
    main()
