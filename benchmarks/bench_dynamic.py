"""Dynamic serving: warm incremental re-solves vs cold re-solves.

The dynamic-instance story (DESIGN.md §9): a resident
:class:`~repro.dynamic.DynamicSession` replays a delta stream —
capacity drift, client churn, maintenance drains — remapping the
retained converged β exponents across every delta so each re-solve
warm-starts.  This benchmark measures that against the alternative a
static pipeline offers: apply the same delta, re-solve the new
instance cold from ``b ≡ 0``.

One workload per scenario class (:mod:`repro.dynamic.scenarios`):
diurnal capacity waves, flash-crowd arrivals, rolling maintenance
drains, adversarial churn — all over the paper's Theorem-9 Case-2
stress family (``slow_spread``), where cold convergence genuinely
costs Θ(log λ) rounds.  The diurnal workload doubles the capacity
profile so the wave has room to move (unit capacities round every wave
factor back to 1) while keeping the core over-subscribed.

Both measured paths run fully validated: the warm path asserts the
λ-free certificate and re-checks Definition-5 integral feasibility on
every solve (the ``AllocationSession`` warm contract), and the cold
path performs the same two assertions explicitly per step.  A warm
re-solve is faster, never less checked.

Run as a script to regenerate ``BENCH_dynamic.json`` at the repo
root::

    PYTHONPATH=src python benchmarks/bench_dynamic.py [--scale full]

The payload records per-scenario wall time, per-step round counts, and
the warm-over-cold speedup; the acceptance bar is ≥ 3× on the diurnal
and flash-crowd scenarios.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

try:  # pytest-benchmark path (optional; the script path needs neither)
    import pytest
except ImportError:  # pragma: no cover - script-only environments
    pytest = None

if not __package__:  # invoked as a script: self-contained path setup
    _root = Path(__file__).resolve().parents[1]
    sys.path.insert(0, str(_root))          # for benchmarks._scale
    sys.path.insert(0, str(_root / "src"))  # for repro (no PYTHONPATH needed)
from benchmarks._scale import bench_scale, bench_script_main
from repro.core.pipeline import solve_allocation
from repro.dynamic import SCENARIOS, DynamicSession, apply_delta
from repro.graphs.generators import slow_spread_instance
from repro.serve import replay_stream
from repro.serve.session import check_integral_feasible
from repro.utils.rng import spawn

# Workload sizes: (core_right, width, steps).
_SIZES = {
    "smoke": (10, 8, 5),
    "normal": (20, 16, 8),
    "full": (24, 24, 10),
}
_EPSILON = 0.1
_SPEEDUP_BAR = 3.0


def build_workloads(scale: str):
    """One (instance, delta stream) per scenario class."""
    core, width, steps = _SIZES[scale]
    base = slow_spread_instance(core, width=width)
    wave_base = base.with_capacities(base.capacities * 2, suffix="x2")
    workloads = {}
    for name in sorted(SCENARIOS):
        instance = wave_base if name == "diurnal_wave" else base
        workloads[name] = (instance, SCENARIOS[name](instance, steps, seed=0))
    return workloads, steps


def _warm_replay(instance, deltas, seed):
    """The dynamic path: prime once, replay warm.  Certificate and
    Definition-5 assertions run inside every warm solve."""
    dynamic = DynamicSession(instance, epsilon=_EPSILON, boost=False)
    dynamic.resolve(seed=seed)  # prime (cold, untimed by the caller)
    t0 = time.perf_counter()
    steps = replay_stream(dynamic, deltas, seed=seed)
    seconds = time.perf_counter() - t0
    if not all(s.certified for s in steps):
        raise RuntimeError("a warm re-solve ended without a certificate")
    return dynamic, steps, seconds


def _cold_replay(instance, deltas, seed):
    """The static alternative: apply the same deltas, re-solve cold,
    with the same two assertions applied explicitly per step."""
    streams = spawn(seed, len(deltas))
    current = instance
    results = []
    t0 = time.perf_counter()
    for delta, stream in zip(deltas, streams):
        current = apply_delta(current, delta).instance
        result = solve_allocation(
            current, _EPSILON, seed=stream, boost=False
        )
        cert = result.mpc.certificate
        if cert is None or not cert.satisfied:
            raise RuntimeError("a cold re-solve ended without a certificate")
        check_integral_feasible(current, result.edge_mask)
        results.append(result)
    seconds = time.perf_counter() - t0
    return results, seconds


if pytest is not None:

    @pytest.fixture(scope="module")
    def workloads():
        return build_workloads(bench_scale())

    @pytest.mark.parametrize("scenario", sorted(SCENARIOS))
    def test_dynamic_warm_replay(benchmark, workloads, scenario):
        instance, deltas = workloads[0][scenario]
        _, steps, _ = benchmark.pedantic(
            lambda: _warm_replay(instance, deltas, seed=0),
            rounds=1, iterations=1,
        )
        assert len(steps) == len(deltas)

    @pytest.mark.parametrize("scenario", sorted(SCENARIOS))
    def test_dynamic_cold_replay(benchmark, workloads, scenario):
        instance, deltas = workloads[0][scenario]
        results, _ = benchmark.pedantic(
            lambda: _cold_replay(instance, deltas, seed=0),
            rounds=1, iterations=1,
        )
        assert len(results) == len(deltas)


# ----------------------------------------------------------------------
# Script mode: warm vs cold per scenario → BENCH_dynamic.json
# ----------------------------------------------------------------------
def run_dynamic_benchmarks(scale: str) -> dict:
    workloads, steps = build_workloads(scale)
    scenarios = {}
    for name, (instance, deltas) in workloads.items():
        dynamic, warm_steps, warm_seconds = _warm_replay(instance, deltas, seed=0)
        cold_results, cold_seconds = _cold_replay(instance, deltas, seed=0)
        speedup = cold_seconds / warm_seconds
        scenarios[name] = {
            "workload": {
                "family": instance.name,
                "n_left": instance.n_left,
                "n_right": instance.n_right,
                "n_edges": instance.n_edges,
                "steps": len(deltas),
            },
            "warm": {
                "seconds": round(warm_seconds, 4),
                "local_rounds": [s.local_rounds for s in warm_steps],
                "warm_steps": sum(1 for s in warm_steps if s.warm_start),
                "structural_rebuilds": dynamic.stats.structural_rebuilds,
                "capacity_patches": dynamic.stats.capacity_patches,
            },
            "cold": {
                "seconds": round(cold_seconds, 4),
                "local_rounds": [r.mpc.local_rounds for r in cold_results],
            },
            "warm_speedup_over_cold": round(speedup, 3),
        }
    bar = {
        name: scenarios[name]["warm_speedup_over_cold"] >= _SPEEDUP_BAR
        for name in ("diurnal_wave", "flash_crowd")
    }
    return {
        "benchmark": "dynamic instances: warm incremental re-solve vs cold re-solve",
        "scale": scale,
        "epsilon": _EPSILON,
        "validation": "certificate + Definition-5 feasibility asserted per "
                      "step in both measured paths",
        "scenarios": scenarios,
        "speedup_bar": _SPEEDUP_BAR,
        "meets_3x_bar": bar,
    }


def main(argv=None) -> None:
    bench_script_main(
        run_dynamic_benchmarks, "BENCH_dynamic.json",
        description=__doc__, scales=_SIZES, argv=argv,
    )


if __name__ == "__main__":
    main()
