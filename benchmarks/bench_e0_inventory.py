"""E0 — the workload inventory table (provenance for every experiment)."""

from benchmarks.conftest import run_experiment_once


def test_e0_inventory(benchmark, scale):
    table = run_experiment_once(benchmark, "e0", scale)
    assert len(table.rows) >= 10
    # The generator certificates hold wherever exact λ was computed.
    checked = [r for r in table.rows if "certificate_ok" in r]
    assert checked, "no instance small enough for exact arboricity"
    assert all(r["certificate_ok"] for r in checked)
    assert all(r.get("sandwich_ok", True) for r in checked)
