"""E5 — MPC rounds and space vs arboricity (Theorem 3/10)."""

from benchmarks.conftest import run_experiment_once


def test_e5_mpc_rounds(benchmark, scale):
    table = run_experiment_once(benchmark, "e5", scale)
    sim = [r for r in table.rows if r["mode"] == "simulate"]
    # Who wins: measured MPC rounds beat the AZM18 bill at every λ.
    assert all(r["mpc_rounds"] < r["azm18_rounds"] for r in sim)
    # The driver can stop early via the certificate, never late.
    assert all(r["mpc_rounds"] <= r["model_predicted"] for r in sim)
    # Faithful row: space budget respected.
    faithful = [r for r in table.rows if r["mode"] == "faithful"]
    assert faithful
    assert faithful[0]["space_violations"] == 0
    assert faithful[0]["peak_machine_words"] <= faithful[0]["machine_budget_words"]
