"""E5 — MPC rounds and space vs arboricity (Theorem 3/10).

The pytest path runs the registered E5 experiment once under the
benchmark timer.  Run this module as a script (mirroring
``bench_kernels.py``) to record the faithful-vs-simulate round ledger
at the larger faithful scales the columnar substrate unlocks, writing
``BENCH_e5_mpc_rounds.json`` at the repo root::

    PYTHONPATH=src python benchmarks/bench_e5_mpc_rounds.py [--scale full]

For each instance the JSON holds both modes' per-category round
ledgers (they must agree — faithful mode *executes* the schedule that
simulate mode charges), the peak per-machine words against the
``S``-word budget, and the substrate that ran the faithful rows.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

if not __package__:  # invoked as a script: self-contained path setup
    _root = Path(__file__).resolve().parents[1]
    sys.path.insert(0, str(_root))          # for benchmarks._scale
    sys.path.insert(0, str(_root / "src"))  # for repro (no PYTHONPATH needed)
try:
    import pytest
except ImportError:  # pragma: no cover - script-only environments
    pytest = None

from benchmarks._scale import bench_script_main


if pytest is not None:
    from benchmarks.conftest import run_experiment_once

    def test_e5_mpc_rounds(benchmark, scale):
        table = run_experiment_once(benchmark, "e5", scale)
        sim = [r for r in table.rows if r["mode"] == "simulate"]
        # Who wins: measured MPC rounds beat the AZM18 bill at every λ.
        assert all(r["mpc_rounds"] < r["azm18_rounds"] for r in sim)
        # The driver can stop early via the certificate, never late.
        assert all(r["mpc_rounds"] <= r["model_predicted"] for r in sim)
        # Faithful row: space budget respected.
        faithful = [r for r in table.rows if r["mode"] == "faithful"]
        assert faithful
        assert faithful[0]["space_violations"] == 0
        assert faithful[0]["peak_machine_words"] <= faithful[0]["machine_budget_words"]
        # Adaptive rows: same budget respected, trajectory audited.
        adaptive = [r for r in table.rows if r["mode"] == "faithful(adaptive)"]
        assert adaptive
        assert all(r["space_violations"] == 0 for r in adaptive)
        assert all(r["certificate_crosscheck"] for r in adaptive)
        assert all(r["budget_trajectory"] for r in adaptive)


# ----------------------------------------------------------------------
# Script mode: faithful vs simulate round ledgers → BENCH_e5_mpc_rounds.json
# ----------------------------------------------------------------------
# One source of truth for the faithful ladder and constants: the E5
# experiment itself — this script records the same instances.
from repro.experiments.exp_mpc_rounds import ALPHA, EPSILON, _FAITHFUL_SIZES

_SAMPLE_BUDGET = 6


def run_round_ledger_benchmarks(scale: str) -> dict:
    import numpy as np

    from repro.core.mpc_driver import solve_allocation_mpc
    from repro.graphs.generators import union_of_forests
    from repro.mpc.substrate import get_substrate

    rows = []
    for n, slack in _FAITHFUL_SIZES[scale]:
        inst = union_of_forests(n, n, 2, capacity=2, seed=0)
        t0 = time.perf_counter()
        faithful = solve_allocation_mpc(
            inst, EPSILON, alpha=ALPHA, lam=2, mode="faithful", seed=0,
            sample_budget=_SAMPLE_BUDGET, space_slack=slack,
        )
        t_faithful = time.perf_counter() - t0
        simulate = solve_allocation_mpc(
            inst, EPSILON, alpha=ALPHA, lam=2, mode="simulate", sampler="keyed",
            seed=0, sample_budget=_SAMPLE_BUDGET,
        )
        adaptive = solve_allocation_mpc(
            inst, EPSILON, alpha=ALPHA, lam=2, mode="faithful", seed=0,
            sample_budget=_SAMPLE_BUDGET, space_slack=slack,
            budget_policy="adaptive",
        )
        if faithful.ledger.violations or adaptive.ledger.violations:
            # must survive python -O
            raise RuntimeError(f"space violations at n={n}: refusing to record")
        rows.append(
            {
                "n": n,
                "m": inst.graph.n_edges,
                "sample_budget": _SAMPLE_BUDGET,
                "space_slack": slack,
                "machine_budget_words": int(slack * inst.graph.n_vertices**ALPHA),
                "peak_machine_words": faithful.ledger.peak_machine_words,
                "peak_global_words": faithful.ledger.peak_global_words,
                "peak_routed_records": faithful.ledger.peak_routed_records,
                "space_violations": len(faithful.ledger.violations),
                "faithful_rounds_by_category": faithful.ledger.by_category,
                "simulate_rounds_by_category": simulate.ledger.by_category,
                "faithful_mpc_rounds": faithful.mpc_rounds,
                "simulate_mpc_rounds": simulate.mpc_rounds,
                "local_rounds": faithful.local_rounds,
                "allocations_match": bool(
                    np.array_equal(faithful.allocation.x, simulate.allocation.x)
                ),
                "faithful_seconds": round(t_faithful, 4),
                # The adaptive budget policy on the same instance: peak
                # words and the audited per-phase throttle trajectory
                # (DESIGN.md §13).
                "adaptive_peak_machine_words": adaptive.ledger.peak_machine_words,
                "adaptive_certificate_crosscheck": bool(
                    adaptive.meta["certificate_crosscheck"]
                ),
                "adaptive_trajectory": [
                    {
                        "phase": r["phase"],
                        "budget": r["sample_budget"],
                        "decision": r["decision"],
                        "accepted": r["accepted"],
                        "predicted_peak_words": r["predicted_peak_words"],
                        "observed_peak_words": r["observed_peak_words"],
                    }
                    for r in adaptive.ledger.trajectory
                ],
            }
        )
    return {
        "benchmark": "E5 faithful-vs-simulate round ledgers",
        "scale": scale,
        "substrate": get_substrate(),
        "epsilon": EPSILON,
        "alpha": ALPHA,
        "instances": rows,
    }


def main(argv=None) -> None:
    bench_script_main(
        run_round_ledger_benchmarks, "BENCH_e5_mpc_rounds.json",
        description=__doc__, scales=_FAITHFUL_SIZES, argv=argv,
    )


if __name__ == "__main__":
    main()
