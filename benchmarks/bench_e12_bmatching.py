"""E12 — extension study: two-sided b-matching dynamics (§1.2.1's open
question territory; no paper guarantee asserted)."""

from benchmarks.conftest import run_experiment_once


def test_e12_bmatching_extension(benchmark, scale):
    table = run_experiment_once(benchmark, "e12", scale)
    # The generalized dynamics should stay within a small constant of
    # optimal on these families and never collapse below greedy quality
    # by more than a modest margin.
    assert all(r["frac_ratio_worst"] <= 3.0 for r in table.rows)
    b_values = table.column("b_max")
    assert b_values == sorted(b_values)
