"""E8 — boosting (2+ε) → (1+ε) via the layered framework (App. B)."""

from benchmarks.conftest import run_experiment_once


def test_e8_boosting(benchmark, scale):
    table = run_experiment_once(benchmark, "e8", scale)
    # The deterministic reference always certifies the 1+1/k target.
    assert all(table.column("det_within_target"))
    for row in table.rows:
        # Boosting never hurts, and the randomized framework lands within
        # a whisker of the deterministic reference.
        assert row["layered_ratio"] <= row["start_ratio"] + 1e-9
        assert row["layered_ratio"] <= row["det_ratio"] + 0.30
