"""Guard: committed BENCH_*.json files must hold their recorded bars.

Every benchmark in this repository writes its acceptance bar *into*
its payload (``meets_2x_bar``, ``meets_3x_bar``, ``scaling_bar`` …).
That makes a regression self-documenting — and committable by
accident: regenerate a payload on a bad build, commit it, and the
repository now records a miss as if it were fine.  This script is the
CI tripwire (the ``sharding`` job): it re-reads every committed
payload and fails if any recorded bar is below its floor.

Bars that are hardware-conditional (the sharding scaling bar needs a
multi-core host) pass when the payload records them as not applicable
— an honest "could not measure here" is not a regression; a recorded
``"met": false`` is.

Beyond the per-payload bars, the committed ``BENCH_trajectory.json``
(written by ``bench_trajectory.py``) must agree bar-for-bar with the
payloads it indexes — regenerating a payload without regenerating the
trajectory is a stale-trajectory failure, and editing the trajectory
by hand is a disagreement failure.  ``--diff FRESH_DIR`` compares a
freshly recorded payload tree (e.g. a CI smoke run) against the
*committed* trajectory's floors without touching the committed files.

Run from the repo root (exit code 0/1)::

    python benchmarks/check_bench_floors.py
    python benchmarks/check_bench_floors.py --diff /tmp/fresh_bench
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

if not __package__:  # invoked as a script: self-contained path setup
    sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from benchmarks.bench_trajectory import TRAJECTORY_SCHEMA, build_bars

ROOT = Path(__file__).resolve().parents[1]
TRAJECTORY_NAME = "BENCH_trajectory.json"


def _fail(name: str, message: str) -> str:
    return f"{name}: {message}"


def check_serving(payload: dict) -> list[str]:
    problems = []
    if payload.get("meets_2x_bar") is not True:
        problems.append("meets_2x_bar is not true")
    speedup = payload.get("session_speedup_over_cold", 0)
    if not isinstance(speedup, (int, float)) or speedup < 2.0:
        problems.append(f"session_speedup_over_cold {speedup!r} < 2.0 floor")
    return problems


def check_dynamic(payload: dict) -> list[str]:
    problems = []
    bars = payload.get("meets_3x_bar")
    if not isinstance(bars, dict) or not bars:
        problems.append("meets_3x_bar missing or empty")
    else:
        for scenario, met in bars.items():
            if met is not True:
                problems.append(f"meets_3x_bar[{scenario!r}] is not true")
    return problems


def check_kernels(payload: dict) -> list[str]:
    problems = []
    if payload.get("optimized_beats_seed") is not True:
        problems.append("optimized_beats_seed is not true")
    speedup = payload.get("largest_instance_speedup", 0)
    if not isinstance(speedup, (int, float)) or speedup < 1.0:
        problems.append(f"largest_instance_speedup {speedup!r} < 1.0 floor")
    return problems


def check_mpc_substrate(payload: dict) -> list[str]:
    problems = []
    if payload.get("columnar_beats_object") is not True:
        problems.append("columnar_beats_object is not true")
    if payload.get("parity_checked") is not True:
        problems.append("parity_checked is not true")
    return problems


def check_mpc_adaptive(payload: dict) -> list[str]:
    problems = []
    bar = payload.get("frontier_bar")
    if not isinstance(bar, dict):
        problems.append("frontier_bar missing")
        return problems
    if bar.get("met") is not True:
        problems.append(
            f"frontier_bar not met (frontier_ratio="
            f"{payload.get('frontier_ratio')!r}, "
            f"threshold={bar.get('threshold')!r})"
        )
    ratio = payload.get("frontier_ratio", 0)
    if not isinstance(ratio, (int, float)) or ratio < 4.0:
        problems.append(f"frontier_ratio {ratio!r} < 4.0 floor")
    if payload.get("certificates_bit_checked") is not True:
        problems.append("certificates_bit_checked is not true")
    return problems


def check_sharding(payload: dict) -> list[str]:
    problems = []
    if payload.get("determinism_bit_identical") is not True:
        problems.append("determinism_bit_identical is not true")
    bar = payload.get("scaling_bar")
    if not isinstance(bar, dict):
        problems.append("scaling_bar missing")
        return problems
    if bar.get("applicable"):
        if bar.get("met") is not True:
            problems.append(
                f"scaling_bar recorded as applicable but not met "
                f"(speedup_4_workers={bar.get('speedup_4_workers')!r}, "
                f"threshold={bar.get('threshold')!r})"
            )
    elif bar.get("applicable") is not False:
        problems.append("scaling_bar.applicable must be true or false")
    return problems


def check_service(payload: dict) -> list[str]:
    problems = []
    warmth = payload.get("restart_warmth")
    if not isinstance(warmth, dict):
        problems.append("restart_warmth missing")
        return problems
    if warmth.get("meets_3x_bar") is not True:
        problems.append("restart_warmth.meets_3x_bar is not true")
    speedup = warmth.get("restart_speedup", 0)
    if not isinstance(speedup, (int, float)) or speedup < 3.0:
        problems.append(f"restart_speedup {speedup!r} < 3.0 floor")
    if warmth.get("restored_warm_start") is not True:
        problems.append("restored_warm_start is not true")
    latency = (payload.get("concurrent_load") or {}).get("latency")
    if not isinstance(latency, dict) or not all(
        isinstance(latency.get(k), (int, float))
        for k in ("p50_ms", "p95_ms", "p99_ms")
    ):
        problems.append("concurrent_load latency histogram incomplete")
    return problems


# One row per committed payload: (filename, required, checker).  The
# e5 round-count payload records measurements without a bar — nothing
# to guard there.
CHECKS = (
    ("BENCH_serving.json", True, check_serving),
    ("BENCH_dynamic.json", True, check_dynamic),
    ("BENCH_kernels.json", True, check_kernels),
    ("BENCH_mpc_substrate.json", True, check_mpc_substrate),
    ("BENCH_mpc_adaptive.json", True, check_mpc_adaptive),
    ("BENCH_sharding.json", True, check_sharding),
    ("BENCH_service.json", True, check_service),
)


def check_trajectory(root: Path) -> list[str]:
    """The committed trajectory must mirror the payloads bar-for-bar.

    Floors themselves are guarded by the per-payload checkers above;
    this guards the *index*: every bar derivable from the committed
    payloads appears in the trajectory with the identical entry, and
    the trajectory holds no bar without a source.  Payloads already
    reported missing/malformed by the per-payload pass are excluded
    from the comparison rather than double-reported.
    """
    path = root / TRAJECTORY_NAME
    if not path.exists():
        return [_fail(TRAJECTORY_NAME, "missing from the repo root")]
    try:
        committed = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        return [_fail(TRAJECTORY_NAME, f"not valid JSON ({exc})")]
    if committed.get("schema") != TRAJECTORY_SCHEMA:
        return [
            _fail(TRAJECTORY_NAME, f"unknown schema {committed.get('schema')!r}")
        ]
    recorded = committed.get("bars")
    if not isinstance(recorded, dict):
        return [_fail(TRAJECTORY_NAME, "bars mapping missing")]
    problems = []
    rebuilt, unreadable = build_bars(root, missing_ok=True)
    for bar_id, entry in sorted(rebuilt.items()):
        got = recorded.get(bar_id)
        if got is None:
            problems.append(
                _fail(
                    TRAJECTORY_NAME,
                    f"bar {bar_id!r} missing — stale trajectory, "
                    f"re-run benchmarks/bench_trajectory.py",
                )
            )
        elif got != entry:
            problems.append(
                _fail(
                    TRAJECTORY_NAME,
                    f"bar {bar_id!r} disagrees with its payload: "
                    f"recorded {got!r}, payload says {entry!r}",
                )
            )
    for bar_id in sorted(set(recorded) - set(rebuilt)):
        entry = recorded[bar_id]
        source = entry.get("file") if isinstance(entry, dict) else None
        if source in unreadable:
            continue
        problems.append(
            _fail(TRAJECTORY_NAME, f"bar {bar_id!r} has no source payload")
        )
    return problems


def run_checks(root: Path = ROOT) -> list[str]:
    """All floor failures under ``root`` (empty = every bar holds).

    ``root`` is injectable so the checker itself is unit-testable
    against synthetic payload trees (tests/test_check_bench_floors.py).
    """
    failures: list[str] = []
    for name, required, checker in CHECKS:
        path = root / name
        if not path.exists():
            if required:
                failures.append(_fail(name, "missing from the repo root"))
            continue
        try:
            payload = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            failures.append(_fail(name, f"not valid JSON ({exc})"))
            continue
        for problem in checker(payload):
            failures.append(_fail(name, problem))
    failures.extend(check_trajectory(root))
    return failures


def diff_against_trajectory(
    fresh_root: Path, root: Path = ROOT
) -> tuple[list[str], list[str]]:
    """``(failures, notes)`` comparing a fresh run to the committed floors.

    Every bar derivable from the payloads under ``fresh_root`` is held
    to the floor the *committed* trajectory records for it.  Payloads a
    smoke run did not produce are noted and skipped; comparing nothing
    at all is itself a failure (a vacuous pass hides a broken smoke
    job).
    """
    try:
        committed = json.loads((root / TRAJECTORY_NAME).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return [_fail(TRAJECTORY_NAME, f"unreadable committed trajectory ({exc})")], []
    recorded = committed.get("bars")
    if committed.get("schema") != TRAJECTORY_SCHEMA or not isinstance(recorded, dict):
        return [_fail(TRAJECTORY_NAME, "committed trajectory malformed")], []
    fresh_bars, missing = build_bars(fresh_root, missing_ok=True)
    failures: list[str] = []
    notes: list[str] = [f"skipped {name}: not in fresh run" for name in missing]
    compared = 0
    for bar_id, fresh in sorted(fresh_bars.items()):
        base = recorded.get(bar_id)
        if base is None:
            notes.append(f"new bar {bar_id}: not in committed trajectory")
            continue
        if not fresh["applicable"]:
            notes.append(f"skipped {bar_id}: not applicable on this host")
            continue
        floor = base.get("floor")
        value = fresh["value"]
        compared += 1
        held = value is True if isinstance(value, bool) else float(value) >= float(floor)
        if not held:
            failures.append(
                f"{bar_id}: fresh value {value!r} below committed floor {floor!r}"
            )
    if compared == 0:
        failures.append(
            f"no fresh bars under {fresh_root} to compare against the trajectory"
        )
    return failures, notes


def main(root: Path = ROOT, argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--diff", metavar="FRESH_DIR", default=None,
        help="compare freshly recorded BENCH_*.json under FRESH_DIR "
             "against the committed trajectory floors",
    )
    args = parser.parse_args([] if argv is None else argv)
    if args.diff:
        failures, notes = diff_against_trajectory(Path(args.diff), root)
        for note in notes:
            print(f"  note: {note}")
        if failures:
            print("fresh-run regression(s) vs committed trajectory:", file=sys.stderr)
            for failure in failures:
                print(f"  - {failure}", file=sys.stderr)
            return 1
        print("fresh bars hold the committed trajectory floors")
        return 0
    failures = run_checks(root)
    if failures:
        print("benchmark floor regression(s):", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(
        f"all {len(CHECKS)} benchmark payloads and the trajectory "
        f"hold their recorded floors"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(argv=sys.argv[1:]))
