"""Guard: committed BENCH_*.json files must hold their recorded bars.

Every benchmark in this repository writes its acceptance bar *into*
its payload (``meets_2x_bar``, ``meets_3x_bar``, ``scaling_bar`` …).
That makes a regression self-documenting — and committable by
accident: regenerate a payload on a bad build, commit it, and the
repository now records a miss as if it were fine.  This script is the
CI tripwire (the ``sharding`` job): it re-reads every committed
payload and fails if any recorded bar is below its floor.

Bars that are hardware-conditional (the sharding scaling bar needs a
multi-core host) pass when the payload records them as not applicable
— an honest "could not measure here" is not a regression; a recorded
``"met": false`` is.

Run from the repo root (no arguments, exit code 0/1)::

    python benchmarks/check_bench_floors.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]


def _fail(name: str, message: str) -> str:
    return f"{name}: {message}"


def check_serving(payload: dict) -> list[str]:
    problems = []
    if payload.get("meets_2x_bar") is not True:
        problems.append("meets_2x_bar is not true")
    speedup = payload.get("session_speedup_over_cold", 0)
    if not isinstance(speedup, (int, float)) or speedup < 2.0:
        problems.append(f"session_speedup_over_cold {speedup!r} < 2.0 floor")
    return problems


def check_dynamic(payload: dict) -> list[str]:
    problems = []
    bars = payload.get("meets_3x_bar")
    if not isinstance(bars, dict) or not bars:
        problems.append("meets_3x_bar missing or empty")
    else:
        for scenario, met in bars.items():
            if met is not True:
                problems.append(f"meets_3x_bar[{scenario!r}] is not true")
    return problems


def check_kernels(payload: dict) -> list[str]:
    problems = []
    if payload.get("optimized_beats_seed") is not True:
        problems.append("optimized_beats_seed is not true")
    speedup = payload.get("largest_instance_speedup", 0)
    if not isinstance(speedup, (int, float)) or speedup < 1.0:
        problems.append(f"largest_instance_speedup {speedup!r} < 1.0 floor")
    return problems


def check_mpc_substrate(payload: dict) -> list[str]:
    problems = []
    if payload.get("columnar_beats_object") is not True:
        problems.append("columnar_beats_object is not true")
    if payload.get("parity_checked") is not True:
        problems.append("parity_checked is not true")
    return problems


def check_mpc_adaptive(payload: dict) -> list[str]:
    problems = []
    bar = payload.get("frontier_bar")
    if not isinstance(bar, dict):
        problems.append("frontier_bar missing")
        return problems
    if bar.get("met") is not True:
        problems.append(
            f"frontier_bar not met (frontier_ratio="
            f"{payload.get('frontier_ratio')!r}, "
            f"threshold={bar.get('threshold')!r})"
        )
    ratio = payload.get("frontier_ratio", 0)
    if not isinstance(ratio, (int, float)) or ratio < 4.0:
        problems.append(f"frontier_ratio {ratio!r} < 4.0 floor")
    if payload.get("certificates_bit_checked") is not True:
        problems.append("certificates_bit_checked is not true")
    return problems


def check_sharding(payload: dict) -> list[str]:
    problems = []
    if payload.get("determinism_bit_identical") is not True:
        problems.append("determinism_bit_identical is not true")
    bar = payload.get("scaling_bar")
    if not isinstance(bar, dict):
        problems.append("scaling_bar missing")
        return problems
    if bar.get("applicable"):
        if bar.get("met") is not True:
            problems.append(
                f"scaling_bar recorded as applicable but not met "
                f"(speedup_4_workers={bar.get('speedup_4_workers')!r}, "
                f"threshold={bar.get('threshold')!r})"
            )
    elif bar.get("applicable") is not False:
        problems.append("scaling_bar.applicable must be true or false")
    return problems


def check_service(payload: dict) -> list[str]:
    problems = []
    warmth = payload.get("restart_warmth")
    if not isinstance(warmth, dict):
        problems.append("restart_warmth missing")
        return problems
    if warmth.get("meets_3x_bar") is not True:
        problems.append("restart_warmth.meets_3x_bar is not true")
    speedup = warmth.get("restart_speedup", 0)
    if not isinstance(speedup, (int, float)) or speedup < 3.0:
        problems.append(f"restart_speedup {speedup!r} < 3.0 floor")
    if warmth.get("restored_warm_start") is not True:
        problems.append("restored_warm_start is not true")
    latency = (payload.get("concurrent_load") or {}).get("latency")
    if not isinstance(latency, dict) or not all(
        isinstance(latency.get(k), (int, float))
        for k in ("p50_ms", "p95_ms", "p99_ms")
    ):
        problems.append("concurrent_load latency histogram incomplete")
    return problems


# One row per committed payload: (filename, required, checker).  The
# e5 round-count payload records measurements without a bar — nothing
# to guard there.
CHECKS = (
    ("BENCH_serving.json", True, check_serving),
    ("BENCH_dynamic.json", True, check_dynamic),
    ("BENCH_kernels.json", True, check_kernels),
    ("BENCH_mpc_substrate.json", True, check_mpc_substrate),
    ("BENCH_mpc_adaptive.json", True, check_mpc_adaptive),
    ("BENCH_sharding.json", True, check_sharding),
    ("BENCH_service.json", True, check_service),
)


def run_checks(root: Path = ROOT) -> list[str]:
    """All floor failures under ``root`` (empty = every bar holds).

    ``root`` is injectable so the checker itself is unit-testable
    against synthetic payload trees (tests/test_check_bench_floors.py).
    """
    failures: list[str] = []
    for name, required, checker in CHECKS:
        path = root / name
        if not path.exists():
            if required:
                failures.append(_fail(name, "missing from the repo root"))
            continue
        try:
            payload = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            failures.append(_fail(name, f"not valid JSON ({exc})"))
            continue
        for problem in checker(payload):
            failures.append(_fail(name, problem))
    return failures


def main(root: Path = ROOT) -> int:
    failures = run_checks(root)
    if failures:
        print("benchmark floor regression(s):", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"all {len(CHECKS)} benchmark payloads hold their recorded floors")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
