"""Command-line solver for allocation instance files.

Usage::

    python -m repro.cli solve instance.json [--epsilon 0.2] [--seed 0]
    python -m repro.cli generate forests --out instance.json \\
        --n-left 200 --n-right 150 --k 3
    python -m repro.cli info instance.json

``solve`` runs the full paper pipeline (MPC fractional → §6 rounding →
repair → App.-B boosting) and prints the audit summary; ``generate``
materializes a benchmark-family instance to the JSON format
(:mod:`repro.graphs.io`); ``info`` prints instance statistics
including the measured degeneracy.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.graphs import degeneracy
from repro.graphs.generators import FAMILY_BUILDERS
from repro.graphs.io import load_instance, save_instance

__all__ = ["main"]


def _cmd_solve(args: argparse.Namespace) -> int:
    from repro.baselines.exact import optimum_value
    from repro.core.pipeline import solve_allocation

    instance = load_instance(args.instance)
    result = solve_allocation(
        instance, args.epsilon, seed=args.seed, boost=not args.no_boost
    )
    summary = result.summary()
    if args.with_opt:
        opt = optimum_value(instance)
        summary["opt"] = opt
        summary["ratio"] = round(opt / max(1, result.size), 4)
    print(json.dumps({"instance": instance.describe(), "result": summary}, indent=2))
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    builder = FAMILY_BUILDERS.get(args.family)
    if builder is None:
        print(
            f"unknown family {args.family!r}; available: {sorted(FAMILY_BUILDERS)}",
            file=sys.stderr,
        )
        return 2
    kwargs = dict(seed=args.seed)
    if args.family == "union_of_forests":
        kwargs.update(n_left=args.n_left, n_right=args.n_right, k=args.k)
    elif args.family == "star":
        kwargs = dict(n_leaves=args.n_left)
    elif args.family == "erdos_renyi":
        kwargs.update(n_left=args.n_left, n_right=args.n_right, m=args.m)
    elif args.family == "power_law":
        kwargs.update(n_left=args.n_left, n_right=args.n_right)
    elif args.family == "load_balancing":
        kwargs.update(n_clients=args.n_left, n_servers=args.n_right, locality=args.k)
    elif args.family == "slow_spread":
        kwargs.update(core_right=args.k, width=max(1, args.n_left // max(1, args.k)))
    elif args.family == "adwords":
        kwargs.update(n_impressions=args.n_left, n_advertisers=args.n_right)
    else:
        print(
            f"family {args.family!r} needs bespoke parameters; use the Python API",
            file=sys.stderr,
        )
        return 2
    instance = builder(**kwargs)
    save_instance(instance, args.out)
    print(f"wrote {instance.name}: n_left={instance.n_left} "
          f"n_right={instance.n_right} m={instance.n_edges} -> {args.out}")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    from repro.graphs.properties import profile_graph

    instance = load_instance(args.instance)
    info = instance.describe()
    info["degeneracy"] = degeneracy(instance.graph)
    info["max_degree"] = instance.graph.max_degree
    info.update(profile_graph(instance.graph).as_dict())
    print(json.dumps(info, indent=2))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cli",
        description="Solve / generate / inspect allocation instances.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_solve = sub.add_parser("solve", help="run the full paper pipeline")
    p_solve.add_argument("instance", help="instance JSON file")
    p_solve.add_argument("--epsilon", type=float, default=0.2)
    p_solve.add_argument("--seed", type=int, default=0)
    p_solve.add_argument("--no-boost", action="store_true")
    p_solve.add_argument(
        "--with-opt", action="store_true",
        help="also compute the exact optimum (Dinic) and the ratio",
    )
    p_solve.set_defaults(fn=_cmd_solve)

    p_gen = sub.add_parser("generate", help="write a benchmark-family instance")
    p_gen.add_argument("family", help=f"one of {sorted(FAMILY_BUILDERS)}")
    p_gen.add_argument("--out", required=True)
    p_gen.add_argument("--n-left", type=int, default=100)
    p_gen.add_argument("--n-right", type=int, default=80)
    p_gen.add_argument("--k", type=int, default=3)
    p_gen.add_argument("--m", type=int, default=300)
    p_gen.add_argument("--seed", type=int, default=0)
    p_gen.set_defaults(fn=_cmd_generate)

    p_info = sub.add_parser("info", help="print instance statistics")
    p_info.add_argument("instance")
    p_info.set_defaults(fn=_cmd_info)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via main()
    raise SystemExit(main())
