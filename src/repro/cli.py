"""Command-line solver for allocation instance files.

Usage::

    python -m repro.cli solve instance.json [--epsilon 0.2] [--seed 0]
    python -m repro.cli batch requests.jsonl --instance instance.json
    python -m repro.cli dynamic deltas.jsonl --instance instance.json
    python -m repro.cli dynamic --scenario diurnal_wave --steps 12 \\
        --instance instance.json
    python -m repro.cli generate forests --out instance.json \\
        --n-left 200 --n-right 150 --k 3
    python -m repro.cli info instance.json

``solve`` runs the full paper pipeline (MPC fractional → §6 rounding →
repair → App.-B boosting) and prints the audit summary; ``batch``
serves a JSONL request file through a resident
:class:`~repro.serve.AllocationSession` (warm-started solves, optional
thread parallelism — DESIGN.md §8); ``dynamic`` replays an instance
delta stream — one JSON delta per line, or a generated scenario
(``--scenario``) — through a :class:`~repro.dynamic.DynamicSession`
with warm incremental re-solves (DESIGN.md §9), printing one audit row
per step; ``generate`` materializes a benchmark-family instance to the
JSON format (:mod:`repro.graphs.io`); ``info`` prints instance
statistics including the measured degeneracy.

Every subcommand routes through the :class:`repro.api.Engine` façade:
the flags of ``solve``, ``batch`` and ``dynamic`` — ``--epsilon``,
``--seed``, ``--no-boost``, ``--backend`` (kernel backend, DESIGN.md
§6) and ``--substrate`` (faithful-mode MPC substrate, DESIGN.md §7) —
build one :class:`repro.api.SolverConfig`, and the engine built from
it owns the run.  ``--backend``/``--substrate`` are installed
process-wide for the invocation (``Engine.activate``), matching the
historical ``set_backend`` / ``set_substrate`` semantics those now
deprecated shims provided.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.graphs import degeneracy
from repro.graphs.generators import FAMILY_BUILDERS
from repro.graphs.io import save_instance

__all__ = ["main"]


def _load_instance_checked(path: str):
    """Load an instance file; exit code 2 on missing/malformed input."""
    from repro.api import Engine

    try:
        return Engine.load_instance(path)
    except FileNotFoundError:
        print(f"instance file not found: {path}", file=sys.stderr)
    except OSError as exc:
        print(f"cannot read instance file: {path} ({exc})", file=sys.stderr)
    except json.JSONDecodeError as exc:
        print(f"instance file is not valid JSON: {path} ({exc})", file=sys.stderr)
    except (KeyError, ValueError, TypeError) as exc:
        print(f"malformed instance file: {path} ({exc})", file=sys.stderr)
    return None


def _engine_from_args(args: argparse.Namespace, *, session_prefix: str = ""):
    """Build the activated :class:`repro.api.Engine` from a
    subcommand's flags; ``None`` (after printing to stderr) on invalid
    input.

    Validation is reported in two historical voices: bad engine-
    selection names (``--backend``/``--substrate``) print the registry
    error as-is, while a bad session parameter (``--epsilon``) is
    prefixed with ``session_prefix`` so a flag problem is reported as
    one.  ``activate()`` (no paired restore) preserves the old
    install-process-wide flag semantics.
    """
    from repro import registry
    from repro.api import Engine, SolverConfig

    backend = getattr(args, "backend", None)
    substrate = getattr(args, "substrate", None)
    try:
        config = SolverConfig(
            epsilon=args.epsilon,
            backend=backend,
            substrate=substrate,
            mode=getattr(args, "mpc_mode", None) or "simulate",
            mpc_budget_policy=getattr(args, "mpc_budget_policy", None) or "fixed",
            mpc_safety_fraction=(
                0.8
                if getattr(args, "mpc_safety_fraction", None) is None
                else args.mpc_safety_fraction
            ),
            boost=not args.no_boost,
            seed=args.seed,
        )
    except ValueError as exc:
        bad_engine_name = (
            backend is not None
            and (
                backend not in registry.available("kernel_backend")
                # registered but unusable on this host (e.g. "native"
                # without a C compiler) is an engine-selection problem
                or "unavailable on this host" in str(exc)
            )
        ) or (
            substrate is not None
            and substrate not in registry.available("mpc_substrate")
        )
        prefix = "" if bad_engine_name else session_prefix
        print(f"{prefix}{exc}", file=sys.stderr)
        return None
    return Engine(config).activate()


def _add_engine_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend", default=None,
        help="kernel backend: reference|optimized|native|auto (native "
        "needs a C compiler; auto picks optimized below the measured "
        "native crossover and native above it; see "
        "repro.kernels.backend_availability)",
    )
    parser.add_argument(
        "--substrate", default=None,
        help="faithful-mode MPC substrate (object|columnar)",
    )
    parser.add_argument(
        "--mpc-mode", default=None, dest="mpc_mode",
        help="MPC execution mode: simulate (default) | faithful "
        "(accounted cluster, DESIGN.md §5)",
    )
    parser.add_argument(
        "--mpc-budget-policy", default=None, dest="mpc_budget_policy",
        help="faithful-mode sample-budget policy: fixed (default) | "
        "adaptive (peak-hold throttling under the space budget, "
        "DESIGN.md §13; requires --mpc-mode faithful)",
    )
    parser.add_argument(
        "--mpc-safety-fraction", type=float, default=None,
        dest="mpc_safety_fraction",
        help="adaptive policy's safety band as a fraction of the "
        "per-machine space budget S (default 0.8)",
    )


def _cmd_solve(args: argparse.Namespace) -> int:
    from repro.baselines.exact import optimum_value

    engine = _engine_from_args(args)
    if engine is None:
        return 2
    instance = _load_instance_checked(args.instance)
    if instance is None:
        return 2
    report = engine.solve(instance)
    summary = report.summary()
    if args.with_opt:
        opt = optimum_value(instance)
        summary["opt"] = opt
        summary["ratio"] = round(opt / max(1, report.size), 4)
    print(json.dumps({"instance": instance.describe(), "result": summary}, indent=2))
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    from repro.serve import SolveRequest

    engine = _engine_from_args(
        args, session_prefix="invalid request for this instance: "
    )
    if engine is None:
        return 2
    instance = _load_instance_checked(args.instance)
    if instance is None:
        return 2
    try:
        with open(args.requests, encoding="utf-8") as f:
            numbered = [
                (lineno, line)
                for lineno, line in enumerate(f, start=1)
                if line.strip()
            ]
    except OSError as exc:
        print(f"cannot read request file: {args.requests} ({exc})", file=sys.stderr)
        return 2
    requests = []
    for lineno, line in numbered:
        try:
            requests.append(SolveRequest.from_json(json.loads(line)))
        except (json.JSONDecodeError, TypeError, ValueError) as exc:
            print(
                f"malformed request on line {lineno} of {args.requests}: {exc}",
                file=sys.stderr,
            )
            return 2
    try:
        if args.shard_workers is not None:
            # Multi-process tier (DESIGN.md §12): instances live in
            # shared memory, shard workers own the sessions.  Same
            # determinism contract, same rows, bit-identical reports.
            reports = engine.batch(
                instance, requests,
                executor="process", workers=args.shard_workers,
            )
            stats = ("fleet_stats", engine.shard_executor(args.shard_workers).stats())
        else:
            session = engine.open_session(instance)
            # Prime-then-batch (DESIGN.md §8.3): the first request runs
            # serially so the batched remainder warm-starts.
            reports = engine.batch(session, requests, max_workers=args.workers)
            stats = ("session_stats", session.stats.as_dict())
    except ValueError as exc:
        # e.g. capacity_updates naming a vertex outside the instance
        print(f"invalid request for this instance: {exc}", file=sys.stderr)
        return 2
    except RuntimeError as exc:
        print(f"sharded batch failed: {exc}", file=sys.stderr)
        return 3
    finally:
        engine.close()
    for i, report in enumerate(reports):
        row = {"request": i, **report.summary()}
        row["warm_start"] = bool(report.meta.get("warm_start"))
        tag = requests[i].tag
        if tag is not None:
            row["tag"] = tag
        print(json.dumps(row))
    print(json.dumps({stats[0]: stats[1]}), file=sys.stderr)
    return 0


def _cmd_dynamic(args: argparse.Namespace) -> int:
    from repro.dynamic import SCENARIOS, delta_from_json

    # A bad --epsilon is a flag problem, not a stream problem — the
    # engine construction reports it as "invalid session configuration".
    engine = _engine_from_args(
        args, session_prefix="invalid session configuration: "
    )
    if engine is None:
        return 2
    if (args.deltas is None) == (args.scenario is None):
        print(
            "pass a deltas.jsonl file or --scenario, not both/neither",
            file=sys.stderr,
        )
        return 2
    instance = _load_instance_checked(args.instance)
    if instance is None:
        return 2
    try:
        dynamic = engine.open_dynamic(instance)
    except ValueError as exc:  # pragma: no cover - config already validated
        print(f"invalid session configuration: {exc}", file=sys.stderr)
        return 2
    if args.scenario is not None:
        builder = SCENARIOS.get(args.scenario)
        if builder is None:
            print(
                f"unknown scenario {args.scenario!r}; "
                f"available: {sorted(SCENARIOS)}",
                file=sys.stderr,
            )
            return 2
        try:
            deltas = builder(instance, args.steps, seed=args.seed)
        except ValueError as exc:
            # e.g. flash_crowd on an instance with no servers
            print(
                f"cannot generate scenario {args.scenario!r} for this "
                f"instance: {exc}",
                file=sys.stderr,
            )
            return 2
    else:
        try:
            with open(args.deltas, encoding="utf-8") as f:
                numbered = [
                    (lineno, line)
                    for lineno, line in enumerate(f, start=1)
                    if line.strip()
                ]
        except OSError as exc:
            print(f"cannot read delta file: {args.deltas} ({exc})", file=sys.stderr)
            return 2
        deltas = []
        for lineno, line in numbered:
            try:
                deltas.append(delta_from_json(json.loads(line)))
            except (json.JSONDecodeError, TypeError, ValueError) as exc:
                print(
                    f"malformed delta on line {lineno} of {args.deltas}: {exc}",
                    file=sys.stderr,
                )
                return 2
    try:
        if args.shard_workers is not None:
            # Replay on the instance's shard worker (DESIGN.md §12):
            # the delta chain runs remotely against a shared-memory
            # attach of the instance, bit-identical to the in-process
            # replay below.
            fleet = engine.shard_executor(args.shard_workers)
            outcome = fleet.run_replay(instance, deltas, seed=args.seed)
            rows, dynamic_stats = list(outcome.rows), outcome.stats
        else:
            # Prime (the initial cold solve that establishes the warm
            # state every subsequent incremental re-solve starts from),
            # then the replay — one engine call.
            outcome = engine.stream(dynamic, deltas)
            rows, dynamic_stats = outcome.rows(), dynamic.stats.as_dict()
    except ValueError as exc:
        # e.g. a delta naming a vertex outside the instance
        print(f"invalid delta stream for this instance: {exc}", file=sys.stderr)
        return 2
    except RuntimeError as exc:
        print(f"sharded replay failed: {exc}", file=sys.stderr)
        return 3
    finally:
        engine.close()
    assert outcome.prime is not None
    print(json.dumps({"step": "prime", "local_rounds": outcome.prime.local_rounds,
                      "final_size": outcome.prime.size}))
    for row in rows:
        print(json.dumps(row))
    print(
        json.dumps({"dynamic_stats": dynamic_stats}),
        file=sys.stderr,
    )
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.api import Engine

    if args.family not in FAMILY_BUILDERS:
        print(
            f"unknown family {args.family!r}; available: {sorted(FAMILY_BUILDERS)}",
            file=sys.stderr,
        )
        return 2
    kwargs = dict(seed=args.seed)
    if args.family == "union_of_forests":
        kwargs.update(n_left=args.n_left, n_right=args.n_right, k=args.k)
    elif args.family == "star":
        kwargs = dict(n_leaves=args.n_left)
    elif args.family == "erdos_renyi":
        kwargs.update(n_left=args.n_left, n_right=args.n_right, m=args.m)
    elif args.family == "power_law":
        kwargs.update(n_left=args.n_left, n_right=args.n_right)
    elif args.family == "load_balancing":
        kwargs.update(n_clients=args.n_left, n_servers=args.n_right, locality=args.k)
    elif args.family == "slow_spread":
        kwargs.update(core_right=args.k, width=max(1, args.n_left // max(1, args.k)))
    elif args.family == "adwords":
        kwargs.update(n_impressions=args.n_left, n_advertisers=args.n_right)
    else:
        print(
            f"family {args.family!r} needs bespoke parameters; use the Python API",
            file=sys.stderr,
        )
        return 2
    instance = Engine.generate_instance(args.family, **kwargs)
    save_instance(instance, args.out)
    print(f"wrote {instance.name}: n_left={instance.n_left} "
          f"n_right={instance.n_right} m={instance.n_edges} -> {args.out}")
    return 0


def _load_spec_checked(path: str):
    """Load a SweepSpec JSON file; ``None`` (after stderr) on bad input."""
    from repro.sweeps import SweepSpec

    try:
        return SweepSpec.from_json(open(path).read())
    except FileNotFoundError:
        print(f"spec file not found: {path}", file=sys.stderr)
    except json.JSONDecodeError as exc:
        print(f"spec file is not valid JSON: {path} ({exc})", file=sys.stderr)
    except (KeyError, ValueError, TypeError) as exc:
        print(f"malformed sweep spec: {path} ({exc})", file=sys.stderr)
    return None


def _cmd_sweep_run(args: argparse.Namespace) -> int:
    from repro.sweeps import run_sweep

    spec = _load_spec_checked(args.spec)
    if spec is None:
        return 2
    try:
        result = run_sweep(
            spec,
            args.out,
            executor=args.executor,
            workers=args.workers,
            echo=(print if args.verbose else None),
        )
    except ValueError as exc:
        print(f"sweep failed: {exc}", file=sys.stderr)
        return 2
    print(
        f"sweep {spec.name!r}: {result.total_cells} cells "
        f"({result.ran} ran, {result.skipped} already recorded) -> {args.out}"
    )
    return 0


def _cmd_sweep_cells(args: argparse.Namespace) -> int:
    spec = _load_spec_checked(args.spec)
    if spec is None:
        return 2
    for cell in spec.expand():
        print(
            f"{cell.cell_id}  {cell.family} n={cell.n} eps={cell.epsilon} "
            f"seed={cell.seed} {dict(cell.config)}"
        )
    return 0


def _cmd_sweep_extract(args: argparse.Namespace) -> int:
    from repro.sweeps import comparison_table, load_records

    try:
        records = load_records(args.out)
        table = comparison_table(
            records, rows=args.rows, cols=args.cols,
            value=args.value, agg=args.agg,
        )
    except (FileNotFoundError, KeyError, ValueError) as exc:
        print(f"extract failed: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps(table.to_json(), sort_keys=True, indent=2))
    elif args.format == "markdown":
        print(table.to_markdown())
    else:
        print(table.to_ascii())
    return 0


def _cmd_sweep_plot(args: argparse.Namespace) -> int:
    from repro.sweeps import ascii_chart, load_records, plot_payload

    try:
        records = load_records(args.out)
        payload = plot_payload(
            records, x=args.x, y=args.y, group=args.group or None
        )
    except (FileNotFoundError, KeyError, ValueError) as exc:
        print(f"plot failed: {exc}", file=sys.stderr)
        return 2
    if args.json_out:
        from pathlib import Path

        Path(args.json_out).write_text(
            json.dumps(payload, sort_keys=True, indent=2) + "\n"
        )
        print(f"wrote plot data -> {args.json_out}")
    print(ascii_chart(payload))
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    from repro.graphs.properties import profile_graph

    instance = _load_instance_checked(args.instance)
    if instance is None:
        return 2
    info = instance.describe()
    info["degeneracy"] = degeneracy(instance.graph)
    info["max_degree"] = instance.graph.max_degree
    info.update(profile_graph(instance.graph).as_dict())
    print(json.dumps(info, indent=2))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve.service import run_service

    engine = _engine_from_args(args, session_prefix="session: ")
    if engine is None:
        return 2
    try:
        service = engine.open_service(
            args.store_dir,
            socket_path=args.socket,
            max_sessions=args.max_sessions,
            checkpoint_interval=args.checkpoint_interval,
            checkpoint_on_commit=args.checkpoint_every_solve,
        )
    except ValueError as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return 2
    # Pre-admit instances given on the command line (the supervisor
    # shape: the serving set is known at deploy time).
    for path in args.instance or ():
        instance = _load_instance_checked(path)
        if instance is None:
            return 2
        service._admit(instance)
    try:
        run_service(service)
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        pass
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cli",
        description="Solve / generate / inspect allocation instances.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_solve = sub.add_parser("solve", help="run the full paper pipeline")
    p_solve.add_argument("instance", help="instance JSON file")
    p_solve.add_argument("--epsilon", type=float, default=0.2)
    p_solve.add_argument("--seed", type=int, default=0)
    p_solve.add_argument("--no-boost", action="store_true")
    p_solve.add_argument(
        "--with-opt", action="store_true",
        help="also compute the exact optimum (Dinic) and the ratio",
    )
    _add_engine_flags(p_solve)
    p_solve.set_defaults(fn=_cmd_solve)

    p_batch = sub.add_parser(
        "batch",
        help="serve a JSONL request file through a resident session",
    )
    p_batch.add_argument(
        "requests",
        help="JSONL file: one SolveRequest object per line "
             '(e.g. {"epsilon": 0.2, "capacity_updates": {"0": 3}})',
    )
    p_batch.add_argument(
        "--instance", required=True, help="shared instance JSON file"
    )
    p_batch.add_argument("--epsilon", type=float, default=0.2,
                         help="session default epsilon")
    p_batch.add_argument("--seed", type=int, default=0,
                         help="batch seed (per-position streams)")
    p_batch.add_argument("--no-boost", action="store_true",
                         help="session default: skip boosting")
    p_batch.add_argument("--workers", type=int, default=None,
                         help="thread pool size (default: cpu-based)")
    p_batch.add_argument(
        "--shard-workers", type=int, default=None,
        help="serve through a multi-process shard fleet of this size "
             "(shared-memory instances, instance-hash routing; "
             "bit-identical to the thread path — DESIGN.md §12)",
    )
    _add_engine_flags(p_batch)
    p_batch.set_defaults(fn=_cmd_batch)

    p_dyn = sub.add_parser(
        "dynamic",
        help="replay an instance-delta stream with warm incremental re-solves",
    )
    p_dyn.add_argument(
        "deltas", nargs="?", default=None,
        help="JSONL file: one delta object per line "
             '(e.g. {"type": "capacity_scale", "factor": 1.5}); '
             "omit when using --scenario",
    )
    p_dyn.add_argument(
        "--instance", required=True, help="initial instance JSON file"
    )
    p_dyn.add_argument(
        "--scenario", default=None,
        help="generate the stream instead of reading one "
             "(diurnal_wave|flash_crowd|rolling_maintenance|adversarial_churn)",
    )
    p_dyn.add_argument("--steps", type=int, default=12,
                       help="scenario length (with --scenario)")
    p_dyn.add_argument("--epsilon", type=float, default=0.2,
                       help="session default epsilon")
    p_dyn.add_argument("--seed", type=int, default=0,
                       help="prime/replay seed (per-position streams)")
    p_dyn.add_argument("--no-boost", action="store_true",
                       help="session default: skip boosting")
    p_dyn.add_argument(
        "--shard-workers", type=int, default=None,
        help="replay on a shard worker process instead of in-process "
             "(bit-identical rows — DESIGN.md §12)",
    )
    _add_engine_flags(p_dyn)
    p_dyn.set_defaults(fn=_cmd_dynamic)

    p_serve = sub.add_parser(
        "serve",
        help="run the durable-session allocation service "
             "(JSONL over a unix socket, snapshot/restore — DESIGN.md §14)",
    )
    p_serve.add_argument(
        "--store-dir", required=True,
        help="session snapshot store directory (created if missing); "
             "restart against the same directory to recover warm state",
    )
    p_serve.add_argument(
        "--socket", default=None,
        help="unix socket path (default: <store-dir>/service.sock)",
    )
    p_serve.add_argument(
        "--instance", action="append", default=None,
        help="instance JSON file to pre-admit (repeatable)",
    )
    p_serve.add_argument("--max-sessions", type=int, default=8,
                         help="resident session cap (LRU eviction-to-snapshot)")
    p_serve.add_argument(
        "--checkpoint-interval", type=float, default=None,
        help="periodic checkpoint cadence in seconds (default: off)",
    )
    p_serve.add_argument(
        "--checkpoint-every-solve", action="store_true",
        help="snapshot after every committed solve (the bit-identical "
             "crash-recovery mode)",
    )
    p_serve.add_argument("--epsilon", type=float, default=0.2,
                         help="session default epsilon")
    p_serve.add_argument("--seed", type=int, default=0,
                         help="root seed of the deterministic seed-cursor streams")
    p_serve.add_argument("--no-boost", action="store_true",
                         help="session default: skip boosting")
    _add_engine_flags(p_serve)
    p_serve.set_defaults(fn=_cmd_serve)

    p_gen = sub.add_parser("generate", help="write a benchmark-family instance")
    p_gen.add_argument("family", help=f"one of {sorted(FAMILY_BUILDERS)}")
    p_gen.add_argument("--out", required=True)
    p_gen.add_argument("--n-left", type=int, default=100)
    p_gen.add_argument("--n-right", type=int, default=80)
    p_gen.add_argument("--k", type=int, default=3)
    p_gen.add_argument("--m", type=int, default=300)
    p_gen.add_argument("--seed", type=int, default=0)
    p_gen.set_defaults(fn=_cmd_generate)

    p_info = sub.add_parser("info", help="print instance statistics")
    p_info.add_argument("instance")
    p_info.set_defaults(fn=_cmd_info)

    p_sweep = sub.add_parser(
        "sweep",
        help="run / inspect declarative parameter sweeps (repro.sweeps)",
    )
    sweep_sub = p_sweep.add_subparsers(dest="sweep_command", required=True)

    p_sw_run = sweep_sub.add_parser(
        "run", help="execute (or resume) a sweep spec into a manifest dir"
    )
    p_sw_run.add_argument("--spec", required=True, help="SweepSpec JSON file")
    p_sw_run.add_argument("--out", required=True, help="manifest directory")
    p_sw_run.add_argument(
        "--executor", choices=("inline", "process"), default="inline",
        help="inline: each cell in-process; process: fan out through "
             "the shard fleet (DESIGN.md §12)",
    )
    p_sw_run.add_argument("--workers", type=int, default=None,
                          help="process-executor fleet size")
    p_sw_run.add_argument("--verbose", action="store_true",
                          help="echo per-cell progress")
    p_sw_run.set_defaults(fn=_cmd_sweep_run)

    p_sw_cells = sweep_sub.add_parser(
        "cells", help="print a spec's expanded cells (id + axes)"
    )
    p_sw_cells.add_argument("--spec", required=True)
    p_sw_cells.set_defaults(fn=_cmd_sweep_cells)

    p_sw_extract = sweep_sub.add_parser(
        "extract", help="pivot recorded cells into a comparison table"
    )
    p_sw_extract.add_argument("--out", required=True, help="manifest directory")
    p_sw_extract.add_argument("--rows", default="family")
    p_sw_extract.add_argument("--cols", default="n")
    p_sw_extract.add_argument("--value", default="local_rounds")
    p_sw_extract.add_argument("--agg", default="mean",
                              choices=("mean", "min", "max", "sum"))
    p_sw_extract.add_argument("--format", default="ascii",
                              choices=("ascii", "markdown", "json"))
    p_sw_extract.set_defaults(fn=_cmd_sweep_extract)

    p_sw_plot = sweep_sub.add_parser(
        "plot", help="emit ASCII/JSON plot data from recorded cells"
    )
    p_sw_plot.add_argument("--out", required=True, help="manifest directory")
    p_sw_plot.add_argument("--x", default="n")
    p_sw_plot.add_argument("--y", default="local_rounds")
    p_sw_plot.add_argument("--group", default="family",
                           help="series axis ('' for a single series)")
    p_sw_plot.add_argument("--json-out", default=None,
                           help="also write the JSON plot payload here")
    p_sw_plot.set_defaults(fn=_cmd_sweep_plot)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via main()
    raise SystemExit(main())
