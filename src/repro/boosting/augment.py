"""Augmenting paths for the allocation problem.

For allocation (b ≡ 1 on L), a b-matching augmenting walk is an
alternating *path*

    free u₀ ∈ L  —unmatched→  v₁  —matched→  u₁  —unmatched→ … → v_ℓ

ending at a right vertex with residual capacity.  Applying it (swap
matched/unmatched along the path) grows the allocation by one and
preserves feasibility.  The classical bound: if no augmenting path of
length ≤ 2k−1 exists, the allocation is a ``(1+1/k)``-approximation —
the engine behind Appendix B's (1+ε) guarantee.

Two finders live here:

* :func:`find_augmenting_path` — BFS for one *shortest* augmenting
  path, bounded length; with unbounded length and repeated application
  this converges to the exact optimum (used as a reference).
* :func:`eliminate_short_augmenting_paths` — repeatedly removes all
  augmenting paths of length ≤ 2k−1: the deterministic (sequential)
  realization of the boosting target, against which the randomized
  layered framework (:mod:`repro.boosting.layered`) is validated.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

import numpy as np

from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.capacities import validate_capacities
from repro.kernels import scatter_add

__all__ = [
    "AugmentingPath",
    "find_augmenting_path",
    "apply_augmenting_path",
    "eliminate_short_augmenting_paths",
    "matched_partner_structure",
]


class AugmentingPath:
    """An alternating path as interleaved edge-id lists."""

    def __init__(self, unmatched_edges: list[int], matched_edges: list[int]):
        if len(unmatched_edges) != len(matched_edges) + 1:
            raise ValueError(
                "an augmenting path has one more unmatched than matched edge"
            )
        self.unmatched_edges = unmatched_edges
        self.matched_edges = matched_edges

    @property
    def length(self) -> int:
        """Edge count (odd by construction)."""
        return len(self.unmatched_edges) + len(self.matched_edges)


def matched_partner_structure(
    graph: BipartiteGraph, edge_mask: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """``(left_match, right_load)``: the matched edge id of each left
    vertex (−1 if free) and the matched degree of each right vertex."""
    edge_mask = np.asarray(edge_mask, dtype=bool)
    left_match = np.full(graph.n_left, -1, dtype=np.int64)
    ids = np.nonzero(edge_mask)[0]
    left_match[graph.edge_u[ids]] = ids
    right_load = scatter_add(graph.edge_v[ids], minlength=graph.n_right)
    return left_match, right_load


def find_augmenting_path(
    graph: BipartiteGraph,
    capacities: np.ndarray,
    edge_mask: np.ndarray,
    *,
    max_length: Optional[int] = None,
) -> Optional[AugmentingPath]:
    """BFS a shortest augmenting path of length ≤ ``max_length``.

    The BFS runs over left vertices: from every free ``u``, step
    unmatched-edge → right vertex → (stop if residual capacity) →
    matched-edge → next left vertex.  Right vertices are visited once
    (first visit is on a shortest prefix), left vertices once.
    """
    caps = validate_capacities(graph, capacities)
    edge_mask = np.asarray(edge_mask, dtype=bool)
    left_match, right_load = matched_partner_structure(graph, edge_mask)

    free_left = np.nonzero(left_match == -1)[0]
    # parent bookkeeping: how we reached each left vertex / right vertex.
    parent_edge_of_right = np.full(graph.n_right, -1, dtype=np.int64)
    parent_edge_of_left = np.full(graph.n_left, -1, dtype=np.int64)
    seen_left = np.zeros(graph.n_left, dtype=bool)
    seen_right = np.zeros(graph.n_right, dtype=bool)

    queue: deque[tuple[int, int]] = deque()
    for u in free_left.tolist():
        if graph.left_degrees[u] > 0:
            seen_left[u] = True
            queue.append((u, 0))  # (left vertex, unmatched edges used)

    target_right = -1
    while queue:
        u, depth = queue.popleft()
        if max_length is not None and 2 * depth + 1 > max_length:
            continue
        row_start = graph.left_indptr[u]
        for offset, v in enumerate(graph.left_neighbors(u).tolist()):
            eid = int(graph.left_edge[row_start + offset])
            if edge_mask[eid] or seen_right[v]:
                continue
            seen_right[v] = True
            parent_edge_of_right[v] = eid
            if right_load[v] < caps[v]:
                target_right = v
                queue.clear()
                break
            # Saturated: continue through each matched edge of v.
            for slot in range(graph.right_indptr[v], graph.right_indptr[v + 1]):
                meid = int(graph.right_edge[slot])
                if not edge_mask[meid]:
                    continue
                u2 = int(graph.edge_u[meid])
                if seen_left[u2]:
                    continue
                seen_left[u2] = True
                parent_edge_of_left[u2] = meid
                queue.append((u2, depth + 1))
        if target_right >= 0:
            break
    if target_right < 0:
        return None

    # Trace back.
    unmatched: list[int] = []
    matched: list[int] = []
    v = target_right
    while True:
        eid = int(parent_edge_of_right[v])
        unmatched.append(eid)
        u = int(graph.edge_u[eid])
        meid = int(parent_edge_of_left[u])
        if meid < 0:
            break
        matched.append(meid)
        v = int(graph.edge_v[meid])
    unmatched.reverse()
    matched.reverse()
    path = AugmentingPath(unmatched, matched)
    if max_length is not None and path.length > max_length:
        return None
    return path


def apply_augmenting_path(
    edge_mask: np.ndarray, path: AugmentingPath
) -> np.ndarray:
    """Return the mask with the path's edges flipped (size +1)."""
    out = np.asarray(edge_mask, dtype=bool).copy()
    for eid in path.unmatched_edges:
        if out[eid]:
            raise ValueError(f"edge {eid} expected unmatched")
        out[eid] = True
    for eid in path.matched_edges:
        if not out[eid]:
            raise ValueError(f"edge {eid} expected matched")
        out[eid] = False
    return out


def eliminate_short_augmenting_paths(
    graph: BipartiteGraph,
    capacities: np.ndarray,
    edge_mask: np.ndarray,
    *,
    max_length: Optional[int] = None,
    max_augmentations: Optional[int] = None,
) -> tuple[np.ndarray, int]:
    """Apply augmenting paths of length ≤ ``max_length`` until none
    remain (or the augmentation budget runs out).

    With ``max_length=None`` this is an exact allocation solver (every
    suboptimal allocation admits an augmenting path); with
    ``max_length = 2k−1`` the result is a (1+1/k)-approximation.
    Returns ``(mask, n_augmentations)``.
    """
    mask = np.asarray(edge_mask, dtype=bool).copy()
    count = 0
    while max_augmentations is None or count < max_augmentations:
        path = find_augmenting_path(graph, capacities, mask, max_length=max_length)
        if path is None:
            break
        mask = apply_augmenting_path(mask, path)
        count += 1
    return mask, count
