"""Appendix B: boosting a constant approximation to (1+ε)."""

from repro.boosting.augment import (
    AugmentingPath,
    find_augmenting_path,
    apply_augmenting_path,
    eliminate_short_augmenting_paths,
)
from repro.boosting.layered import (
    LayeredGraph,
    build_layered_graph,
    find_layered_augmenting_paths,
)
from repro.boosting.boost import BoostResult, boost_allocation, k_for_epsilon

__all__ = [
    "AugmentingPath",
    "find_augmenting_path",
    "apply_augmenting_path",
    "eliminate_short_augmenting_paths",
    "LayeredGraph",
    "build_layered_graph",
    "find_layered_augmenting_paths",
    "BoostResult",
    "boost_allocation",
    "k_for_epsilon",
]
