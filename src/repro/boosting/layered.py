"""The GGM22 layered-graph framework, specialized to allocation (App. B).

One boosting iteration:

1. **Copies** (Step 1): every right vertex ``v`` notionally splits into
   ``C_v`` copies — ``deg_M(v)`` matched copies (one per matched edge)
   and ``C_v − deg_M(v)`` free copies.  Left vertices have one copy
   (``b ≡ 1`` on L).
2. **Free placement** (Step 2, App. B modification): free left copies
   go to layer 0, free right copies to layer ``k+1`` — deterministic
   for allocation, unlike the general b-matching framework.
3. **Matched arcs** (Step 3): each matched edge is assigned a uniform
   layer ``ℓ ∈ {1..k}``, oriented R→L; its right copy is the layer's
   tail, its left endpoint the layer's head.
4. **Unmatched slots** (Step 4): each unmatched edge ``{u,v}`` draws a
   uniform slot ``i ∈ {0..k}`` and survives only if ``u`` is a head of
   layer ``i`` (or free with ``i = 0``) and ``v`` has a tail copy in
   layer ``i+1`` (or free capacity when ``i = k``).
5. **Contraction** (Step 5): copies of ``v`` in a layer's tail set act
   as one node of capacity = #copies.

Augmenting paths of the original instance survive this construction
with probability ``1/exp(O(2^k))`` [GGM22]; the framework then finds a
set of vertex-disjoint layered augmenting paths by running an
allocation matcher between consecutive layers — here either greedy or
the paper's own proportional algorithm (``layer_matcher``), which is
the self-hosting App. B describes (each layer-pair instance is a
subgraph of G, so its arboricity is at most λ).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Literal

import numpy as np

from repro.boosting.augment import AugmentingPath, matched_partner_structure
from repro.graphs.bipartite import BipartiteGraph, build_graph
from repro.graphs.capacities import validate_capacities
from repro.utils.rng import as_generator
from repro.utils.validation import check_nonnegative_int

__all__ = ["LayeredGraph", "build_layered_graph", "find_layered_augmenting_paths"]


@dataclass
class LayeredGraph:
    """One sampled layered structure.

    ``head_layer_of_left[u]`` — the layer whose head set contains
    ``u``'s single copy: 0 if ``u`` is free, ``ℓ ∈ {1..k}`` if its
    matched edge drew layer ℓ, −1 if ``u`` is isolated from the
    structure.  ``matched_arc_of_left[u]`` — the matched edge id
    providing that copy (−1 for free).  ``slot_edges[i]`` — unmatched
    edge ids that drew slot ``i`` and survived Step 4.
    ``tail_arcs[ℓ][v]`` — matched edge ids of ``v`` assigned to layer
    ℓ (the copies of ``v`` in ``T_ℓ``); ``free_capacity[v]`` — copies
    of ``v`` in ``T_{k+1}``.
    """

    k: int
    head_layer_of_left: np.ndarray
    matched_arc_of_left: np.ndarray
    slot_edges: list[np.ndarray]
    tail_arcs: list[dict[int, list[int]]]
    free_capacity: np.ndarray


def build_layered_graph(
    graph: BipartiteGraph,
    capacities: np.ndarray,
    edge_mask: np.ndarray,
    k: int,
    *,
    seed=None,
) -> LayeredGraph:
    """Steps 1–4 for one boosting iteration.

    The layer count ``k`` targets augmenting paths with *exactly* ``k``
    matched edges (length ``2k+1``): the path's matched edges must land
    in layers 1..k in order and its last unmatched edge must reach the
    free copies in layer ``k+1``.  ``k = 0`` is the degenerate single-
    slot structure that catches length-1 paths (free→free edges); the
    boosting driver cycles ``k`` over all target lengths.
    """
    k = check_nonnegative_int(k, "k")
    caps = validate_capacities(graph, capacities)
    edge_mask = np.asarray(edge_mask, dtype=bool)
    rng = as_generator(seed)

    left_match, right_load = matched_partner_structure(graph, edge_mask)
    free_capacity = caps - right_load
    if np.any(free_capacity < 0):
        raise ValueError("edge_mask is not a feasible allocation")

    # Step 3: layer each matched edge uniformly in {1..k}.  With k = 0
    # there are no matched layers: matched edges (and their left
    # endpoints) sit outside the structure this iteration.
    matched_ids = np.nonzero(edge_mask)[0]
    if k == 0:
        matched_layers = np.zeros(matched_ids.size, dtype=np.int64)
    else:
        matched_layers = rng.integers(1, k + 1, size=matched_ids.size)
    head_layer_of_left = np.full(graph.n_left, -1, dtype=np.int64)
    matched_arc_of_left = np.full(graph.n_left, -1, dtype=np.int64)
    tail_arcs: list[dict[int, list[int]]] = [defaultdict(list) for _ in range(k + 2)]
    for eid, layer in zip(matched_ids.tolist(), matched_layers.tolist()):
        if layer == 0:
            continue
        u = int(graph.edge_u[eid])
        v = int(graph.edge_v[eid])
        head_layer_of_left[u] = layer
        matched_arc_of_left[u] = eid
        tail_arcs[layer][v].append(eid)
    # Step 2 (allocation form): free left copies live in layer 0.
    free_left = left_match == -1
    head_layer_of_left[free_left] = 0

    # Step 4: slot each unmatched edge; keep it only when both required
    # copies exist.
    unmatched_ids = np.nonzero(~edge_mask)[0]
    slots = rng.integers(0, k + 1, size=unmatched_ids.size)
    slot_edges: list[list[int]] = [[] for _ in range(k + 1)]
    for eid, slot in zip(unmatched_ids.tolist(), slots.tolist()):
        u = int(graph.edge_u[eid])
        v = int(graph.edge_v[eid])
        if head_layer_of_left[u] != slot:
            continue
        if slot == k:
            if free_capacity[v] <= 0:
                continue
        else:
            if not tail_arcs[slot + 1].get(v):
                continue
        slot_edges[slot].append(eid)

    return LayeredGraph(
        k=k,
        head_layer_of_left=head_layer_of_left,
        matched_arc_of_left=matched_arc_of_left,
        slot_edges=[np.asarray(s, dtype=np.int64) for s in slot_edges],
        tail_arcs=tail_arcs,
        free_capacity=free_capacity.astype(np.int64),
    )


def _greedy_layer_matching(
    pairs: list[tuple[int, int, int]],
    head_available: dict[int, int],
    tail_capacity: dict[int, int],
) -> list[tuple[int, int, int]]:
    """Greedy maximal matching of (head u, tail v, edge) triples where
    each head is used ≤ once and each tail ≤ its capacity."""
    chosen: list[tuple[int, int, int]] = []
    for u, v, eid in pairs:
        if head_available.get(u, 0) > 0 and tail_capacity.get(v, 0) > 0:
            head_available[u] -= 1
            tail_capacity[v] -= 1
            chosen.append((u, v, eid))
    return chosen


def _proportional_layer_matching(
    pairs: list[tuple[int, int, int]],
    head_available: dict[int, int],
    tail_capacity: dict[int, int],
    epsilon: float,
    seed,
) -> list[tuple[int, int, int]]:
    """Use the paper's own machinery as the layer matcher A (App. B):
    solve the layer-pair allocation instance fractionally with the
    proportional dynamics, round (§6), then greedily repair.  The
    layer-pair graph is a subgraph of G, so λ does not increase."""
    from repro.core.local_driver import solve_fractional_until_certificate
    from repro.graphs.instances import AllocationInstance
    from repro.rounding.repair import greedy_fill
    from repro.rounding.sampling import round_best_of

    heads = sorted({u for u, _, _ in pairs if head_available.get(u, 0) > 0})
    tails = sorted({v for _, v, _ in pairs if tail_capacity.get(v, 0) > 0})
    if not heads or not tails:
        return []
    head_index = {u: i for i, u in enumerate(heads)}
    tail_index = {v: i for i, v in enumerate(tails)}
    usable = [
        (u, v, eid)
        for u, v, eid in pairs
        if head_available.get(u, 0) > 0 and tail_capacity.get(v, 0) > 0
    ]
    if not usable:
        return []
    sub = build_graph(
        len(heads),
        len(tails),
        [head_index[u] for u, _, _ in usable],
        [tail_index[v] for _, v, _ in usable],
    )
    sub_caps = np.asarray([tail_capacity[v] for v in tails], dtype=np.int64)
    inst = AllocationInstance(graph=sub, capacities=sub_caps, name="layer-pair")
    frac = solve_fractional_until_certificate(inst, epsilon).allocation
    rounded = round_best_of(sub, sub_caps, frac, copies=8, seed=seed)
    mask = greedy_fill(sub, sub_caps, rounded.edge_mask, order="canonical")
    chosen: list[tuple[int, int, int]] = []
    for local_eid in np.nonzero(mask)[0].tolist():
        u, v, eid = usable[local_eid]
        if head_available.get(u, 0) > 0 and tail_capacity.get(v, 0) > 0:
            head_available[u] -= 1
            tail_capacity[v] -= 1
            chosen.append((u, v, eid))
    return chosen


def find_layered_augmenting_paths(
    graph: BipartiteGraph,
    layered: LayeredGraph,
    *,
    layer_matcher: Literal["greedy", "proportional"] = "greedy",
    epsilon: float = 0.25,
    seed=None,
) -> list[AugmentingPath]:
    """Walk the layers 0..k, extending vertex-disjoint partial paths.

    At slot ``i`` the surviving unmatched edges connect active heads of
    layer ``i`` to tail copies of layer ``i+1``; a (b-)matching between
    them extends the partial paths.  Tails at layer ``ℓ ≤ k`` continue
    through one of their matched arcs to that arc's head; tails at
    ``k+1`` complete a path.
    """
    rng = as_generator(seed)
    k = layered.k

    # Active partial paths, keyed by their current head vertex.
    paths_at_head: dict[int, tuple[list[int], list[int]]] = {}
    for u in np.nonzero(layered.head_layer_of_left == 0)[0].tolist():
        if layered.matched_arc_of_left[u] == -1:
            paths_at_head[u] = ([], [])

    completed: list[AugmentingPath] = []
    # Copy tail-arc pools so extensions consume arcs.
    arc_pool: list[dict[int, list[int]]] = [
        {v: list(arcs) for v, arcs in layer.items()} for layer in layered.tail_arcs
    ]
    free_pool = layered.free_capacity.copy()

    for slot in range(0, k + 1):
        if not paths_at_head:
            break
        pairs = [
            (int(graph.edge_u[eid]), int(graph.edge_v[eid]), int(eid))
            for eid in layered.slot_edges[slot].tolist()
        ]
        head_available = {u: 1 for u in paths_at_head}
        if slot == k:
            tail_capacity = {
                v: int(free_pool[v])
                for v in {p[1] for p in pairs}
                if free_pool[v] > 0
            }
        else:
            tail_capacity = {
                v: len(arc_pool[slot + 1].get(v, []))
                for v in {p[1] for p in pairs}
            }
        if layer_matcher == "greedy":
            chosen = _greedy_layer_matching(pairs, head_available, tail_capacity)
        elif layer_matcher == "proportional":
            chosen = _proportional_layer_matching(
                pairs, head_available, tail_capacity, epsilon, rng
            )
        else:
            raise ValueError(f"unknown layer_matcher {layer_matcher!r}")

        next_paths: dict[int, tuple[list[int], list[int]]] = {}
        for u, v, eid in chosen:
            unmatched, matched = paths_at_head.pop(u)
            unmatched = unmatched + [eid]
            if slot == k:
                free_pool[v] -= 1
                completed.append(AugmentingPath(unmatched, list(matched)))
            else:
                arc = arc_pool[slot + 1][v].pop()
                u_next = int(graph.edge_u[arc])
                next_paths[u_next] = (unmatched, matched + [arc])
        # Paths that failed to extend die for this iteration.
        paths_at_head = next_paths

    return completed
