"""The (1+ε) boosting driver (Theorem 1 / Appendix B).

Input: any constant-approximate integral allocation (in the paper's
pipeline, the rounded output of the MPC algorithm).  Repeat:

1. build a fresh random layered graph (:mod:`repro.boosting.layered`);
2. extract vertex-disjoint layered augmenting paths;
3. apply them all (disjointness ⇒ simultaneous application is valid).

GGM22 show ``exp(O(2^k))·poly(1/ε)`` iterations suffice whp to destroy
every augmenting path of length ≤ 2k−1, at which point the allocation
is a ``(1+1/k)``-approximation.  The driver exposes the iteration
budget and also supports the deterministic eliminator as a reference
mode, which realizes the same guarantee sequentially.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Literal, Optional

import numpy as np

from repro.boosting.augment import (
    apply_augmenting_path,
    eliminate_short_augmenting_paths,
    find_augmenting_path,
)
from repro.boosting.layered import build_layered_graph, find_layered_augmenting_paths
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.capacities import validate_capacities
from repro.graphs.instances import AllocationInstance
from repro.utils.rng import spawn
from repro.utils.validation import check_fraction

__all__ = ["BoostResult", "k_for_epsilon", "boost_allocation"]


@dataclass(frozen=True)
class BoostResult:
    """Outcome of a boosting run."""

    edge_mask: np.ndarray
    initial_size: int
    final_size: int
    iterations_used: int
    augmentations: int
    k: int
    mode: str
    meta: dict[str, Any] = field(default_factory=dict)

    @property
    def size(self) -> int:
        return int(self.final_size)


def k_for_epsilon(epsilon: float) -> int:
    """Path-length parameter: no augmenting path of length ≤ 2k−1 ⇒
    (1+1/k)-approx, so ``k = ⌈1/ε⌉`` hits (1+ε)."""
    epsilon = check_fraction(epsilon, "epsilon")
    return max(1, math.ceil(1.0 / epsilon))


def boost_allocation(
    instance: AllocationInstance,
    edge_mask: np.ndarray,
    epsilon: float,
    *,
    mode: Literal["layered", "deterministic"] = "layered",
    iterations: Optional[int] = None,
    patience: int = 20,
    layer_matcher: Literal["greedy", "proportional"] = "greedy",
    seed=None,
) -> BoostResult:
    """Boost a constant-approximate allocation towards (1+ε).

    ``mode="layered"`` runs the randomized GGM22 iterations (stopping
    after ``iterations`` rounds or ``patience`` consecutive rounds with
    no augmentation); ``mode="deterministic"`` runs the sequential
    eliminator for the same k — the reference realization.
    """
    graph = instance.graph
    caps = validate_capacities(graph, instance.capacities)
    mask = np.asarray(edge_mask, dtype=bool).copy()
    initial = int(mask.sum())
    k = k_for_epsilon(epsilon)

    if mode == "deterministic":
        mask, n_aug = eliminate_short_augmenting_paths(
            graph, caps, mask, max_length=2 * k - 1
        )
        return BoostResult(
            edge_mask=mask,
            initial_size=initial,
            final_size=int(mask.sum()),
            iterations_used=n_aug,
            augmentations=n_aug,
            k=k,
            mode=mode,
            meta={"max_length": 2 * k - 1},
        )
    if mode != "layered":
        raise ValueError(f"unknown mode {mode!r}")

    if iterations is None:
        # GGM22's bound is exp(O(2^k)); at experiment scale a small
        # multiple of k·log n empirically reaches the plateau, and the
        # deterministic mode certifies the end state in tests.
        iterations = max(8, 4 * k * int(math.log2(max(2, graph.n_vertices))))
    streams = spawn(seed, iterations)
    # Idle patience must cover at least two full sweeps of the length
    # parameter, or a quiet j would end the run prematurely.
    patience = max(patience, 2 * k)
    n_aug = 0
    idle = 0
    used = 0
    for it in range(iterations):
        used = it + 1
        # A layered structure with parameter j catches paths of length
        # exactly 2j+1; cycle j over every target length ≤ 2k−1.
        j = it % k
        layered = build_layered_graph(graph, caps, mask, j, seed=streams[it])
        paths = find_layered_augmenting_paths(
            graph, layered, layer_matcher=layer_matcher, epsilon=min(0.25, epsilon),
            seed=streams[it],
        )
        if not paths:
            idle += 1
            if idle >= patience:
                break
            continue
        idle = 0
        for path in paths:
            mask = apply_augmenting_path(mask, path)
            n_aug += 1
    return BoostResult(
        edge_mask=mask,
        initial_size=initial,
        final_size=int(mask.sum()),
        iterations_used=used,
        augmentations=n_aug,
        k=k,
        mode=mode,
        meta={"layer_matcher": layer_matcher, "iterations_budget": iterations},
    )
