"""Exact bipartite b-matching via the flow reduction.

Identical shape to the allocation oracle, with the source arcs carrying
``b_left[u]`` instead of 1.  Flow integrality again makes the value
equal to both the integral maximum and the fractional LP optimum.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.dinic import DinicSolver
from repro.bmatching.problem import BMatchingInstance

__all__ = ["BMatchingSolution", "solve_exact_bmatching", "optimum_bmatching_value"]


@dataclass(frozen=True)
class BMatchingSolution:
    value: int
    edge_mask: np.ndarray


def solve_exact_bmatching(instance: BMatchingInstance) -> BMatchingSolution:
    """Maximum b-matching by Dinic on the capacitated network."""
    g = instance.graph
    n_nodes = 2 + g.n_left + g.n_right
    source = 0
    sink = n_nodes - 1
    solver = DinicSolver(n_nodes)
    for u in range(g.n_left):
        solver.add_edge(source, 1 + u, int(instance.b_left[u]))
    edge_arcs = np.empty(g.n_edges, dtype=np.int64)
    for e in range(g.n_edges):
        edge_arcs[e] = solver.add_edge(
            1 + int(g.edge_u[e]), 1 + g.n_left + int(g.edge_v[e]), 1
        )
    for v in range(g.n_right):
        solver.add_edge(1 + g.n_left + v, sink, int(instance.b_right[v]))
    value = solver.max_flow(source, sink)
    mask = np.zeros(g.n_edges, dtype=bool)
    for e in range(g.n_edges):
        if solver.flow_on(int(edge_arcs[e])) > 0:
            mask[e] = True
    assert int(mask.sum()) == value
    assert instance.check_feasible(mask)
    return BMatchingSolution(value=value, edge_mask=mask)


def optimum_bmatching_value(instance: BMatchingInstance) -> int:
    return solve_exact_bmatching(instance).value
