"""Bipartite b-matching: the general problem allocation specializes.

Contents: instance type + allocation embeddings, exact flow solver,
greedy baseline, and an *experimental* two-sided generalization of the
proportional dynamics (the §1.2.1 open-question playground).
"""

from repro.bmatching.problem import BMatchingInstance, from_allocation, to_allocation
from repro.bmatching.exact import (
    BMatchingSolution,
    solve_exact_bmatching,
    optimum_bmatching_value,
)
from repro.bmatching.greedy import greedy_bmatching
from repro.bmatching.proportional import BMatchingFractional, proportional_bmatching

__all__ = [
    "BMatchingInstance",
    "from_allocation",
    "to_allocation",
    "BMatchingSolution",
    "solve_exact_bmatching",
    "optimum_bmatching_value",
    "greedy_bmatching",
    "BMatchingFractional",
    "proportional_bmatching",
]
