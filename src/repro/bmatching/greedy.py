"""Greedy maximal b-matching (the ½-approximation baseline)."""

from __future__ import annotations

import numpy as np

from repro.bmatching.problem import BMatchingInstance
from repro.utils.rng import as_generator

__all__ = ["greedy_bmatching"]


def greedy_bmatching(
    instance: BMatchingInstance, *, order: str = "random", seed=None
) -> np.ndarray:
    """Scan edges, taking each one with residual capacity on both ends.

    The output is maximal, hence a ½-approximation (every optimal edge
    shares an endpoint with a chosen edge that consumed capacity the
    optimal edge would have needed).
    """
    g = instance.graph
    m = g.n_edges
    if order == "canonical":
        perm = np.arange(m, dtype=np.int64)
    elif order == "random":
        perm = as_generator(seed).permutation(m).astype(np.int64)
    else:
        raise ValueError(f"unknown order {order!r}")
    left_residual = instance.b_left.copy()
    right_residual = instance.b_right.copy()
    mask = np.zeros(m, dtype=bool)
    eu, ev = g.edge_u, g.edge_v
    for e in perm.tolist():
        u, v = eu[e], ev[e]
        if left_residual[u] > 0 and right_residual[v] > 0:
            mask[e] = True
            left_residual[u] -= 1
            right_residual[v] -= 1
    return mask
