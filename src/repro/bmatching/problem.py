"""Bipartite b-matching instances (Definition 21, bipartite case).

The b-matching problem attaches a capacity to *every* vertex; the
allocation problem is the special case ``b ≡ 1`` on the left side.
§1.2.1 poses the open question of ``o(log n)``-round constant-approx
b-matching in sublinear MPC and calls this paper's allocation result
"the first step towards answering that question" — this subpackage is
the corresponding executable playground: exact solver, greedy
baseline, and an experimental generalization of the proportional
dynamics (see :mod:`repro.bmatching.proportional`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.instances import AllocationInstance
from repro.utils.validation import check_integer_array

__all__ = ["BMatchingInstance", "from_allocation", "to_allocation"]


@dataclass(frozen=True)
class BMatchingInstance:
    """A bipartite b-matching instance: capacities on both sides.

    A feasible b-matching is an edge multiset-free subset with every
    left vertex ``u`` incident to ≤ ``b_left[u]`` chosen edges and
    every right vertex ``v`` to ≤ ``b_right[v]``.
    """

    graph: BipartiteGraph
    b_left: np.ndarray
    b_right: np.ndarray
    name: str = "bmatching"
    metadata: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        bl = check_integer_array(self.b_left, "b_left")
        br = check_integer_array(self.b_right, "b_right")
        if bl.shape != (self.graph.n_left,):
            raise ValueError(f"b_left must have shape ({self.graph.n_left},)")
        if br.shape != (self.graph.n_right,):
            raise ValueError(f"b_right must have shape ({self.graph.n_right},)")
        if (bl.size and bl.min() < 1) or (br.size and br.min() < 1):
            raise ValueError("b-values must be >= 1 everywhere")
        object.__setattr__(self, "b_left", bl)
        object.__setattr__(self, "b_right", br)
        bl.setflags(write=False)
        br.setflags(write=False)

    # ------------------------------------------------------------------
    def check_feasible(self, edge_mask: np.ndarray) -> bool:
        """Is ``edge_mask`` a b-matching?"""
        mask = np.asarray(edge_mask, dtype=bool)
        if mask.shape != (self.graph.n_edges,):
            raise ValueError("edge mask shape mismatch")
        left_used = np.bincount(self.graph.edge_u[mask], minlength=self.graph.n_left)
        right_used = np.bincount(self.graph.edge_v[mask], minlength=self.graph.n_right)
        return bool(np.all(left_used <= self.b_left) and np.all(right_used <= self.b_right))

    def total_left_capacity(self) -> int:
        return int(self.b_left.sum())

    def total_right_capacity(self) -> int:
        return int(self.b_right.sum())


def from_allocation(instance: AllocationInstance) -> BMatchingInstance:
    """Embed an allocation instance (``b ≡ 1`` on L)."""
    return BMatchingInstance(
        graph=instance.graph,
        b_left=np.ones(instance.graph.n_left, dtype=np.int64),
        b_right=instance.capacities,
        name=f"bmatch({instance.name})",
        metadata=dict(instance.metadata),
    )


def to_allocation(instance: BMatchingInstance) -> AllocationInstance:
    """Project back to allocation; requires ``b_left ≡ 1``."""
    if instance.b_left.size and instance.b_left.max() > 1:
        raise ValueError(
            "not an allocation instance: some left vertex has b > 1 "
            "(use the splitting reduction or solve as b-matching)"
        )
    return AllocationInstance(
        graph=instance.graph,
        capacities=instance.b_right,
        name=instance.name,
        metadata=dict(instance.metadata),
    )
