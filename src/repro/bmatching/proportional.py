"""Experimental proportional dynamics for two-sided b-matching.

**Extension beyond the paper.**  §1.2.1 leaves ``o(log n)``-round
constant-approximate b-matching open.  The natural generalization of
Algorithm 1 gives each left vertex ``b_left[u]`` units to distribute
proportionally (instead of 1) while the right side's threshold update
is unchanged:

    x_{u,v} = b_left[u] · β_v / Σ_{v'∈N_u} β_{v'}
    alloc_v = Σ_u x_{u,v};   β_v steps by (1+ε) on the usual thresholds.

Per-edge caps (``x_e ≤ 1``) are *not* enforced during the dynamics —
the final scaling clips edge values at 1 and rescales right loads,
which preserves both side constraints but can lose mass at vertices
whose optimal solution needs many parallel unit edges.  No guarantee
from the paper applies; the empirical behaviour (tested: feasible
output, competitive ratios on the benchmark families) is the point —
it is the measurable "first step" the paper alludes to, and the E-
suite's infrastructure makes it easy to study.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.bmatching.problem import BMatchingInstance
from repro.core.proportional import match_weight_from_alloc
from repro.kernels import proportional_round, scatter_add, workspace_for
from repro.utils.validation import check_fraction, check_positive_int

__all__ = ["BMatchingFractional", "proportional_bmatching"]


@dataclass(frozen=True)
class BMatchingFractional:
    """Fractional b-matching output with its audit numbers."""

    x: np.ndarray
    weight: float
    rounds: int

    def check_feasible(self, instance: BMatchingInstance, tol: float = 1e-6) -> bool:
        g = instance.graph
        if np.any(self.x < -tol) or np.any(self.x > 1 + tol):
            return False
        left = scatter_add(g.edge_u, weights=self.x, minlength=g.n_left)
        right = scatter_add(g.edge_v, weights=self.x, minlength=g.n_right)
        return bool(
            np.all(left <= instance.b_left + tol)
            and np.all(right <= instance.b_right + tol)
        )


def proportional_bmatching(
    instance: BMatchingInstance,
    epsilon: float,
    tau: int,
) -> BMatchingFractional:
    """Run the generalized dynamics for ``tau`` rounds and scale.

    Scaling order: clip per-edge values at 1 (clipping only reduces
    loads), then rescale each right vertex's incoming mass to its
    capacity (left loads only shrink further).
    """
    epsilon = check_fraction(epsilon, "epsilon")
    tau = check_positive_int(tau, "tau")
    g = instance.graph
    ws = workspace_for(g)
    log1p_eps = float(np.log1p(epsilon))
    b_left = instance.b_left.astype(np.float64)
    b_right = instance.b_right.astype(np.float64)

    beta_exp = np.zeros(g.n_right, dtype=np.int64)
    x = np.zeros(g.n_edges, dtype=np.float64)
    alloc = np.zeros(g.n_right, dtype=np.float64)
    for _ in range(tau):
        # The shared round kernel with per-left-vertex unit budgets
        # b_left instead of 1 (DESIGN.md §6).
        x, alloc = proportional_round(ws, beta_exp, log1p_eps, left_units=b_left)
        increase = alloc <= b_right / (1.0 + epsilon)
        decrease = alloc >= b_right * (1.0 + epsilon)
        beta_exp += increase.astype(np.int64) - decrease.astype(np.int64)

    # Feasibility scaling: clip edges at 1, then rescale right loads.
    x = np.minimum(x, 1.0)
    right = scatter_add(g.edge_v, weights=x, minlength=g.n_right)
    with np.errstate(divide="ignore", invalid="ignore"):
        scale = np.where(right > b_right, b_right / np.where(right > 0, right, 1.0), 1.0)
    x = x * scale[g.edge_v]
    weight = float(x.sum())
    out = BMatchingFractional(x=x, weight=weight, rounds=tau)
    assert out.check_feasible(instance), "scaling must produce a feasible point"
    return out
