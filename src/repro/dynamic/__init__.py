"""repro.dynamic — delta-driven dynamic instances (DESIGN.md §9).

The static pipeline solves one frozen instance; this package serves an
instance that *changes*: a typed delta algebra with validated
application and surviving-role mappings (:mod:`repro.dynamic.deltas`),
a :class:`DynamicSession` that carries the kernel workspace and the
retained converged exponents across deltas so every re-solve
warm-starts (:mod:`repro.dynamic.session`), and a suite of
reproducible scenario generators — diurnal capacity waves, flash
crowds, rolling maintenance drains, adversarial churn — on the keyed
rng slot contract (:mod:`repro.dynamic.scenarios`).

Stream replay (apply + re-solve per delta, with per-position seeds)
lives in :func:`repro.serve.replay_stream`.
"""

from __future__ import annotations

from repro.dynamic.deltas import (
    CapacityScale,
    ClientArrival,
    ClientDeparture,
    Compound,
    DeltaOutcome,
    DemandChange,
    EdgeAdd,
    EdgeRemove,
    InstanceDelta,
    ServerArrival,
    ServerDeparture,
    apply_delta,
    delta_from_json,
    delta_to_json,
    remap_exponents,
)
from repro.dynamic.scenarios import (
    SCENARIOS,
    adversarial_churn,
    correlated_flash_crowd,
    diurnal_wave,
    flash_crowd,
    rolling_maintenance,
    stream_to_trace,
    trace_to_stream,
)
from repro.dynamic.session import DynamicSession, DynamicStats

__all__ = [
    "InstanceDelta",
    "CapacityScale",
    "DemandChange",
    "ClientArrival",
    "ClientDeparture",
    "ServerArrival",
    "ServerDeparture",
    "EdgeAdd",
    "EdgeRemove",
    "Compound",
    "DeltaOutcome",
    "apply_delta",
    "remap_exponents",
    "delta_to_json",
    "delta_from_json",
    "DynamicSession",
    "DynamicStats",
    "diurnal_wave",
    "flash_crowd",
    "rolling_maintenance",
    "adversarial_churn",
    "correlated_flash_crowd",
    "stream_to_trace",
    "trace_to_stream",
    "SCENARIOS",
]
