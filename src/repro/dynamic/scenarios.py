"""Reproducible delta-stream generators (the dynamic workload suite).

Each generator is a pure function of ``(instance, steps, parameters,
seed)`` returning a list of
:class:`~repro.dynamic.deltas.InstanceDelta` — one delta per stream
step — that applies cleanly to ``instance`` when replayed in order.
Randomness follows the library's keyed rng slot contract
(:class:`~repro.utils.rng.RngFactory`): every draw comes from
``factory.get(step, slot)`` with a fixed slot per *role*, so a stream
is a pure function of ``(seed, step)`` — re-generating any prefix, or
a single step, reproduces identical deltas regardless of order.

Slot assignment (fixed per role, mirroring the pipeline's
slot-per-stage rule):

====  =======================================
slot  role
====  =======================================
0     capacity noise (jitter, bump targets)
1     arrival topology (who a new client/server connects to)
2     departure / drain selection
3     churn rewiring (edge removals and replacements)
====  =======================================

The four scenario classes:

* :func:`diurnal_wave` — every server's demand follows a sinusoid of
  the *base* capacities with per-server jitter; capacity-only deltas,
  the workspace stays resident for the whole stream.
* :func:`flash_crowd` — a burst of client arrivals (each wired to a
  few random servers) followed by their LIFO departure; structural
  deltas whose right side never changes, so the exponent remap is
  identity and the left CSR layout churns.
* :func:`rolling_maintenance` — a drain window rolls over the servers:
  each step restores the previous window (edges re-added, demand
  reset) and drains the next (edges removed, capacity pinned); emitted
  as :class:`~repro.dynamic.deltas.Compound` restore+drain events.
* :func:`adversarial_churn` — edge rewiring plus random demand flips,
  the keep-nothing-stable stress stream.

* :func:`correlated_flash_crowd` — several crowds arrive *in the same
  step*, each wired into overlapping subsets of one hot server pool
  whose demand spikes simultaneously; the correlated-failure shape
  (one viral event, many entry points) that uncorrelated
  :func:`flash_crowd` bursts cannot produce.

``SCENARIOS`` maps names to generators for the CLI and benchmarks.

Trace replay: :func:`trace_to_stream` converts a JSONL bipartite event
log into ``(instance, deltas)``; :func:`stream_to_trace` is its
inverse, so any scenario stream can be exported, shipped, and replayed
bit-for-bit elsewhere.
"""

from __future__ import annotations

import json
import math
from typing import Callable, Iterable, Optional

import numpy as np

from repro.dynamic.deltas import (
    ClientArrival,
    ClientDeparture,
    Compound,
    DemandChange,
    EdgeAdd,
    EdgeRemove,
    InstanceDelta,
)
from repro.graphs.bipartite import build_graph
from repro.graphs.instances import AllocationInstance
from repro.utils.rng import RngFactory

__all__ = [
    "diurnal_wave",
    "flash_crowd",
    "rolling_maintenance",
    "adversarial_churn",
    "correlated_flash_crowd",
    "trace_to_stream",
    "stream_to_trace",
    "SCENARIOS",
]

# The keyed rng slots (module docstring).
CAPACITY_SLOT = 0
ARRIVAL_SLOT = 1
DEPARTURE_SLOT = 2
CHURN_SLOT = 3


def diurnal_wave(
    instance: AllocationInstance,
    steps: int,
    *,
    amplitude: float = 0.4,
    period: int = 8,
    jitter: float = 0.1,
    seed=None,
) -> list[InstanceDelta]:
    """Capacity demand oscillating around the instance's base profile.

    Step ``t`` sets every capacity to ``max(1, rint(base_v · (1 +
    amplitude·sin(2π(t+1)/period) + jitter_v)))`` with per-server
    jitter drawn from slot 0 — the daily load wave over a server
    fleet.  All deltas are capacity-only.
    """
    if not (0.0 <= amplitude < 1.0):
        raise ValueError(f"amplitude must lie in [0, 1), got {amplitude}")
    if period < 2:
        raise ValueError(f"period must be >= 2, got {period}")
    base = instance.capacities.astype(np.float64)
    factory = RngFactory(seed)
    deltas: list[InstanceDelta] = []
    for t in range(steps):
        wave = 1.0 + amplitude * math.sin(2.0 * math.pi * (t + 1) / period)
        noise = factory.get(t, CAPACITY_SLOT).uniform(
            -jitter, jitter, size=base.shape[0]
        )
        caps = np.maximum(1, np.rint(base * (wave + noise))).astype(np.int64)
        deltas.append(
            DemandChange(updates={int(v): int(c) for v, c in enumerate(caps)})
        )
    return deltas


def flash_crowd(
    instance: AllocationInstance,
    steps: int,
    *,
    crowd: int = 6,
    degree: int = 2,
    start: int = 2,
    duration: Optional[int] = None,
    seed=None,
) -> list[InstanceDelta]:
    """A flash crowd: ``crowd`` clients arrive per step during the
    burst window, each wired to ``degree`` random servers (slot 1),
    then leave LIFO at the same rate.  Steps outside the burst apply
    small rotating capacity bumps (slot 0) so every step still changes
    the instance.
    """
    if crowd < 1 or degree < 1:
        raise ValueError("crowd and degree must be >= 1")
    n_right = instance.n_right
    if n_right == 0:
        raise ValueError("flash_crowd needs at least one server")
    degree = min(degree, n_right)
    if duration is None:
        duration = max(1, (steps - start) // 3)
    factory = RngFactory(seed)
    deltas: list[InstanceDelta] = []
    arrived = 0  # clients currently appended past the base left side
    base_left = instance.n_left
    base_caps = instance.capacities
    for t in range(steps):
        in_burst = start <= t < start + duration
        if in_burst:
            rng = factory.get(t, ARRIVAL_SLOT)
            neighbors = tuple(
                tuple(
                    int(v)
                    for v in rng.choice(n_right, size=degree, replace=False)
                )
                for _ in range(crowd)
            )
            deltas.append(ClientArrival(neighbors=neighbors))
            arrived += crowd
        elif arrived > 0:
            # LIFO departure of the most recent arrival block: ids are
            # the tail of the left side, so surviving ids never shift.
            leave = min(crowd, arrived)
            first = base_left + arrived - leave
            deltas.append(
                ClientDeparture(clients=tuple(range(first, first + leave)))
            )
            arrived -= leave
        else:
            rng = factory.get(t, CAPACITY_SLOT)
            v = int(rng.integers(0, n_right))
            bump = int(base_caps[v]) + int(rng.integers(1, 3))
            deltas.append(DemandChange(updates={v: bump}))
    return deltas


def rolling_maintenance(
    instance: AllocationInstance,
    steps: int,
    *,
    window: int = 2,
    seed=None,
) -> list[InstanceDelta]:
    """A maintenance drain rolling over the server fleet.

    Each step emits one :class:`Compound`: re-add the previously
    drained window's edges and restore its demand, then drain the next
    ``window`` servers (demand 0 removes their incident edges).  The
    rolling order is a seed-keyed permutation of the servers (slot 2),
    so the stream is reproducible but not id-ordered.
    """
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    n_right = instance.n_right
    if n_right == 0:
        raise ValueError("rolling_maintenance needs at least one server")
    window = min(window, n_right)
    factory = RngFactory(seed)
    order = factory.get(0, DEPARTURE_SLOT).permutation(n_right)
    g = instance.graph
    base_caps = instance.capacities

    def incident_edges(v: int) -> list[tuple[int, int]]:
        return [(int(u), int(v)) for u in g.right_neighbors(v)]

    deltas: list[InstanceDelta] = []
    drained: list[int] = []
    cursor = 0
    for _ in range(steps):
        parts: list[InstanceDelta] = []
        updates: dict[int, int] = {}
        restore_edges: list[tuple[int, int]] = []
        for v in drained:
            restore_edges.extend(incident_edges(v))
            updates[v] = int(base_caps[v])
        if restore_edges:
            parts.append(EdgeAdd(edges=tuple(restore_edges)))
        next_window = [int(order[(cursor + i) % n_right]) for i in range(window)]
        cursor = (cursor + window) % n_right
        for v in next_window:
            updates[v] = 0
        parts.append(DemandChange(updates=updates))
        deltas.append(Compound(deltas=tuple(parts)))
        drained = next_window
    return deltas


def adversarial_churn(
    instance: AllocationInstance,
    steps: int,
    *,
    churn: int = 4,
    demand_flips: int = 2,
    seed=None,
) -> list[InstanceDelta]:
    """Keep-nothing-stable churn: per step, remove ``churn`` random
    existing edges, add ``churn`` random absent pairs (slot 3), and
    flip ``demand_flips`` random capacities between 1 and 3× base
    (slot 0).  The generator tracks the evolving edge set so every
    emitted delta is valid when replayed in order.
    """
    if churn < 0 or demand_flips < 0:
        raise ValueError("churn and demand_flips must be >= 0")
    g = instance.graph
    n_left, n_right = g.n_left, g.n_right
    if n_left == 0 or n_right == 0:
        raise ValueError("adversarial_churn needs both sides non-empty")
    factory = RngFactory(seed)
    edges = {(int(u), int(v)) for u, v in zip(g.edge_u, g.edge_v)}
    base_caps = instance.capacities
    deltas: list[InstanceDelta] = []
    for t in range(steps):
        parts: list[InstanceDelta] = []
        rng = factory.get(t, CHURN_SLOT)
        current = sorted(edges)
        n_remove = min(churn, len(current))
        removed: list[tuple[int, int]] = []
        if n_remove:
            picks = rng.choice(len(current), size=n_remove, replace=False)
            removed = [current[int(i)] for i in picks]
            parts.append(EdgeRemove(edges=tuple(removed)))
            edges.difference_update(removed)
        added: list[tuple[int, int]] = []
        attempts = 0
        while len(added) < churn and attempts < 20 * max(1, churn):
            attempts += 1
            pair = (int(rng.integers(0, n_left)), int(rng.integers(0, n_right)))
            if pair in edges or pair in added:
                continue
            added.append(pair)
        if added:
            parts.append(EdgeAdd(edges=tuple(added)))
            edges.update(added)
        if demand_flips:
            rng_c = factory.get(t, CAPACITY_SLOT)
            updates = {}
            for _ in range(demand_flips):
                v = int(rng_c.integers(0, n_right))
                updates[v] = max(1, int(rng_c.integers(1, 3 * int(base_caps[v]) + 1)))
            parts.append(DemandChange(updates=updates))
        deltas.append(Compound(deltas=tuple(parts)))
    return deltas


def correlated_flash_crowd(
    instance: AllocationInstance,
    steps: int,
    *,
    crowds: int = 3,
    crowd: int = 4,
    degree: int = 2,
    hot_fraction: float = 0.25,
    spike: int = 2,
    start: int = 1,
    duration: Optional[int] = None,
    seed=None,
) -> list[InstanceDelta]:
    """Correlated demand spikes: many crowds, one hot server pool.

    Slot 1 picks a hot pool of ``max(degree, hot_fraction · n_right)``
    servers once, up front.  During the burst window each step emits a
    single :class:`Compound` holding ``crowds`` simultaneous
    :class:`ClientArrival` blocks — every new client wired to
    ``degree`` servers drawn *from the hot pool*, so the crowds'
    neighborhoods overlap heavily — plus a :class:`DemandChange`
    multiplying each hot server's capacity by ``spike`` (slot 0 keys
    the per-step selection of which hot servers spike).  After the
    burst the arrivals depart LIFO and the hot pool's demand is
    restored; once everyone has left, steps fall back to small rotating
    capacity bumps on the hot pool so every step still changes the
    instance (the :func:`flash_crowd` convention).
    """
    if crowds < 1 or crowd < 1 or degree < 1:
        raise ValueError("crowds, crowd, and degree must be >= 1")
    if not (0.0 < hot_fraction <= 1.0):
        raise ValueError(f"hot_fraction must lie in (0, 1], got {hot_fraction}")
    if spike < 1:
        raise ValueError(f"spike must be >= 1, got {spike}")
    n_right = instance.n_right
    if n_right == 0:
        raise ValueError("correlated_flash_crowd needs at least one server")
    degree = min(degree, n_right)
    if duration is None:
        duration = max(1, (steps - start) // 3)
    factory = RngFactory(seed)
    pool_size = min(n_right, max(degree, int(round(hot_fraction * n_right))))
    hot_pool = np.sort(
        factory.get(0, ARRIVAL_SLOT).choice(n_right, size=pool_size, replace=False)
    )
    base_caps = instance.capacities
    deltas: list[InstanceDelta] = []
    arrived = 0
    base_left = instance.n_left
    spiked = False
    for t in range(steps):
        in_burst = start <= t < start + duration
        if in_burst:
            rng = factory.get(t, ARRIVAL_SLOT)
            parts: list[InstanceDelta] = []
            for _ in range(crowds):
                neighbors = tuple(
                    tuple(
                        int(hot_pool[i])
                        for i in rng.choice(pool_size, size=degree, replace=False)
                    )
                    for _ in range(crowd)
                )
                parts.append(ClientArrival(neighbors=neighbors))
                arrived += crowd
            rng_c = factory.get(t, CAPACITY_SLOT)
            n_spike = max(1, pool_size // 2)
            targets = rng_c.choice(pool_size, size=n_spike, replace=False)
            updates = {
                int(hot_pool[i]): int(base_caps[hot_pool[i]]) * spike
                for i in targets
            }
            parts.append(DemandChange(updates=updates))
            spiked = True
            deltas.append(Compound(deltas=tuple(parts)))
        elif arrived > 0:
            parts = []
            leave = min(crowds * crowd, arrived)
            first = base_left + arrived - leave
            parts.append(ClientDeparture(clients=tuple(range(first, first + leave))))
            arrived -= leave
            if spiked:
                parts.append(
                    DemandChange(
                        updates={
                            int(v): int(base_caps[v]) for v in hot_pool
                        }
                    )
                )
                spiked = False
            deltas.append(Compound(deltas=tuple(parts)))
        else:
            rng = factory.get(t, CAPACITY_SLOT)
            v = int(hot_pool[int(rng.integers(0, pool_size))])
            deltas.append(
                DemandChange(updates={v: int(base_caps[v]) + int(rng.integers(1, 3))})
            )
    return deltas


# ---------------------------------------------------------------------------
# Trace replay: JSONL event log  ↔  (instance, delta stream)
# ---------------------------------------------------------------------------

def _delta_to_event(delta: InstanceDelta) -> dict:
    if isinstance(delta, ClientArrival):
        return {"event": "arrive",
                "neighbors": [list(nbrs) for nbrs in delta.neighbors]}
    if isinstance(delta, ClientDeparture):
        return {"event": "depart", "clients": list(delta.clients)}
    if isinstance(delta, DemandChange):
        return {"event": "demand",
                "updates": {str(v): int(c) for v, c in sorted(delta.updates.items())}}
    if isinstance(delta, EdgeAdd):
        return {"event": "edge_add", "edges": [list(e) for e in delta.edges]}
    if isinstance(delta, EdgeRemove):
        return {"event": "edge_remove", "edges": [list(e) for e in delta.edges]}
    if isinstance(delta, Compound):
        return {"event": "compound",
                "parts": [_delta_to_event(part) for part in delta.deltas]}
    raise TypeError(f"cannot serialise delta of type {type(delta).__name__}")


def _event_to_delta(event: dict) -> InstanceDelta:
    kind = event.get("event")
    if kind == "arrive":
        return ClientArrival(
            neighbors=tuple(tuple(int(v) for v in nbrs)
                            for nbrs in event["neighbors"])
        )
    if kind == "depart":
        return ClientDeparture(clients=tuple(int(u) for u in event["clients"]))
    if kind == "demand":
        return DemandChange(
            updates={int(v): int(c) for v, c in event["updates"].items()}
        )
    if kind == "edge_add":
        return EdgeAdd(edges=tuple((int(u), int(v)) for u, v in event["edges"]))
    if kind == "edge_remove":
        return EdgeRemove(edges=tuple((int(u), int(v)) for u, v in event["edges"]))
    if kind == "compound":
        return Compound(
            deltas=tuple(_event_to_delta(part) for part in event["parts"])
        )
    raise ValueError(f"unknown trace event {kind!r}")


def trace_to_stream(
    lines: Iterable[str],
) -> tuple[AllocationInstance, list[InstanceDelta]]:
    """Parse a JSONL bipartite event log into ``(instance, deltas)``.

    The first line must be an ``init`` event carrying the base
    bipartite graph and capacities; every following line is one stream
    step.  The format is exactly what :func:`stream_to_trace` emits,
    so ``trace_to_stream(stream_to_trace(inst, deltas))`` round-trips
    bit-for-bit::

        {"event": "init", "n_left": 4, "n_right": 2,
         "edges": [[0, 0], [1, 1]], "capacities": [2, 2]}
        {"event": "arrive", "neighbors": [[0], [1]]}
        {"event": "demand", "updates": {"0": 3}}

    Accepts any iterable of strings (an open file, ``Path.read_text()
    .splitlines()``, a list); blank lines are skipped.
    """
    it = (line for line in lines if line.strip())
    try:
        head = json.loads(next(it))
    except StopIteration:
        raise ValueError("empty trace: expected an init event") from None
    if head.get("event") != "init":
        raise ValueError(
            f"first trace event must be 'init', got {head.get('event')!r}"
        )
    n_left = int(head["n_left"])
    n_right = int(head["n_right"])
    edges = head.get("edges", [])
    eu = np.asarray([int(u) for u, _ in edges], dtype=np.int64)
    ev = np.asarray([int(v) for _, v in edges], dtype=np.int64)
    graph = build_graph(n_left, n_right, eu, ev)
    caps = np.asarray([int(c) for c in head["capacities"]], dtype=np.int64)
    instance = AllocationInstance(
        graph=graph,
        capacities=caps,
        arboricity_upper_bound=head.get("lambda_bound"),
        name=str(head.get("name", "trace")),
        metadata={"family": "trace_replay"},
    )
    deltas = [_event_to_delta(json.loads(line)) for line in it]
    return instance, deltas


def stream_to_trace(
    instance: AllocationInstance, deltas: Iterable[InstanceDelta]
) -> list[str]:
    """Serialise ``(instance, deltas)`` as JSONL lines (see
    :func:`trace_to_stream`).  Keys are sorted so equal streams always
    produce byte-identical traces."""
    g = instance.graph
    head = {
        "event": "init",
        "n_left": g.n_left,
        "n_right": g.n_right,
        "edges": [[int(u), int(v)] for u, v in zip(g.edge_u, g.edge_v)],
        "capacities": [int(c) for c in instance.capacities],
        "lambda_bound": instance.arboricity_upper_bound,
        "name": instance.name,
    }
    lines = [json.dumps(head, sort_keys=True)]
    lines.extend(
        json.dumps(_delta_to_event(d), sort_keys=True) for d in deltas
    )
    return lines


SCENARIOS: dict[str, Callable[..., list[InstanceDelta]]] = {
    "diurnal_wave": diurnal_wave,
    "flash_crowd": flash_crowd,
    "rolling_maintenance": rolling_maintenance,
    "adversarial_churn": adversarial_churn,
    "correlated_flash_crowd": correlated_flash_crowd,
}
