"""Reproducible delta-stream generators (the dynamic workload suite).

Each generator is a pure function of ``(instance, steps, parameters,
seed)`` returning a list of
:class:`~repro.dynamic.deltas.InstanceDelta` — one delta per stream
step — that applies cleanly to ``instance`` when replayed in order.
Randomness follows the library's keyed rng slot contract
(:class:`~repro.utils.rng.RngFactory`): every draw comes from
``factory.get(step, slot)`` with a fixed slot per *role*, so a stream
is a pure function of ``(seed, step)`` — re-generating any prefix, or
a single step, reproduces identical deltas regardless of order.

Slot assignment (fixed per role, mirroring the pipeline's
slot-per-stage rule):

====  =======================================
slot  role
====  =======================================
0     capacity noise (jitter, bump targets)
1     arrival topology (who a new client/server connects to)
2     departure / drain selection
3     churn rewiring (edge removals and replacements)
====  =======================================

The four scenario classes:

* :func:`diurnal_wave` — every server's demand follows a sinusoid of
  the *base* capacities with per-server jitter; capacity-only deltas,
  the workspace stays resident for the whole stream.
* :func:`flash_crowd` — a burst of client arrivals (each wired to a
  few random servers) followed by their LIFO departure; structural
  deltas whose right side never changes, so the exponent remap is
  identity and the left CSR layout churns.
* :func:`rolling_maintenance` — a drain window rolls over the servers:
  each step restores the previous window (edges re-added, demand
  reset) and drains the next (edges removed, capacity pinned); emitted
  as :class:`~repro.dynamic.deltas.Compound` restore+drain events.
* :func:`adversarial_churn` — edge rewiring plus random demand flips,
  the keep-nothing-stable stress stream.

``SCENARIOS`` maps names to generators for the CLI and benchmarks.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

import numpy as np

from repro.dynamic.deltas import (
    ClientArrival,
    ClientDeparture,
    Compound,
    DemandChange,
    EdgeAdd,
    EdgeRemove,
    InstanceDelta,
)
from repro.graphs.instances import AllocationInstance
from repro.utils.rng import RngFactory

__all__ = [
    "diurnal_wave",
    "flash_crowd",
    "rolling_maintenance",
    "adversarial_churn",
    "SCENARIOS",
]

# The keyed rng slots (module docstring).
CAPACITY_SLOT = 0
ARRIVAL_SLOT = 1
DEPARTURE_SLOT = 2
CHURN_SLOT = 3


def diurnal_wave(
    instance: AllocationInstance,
    steps: int,
    *,
    amplitude: float = 0.4,
    period: int = 8,
    jitter: float = 0.1,
    seed=None,
) -> list[InstanceDelta]:
    """Capacity demand oscillating around the instance's base profile.

    Step ``t`` sets every capacity to ``max(1, rint(base_v · (1 +
    amplitude·sin(2π(t+1)/period) + jitter_v)))`` with per-server
    jitter drawn from slot 0 — the daily load wave over a server
    fleet.  All deltas are capacity-only.
    """
    if not (0.0 <= amplitude < 1.0):
        raise ValueError(f"amplitude must lie in [0, 1), got {amplitude}")
    if period < 2:
        raise ValueError(f"period must be >= 2, got {period}")
    base = instance.capacities.astype(np.float64)
    factory = RngFactory(seed)
    deltas: list[InstanceDelta] = []
    for t in range(steps):
        wave = 1.0 + amplitude * math.sin(2.0 * math.pi * (t + 1) / period)
        noise = factory.get(t, CAPACITY_SLOT).uniform(
            -jitter, jitter, size=base.shape[0]
        )
        caps = np.maximum(1, np.rint(base * (wave + noise))).astype(np.int64)
        deltas.append(
            DemandChange(updates={int(v): int(c) for v, c in enumerate(caps)})
        )
    return deltas


def flash_crowd(
    instance: AllocationInstance,
    steps: int,
    *,
    crowd: int = 6,
    degree: int = 2,
    start: int = 2,
    duration: Optional[int] = None,
    seed=None,
) -> list[InstanceDelta]:
    """A flash crowd: ``crowd`` clients arrive per step during the
    burst window, each wired to ``degree`` random servers (slot 1),
    then leave LIFO at the same rate.  Steps outside the burst apply
    small rotating capacity bumps (slot 0) so every step still changes
    the instance.
    """
    if crowd < 1 or degree < 1:
        raise ValueError("crowd and degree must be >= 1")
    n_right = instance.n_right
    if n_right == 0:
        raise ValueError("flash_crowd needs at least one server")
    degree = min(degree, n_right)
    if duration is None:
        duration = max(1, (steps - start) // 3)
    factory = RngFactory(seed)
    deltas: list[InstanceDelta] = []
    arrived = 0  # clients currently appended past the base left side
    base_left = instance.n_left
    base_caps = instance.capacities
    for t in range(steps):
        in_burst = start <= t < start + duration
        if in_burst:
            rng = factory.get(t, ARRIVAL_SLOT)
            neighbors = tuple(
                tuple(
                    int(v)
                    for v in rng.choice(n_right, size=degree, replace=False)
                )
                for _ in range(crowd)
            )
            deltas.append(ClientArrival(neighbors=neighbors))
            arrived += crowd
        elif arrived > 0:
            # LIFO departure of the most recent arrival block: ids are
            # the tail of the left side, so surviving ids never shift.
            leave = min(crowd, arrived)
            first = base_left + arrived - leave
            deltas.append(
                ClientDeparture(clients=tuple(range(first, first + leave)))
            )
            arrived -= leave
        else:
            rng = factory.get(t, CAPACITY_SLOT)
            v = int(rng.integers(0, n_right))
            bump = int(base_caps[v]) + int(rng.integers(1, 3))
            deltas.append(DemandChange(updates={v: bump}))
    return deltas


def rolling_maintenance(
    instance: AllocationInstance,
    steps: int,
    *,
    window: int = 2,
    seed=None,
) -> list[InstanceDelta]:
    """A maintenance drain rolling over the server fleet.

    Each step emits one :class:`Compound`: re-add the previously
    drained window's edges and restore its demand, then drain the next
    ``window`` servers (demand 0 removes their incident edges).  The
    rolling order is a seed-keyed permutation of the servers (slot 2),
    so the stream is reproducible but not id-ordered.
    """
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    n_right = instance.n_right
    if n_right == 0:
        raise ValueError("rolling_maintenance needs at least one server")
    window = min(window, n_right)
    factory = RngFactory(seed)
    order = factory.get(0, DEPARTURE_SLOT).permutation(n_right)
    g = instance.graph
    base_caps = instance.capacities

    def incident_edges(v: int) -> list[tuple[int, int]]:
        return [(int(u), int(v)) for u in g.right_neighbors(v)]

    deltas: list[InstanceDelta] = []
    drained: list[int] = []
    cursor = 0
    for _ in range(steps):
        parts: list[InstanceDelta] = []
        updates: dict[int, int] = {}
        restore_edges: list[tuple[int, int]] = []
        for v in drained:
            restore_edges.extend(incident_edges(v))
            updates[v] = int(base_caps[v])
        if restore_edges:
            parts.append(EdgeAdd(edges=tuple(restore_edges)))
        next_window = [int(order[(cursor + i) % n_right]) for i in range(window)]
        cursor = (cursor + window) % n_right
        for v in next_window:
            updates[v] = 0
        parts.append(DemandChange(updates=updates))
        deltas.append(Compound(deltas=tuple(parts)))
        drained = next_window
    return deltas


def adversarial_churn(
    instance: AllocationInstance,
    steps: int,
    *,
    churn: int = 4,
    demand_flips: int = 2,
    seed=None,
) -> list[InstanceDelta]:
    """Keep-nothing-stable churn: per step, remove ``churn`` random
    existing edges, add ``churn`` random absent pairs (slot 3), and
    flip ``demand_flips`` random capacities between 1 and 3× base
    (slot 0).  The generator tracks the evolving edge set so every
    emitted delta is valid when replayed in order.
    """
    if churn < 0 or demand_flips < 0:
        raise ValueError("churn and demand_flips must be >= 0")
    g = instance.graph
    n_left, n_right = g.n_left, g.n_right
    if n_left == 0 or n_right == 0:
        raise ValueError("adversarial_churn needs both sides non-empty")
    factory = RngFactory(seed)
    edges = {(int(u), int(v)) for u, v in zip(g.edge_u, g.edge_v)}
    base_caps = instance.capacities
    deltas: list[InstanceDelta] = []
    for t in range(steps):
        parts: list[InstanceDelta] = []
        rng = factory.get(t, CHURN_SLOT)
        current = sorted(edges)
        n_remove = min(churn, len(current))
        removed: list[tuple[int, int]] = []
        if n_remove:
            picks = rng.choice(len(current), size=n_remove, replace=False)
            removed = [current[int(i)] for i in picks]
            parts.append(EdgeRemove(edges=tuple(removed)))
            edges.difference_update(removed)
        added: list[tuple[int, int]] = []
        attempts = 0
        while len(added) < churn and attempts < 20 * max(1, churn):
            attempts += 1
            pair = (int(rng.integers(0, n_left)), int(rng.integers(0, n_right)))
            if pair in edges or pair in added:
                continue
            added.append(pair)
        if added:
            parts.append(EdgeAdd(edges=tuple(added)))
            edges.update(added)
        if demand_flips:
            rng_c = factory.get(t, CAPACITY_SLOT)
            updates = {}
            for _ in range(demand_flips):
                v = int(rng_c.integers(0, n_right))
                updates[v] = max(1, int(rng_c.integers(1, 3 * int(base_caps[v]) + 1)))
            parts.append(DemandChange(updates=updates))
        deltas.append(Compound(deltas=tuple(parts)))
    return deltas


SCENARIOS: dict[str, Callable[..., list[InstanceDelta]]] = {
    "diurnal_wave": diurnal_wave,
    "flash_crowd": flash_crowd,
    "rolling_maintenance": rolling_maintenance,
    "adversarial_churn": adversarial_churn,
}
