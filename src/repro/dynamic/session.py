"""Delta-driven incremental re-solves over a resident session.

A :class:`DynamicSession` is the serving story for *changing*
instances (DESIGN.md §9): it owns a
:class:`~repro.serve.AllocationSession` for the current instance and,
on every applied :class:`~repro.dynamic.deltas.InstanceDelta`,

1. produces the valid post-delta instance and surviving-role mapping
   (:func:`~repro.dynamic.deltas.apply_delta`),
2. carries the kernel workspace across: capacity-only deltas share the
   graph object, so the resident
   :class:`~repro.kernels.RoundWorkspace` is reused untouched;
   structural deltas rebuild it incrementally
   (:func:`~repro.kernels.transplant_workspace` re-adopts each CSR
   side whose layout survived), and
3. remaps the retained converged β exponents through the role mapping
   (:func:`~repro.dynamic.deltas.remap_exponents`) and primes them
   into the new session, so the next re-solve warm-starts.

Warm incremental re-solves carry the *same* validation as static
solves: the λ-free certificate is asserted on termination and the
integral output is re-checked against Definition 5 (the
``AllocationSession`` warm-path contract).  When a delta invalidates
the warm state — no completed solve yet, or no server survived the
delta — the session falls back to a cold solve and records it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.core.pipeline import PipelineResult
from repro.dynamic.deltas import (
    DeltaOutcome,
    InstanceDelta,
    apply_delta,
    remap_exponents,
)
from repro.graphs.instances import AllocationInstance
from repro.kernels import transplant_workspace
from repro.serve.session import AllocationSession, SolveRequest

__all__ = ["DynamicStats", "DynamicSession"]


@dataclass
class DynamicStats:
    """Counters a dynamic serving layer would export."""

    deltas_applied: int = 0
    noop_deltas: int = 0
    capacity_patches: int = 0        # graph object shared, workspace resident
    structural_rebuilds: int = 0     # new graph, workspace transplanted
    layouts_reused: int = 0          # CSR sides adopted across rebuilds (of 2 each)
    warm_resolves: int = 0
    cold_resolves: int = 0
    cold_fallbacks: int = 0          # deltas that invalidated the warm state

    def as_dict(self) -> dict[str, int]:
        return {
            "deltas_applied": self.deltas_applied,
            "noop_deltas": self.noop_deltas,
            "capacity_patches": self.capacity_patches,
            "structural_rebuilds": self.structural_rebuilds,
            "layouts_reused": self.layouts_reused,
            "warm_resolves": self.warm_resolves,
            "cold_resolves": self.cold_resolves,
            "cold_fallbacks": self.cold_fallbacks,
        }


class DynamicSession:
    """A resident solver for one *evolving* instance.

    Construct on the initial instance, :meth:`resolve` once to
    establish the warm state, then alternate :meth:`apply` /
    :meth:`resolve` (or use :meth:`step`, or drive a whole stream with
    :func:`repro.serve.replay_stream`).  Constructor keywords mirror
    :class:`~repro.serve.AllocationSession` and become the defaults of
    every generation of the underlying session.

    ``lam`` intentionally defaults to ``None`` (λ-oblivious guessing):
    deltas that add edges clear the instance's certified arboricity
    bound, and a fixed λ that the grown instance exceeds would make the
    certificate unreachable.
    """

    def __init__(self, instance: AllocationInstance, **session_kwargs: Any):
        self._session_kwargs = dict(session_kwargs)
        self.session = AllocationSession(instance, **self._session_kwargs)
        self.stats = DynamicStats()
        self.last_outcome: Optional[DeltaOutcome] = None

    @property
    def instance(self) -> AllocationInstance:
        """The current (post-delta) instance."""
        return self.session.instance

    # -- delta lifecycle -----------------------------------------------
    def apply(self, delta: InstanceDelta) -> DeltaOutcome:
        """Apply one delta: new instance, workspace carry-over, warm
        state remap.  Returns the :class:`DeltaOutcome`; the next
        :meth:`resolve` runs against the new instance."""
        outcome = apply_delta(self.instance, delta)
        self.stats.deltas_applied += 1
        self.last_outcome = outcome
        if outcome.noop:
            # Same instance object: the resident session is already
            # exactly the warm re-solve of the unchanged instance.
            self.stats.noop_deltas += 1
            return outcome

        old = self.session
        exponents = old.exponents_snapshot()
        if outcome.structure_changed:
            self.stats.structural_rebuilds += 1
            workspace = transplant_workspace(
                outcome.instance.graph, old.workspace
            )
            self.stats.layouts_reused += int(
                workspace.left is old.workspace.left
            ) + int(workspace.right is old.workspace.right)
        else:
            # Capacity-only: outcome.instance shares the graph object,
            # so the new session resolves the same resident workspace.
            self.stats.capacity_patches += 1
        self.session = AllocationSession(
            outcome.instance, **self._session_kwargs
        )
        if exponents is None:
            return outcome
        if outcome.surviving_right == 0:
            # Nothing to remap through — the delta invalidated the
            # retained state entirely; the next resolve runs cold.
            self.stats.cold_fallbacks += 1
            return outcome
        self.session.prime_exponents(
            remap_exponents(
                exponents, outcome.right_map, outcome.instance.n_right
            )
        )
        return outcome

    # -- solving -------------------------------------------------------
    def resolve(
        self, request: Optional[SolveRequest] = None, **overrides: Any
    ) -> PipelineResult:
        """Re-solve the current instance, warm-starting from the
        remapped exponents when available (cold otherwise), with the
        full warm-path validation."""
        result = self.session.solve(request, **overrides)
        if result.meta.get("warm_start"):
            self.stats.warm_resolves += 1
        else:
            self.stats.cold_resolves += 1
        return result

    def step(
        self,
        delta: InstanceDelta,
        request: Optional[SolveRequest] = None,
        **overrides: Any,
    ) -> tuple[DeltaOutcome, PipelineResult]:
        """:meth:`apply` then :meth:`resolve` — one stream event."""
        outcome = self.apply(delta)
        return outcome, self.resolve(request, **overrides)

    def reset(self) -> None:
        """Drop the warm state; the next resolve runs cold."""
        self.session.reset()
