"""The typed instance-delta algebra (DESIGN.md §9).

A dynamic workload is a stream of small mutations against a resident
:class:`~repro.graphs.instances.AllocationInstance`: server capacities
drift, clients arrive and depart, edges churn.  Each mutation is a
frozen :class:`InstanceDelta` value, and :func:`apply_delta` turns
``(instance, delta)`` into a :class:`DeltaOutcome`: a *valid* new
instance plus the role mapping that tells the serving layer which
vertices survived — the contract the warm-start remap
(:func:`remap_exponents`) is built on.

Delta types
-----------
* :class:`CapacityScale` — multiply capacities (all or a subset) by a
  factor, flooring at 1.  Capacity-only: the graph object is shared.
* :class:`DemandChange` — set absolute capacities per server.  A value
  of ``0`` *drains* the server: its incident edges are removed and its
  capacity is pinned to 1 on the now-isolated vertex, so the instance
  stays within Definition 5's ``C_v ≥ 1`` and the proportional rounds
  never divide by zero.  Ids are preserved (a drain is not a removal).
* :class:`ClientArrival` / :class:`ClientDeparture` — append left
  vertices with explicit neighbor lists / remove left vertices (ids
  compact; the mapping records survivors).
* :class:`ServerArrival` / :class:`ServerDeparture` — the same for
  right vertices, with per-server capacities on arrival.  Server
  removal is the delta that makes the exponent remap non-trivial.
* :class:`EdgeAdd` / :class:`EdgeRemove` — edge churn; additions must
  not duplicate existing edges, removals must name existing edges.
* :class:`Compound` — apply a tuple of deltas in sequence as one
  stream event; the role maps compose.

No-op detection: a delta that leaves the instance unchanged (empty
argument lists, capacities set to their current values, scaling by a
factor that rounds every capacity to itself) returns the *same
instance object* with identity maps — the serving layer then re-solves
warm with bit-identical state, which the test suite asserts.

Validity rules: arboricity upper bounds survive monotone shrinking
(removals, drains) because arboricity is subgraph-monotone; any delta
that can add edges clears the bound to ``None`` (the λ-oblivious
guessing loop takes over downstream).

Every delta serializes to one JSON object (``{"type": ..., ...}``) via
:func:`delta_to_json` / :func:`delta_from_json` — the JSONL stream
format the ``repro dynamic`` CLI and the scenario generators share.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Optional, Sequence, Union

import numpy as np

from repro.graphs.bipartite import build_graph
from repro.graphs.instances import AllocationInstance

__all__ = [
    "InstanceDelta",
    "CapacityScale",
    "DemandChange",
    "ClientArrival",
    "ClientDeparture",
    "ServerArrival",
    "ServerDeparture",
    "EdgeAdd",
    "EdgeRemove",
    "Compound",
    "DeltaOutcome",
    "apply_delta",
    "remap_exponents",
    "delta_to_json",
    "delta_from_json",
    "DELTA_TYPES",
]


def _int_tuple(values: Any, label: str) -> tuple[int, ...]:
    out = []
    for v in values:
        if isinstance(v, bool) or not isinstance(v, (int, np.integer)):
            raise ValueError(f"{label} must contain integers, got {v!r}")
        out.append(int(v))
    return tuple(out)


def _pair_tuple(values: Any, label: str) -> tuple[tuple[int, int], ...]:
    out = []
    for pair in values:
        pair = _int_tuple(pair, label)
        if len(pair) != 2:
            raise ValueError(f"{label} entries must be (u, v) pairs, got {pair!r}")
        out.append(pair)
    return tuple(out)


def _nested_tuple(values: Any, label: str) -> tuple[tuple[int, ...], ...]:
    return tuple(_int_tuple(row, label) for row in values)


@dataclass(frozen=True)
class CapacityScale:
    """Scale capacities by ``factor`` (all servers, or ``vertices``),
    flooring at 1.  Rounding is ``np.rint`` (round half to even), so
    the delta is a pure function of the current capacity vector."""

    factor: float
    vertices: Optional[tuple[int, ...]] = None
    kind = "capacity_scale"

    def __post_init__(self) -> None:
        if not (float(self.factor) > 0.0):
            raise ValueError(f"scale factor must be positive, got {self.factor}")
        if self.vertices is not None:
            object.__setattr__(
                self, "vertices", _int_tuple(self.vertices, "vertices")
            )


@dataclass(frozen=True)
class DemandChange:
    """Set absolute capacities; ``0`` drains the server (see module
    docstring)."""

    updates: Mapping[int, int]
    kind = "demand_change"

    def __post_init__(self) -> None:
        cleaned: dict[int, int] = {}
        for k, v in dict(self.updates).items():
            if isinstance(v, bool) or not isinstance(v, (int, np.integer)):
                raise ValueError(
                    f"demand updates must be integers, got {k!r}: {v!r}"
                )
            if int(v) < 0:
                raise ValueError(
                    f"demand updates must be >= 0 (0 drains), got {k!r}: {v!r}"
                )
            cleaned[int(k)] = int(v)
        object.__setattr__(self, "updates", cleaned)


@dataclass(frozen=True)
class ClientArrival:
    """Append one left vertex per neighbor list (right ids)."""

    neighbors: tuple[tuple[int, ...], ...]
    kind = "client_arrival"

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "neighbors", _nested_tuple(self.neighbors, "neighbors")
        )


@dataclass(frozen=True)
class ClientDeparture:
    """Remove the named left vertices; remaining ids compact."""

    clients: tuple[int, ...]
    kind = "client_departure"

    def __post_init__(self) -> None:
        object.__setattr__(self, "clients", _int_tuple(self.clients, "clients"))


@dataclass(frozen=True)
class ServerArrival:
    """Append right vertices with capacities and left-neighbor lists."""

    capacities: tuple[int, ...]
    neighbors: tuple[tuple[int, ...], ...]
    kind = "server_arrival"

    def __post_init__(self) -> None:
        caps = _int_tuple(self.capacities, "capacities")
        if any(c < 1 for c in caps):
            raise ValueError("arriving servers need capacity >= 1")
        nbrs = _nested_tuple(self.neighbors, "neighbors")
        if len(caps) != len(nbrs):
            raise ValueError(
                f"got {len(caps)} capacities for {len(nbrs)} neighbor lists"
            )
        object.__setattr__(self, "capacities", caps)
        object.__setattr__(self, "neighbors", nbrs)


@dataclass(frozen=True)
class ServerDeparture:
    """Remove the named right vertices; remaining ids compact — the
    delta whose exponent remap is genuinely non-identity."""

    servers: tuple[int, ...]
    kind = "server_departure"

    def __post_init__(self) -> None:
        object.__setattr__(self, "servers", _int_tuple(self.servers, "servers"))


@dataclass(frozen=True)
class EdgeAdd:
    """Add ``(u, v)`` edges; duplicates of existing edges are errors."""

    edges: tuple[tuple[int, int], ...]
    kind = "edge_add"

    def __post_init__(self) -> None:
        object.__setattr__(self, "edges", _pair_tuple(self.edges, "edges"))


@dataclass(frozen=True)
class EdgeRemove:
    """Remove ``(u, v)`` edges; every pair must currently exist."""

    edges: tuple[tuple[int, int], ...]
    kind = "edge_remove"

    def __post_init__(self) -> None:
        object.__setattr__(self, "edges", _pair_tuple(self.edges, "edges"))


@dataclass(frozen=True)
class Compound:
    """Apply ``deltas`` in sequence as one stream event; role maps
    compose, and later deltas see earlier ids (e.g. a maintenance
    restore is ``Compound((EdgeAdd(...), DemandChange(...)))``)."""

    deltas: tuple["InstanceDelta", ...]
    kind = "compound"

    def __post_init__(self) -> None:
        object.__setattr__(self, "deltas", tuple(self.deltas))
        for d in self.deltas:
            if not hasattr(d, "kind"):
                raise ValueError(f"compound entries must be deltas, got {d!r}")


InstanceDelta = Union[
    CapacityScale,
    DemandChange,
    ClientArrival,
    ClientDeparture,
    ServerArrival,
    ServerDeparture,
    EdgeAdd,
    EdgeRemove,
    Compound,
]


@dataclass(frozen=True)
class DeltaOutcome:
    """A valid post-delta instance plus the surviving-role mapping.

    ``left_map`` / ``right_map`` have the *old* side sizes; entry ``i``
    is the new id of old vertex ``i``, or ``-1`` if it departed.
    ``structure_changed`` is False exactly when the new instance shares
    the old graph object (capacity-only deltas and no-ops), in which
    case the cached :class:`~repro.kernels.RoundWorkspace` stays
    resident untouched.
    """

    instance: AllocationInstance
    left_map: np.ndarray
    right_map: np.ndarray
    structure_changed: bool
    detail: dict[str, Any]

    @property
    def noop(self) -> bool:
        return bool(self.detail.get("noop", False))

    @property
    def surviving_right(self) -> int:
        return int((self.right_map >= 0).sum())


def remap_exponents(
    exponents: np.ndarray, right_map: np.ndarray, n_new_right: int
) -> np.ndarray:
    """Carry a retained β exponent vector across a delta.

    Surviving servers keep their converged exponent; arrivals (and the
    slots of departed servers) start at the cold level ``0``.  Sound
    for the same reason warm starts are (DESIGN.md §8): the dynamics
    converge from any integer starting vector and the λ-free
    certificate validates termination regardless of the start.
    """
    exponents = np.asarray(exponents)
    if exponents.shape != right_map.shape:
        raise ValueError(
            f"exponent vector has shape {exponents.shape}, role map "
            f"{right_map.shape}"
        )
    out = np.zeros(n_new_right, dtype=np.int64)
    alive = right_map >= 0
    out[right_map[alive]] = exponents[alive]
    return out


# ----------------------------------------------------------------------
# apply_delta
# ----------------------------------------------------------------------
def _identity(n: int) -> np.ndarray:
    return np.arange(n, dtype=np.int64)


def _noop(instance: AllocationInstance, detail: dict[str, Any]) -> DeltaOutcome:
    detail = {**detail, "noop": True}
    return DeltaOutcome(
        instance=instance,
        left_map=_identity(instance.n_left),
        right_map=_identity(instance.n_right),
        structure_changed=False,
        detail=detail,
    )


def _recap(
    instance: AllocationInstance, caps: np.ndarray, detail: dict[str, Any]
) -> DeltaOutcome:
    """Capacity-only outcome: same graph object, new capacity vector."""
    if np.array_equal(caps, instance.capacities):
        return _noop(instance, detail)
    new = AllocationInstance(
        graph=instance.graph,
        capacities=caps,
        arboricity_upper_bound=instance.arboricity_upper_bound,
        name=instance.name,
        metadata=dict(instance.metadata),
    )
    return DeltaOutcome(
        instance=new,
        left_map=_identity(instance.n_left),
        right_map=_identity(instance.n_right),
        structure_changed=False,
        detail=detail,
    )


def _rebuild(
    instance: AllocationInstance,
    n_left: int,
    n_right: int,
    edge_u: np.ndarray,
    edge_v: np.ndarray,
    caps: np.ndarray,
    *,
    bound: Optional[int],
    left_map: np.ndarray,
    right_map: np.ndarray,
    detail: dict[str, Any],
) -> DeltaOutcome:
    graph = build_graph(n_left, n_right, edge_u, edge_v)
    new = AllocationInstance(
        graph=graph,
        capacities=caps,
        arboricity_upper_bound=bound,
        name=instance.name,
        metadata=dict(instance.metadata),
    )
    return DeltaOutcome(
        instance=new,
        left_map=left_map,
        right_map=right_map,
        structure_changed=True,
        detail=detail,
    )


def _check_right_ids(instance: AllocationInstance, ids, label: str) -> np.ndarray:
    ids = np.asarray(list(ids), dtype=np.int64)
    if ids.size and (ids.min() < 0 or ids.max() >= instance.n_right):
        raise ValueError(
            f"{label} names a server outside [0, {instance.n_right})"
        )
    return ids


def _check_left_ids(instance: AllocationInstance, ids, label: str) -> np.ndarray:
    ids = np.asarray(list(ids), dtype=np.int64)
    if ids.size and (ids.min() < 0 or ids.max() >= instance.n_left):
        raise ValueError(f"{label} names a client outside [0, {instance.n_left})")
    return ids


def _edge_codes(edge_u: np.ndarray, edge_v: np.ndarray, n_right: int) -> np.ndarray:
    return edge_u.astype(np.int64) * np.int64(max(1, n_right)) + edge_v


def _apply_capacity_scale(
    instance: AllocationInstance, delta: CapacityScale
) -> DeltaOutcome:
    caps = instance.capacities.copy()
    if delta.vertices is None:
        idx = slice(None)
        touched = instance.n_right
    else:
        ids = _check_right_ids(instance, delta.vertices, "capacity_scale")
        if np.unique(ids).size != ids.size:
            raise ValueError("capacity_scale vertices must be distinct")
        idx = ids
        touched = int(ids.size)
    caps[idx] = np.maximum(1, np.rint(delta.factor * caps[idx])).astype(np.int64)
    return _recap(
        instance, caps, {"delta": delta.kind, "factor": delta.factor, "touched": touched}
    )


def _apply_demand_change(
    instance: AllocationInstance, delta: DemandChange
) -> DeltaOutcome:
    if not delta.updates:
        return _noop(instance, {"delta": delta.kind})
    ids = _check_right_ids(instance, delta.updates, "demand_change")
    caps = instance.capacities.copy()
    drained = [v for v, c in delta.updates.items() if c == 0]
    for v, c in delta.updates.items():
        caps[v] = max(1, c)  # drained servers pin to 1 on an isolated vertex
    active_drains = [v for v in drained if instance.graph.right_degrees[v] > 0]
    detail = {"delta": delta.kind, "touched": int(ids.size), "drained": drained}
    if not active_drains:
        return _recap(instance, caps, detail)
    g = instance.graph
    keep = ~np.isin(g.edge_v, np.asarray(active_drains, dtype=np.int64))
    detail["edges_removed"] = int((~keep).sum())
    return _rebuild(
        instance,
        g.n_left,
        g.n_right,
        g.edge_u[keep],
        g.edge_v[keep],
        caps,
        bound=instance.arboricity_upper_bound,  # removal only
        left_map=_identity(g.n_left),
        right_map=_identity(g.n_right),
        detail=detail,
    )


def _apply_client_arrival(
    instance: AllocationInstance, delta: ClientArrival
) -> DeltaOutcome:
    if not delta.neighbors:
        return _noop(instance, {"delta": delta.kind})
    g = instance.graph
    new_u: list[int] = []
    new_v: list[int] = []
    for i, nbrs in enumerate(delta.neighbors):
        if len(set(nbrs)) != len(nbrs):
            raise ValueError(f"arriving client {i} repeats a neighbor")
        _check_right_ids(instance, nbrs, "client_arrival")
        u = g.n_left + i
        new_u.extend([u] * len(nbrs))
        new_v.extend(nbrs)
    return _rebuild(
        instance,
        g.n_left + len(delta.neighbors),
        g.n_right,
        np.concatenate([g.edge_u, np.asarray(new_u, dtype=np.int64)]),
        np.concatenate([g.edge_v, np.asarray(new_v, dtype=np.int64)]),
        instance.capacities.copy(),
        bound=None,  # additions can raise arboricity
        left_map=_identity(g.n_left),
        right_map=_identity(g.n_right),
        detail={
            "delta": delta.kind,
            "arrived": len(delta.neighbors),
            "edges_added": len(new_u),
        },
    )


def _apply_client_departure(
    instance: AllocationInstance, delta: ClientDeparture
) -> DeltaOutcome:
    if not delta.clients:
        return _noop(instance, {"delta": delta.kind})
    g = instance.graph
    ids = _check_left_ids(instance, delta.clients, "client_departure")
    if np.unique(ids).size != ids.size:
        raise ValueError("client_departure ids must be distinct")
    alive = np.ones(g.n_left, dtype=bool)
    alive[ids] = False
    left_map = np.full(g.n_left, -1, dtype=np.int64)
    left_map[alive] = np.arange(int(alive.sum()), dtype=np.int64)
    keep = alive[g.edge_u]
    return _rebuild(
        instance,
        int(alive.sum()),
        g.n_right,
        left_map[g.edge_u[keep]],
        g.edge_v[keep],
        instance.capacities.copy(),
        bound=instance.arboricity_upper_bound,  # removal only
        left_map=left_map,
        right_map=_identity(g.n_right),
        detail={
            "delta": delta.kind,
            "departed": int(ids.size),
            "edges_removed": int((~keep).sum()),
        },
    )


def _apply_server_arrival(
    instance: AllocationInstance, delta: ServerArrival
) -> DeltaOutcome:
    if not delta.capacities:
        return _noop(instance, {"delta": delta.kind})
    g = instance.graph
    new_u: list[int] = []
    new_v: list[int] = []
    for i, nbrs in enumerate(delta.neighbors):
        if len(set(nbrs)) != len(nbrs):
            raise ValueError(f"arriving server {i} repeats a neighbor")
        _check_left_ids(instance, nbrs, "server_arrival")
        v = g.n_right + i
        new_v.extend([v] * len(nbrs))
        new_u.extend(nbrs)
    caps = np.concatenate(
        [instance.capacities, np.asarray(delta.capacities, dtype=np.int64)]
    )
    return _rebuild(
        instance,
        g.n_left,
        g.n_right + len(delta.capacities),
        np.concatenate([g.edge_u, np.asarray(new_u, dtype=np.int64)]),
        np.concatenate([g.edge_v, np.asarray(new_v, dtype=np.int64)]),
        caps,
        bound=None,
        left_map=_identity(g.n_left),
        right_map=_identity(g.n_right),
        detail={
            "delta": delta.kind,
            "arrived": len(delta.capacities),
            "edges_added": len(new_u),
        },
    )


def _apply_server_departure(
    instance: AllocationInstance, delta: ServerDeparture
) -> DeltaOutcome:
    if not delta.servers:
        return _noop(instance, {"delta": delta.kind})
    g = instance.graph
    ids = _check_right_ids(instance, delta.servers, "server_departure")
    if np.unique(ids).size != ids.size:
        raise ValueError("server_departure ids must be distinct")
    alive = np.ones(g.n_right, dtype=bool)
    alive[ids] = False
    right_map = np.full(g.n_right, -1, dtype=np.int64)
    right_map[alive] = np.arange(int(alive.sum()), dtype=np.int64)
    keep = alive[g.edge_v]
    return _rebuild(
        instance,
        g.n_left,
        int(alive.sum()),
        g.edge_u[keep],
        right_map[g.edge_v[keep]],
        instance.capacities[alive].copy(),
        bound=instance.arboricity_upper_bound,  # removal only
        left_map=_identity(g.n_left),
        right_map=right_map,
        detail={
            "delta": delta.kind,
            "departed": int(ids.size),
            "edges_removed": int((~keep).sum()),
        },
    )


def _apply_edge_add(instance: AllocationInstance, delta: EdgeAdd) -> DeltaOutcome:
    if not delta.edges:
        return _noop(instance, {"delta": delta.kind})
    g = instance.graph
    add = np.asarray(delta.edges, dtype=np.int64)
    _check_left_ids(instance, add[:, 0], "edge_add")
    _check_right_ids(instance, add[:, 1], "edge_add")
    codes = _edge_codes(add[:, 0], add[:, 1], g.n_right)
    if np.unique(codes).size != codes.size:
        raise ValueError("edge_add repeats a pair")
    existing = _edge_codes(g.edge_u, g.edge_v, g.n_right)
    dup = np.isin(codes, existing)
    if dup.any():
        u, v = delta.edges[int(np.argmax(dup))]
        raise ValueError(f"edge ({u}, {v}) already exists")
    return _rebuild(
        instance,
        g.n_left,
        g.n_right,
        np.concatenate([g.edge_u, add[:, 0]]),
        np.concatenate([g.edge_v, add[:, 1]]),
        instance.capacities.copy(),
        bound=None,
        left_map=_identity(g.n_left),
        right_map=_identity(g.n_right),
        detail={"delta": delta.kind, "edges_added": int(add.shape[0])},
    )


def _apply_edge_remove(instance: AllocationInstance, delta: EdgeRemove) -> DeltaOutcome:
    if not delta.edges:
        return _noop(instance, {"delta": delta.kind})
    g = instance.graph
    drop = np.asarray(delta.edges, dtype=np.int64)
    _check_left_ids(instance, drop[:, 0], "edge_remove")
    _check_right_ids(instance, drop[:, 1], "edge_remove")
    codes = _edge_codes(drop[:, 0], drop[:, 1], g.n_right)
    if np.unique(codes).size != codes.size:
        raise ValueError("edge_remove repeats a pair")
    existing = _edge_codes(g.edge_u, g.edge_v, g.n_right)
    missing = ~np.isin(codes, existing)
    if missing.any():
        u, v = delta.edges[int(np.argmax(missing))]
        raise ValueError(f"edge ({u}, {v}) does not exist")
    keep = ~np.isin(existing, codes)
    return _rebuild(
        instance,
        g.n_left,
        g.n_right,
        g.edge_u[keep],
        g.edge_v[keep],
        instance.capacities.copy(),
        bound=instance.arboricity_upper_bound,  # removal only
        left_map=_identity(g.n_left),
        right_map=_identity(g.n_right),
        detail={"delta": delta.kind, "edges_removed": int(drop.shape[0])},
    )


def _compose_maps(first: np.ndarray, second: np.ndarray) -> np.ndarray:
    out = np.full(first.shape, -1, dtype=np.int64)
    alive = first >= 0
    out[alive] = second[first[alive]]
    return out


def _apply_compound(instance: AllocationInstance, delta: Compound) -> DeltaOutcome:
    if not delta.deltas:
        return _noop(instance, {"delta": delta.kind})
    current = instance
    left_map = _identity(instance.n_left)
    right_map = _identity(instance.n_right)
    structure_changed = False
    parts: list[dict[str, Any]] = []
    for sub in delta.deltas:
        outcome = apply_delta(current, sub)
        current = outcome.instance
        left_map = _compose_maps(left_map, outcome.left_map)
        right_map = _compose_maps(right_map, outcome.right_map)
        structure_changed = structure_changed or outcome.structure_changed
        parts.append(outcome.detail)
    if current is instance:
        return _noop(instance, {"delta": delta.kind, "parts": parts})
    return DeltaOutcome(
        instance=current,
        left_map=left_map,
        right_map=right_map,
        structure_changed=structure_changed,
        detail={"delta": delta.kind, "parts": parts},
    )


_APPLIERS = {
    CapacityScale: _apply_capacity_scale,
    DemandChange: _apply_demand_change,
    ClientArrival: _apply_client_arrival,
    ClientDeparture: _apply_client_departure,
    ServerArrival: _apply_server_arrival,
    ServerDeparture: _apply_server_departure,
    EdgeAdd: _apply_edge_add,
    EdgeRemove: _apply_edge_remove,
    Compound: _apply_compound,
}


def apply_delta(instance: AllocationInstance, delta: InstanceDelta) -> DeltaOutcome:
    """Apply one delta, returning a valid instance plus role mapping.

    Raises ``ValueError`` on any invalid mutation (out-of-range ids,
    duplicate additions, removals of absent edges) *before* touching
    anything — a delta either applies atomically or not at all.
    """
    applier = _APPLIERS.get(type(delta))
    if applier is None:
        raise TypeError(f"not an InstanceDelta: {delta!r}")
    return applier(instance, delta)


# ----------------------------------------------------------------------
# JSON codec (the JSONL stream format)
# ----------------------------------------------------------------------
DELTA_TYPES: dict[str, type] = {
    cls.kind: cls
    for cls in (
        CapacityScale,
        DemandChange,
        ClientArrival,
        ClientDeparture,
        ServerArrival,
        ServerDeparture,
        EdgeAdd,
        EdgeRemove,
        Compound,
    )
}


def delta_to_json(delta: InstanceDelta) -> dict[str, Any]:
    """One JSON object per delta (inverse of :func:`delta_from_json`)."""
    if isinstance(delta, CapacityScale):
        obj: dict[str, Any] = {"type": delta.kind, "factor": delta.factor}
        if delta.vertices is not None:
            obj["vertices"] = list(delta.vertices)
        return obj
    if isinstance(delta, DemandChange):
        return {
            "type": delta.kind,
            "updates": {str(k): v for k, v in delta.updates.items()},
        }
    if isinstance(delta, ClientArrival):
        return {"type": delta.kind, "neighbors": [list(n) for n in delta.neighbors]}
    if isinstance(delta, ClientDeparture):
        return {"type": delta.kind, "clients": list(delta.clients)}
    if isinstance(delta, ServerArrival):
        return {
            "type": delta.kind,
            "capacities": list(delta.capacities),
            "neighbors": [list(n) for n in delta.neighbors],
        }
    if isinstance(delta, ServerDeparture):
        return {"type": delta.kind, "servers": list(delta.servers)}
    if isinstance(delta, (EdgeAdd, EdgeRemove)):
        return {"type": delta.kind, "edges": [list(e) for e in delta.edges]}
    if isinstance(delta, Compound):
        return {"type": delta.kind, "deltas": [delta_to_json(d) for d in delta.deltas]}
    raise TypeError(f"not an InstanceDelta: {delta!r}")


def _require_fields(obj: Mapping[str, Any], kind: str, fields: set[str]) -> None:
    extra = set(obj) - fields - {"type"}
    if extra:
        raise ValueError(f"unknown fields {sorted(extra)} for delta {kind!r}")


def delta_from_json(obj: Mapping[str, Any]) -> InstanceDelta:
    """Decode one JSON delta object; malformed input raises
    ``ValueError`` with the offending field named."""
    if not isinstance(obj, Mapping):
        raise ValueError(f"a delta must be a JSON object, got {type(obj).__name__}")
    kind = obj.get("type")
    cls = DELTA_TYPES.get(kind)  # type: ignore[arg-type]
    if cls is None:
        raise ValueError(
            f"unknown delta type {kind!r}; known: {sorted(DELTA_TYPES)}"
        )
    if cls is CapacityScale:
        _require_fields(obj, kind, {"factor", "vertices"})
        factor = obj.get("factor")
        if isinstance(factor, bool) or not isinstance(factor, (int, float)):
            raise ValueError(f"capacity_scale factor must be a number, got {factor!r}")
        vertices = obj.get("vertices")
        return CapacityScale(
            factor=float(factor),
            vertices=None if vertices is None else tuple(vertices),
        )
    if cls is DemandChange:
        _require_fields(obj, kind, {"updates"})
        updates = obj.get("updates")
        if not isinstance(updates, Mapping):
            raise ValueError("demand_change updates must be an object")
        return DemandChange(updates={int(k): v for k, v in updates.items()})
    if cls is ClientArrival:
        _require_fields(obj, kind, {"neighbors"})
        return ClientArrival(neighbors=_as_rows(obj.get("neighbors"), "neighbors"))
    if cls is ClientDeparture:
        _require_fields(obj, kind, {"clients"})
        return ClientDeparture(clients=_as_row(obj.get("clients"), "clients"))
    if cls is ServerArrival:
        _require_fields(obj, kind, {"capacities", "neighbors"})
        return ServerArrival(
            capacities=_as_row(obj.get("capacities"), "capacities"),
            neighbors=_as_rows(obj.get("neighbors"), "neighbors"),
        )
    if cls is ServerDeparture:
        _require_fields(obj, kind, {"servers"})
        return ServerDeparture(servers=_as_row(obj.get("servers"), "servers"))
    if cls in (EdgeAdd, EdgeRemove):
        _require_fields(obj, kind, {"edges"})
        return cls(edges=_as_rows(obj.get("edges"), "edges"))
    _require_fields(obj, kind, {"deltas"})
    subs = obj.get("deltas")
    if not isinstance(subs, Sequence) or isinstance(subs, (str, bytes)):
        raise ValueError("compound deltas must be an array of delta objects")
    return Compound(deltas=tuple(delta_from_json(s) for s in subs))


def _as_row(value: Any, label: str) -> tuple:
    if not isinstance(value, Sequence) or isinstance(value, (str, bytes)):
        raise ValueError(f"{label} must be an array")
    return tuple(value)


def _as_rows(value: Any, label: str) -> tuple:
    if not isinstance(value, Sequence) or isinstance(value, (str, bytes)):
        raise ValueError(f"{label} must be an array of arrays")
    return tuple(_as_row(row, f"{label} entry") for row in value)
