"""Serialization of allocation instances.

Two formats:

* **edge-list text** — ``n_left n_right`` header, one ``u v`` pair per
  line, then a ``#capacities`` section; human-diffable, the format the
  examples ship sample data in.
* **JSON** — instance + metadata round trip (used by the experiment
  harness to persist generated workloads next to result dumps so runs
  are re-checkable).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TextIO, Union

import numpy as np

from repro.graphs.bipartite import BipartiteGraph, build_graph
from repro.graphs.instances import AllocationInstance

__all__ = [
    "write_edge_list",
    "read_edge_list",
    "instance_to_json",
    "instance_from_json",
    "save_instance",
    "load_instance",
]

PathLike = Union[str, Path]


def write_edge_list(instance: AllocationInstance, stream: TextIO) -> None:
    """Write the text format to an open stream."""
    g = instance.graph
    stream.write(f"{g.n_left} {g.n_right} {g.n_edges}\n")
    for u, v in zip(g.edge_u.tolist(), g.edge_v.tolist()):
        stream.write(f"{u} {v}\n")
    stream.write("#capacities\n")
    stream.write(" ".join(str(int(c)) for c in instance.capacities.tolist()))
    stream.write("\n")


def read_edge_list(stream: TextIO, name: str = "from_edge_list") -> AllocationInstance:
    """Parse the text format from an open stream."""
    header = stream.readline().split()
    if len(header) != 3:
        raise ValueError("edge-list header must be 'n_left n_right m'")
    n_left, n_right, m = (int(x) for x in header)
    eu = np.empty(m, dtype=np.int64)
    ev = np.empty(m, dtype=np.int64)
    for i in range(m):
        parts = stream.readline().split()
        if len(parts) != 2:
            raise ValueError(f"edge line {i} malformed: {parts!r}")
        eu[i], ev[i] = int(parts[0]), int(parts[1])
    marker = stream.readline().strip()
    if marker != "#capacities":
        raise ValueError(f"expected '#capacities' marker, got {marker!r}")
    caps = np.asarray([int(x) for x in stream.readline().split()], dtype=np.int64)
    graph = build_graph(n_left, n_right, eu, ev)
    return AllocationInstance(graph=graph, capacities=caps, name=name)


def instance_to_json(instance: AllocationInstance) -> str:
    """JSON string with full provenance."""
    g = instance.graph
    return json.dumps(
        {
            "format": "repro-allocation-instance-v1",
            "name": instance.name,
            "n_left": g.n_left,
            "n_right": g.n_right,
            "edge_u": g.edge_u.tolist(),
            "edge_v": g.edge_v.tolist(),
            "capacities": instance.capacities.tolist(),
            "arboricity_upper_bound": instance.arboricity_upper_bound,
            "metadata": instance.metadata,
        }
    )


def instance_from_json(text: str) -> AllocationInstance:
    """Inverse of :func:`instance_to_json`."""
    data = json.loads(text)
    if data.get("format") != "repro-allocation-instance-v1":
        raise ValueError(f"unrecognized instance format: {data.get('format')!r}")
    graph = build_graph(
        data["n_left"], data["n_right"],
        np.asarray(data["edge_u"], dtype=np.int64),
        np.asarray(data["edge_v"], dtype=np.int64),
    )
    return AllocationInstance(
        graph=graph,
        capacities=np.asarray(data["capacities"], dtype=np.int64),
        arboricity_upper_bound=data.get("arboricity_upper_bound"),
        name=data.get("name", "from_json"),
        metadata=data.get("metadata", {}),
    )


def save_instance(instance: AllocationInstance, path: PathLike) -> None:
    """Persist as JSON (suffix-agnostic)."""
    Path(path).write_text(instance_to_json(instance))


def load_instance(path: PathLike) -> AllocationInstance:
    """Load a JSON instance file."""
    return instance_from_json(Path(path).read_text())
