"""Workload generators with arboricity certified by construction.

The paper's bounds are parameterized by the arboricity λ of the input.
To measure "rounds vs λ" cleanly (experiment E1) the generators below
control λ *by construction*:

* a union of ``k`` bipartite forests has arboricity ≤ k (Nash–Williams:
  the construction itself is a partition into k forests);
* a star has arboricity 1;
* a complete bipartite graph ``K_{a,b}`` has arboricity
  ``⌈ab / (a+b−1)⌉`` exactly;
* locality-based load-balancing instances with per-client degree d are
  d-degenerate from the client side, hence arboricity ≤ d.

Every generator returns an :class:`AllocationInstance` whose
``arboricity_upper_bound`` records the certificate and whose
``metadata`` records the parameters.  Generators are deterministic
functions of their ``seed``.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from repro.graphs.bipartite import BipartiteGraph, build_graph
from repro.graphs.capacities import (
    degree_proportional_capacities,
    uniform_capacities,
    unit_capacities,
    zipf_capacities,
)
from repro.graphs.instances import AllocationInstance
from repro.utils.rng import as_generator, spawn
from repro.utils.validation import check_positive_int

__all__ = [
    "union_of_forests",
    "random_bipartite_forest_edges",
    "star_instance",
    "double_star_instance",
    "complete_bipartite_instance",
    "erdos_renyi_instance",
    "power_law_instance",
    "regular_instance",
    "grid_instance",
    "cycle_instance",
    "planted_dense_core_instance",
    "slow_spread_instance",
    "load_balancing_instance",
    "adwords_instance",
    "skew_frontier_instance",
    "heavy_tailed_instance",
    "adversarial_rounds_instance",
    "sized_instance",
    "FAMILY_BUILDERS",
    "SIZED_FAMILIES",
    "POWER_LAW_EXPONENT_RANGE",
]

# power_law_instance clamps its exponent into this closed range: below
# 1.0 the Zipf weights stop decaying (the family degenerates to
# near-uniform), above 8.0 double rounding makes every weight except
# the first underflow to the same popularity.
POWER_LAW_EXPONENT_RANGE = (1.0, 8.0)


def _dedupe(n_left: int, n_right: int, eu: np.ndarray, ev: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Drop duplicate (u, v) pairs; keeps arboricity certificates valid
    (removing edges never increases arboricity)."""
    if eu.size == 0:
        return eu.astype(np.int64), ev.astype(np.int64)
    key = eu.astype(np.int64) * np.int64(n_right) + ev.astype(np.int64)
    _, idx = np.unique(key, return_index=True)
    return eu[idx].astype(np.int64), ev[idx].astype(np.int64)


def random_bipartite_forest_edges(
    n_left: int, n_right: int, seed=None
) -> tuple[np.ndarray, np.ndarray]:
    """Edges of one uniform-ish random bipartite forest.

    Vertices are inserted in random order; each new vertex attaches to
    a uniformly random already-inserted vertex of the *opposite* side
    (or becomes a root when none exists).  Every vertex contributes at
    most one edge and the edge goes to an earlier vertex, so the result
    is acyclic: a forest spanning all of ``L ∪ R``.
    """
    rng = as_generator(seed)
    n = n_left + n_right
    order = rng.permutation(n)
    placed_left: list[int] = []
    placed_right: list[int] = []
    eu: list[int] = []
    ev: list[int] = []
    for vid in order.tolist():
        if vid < n_left:
            if placed_right:
                partner = placed_right[rng.integers(0, len(placed_right))]
                eu.append(vid)
                ev.append(partner)
            placed_left.append(vid)
        else:
            rid = vid - n_left
            if placed_left:
                partner = placed_left[rng.integers(0, len(placed_left))]
                eu.append(partner)
                ev.append(rid)
            placed_right.append(rid)
    return np.asarray(eu, dtype=np.int64), np.asarray(ev, dtype=np.int64)


def union_of_forests(
    n_left: int,
    n_right: int,
    k: int,
    *,
    capacity: int | str = 2,
    seed=None,
) -> AllocationInstance:
    """Union of ``k`` independent random bipartite forests: λ ≤ k.

    This is the canonical controlled-λ family for E1/E3/E5/E6: with n
    fixed, sweeping ``k`` sweeps arboricity while the vertex set, the
    capacity profile, and the generator stay identical.

    ``k = 0`` is the degenerate end of the sweep: an edgeless instance
    (every sweep over k should include its empty baseline).  The
    certified bound stays 1 — arboricity bounds are ≥ 1 by convention
    and an edgeless graph trivially satisfies it.

    ``capacity`` is either a constant or ``"degree"`` for
    degree-proportional capacities.
    """
    n_left = check_positive_int(n_left, "n_left")
    n_right = check_positive_int(n_right, "n_right")
    if k != 0:
        k = check_positive_int(k, "k")
    streams = spawn(seed, k)
    eu_parts: list[np.ndarray] = []
    ev_parts: list[np.ndarray] = []
    for stream in streams:
        eu, ev = random_bipartite_forest_edges(n_left, n_right, stream)
        eu_parts.append(eu)
        ev_parts.append(ev)
    eu = np.concatenate(eu_parts) if eu_parts else np.empty(0, dtype=np.int64)
    ev = np.concatenate(ev_parts) if ev_parts else np.empty(0, dtype=np.int64)
    eu, ev = _dedupe(n_left, n_right, eu, ev)
    graph = build_graph(n_left, n_right, eu, ev)
    caps = _capacity_profile(graph, capacity, seed)
    return AllocationInstance(
        graph=graph,
        capacities=caps,
        arboricity_upper_bound=max(k, 1),
        name=f"forests(k={k})",
        metadata={"family": "union_of_forests", "n_left": n_left,
                  "n_right": n_right, "k": k, "capacity": capacity},
    )


def star_instance(n_leaves: int, *, center_capacity: int | None = None) -> AllocationInstance:
    """A star: leaves in L, single center in R.  λ = 1.

    With ``center_capacity = n_leaves`` this is the §1.1 example on
    which the vertex-splitting reduction to matching blows arboricity
    up to Θ(n) (experiment E9).
    """
    n_leaves = check_positive_int(n_leaves, "n_leaves")
    if center_capacity is None:
        center_capacity = n_leaves
    center_capacity = check_positive_int(center_capacity, "center_capacity")
    eu = np.arange(n_leaves, dtype=np.int64)
    ev = np.zeros(n_leaves, dtype=np.int64)
    graph = build_graph(n_leaves, 1, eu, ev)
    caps = np.asarray([center_capacity], dtype=np.int64)
    return AllocationInstance(
        graph=graph,
        capacities=caps,
        arboricity_upper_bound=1,
        name=f"star(n={n_leaves})",
        metadata={"family": "star", "n_leaves": n_leaves,
                  "center_capacity": center_capacity},
    )


def double_star_instance(
    n_leaves: int, *, shared_fraction: float = 0.5, capacity: int | None = None
) -> AllocationInstance:
    """Two centers in R sharing a fraction of the leaves.  λ ≤ 2.

    The shared leaves create contention between two high-capacity
    vertices — a minimal instance where the proportional dynamics must
    split mass rather than saturate greedily.
    """
    n_leaves = check_positive_int(n_leaves, "n_leaves")
    if not (0.0 <= shared_fraction <= 1.0):
        raise ValueError("shared_fraction must lie in [0, 1]")
    n_shared = int(round(shared_fraction * n_leaves))
    eu_list: list[int] = []
    ev_list: list[int] = []
    for u in range(n_leaves):
        if u < n_shared:
            eu_list.extend([u, u])
            ev_list.extend([0, 1])
        elif u % 2 == 0:
            eu_list.append(u)
            ev_list.append(0)
        else:
            eu_list.append(u)
            ev_list.append(1)
    graph = build_graph(n_leaves, 2, eu_list, ev_list)
    if capacity is None:
        capacity = max(1, n_leaves // 2)
    caps = np.full(2, capacity, dtype=np.int64)
    return AllocationInstance(
        graph=graph,
        capacities=caps,
        arboricity_upper_bound=2,
        name=f"double_star(n={n_leaves})",
        metadata={"family": "double_star", "n_leaves": n_leaves,
                  "shared_fraction": shared_fraction, "capacity": capacity},
    )


def complete_bipartite_instance(
    a: int, b: int, *, capacity: int | str = 1
) -> AllocationInstance:
    """``K_{a,b}`` with exact arboricity ``⌈ab/(a+b−1)⌉`` (Nash–Williams
    is tight on complete bipartite graphs)."""
    a = check_positive_int(a, "a")
    b = check_positive_int(b, "b")
    eu = np.repeat(np.arange(a, dtype=np.int64), b)
    ev = np.tile(np.arange(b, dtype=np.int64), a)
    graph = build_graph(a, b, eu, ev)
    caps = _capacity_profile(graph, capacity, None)
    arb = math.ceil((a * b) / (a + b - 1)) if a + b > 1 else 1
    return AllocationInstance(
        graph=graph,
        capacities=caps,
        arboricity_upper_bound=arb,
        name=f"K({a},{b})",
        metadata={"family": "complete_bipartite", "a": a, "b": b,
                  "capacity": capacity, "exact_arboricity": arb},
    )


def erdos_renyi_instance(
    n_left: int,
    n_right: int,
    m: int,
    *,
    capacity: int | str = 2,
    seed=None,
) -> AllocationInstance:
    """``m`` uniformly random distinct edges.

    No structural λ certificate beyond the trivial density bound
    ``λ ≤ ⌈m / 1⌉`` — the recorded bound is the Nash–Williams density
    ceiling ``⌈m/(n_left+n_right−1)⌉`` *plus* the max-degree slack; the
    exact value is left to :mod:`repro.graphs.arboricity`.  Used for
    approximation sweeps (E2) where λ is measured, not assumed.
    """
    n_left = check_positive_int(n_left, "n_left")
    n_right = check_positive_int(n_right, "n_right")
    if m < 0 or m > n_left * n_right:
        raise ValueError(f"m must lie in [0, {n_left * n_right}], got {m}")
    rng = as_generator(seed)
    chosen = rng.choice(n_left * n_right, size=m, replace=False)
    eu = (chosen // n_right).astype(np.int64)
    ev = (chosen % n_right).astype(np.int64)
    graph = build_graph(n_left, n_right, eu, ev)
    caps = _capacity_profile(graph, capacity, seed)
    return AllocationInstance(
        graph=graph,
        capacities=caps,
        arboricity_upper_bound=None,
        name=f"er(n={n_left}+{n_right},m={m})",
        metadata={"family": "erdos_renyi", "n_left": n_left,
                  "n_right": n_right, "m": m, "capacity": capacity},
    )


def power_law_instance(
    n_left: int,
    n_right: int,
    mean_left_degree: int = 3,
    exponent: float = 2.2,
    *,
    capacity: int | str = "degree",
    seed=None,
) -> AllocationInstance:
    """Ad-auction-like skewed bipartite graph.

    Right vertices (advertisers) receive Zipf popularity weights; each
    left vertex (impression) connects to ``Poisson(mean_left_degree)+1``
    advertisers sampled by popularity.  Degree skew concentrates edges
    on a dense core — the workload shape the paper's introduction
    motivates — while overall density stays low.

    ``exponent`` is clamped into :data:`POWER_LAW_EXPONENT_RANGE`;
    the metadata records both the requested and the effective value so
    sweep tables stay honest about what actually ran.
    """
    n_left = check_positive_int(n_left, "n_left")
    n_right = check_positive_int(n_right, "n_right")
    mean_left_degree = check_positive_int(mean_left_degree, "mean_left_degree")
    lo, hi = POWER_LAW_EXPONENT_RANGE
    requested_exponent = float(exponent)
    exponent = min(max(requested_exponent, lo), hi)
    rng = as_generator(seed)
    weights = 1.0 / np.power(np.arange(1, n_right + 1, dtype=np.float64), exponent - 1.0)
    rng.shuffle(weights)
    probs = weights / weights.sum()
    degrees = rng.poisson(mean_left_degree - 1, size=n_left) + 1
    degrees = np.minimum(degrees, n_right)
    eu_list: list[np.ndarray] = []
    ev_list: list[np.ndarray] = []
    for u in range(n_left):
        d = int(degrees[u])
        nbrs = rng.choice(n_right, size=d, replace=False, p=probs)
        eu_list.append(np.full(d, u, dtype=np.int64))
        ev_list.append(nbrs.astype(np.int64))
    eu = np.concatenate(eu_list)
    ev = np.concatenate(ev_list)
    eu, ev = _dedupe(n_left, n_right, eu, ev)
    graph = build_graph(n_left, n_right, eu, ev)
    caps = _capacity_profile(graph, capacity, seed)
    return AllocationInstance(
        graph=graph,
        capacities=caps,
        arboricity_upper_bound=None,
        name=f"powerlaw(n={n_left}+{n_right})",
        metadata={"family": "power_law", "n_left": n_left, "n_right": n_right,
                  "mean_left_degree": mean_left_degree, "exponent": exponent,
                  "requested_exponent": requested_exponent,
                  "capacity": capacity},
    )


def regular_instance(
    n: int, d: int, *, capacity: int | str = 1, seed=None
) -> AllocationInstance:
    """d-regular balanced bipartite graph as a union of ``d`` random
    perfect matchings: λ ≤ d by construction (each matching is a
    forest), and ≈ d/2 by density."""
    n = check_positive_int(n, "n")
    d = check_positive_int(d, "d")
    if d > n:
        raise ValueError(f"degree d={d} cannot exceed n={n}")
    rng = as_generator(seed)
    # Circulant construction: matching j pairs left u with
    # perm[(u + j) mod n].  Cyclic shifts of one permutation are
    # automatically edge-disjoint perfect matchings, so the union is
    # d-regular and simple without any rejection sampling.
    perm = rng.permutation(n).astype(np.int64)
    left_ids = np.arange(n, dtype=np.int64)
    eu = np.tile(left_ids, d)
    ev = np.concatenate([perm[(left_ids + j) % n] for j in range(d)])
    graph = build_graph(n, n, eu, ev)
    caps = _capacity_profile(graph, capacity, seed)
    return AllocationInstance(
        graph=graph,
        capacities=caps,
        arboricity_upper_bound=d,
        name=f"regular(n={n},d={d})",
        metadata={"family": "regular", "n": n, "d": d, "capacity": capacity},
    )


def grid_instance(rows: int, cols: int, *, capacity: int = 2) -> AllocationInstance:
    """2-D grid graph with the natural checkerboard bipartition: λ ≤ 2.

    Grids are the textbook uniformly sparse family; every subgraph has
    average degree < 4 and the grid splits into 2 forests (rows, cols).
    """
    rows = check_positive_int(rows, "rows")
    cols = check_positive_int(cols, "cols")
    # Checkerboard colouring: colour (i+j) % 2; colour-0 cells → L,
    # colour-1 cells → R.
    idx = np.arange(rows * cols).reshape(rows, cols)
    colour = (np.add.outer(np.arange(rows), np.arange(cols)) % 2)
    left_cells = idx[colour == 0]
    right_cells = idx[colour == 1]
    left_map = np.full(rows * cols, -1, dtype=np.int64)
    right_map = np.full(rows * cols, -1, dtype=np.int64)
    left_map[left_cells] = np.arange(left_cells.size)
    right_map[right_cells] = np.arange(right_cells.size)

    eu_list: list[int] = []
    ev_list: list[int] = []
    for i in range(rows):
        for j in range(cols):
            for di, dj in ((0, 1), (1, 0)):
                ni, nj = i + di, j + dj
                if ni < rows and nj < cols:
                    a, b = idx[i, j], idx[ni, nj]
                    if colour[i, j] == 0:
                        eu_list.append(int(left_map[a]))
                        ev_list.append(int(right_map[b]))
                    else:
                        eu_list.append(int(left_map[b]))
                        ev_list.append(int(right_map[a]))
    graph = build_graph(int(left_cells.size), int(right_cells.size), eu_list, ev_list)
    caps = uniform_capacities(graph, capacity)
    return AllocationInstance(
        graph=graph,
        capacities=caps,
        arboricity_upper_bound=2,
        name=f"grid({rows}x{cols})",
        metadata={"family": "grid", "rows": rows, "cols": cols, "capacity": capacity},
    )


def cycle_instance(half_length: int, *, capacity: int = 1) -> AllocationInstance:
    """Even cycle ``C_{2k}``: alternating L/R vertices, λ = 2 exactly
    (a cycle is not a forest but splits into two paths)."""
    k = check_positive_int(half_length, "half_length")
    if k < 2:
        raise ValueError("cycle needs half_length >= 2")
    eu_list: list[int] = []
    ev_list: list[int] = []
    for i in range(k):
        eu_list.append(i)
        ev_list.append(i)
        eu_list.append((i + 1) % k)
        ev_list.append(i)
    graph = build_graph(k, k, eu_list, ev_list)
    caps = uniform_capacities(graph, capacity)
    return AllocationInstance(
        graph=graph,
        capacities=caps,
        arboricity_upper_bound=2,
        name=f"cycle(2k={2 * k})",
        metadata={"family": "cycle", "half_length": k, "capacity": capacity},
    )


def planted_dense_core_instance(
    core_left: int,
    core_right: int,
    fringe_left: int,
    fringe_right: int,
    *,
    core_density: float = 0.8,
    capacity: int | str = 2,
    seed=None,
) -> AllocationInstance:
    """A dense bipartite core plus a sparse forest fringe.

    Remark 1 of the paper: the proportional dynamics first saturate the
    densest part, then spread to sparser regions.  This family plants
    exactly that structure; the level-set trace experiment (E11) runs
    on it.  The certified λ is the core's Nash–Williams ceiling + 1
    (fringe forest).
    """
    core_left = check_positive_int(core_left, "core_left")
    core_right = check_positive_int(core_right, "core_right")
    fringe_left = check_positive_int(fringe_left, "fringe_left")
    fringe_right = check_positive_int(fringe_right, "fringe_right")
    rng = as_generator(seed)

    n_left = core_left + fringe_left
    n_right = core_right + fringe_right
    # Dense core: each possible core edge kept with prob core_density.
    mask = rng.random((core_left, core_right)) < core_density
    cu, cv = np.nonzero(mask)
    eu = [cu.astype(np.int64)]
    ev = [cv.astype(np.int64)]
    # Fringe forest over (fringe L, fringe R), shifted ids.
    fu, fv = random_bipartite_forest_edges(fringe_left, fringe_right, rng)
    eu.append(fu + core_left)
    ev.append(fv + core_right)
    # Attachment edges: every fringe L vertex also touches one random
    # core R vertex.  This both keeps the instance connected and plants
    # the Remark-1 dynamics — fringe mass initially gravitates to the
    # (soon over-allocated) core and spreads outward as core priorities
    # fall.
    au = np.arange(fringe_left, dtype=np.int64) + core_left
    av = rng.choice(core_right, size=fringe_left, replace=True)
    eu.append(au)
    ev.append(av.astype(np.int64))

    eu_arr, ev_arr = _dedupe(n_left, n_right, np.concatenate(eu), np.concatenate(ev))
    graph = build_graph(n_left, n_right, eu_arr, ev_arr)
    caps = _capacity_profile(graph, capacity, seed)
    core_edges = int(mask.sum())
    core_arb = math.ceil(core_edges / max(1, core_left + core_right - 1))
    return AllocationInstance(
        graph=graph,
        capacities=caps,
        arboricity_upper_bound=core_arb + 2,
        name=f"dense_core({core_left}x{core_right}+{fringe_left}+{fringe_right})",
        metadata={"family": "planted_dense_core", "core_left": core_left,
                  "core_right": core_right, "fringe_left": fringe_left,
                  "fringe_right": fringe_right, "core_density": core_density,
                  "capacity": capacity},
    )


def slow_spread_instance(
    core_right: int,
    width: int = 4,
    *,
    seed=None,
) -> AllocationInstance:
    """The Theorem-9 Case-2 stress family: convergence takes Θ(log λ).

    ``width·core_right`` left vertices each connect to *all* of
    ``core_right`` capacity-1 core right vertices plus one private
    capacity-1 fringe right vertex.  The core is massively
    over-allocated (its priorities fall every round, forming ``L_0``)
    while every private fringe vertex is under-allocated (rising into
    ``L_{2τ}`` with ``N(L_{2τ})`` = all of L).  Mass reaches the fringe
    only once the priority gap ``(1+ε)^{2r}`` beats the core width, so
    the certificate fires after ``≈ ½·log_{1+ε}(core_right/ε)`` rounds
    — the family that makes E1/E3/E5's log-λ shapes visible.  The
    arboricity is ≈ ``core_right`` (dense core) and certified
    ≤ ``core_right + 1`` (the graph is (core_right+1)-degenerate from
    the left side).

    ``seed`` is accepted for registry uniformity; the construction is
    deterministic.
    """
    core_right = check_positive_int(core_right, "core_right")
    width = check_positive_int(width, "width")
    a = width * core_right
    eu = np.empty(a * (core_right + 1), dtype=np.int64)
    ev = np.empty(a * (core_right + 1), dtype=np.int64)
    pos = 0
    for u in range(a):
        eu[pos : pos + core_right] = u
        ev[pos : pos + core_right] = np.arange(core_right)
        pos += core_right
        eu[pos] = u
        ev[pos] = core_right + u
        pos += 1
    graph = build_graph(a, core_right + a, eu, ev)
    caps = np.ones(core_right + a, dtype=np.int64)
    return AllocationInstance(
        graph=graph,
        capacities=caps,
        arboricity_upper_bound=core_right + 1,
        name=f"slow_spread(b={core_right},w={width})",
        metadata={"family": "slow_spread", "core_right": core_right, "width": width},
    )


def load_balancing_instance(
    n_clients: int,
    n_servers: int,
    locality: int = 3,
    *,
    server_capacity: int | None = None,
    seed=None,
) -> AllocationInstance:
    """Server-client load balancing (the ALPZ21 application).

    Servers sit on a ring; client ``u`` connects to ``locality``
    consecutive servers starting at a random position (data-locality
    constraint).  Every client has degree exactly ``locality``, so the
    graph is ``locality``-degenerate from the client side: λ ≤ locality.
    Default server capacity is the balanced load ``⌈n_clients/n_servers⌉``.
    """
    n_clients = check_positive_int(n_clients, "n_clients")
    n_servers = check_positive_int(n_servers, "n_servers")
    locality = check_positive_int(locality, "locality")
    if locality > n_servers:
        raise ValueError("locality cannot exceed the number of servers")
    rng = as_generator(seed)
    starts = rng.integers(0, n_servers, size=n_clients)
    offsets = np.arange(locality, dtype=np.int64)
    ev = ((starts[:, None] + offsets[None, :]) % n_servers).reshape(-1)
    eu = np.repeat(np.arange(n_clients, dtype=np.int64), locality)
    eu, ev = _dedupe(n_clients, n_servers, eu, ev)
    graph = build_graph(n_clients, n_servers, eu, ev)
    if server_capacity is None:
        server_capacity = max(1, math.ceil(n_clients / n_servers))
    caps = uniform_capacities(graph, server_capacity)
    return AllocationInstance(
        graph=graph,
        capacities=caps,
        arboricity_upper_bound=locality,
        name=f"loadbal(c={n_clients},s={n_servers},d={locality})",
        metadata={"family": "load_balancing", "n_clients": n_clients,
                  "n_servers": n_servers, "locality": locality,
                  "server_capacity": server_capacity},
    )


def adwords_instance(
    n_impressions: int,
    n_advertisers: int,
    *,
    mean_degree: int = 4,
    budget_exponent: float = 2.0,
    seed=None,
) -> AllocationInstance:
    """Online-ads allocation workload: power-law advertiser popularity
    with Zipf budgets (capacities).  A named convenience wrapper around
    :func:`power_law_instance` + :func:`zipf_capacities`."""
    streams = spawn(seed, 2)
    inst = power_law_instance(
        n_impressions,
        n_advertisers,
        mean_left_degree=mean_degree,
        capacity=1,
        seed=streams[0],
    )
    caps = zipf_capacities(inst.graph, exponent=budget_exponent,
                           maximum=max(2, n_impressions // 4), seed=streams[1])
    return AllocationInstance(
        graph=inst.graph,
        capacities=caps,
        arboricity_upper_bound=None,
        name=f"adwords(n={n_impressions}+{n_advertisers})",
        metadata={"family": "adwords", "n_impressions": n_impressions,
                  "n_advertisers": n_advertisers, "mean_degree": mean_degree,
                  "budget_exponent": budget_exponent},
    )


def skew_frontier_instance(
    n_left: int,
    *,
    left_degree: int = 12,
    bg_right_degree: int = 8,
    capacity: int = 2,
    seed=None,
) -> AllocationInstance:
    """A right-side hub over a random bipartite background: λ ≤ left_degree.

    Every left vertex is adjacent to a single hub (right vertex 0) plus
    ``left_degree - 1`` uniformly random background right vertices
    (sized so background right degrees average ``bg_right_degree``).
    Left degrees stay ≤ ``left_degree``, so certificate traffic — which
    the faithful driver routes by *left* keys — stays spread; but the
    hub's exploration load (its ball, and fragment-join responses
    through it) scales with the *sampled* hub degree, i.e. with the
    per-round sample budget ``t``.

    That makes this the stress family for adaptive budget throttling
    (DESIGN.md §13, ``benchmarks/bench_mpc_adaptive.py``): at a fixed
    absolute space budget ``S``, a generous fixed ``t`` overflows the
    hub's machine as ``n`` grows, while a throttled budget completes —
    the "largest runnable n" frontier is budget-limited, not
    memory-limited.
    """
    n_left = check_positive_int(n_left, "n_left")
    left_degree = check_positive_int(left_degree, "left_degree")
    bg_right_degree = check_positive_int(bg_right_degree, "bg_right_degree")
    capacity = check_positive_int(capacity, "capacity")
    rng = as_generator(seed)
    n_bg = max(4, (n_left * (left_degree - 1)) // bg_right_degree)
    n_right = 1 + n_bg
    eu_parts = [np.arange(n_left, dtype=np.int64)]
    ev_parts = [np.zeros(n_left, dtype=np.int64)]  # hub = right vertex 0
    for _ in range(left_degree - 1):
        eu_parts.append(np.arange(n_left, dtype=np.int64))
        ev_parts.append(rng.integers(1, n_right, size=n_left).astype(np.int64))
    eu, ev = _dedupe(n_left, n_right, np.concatenate(eu_parts), np.concatenate(ev_parts))
    graph = build_graph(n_left, n_right, eu, ev)
    caps = np.full(n_right, capacity, dtype=np.int64)
    caps[0] = max(caps[0], 2)
    return AllocationInstance(
        graph=graph,
        capacities=caps,
        arboricity_upper_bound=left_degree,
        name=f"skew_frontier(n={n_left})",
        metadata={"family": "skew_frontier", "n_left": n_left,
                  "left_degree": left_degree,
                  "bg_right_degree": bg_right_degree, "capacity": capacity},
    )


def heavy_tailed_instance(
    n_left: int,
    *,
    left_degree: int = 4,
    tail_exponent: float = 1.2,
    max_capacity: int | None = None,
    seed=None,
) -> AllocationInstance:
    """Heavy-tailed *capacity* skew: a few giant servers hold most of
    the fleet's capacity.

    Server capacities follow a discrete Pareto law ``cap_v ∝ rank^(−1/
    tail_exponent)`` (scaled so the largest server holds
    ``max_capacity``, default ``n_left // 4``), and each client picks
    ``left_degree`` distinct servers with probability proportional to
    capacity — demand concentrates exactly where the capacity is, the
    cloud-serving shape where utilisation skew (not topology) is the
    stressor.  Left degrees are bounded by ``left_degree``, so the
    graph is ``left_degree``-degenerate from the client side and the
    certified arboricity bound is ``left_degree``.
    """
    n_left = check_positive_int(n_left, "n_left")
    left_degree = check_positive_int(left_degree, "left_degree")
    if tail_exponent <= 0.0:
        raise ValueError(f"tail_exponent must be > 0, got {tail_exponent}")
    n_right = max(left_degree + 1, n_left // 2)
    if max_capacity is None:
        max_capacity = max(2, n_left // 4)
    max_capacity = check_positive_int(max_capacity, "max_capacity")
    rng = as_generator(seed)
    ranks = np.arange(1, n_right + 1, dtype=np.float64)
    tail = np.power(ranks, -1.0 / tail_exponent)
    caps = np.maximum(1, np.rint(max_capacity * tail / tail[0])).astype(np.int64)
    probs = caps.astype(np.float64) / caps.sum()
    degree = min(left_degree, n_right)
    eu_list: list[np.ndarray] = []
    ev_list: list[np.ndarray] = []
    for u in range(n_left):
        nbrs = rng.choice(n_right, size=degree, replace=False, p=probs)
        eu_list.append(np.full(degree, u, dtype=np.int64))
        ev_list.append(nbrs.astype(np.int64))
    eu, ev = _dedupe(n_left, n_right, np.concatenate(eu_list), np.concatenate(ev_list))
    graph = build_graph(n_left, n_right, eu, ev)
    return AllocationInstance(
        graph=graph,
        capacities=caps,
        arboricity_upper_bound=left_degree,
        name=f"heavy_tailed(n={n_left})",
        metadata={"family": "heavy_tailed", "n_left": n_left,
                  "left_degree": left_degree, "tail_exponent": tail_exponent,
                  "max_capacity": max_capacity},
    )


def adversarial_rounds_instance(n_left: int, *, seed=None) -> AllocationInstance:
    """The round-maximizer: tuned against the level-set certificate to
    fire later than every other family at equal ``n_left``.

    Three tiers per client ``u``: a shared over-allocated core of
    ``b = max(2, n_left // 8)`` unit servers (every client connects to
    all of them), a mid tier shared by groups of ``g = max(2, 3b // 2)``
    clients (one unit server per group), and a private unit fringe
    server.  The core's priorities fall every round (it is ``L_0``)
    while the fringe rises, so the termination certificate's mass
    condition needs the priority gap to beat the core width — the
    ``slow_spread`` mechanism — and the mid tier adds a second wave:
    it starts *under*-allocated (``g`` clients each offering ≈ ``1 /
    (b+2)`` mass), tips over only once the core has drained, and the
    spill from that late over-allocation has to re-traverse the gap.
    Empirically this fires one to two rounds after ``slow_spread`` at
    the same ``n_left`` and ε (e.g. 14 vs 13 at n=120, ε=0.2; 25 vs 24
    at ε=0.1).

    Left degree is ``b + 2``, so the graph is ``(b+2)``-degenerate from
    the client side — the certified arboricity bound.  Deterministic;
    ``seed`` is accepted for registry uniformity.
    """
    n_left = check_positive_int(n_left, "n_left")
    b = max(2, n_left // 8)
    g = max(2, (3 * b) // 2)
    n_mid = (n_left + g - 1) // g
    n_right = b + n_mid + n_left
    eu = np.empty(n_left * (b + 2), dtype=np.int64)
    ev = np.empty(n_left * (b + 2), dtype=np.int64)
    pos = 0
    for u in range(n_left):
        eu[pos : pos + b] = u
        ev[pos : pos + b] = np.arange(b)
        pos += b
        eu[pos] = u
        ev[pos] = b + u // g
        pos += 1
        eu[pos] = u
        ev[pos] = b + n_mid + u
        pos += 1
    graph = build_graph(n_left, n_right, eu, ev)
    caps = np.ones(n_right, dtype=np.int64)
    return AllocationInstance(
        graph=graph,
        capacities=caps,
        arboricity_upper_bound=b + 2,
        name=f"adversarial_rounds(n={n_left})",
        metadata={"family": "adversarial_rounds", "n_left": n_left,
                  "core_right": b, "mid_group": g},
    )


def _capacity_profile(graph: BipartiteGraph, capacity: int | str, seed) -> np.ndarray:
    """Resolve the ``capacity`` shorthand used by the generators."""
    if isinstance(capacity, str):
        if capacity == "degree":
            return degree_proportional_capacities(graph)
        if capacity == "unit":
            return unit_capacities(graph)
        if capacity == "zipf":
            return zipf_capacities(graph, seed=seed)
        raise ValueError(f"unknown capacity profile {capacity!r}")
    return uniform_capacities(graph, capacity)


# Registry used by the experiment harness to sweep families uniformly.
FAMILY_BUILDERS: dict[str, Callable[..., AllocationInstance]] = {
    "union_of_forests": union_of_forests,
    "star": star_instance,
    "double_star": double_star_instance,
    "complete_bipartite": complete_bipartite_instance,
    "erdos_renyi": erdos_renyi_instance,
    "power_law": power_law_instance,
    "regular": regular_instance,
    "grid": grid_instance,
    "cycle": cycle_instance,
    "planted_dense_core": planted_dense_core_instance,
    "slow_spread": slow_spread_instance,
    "load_balancing": load_balancing_instance,
    "adwords": adwords_instance,
    "skew_frontier": skew_frontier_instance,
    "heavy_tailed": heavy_tailed_instance,
    "adversarial_rounds": adversarial_rounds_instance,
}


# Size-normalised adapters: one canonical instance of ≈ n clients per
# family, so sweeps can put every family on a common (family, n) grid.
# Each rule follows the family's own docstring defaults (slow_spread's
# width-4 sizing, forests' k=4, …); n is the *target* left-side size —
# families built from other shape parameters (grid, cycle) land as
# close to n as their structure allows.
SIZED_FAMILIES: dict[str, Callable[..., AllocationInstance]] = {
    "union_of_forests": lambda n, seed=None: union_of_forests(n, n, 4, seed=seed),
    "star": lambda n, seed=None: star_instance(n),
    "double_star": lambda n, seed=None: double_star_instance(n),
    "complete_bipartite": lambda n, seed=None: complete_bipartite_instance(
        n, max(2, n // 8)
    ),
    "erdos_renyi": lambda n, seed=None: erdos_renyi_instance(n, n, 3 * n, seed=seed),
    "power_law": lambda n, seed=None: power_law_instance(
        n, max(2, n // 2), seed=seed
    ),
    "regular": lambda n, seed=None: regular_instance(n, 4, seed=seed),
    "grid": lambda n, seed=None: grid_instance(
        max(2, math.isqrt(n)), max(2, math.isqrt(n))
    ),
    "cycle": lambda n, seed=None: cycle_instance(n),
    "planted_dense_core": lambda n, seed=None: planted_dense_core_instance(
        max(1, n // 4), max(1, n // 8), max(1, n - n // 4), max(1, n // 2), seed=seed
    ),
    "slow_spread": lambda n, seed=None: slow_spread_instance(max(1, n // 4), width=4),
    "load_balancing": lambda n, seed=None: load_balancing_instance(
        n, max(2, n // 4), seed=seed
    ),
    "adwords": lambda n, seed=None: adwords_instance(n, max(2, n // 6), seed=seed),
    "skew_frontier": lambda n, seed=None: skew_frontier_instance(n, seed=seed),
    "heavy_tailed": lambda n, seed=None: heavy_tailed_instance(n, seed=seed),
    "adversarial_rounds": lambda n, seed=None: adversarial_rounds_instance(n),
}


def sized_instance(family: str, n: int, *, seed=None) -> AllocationInstance:
    """Build ``family`` at target size ``n`` through :data:`SIZED_FAMILIES`.

    The sweep runner's instance axis: ``(family, n, seed)`` fully
    determines the instance.  Unknown families raise ``KeyError`` with
    the valid names so CLI errors stay actionable.
    """
    n = check_positive_int(n, "n")
    try:
        builder = SIZED_FAMILIES[family]
    except KeyError:
        raise KeyError(
            f"unknown family {family!r}; valid: {', '.join(sorted(SIZED_FAMILIES))}"
        ) from None
    return builder(n, seed=seed)
