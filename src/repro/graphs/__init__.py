"""Bipartite graph substrate: structures, generators, arboricity.

Public surface:

* :class:`BipartiteGraph` / :func:`build_graph` — dual-CSR graphs.
* :class:`AllocationInstance` — graph + capacities + λ certificate.
* :mod:`repro.graphs.generators` — controlled-λ workload families.
* :mod:`repro.graphs.arboricity` — degeneracy / exact λ / densest
  subgraph.
* :mod:`repro.graphs.splitting` — the allocation→matching reduction
  whose arboricity blow-up motivates the paper.
"""

from repro.graphs.bipartite import BipartiteGraph, build_graph, from_neighbor_lists
from repro.graphs.instances import AllocationInstance
from repro.graphs.capacities import (
    unit_capacities,
    uniform_capacities,
    degree_proportional_capacities,
    zipf_capacities,
    validate_capacities,
    total_capacity,
)
from repro.graphs.arboricity import (
    degeneracy,
    core_numbers,
    exact_arboricity,
    forest_partition,
    densest_subgraph,
)
from repro.graphs.properties import InstanceProfile, profile_graph
from repro.graphs import generators
from repro.graphs import io
from repro.graphs import splitting

__all__ = [
    "BipartiteGraph",
    "build_graph",
    "from_neighbor_lists",
    "AllocationInstance",
    "unit_capacities",
    "uniform_capacities",
    "degree_proportional_capacities",
    "zipf_capacities",
    "validate_capacities",
    "total_capacity",
    "degeneracy",
    "core_numbers",
    "exact_arboricity",
    "forest_partition",
    "densest_subgraph",
    "InstanceProfile",
    "profile_graph",
    "generators",
    "io",
    "splitting",
]
