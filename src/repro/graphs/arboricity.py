"""Arboricity machinery: degeneracy, exact arboricity, densest subgraph.

The paper's round bounds are functions of the arboricity λ(G)
(Definition 4).  Three tools, in increasing cost:

* :func:`degeneracy` — linear-time core decomposition.  The classical
  sandwich ``λ ≤ degeneracy ≤ 2λ − 1`` makes it the scalable λ
  estimator used by large benchmark instances.
* :func:`exact_arboricity` / :func:`forest_partition` — exact λ via
  matroid-union augmentation (Roskind–Tarjan style).  Produces either
  an explicit partition of ``E`` into ``k`` forests (certifying
  ``λ ≤ k``) or a Nash–Williams witness subgraph with
  ``m_S > k(|S|−1)`` (certifying ``λ > k``).  Both certificates are
  validated before being returned, so the answer is self-checking.
* :func:`densest_subgraph` — exact maximum-density subgraph
  (Goldberg's parametric min-cut, solved with our Dinic), used by the
  analysis modules to inspect where the proportional dynamics saturate
  first (Remark 1).

All routines operate on the undirected view of a bipartite graph
(:meth:`BipartiteGraph.undirected_edges`) or on raw edge arrays.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from fractions import Fraction
from typing import Optional

import numpy as np

from repro.baselines.dinic import DinicSolver, INF_CAPACITY
from repro.graphs.bipartite import BipartiteGraph
from repro.utils.validation import check_integer_array, check_positive_int

__all__ = [
    "degeneracy",
    "core_numbers",
    "exact_arboricity",
    "forest_partition",
    "densest_subgraph",
    "nash_williams_witness_density",
    "ArboricityResult",
    "DensestSubgraphResult",
]


# ----------------------------------------------------------------------
# Degeneracy (linear-time bucket queue)
# ----------------------------------------------------------------------

def core_numbers(n: int, edge_a: np.ndarray, edge_b: np.ndarray) -> np.ndarray:
    """Core number of every vertex of an undirected simple graph.

    Standard Batagelj–Zaveršnik bucket peeling; O(n + m).  The maximum
    core number is the graph's degeneracy.
    """
    edge_a = check_integer_array(edge_a, "edge_a")
    edge_b = check_integer_array(edge_b, "edge_b")
    if n == 0:
        return np.empty(0, dtype=np.int64)

    # Vectorized CSR adjacency over the undirected doubling.
    src = np.concatenate([edge_a, edge_b])
    dst = np.concatenate([edge_b, edge_a])
    by_src = np.argsort(src, kind="stable")
    adj = dst[by_src]
    deg = np.bincount(src, minlength=n).astype(np.int64)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(deg, out=indptr[1:])

    # Bucket fronts: bin_ptr[d] = position in `order` where degree-d
    # vertices currently start.
    max_deg = int(deg.max(initial=0))
    bin_ptr = np.zeros(max_deg + 2, dtype=np.int64)
    np.add.at(bin_ptr, deg + 1, 1)
    np.cumsum(bin_ptr, out=bin_ptr)
    order = np.argsort(deg, kind="stable").astype(np.int64)
    pos = np.empty(n, dtype=np.int64)
    pos[order] = np.arange(n, dtype=np.int64)

    degree = deg.copy()  # mutated during peeling; final value = core number
    order_l = order.tolist()  # python lists: the peel loop is scalar-heavy
    pos_l = pos.tolist()
    degree_l = degree.tolist()
    adj_l = adj.tolist()
    indptr_l = indptr.tolist()
    bin_ptr_l = bin_ptr.tolist()
    for i in range(n):
        v = order_l[i]
        dv = degree_l[v]
        for j in range(indptr_l[v], indptr_l[v + 1]):
            w = adj_l[j]
            dw = degree_l[w]
            if dw > dv:
                # Move w to the front of its bucket, shrink the bucket,
                # and decrement w's degree (w slides into bucket dw-1).
                front = bin_ptr_l[dw]
                u = order_l[front]
                if u != w:
                    pw = pos_l[w]
                    order_l[front] = w
                    order_l[pw] = u
                    pos_l[w] = front
                    pos_l[u] = pw
                bin_ptr_l[dw] = front + 1
                degree_l[w] = dw - 1
    return np.asarray(degree_l, dtype=np.int64)


def degeneracy(graph: BipartiteGraph) -> int:
    """Degeneracy of the underlying undirected graph.

    Satisfies ``λ(G) ≤ degeneracy(G) ≤ 2λ(G) − 1``; the cheap λ proxy.
    """
    ea, eb = graph.undirected_edges()
    if ea.size == 0:
        return 0
    cores = core_numbers(graph.n_vertices, ea, eb)
    return int(cores.max())


# ----------------------------------------------------------------------
# Exact arboricity via matroid-union augmentation
# ----------------------------------------------------------------------

class _ForestFamily:
    """``k`` edge-disjoint forests over ``n`` vertices with matroid-union
    augmenting insertion.

    ``insert`` either accepts the edge (restructuring the family along a
    shortest augmenting chain) or returns a Nash–Williams witness: the
    vertex set touched by the failed BFS, which induces a subgraph too
    dense for ``k`` forests.
    """

    def __init__(self, n: int, k: int):
        self.n = n
        self.k = k
        # adjacency[i][v] = list of (neighbour, edge_id) in forest i.
        self.adjacency: list[list[list[tuple[int, int]]]] = [
            [[] for _ in range(n)] for _ in range(k)
        ]
        self.owner: dict[int, int] = {}
        self.endpoints: dict[int, tuple[int, int]] = {}

    # -- forest maintenance ------------------------------------------------
    def _add(self, forest: int, edge_id: int, a: int, b: int) -> None:
        self.adjacency[forest][a].append((b, edge_id))
        self.adjacency[forest][b].append((a, edge_id))
        self.owner[edge_id] = forest

    def _remove(self, forest: int, edge_id: int) -> None:
        a, b = self.endpoints[edge_id]
        self.adjacency[forest][a] = [
            (w, e) for (w, e) in self.adjacency[forest][a] if e != edge_id
        ]
        self.adjacency[forest][b] = [
            (w, e) for (w, e) in self.adjacency[forest][b] if e != edge_id
        ]
        del self.owner[edge_id]

    def _tree_path(self, forest: int, a: int, b: int) -> Optional[list[int]]:
        """Edge ids on the unique ``a``–``b`` path in ``forest``; ``None``
        if the endpoints lie in different components."""
        if a == b:
            return []
        parent_edge: dict[int, tuple[int, int]] = {a: (-1, -1)}
        queue = deque([a])
        while queue:
            v = queue.popleft()
            for w, eid in self.adjacency[forest][v]:
                if w not in parent_edge:
                    parent_edge[w] = (v, eid)
                    if w == b:
                        path = []
                        cur = b
                        while cur != a:
                            prev, peid = parent_edge[cur]
                            path.append(peid)
                            cur = prev
                        return path
                    queue.append(w)
        return None

    # -- augmentation --------------------------------------------------
    def insert(self, edge_id: int, a: int, b: int) -> Optional[set[int]]:
        """Try to insert an edge; returns ``None`` on success or the
        witness vertex set on failure."""
        self.endpoints[edge_id] = (a, b)
        label: dict[int, Optional[int]] = {edge_id: None}
        queue = deque([edge_id])
        while queue:
            f = queue.popleft()
            fa, fb = self.endpoints[f]
            f_owner = self.owner.get(f)
            for forest in range(self.k):
                if forest == f_owner:
                    continue
                path = self._tree_path(forest, fa, fb)
                if path is None:
                    self._apply_chain(f, forest, label)
                    return None
                for g in path:
                    if g not in label:
                        label[g] = f
                        queue.append(g)
        # Augmentation failed: the labelled edges witness density > k.
        witness: set[int] = set()
        for e in label:
            ea, eb = self.endpoints[e]
            witness.add(ea)
            witness.add(eb)
        del self.endpoints[edge_id]
        return witness

    def _apply_chain(self, f: int, dest: int, label: dict[int, Optional[int]]) -> None:
        """Walk the label chain, cascading edges between forests."""
        cur: Optional[int] = f
        while cur is not None:
            prev_owner = self.owner.get(cur)
            if prev_owner is not None:
                self._remove(prev_owner, cur)
            ca, cb = self.endpoints[cur]
            self._add(dest, cur, ca, cb)
            if prev_owner is None:
                break
            dest = prev_owner
            cur = label[cur]

    # -- introspection -------------------------------------------------
    def partition(self) -> list[list[int]]:
        """Edge ids per forest."""
        out: list[list[int]] = [[] for _ in range(self.k)]
        for eid, forest in self.owner.items():
            out[forest].append(eid)
        return out

    def validate(self) -> None:
        """Assert each forest is acyclic (union-find check)."""
        for forest in range(self.k):
            parent = list(range(self.n))

            def find(x: int) -> int:
                while parent[x] != x:
                    parent[x] = parent[parent[x]]
                    x = parent[x]
                return x

            for eid, owner in self.owner.items():
                if owner != forest:
                    continue
                a, b = self.endpoints[eid]
                ra, rb = find(a), find(b)
                if ra == rb:
                    raise AssertionError(f"forest {forest} contains a cycle at edge {eid}")
                parent[ra] = rb


@dataclass(frozen=True)
class ArboricityResult:
    """Exact arboricity with its two-sided certificates.

    ``partition`` certifies ``λ ≤ value`` (validated forest partition);
    ``witness_vertices`` certifies ``λ > value − 1`` (vertex set whose
    induced subgraph has more than ``(value−1)(|S|−1)`` edges).  For
    forests (λ ≤ 1 decided without a failure) the witness may be None.
    """

    value: int
    partition: list[np.ndarray]
    witness_vertices: Optional[np.ndarray]


def forest_partition(
    n: int, edge_a: np.ndarray, edge_b: np.ndarray, k: int
) -> tuple[Optional[list[np.ndarray]], Optional[np.ndarray]]:
    """Partition edges into ``k`` forests, or produce a density witness.

    Returns ``(partition, None)`` on success or ``(None, witness)`` on
    failure, where ``witness`` is a vertex array with
    ``m_{G[S]} > k(|S| − 1)`` (validated here).
    """
    k = check_positive_int(k, "k")
    edge_a = check_integer_array(edge_a, "edge_a")
    edge_b = check_integer_array(edge_b, "edge_b")
    family = _ForestFamily(n, k)
    for eid, (a, b) in enumerate(zip(edge_a.tolist(), edge_b.tolist())):
        if a == b:
            raise ValueError("self-loops have no forest partition")
        witness = family.insert(eid, a, b)
        if witness is not None:
            witness_arr = np.asarray(sorted(witness), dtype=np.int64)
            _validate_witness(edge_a, edge_b, witness_arr, k, upto_edge=eid)
            return None, witness_arr
    family.validate()
    partition = [np.asarray(sorted(ids), dtype=np.int64) for ids in family.partition()]
    return partition, None


def _validate_witness(
    edge_a: np.ndarray, edge_b: np.ndarray, witness: np.ndarray, k: int, upto_edge: int
) -> None:
    """Check the Nash–Williams violation ``m_S > k(|S| − 1)``."""
    in_s = np.zeros(int(max(edge_a.max(initial=0), edge_b.max(initial=0))) + 1, dtype=bool)
    in_s[witness] = True
    considered_a = edge_a[: upto_edge + 1]
    considered_b = edge_b[: upto_edge + 1]
    m_s = int(np.count_nonzero(in_s[considered_a] & in_s[considered_b]))
    if m_s <= k * (witness.size - 1):
        raise RuntimeError(
            "matroid-union failure produced an invalid Nash–Williams witness "
            f"(m_S={m_s}, k(|S|-1)={k * (witness.size - 1)}); this indicates a bug"
        )


def exact_arboricity(graph: BipartiteGraph, *, max_k: int | None = None) -> ArboricityResult:
    """Exact arboricity of (the undirected view of) ``graph``.

    Searches ``k`` upward from the Nash–Williams density floor to the
    degeneracy ceiling; cost is dominated by the matroid-union runs,
    suitable for instances up to a few thousand edges (tests and
    experiment instrumentation — large benchmarks use ``degeneracy``).
    """
    ea, eb = graph.undirected_edges()
    n = graph.n_vertices
    m = ea.shape[0]
    if m == 0:
        return ArboricityResult(value=0, partition=[], witness_vertices=None)
    lo = max(1, -(-m // max(1, n - 1)))  # ceil(m / (n-1)) — global density floor
    hi = max(lo, degeneracy(graph))
    if max_k is not None:
        hi = min(hi, max_k)
    witness: Optional[np.ndarray] = None
    for k in range(lo, hi + 1):
        partition, w = forest_partition(n, ea, eb, k)
        if partition is not None:
            return ArboricityResult(value=k, partition=partition, witness_vertices=witness)
        witness = w
    raise RuntimeError(
        f"arboricity exceeds the degeneracy ceiling {hi}; "
        "this contradicts λ ≤ degeneracy and indicates a bug"
    )


# ----------------------------------------------------------------------
# Densest subgraph (Goldberg's parametric min-cut)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class DensestSubgraphResult:
    """Maximum-density subgraph: density ``m_S / |S|`` as an exact
    fraction plus the optimal vertex set."""

    density: Fraction
    vertices: np.ndarray


def densest_subgraph(n: int, edge_a: np.ndarray, edge_b: np.ndarray) -> DensestSubgraphResult:
    """Exact maximum-density subgraph via Goldberg's reduction.

    Decision ``∃S ≠ ∅ : m_S/|S| > p/q`` ⇔ the min cut of the network
    (source →(q) edge-nodes →(∞) endpoints →(p) sink) is < ``m·q``.
    Distinct achievable densities differ by ≥ 1/n², so a binary search
    over the integer grid of ``m_S·n! ...`` — concretely over fractions
    with denominator ≤ n — terminates in O(log(m n)) maxflows.
    """
    edge_a = check_integer_array(edge_a, "edge_a")
    edge_b = check_integer_array(edge_b, "edge_b")
    m = edge_a.shape[0]
    if m == 0:
        return DensestSubgraphResult(density=Fraction(0), vertices=np.empty(0, dtype=np.int64))

    def cut_test(p: int, q: int) -> Optional[np.ndarray]:
        """Vertices of a subgraph with density > p/q, else ``None``."""
        solver = DinicSolver(1 + m + n + 1)
        source = 0
        sink = 1 + m + n
        for eid in range(m):
            solver.add_edge(source, 1 + eid, q)
            solver.add_edge(1 + eid, 1 + m + int(edge_a[eid]), INF_CAPACITY)
            solver.add_edge(1 + eid, 1 + m + int(edge_b[eid]), INF_CAPACITY)
        for v in range(n):
            solver.add_edge(1 + m + v, sink, p)
        flow = solver.max_flow(source, sink)
        if flow >= m * q:
            return None
        side = solver.min_cut_source_side(source)
        verts = np.asarray(
            [v for v in range(n) if side[1 + m + v]], dtype=np.int64
        )
        return verts

    # Binary search over densities on the 1/(n(n-1)) grid.
    lo_num, lo_den = 0, 1          # known achievable (empty graph density 0)
    best_vertices = np.unique(np.concatenate([edge_a, edge_b]))
    hi_num, hi_den = m, 1          # density can never exceed m
    grid = n * n
    lo = Fraction(lo_num, lo_den)
    hi = Fraction(hi_num, hi_den)
    while hi - lo > Fraction(1, grid):
        mid = (lo + hi) / 2
        verts = cut_test(mid.numerator, mid.denominator)
        if verts is not None and verts.size > 0:
            lo = mid
            best_vertices = verts
        else:
            hi = mid
    # Exact density of the extracted set.
    in_s = np.zeros(n, dtype=bool)
    in_s[best_vertices] = True
    m_s = int(np.count_nonzero(in_s[edge_a] & in_s[edge_b]))
    dens = Fraction(m_s, max(1, best_vertices.size))
    return DensestSubgraphResult(density=dens, vertices=best_vertices)


def nash_williams_witness_density(
    n: int, edge_a: np.ndarray, edge_b: np.ndarray, vertices: np.ndarray
) -> Fraction:
    """``m_S / (|S| − 1)`` for a vertex set ``S`` — the Nash–Williams
    quantity whose ceiling lower-bounds arboricity."""
    vertices = check_integer_array(vertices, "vertices")
    if vertices.size < 2:
        return Fraction(0)
    in_s = np.zeros(n, dtype=bool)
    in_s[vertices] = True
    m_s = int(np.count_nonzero(in_s[edge_a] & in_s[edge_b]))
    return Fraction(m_s, vertices.size - 1)
