"""The vertex-splitting reduction from allocation to matching (§1.1).

The classical reduction replaces each right vertex ``v`` by ``C_v``
copies, each adjacent to all of ``N(v)``; a maximum matching of the
split graph corresponds to a maximum allocation of the original.  The
paper's Remark after Theorem 2 observes that this reduction can blow
arboricity up from 1 to Θ(n) (a star whose center has capacity ``n−1``
becomes a complete bipartite graph), which is precisely why the paper
analyses the allocation problem directly.  Experiment E9 reproduces
that blow-up quantitatively with this module.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.bipartite import BipartiteGraph, build_graph
from repro.graphs.capacities import validate_capacities
from repro.graphs.instances import AllocationInstance

__all__ = ["SplitGraph", "split_to_matching_instance", "lift_matching"]


@dataclass(frozen=True)
class SplitGraph:
    """Result of the splitting reduction.

    ``graph`` is the matching instance (all capacities implicitly 1);
    ``copy_owner[j]`` maps split right vertex ``j`` back to the original
    right vertex it is a copy of.
    """

    graph: BipartiteGraph
    copy_owner: np.ndarray

    @property
    def n_copies(self) -> int:
        return int(self.copy_owner.shape[0])


def split_to_matching_instance(
    graph: BipartiteGraph, capacities: np.ndarray, *, max_edges: int | None = None
) -> SplitGraph:
    """Build the split graph: ``C_v`` copies of each ``v ∈ R``.

    The edge count is ``Σ_v C_v · deg(v)``, which can be Θ(n²) (the
    point of the remark); ``max_edges`` guards against accidentally
    materializing something huge — exceeding it raises ``ValueError``
    with the would-be size, which E9 reports directly.
    """
    caps = validate_capacities(graph, capacities)
    total_edges = int(np.sum(caps[graph.edge_v]))
    if max_edges is not None and total_edges > max_edges:
        raise ValueError(
            f"split graph would have {total_edges} edges (> max_edges={max_edges})"
        )
    copy_offset = np.zeros(graph.n_right + 1, dtype=np.int64)
    np.cumsum(caps, out=copy_offset[1:])
    n_copies = int(copy_offset[-1])
    copy_owner = np.repeat(np.arange(graph.n_right, dtype=np.int64), caps)

    # Each original edge (u, v) fans out to (u, copy) for every copy of v.
    reps = caps[graph.edge_v]
    eu = np.repeat(graph.edge_u, reps)
    base = np.repeat(copy_offset[graph.edge_v], reps)
    # Within each original edge's block, enumerate the copies 0..C_v-1.
    block_pos = np.arange(total_edges, dtype=np.int64) - np.repeat(
        np.concatenate([[0], np.cumsum(reps)[:-1]]).astype(np.int64), reps
    )
    ev = base + block_pos
    split = build_graph(graph.n_left, n_copies, eu, ev)
    return SplitGraph(graph=split, copy_owner=copy_owner)


def lift_matching(
    original: BipartiteGraph, split: SplitGraph, split_edge_mask: np.ndarray
) -> np.ndarray:
    """Map a matching of the split graph back to an allocation edge mask.

    Several copies of ``v`` may be matched to distinct ``u``s; each
    lifts to the original edge ``(u, v)``.  Distinct split edges cannot
    lift to the same original edge *in a matching* (that would need the
    same ``u`` matched twice), so the lift is injective.
    """
    split_edge_mask = np.asarray(split_edge_mask, dtype=bool)
    if split_edge_mask.shape != (split.graph.n_edges,):
        raise ValueError("mask shape does not match the split graph")
    ids = np.nonzero(split_edge_mask)[0]
    us = split.graph.edge_u[ids]
    vs = split.copy_owner[split.graph.edge_v[ids]]
    # Locate (u, v) in the original canonical edge order via search.
    mask = np.zeros(original.n_edges, dtype=bool)
    for u, v in zip(us.tolist(), vs.tolist()):
        row_start = original.left_indptr[u]
        row = original.left_neighbors(u)
        pos = int(np.searchsorted(row, v))
        if pos >= row.shape[0] or row[pos] != v:
            raise ValueError(f"split edge lifts to non-edge ({u}, {v})")
        eid = int(original.left_edge[row_start + pos])
        if mask[eid]:
            raise ValueError(f"two split edges lift to the same original edge ({u}, {v})")
        mask[eid] = True
    return mask
