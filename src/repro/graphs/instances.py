"""Allocation problem instances: a graph, capacities, and provenance.

An :class:`AllocationInstance` bundles everything an allocation solver
needs, plus the arboricity upper bound the generator can certify *by
construction* — the quantity the paper's round bounds are parameterized
by.  Exact arboricity of generated instances is computed on demand by
:mod:`repro.graphs.arboricity` and may be smaller than the certified
bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.capacities import validate_capacities

__all__ = ["AllocationInstance"]


@dataclass(frozen=True)
class AllocationInstance:
    """A named allocation problem instance.

    Attributes
    ----------
    graph:
        The bipartite graph ``G = (L ∪ R, E)``.
    capacities:
        Integer capacities ``C_v ≥ 1`` per right vertex.
    arboricity_upper_bound:
        A bound ``λ(G) ≤ this`` certified by the generator's
        construction (e.g. a union of k forests certifies k).  ``None``
        when the generator cannot certify one.
    name:
        Human-readable family name for experiment tables.
    metadata:
        Generator parameters (for provenance in result dumps).
    """

    graph: BipartiteGraph
    capacities: np.ndarray
    arboricity_upper_bound: int | None = None
    name: str = "instance"
    metadata: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        caps = validate_capacities(self.graph, self.capacities)
        object.__setattr__(self, "capacities", caps)
        caps.setflags(write=False)
        if self.arboricity_upper_bound is not None and self.arboricity_upper_bound < 1:
            if self.graph.n_edges > 0:
                raise ValueError("arboricity bound must be >= 1 for a non-empty graph")

    @property
    def n_left(self) -> int:
        return self.graph.n_left

    @property
    def n_right(self) -> int:
        return self.graph.n_right

    @property
    def n_edges(self) -> int:
        return self.graph.n_edges

    def with_capacities(self, capacities: np.ndarray, suffix: str = "recap") -> "AllocationInstance":
        """Same graph, different capacity profile."""
        return AllocationInstance(
            graph=self.graph,
            capacities=capacities,
            arboricity_upper_bound=self.arboricity_upper_bound,
            name=f"{self.name}+{suffix}",
            metadata=dict(self.metadata),
        )

    def describe(self) -> dict[str, Any]:
        """Summary row for experiment tables."""
        return {
            "name": self.name,
            "n_left": self.n_left,
            "n_right": self.n_right,
            "m": self.n_edges,
            "lambda_bound": self.arboricity_upper_bound,
            "total_capacity": int(self.capacities.sum()) if self.n_right else 0,
        }
