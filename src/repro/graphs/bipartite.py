"""Immutable CSR bipartite graph.

The allocation algorithms are edge-parallel: each LOCAL round computes
a value per edge from per-endpoint state, then aggregates back to the
endpoints.  A dual-CSR layout (one adjacency per side, each slot
carrying the global edge id) lets every per-round step be expressed as
segment operations — row reductions over contiguous neighbourhood
slices and bincount scatters — following the vectorize-don't-loop
idiom of the domain guides.  The segment helpers delegate to the
pluggable kernel layer (:mod:`repro.kernels`, DESIGN.md §6); each
graph lazily caches one :class:`~repro.kernels.SegmentLayout` per side
holding the slot-owner gather indices and ``reduceat`` offsets the
optimized backend reuses across rounds.

Conventions
-----------
* Left vertices are ``0 .. n_left-1``; right vertices ``0 .. n_right-1``
  (separate id spaces).
* Edges are identified by their position in the canonical edge arrays
  ``edge_u`` / ``edge_v`` (sorted lexicographically by ``(u, v)``).
* ``left_adj[left_indptr[u]:left_indptr[u+1]]`` lists the right
  neighbours of ``u``; ``left_edge`` gives the matching edge ids.
  By construction the L-side slot order coincides with canonical edge
  order, i.e. ``left_edge == arange(m)``; it is materialized anyway so
  code can stay layout-agnostic.
* Parallel edges are rejected: the allocation problem is defined on
  simple bipartite graphs.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Iterable, Sequence

import numpy as np

from repro import kernels
from repro.kernels import SegmentLayout
from repro.utils.validation import check_integer_array, check_nonnegative_int

__all__ = ["BipartiteGraph", "build_graph", "from_neighbor_lists"]


@dataclass(frozen=True)
class BipartiteGraph:
    """A simple bipartite graph in dual-CSR form.

    Use :func:`build_graph` or :func:`from_neighbor_lists` to
    construct; the constructor assumes arrays are already consistent.
    """

    n_left: int
    n_right: int
    edge_u: np.ndarray
    edge_v: np.ndarray
    left_indptr: np.ndarray
    left_adj: np.ndarray
    left_edge: np.ndarray
    right_indptr: np.ndarray
    right_adj: np.ndarray
    right_edge: np.ndarray

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def n_edges(self) -> int:
        """Number of edges ``m``."""
        return int(self.edge_u.shape[0])

    @property
    def n_vertices(self) -> int:
        """Total vertex count ``n = |L| + |R|``."""
        return self.n_left + self.n_right

    @property
    def left_degrees(self) -> np.ndarray:
        """Degree of every left vertex (int64, shape ``(n_left,)``,
        read-only — the layout's canonical cached array)."""
        return self.left_layout.degrees

    @property
    def right_degrees(self) -> np.ndarray:
        """Degree of every right vertex (int64, shape ``(n_right,)``,
        read-only — the layout's canonical cached array)."""
        return self.right_layout.degrees

    @cached_property
    def left_layout(self) -> SegmentLayout:
        """Cached kernel layout of the L-CSR side (DESIGN.md §6)."""
        return SegmentLayout(self.left_indptr)

    @cached_property
    def right_layout(self) -> SegmentLayout:
        """Cached kernel layout of the R-CSR side (DESIGN.md §6)."""
        return SegmentLayout(self.right_indptr)

    @property
    def left_slot_owner(self) -> np.ndarray:
        """Left row id of every L-CSR slot — ``per_row[left_slot_owner]``
        replaces per-round ``np.repeat(per_row, left_degrees)``."""
        return self.left_layout.slot_owner

    @property
    def right_slot_owner(self) -> np.ndarray:
        """Right row id of every R-CSR slot (see ``left_slot_owner``)."""
        return self.right_layout.slot_owner

    @property
    def max_degree(self) -> int:
        """Maximum degree over both sides (0 for the empty graph)."""
        best = 0
        if self.n_left:
            best = max(best, int(self.left_degrees.max(initial=0)))
        if self.n_right:
            best = max(best, int(self.right_degrees.max(initial=0)))
        return best

    def left_neighbors(self, u: int) -> np.ndarray:
        """Right neighbours of left vertex ``u`` (a CSR view, do not mutate)."""
        return self.left_adj[self.left_indptr[u] : self.left_indptr[u + 1]]

    def right_neighbors(self, v: int) -> np.ndarray:
        """Left neighbours of right vertex ``v`` (a CSR view, do not mutate)."""
        return self.right_adj[self.right_indptr[v] : self.right_indptr[v + 1]]

    def left_incident_edges(self, u: int) -> np.ndarray:
        """Edge ids incident to left vertex ``u``."""
        return self.left_edge[self.left_indptr[u] : self.left_indptr[u + 1]]

    def right_incident_edges(self, v: int) -> np.ndarray:
        """Edge ids incident to right vertex ``v``."""
        return self.right_edge[self.right_indptr[v] : self.right_indptr[v + 1]]

    def edges(self) -> Iterable[tuple[int, int]]:
        """Iterate ``(u, v)`` pairs in canonical edge order."""
        for u, v in zip(self.edge_u.tolist(), self.edge_v.tolist()):
            yield (u, v)

    def has_edge(self, u: int, v: int) -> bool:
        """Membership test via binary search in the (sorted) L-CSR row."""
        row = self.left_neighbors(u)
        pos = np.searchsorted(row, v)
        return bool(pos < row.shape[0] and row[pos] == v)

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def subgraph_by_edges(self, edge_mask: np.ndarray) -> "BipartiteGraph":
        """Graph on the same vertex set keeping only masked edges.

        ``edge_mask`` may be a boolean mask over edges or an array of
        edge ids.  Vertex ids are preserved (isolated vertices remain).
        """
        edge_mask = np.asarray(edge_mask)
        if edge_mask.dtype == bool:
            if edge_mask.shape != (self.n_edges,):
                raise ValueError(
                    f"boolean edge mask must have shape ({self.n_edges},), got {edge_mask.shape}"
                )
            keep_u = self.edge_u[edge_mask]
            keep_v = self.edge_v[edge_mask]
        else:
            ids = check_integer_array(edge_mask, "edge ids")
            if ids.size and (ids.min() < 0 or ids.max() >= self.n_edges):
                raise ValueError("edge ids out of range")
            keep_u = self.edge_u[ids]
            keep_v = self.edge_v[ids]
        return build_graph(self.n_left, self.n_right, keep_u, keep_v)

    def induced_subgraph(
        self, left_vertices: np.ndarray, right_vertices: np.ndarray
    ) -> tuple["BipartiteGraph", np.ndarray, np.ndarray]:
        """Subgraph induced by the given vertex subsets, with relabeling.

        Returns ``(subgraph, left_ids, right_ids)`` where ``left_ids[i]``
        is the original id of new left vertex ``i`` (same for right).
        Used by the arboricity analysis (density of ``N(L_2τ) ∪ L_0``)
        and the boosting layer-pair subinstances.
        """
        left_ids = np.unique(check_integer_array(left_vertices, "left_vertices"))
        right_ids = np.unique(check_integer_array(right_vertices, "right_vertices"))
        if left_ids.size and (left_ids.min() < 0 or left_ids.max() >= self.n_left):
            raise ValueError("left vertex ids out of range")
        if right_ids.size and (right_ids.min() < 0 or right_ids.max() >= self.n_right):
            raise ValueError("right vertex ids out of range")

        left_map = np.full(self.n_left, -1, dtype=np.int64)
        left_map[left_ids] = np.arange(left_ids.size, dtype=np.int64)
        right_map = np.full(self.n_right, -1, dtype=np.int64)
        right_map[right_ids] = np.arange(right_ids.size, dtype=np.int64)

        keep = (left_map[self.edge_u] >= 0) & (right_map[self.edge_v] >= 0)
        sub = build_graph(
            left_ids.size,
            right_ids.size,
            left_map[self.edge_u[keep]],
            right_map[self.edge_v[keep]],
        )
        return sub, left_ids, right_ids

    def reverse(self) -> "BipartiteGraph":
        """Swap the two sides (L ↔ R); edge ids are re-canonicalized."""
        return build_graph(self.n_right, self.n_left, self.edge_v, self.edge_u)

    # ------------------------------------------------------------------
    # Undirected views (for arboricity machinery)
    # ------------------------------------------------------------------
    def undirected_edges(self) -> tuple[np.ndarray, np.ndarray]:
        """Edge list over the merged vertex space ``L ⊎ R``.

        Left vertex ``u`` keeps id ``u``; right vertex ``v`` becomes
        ``n_left + v``.  Arboricity is a property of the underlying
        undirected graph, so the analysis modules consume this view.
        """
        return self.edge_u.copy(), self.edge_v + self.n_left

    # ------------------------------------------------------------------
    # Segment helpers used by the allocation inner loops
    # ------------------------------------------------------------------
    def left_segment_sum(self, per_slot: np.ndarray) -> np.ndarray:
        """Sum a per-L-slot array within each left vertex's CSR row."""
        return kernels.segment_sum(per_slot, self.left_indptr, layout=self.left_layout)

    def right_segment_sum(self, per_slot: np.ndarray) -> np.ndarray:
        """Sum a per-R-slot array within each right vertex's CSR row."""
        return kernels.segment_sum(per_slot, self.right_indptr, layout=self.right_layout)

    def left_segment_max(self, per_slot: np.ndarray, empty: float) -> np.ndarray:
        """Max within each left row; ``empty`` fills degree-0 rows."""
        return kernels.segment_max(
            per_slot, self.left_indptr, empty, layout=self.left_layout
        )

    def right_segment_max(self, per_slot: np.ndarray, empty: float) -> np.ndarray:
        """Max within each right row; ``empty`` fills degree-0 rows."""
        return kernels.segment_max(
            per_slot, self.right_indptr, empty, layout=self.right_layout
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Exhaustive internal-consistency check (used by tests)."""
        m = self.n_edges
        assert self.edge_v.shape == (m,)
        assert self.left_indptr.shape == (self.n_left + 1,)
        assert self.right_indptr.shape == (self.n_right + 1,)
        assert self.left_indptr[0] == 0 and self.left_indptr[-1] == m
        assert self.right_indptr[0] == 0 and self.right_indptr[-1] == m
        assert np.all(np.diff(self.left_indptr) >= 0)
        assert np.all(np.diff(self.right_indptr) >= 0)
        if m:
            assert 0 <= self.edge_u.min() and self.edge_u.max() < self.n_left
            assert 0 <= self.edge_v.min() and self.edge_v.max() < self.n_right
        # CSR slots agree with the edge arrays.
        assert np.array_equal(self.edge_v[self.left_edge], self.left_adj)
        assert np.array_equal(self.edge_u[self.right_edge], self.right_adj)
        # Each side's slots cover every edge exactly once.
        assert np.array_equal(np.sort(self.left_edge), np.arange(m))
        assert np.array_equal(np.sort(self.right_edge), np.arange(m))
        # Rows are sorted and duplicate-free (simple graph).  Vectorized:
        # adjacent slot pairs that lie inside the same row must strictly
        # increase; pairs straddling a row boundary are exempt.
        for indptr, adj in (
            (self.left_indptr, self.left_adj),
            (self.right_indptr, self.right_adj),
        ):
            if m > 1:
                boundary = np.zeros(m, dtype=bool)
                starts = indptr[:-1][np.diff(indptr) > 0]
                boundary[starts] = True
                same_row = ~boundary[1:]
                assert np.all(np.diff(adj)[same_row] > 0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BipartiteGraph(n_left={self.n_left}, n_right={self.n_right}, "
            f"m={self.n_edges})"
        )


def build_graph(
    n_left: int,
    n_right: int,
    edge_u: Sequence[int] | np.ndarray,
    edge_v: Sequence[int] | np.ndarray,
) -> BipartiteGraph:
    """Construct a :class:`BipartiteGraph` from an edge list.

    Edges are canonicalized to lexicographic ``(u, v)`` order; parallel
    edges raise ``ValueError`` (the allocation problem is defined on
    simple graphs — deduplicate upstream if a generator can collide).
    """
    n_left = check_nonnegative_int(n_left, "n_left")
    n_right = check_nonnegative_int(n_right, "n_right")
    edge_u = check_integer_array(np.asarray(edge_u, dtype=np.int64), "edge_u")
    edge_v = check_integer_array(np.asarray(edge_v, dtype=np.int64), "edge_v")
    if edge_u.shape != edge_v.shape or edge_u.ndim != 1:
        raise ValueError("edge_u and edge_v must be 1-D arrays of equal length")
    m = edge_u.shape[0]
    if m:
        if edge_u.min() < 0 or edge_u.max() >= n_left:
            raise ValueError("edge_u contains ids outside [0, n_left)")
        if edge_v.min() < 0 or edge_v.max() >= n_right:
            raise ValueError("edge_v contains ids outside [0, n_right)")

    # Canonical order: lexicographic by (u, v).
    order = np.lexsort((edge_v, edge_u))
    edge_u = np.ascontiguousarray(edge_u[order])
    edge_v = np.ascontiguousarray(edge_v[order])

    if m > 1:
        dup = (edge_u[1:] == edge_u[:-1]) & (edge_v[1:] == edge_v[:-1])
        if np.any(dup):
            i = int(np.argmax(dup))
            raise ValueError(
                f"parallel edge ({edge_u[i]}, {edge_v[i]}): the allocation problem "
                "is defined on simple graphs"
            )

    left_indptr = np.zeros(n_left + 1, dtype=np.int64)
    if m:
        np.add.at(left_indptr, edge_u + 1, 1)
    np.cumsum(left_indptr, out=left_indptr)
    left_adj = edge_v.copy()
    left_edge = np.arange(m, dtype=np.int64)

    # R-side CSR: sort edge ids by (v, u); rows come out sorted by u.
    r_order = np.lexsort((edge_u, edge_v))
    right_indptr = np.zeros(n_right + 1, dtype=np.int64)
    if m:
        np.add.at(right_indptr, edge_v + 1, 1)
    np.cumsum(right_indptr, out=right_indptr)
    right_adj = edge_u[r_order]
    right_edge = r_order.astype(np.int64)

    graph = BipartiteGraph(
        n_left=n_left,
        n_right=n_right,
        edge_u=edge_u,
        edge_v=edge_v,
        left_indptr=left_indptr,
        left_adj=left_adj,
        left_edge=left_edge,
        right_indptr=right_indptr,
        right_adj=right_adj,
        right_edge=right_edge,
    )
    # Freeze the arrays: the dataclass is frozen but ndarrays are not.
    for arr in (
        graph.edge_u, graph.edge_v, graph.left_indptr, graph.left_adj,
        graph.left_edge, graph.right_indptr, graph.right_adj, graph.right_edge,
    ):
        arr.setflags(write=False)
    return graph


def from_neighbor_lists(neighbors: Sequence[Sequence[int]], n_right: int) -> BipartiteGraph:
    """Build from per-left-vertex neighbour lists (test convenience)."""
    edge_u: list[int] = []
    edge_v: list[int] = []
    for u, nbrs in enumerate(neighbors):
        for v in nbrs:
            edge_u.append(u)
            edge_v.append(v)
    return build_graph(len(neighbors), n_right, edge_u, edge_v)
