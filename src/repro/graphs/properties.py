"""Structural statistics of allocation instances.

Experiment tables and the CLI's ``info`` command report these so that
every workload is characterized by the quantities the paper's bounds
actually depend on: arboricity proxies (degeneracy, density), degree
profiles, and component structure.  All pure functions of the graph.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.graphs.arboricity import core_numbers
from repro.graphs.bipartite import BipartiteGraph

__all__ = [
    "DegreeProfile",
    "degree_profile",
    "connected_components",
    "component_sizes",
    "bfs_eccentricity",
    "diameter_lower_bound",
    "InstanceProfile",
    "profile_graph",
]


@dataclass(frozen=True)
class DegreeProfile:
    """Summary of one side's degree distribution."""

    minimum: int
    maximum: int
    mean: float
    median: float
    isolated: int

    @staticmethod
    def from_degrees(degrees: np.ndarray) -> "DegreeProfile":
        if degrees.size == 0:
            return DegreeProfile(0, 0, 0.0, 0.0, 0)
        return DegreeProfile(
            minimum=int(degrees.min()),
            maximum=int(degrees.max()),
            mean=float(degrees.mean()),
            median=float(np.median(degrees)),
            isolated=int((degrees == 0).sum()),
        )


def degree_profile(graph: BipartiteGraph) -> tuple[DegreeProfile, DegreeProfile]:
    """``(left, right)`` degree profiles."""
    return (
        DegreeProfile.from_degrees(graph.left_degrees),
        DegreeProfile.from_degrees(graph.right_degrees),
    )


def _merged_adjacency(graph: BipartiteGraph) -> tuple[np.ndarray, np.ndarray]:
    """CSR adjacency over merged vertex ids (vectorized build)."""
    ea, eb = graph.undirected_edges()
    n = graph.n_vertices
    src = np.concatenate([ea, eb])
    dst = np.concatenate([eb, ea])
    order = np.argsort(src, kind="stable")
    adj = dst[order]
    counts = np.bincount(src, minlength=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return indptr, adj


def connected_components(graph: BipartiteGraph) -> np.ndarray:
    """Component label per merged vertex (BFS; labels are 0-based)."""
    n = graph.n_vertices
    if n == 0:
        return np.empty(0, dtype=np.int64)
    indptr, adj = _merged_adjacency(graph)
    labels = np.full(n, -1, dtype=np.int64)
    current = 0
    for start in range(n):
        if labels[start] >= 0:
            continue
        labels[start] = current
        queue = deque([start])
        while queue:
            v = queue.popleft()
            for w in adj[indptr[v] : indptr[v + 1]].tolist():
                if labels[w] < 0:
                    labels[w] = current
                    queue.append(w)
        current += 1
    return labels


def component_sizes(graph: BipartiteGraph) -> np.ndarray:
    """Sizes of connected components, descending."""
    labels = connected_components(graph)
    if labels.size == 0:
        return np.empty(0, dtype=np.int64)
    sizes = np.bincount(labels)
    return np.sort(sizes)[::-1]


def bfs_eccentricity(graph: BipartiteGraph, start_merged: int) -> int:
    """Largest BFS distance reachable from ``start_merged``."""
    indptr, adj = _merged_adjacency(graph)
    dist = {start_merged: 0}
    queue = deque([start_merged])
    ecc = 0
    while queue:
        v = queue.popleft()
        for w in adj[indptr[v] : indptr[v + 1]].tolist():
            if w not in dist:
                dist[w] = dist[v] + 1
                ecc = max(ecc, dist[w])
                queue.append(w)
    return ecc


def diameter_lower_bound(graph: BipartiteGraph, *, sweeps: int = 2) -> int:
    """Double-sweep BFS lower bound on the diameter.

    Relevant context for LOCAL results: any problem is trivially
    solvable in diameter rounds (§2.2), so the interesting regime for
    the paper's bounds is `log λ ≪ diameter`.
    """
    if graph.n_vertices == 0 or graph.n_edges == 0:
        return 0
    start = int(graph.edge_u[0])
    best = 0
    indptr, adj = _merged_adjacency(graph)
    for _ in range(max(1, sweeps)):
        dist = {start: 0}
        queue = deque([start])
        far, far_d = start, 0
        while queue:
            v = queue.popleft()
            for w in adj[indptr[v] : indptr[v + 1]].tolist():
                if w not in dist:
                    dist[w] = dist[v] + 1
                    if dist[w] > far_d:
                        far, far_d = w, dist[w]
                    queue.append(w)
        best = max(best, far_d)
        start = far
    return best


@dataclass(frozen=True)
class InstanceProfile:
    """Everything the experiment tables/CLI report about a graph."""

    n_left: int
    n_right: int
    m: int
    left_degrees: DegreeProfile
    right_degrees: DegreeProfile
    degeneracy: int
    density_ceiling: int          # ⌈m/(n−1)⌉ — the Nash–Williams floor
    n_components: int
    largest_component: int
    diameter_lower_bound: int

    def as_dict(self) -> dict[str, Any]:
        return {
            "n_left": self.n_left,
            "n_right": self.n_right,
            "m": self.m,
            "left_deg_max": self.left_degrees.maximum,
            "left_deg_mean": round(self.left_degrees.mean, 3),
            "right_deg_max": self.right_degrees.maximum,
            "right_deg_mean": round(self.right_degrees.mean, 3),
            "degeneracy": self.degeneracy,
            "density_ceiling": self.density_ceiling,
            "n_components": self.n_components,
            "largest_component": self.largest_component,
            "diameter_lb": self.diameter_lower_bound,
        }


def profile_graph(graph: BipartiteGraph) -> InstanceProfile:
    """Compute the full structural profile (O(m) + BFS sweeps)."""
    left, right = degree_profile(graph)
    sizes = component_sizes(graph)
    ea, eb = graph.undirected_edges()
    if graph.n_edges:
        cores = core_numbers(graph.n_vertices, ea, eb)
        degen = int(cores.max())
    else:
        degen = 0
    density = (
        -(-graph.n_edges // max(1, graph.n_vertices - 1)) if graph.n_edges else 0
    )
    return InstanceProfile(
        n_left=graph.n_left,
        n_right=graph.n_right,
        m=graph.n_edges,
        left_degrees=left,
        right_degrees=right,
        degeneracy=degen,
        density_ceiling=density,
        n_components=int(sizes.size),
        largest_component=int(sizes[0]) if sizes.size else 0,
        diameter_lower_bound=diameter_lower_bound(graph),
    )
