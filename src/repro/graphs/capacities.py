"""Capacity profiles for the right side of an allocation instance.

The allocation problem attaches an integer capacity ``C_v ≥ 1`` to
every right vertex.  The paper's motivating applications (online ads,
server-client load balancing) induce characteristic capacity shapes:
uniform server capacities, budgets proportional to advertiser reach
(degree), and heavy-tailed budgets.  Each profile here is a pure
function of (graph, parameters, seed) so instances are reproducible.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.bipartite import BipartiteGraph
from repro.utils.rng import as_generator
from repro.utils.validation import check_integer_array, check_positive_int

__all__ = [
    "unit_capacities",
    "uniform_capacities",
    "degree_proportional_capacities",
    "zipf_capacities",
    "validate_capacities",
    "validate_integral_allocation",
    "total_capacity",
]


def validate_capacities(graph: BipartiteGraph, capacities: np.ndarray) -> np.ndarray:
    """Check shape/positivity of a capacity vector and return it as int64.

    Capacities are per right vertex; every value must be ≥ 1
    (Definition 5 in the paper takes ``C : R → N≥1``).
    """
    caps = check_integer_array(capacities, "capacities")
    if caps.shape != (graph.n_right,):
        raise ValueError(
            f"capacities must have shape ({graph.n_right},), got {caps.shape}"
        )
    if caps.size and caps.min() < 1:
        raise ValueError("capacities must be >= 1 everywhere")
    return caps


def validate_integral_allocation(
    graph: BipartiteGraph, capacities: np.ndarray, edge_mask: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Check ``edge_mask`` is a feasible integral allocation (Def. 5).

    The one check every integral consumer shares (repair, metrics, the
    serving layer's warm-path validation).  Returns ``(caps, mask,
    left_used, right_used)`` — the validated capacities, the bool mask,
    and the per-side load vectors the caller usually needs next — or
    raises ``ValueError``.
    """
    caps = validate_capacities(graph, capacities)
    mask = np.asarray(edge_mask, dtype=bool)
    if mask.shape != (graph.n_edges,):
        raise ValueError(
            f"edge_mask must have shape ({graph.n_edges},), got {mask.shape}"
        )
    left_used = np.bincount(graph.edge_u[mask], minlength=graph.n_left)
    right_used = np.bincount(graph.edge_v[mask], minlength=graph.n_right)
    if np.any(left_used > 1):
        raise ValueError(
            "edge_mask is not a feasible allocation: a left vertex has degree > 1"
        )
    if np.any(right_used > caps):
        raise ValueError(
            "edge_mask is not a feasible allocation: a right capacity is exceeded"
        )
    return caps, mask, left_used, right_used


def total_capacity(capacities: np.ndarray) -> int:
    """Sum of capacities, ``C(R)``."""
    return int(np.asarray(capacities, dtype=np.int64).sum())


def unit_capacities(graph: BipartiteGraph) -> np.ndarray:
    """All capacities 1 — the allocation problem degenerates to bipartite
    maximum matching, the special case §1 builds on."""
    return np.ones(graph.n_right, dtype=np.int64)


def uniform_capacities(graph: BipartiteGraph, value: int) -> np.ndarray:
    """Constant capacity ``value`` (uniform server capacity)."""
    value = check_positive_int(value, "value")
    return np.full(graph.n_right, value, dtype=np.int64)


def degree_proportional_capacities(
    graph: BipartiteGraph, fraction: float = 0.5, minimum: int = 1
) -> np.ndarray:
    """``C_v = max(minimum, round(fraction · deg(v)))``.

    Models advertisers whose budget scales with their audience.  With
    ``fraction < 1`` the instance is capacity-constrained (interesting
    over-allocation dynamics); ``fraction ≥ 1`` makes the L-side
    constraint the binding one.
    """
    if not (0.0 < fraction):
        raise ValueError(f"fraction must be positive, got {fraction}")
    minimum = check_positive_int(minimum, "minimum")
    caps = np.maximum(minimum, np.rint(fraction * graph.right_degrees)).astype(np.int64)
    return caps


def zipf_capacities(
    graph: BipartiteGraph,
    exponent: float = 2.0,
    maximum: int | None = None,
    seed=None,
) -> np.ndarray:
    """Heavy-tailed capacities, ``C_v ~ Zipf(exponent)`` clipped to ``maximum``.

    Heavy-tailed budgets stress the level-set dynamics: a few huge-
    capacity vertices stay under-allocated (their β climbs) while the
    bulk saturates quickly — the regime Remark 1 describes.
    """
    if exponent <= 1.0:
        raise ValueError(f"zipf exponent must exceed 1, got {exponent}")
    rng = as_generator(seed)
    caps = rng.zipf(exponent, size=graph.n_right).astype(np.int64)
    if maximum is not None:
        maximum = check_positive_int(maximum, "maximum")
        caps = np.minimum(caps, maximum)
    return np.maximum(caps, 1)
