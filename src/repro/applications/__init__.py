"""Application layers built on the allocation solvers (the paper's §1
motivations as runnable code)."""

from repro.applications.makespan import (
    MakespanResult,
    max_serviceable,
    minimize_makespan,
)

__all__ = ["MakespanResult", "max_serviceable", "minimize_makespan"]
