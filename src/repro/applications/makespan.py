"""Load balancing via allocation: minimize the maximum server load.

[ALPZ21] (cited in §1) obtains its state-of-the-art distributed load
balancing by repeatedly calling an allocation subroutine; this module
reproduces that usage pattern.  Given clients L, servers R, and an
eligibility graph, the *makespan* of a full assignment is the largest
number of clients any server receives.  Observing that

    makespan ≤ T  ⇔  the allocation instance with uniform capacity T
                      can serve every (serviceable) client,

binary search over T with an allocation feasibility oracle computes the
optimum.  Two oracles are provided:

* ``exact`` — the Dinic-based optimum (reference);
* ``proportional`` — the paper's pipeline (fractional certificate →
  rounding → repair → bounded augmenting), giving a distributed-
  flavoured oracle whose approximation slack widens the search's
  acceptance test accordingly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Literal

import numpy as np

from repro.baselines.exact import solve_exact
from repro.boosting.augment import eliminate_short_augmenting_paths
from repro.core.local_driver import solve_fractional_until_certificate
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.capacities import uniform_capacities
from repro.graphs.instances import AllocationInstance
from repro.rounding.repair import greedy_fill
from repro.rounding.sampling import round_best_of
from repro.utils.validation import check_fraction

__all__ = ["MakespanResult", "max_serviceable", "minimize_makespan"]


@dataclass(frozen=True)
class MakespanResult:
    """An assignment minimizing (approximately) the maximum load."""

    edge_mask: np.ndarray
    makespan: int
    served: int
    serviceable: int
    oracle_calls: int
    meta: dict[str, Any]

    @property
    def serves_everyone(self) -> bool:
        return self.served == self.serviceable


def max_serviceable(graph: BipartiteGraph) -> int:
    """Clients with at least one eligible server (isolated clients can
    never be served and are excluded from the makespan question)."""
    return int((graph.left_degrees > 0).sum())


def _assignment_size(
    graph: BipartiteGraph,
    capacity: int,
    oracle: str,
    epsilon: float,
    seed,
) -> tuple[int, np.ndarray]:
    caps = uniform_capacities(graph, capacity)
    if oracle == "exact":
        sol = solve_exact(graph, caps)
        return sol.value, sol.edge_mask
    # The paper pipeline, finished with exact bounded augmentation so
    # the feasibility answer is sharp at small scales.
    inst = AllocationInstance(graph=graph, capacities=caps, name="makespan-probe")
    frac = solve_fractional_until_certificate(inst, epsilon)
    rounded = round_best_of(graph, caps, frac.allocation, seed=seed)
    repaired = greedy_fill(graph, caps, rounded.edge_mask, seed=seed)
    mask, _ = eliminate_short_augmenting_paths(graph, caps, repaired)
    return int(mask.sum()), mask


def minimize_makespan(
    graph: BipartiteGraph,
    *,
    oracle: Literal["exact", "proportional"] = "exact",
    epsilon: float = 0.2,
    seed=None,
) -> MakespanResult:
    """Binary search the smallest uniform capacity serving everyone.

    Returns the assignment found at the optimal T.  With the
    ``proportional`` oracle the inner solver is the paper's pipeline
    (polished with exact augmentation), so the reported makespan is
    exact on the tested scales while exercising the distributed path.
    """
    check_fraction(epsilon, "epsilon")
    target = max_serviceable(graph)
    if target == 0:
        return MakespanResult(
            edge_mask=np.zeros(graph.n_edges, dtype=bool),
            makespan=0, served=0, serviceable=0, oracle_calls=0,
            meta={"oracle": oracle},
        )
    lo = max(1, math.ceil(target / max(1, graph.n_right)))
    hi = max(lo, int(graph.right_degrees.max(initial=1)))
    calls = 0
    best_mask: np.ndarray | None = None
    best_t = hi
    while lo <= hi:
        mid = (lo + hi) // 2
        size, mask = _assignment_size(graph, mid, oracle, epsilon, seed)
        calls += 1
        if size >= target:
            best_mask, best_t = mask, mid
            hi = mid - 1
        else:
            lo = mid + 1
    if best_mask is None:
        # Even the max-degree capacity cannot serve everyone — take the
        # largest assignment at the top capacity.
        size, best_mask = _assignment_size(
            graph, int(graph.right_degrees.max(initial=1)), oracle, epsilon, seed
        )
        best_t = int(graph.right_degrees.max(initial=1))
    loads = np.bincount(graph.edge_v[best_mask], minlength=graph.n_right)
    return MakespanResult(
        edge_mask=best_mask,
        makespan=int(loads.max(initial=0)),
        served=int(best_mask.sum()),
        serviceable=target,
        oracle_calls=calls,
        meta={"oracle": oracle, "optimal_T": best_t},
    )
