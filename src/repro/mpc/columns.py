"""Typed column batches: the record layout of the columnar substrate.

The object substrate ships Python tuples like ``("edge", u, v)`` and
prices them by recursive traversal (:func:`repro.mpc.machine.sizeof_words`).
A :class:`ColumnBatch` is the columnar equivalent: a record *kind*
(the tuple's tag), a dict of fixed-width NumPy columns (one per tuple
field), and an optional ragged payload (offsets + flat values, the CSR
discipline) for variable-length fields such as exponentiation balls.

Word accounting (DESIGN.md §7) is computed from dtypes and lengths —
no per-record traversal: each fixed column contributes
``max(1, itemsize // 8)`` words per record (a word holds an id or a
number; sub-word scalars such as bools still occupy one word, exactly
like the object substrate's ``sizeof_words``), the kind tag contributes
one word (parity with the tuple tag string), and a ragged payload
contributes its per-record length in words.  By construction a batch
prices identically to the tuple records it replaces, which is what
keeps the two substrates' ledgers bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Sequence

import numpy as np

__all__ = ["WORD_BYTES", "dtype_words", "ColumnBatch", "ragged_from_rows"]

WORD_BYTES = 8


def dtype_words(dtype) -> int:
    """Words per element of ``dtype``: ``max(1, itemsize // 8)``.

    int64/float64 are one word; narrow scalars (bool, int32) round up
    to one word, matching ``sizeof_words`` on the equivalent Python
    scalar.
    """
    return max(1, np.dtype(dtype).itemsize // WORD_BYTES)


@dataclass
class ColumnBatch:
    """A batch of same-kind records as columns.

    ``cols`` maps field name to a 1-D array (all equal length).  The
    optional ragged payload is ``(offsets, payload)`` with
    ``payload[offsets[i]:offsets[i+1]]`` the i-th record's
    variable-length words.  ``key`` optionally names the routing-key
    column consumed by :func:`repro.mpc.primitives.route_by_key`.
    """

    kind: str
    cols: Dict[str, np.ndarray] = field(default_factory=dict)
    offsets: Optional[np.ndarray] = None
    payload: Optional[np.ndarray] = None
    key: Optional[str] = None

    def __post_init__(self) -> None:
        lengths = {name: c.shape[0] for name, c in self.cols.items()}
        if (self.offsets is None) != (self.payload is None):
            raise ValueError("offsets and payload must be provided together")
        n = None
        if lengths:
            vals = set(lengths.values())
            if len(vals) != 1:
                raise ValueError(f"ragged column lengths in {self.kind!r}: {lengths}")
            n = vals.pop()
        if self.offsets is not None:
            n_off = self.offsets.shape[0] - 1
            if n is not None and n_off != n:
                raise ValueError(
                    f"offsets imply {n_off} records but columns hold {n}"
                )
            n = n_off
        if n is None:
            raise ValueError("a ColumnBatch needs at least one column or a payload")
        self._n = int(n)
        if self.key is not None and self.key not in self.cols:
            raise ValueError(f"key column {self.key!r} not in {sorted(self.cols)}")

    # ------------------------------------------------------------------
    @property
    def n_records(self) -> int:
        return self._n

    def words_per_record(self) -> np.ndarray:
        """Per-record word cost from dtypes and payload lengths.

        ``1`` (kind tag) + one word per fixed column element (scaled by
        :func:`dtype_words`) + the payload length in words.
        """
        fixed = 1 + sum(dtype_words(c.dtype) for c in self.cols.values())
        out = np.full(self._n, fixed, dtype=np.int64)
        if self.offsets is not None:
            out += np.diff(self.offsets).astype(np.int64) * dtype_words(
                self.payload.dtype
            )
        return out

    def total_words(self) -> int:
        return int(self.words_per_record().sum())

    # ------------------------------------------------------------------
    def take(self, order: np.ndarray) -> "ColumnBatch":
        """Row-gather (duplicates allowed); ragged payload follows."""
        order = np.asarray(order, dtype=np.int64)
        cols = {name: c[order] for name, c in self.cols.items()}
        offsets = payload = None
        if self.offsets is not None:
            lengths = np.diff(self.offsets)[order]
            offsets = np.zeros(order.shape[0] + 1, dtype=np.int64)
            np.cumsum(lengths, out=offsets[1:])
            total = int(offsets[-1])
            if total:
                starts = self.offsets[:-1][order]
                idx = (
                    np.repeat(starts - offsets[:-1], lengths)
                    + np.arange(total, dtype=np.int64)
                )
                payload = self.payload[idx]
            else:
                payload = self.payload[:0]
        return ColumnBatch(self.kind, cols, offsets, payload, self.key)

    def select(self, mask: np.ndarray) -> "ColumnBatch":
        return self.take(np.flatnonzero(mask))

    def payload_row(self, i: int) -> np.ndarray:
        """The i-th record's ragged payload (empty array when absent)."""
        if self.offsets is None:
            return np.empty(0, dtype=np.int64)
        return self.payload[int(self.offsets[i]) : int(self.offsets[i + 1])]

    @classmethod
    def concat(cls, batches: Sequence["ColumnBatch"]) -> "ColumnBatch":
        """Row-concatenate same-schema batches (at least one)."""
        if not batches:
            raise ValueError("concat needs at least one batch")
        first = batches[0]
        if len(batches) == 1:
            return first
        for b in batches[1:]:
            if b.kind != first.kind or set(b.cols) != set(first.cols):
                raise ValueError(
                    f"schema mismatch concatenating kind {first.kind!r}"
                )
            if (b.offsets is None) != (first.offsets is None):
                raise ValueError("ragged/flat mismatch in concat")
        cols = {
            name: np.concatenate([b.cols[name] for b in batches])
            for name in first.cols
        }
        offsets = payload = None
        if first.offsets is not None:
            lengths = np.concatenate([np.diff(b.offsets) for b in batches])
            offsets = np.zeros(lengths.shape[0] + 1, dtype=np.int64)
            np.cumsum(lengths, out=offsets[1:])
            payload = np.concatenate([b.payload for b in batches])
        return cls(first.kind, cols, offsets, payload, first.key)


def ragged_from_rows(rows: Iterable[Sequence], dtype=np.int64):
    """Build ``(offsets, payload)`` from an iterable of flat sequences."""
    lengths = []
    flat: list = []
    for row in rows:
        lengths.append(len(row))
        flat.extend(row)
    offsets = np.zeros(len(lengths) + 1, dtype=np.int64)
    np.cumsum(np.asarray(lengths, dtype=np.int64), out=offsets[1:])
    return offsets, np.asarray(flat, dtype=dtype)
