"""MPC-model substrate: accounted machines, primitives, exponentiation.

:class:`MPCCluster` enforces the sublinear-regime constraints (``S``
words per machine, ``S`` words sent/received per round) and keeps the
round ledger that E5 compares against :class:`MPCCostModel`'s
closed-form predictions.
"""

from repro.mpc.machine import Machine, SpaceViolation, sizeof_words
from repro.mpc.cluster import MPCCluster, RoundLog, cluster_for
from repro.mpc.primitives import (
    fan_out,
    tree_depth,
    route_by_key,
    tree_broadcast,
    tree_reduce,
    sample_sort,
)
from repro.mpc.exponentiation import collect_balls, expected_doubling_rounds
from repro.mpc.costmodel import MPCCostModel, PhaseCost
from repro.mpc.simulation import (
    DirectSimulationResult,
    simulate_local_rounds_on_cluster,
)

__all__ = [
    "Machine",
    "SpaceViolation",
    "sizeof_words",
    "MPCCluster",
    "RoundLog",
    "cluster_for",
    "fan_out",
    "tree_depth",
    "route_by_key",
    "tree_broadcast",
    "tree_reduce",
    "sample_sort",
    "collect_balls",
    "expected_doubling_rounds",
    "MPCCostModel",
    "PhaseCost",
    "DirectSimulationResult",
    "simulate_local_rounds_on_cluster",
]
