"""MPC-model substrate: accounted machines, primitives, exponentiation.

:class:`MPCCluster` enforces the sublinear-regime constraints (``S``
words per machine, ``S`` words sent/received per round) and keeps the
round ledger that E5 compares against :class:`MPCCostModel`'s
closed-form predictions.

Two substrates implement the accounting (DESIGN.md §7): the object
reference (:class:`MPCCluster`, Python tuples) and the vectorized
columnar cluster (:class:`ColumnarCluster`, typed column batches with
dtype-based word pricing).  Selection mirrors the kernel backends:
``REPRO_MPC_SUBSTRATE`` or :func:`set_substrate`/:func:`use_substrate`;
both produce bit-identical ledgers and trajectories.
"""

from repro.mpc.machine import Machine, SpaceViolation, sizeof_words
from repro.mpc.cluster import MPCCluster, RoundLog, cluster_for
from repro.mpc.columns import ColumnBatch, dtype_words, ragged_from_rows
from repro.mpc.columnar import ColumnarCluster, Shipment
from repro.mpc.substrate import (
    available_substrates,
    get_substrate,
    make_cluster,
    register_substrate,
    set_substrate,
    use_substrate,
)
from repro.mpc.primitives import (
    fan_out,
    tree_depth,
    route_by_key,
    tree_broadcast,
    tree_reduce,
    tree_reduce_vector,
    sample_sort,
)
from repro.mpc.exponentiation import collect_balls, expected_doubling_rounds
from repro.mpc.costmodel import MPCCostModel, PhaseCost
from repro.mpc.simulation import (
    DirectSimulationResult,
    simulate_local_rounds_on_cluster,
)

__all__ = [
    "Machine",
    "SpaceViolation",
    "sizeof_words",
    "MPCCluster",
    "RoundLog",
    "cluster_for",
    "ColumnBatch",
    "dtype_words",
    "ragged_from_rows",
    "ColumnarCluster",
    "Shipment",
    "available_substrates",
    "get_substrate",
    "make_cluster",
    "register_substrate",
    "set_substrate",
    "use_substrate",
    "fan_out",
    "tree_depth",
    "route_by_key",
    "tree_broadcast",
    "tree_reduce",
    "tree_reduce_vector",
    "sample_sort",
    "collect_balls",
    "expected_doubling_rounds",
    "MPCCostModel",
    "PhaseCost",
    "DirectSimulationResult",
    "simulate_local_rounds_on_cluster",
]
