"""Standard MPC primitives, with explicit round costs.

The paper's §5 leans on "standard primitives such as graph
exponentiation and sorting, which are by now standard in the MPC
literature".  This module implements them on the accounted cluster:

* :func:`route_by_key` — hash-partition records; **1 round**.
* :func:`tree_broadcast` — send a small payload to every machine along
  a fan-out-``f`` tree; **⌈log_f M⌉ rounds** (``f`` derived from the
  word budget).
* :func:`tree_reduce` / :func:`tree_reduce_vector` — aggregate
  per-machine values to machine 0 up the same tree; **⌈log_f M⌉
  rounds**.
* :func:`sample_sort` — TeraSort-style splitter sort; **3 rounds +
  one broadcast**.

Every primitive runs through the cluster's accounted exchange, so
space and traffic budgets are enforced and round counts accumulate in
the cluster's ledger — the numbers E5 compares against the theory.

Each primitive dispatches on the substrate (DESIGN.md §7): object
clusters take the per-record path below; :class:`ColumnarCluster`
instances take the vectorized column-batch path.  Both walk the same
tree schedules and charge identical word counts, so the ledgers are
bit-identical (asserted in ``tests/test_columnar_substrate.py``).
"""

from __future__ import annotations

import bisect
import math
import random
from typing import Any, Callable, Optional, Union

import numpy as np

from repro.kernels import scatter_add
from repro.mpc.cluster import MPCCluster
from repro.mpc.columnar import ColumnarCluster, Shipment
from repro.mpc.columns import ColumnBatch
from repro.mpc.machine import SpaceViolation, sizeof_words

__all__ = [
    "fan_out",
    "tree_depth",
    "route_by_key",
    "tree_broadcast",
    "tree_reduce",
    "tree_reduce_vector",
    "sample_sort",
]


def fan_out(cluster, payload_words: int) -> int:
    """Largest tree fan-out the word budget allows: a machine relaying
    a ``payload_words`` message to ``f`` children sends ``f·payload``
    words, which must fit in ``S``.

    A payload that exceeds ``S`` outright cannot be shipped to even
    one child, so no fan-out is valid — that is a budget violation:
    on a strict cluster it raises :class:`SpaceViolation` (it used to
    be silently clamped to fan-out 2, deferring the failure to an
    opaque traffic check deep inside the tree walk); on a
    ``strict=False`` cluster it is recorded in ``cluster.violations``
    and the historical clamp applies, matching every other budget
    check.  The remaining clamp is documented: when ``S // payload ==
    1`` the returned minimum fan-out of 2 keeps the tree logarithmic,
    and the per-round traffic check still polices the actual sends of
    any parent with two children.
    """
    if payload_words < 1:
        raise ValueError("payload_words must be >= 1")
    if payload_words > cluster.words_per_machine:
        problem = (
            f"payload of {payload_words} words exceeds the per-machine budget "
            f"S={cluster.words_per_machine}: no tree fan-out can ship it"
        )
        if cluster.strict:
            raise SpaceViolation(problem)
        cluster.violations.append(problem)
    return max(2, cluster.words_per_machine // payload_words)


def tree_depth(n_machines: int, f: int) -> int:
    """Rounds for a fan-out-``f`` tree over ``n_machines`` machines."""
    if n_machines <= 1:
        return 1
    return max(1, math.ceil(math.log(n_machines) / math.log(f)))


# ----------------------------------------------------------------------
# route_by_key
# ----------------------------------------------------------------------
def route_by_key(
    cluster,
    key_fn: Union[Callable[[Any], int], str, None] = None,
    *,
    label: str = "route_by_key",
    return_histogram: bool = False,
) -> np.ndarray | None:
    """Move every record to machine ``key mod M`` (1 round).

    After this round all records sharing a key are co-located, which is
    the precondition for any per-key local computation (the MPC
    group-by).  With ``return_histogram=True`` the per-destination
    record histogram is additionally computed (via the shared
    :func:`repro.kernels.scatter_add` primitive) so callers can track
    routing skew — the MPC driver records its peak in the ledger.

    On an object cluster ``key_fn`` is the per-record callable.  On a
    columnar cluster it is a column name (or ``None`` to use each
    batch's declared ``key`` column) and the destinations are computed
    vectorized.
    """
    if isinstance(cluster, ColumnarCluster):
        return _route_by_key_columnar(
            cluster, key_fn, label=label, return_histogram=return_histogram
        )
    if not callable(key_fn):
        raise TypeError("object-substrate route_by_key needs a per-record key_fn")
    n = cluster.n_machines
    destinations: list[int] | None = [] if return_histogram else None

    def mapper(mid: int, records: list[Any]):
        for rec in records:
            dst = int(key_fn(rec)) % n
            if destinations is not None:
                destinations.append(dst)
            yield dst, rec

    cluster.exchange(mapper, label=label)
    if destinations is None:
        return None
    return scatter_add(
        np.asarray(destinations, dtype=np.int64), minlength=n
    ).astype(np.int64)


def _route_by_key_columnar(
    cluster: ColumnarCluster,
    key_col: Optional[str],
    *,
    label: str,
    return_histogram: bool,
) -> np.ndarray | None:
    if key_col is not None and not isinstance(key_col, str):
        raise TypeError(
            "columnar route_by_key takes a column name (or None for each "
            "batch's declared key), not a per-record callable"
        )
    M = cluster.n_machines
    ships: list[Shipment] = []
    all_dst: list[np.ndarray] = []
    for kind, (batch, home) in cluster.store_items():
        col = key_col if key_col is not None else batch.key
        if col is None:
            raise ValueError(
                f"kind {kind!r} declares no routing key and none was passed"
            )
        dst = batch.cols[col].astype(np.int64) % M
        ships.append(Shipment(batch, home, dst))
        if return_histogram:
            all_dst.append(dst)
    cluster.exchange_columnar(ships, label=label)
    if not return_histogram:
        return None
    flat = (
        np.concatenate(all_dst) if all_dst else np.empty(0, dtype=np.int64)
    )
    return scatter_add(flat, minlength=M).astype(np.int64)


# ----------------------------------------------------------------------
# tree_broadcast
# ----------------------------------------------------------------------
def tree_broadcast(
    cluster,
    payload: Any,
    *,
    tag: str = "bcast",
    label: str = "broadcast",
) -> int:
    """Deliver ``(tag, payload)`` to every machine; returns rounds used.

    Machine 0 is the root.  Children of machine ``i`` at fan-out ``f``
    are ``i·f+1 .. i·f+f`` — the standard implicit tree.  The columnar
    path carries the payload as a ragged numeric column (same word
    count as ``sizeof_words`` on the tuple) and walks the identical
    level schedule.
    """
    if isinstance(cluster, ColumnarCluster):
        return _tree_broadcast_columnar(cluster, payload, tag=tag, label=label)
    words = sizeof_words(payload) + 1
    f = fan_out(cluster, words)
    n = cluster.n_machines
    rounds = 0
    # Seed the payload at the root without charging a round (the root
    # computes it locally).
    cluster.machines[0].store((tag, payload))

    # Level-by-level push until every machine holds the tagged record.
    have = {0}
    while len(have) < n:
        frontier = set(have)

        def mapper(mid: int, records: list[Any]):
            for rec in records:
                if isinstance(rec, tuple) and len(rec) == 2 and rec[0] == tag:
                    if mid in frontier:
                        for c in range(mid * f + 1, min(n, mid * f + f + 1)):
                            if c not in frontier:
                                yield c, rec
                yield mid, rec  # everything persists in place

        cluster.exchange(mapper, label=f"{label}/level")
        rounds += 1
        new_have = set(frontier)
        for parent in frontier:
            for c in range(parent * f + 1, min(n, parent * f + f + 1)):
                new_have.add(c)
        have = new_have
    return max(rounds, 1) if n > 1 else 0


def _broadcast_payload_array(payload: Any) -> np.ndarray:
    arr = np.asarray(payload, dtype=np.float64)
    if arr.ndim > 1:
        raise ValueError("columnar broadcast payloads must be scalar or 1-D")
    return np.atleast_1d(arr)


def _payload_batch(tag: str, arr: np.ndarray, copies: int) -> ColumnBatch:
    offsets = np.arange(copies + 1, dtype=np.int64) * arr.size
    return ColumnBatch(tag, {}, offsets, np.tile(arr, copies))


def _tree_broadcast_columnar(
    cluster: ColumnarCluster, payload: Any, *, tag: str, label: str
) -> int:
    arr = _broadcast_payload_array(payload)
    words = arr.size + 1
    f = fan_out(cluster, words)
    n = cluster.n_machines
    cluster.append_rows(_payload_batch(tag, arr, 1), np.array([0], dtype=np.int64))

    rounds = 0
    have = {0}
    while len(have) < n:
        frontier = sorted(have)
        src_list: list[int] = []
        dst_list: list[int] = []
        for parent in frontier:  # ascending = source-major emission order
            for c in range(parent * f + 1, min(n, parent * f + f + 1)):
                if c not in have:
                    src_list.append(parent)
                    dst_list.append(c)
        ships = cluster.keep_all_shipments()
        if src_list:
            copies = _payload_batch(tag, arr, len(src_list))
            ships.append(
                Shipment(
                    copies,
                    np.asarray(src_list, dtype=np.int64),
                    np.asarray(dst_list, dtype=np.int64),
                )
            )
        cluster.exchange_columnar(ships, label=f"{label}/level")
        rounds += 1
        have.update(dst_list)
    return max(rounds, 1) if n > 1 else 0


# ----------------------------------------------------------------------
# tree_reduce
# ----------------------------------------------------------------------
def tree_reduce(
    cluster: MPCCluster,
    extract: Callable[[Any], Any],
    combine: Callable[[Any, Any], Any],
    zero: Any,
    *,
    tag: str = "reduce",
    label: str = "reduce",
) -> tuple[Any, int]:
    """Fold ``extract`` over all records up a tree to machine 0.

    Returns ``(total, rounds_used)``.  Partial aggregates travel as
    ``(tag, value)`` records; original records stay in place.  Object
    substrate only — columnar callers compute per-machine partials
    vectorized and fold them with :func:`tree_reduce_vector` (same
    tree, same word charges).
    """
    if isinstance(cluster, ColumnarCluster):
        raise TypeError(
            "columnar clusters reduce with tree_reduce_vector(cluster, partials)"
        )
    words = sizeof_words(zero) + 1
    f = fan_out(cluster, words)
    n = cluster.n_machines
    depth = tree_depth(n, f)
    # Each machine folds its local records once, host-side bookkeeping
    # tracks which machines still hold partials.
    level_of = {mid: _tree_level(mid, f) for mid in range(n)}
    max_level = max(level_of.values())
    rounds = 0

    def parent(mid: int) -> int:
        return (mid - 1) // f

    # Local fold: attach partials.
    for m in cluster.machines:
        acc = zero
        for rec in m.storage:
            if isinstance(rec, tuple) and len(rec) == 2 and rec[0] == tag:
                continue
            val = extract(rec)
            if val is not None:
                acc = combine(acc, val)
        m.store((tag, acc))

    current_level = max_level
    while current_level > 0:
        lvl = current_level

        def mapper(mid: int, records: list[Any]):
            for rec in records:
                if (
                    isinstance(rec, tuple)
                    and len(rec) == 2
                    and rec[0] == tag
                    and level_of[mid] == lvl
                ):
                    yield parent(mid), rec
                else:
                    yield mid, rec

        cluster.exchange(mapper, label=f"{label}/level")
        rounds += 1
        # Parents merge partials locally (free within-round compute).
        for m in cluster.machines:
            partials = [r for r in m.storage if isinstance(r, tuple) and len(r) == 2 and r[0] == tag]
            if len(partials) > 1:
                acc = zero
                keep = [r for r in m.storage if not (isinstance(r, tuple) and len(r) == 2 and r[0] == tag)]
                for _, val in partials:
                    acc = combine(acc, val)
                m.clear()
                for r in keep:
                    m.store(r)
                m.store((tag, acc))
        current_level -= 1

    # Read the root's partial and strip reduce records everywhere.
    total = zero
    for m in cluster.machines:
        keep = []
        for rec in m.storage:
            if isinstance(rec, tuple) and len(rec) == 2 and rec[0] == tag:
                if m.machine_id == 0:
                    total = combine(total, rec[1])
            else:
                keep.append(rec)
        m.clear()
        for rec in keep:
            m.store(rec)
    return total, max(rounds, 0)


def tree_reduce_vector(
    cluster: ColumnarCluster,
    partials: np.ndarray,
    *,
    tag: str = "reduce",
    label: str = "reduce",
) -> tuple[np.ndarray, int]:
    """Columnar tree reduce: elementwise-sum an ``(M, k)`` partial
    matrix (one row per machine, computed vectorized by the caller) up
    the same implicit tree :func:`tree_reduce` walks.

    Returns ``(total_vector, rounds_used)``.  Each partial travels as
    a ragged ``k``-word payload plus the tag word — exactly the
    ``sizeof_words((tag, k_tuple))`` the object substrate charges — and
    parents fold partials in (own, children ascending) order, the
    object substrate's storage-scan order, so sums are bit-identical.
    """
    P = np.atleast_2d(np.asarray(partials, dtype=np.float64))
    M, k = P.shape
    if M != cluster.n_machines:
        raise ValueError(f"expected {cluster.n_machines} partial rows, got {M}")
    words = k + 1
    f = fan_out(cluster, words)
    level_of = np.array([_tree_level(mid, f) for mid in range(M)], dtype=np.int64)
    max_level = int(level_of.max()) if M else 0

    def partial_batch(mat: np.ndarray) -> ColumnBatch:
        offsets = np.arange(mat.shape[0] + 1, dtype=np.int64) * k
        return ColumnBatch(tag, {}, offsets, mat.reshape(-1).copy())

    # Local fold: every machine stores its partial (storage +k+1 words).
    cluster.append_rows(partial_batch(P), np.arange(M, dtype=np.int64))

    rounds = 0
    for lvl in range(max_level, 0, -1):
        batch, home = cluster.rows(tag)
        dst = home.copy()
        moving = level_of[home] == lvl
        dst[moving] = (home[moving] - 1) // f
        ships = cluster.keep_all_shipments(exclude=(tag,))
        ships.append(Shipment(batch, home, dst))
        cluster.exchange_columnar(ships, label=f"{label}/level")
        rounds += 1
        # Parents merge partials locally (free within-round compute).
        batch, home = cluster.rows(tag)
        if batch.n_records > M or len(np.unique(home)) < batch.n_records:
            mat = batch.payload.reshape(-1, k)
            merged_rows: list[np.ndarray] = []
            merged_home: list[int] = []
            i = 0
            n_rows = batch.n_records
            while i < n_rows:
                j = i
                while j < n_rows and home[j] == home[i]:
                    j += 1
                # Sequential fold in row order = (own, children asc).
                acc = mat[i]
                for r in range(i + 1, j):
                    acc = acc + mat[r]
                merged_rows.append(acc)
                merged_home.append(int(home[i]))
                i = j
            cluster.replace_kind(
                tag,
                partial_batch(np.asarray(merged_rows)),
                np.asarray(merged_home, dtype=np.int64),
            )

    batch, home = cluster.rows(tag)
    total = np.zeros(k, dtype=np.float64)
    for i in np.flatnonzero(home == 0):
        total = total + batch.payload.reshape(-1, k)[i]
    cluster.drop_kind(tag)
    return total, max(rounds, 0)


def _tree_level(mid: int, f: int) -> int:
    level = 0
    while mid > 0:
        mid = (mid - 1) // f
        level += 1
    return level


# ----------------------------------------------------------------------
# sample_sort
# ----------------------------------------------------------------------
def sample_sort(
    cluster,
    key_fn: Union[Callable[[Any], Any], str, None] = None,
    *,
    oversample: int = 8,
    seed: int = 0,
    label: str = "sort",
) -> int:
    """Globally sort records by key; machine ``i`` ends with the ``i``-th
    contiguous key range, locally sorted.  Returns rounds used.

    Three exchange rounds (sample collection, routing, settle) plus one
    splitter broadcast.  Splitters are chosen from per-machine samples
    gathered at machine 0 — the classical TeraSort scheme.  On a
    columnar cluster ``key_fn`` is a column name (or ``None`` for the
    resident batch's declared key); samples are drawn from the same
    shared RNG in the same machine order, so the splitters — and hence
    the ledger — match the object substrate exactly.
    """
    if isinstance(cluster, ColumnarCluster):
        return _sample_sort_columnar(
            cluster, key_fn, oversample=oversample, seed=seed, label=label
        )
    if not callable(key_fn):
        raise TypeError("object-substrate sample_sort needs a per-record key_fn")
    n = cluster.n_machines
    rng = random.Random(seed)
    sample_tag = "__sort_sample__"

    # Round 1: every machine sends a key sample to machine 0.
    def sample_mapper(mid: int, records: list[Any]):
        keys = [key_fn(rec) for rec in records]
        k = min(len(keys), max(1, oversample))
        sampled = rng.sample(keys, k) if keys else []
        for key in sampled:
            yield 0, (sample_tag, key)
        for rec in records:
            yield mid, rec

    cluster.exchange(sample_mapper, label=f"{label}/sample")

    # Machine 0 computes splitters locally.
    samples = sorted(
        rec[1]
        for rec in cluster.machines[0].storage
        if isinstance(rec, tuple) and len(rec) == 2 and rec[0] == sample_tag
    )
    # Strip sample records.
    keep = [
        rec
        for rec in cluster.machines[0].storage
        if not (isinstance(rec, tuple) and len(rec) == 2 and rec[0] == sample_tag)
    ]
    cluster.machines[0].clear()
    for rec in keep:
        cluster.machines[0].store(rec)

    splitters = _pick_splitters(samples, n)

    bcast_rounds = tree_broadcast(cluster, tuple(splitters), tag="__splitters__", label=f"{label}/splitters")

    # Round 3: route records to their bucket.
    def route_mapper(mid: int, records: list[Any]):
        for rec in records:
            if isinstance(rec, tuple) and len(rec) == 2 and rec[0] == "__splitters__":
                continue  # drop control records
            bucket = bisect.bisect_right(splitters, key_fn(rec))
            yield min(bucket, n - 1), rec

    cluster.exchange(route_mapper, label=f"{label}/route")

    # Local sort (free compute).
    for m in cluster.machines:
        m.storage.sort(key=key_fn)
    # sample round + splitter broadcast + routing round
    return 2 + bcast_rounds


def _pick_splitters(samples: list, n_machines: int) -> list:
    if not samples:
        return []
    step = max(1, len(samples) // n_machines)
    return samples[step::step][: n_machines - 1]


def _sample_sort_columnar(
    cluster: ColumnarCluster,
    key_col: Optional[str],
    *,
    oversample: int,
    seed: int,
    label: str,
) -> int:
    if key_col is not None and not isinstance(key_col, str):
        raise TypeError(
            "columnar sample_sort takes a column name (or None for the "
            "resident batch's declared key), not a per-record callable"
        )
    data_kinds = [k for k in cluster.kinds() if not k.startswith("__")]
    if len(data_kinds) != 1:
        raise ValueError(
            f"columnar sample_sort expects exactly one resident kind, "
            f"found {data_kinds}"
        )
    kind = data_kinds[0]
    batch, home = cluster.rows(kind)
    col = key_col if key_col is not None else batch.key
    if col is None:
        raise ValueError(f"kind {kind!r} declares no key column and none was passed")
    n = cluster.n_machines
    rng = random.Random(seed)
    sample_tag = "__sort_sample__"

    # Round 1: per-machine samples to machine 0, drawn from the shared
    # RNG in machine order (identical stream to the object substrate).
    keys = batch.cols[col]
    sampled_keys: list = []
    sample_src: list[int] = []
    for mid in range(n):
        kvals = keys[home == mid].tolist()
        k = min(len(kvals), max(1, oversample))
        sampled = rng.sample(kvals, k) if kvals else []
        sampled_keys.extend(sampled)
        sample_src.extend([mid] * len(sampled))
    ships = cluster.keep_all_shipments()
    if sampled_keys:
        ships.append(
            Shipment(
                ColumnBatch(sample_tag, {"key": np.asarray(sampled_keys)}),
                np.asarray(sample_src, dtype=np.int64),
                np.zeros(len(sampled_keys), dtype=np.int64),
            )
        )
    cluster.exchange_columnar(ships, label=f"{label}/sample")

    # Machine 0 computes splitters locally; sample records are stripped.
    samples = sorted(cluster.rows(sample_tag)[0].cols["key"].tolist()) if (
        cluster.has_kind(sample_tag)
    ) else []
    cluster.drop_kind(sample_tag)
    splitters = _pick_splitters(samples, n)

    bcast_rounds = tree_broadcast(
        cluster, tuple(splitters), tag="__splitters__", label=f"{label}/splitters"
    )

    # Round 3: route records to their bucket; control records dropped.
    batch, home = cluster.rows(kind)
    split_arr = np.asarray(splitters, dtype=np.float64)
    buckets = np.searchsorted(split_arr, batch.cols[col], side="right")
    dst = np.minimum(buckets, n - 1).astype(np.int64)
    cluster.exchange_columnar(
        [Shipment(batch, home, dst)], label=f"{label}/route"
    )

    # Local sort (free compute): stable by key within each machine.
    batch, home = cluster.rows(kind)
    if batch.n_records:
        order = np.lexsort(
            (np.arange(batch.n_records), batch.cols[col], home)
        )
        cluster.replace_kind(kind, batch.take(order), home[order])
    return 2 + bcast_rounds
