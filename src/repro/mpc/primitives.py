"""Standard MPC primitives, with explicit round costs.

The paper's §5 leans on "standard primitives such as graph
exponentiation and sorting, which are by now standard in the MPC
literature".  This module implements them on the accounted cluster:

* :func:`route_by_key` — hash-partition records; **1 round**.
* :func:`tree_broadcast` — send a small payload to every machine along
  a fan-out-``f`` tree; **⌈log_f M⌉ rounds** (``f`` derived from the
  word budget).
* :func:`tree_reduce` — aggregate per-machine values to machine 0 up
  the same tree; **⌈log_f M⌉ rounds**.
* :func:`sample_sort` — TeraSort-style splitter sort; **3 rounds +
  one broadcast**.

Every primitive runs through :meth:`MPCCluster.exchange`, so space and
traffic budgets are enforced and round counts accumulate in the
cluster's ledger — the numbers E5 compares against the theory.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Sequence

import numpy as np

from repro.kernels import scatter_add
from repro.mpc.cluster import MPCCluster
from repro.mpc.machine import sizeof_words

__all__ = [
    "fan_out",
    "tree_depth",
    "route_by_key",
    "tree_broadcast",
    "tree_reduce",
    "sample_sort",
]


def fan_out(cluster: MPCCluster, payload_words: int) -> int:
    """Largest tree fan-out the word budget allows: a machine relaying
    a ``payload_words`` message to ``f`` children sends ``f·payload``
    words, which must fit in ``S``."""
    if payload_words < 1:
        raise ValueError("payload_words must be >= 1")
    return max(2, cluster.words_per_machine // payload_words)


def tree_depth(n_machines: int, f: int) -> int:
    """Rounds for a fan-out-``f`` tree over ``n_machines`` machines."""
    if n_machines <= 1:
        return 1
    return max(1, math.ceil(math.log(n_machines) / math.log(f)))


def route_by_key(
    cluster: MPCCluster,
    key_fn: Callable[[Any], int],
    *,
    label: str = "route_by_key",
    return_histogram: bool = False,
) -> np.ndarray | None:
    """Move every record to machine ``key mod M`` (1 round).

    After this round all records sharing a key are co-located, which is
    the precondition for any per-key local computation (the MPC
    group-by).  With ``return_histogram=True`` the per-destination
    record histogram is additionally computed (via the shared
    :func:`repro.kernels.scatter_add` primitive) so callers can track
    routing skew — the MPC driver records its peak in the ledger.
    """
    n = cluster.n_machines
    destinations: list[int] | None = [] if return_histogram else None

    def mapper(mid: int, records: list[Any]):
        for rec in records:
            dst = int(key_fn(rec)) % n
            if destinations is not None:
                destinations.append(dst)
            yield dst, rec

    cluster.exchange(mapper, label=label)
    if destinations is None:
        return None
    return scatter_add(
        np.asarray(destinations, dtype=np.int64), minlength=n
    ).astype(np.int64)


def tree_broadcast(
    cluster: MPCCluster,
    payload: Any,
    *,
    tag: str = "bcast",
    label: str = "broadcast",
) -> int:
    """Deliver ``(tag, payload)`` to every machine; returns rounds used.

    Machine 0 is the root.  Children of machine ``i`` at fan-out ``f``
    are ``i·f+1 .. i·f+f`` — the standard implicit tree.
    """
    words = sizeof_words(payload) + 1
    f = fan_out(cluster, words)
    n = cluster.n_machines
    rounds = 0
    # Seed the payload at the root without charging a round (the root
    # computes it locally).
    cluster.machines[0].store((tag, payload))

    # Level-by-level push until every machine holds the tagged record.
    have = {0}
    while len(have) < n:
        frontier = set(have)

        def mapper(mid: int, records: list[Any]):
            for rec in records:
                if isinstance(rec, tuple) and len(rec) == 2 and rec[0] == tag:
                    if mid in frontier:
                        for c in range(mid * f + 1, min(n, mid * f + f + 1)):
                            if c not in frontier:
                                yield c, rec
                yield mid, rec  # everything persists in place

        cluster.exchange(mapper, label=f"{label}/level")
        rounds += 1
        new_have = set(frontier)
        for parent in frontier:
            for c in range(parent * f + 1, min(n, parent * f + f + 1)):
                new_have.add(c)
        have = new_have
    return max(rounds, 1) if n > 1 else 0


def tree_reduce(
    cluster: MPCCluster,
    extract: Callable[[Any], Any],
    combine: Callable[[Any, Any], Any],
    zero: Any,
    *,
    tag: str = "reduce",
    label: str = "reduce",
) -> tuple[Any, int]:
    """Fold ``extract`` over all records up a tree to machine 0.

    Returns ``(total, rounds_used)``.  Partial aggregates travel as
    ``(tag, value)`` records; original records stay in place.
    """
    words = sizeof_words(zero) + 1
    f = fan_out(cluster, words)
    n = cluster.n_machines
    depth = tree_depth(n, f)
    # Each machine folds its local records once, host-side bookkeeping
    # tracks which machines still hold partials.
    level_of = {mid: _tree_level(mid, f) for mid in range(n)}
    max_level = max(level_of.values())
    rounds = 0

    def parent(mid: int) -> int:
        return (mid - 1) // f

    # Local fold: attach partials.
    for m in cluster.machines:
        acc = zero
        for rec in m.storage:
            if isinstance(rec, tuple) and len(rec) == 2 and rec[0] == tag:
                continue
            val = extract(rec)
            if val is not None:
                acc = combine(acc, val)
        m.store((tag, acc))

    current_level = max_level
    while current_level > 0:
        lvl = current_level

        def mapper(mid: int, records: list[Any]):
            for rec in records:
                if (
                    isinstance(rec, tuple)
                    and len(rec) == 2
                    and rec[0] == tag
                    and level_of[mid] == lvl
                ):
                    yield parent(mid), rec
                else:
                    yield mid, rec

        cluster.exchange(mapper, label=f"{label}/level")
        rounds += 1
        # Parents merge partials locally (free within-round compute).
        for m in cluster.machines:
            partials = [r for r in m.storage if isinstance(r, tuple) and len(r) == 2 and r[0] == tag]
            if len(partials) > 1:
                acc = zero
                keep = [r for r in m.storage if not (isinstance(r, tuple) and len(r) == 2 and r[0] == tag)]
                for _, val in partials:
                    acc = combine(acc, val)
                m.clear()
                for r in keep:
                    m.store(r)
                m.store((tag, acc))
        current_level -= 1

    # Read the root's partial and strip reduce records everywhere.
    total = zero
    for m in cluster.machines:
        keep = []
        for rec in m.storage:
            if isinstance(rec, tuple) and len(rec) == 2 and rec[0] == tag:
                if m.machine_id == 0:
                    total = combine(total, rec[1])
            else:
                keep.append(rec)
        m.clear()
        for rec in keep:
            m.store(rec)
    return total, max(rounds, 0)


def _tree_level(mid: int, f: int) -> int:
    level = 0
    while mid > 0:
        mid = (mid - 1) // f
        level += 1
    return level


def sample_sort(
    cluster: MPCCluster,
    key_fn: Callable[[Any], Any],
    *,
    oversample: int = 8,
    seed: int = 0,
    label: str = "sort",
) -> int:
    """Globally sort records by key; machine ``i`` ends with the ``i``-th
    contiguous key range, locally sorted.  Returns rounds used.

    Three exchange rounds (sample collection, routing, settle) plus one
    splitter broadcast.  Splitters are chosen from per-machine samples
    gathered at machine 0 — the classical TeraSort scheme.
    """
    import random

    n = cluster.n_machines
    rng = random.Random(seed)
    sample_tag = "__sort_sample__"

    # Round 1: every machine sends a key sample to machine 0.
    def sample_mapper(mid: int, records: list[Any]):
        keys = [key_fn(rec) for rec in records]
        k = min(len(keys), max(1, oversample))
        sampled = rng.sample(keys, k) if keys else []
        for key in sampled:
            yield 0, (sample_tag, key)
        for rec in records:
            yield mid, rec

    cluster.exchange(sample_mapper, label=f"{label}/sample")

    # Machine 0 computes splitters locally.
    samples = sorted(
        rec[1]
        for rec in cluster.machines[0].storage
        if isinstance(rec, tuple) and len(rec) == 2 and rec[0] == sample_tag
    )
    # Strip sample records.
    keep = [
        rec
        for rec in cluster.machines[0].storage
        if not (isinstance(rec, tuple) and len(rec) == 2 and rec[0] == sample_tag)
    ]
    cluster.machines[0].clear()
    for rec in keep:
        cluster.machines[0].store(rec)

    if samples:
        step = max(1, len(samples) // n)
        splitters = samples[step::step][: n - 1]
    else:
        splitters = []

    bcast_rounds = tree_broadcast(cluster, tuple(splitters), tag="__splitters__", label=f"{label}/splitters")

    # Round 3: route records to their bucket.
    import bisect

    def route_mapper(mid: int, records: list[Any]):
        for rec in records:
            if isinstance(rec, tuple) and len(rec) == 2 and rec[0] == "__splitters__":
                continue  # drop control records
            bucket = bisect.bisect_right(splitters, key_fn(rec))
            yield min(bucket, n - 1), rec

    cluster.exchange(route_mapper, label=f"{label}/route")

    # Local sort (free compute).
    for m in cluster.machines:
        m.storage.sort(key=key_fn)
    # sample round + splitter broadcast + routing round
    return 2 + bcast_rounds
