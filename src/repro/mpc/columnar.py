"""The columnar MPC cluster: vectorized exchange with dtype accounting.

Functionally this is :class:`repro.mpc.cluster.MPCCluster` with the
per-record Python substrate replaced by column batches (DESIGN.md §7):
machine storage is a set of cluster-global :class:`ColumnBatch` arrays
plus a ``home`` (machine id) column, exchanges are expressed as
:class:`Shipment` lists whose traffic is priced with ``np.bincount``
over dtype-derived word costs, and delivery is a stable partition by
destination.  The model-level quantities — rounds, per-machine
sent/received/stored words, budget checks, violation strings — are
computed identically to the object substrate, so the two produce
bit-identical :class:`RoundLog` ledgers for the same communication
pattern (asserted by the parity suite).

Row-order contract (what makes *numeric* parity exact, not just
accounting parity): every kind's rows are kept machine-major, and
within a machine in arrival order.  An exchange delivers each kind
stable-sorted by destination, so a machine's new rows appear in
``(source machine asc, emission order)`` — exactly the order the
object substrate's staged delivery appends records.  Sequential NumPy
accumulators (``bincount``/``reduceat``) over rows in this order
therefore reproduce the object substrate's Python-loop folds
bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.mpc.cluster import (
    RoundLog,
    storage_violation_msg,
    traffic_violation_msg,
)
from repro.mpc.columns import ColumnBatch
from repro.mpc.machine import SpaceViolation
from repro.utils.validation import check_positive_int

__all__ = ["Shipment", "ColumnarCluster", "ColumnarMachineView"]


@dataclass
class Shipment:
    """Rows of one kind moving in one round: ``src[i] → dst[i]``.

    Rows with ``src == dst`` persist in place and move no data (the
    object substrate's self-emission); all others are priced against
    both endpoints' per-round word budgets.
    """

    batch: ColumnBatch
    src: np.ndarray
    dst: np.ndarray

    def __post_init__(self) -> None:
        n = self.batch.n_records
        if self.src.shape[0] != n or self.dst.shape[0] != n:
            raise ValueError(
                f"shipment of kind {self.batch.kind!r}: {n} records but "
                f"{self.src.shape[0]} sources / {self.dst.shape[0]} destinations"
            )


class ColumnarMachineView:
    """Read-only per-machine counters (API parity with :class:`Machine`)."""

    __slots__ = ("_cluster", "machine_id")

    def __init__(self, cluster: "ColumnarCluster", machine_id: int):
        self._cluster = cluster
        self.machine_id = machine_id

    @property
    def capacity_words(self) -> int:
        return self._cluster.words_per_machine

    @property
    def stored_words(self) -> int:
        return int(self._cluster._stored[self.machine_id])

    @property
    def peak_stored_words(self) -> int:
        return int(self._cluster._peak_stored[self.machine_id])

    @property
    def sent_words_this_round(self) -> int:
        return int(self._cluster._sent[self.machine_id])

    @property
    def received_words_this_round(self) -> int:
        return int(self._cluster._recv[self.machine_id])

    @property
    def peak_traffic_words(self) -> int:
        return int(self._cluster._peak_traffic[self.machine_id])


class ColumnarCluster:
    """Synchronous machines over column batches, word-accounted.

    The public accounting surface mirrors :class:`MPCCluster`
    (``rounds_executed``, ``round_log``, ``violations``, per-machine
    counters via :attr:`machines`); the data surface is columnar:
    :meth:`load_batches`, :meth:`exchange_columnar`, and the store
    accessors below.
    """

    def __init__(
        self,
        n_machines: int,
        words_per_machine: int,
        *,
        strict: bool = True,
    ):
        n_machines = check_positive_int(n_machines, "n_machines")
        words_per_machine = check_positive_int(words_per_machine, "words_per_machine")
        self._n_machines = n_machines
        self.words_per_machine = words_per_machine
        self.strict = strict
        self.rounds_executed = 0
        self.round_log: list[RoundLog] = []
        self.violations: list[str] = []
        self._store: dict[str, tuple[ColumnBatch, np.ndarray]] = {}
        self._stored = np.zeros(n_machines, dtype=np.int64)
        self._peak_stored = np.zeros(n_machines, dtype=np.int64)
        self._sent = np.zeros(n_machines, dtype=np.int64)
        self._recv = np.zeros(n_machines, dtype=np.int64)
        self._peak_traffic = np.zeros(n_machines, dtype=np.int64)

    # ------------------------------------------------------------------
    @property
    def n_machines(self) -> int:
        return self._n_machines

    @property
    def machines(self) -> list[ColumnarMachineView]:
        return [ColumnarMachineView(self, i) for i in range(self._n_machines)]

    def total_stored_words(self) -> int:
        return int(self._stored.sum())

    def peak_global_words(self) -> int:
        return int(self._peak_stored.sum())

    def peak_machine_words(self) -> int:
        """Worst per-machine storage high-water mark (words)."""
        return int(self._peak_stored.max())

    # -- store accessors -----------------------------------------------
    def kinds(self) -> list[str]:
        return list(self._store)

    def has_kind(self, kind: str) -> bool:
        return kind in self._store

    def rows(self, kind: str) -> tuple[ColumnBatch, np.ndarray]:
        """The kind's cluster-global ``(batch, home)`` arrays."""
        return self._store[kind]

    def store_items(self) -> list[tuple[str, tuple[ColumnBatch, np.ndarray]]]:
        return list(self._store.items())

    def keep_all_shipments(self, *, exclude: Sequence[str] = ()) -> list[Shipment]:
        """Self-shipments persisting every resident kind (minus ``exclude``)."""
        return [
            Shipment(batch, home, home)
            for kind, (batch, home) in self._store.items()
            if kind not in exclude
        ]

    # ------------------------------------------------------------------
    def _sorted_by_home(
        self, batch: ColumnBatch, home: np.ndarray
    ) -> tuple[ColumnBatch, np.ndarray]:
        if batch.n_records <= 1 or bool(np.all(home[:-1] <= home[1:])):
            return batch, home
        order = np.argsort(home, kind="stable")
        return batch.take(order), home[order]

    def _recount_storage(self) -> None:
        stored = np.zeros(self._n_machines, dtype=np.int64)
        for batch, home in self._store.values():
            if batch.n_records:
                stored += np.bincount(
                    home, weights=batch.words_per_record(), minlength=self._n_machines
                ).astype(np.int64)
        self._stored = stored
        np.maximum(self._peak_stored, stored, out=self._peak_stored)

    def load_batches(
        self,
        batches: Sequence[ColumnBatch],
        *,
        home: Optional[Sequence[np.ndarray]] = None,
    ) -> None:
        """Place input batches (costs no rounds; mirrors ``load``).

        ``home=None`` round-robins the *concatenated* record sequence
        (``global index % M``), exactly like the object substrate's
        default placement over a flat record list; otherwise ``home``
        provides one machine-id array per batch.
        """
        self._store = {}
        self._sent[:] = 0
        self._recv[:] = 0
        offset = 0
        for i, batch in enumerate(batches):
            n = batch.n_records
            if home is None:
                h = (offset + np.arange(n, dtype=np.int64)) % self._n_machines
            else:
                h = np.asarray(home[i], dtype=np.int64) % self._n_machines
            offset += n
            self._append_kind(batch, h)
        self._recount_storage()
        self._check_storage()

    def append_rows(self, batch: ColumnBatch, home: np.ndarray) -> None:
        """Host-side store of extra rows (mirrors ``Machine.store``;
        no round, no budget check — checks run at the next exchange)."""
        self._append_kind(batch, np.asarray(home, dtype=np.int64))
        self._recount_storage()

    def _append_kind(self, batch: ColumnBatch, home: np.ndarray) -> None:
        batch, home = self._sorted_by_home(batch, home)
        if batch.kind in self._store:
            old, old_home = self._store[batch.kind]
            merged = ColumnBatch.concat([old, batch])
            merged_home = np.concatenate([old_home, home])
            # Stable: a machine's existing rows stay ahead of appends.
            self._store[batch.kind] = self._sorted_by_home(merged, merged_home)
        else:
            self._store[batch.kind] = (batch, home)

    def replace_kind(
        self, kind: str, batch: Optional[ColumnBatch], home: Optional[np.ndarray]
    ) -> None:
        """Host-side rewrite of one kind (mirrors clear-and-restore
        local merges; ``batch=None`` drops the kind)."""
        self._store.pop(kind, None)
        if batch is not None and batch.n_records:
            self._store[kind] = self._sorted_by_home(
                batch, np.asarray(home, dtype=np.int64)
            )
        self._recount_storage()

    def drop_kind(self, kind: str) -> None:
        self.replace_kind(kind, None, None)

    # ------------------------------------------------------------------
    def exchange_columnar(
        self, shipments: Iterable[Shipment], *, label: str = "round"
    ) -> None:
        """Execute one synchronous round from an explicit shipment list.

        Storage is *replaced* by the delivered rows (map semantics —
        kinds not re-shipped are dropped, persistence is a self-
        shipment, see :meth:`keep_all_shipments`), traffic is priced
        per machine with ``bincount`` over word costs, and the same
        budget checks as the object substrate run afterwards.
        """
        M = self._n_machines
        self._sent[:] = 0
        self._recv[:] = 0
        sent = np.zeros(M, dtype=np.float64)
        recv = np.zeros(M, dtype=np.float64)
        by_kind: dict[str, list[tuple[ColumnBatch, np.ndarray]]] = {}
        for sh in shipments:
            # Zero-record shipments still register their kind (an empty
            # kind persists as an empty batch, like an empty mapper).
            dst = np.asarray(sh.dst, dtype=np.int64)
            src = np.asarray(sh.src, dtype=np.int64)
            if dst.size and (dst.min() < 0 or dst.max() >= M):
                bad = int(dst[(dst < 0) | (dst >= M)][0])
                raise ValueError(f"destination machine {bad} out of range")
            words = sh.batch.words_per_record()
            cross = src != dst
            if np.any(cross):
                sent += np.bincount(src[cross], weights=words[cross], minlength=M)
                recv += np.bincount(dst[cross], weights=words[cross], minlength=M)
            by_kind.setdefault(sh.batch.kind, []).append((sh.batch, dst))
        self._store = {}
        for kind, parts in by_kind.items():
            batch = ColumnBatch.concat([b for b, _ in parts])
            dst = np.concatenate([d for _, d in parts])
            self._store[kind] = self._sorted_by_home(batch, dst)
        self._sent = sent.astype(np.int64)
        self._recv = recv.astype(np.int64)
        np.maximum(self._peak_traffic, self._sent, out=self._peak_traffic)
        np.maximum(self._peak_traffic, self._recv, out=self._peak_traffic)
        self._recount_storage()
        self.rounds_executed += 1
        self.round_log.append(
            RoundLog(
                round_index=self.rounds_executed,
                label=label,
                total_words_moved=int(self._sent.sum()),
                max_sent=int(self._sent.max()),
                max_received=int(self._recv.max()),
            )
        )
        self._check_traffic()
        self._check_storage()

    # ------------------------------------------------------------------
    def _check_storage(self) -> None:
        cap = self.words_per_machine
        for mid in np.flatnonzero(self._stored > cap):
            problems = [storage_violation_msg(int(mid), int(self._stored[mid]), cap)]
            self.violations.extend(problems)
            if self.strict:
                raise SpaceViolation("; ".join(problems))

    def _check_traffic(self) -> None:
        cap = self.words_per_machine
        for mid in np.flatnonzero(self._sent > cap):
            problems = [traffic_violation_msg(int(mid), int(self._sent[mid]), cap)]
            self.violations.extend(problems)
            if self.strict:
                raise SpaceViolation("; ".join(problems))
