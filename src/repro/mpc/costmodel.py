"""Closed-form round/space ledger for the full MPC algorithm.

Theorem 10's accounting, with every constant explicit:

* τ LOCAL rounds split into ``⌈τ/B⌉`` phases;
* each phase pays ``2·⌈log₂ B⌉`` exchange rounds of graph
  exponentiation (two per doubling join, matching our implementation),
  plus a constant number of rounds for level-group construction,
  sampling, state write-back, and the O(1)-round termination test;
* the λ-oblivious driver repeats the whole schedule over the guesses
  ``λ_i = 2^(4^i)``; because ``√log λ_i`` doubles per guess, the total
  is a constant factor over the known-λ cost (§3.2.2) — the model
  exposes both so E6 can measure that factor.

Space: every vertex stores its sampled ball of volume ``d^B`` with
``d = O((1+ε)^{2B} log² n / ε⁵)``; with eq. (4)'s B this is ≤ λ·polylog,
giving the ``Õ(λn + m)`` global bound the model reports.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core import params
from repro.utils.validation import check_fraction, check_positive_int

__all__ = ["PhaseCost", "MPCCostModel"]


@dataclass(frozen=True)
class PhaseCost:
    """Rounds paid by one phase of B compressed LOCAL rounds."""

    exponentiation_rounds: int
    grouping_rounds: int
    sampling_rounds: int
    writeback_rounds: int
    termination_test_rounds: int

    @property
    def total(self) -> int:
        return (
            self.exponentiation_rounds
            + self.grouping_rounds
            + self.sampling_rounds
            + self.writeback_rounds
            + self.termination_test_rounds
        )


@dataclass(frozen=True)
class MPCCostModel:
    """Round/space predictions for an (n, λ, ε, α) configuration."""

    n: int
    lam: int
    epsilon: float
    alpha: float
    grouping_rounds: int = 1
    sampling_rounds: int = 1
    writeback_rounds: int = 1
    termination_test_rounds: int = 2

    def __post_init__(self) -> None:
        check_positive_int(self.n, "n")
        check_positive_int(self.lam, "lam")
        check_fraction(self.epsilon, "epsilon")
        if not (0.0 < self.alpha < 1.0):
            raise ValueError(f"alpha must lie in (0,1), got {self.alpha}")

    # -- schedule pieces -------------------------------------------------
    def tau(self) -> int:
        return params.tau_two_approx(self.lam, self.epsilon)

    def block(self) -> int:
        return params.block_length(self.n, self.lam, self.epsilon, self.alpha)

    def phases(self) -> int:
        return math.ceil(self.tau() / self.block())

    def phase_cost(self) -> PhaseCost:
        # Exponentiation reaches radius 2B (B dynamics rounds = radius
        # 2B in the bipartite graph; see repro.core.ball_replay): one
        # doubling join = 2 exchange rounds, ⌈log₂(2B)⌉ joins.
        b = self.block()
        exp_rounds = 2 * max(1, math.ceil(math.log2(2 * b)))
        return PhaseCost(
            exponentiation_rounds=exp_rounds,
            grouping_rounds=self.grouping_rounds,
            sampling_rounds=self.sampling_rounds,
            writeback_rounds=self.writeback_rounds,
            termination_test_rounds=self.termination_test_rounds,
        )

    # -- totals ----------------------------------------------------------
    def rounds_known_lambda(self) -> int:
        """Total MPC rounds when λ is known upfront."""
        return self.phases() * self.phase_cost().total

    def rounds_with_guessing(self) -> int:
        """Total rounds for the λ-oblivious driver: sum the schedule
        over guesses λ_i = 2^(4^i) up to the first ≥ λ."""
        total = 0
        for guess in params.lambda_guess_schedule(self.lam):
            model = MPCCostModel(
                n=self.n, lam=guess, epsilon=self.epsilon, alpha=self.alpha,
                grouping_rounds=self.grouping_rounds,
                sampling_rounds=self.sampling_rounds,
                writeback_rounds=self.writeback_rounds,
                termination_test_rounds=self.termination_test_rounds,
            )
            total += model.rounds_known_lambda()
        return total

    def guessing_overhead(self) -> float:
        """Measured-vs-known ratio — the §3.2.2 'constant factor'."""
        known = self.rounds_known_lambda()
        return self.rounds_with_guessing() / known if known else float("inf")

    def baseline_rounds_azm18(self) -> int:
        """The prior art: 1 MPC round per LOCAL round for
        τ = O(log(n)/ε²) rounds (§1.2.1)."""
        return params.tau_azm18(self.n, self.epsilon)

    # -- space -----------------------------------------------------------
    def sampled_degree(self) -> int:
        """Per-vertex sampled degree bound d = O((1+ε)^{2B} log²n ε⁻⁵)
        (§5, 'the total degree per vertex is at most d')."""
        b = self.block()
        return int(
            math.ceil(
                20.0
                * (1.0 + self.epsilon) ** (2 * b)
                * math.log(max(2, self.n)) ** 2
                * self.epsilon**-5
            )
        )

    def ball_volume_bound(self) -> float:
        """d^B — the per-vertex ball size the machine must hold."""
        return float(self.sampled_degree()) ** self.block()

    def words_per_machine(self) -> int:
        return max(16, int(self.n**self.alpha))

    def predicted_global_words(self, m_edges: int) -> float:
        """Õ(λn + m): n balls of volume ≤ min(ball bound, λ·polylog)."""
        polylog = math.log(max(2, self.n)) ** 2
        per_vertex = min(self.ball_volume_bound(), self.lam * polylog)
        return self.n * per_vertex + m_edges

    def budgeted_ball_words(self, sample_budget: int, max_degree: int) -> int:
        """Worst-case words of one radius-2B ball at a capped per-round
        sample budget t: union-graph degree ≤ min(B·t·2, max_degree)
        per side (t samples per round per vertex, both directions), so
        |edges| ≤ d_union^B and the record costs ``2 + 2·|edges|``
        words.  This is the closed-form analogue of the adaptive
        controller's *empirical* power-law fit (DESIGN.md §13): the
        controller exists precisely because this bound is loose on
        non-worst-case instances — but it gives the a-priori budget a
        fixed-policy run would have to assume."""
        check_positive_int(sample_budget, "sample_budget")
        check_positive_int(max_degree, "max_degree")
        b = self.block()
        d_union = min(2 * b * sample_budget, max_degree)
        return 2 + 2 * int(min(float(d_union) ** b, 2.0**62))
