"""The MPC cluster simulator.

An :class:`MPCCluster` is a set of :class:`Machine` objects advancing
in synchronous rounds.  One round = every machine maps over its local
records and emits ``(destination_machine, record)`` pairs; the cluster
prices the traffic, enforces the ``S`` words sent/received per machine
per round constraint, delivers, and enforces storage budgets (§2.3).

The substitution argument (DESIGN.md §4): round counts and space usage
are *model-level* quantities, so a simulator that enforces exactly the
model's constraints measures exactly the quantities Theorem 3 bounds.
Machines here are Python lists, but nothing about the accounting
depends on that — this module is the *object* reference substrate;
:mod:`repro.mpc.columnar` is the vectorized column-batch substrate
with identical accounting (DESIGN.md §7), selected via
:mod:`repro.mpc.substrate`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from repro.mpc.machine import Machine, SpaceViolation, sizeof_words
from repro.utils.validation import check_positive_int

__all__ = [
    "MPCCluster",
    "cluster_for",
    "RoundLog",
    "storage_violation_msg",
    "traffic_violation_msg",
]

MapFn = Callable[[int, list[Any]], Iterable[tuple[int, Any]]]


def storage_violation_msg(machine_id: int, stored: int, capacity: int) -> str:
    """The storage-violation string both substrates record verbatim."""
    return f"machine {machine_id}: stored {stored} > {capacity}"


def traffic_violation_msg(machine_id: int, sent: int, capacity: int) -> str:
    """The traffic-violation string both substrates record verbatim."""
    return f"machine {machine_id}: sent {sent} > {capacity} in one round"


@dataclass(frozen=True)
class RoundLog:
    """Traffic summary of one executed round."""

    round_index: int
    label: str
    total_words_moved: int
    max_sent: int
    max_received: int


class MPCCluster:
    """Synchronous machines with word-accounted all-to-all exchange."""

    def __init__(
        self,
        n_machines: int,
        words_per_machine: int,
        *,
        strict: bool = True,
    ):
        n_machines = check_positive_int(n_machines, "n_machines")
        words_per_machine = check_positive_int(words_per_machine, "words_per_machine")
        self.machines = [Machine(i, words_per_machine) for i in range(n_machines)]
        self.words_per_machine = words_per_machine
        self.strict = strict
        self.rounds_executed = 0
        self.round_log: list[RoundLog] = []
        self.violations: list[str] = []

    # ------------------------------------------------------------------
    @property
    def n_machines(self) -> int:
        return len(self.machines)

    def total_stored_words(self) -> int:
        return sum(m.stored_words for m in self.machines)

    def peak_global_words(self) -> int:
        return sum(m.peak_stored_words for m in self.machines)

    def peak_machine_words(self) -> int:
        """Worst per-machine storage high-water mark (words)."""
        return max(m.peak_stored_words for m in self.machines)

    def all_records(self) -> list[Any]:
        """Flatten every machine's storage (host-side readout; not a
        model operation and not charged as a round)."""
        out: list[Any] = []
        for m in self.machines:
            out.extend(m.storage)
        return out

    # ------------------------------------------------------------------
    def load(self, records: Sequence[Any], *, by: Callable[[Any], int] | None = None) -> None:
        """Place the input across machines (the model's 'arbitrary
        initial partition'; costs no rounds).  ``by`` maps a record to
        a machine id; default round-robin."""
        for m in self.machines:
            m.clear()
            m.begin_round()
        for i, rec in enumerate(records):
            dst = (by(rec) if by is not None else i % self.n_machines) % self.n_machines
            self.machines[dst].store(rec)
        self._check_storage()

    def exchange(self, map_fn: MapFn, *, label: str = "round") -> None:
        """Execute one synchronous round.

        Every machine's records are handed to ``map_fn(machine_id,
        records)``; emitted ``(dst, record)`` pairs are priced against
        both the sender's and receiver's per-round budgets, then
        delivered.  Records not re-emitted are dropped (map semantics —
        persist by emitting to yourself).
        """
        staged: list[list[tuple[int, Any]]] = [[] for _ in range(self.n_machines)]
        for m in self.machines:
            m.begin_round()
        for m in self.machines:
            records = m.clear()
            for dst, rec in map_fn(m.machine_id, records):
                if not (0 <= dst < self.n_machines):
                    raise ValueError(f"destination machine {dst} out of range")
                if dst != m.machine_id:
                    m.account_send(sizeof_words(rec))
                staged[dst].append((m.machine_id, rec))
        # Deliver; only remote arrivals count against the receive budget
        # (a machine re-storing its own records moves no data).
        for dst, arrivals in enumerate(staged):
            target = self.machines[dst]
            for src, rec in arrivals:
                if src != dst:
                    target.account_receive(sizeof_words(rec))
                target.store(rec)
        self.rounds_executed += 1
        total_moved = sum(m.sent_words_this_round for m in self.machines)
        log = RoundLog(
            round_index=self.rounds_executed,
            label=label,
            total_words_moved=total_moved,
            max_sent=max(m.sent_words_this_round for m in self.machines),
            max_received=max(m.received_words_this_round for m in self.machines),
        )
        self.round_log.append(log)
        self._check_traffic()
        self._check_storage()

    # ------------------------------------------------------------------
    def _check_storage(self) -> None:
        for m in self.machines:
            problems = []
            if m.stored_words > m.capacity_words:
                problems.append(
                    storage_violation_msg(m.machine_id, m.stored_words, m.capacity_words)
                )
            if problems:
                self.violations.extend(problems)
                if self.strict:
                    raise SpaceViolation("; ".join(problems))

    def _check_traffic(self) -> None:
        for m in self.machines:
            problems = []
            if m.sent_words_this_round > m.capacity_words:
                problems.append(
                    traffic_violation_msg(
                        m.machine_id, m.sent_words_this_round, m.capacity_words
                    )
                )
            if problems:
                self.violations.extend(problems)
                if self.strict:
                    raise SpaceViolation("; ".join(problems))


def cluster_for(
    total_words: int,
    n_for_alpha: int,
    alpha: float,
    *,
    slack: float = 4.0,
    strict: bool = True,
    substrate: str | None = None,
):
    """Build a cluster sized for the sublinear regime.

    ``S = slack · n^α`` words per machine (the constant ``slack``
    absorbs record framing, mirroring the O(·) in the theorem), and
    enough machines that the aggregate capacity is ``2×`` the input —
    the usual constant-factor headroom for shuffles.

    ``substrate`` selects the record representation (``"object"`` or
    ``"columnar"``, DESIGN.md §7); ``None`` defers to the registry's
    active substrate (``REPRO_MPC_SUBSTRATE`` / ``set_substrate``).
    """
    if not (0.0 < alpha < 1.0):
        raise ValueError(f"alpha must lie in (0,1), got {alpha}")
    total_words = check_positive_int(total_words, "total_words")
    n_for_alpha = check_positive_int(n_for_alpha, "n_for_alpha")
    words = max(16, int(slack * n_for_alpha**alpha))
    n_machines = max(1, math.ceil(2.0 * total_words / words))
    from repro.mpc.substrate import make_cluster  # late: avoids import cycle

    return make_cluster(n_machines, words, strict=strict, substrate=substrate)
