"""A single MPC machine: bounded storage measured in words.

The MPC model (§2.3) charges space in *words*; a word holds an id or a
number.  :func:`sizeof_words` prices the record tuples the simulator
ships around — ints/floats are one word each, containers cost the sum
of their elements — so per-machine budgets ``S = n^α`` are enforced on
the same unit the theorems use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

__all__ = ["sizeof_words", "Machine", "SpaceViolation"]


def sizeof_words(record: Any) -> int:
    """Word cost of a record: scalars are 1; containers are the sum of
    their items; strings cost 1 (tags/labels)."""
    if record is None or isinstance(record, (bool, int, float, str)):
        return 1
    if isinstance(record, (tuple, list)):
        return sum(sizeof_words(item) for item in record)
    if isinstance(record, dict):
        return sum(sizeof_words(k) + sizeof_words(v) for k, v in record.items())
    # numpy scalars
    if hasattr(record, "item") and not hasattr(record, "__len__"):
        return 1
    if hasattr(record, "__len__"):
        return sum(sizeof_words(item) for item in record)
    raise TypeError(f"cannot price record of type {type(record).__name__}")


class SpaceViolation(RuntimeError):
    """A machine exceeded its word budget (storage or traffic)."""


@dataclass
class Machine:
    """Storage plus bookkeeping for one machine."""

    machine_id: int
    capacity_words: int
    storage: list[Any] = field(default_factory=list)
    stored_words: int = 0
    peak_stored_words: int = 0
    sent_words_this_round: int = 0
    received_words_this_round: int = 0
    peak_traffic_words: int = 0

    def store(self, record: Any) -> None:
        self.storage.append(record)
        self.stored_words += sizeof_words(record)
        self.peak_stored_words = max(self.peak_stored_words, self.stored_words)

    def clear(self) -> list[Any]:
        """Drop and return all records (start of a map step)."""
        out = self.storage
        self.storage = []
        self.stored_words = 0
        return out

    def begin_round(self) -> None:
        self.sent_words_this_round = 0
        self.received_words_this_round = 0

    def account_send(self, words: int) -> None:
        self.sent_words_this_round += words
        self.peak_traffic_words = max(self.peak_traffic_words, self.sent_words_this_round)

    def account_receive(self, words: int) -> None:
        self.received_words_this_round += words
        self.peak_traffic_words = max(
            self.peak_traffic_words, self.received_words_this_round
        )

    def check_budget(self, *, strict: bool) -> list[str]:
        """Return human-readable violations; raise when ``strict``."""
        problems: list[str] = []
        if self.stored_words > self.capacity_words:
            problems.append(
                f"machine {self.machine_id}: stored {self.stored_words} words "
                f"> capacity {self.capacity_words}"
            )
        if self.sent_words_this_round > self.capacity_words:
            problems.append(
                f"machine {self.machine_id}: sent {self.sent_words_this_round} words "
                f"in one round > capacity {self.capacity_words}"
            )
        if self.received_words_this_round > self.capacity_words:
            problems.append(
                f"machine {self.machine_id}: received {self.received_words_this_round} "
                f"words in one round > capacity {self.capacity_words}"
            )
        if strict and problems:
            raise SpaceViolation("; ".join(problems))
        return problems
