"""Direct MPC simulation of the proportional dynamics (§3.2.1 baseline).

Before the paper's phase compression, the obvious way to run Algorithm
1 in sublinear MPC is round-for-round: each LOCAL round is three
accounted exchanges,

1. **join** — β values travel to their edges (route edge records and
   β records by right vertex, emit ``(u, v, β_v)``);
2. **normalize** — group by left vertex, compute the proportional
   split ``x_{u,v}`` locally, emit per-edge contributions keyed by v;
3. **aggregate** — group by right vertex, fold ``alloc_v``, apply the
   threshold update to β.

That is ``3·τ = O(log λ)`` MPC rounds with exact aggregates — the
baseline Theorem 10's ``Õ(√log λ)`` improves on.  This module executes
it on the accounted cluster, validating against the vectorized
dynamics, and is quoted by E5's discussion as the middle rung between
AZM18 (O(log n)) and the compressed algorithm.

Numerical note: machines exchange β as *integer exponents* and do the
max-shifted exponentiation locally, exactly like the vectorized path,
so the two implementations agree bit-for-bit on decisions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

from repro.core.proportional import ProportionalRun
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.capacities import validate_capacities
from repro.mpc.cluster import MPCCluster, cluster_for
from repro.mpc.columnar import ColumnarCluster, Shipment
from repro.mpc.columns import ColumnBatch
from repro.utils.validation import check_fraction, check_positive_int

__all__ = ["DirectSimulationResult", "simulate_local_rounds_on_cluster"]


@dataclass(frozen=True)
class DirectSimulationResult:
    """Outcome of the round-for-round cluster execution."""

    beta_exp: np.ndarray
    alloc: np.ndarray
    local_rounds: int
    mpc_rounds: int
    peak_machine_words: int
    violations: list[str]


def simulate_local_rounds_on_cluster(
    graph: BipartiteGraph,
    capacities: np.ndarray,
    epsilon: float,
    tau: int,
    *,
    alpha: float = 0.5,
    space_slack: float = 64.0,
    cluster: Optional[MPCCluster | ColumnarCluster] = None,
    substrate: Optional[str] = None,
) -> DirectSimulationResult:
    """Run τ exact Algorithm-1 rounds at 3 MPC rounds each.

    Returns the final β exponents and the last round's allocs, both of
    which match :class:`ProportionalRun` exactly (tested).

    ``substrate`` selects the cluster representation (DESIGN.md §7);
    the columnar path executes the identical three-exchange schedule
    with vectorized routing and sequential-order NumPy folds, so its
    ledger *and* numbers are bit-identical to the object path (tested).
    """
    caps = validate_capacities(graph, capacities)
    epsilon = check_fraction(epsilon, "epsilon")
    tau = check_positive_int(tau, "tau")
    log1p_eps = math.log1p(epsilon)

    if cluster is None:
        total_words = 8 * (graph.n_edges + graph.n_vertices) + 16
        cluster = cluster_for(
            total_words, n_for_alpha=max(2, graph.n_vertices), alpha=alpha,
            slack=space_slack, strict=True, substrate=substrate,
        )
    if isinstance(cluster, ColumnarCluster):
        return _simulate_columnar(graph, caps, epsilon, tau, log1p_eps, cluster)
    n_machines = cluster.n_machines

    # Resident state: edge records keyed by v, plus β/capacity records.
    records: list[tuple] = [
        ("edge", int(graph.edge_u[e]), int(graph.edge_v[e])) for e in range(graph.n_edges)
    ]
    records.extend(("beta", int(v), 0) for v in range(graph.n_right))
    records.extend(("cap", int(v), int(caps[v])) for v in range(graph.n_right))
    cluster.load(records, by=lambda rec: rec[2] % n_machines if rec[0] == "edge" else rec[1] % n_machines)

    def owner_right(v: int) -> int:
        return v % n_machines

    def owner_left(u: int) -> int:
        return u % n_machines

    alloc_final = np.zeros(graph.n_right, dtype=np.float64)
    for _ in range(tau):
        # Exchange 1 (join): β flows onto co-located edges; edge records
        # leave annotated with the current exponent, keyed by u.
        def join(mid: int, recs: list[Any]):
            beta_local = {rec[1]: rec[2] for rec in recs if rec[0] == "beta"}
            for rec in recs:
                kind = rec[0]
                if kind == "edge":
                    _, u, v = rec
                    yield owner_left(u), ("edge_b", u, v, beta_local[v])
                else:
                    yield mid, rec

        cluster.exchange(join, label="direct/join")

        # Exchange 2 (normalize): per left vertex, proportional split;
        # contributions return keyed by v.  Edges also return to their
        # home (v-keyed) machines for the next round.
        def normalize(mid: int, recs: list[Any]):
            by_left: dict[int, list[tuple[int, int]]] = {}
            for rec in recs:
                if rec[0] == "edge_b":
                    by_left.setdefault(rec[1], []).append((rec[2], rec[3]))
            for rec in recs:
                if rec[0] == "edge_b":
                    continue
                yield mid, rec
            for u, nbrs in by_left.items():
                max_exp = max(b for _, b in nbrs)
                weights = [(v, math.exp((b - max_exp) * log1p_eps)) for v, b in nbrs]
                denom = sum(w for _, w in weights)
                for v, w in weights:
                    yield owner_right(v), ("x", u, v, w / denom)

        cluster.exchange(normalize, label="direct/normalize")

        # Exchange 3 (aggregate): per right vertex, fold alloc and step
        # β; x records are consumed, edges are reconstituted at home.
        round_alloc: dict[int, float] = {}

        def aggregate(mid: int, recs: list[Any]):
            alloc: dict[int, float] = {}
            caps_local: dict[int, int] = {}
            beta_local: dict[int, int] = {}
            for rec in recs:
                if rec[0] == "x":
                    alloc[rec[2]] = alloc.get(rec[2], 0.0) + rec[3]
                elif rec[0] == "cap":
                    caps_local[rec[1]] = rec[2]
                elif rec[0] == "beta":
                    beta_local[rec[1]] = rec[2]
            for rec in recs:
                kind = rec[0]
                if kind == "x":
                    # Reconstitute the edge at its v-home machine.
                    yield mid, ("edge", rec[1], rec[2])
                elif kind == "beta":
                    v = rec[1]
                    a = alloc.get(v, 0.0)
                    round_alloc[v] = a
                    c = float(caps_local[v])
                    b = beta_local[v]
                    if a <= c / (1.0 + epsilon):
                        b += 1
                    elif a >= c * (1.0 + epsilon):
                        b -= 1
                    yield mid, ("beta", v, b)
                else:
                    yield mid, rec

        cluster.exchange(aggregate, label="direct/aggregate")
        alloc_final = np.zeros(graph.n_right, dtype=np.float64)
        for v, a in round_alloc.items():
            alloc_final[v] = a

    beta_exp = np.zeros(graph.n_right, dtype=np.int64)
    for rec in cluster.all_records():
        if rec[0] == "beta":
            beta_exp[rec[1]] = rec[2]
    return DirectSimulationResult(
        beta_exp=beta_exp,
        alloc=alloc_final,
        local_rounds=tau,
        mpc_rounds=cluster.rounds_executed,
        peak_machine_words=cluster.peak_machine_words(),
        violations=list(cluster.violations),
    )


# ----------------------------------------------------------------------
# Columnar path (DESIGN.md §7)
# ----------------------------------------------------------------------
def _simulate_columnar(
    graph: BipartiteGraph,
    caps: np.ndarray,
    epsilon: float,
    tau: int,
    log1p_eps: float,
    cluster: ColumnarCluster,
) -> DirectSimulationResult:
    """The three-exchange schedule on column batches.

    Bit-parity with the object path rests on three facts (asserted by
    ``tests/test_columnar_substrate.py``):

    * rows stay in the object substrate's arrival order (the columnar
      cluster's row-order contract), so per-vertex groups see their
      contributions in the same sequence;
    * ``np.bincount`` accumulates *sequentially* in element order,
      reproducing the Python-loop folds exactly (``np.add.reduceat``
      does not — it may re-associate — so every float segment sum here
      is a bincount); and
    * the shifted exponentials are looked up from a table of
      ``math.exp(d · log(1+ε))`` keyed by the integer shift ``d``, the
      very calls the object path makes per record.
    """
    M = cluster.n_machines
    n_right = graph.n_right

    edge_batch = ColumnBatch(
        "edge",
        {
            "u": graph.edge_u.astype(np.int64),
            "v": graph.edge_v.astype(np.int64),
        },
        key="v",
    )
    vs = np.arange(n_right, dtype=np.int64)
    beta_batch = ColumnBatch(
        "beta", {"v": vs, "b": np.zeros(n_right, dtype=np.int64)}, key="v"
    )
    cap_batch = ColumnBatch(
        "cap", {"v": vs.copy(), "c": caps.astype(np.int64)}, key="v"
    )
    cluster.load_batches(
        [edge_batch, beta_batch, cap_batch],
        home=[edge_batch.cols["v"] % M, vs % M, vs % M],
    )

    exp_cache: dict[int, float] = {}
    alloc_final = np.zeros(n_right, dtype=np.float64)
    for _ in range(tau):
        # Exchange 1 (join): β flows onto co-located edges; edge records
        # leave annotated with the current exponent, keyed by u.
        eb, eh = cluster.rows("edge")
        bb, bh = cluster.rows("beta")
        cb, ch = cluster.rows("cap")
        beta_of = np.zeros(n_right, dtype=np.int64)
        beta_of[bb.cols["v"]] = bb.cols["b"]
        u, v = eb.cols["u"], eb.cols["v"]
        edge_b = ColumnBatch("edge_b", {"u": u, "v": v, "b": beta_of[v]})
        cluster.exchange_columnar(
            [
                Shipment(edge_b, eh, u % M),
                Shipment(bb, bh, bh),
                Shipment(cb, ch, ch),
            ],
            label="direct/join",
        )

        # Exchange 2 (normalize): per left vertex, proportional split;
        # contributions return keyed by v.  Rows are regrouped by the
        # *first appearance* of each u — the object substrate's
        # ``by_left`` dict order — so the segment folds below run in
        # its exact summation order.
        xb, xh = cluster.rows("edge_b")
        bb, bh = cluster.rows("beta")
        cb, ch = cluster.rows("cap")
        u, v, b = xb.cols["u"], xb.cols["v"], xb.cols["b"]
        if u.shape[0]:
            _, first_idx, inv = np.unique(u, return_index=True, return_inverse=True)
            order = np.argsort(first_idx[inv], kind="stable")
            u_s, v_s, b_s, home_s = u[order], v[order], b[order], xh[order]
            starts = np.flatnonzero(np.r_[True, u_s[1:] != u_s[:-1]])
            seg_len = np.diff(np.r_[starts, u_s.shape[0]])
            max_b = np.maximum.reduceat(b_s, starts)
            diff = b_s - np.repeat(max_b, seg_len)
            uniq_d, inv_d = np.unique(diff, return_inverse=True)
            table = np.array(
                [
                    exp_cache.setdefault(int(d), math.exp(int(d) * log1p_eps))
                    for d in uniq_d
                ]
            )
            w = table[inv_d]
            seg_id = np.repeat(np.arange(starts.shape[0]), seg_len)
            denom = np.bincount(seg_id, weights=w, minlength=starts.shape[0])
            x_vals = w / denom[seg_id]
        else:
            u_s = v_s = np.empty(0, dtype=np.int64)
            home_s = np.empty(0, dtype=np.int64)
            x_vals = np.empty(0, dtype=np.float64)
        x_batch = ColumnBatch("x", {"u": u_s, "v": v_s, "w": x_vals})
        cluster.exchange_columnar(
            [
                Shipment(bb, bh, bh),
                Shipment(cb, ch, ch),
                Shipment(x_batch, home_s, v_s % M),
            ],
            label="direct/normalize",
        )

        # Exchange 3 (aggregate): per right vertex, fold alloc and step
        # β; x records are consumed, edges are reconstituted at home.
        xb, xh = cluster.rows("x")
        bb, bh = cluster.rows("beta")
        cb, ch = cluster.rows("cap")
        alloc_vec = np.bincount(
            xb.cols["v"], weights=xb.cols["w"], minlength=n_right
        )
        cap_of = np.zeros(n_right, dtype=np.int64)
        cap_of[cb.cols["v"]] = cb.cols["c"]
        bv, b = bb.cols["v"], bb.cols["b"]
        a = alloc_vec[bv]
        c = cap_of[bv].astype(np.float64)
        inc = a <= c / (1.0 + epsilon)
        dec = ~inc & (a >= c * (1.0 + epsilon))
        beta_new = ColumnBatch(
            "beta",
            {"v": bv, "b": b + inc.astype(np.int64) - dec.astype(np.int64)},
            key="v",
        )
        edge_new = ColumnBatch(
            "edge", {"u": xb.cols["u"], "v": xb.cols["v"]}, key="v"
        )
        cluster.exchange_columnar(
            [
                Shipment(edge_new, xh, xh),
                Shipment(beta_new, bh, bh),
                Shipment(cb, ch, ch),
            ],
            label="direct/aggregate",
        )
        alloc_final = alloc_vec

    bb, _ = cluster.rows("beta")
    beta_exp = np.zeros(n_right, dtype=np.int64)
    beta_exp[bb.cols["v"]] = bb.cols["b"]
    return DirectSimulationResult(
        beta_exp=beta_exp,
        alloc=alloc_final,
        local_rounds=tau,
        mpc_rounds=cluster.rounds_executed,
        peak_machine_words=cluster.peak_machine_words(),
        violations=list(cluster.violations),
    )
