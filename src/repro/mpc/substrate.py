"""Pluggable MPC substrates and their registry (DESIGN.md §7).

A *substrate* is the record representation the accounted cluster runs
on.  Two are built in:

* ``"object"`` — the reference substrate: machines are Python lists of
  tuples, records are priced by recursive ``sizeof_words`` traversal,
  routing runs through per-record map callbacks
  (:class:`repro.mpc.cluster.MPCCluster`).
* ``"columnar"`` (default) — typed column batches, vectorized
  hash-partition routing, dtype-based word accounting
  (:class:`repro.mpc.columnar.ColumnarCluster`).

The contract, mirroring the kernel-backend contract (§6.3): both
substrates execute the **same communication pattern** and therefore
produce bit-identical round ledgers, budget violations, and numeric
trajectories — the parity suite asserts it.  Selection mirrors
``REPRO_KERNEL_BACKEND``: the ``REPRO_MPC_SUBSTRATE`` environment
variable, or :func:`set_substrate` / :func:`use_substrate` at runtime.
"""

from __future__ import annotations

import os
import warnings
from contextlib import contextmanager
from typing import Callable, Dict

from repro.mpc.cluster import MPCCluster
from repro.mpc.columnar import ColumnarCluster

__all__ = [
    "ENV_VAR",
    "DEFAULT_SUBSTRATE",
    "register_substrate",
    "available_substrates",
    "get_substrate",
    "set_substrate",
    "use_substrate",
    "make_cluster",
]

ENV_VAR = "REPRO_MPC_SUBSTRATE"
DEFAULT_SUBSTRATE = "columnar"

# A factory builds a cluster: factory(n_machines, words_per_machine, strict).
_FACTORIES: Dict[str, Callable[[int, int, bool], object]] = {}
_ACTIVE: str | None = None


def register_substrate(name: str, factory: Callable[[int, int, bool], object]) -> None:
    """Register a substrate factory under ``name`` (last write wins)."""
    _FACTORIES[name] = factory


register_substrate(
    "object", lambda n, words, strict: MPCCluster(n, words, strict=strict)
)
register_substrate(
    "columnar", lambda n, words, strict: ColumnarCluster(n, words, strict=strict)
)


def available_substrates() -> list[str]:
    """Registered substrate names."""
    return sorted(_FACTORIES)


def _validate(name: str) -> str:
    if name not in _FACTORIES:
        raise ValueError(
            f"unknown MPC substrate {name!r}; available: {available_substrates()}"
        )
    return name


def get_substrate() -> str:
    """The active substrate name (initialized from ``REPRO_MPC_SUBSTRATE``)."""
    global _ACTIVE
    if _ACTIVE is None:
        if ENV_VAR in os.environ:
            warnings.warn(
                f"selecting the MPC substrate via the {ENV_VAR} environment "
                "variable is deprecated; pass "
                "repro.api.SolverConfig(substrate=...) to an Engine instead",
                DeprecationWarning,
                stacklevel=2,
            )
        _ACTIVE = _validate(os.environ.get(ENV_VAR, DEFAULT_SUBSTRATE))
    return _ACTIVE


def _set_substrate_impl(name: str) -> str:
    """Install a substrate globally; returns the previous one (no
    deprecation warning — the :class:`repro.api.Engine` activation path
    and :func:`use_substrate` scoping route through here)."""
    global _ACTIVE
    previous = get_substrate()
    _ACTIVE = _validate(name)
    return previous


def set_substrate(name: str) -> str:
    """Deprecated: install a substrate globally; returns the previous one.

    Deprecated in favour of :class:`repro.api.SolverConfig` — construct
    ``SolverConfig(substrate=...)`` and hand it to an
    :class:`repro.api.Engine`.  Process-global like the kernel-backend
    selection (same threading caveat): pick the substrate before
    fanning out concurrent cluster construction.
    """
    warnings.warn(
        "repro.mpc.set_substrate is deprecated; select the substrate via "
        "repro.api.SolverConfig(substrate=...) and an Engine",
        DeprecationWarning,
        stacklevel=2,
    )
    return _set_substrate_impl(name)


@contextmanager
def use_substrate(name: str):
    """Context manager: build clusters on a specific substrate."""
    previous = _set_substrate_impl(name)
    try:
        yield get_substrate()
    finally:
        _set_substrate_impl(previous)


def make_cluster(
    n_machines: int,
    words_per_machine: int,
    *,
    strict: bool = True,
    substrate: str | None = None,
):
    """Build a cluster on ``substrate`` (``None`` → the active one)."""
    name = _validate(substrate) if substrate is not None else get_substrate()
    return _FACTORIES[name](n_machines, words_per_machine, strict)
