"""Graph exponentiation on the MPC cluster (LW10 / GU19).

To simulate ``B`` LOCAL rounds in one machine-local step, every vertex
must hold its radius-``B`` ball of the (sparsified) communication
graph.  Graph exponentiation collects those balls by doubling: after
iteration ``i`` every vertex knows its radius-``2^i`` ball; joining
each vertex's ball with the balls of its frontier vertices doubles the
radius.  ``⌈log₂ B⌉`` joins suffice — the ``log B`` factor inside
Theorem 10's ``O(√log λ · log log λ)``.

Representation: per-vertex ball records ``("ball", v, edges)`` where
``edges`` is a sorted tuple of ``(a, b)`` pairs.  The join is executed
as two accounted exchanges per doubling (request shipping + response
shipping), which is the standard constant-round join implementation.

This is the faithful-mode path; it is exercised on small sparsified
graphs where ball volume ``d^B`` fits in a machine (DESIGN.md §5).
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Iterable

import numpy as np

from repro.mpc.cluster import MPCCluster
from repro.mpc.columnar import ColumnarCluster, Shipment
from repro.mpc.columns import ColumnBatch, ragged_from_rows

__all__ = [
    "collect_balls",
    "ball_vertices",
    "ball_record_words",
    "expected_doubling_rounds",
]

BALL_TAG = "ball"


def ball_record_words(edges) -> int:
    """Stored words of one collected ball record: 1 (tag) + 1 (center)
    + 2 per edge — identical to ``sizeof_words((\"ball\", v, edges))``
    on the object substrate and to :func:`_ball_batch`'s per-row cost
    on the columnar one.  The adaptive throttling layer uses this to
    turn ``collect_balls`` output into payload-size distributions."""
    return 2 + 2 * len(edges)


def expected_doubling_rounds(radius: int) -> int:
    """Number of doubling joins to reach ``radius``: ``⌈log₂ radius⌉``
    (each join is 2 exchange rounds in this implementation)."""
    if radius < 1:
        raise ValueError("radius must be >= 1")
    return max(0, math.ceil(math.log2(radius)))


def ball_vertices(edges: Iterable[tuple[int, int]], center: int) -> set[int]:
    """Vertex set of a ball record (center always included)."""
    verts = {center}
    for a, b in edges:
        verts.add(a)
        verts.add(b)
    return verts


def _frontier(edges: tuple[tuple[int, int], ...], center: int, radius: int) -> set[int]:
    """Vertices at distance exactly ``radius`` inside the ball edges."""
    adj: dict[int, set[int]] = defaultdict(set)
    for a, b in edges:
        adj[a].add(b)
        adj[b].add(a)
    dist = {center: 0}
    frontier = {center}
    for d in range(1, radius + 1):
        nxt = set()
        for v in frontier:
            for w in adj[v]:
                if w not in dist:
                    dist[w] = d
                    nxt.add(w)
        frontier = nxt
    return {v for v, d in dist.items() if d == radius}


def _truncate(edges: set[tuple[int, int]], center: int, radius: int) -> tuple[tuple[int, int], ...]:
    """Keep only edges on paths of length ≤ radius from the center."""
    adj: dict[int, set[int]] = defaultdict(set)
    for a, b in edges:
        adj[a].add(b)
        adj[b].add(a)
    dist = {center: 0}
    frontier = {center}
    d = 0
    while frontier and d < radius:
        d += 1
        nxt = set()
        for v in frontier:
            for w in adj[v]:
                if w not in dist:
                    dist[w] = d
                    nxt.add(w)
        frontier = nxt
    kept = tuple(
        sorted(
            (a, b)
            for a, b in edges
            if a in dist and b in dist and min(dist[a], dist[b]) <= radius - 1
        )
    )
    return kept


def collect_balls(
    cluster: MPCCluster,
    n_vertices: int,
    edge_list: list[tuple[int, int]],
    radius: int,
    *,
    owner_of_vertex=None,
) -> tuple[dict[int, tuple[tuple[int, int], ...]], int]:
    """Collect the radius-``radius`` ball of every vertex.

    The cluster is loaded with radius-1 balls (each vertex's incident
    edges), then doubled ``⌈log₂ radius⌉`` times.  Each doubling costs
    two exchange rounds: frontier-keyed requests, then ball responses.

    Returns ``(balls, rounds_used)`` with ``balls[v]`` an edge tuple.
    ``owner_of_vertex`` overrides the vertex→machine placement (default
    ``v mod M``).
    """
    if radius < 1:
        raise ValueError("radius must be >= 1")
    n_machines = cluster.n_machines
    owner = owner_of_vertex or (lambda v: v % n_machines)
    if isinstance(cluster, ColumnarCluster):
        return _collect_balls_columnar(
            cluster, n_vertices, edge_list, radius, owner
        )

    # Radius-1 balls from the raw edges (input loading, costs no rounds).
    incident: dict[int, set[tuple[int, int]]] = defaultdict(set)
    for a, b in edge_list:
        incident[a].add((a, b))
        incident[b].add((a, b))
    records = [
        (BALL_TAG, v, tuple(sorted(incident.get(v, set()))))
        for v in range(n_vertices)
    ]
    cluster.load(records, by=lambda rec: owner(rec[1]))

    rounds_used = 0
    current_radius = 1
    while current_radius < radius:
        target = min(radius, 2 * current_radius)
        cur = current_radius

        # Exchange A: every center asks the owners of its frontier
        # vertices for their balls: request = (req, frontier_vertex,
        # center).  Balls persist in place.
        def request_mapper(mid: int, recs: list):
            for rec in recs:
                if rec[0] == BALL_TAG:
                    _, center, edges = rec
                    for w in _frontier(edges, center, cur):
                        if w != center:
                            yield owner(w), ("req", w, center)
                    yield mid, rec
                else:
                    yield mid, rec

        cluster.exchange(request_mapper, label="exponentiation/request")
        rounds_used += 1

        # Exchange B: owners answer with ("resp", center, edges);
        # requests are consumed.
        def response_mapper(mid: int, recs: list):
            local_balls = {rec[1]: rec[2] for rec in recs if rec[0] == BALL_TAG}
            for rec in recs:
                if rec[0] == BALL_TAG:
                    yield mid, rec
                elif rec[0] == "req":
                    _, w, center = rec
                    yield owner(center), ("resp", center, local_balls.get(w, ()))

        cluster.exchange(response_mapper, label="exponentiation/response")
        rounds_used += 1

        # Local merge: centers union the responses into their ball and
        # truncate to the target radius (free in-round computation).
        for m in cluster.machines:
            balls: dict[int, set[tuple[int, int]]] = {}
            extras: dict[int, list[tuple[tuple[int, int], ...]]] = defaultdict(list)
            for rec in m.storage:
                if rec[0] == BALL_TAG:
                    balls[rec[1]] = set(rec[2])
                elif rec[0] == "resp":
                    extras[rec[1]].append(rec[2])
            m.clear()
            for center, edges in balls.items():
                for extra in extras.get(center, []):
                    edges.update(extra)
                m.store((BALL_TAG, center, _truncate(edges, center, target)))
        current_radius = target

    out: dict[int, tuple[tuple[int, int], ...]] = {}
    for rec in cluster.all_records():
        if rec[0] == BALL_TAG:
            out[rec[1]] = rec[2]
    return out, rounds_used


# ----------------------------------------------------------------------
# Columnar path (DESIGN.md §7)
# ----------------------------------------------------------------------
def _ball_batch(centers: np.ndarray, edge_rows: list) -> ColumnBatch:
    """Balls as a ragged batch: center column + flattened edge pairs.

    Per-record words = 1 (tag) + 1 (center) + 2·|edges| — identical to
    ``sizeof_words(("ball", v, edges))``.
    """
    offsets, payload = ragged_from_rows(
        [[c for pair in row for c in pair] for row in edge_rows]
    )
    return ColumnBatch(BALL_TAG, {"v": centers}, offsets, payload, key="v")


def _ball_pairs(batch: ColumnBatch, i: int) -> tuple[tuple[int, int], ...]:
    flat = batch.payload_row(i).tolist()
    return tuple(zip(flat[0::2], flat[1::2]))


def _collect_balls_columnar(
    cluster: ColumnarCluster,
    n_vertices: int,
    edge_list: list[tuple[int, int]],
    radius: int,
    owner,
) -> tuple[dict[int, tuple[tuple[int, int], ...]], int]:
    """Column-batch graph exponentiation.

    The per-ball frontier/truncate helpers are shared with the object
    path (machine-local compute is free in the model either way); the
    communication — request and response shipping — is expressed as
    ragged column shipments, so word pricing and partitioning are
    vectorized and the round ledger matches the object substrate
    exactly.
    """
    n_machines = cluster.n_machines
    incident: dict[int, set[tuple[int, int]]] = defaultdict(set)
    for a, b in edge_list:
        incident[a].add((a, b))
        incident[b].add((a, b))
    centers = np.arange(n_vertices, dtype=np.int64)
    edge_rows = [tuple(sorted(incident.get(v, set()))) for v in range(n_vertices)]
    home = np.array([owner(v) % n_machines for v in range(n_vertices)], dtype=np.int64)
    cluster.load_batches([_ball_batch(centers, edge_rows)], home=[home])

    rounds_used = 0
    current_radius = 1
    while current_radius < radius:
        target = min(radius, 2 * current_radius)
        cur = current_radius

        # Exchange A: frontier-keyed requests; balls persist in place.
        balls, ball_home = cluster.rows(BALL_TAG)
        req_w: list[int] = []
        req_center: list[int] = []
        req_src: list[int] = []
        for i in range(balls.n_records):
            center = int(balls.cols["v"][i])
            for w in _frontier(_ball_pairs(balls, i), center, cur):
                if w != center:
                    req_w.append(w)
                    req_center.append(center)
                    req_src.append(int(ball_home[i]))
        ships = cluster.keep_all_shipments()
        if req_w:
            ships.append(
                Shipment(
                    ColumnBatch(
                        "req",
                        {
                            "w": np.asarray(req_w, dtype=np.int64),
                            "center": np.asarray(req_center, dtype=np.int64),
                        },
                    ),
                    np.asarray(req_src, dtype=np.int64),
                    np.array([owner(w) % n_machines for w in req_w], dtype=np.int64),
                )
            )
        cluster.exchange_columnar(ships, label="exponentiation/request")
        rounds_used += 1

        # Exchange B: owners answer with the requested balls; requests
        # are consumed.  Each request is served from its owner machine,
        # where the ball is resident by construction.
        balls, ball_home = cluster.rows(BALL_TAG)
        local_balls = {
            int(balls.cols["v"][i]): _ball_pairs(balls, i)
            for i in range(balls.n_records)
        }
        ships = cluster.keep_all_shipments(exclude=("req",))
        if cluster.has_kind("req"):
            reqs, req_home = cluster.rows("req")
            resp_center = reqs.cols["center"]
            resp_rows = [
                local_balls.get(int(w), ()) for w in reqs.cols["w"]
            ]
            offsets, payload = ragged_from_rows(
                [[c for pair in row for c in pair] for row in resp_rows]
            )
            ships.append(
                Shipment(
                    ColumnBatch("resp", {"center": resp_center}, offsets, payload),
                    req_home,
                    np.array(
                        [owner(int(c)) % n_machines for c in resp_center],
                        dtype=np.int64,
                    ),
                )
            )
        cluster.exchange_columnar(ships, label="exponentiation/response")
        rounds_used += 1

        # Local merge: union responses into balls, truncate to target.
        balls, ball_home = cluster.rows(BALL_TAG)
        extras: dict[int, list] = defaultdict(list)
        if cluster.has_kind("resp"):
            resp, _ = cluster.rows("resp")
            for i in range(resp.n_records):
                extras[int(resp.cols["center"][i])].append(_ball_pairs(resp, i))
            cluster.drop_kind("resp")
        new_rows = []
        for i in range(balls.n_records):
            center = int(balls.cols["v"][i])
            edges = set(_ball_pairs(balls, i))
            for extra in extras.get(center, []):
                edges.update(extra)
            new_rows.append(_truncate(edges, center, target))
        cluster.replace_kind(
            BALL_TAG, _ball_batch(balls.cols["v"], new_rows), ball_home
        )
        current_radius = target

    balls, _ = cluster.rows(BALL_TAG)
    out = {
        int(balls.cols["v"][i]): _ball_pairs(balls, i)
        for i in range(balls.n_records)
    }
    return out, rounds_used
