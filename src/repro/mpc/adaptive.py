"""Adaptive sample-budget throttling for the faithful MPC path.

The faithful driver enforces the model's ``S = O(n^α)`` words budget
strictly: one round whose peak machine load crosses ``S`` raises
:class:`~repro.mpc.machine.SpaceViolation` and kills the run.  With a
*fixed* per-round sample budget that makes the largest runnable
instance a guessing game — budgets generous enough to converge fast
on small instances overflow machines on big or skewed ones, and
budgets safe for the worst case leave most of ``S`` idle everywhere
else (ROADMAP "Adaptive budget throttling").

This module closes the loop.  A :class:`PeakHoldEstimator` tracks the
observed per-phase peak machine words (a held peak with multiplicative
decay, so one heavy phase keeps the controller honest for a while but
does not pin it forever), and fits a power-law load curve
``peak(b) ≈ peak(b₀)·(b/b₀)^γ`` through the held peak — γ estimated
in log-space from the two most recent observations at distinct
budgets, clamped to a sane range.  The
:class:`AdaptiveBudgetController` turns predictions into per-phase
decisions against a *safety fraction* of ``S``:

* ``init``      — first phase runs at a deliberately small budget;
* ``ramp``      — headroom below ``safety_fraction·S`` → grow the
  budget geometrically (capped at the theoretical ``t``);
* ``hold``      — predicted peak sits inside the safety band;
* ``throttle``  — prediction crosses the band → shrink before
  executing, instead of dying on the violation;
* ``backoff``   — the safety net: an executed phase *did* violate
  (the attempt is discarded by the driver), so halve and retry,
  pinning the estimator at ≥ ``S`` for the offending budget.

Every decision is recorded as a round-ledger trajectory row by the
driver (:mod:`repro.core.mpc_driver`), which is what makes throttling
auditable per phase.  See DESIGN.md §13.

Determinism: the controller is pure integer/float arithmetic over
observed peaks — no RNG — and budgets only *cap* the keyed sampler's
deterministic choice counts, so a (seed, schedule) pair fully
determines the trajectory on either substrate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.utils.validation import check_fraction, check_positive_int

__all__ = ["PeakHoldEstimator", "AdaptiveBudgetController"]

# γ clamp: ball volume grows at least ~linearly and at most ~cubically
# with the per-round sample budget at the radii the driver uses.
_GAMMA_MIN = 0.5
_GAMMA_MAX = 3.0
_GAMMA_DEFAULT = 1.5


@dataclass
class PeakHoldEstimator:
    """Held peak of observed per-phase peak machine words, with decay.

    ``observe(budget, peak)`` folds one accepted phase in: the held
    peak decays by ``decay`` per observation and is replaced whenever
    the fresh observation exceeds the decayed hold (so the reference
    point tracks the heaviest *recent* phase).  ``predict(budget)``
    extrapolates the held peak along the fitted power law; ``None``
    until the first observation.
    """

    decay: float = 0.9
    held_peak: float = 0.0
    held_budget: Optional[int] = None
    history: list[tuple[int, int]] = field(default_factory=list)

    def observe(self, budget: int, peak_words: int) -> None:
        budget = check_positive_int(budget, "budget")
        peak_words = int(peak_words)
        decayed = self.held_peak * self.decay
        if peak_words >= decayed or self.held_budget is None:
            self.held_peak = float(peak_words)
            self.held_budget = budget
        else:
            self.held_peak = decayed
        self.history.append((budget, peak_words))

    def gamma(self) -> float:
        """Power-law exponent from the two most recent observations at
        distinct budgets (log-space slope), clamped to
        ``[0.5, 3.0]``; 1.5 until two usable points exist."""
        for i in range(len(self.history) - 1, 0, -1):
            b2, p2 = self.history[i]
            for j in range(i - 1, -1, -1):
                b1, p1 = self.history[j]
                if b1 != b2 and p1 > 0 and p2 > 0:
                    slope = math.log(p2 / p1) / math.log(b2 / b1)
                    return min(_GAMMA_MAX, max(_GAMMA_MIN, slope))
            break
        return _GAMMA_DEFAULT

    def predict(self, budget: int) -> Optional[float]:
        """Predicted peak machine words at ``budget``; ``None`` before
        any observation."""
        if self.held_budget is None:
            return None
        ratio = budget / self.held_budget
        return self.held_peak * ratio ** self.gamma()


class AdaptiveBudgetController:
    """Per-phase sample-budget decisions against ``safety_fraction·S``.

    ``propose()`` returns ``(budget, decision)`` for the next phase;
    ``observe()`` feeds back the accepted phase's peak; ``backoff()``
    handles an executed violation (returns the retry budget, or
    ``None`` when the budget cannot shrink further and the violation
    is genuine).
    """

    def __init__(
        self,
        *,
        budget_words: int,
        max_budget: int,
        safety_fraction: float = 0.8,
        initial_budget: int = 1,
        ramp_factor: float = 2.0,
        decay: float = 0.9,
    ):
        self.budget_words = check_positive_int(budget_words, "budget_words")
        self.max_budget = check_positive_int(max_budget, "max_budget")
        self.safety_fraction = check_fraction(
            safety_fraction, "safety_fraction", inclusive_high=1.0
        )
        self.initial_budget = check_positive_int(initial_budget, "initial_budget")
        if ramp_factor <= 1.0:
            raise ValueError(f"ramp_factor must exceed 1, got {ramp_factor}")
        self.ramp_factor = float(ramp_factor)
        self.estimator = PeakHoldEstimator(decay=decay)
        self._last: Optional[int] = None

    @property
    def cap_words(self) -> float:
        """The safety band: ``safety_fraction · S`` words."""
        return self.safety_fraction * self.budget_words

    def predicted_peak(self, budget: int) -> Optional[float]:
        return self.estimator.predict(budget)

    def propose(self) -> tuple[int, str]:
        """Budget and decision tag for the next phase."""
        if self._last is None:
            self._last = min(self.initial_budget, self.max_budget)
            return self._last, "init"
        b = self._last
        pred = self.estimator.predict(b)
        if pred is not None and pred > self.cap_words:
            nb = b
            while nb > 1:
                candidate = max(1, nb // 2)
                nb = candidate
                pred_nb = self.estimator.predict(nb)
                if pred_nb is None or pred_nb <= self.cap_words:
                    break
            self._last = nb
            return nb, ("throttle" if nb < b else "hold")
        if b < self.max_budget:
            nb = min(self.max_budget, max(b + 1, int(b * self.ramp_factor)))
            pred_up = self.estimator.predict(nb)
            # Exploratory ramp: before any observation at a budget
            # above b the power-law prior has nothing to extrapolate
            # from (and errs conservative — it would hold at the
            # initial budget forever).  Ramping anyway is safe because
            # a violating attempt is discarded and retried halved by
            # the driver's backoff protocol, which also pins the
            # estimator at ≥ S for the offending budget, so an
            # exploratory over-step is paid at most once per guess.
            tried_higher = any(bb > b for bb, _ in self.estimator.history)
            if pred_up is None or pred_up <= self.cap_words or not tried_higher:
                self._last = nb
                return nb, "ramp"
        return b, "hold"

    def observe(self, budget: int, peak_words: int) -> None:
        self.estimator.observe(budget, peak_words)

    def backoff(self, budget: int, peak_words: Optional[int] = None) -> Optional[int]:
        """An executed phase at ``budget`` violated the space budget.

        Pins the estimator at (at least) one word over ``S`` for that
        budget — the offending budget must predict over the cap from
        now on — and returns the halved retry budget, or ``None`` when
        the budget is already 1 (no throttle can save the phase)."""
        observed = max(int(peak_words or 0), self.budget_words + 1)
        self.estimator.observe(budget, observed)
        if budget <= 1:
            return None
        self._last = max(1, budget // 2)
        return self._last
