"""One registry protocol across every pluggable implementation axis.

Three extension points grew their own registries over the life of the
repository: kernel backends (:mod:`repro.kernels.backends`), MPC
substrates (:mod:`repro.mpc.substrate`), and — implicitly, as a set of
stage classes — the pipeline stages (:mod:`repro.core.pipeline`).
Each had its own ``register_*``/``available_*`` spelling, which is
exactly the fragmentation the :mod:`repro.api` façade removes: this
module unifies them behind a single ``register(kind, name, factory)``
/ ``resolve(kind, name)`` / ``available(kind)`` protocol (DESIGN.md
§10).

The per-domain registries remain the storage — registering through
either spelling is visible through the other, so existing third-party
``register_backend``/``register_substrate`` calls keep working — but
new code (and :class:`repro.api.SolverConfig` validation) speaks only
this protocol.

Kinds
-----
``"kernel_backend"``
    ``factory()`` → a :class:`repro.kernels.KernelBackend` instance.
    ``resolve`` returns the *instantiated* backend.
``"mpc_substrate"``
    ``factory(n_machines, words_per_machine, strict)`` → a cluster.
    ``resolve`` returns the factory itself (clusters are built per
    solve, not per registration).
``"pipeline_stage"``
    ``factory(config)`` → a :class:`repro.core.pipeline.PipelineStage`
    built from a :class:`repro.api.SolverConfig`.  ``resolve`` returns
    the factory; :meth:`repro.api.SolverConfig.build_stages` applies
    it.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

__all__ = [
    "KINDS",
    "register",
    "resolve",
    "available",
    "register_stage",
]


# ----------------------------------------------------------------------
# Pipeline-stage factories (the one domain that did not have an explicit
# registry before): name -> factory(config) -> PipelineStage.
# ----------------------------------------------------------------------
_STAGE_FACTORIES: Dict[str, Callable[[Any], Any]] = {}


def register_stage(name: str, factory: Callable[[Any], Any]) -> None:
    """Register a pipeline-stage factory under ``name`` (last write
    wins).  ``factory(config)`` receives the active
    :class:`repro.api.SolverConfig` and returns a stage object."""
    _STAGE_FACTORIES[name] = factory


def _register_default_stages() -> None:
    from repro.core.pipeline import (
        BoostStage,
        FractionalStage,
        RepairStage,
        RoundingStage,
    )

    register_stage(
        "fractional",
        lambda config: FractionalStage(
            alpha=config.alpha,
            lam=config.lam,
            options=config.mpc_options(),
        ),
    )
    register_stage(
        "rounding",
        lambda config: RoundingStage(copies=config.rounding_copies),
    )
    register_stage("repair", lambda config: RepairStage())
    register_stage(
        "boost",
        lambda config: BoostStage(
            epsilon=config.boost_epsilon, mode=config.boost_mode
        ),
    )


_register_default_stages()


# ----------------------------------------------------------------------
# Domain adapters: each kind maps onto its backing registry.
# ----------------------------------------------------------------------
def _backend_register(name: str, factory: Callable[..., Any]) -> None:
    from repro.kernels.backends import register_backend

    register_backend(name, factory)


def _backend_names() -> list[str]:
    from repro.kernels.backends import available_backends

    return available_backends()


def _backend_resolve(name: str) -> Any:
    from repro.kernels.backends import _resolve

    return _resolve(name)


def _substrate_register(name: str, factory: Callable[..., Any]) -> None:
    from repro.mpc.substrate import register_substrate

    register_substrate(name, factory)


def _substrate_names() -> list[str]:
    from repro.mpc.substrate import available_substrates

    return available_substrates()


def _substrate_resolve(name: str) -> Any:
    from repro.mpc.substrate import _FACTORIES, _validate

    return _FACTORIES[_validate(name)]


def _stage_names() -> list[str]:
    return sorted(_STAGE_FACTORIES)


def _stage_resolve(name: str) -> Any:
    return _STAGE_FACTORIES[name]


_DOMAINS: Dict[str, dict[str, Callable[..., Any]]] = {
    "kernel_backend": {
        "register": _backend_register,
        "names": _backend_names,
        "resolve": _backend_resolve,
    },
    "mpc_substrate": {
        "register": _substrate_register,
        "names": _substrate_names,
        "resolve": _substrate_resolve,
    },
    "pipeline_stage": {
        "register": register_stage,
        "names": _stage_names,
        "resolve": _stage_resolve,
    },
}

KINDS = tuple(sorted(_DOMAINS))


def _domain(kind: str) -> dict[str, Callable[..., Any]]:
    try:
        return _DOMAINS[kind]
    except KeyError:
        raise ValueError(
            f"unknown registry kind {kind!r}; kinds: {list(KINDS)}"
        ) from None


def register(kind: str, name: str, factory: Callable[..., Any]) -> None:
    """Register ``factory`` under ``name`` in the ``kind`` domain.

    Last write wins, matching every per-domain registry's historical
    behaviour.  The factory signature depends on the kind (module
    docstring).
    """
    _domain(kind)["register"](name, factory)


def available(kind: str) -> list[str]:
    """Sorted registered names for ``kind``."""
    return sorted(_domain(kind)["names"]())


def resolve(kind: str, name: str):
    """Resolve ``name`` in the ``kind`` domain.

    Raises ``ValueError`` naming the registered choices when ``name``
    is unknown — the message :class:`repro.api.SolverConfig` surfaces
    at validation time.
    """
    domain = _domain(kind)
    if name not in domain["names"]():
        raise ValueError(
            f"unknown {kind} {name!r}; available: {available(kind)}"
        )
    return domain["resolve"](name)
