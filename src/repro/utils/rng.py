"""Deterministic random-number management.

Every stochastic component in the library accepts a ``seed`` argument
that may be ``None`` (non-deterministic), an ``int``, or an existing
:class:`numpy.random.Generator`.  :func:`as_generator` normalizes the
three forms.  Components that need several independent streams (e.g.
the MPC sampler drawing fresh samples per (vertex, group, round))
derive them through :func:`spawn` or an :class:`RngFactory` so that a
single top-level seed reproduces the entire run, independent of
iteration order.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Normalize ``seed`` into a :class:`numpy.random.Generator`.

    Passing an existing generator returns it unchanged (shared state),
    which lets callers thread one stream through a pipeline.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn(seed: SeedLike, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent generators from ``seed``.

    Uses :class:`numpy.random.SeedSequence` spawning so the children do
    not overlap even when ``n`` is large.  When ``seed`` is already a
    generator, children are derived from its bit generator's seed
    sequence via fresh entropy drawn from the generator itself (still
    reproducible given the generator's state).
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of streams: {n}")
    if isinstance(seed, np.random.Generator):
        # Draw child seeds from the stream itself: reproducible given
        # the generator state, and advances the parent exactly once.
        child_seeds = seed.integers(0, 2**63 - 1, size=n)
        return [np.random.default_rng(int(s)) for s in child_seeds]
    if isinstance(seed, np.random.SeedSequence):
        ss = seed
    else:
        ss = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in ss.spawn(n)]


class RngFactory:
    """Keyed factory of independent random streams.

    The MPC sampled algorithm needs a fresh, independent sample set for
    every (phase, round, vertex-side, group) combination, and the
    experiment harness needs per-(experiment, repetition) streams.
    Hashing the key into the seed sequence makes the stream a pure
    function of (root seed, key): re-running any subset of the
    computation reproduces identical randomness regardless of order.
    """

    def __init__(self, root: SeedLike = None):
        if isinstance(root, np.random.Generator):
            # Freeze a root integer out of the generator so keyed
            # lookups stay order-independent afterwards.
            root = int(root.integers(0, 2**63 - 1))
        if isinstance(root, np.random.SeedSequence):
            self._root_entropy: Sequence[int] = tuple(np.atleast_1d(root.entropy).tolist())
        elif root is None:
            self._root_entropy = tuple(
                np.atleast_1d(np.random.SeedSequence().entropy).tolist()
            )
        else:
            self._root_entropy = (int(root),)

    def get(self, *key: int) -> np.random.Generator:
        """Return the generator for an integer key tuple."""
        for k in key:
            if not isinstance(k, (int, np.integer)):
                raise TypeError(f"RngFactory keys must be integers, got {type(k).__name__}")
        ss = np.random.SeedSequence(
            entropy=self._root_entropy, spawn_key=tuple(int(k) for k in key)
        )
        return np.random.default_rng(ss)

    def integers(self, *key: int, low: int = 0, high: int = 2**63 - 1) -> int:
        """Convenience: one integer drawn from the keyed stream."""
        return int(self.get(*key).integers(low, high))


def permutation_inverse(perm: np.ndarray) -> np.ndarray:
    """Return the inverse of a permutation array.

    Used by CSR construction code that must map between edge orders.
    """
    inv = np.empty_like(perm)
    inv[perm] = np.arange(perm.shape[0], dtype=perm.dtype)
    return inv


def choice_without_replacement(
    rng: np.random.Generator, population: int, k: int
) -> np.ndarray:
    """Sample ``min(k, population)`` distinct indices from ``range(population)``.

    Thin wrapper so sampling degenerates to "take everything" when the
    requested sample size covers the population — the exact-sum regime
    the sampled algorithm falls back to (DESIGN.md §5).
    """
    if population < 0:
        raise ValueError("population must be non-negative")
    if k >= population:
        return np.arange(population, dtype=np.int64)
    return rng.choice(population, size=k, replace=False).astype(np.int64)
