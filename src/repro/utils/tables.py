"""Result tables for the experiment harness.

The paper has no tables of its own (it is a theory paper), so the
experiment suite prints its theorem-vs-measured comparisons through a
single :class:`Table` abstraction that renders to aligned ASCII (for
terminals / ``tee``'d benchmark logs) and GitHub-flavoured markdown
(for EXPERIMENTS.md).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence


def _format_cell(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


@dataclass
class Table:
    """A titled grid of rows with named columns.

    Rows are dictionaries; missing keys render as ``-``.  Column order
    follows ``columns`` when given, else first-seen order.
    """

    title: str
    columns: list[str] = field(default_factory=list)
    rows: list[dict[str, Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, **cells: Any) -> None:
        for key in cells:
            if key not in self.columns:
                self.columns.append(key)
        self.rows.append(dict(cells))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def column(self, name: str) -> list[Any]:
        """Extract one column as a list (``None`` for missing cells)."""
        return [row.get(name) for row in self.rows]

    def to_ascii(self) -> str:
        return format_ascii(self)

    def to_markdown(self) -> str:
        return format_markdown(self)

    def to_json(self) -> str:
        return json.dumps(
            {"title": self.title, "columns": self.columns, "rows": self.rows,
             "notes": self.notes},
            indent=2,
            default=str,
        )

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.to_ascii()


def _grid(table: Table) -> tuple[list[str], list[list[str]]]:
    header = list(table.columns)
    body = [[_format_cell(row.get(col)) for col in header] for row in table.rows]
    return header, body


def format_ascii(table: Table) -> str:
    """Render an aligned fixed-width table with a title rule."""
    header, body = _grid(table)
    widths = [len(h) for h in header]
    for row in body:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = [table.title, "=" * max(len(table.title), len(sep))]
    lines.append(" | ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append(sep)
    for row in body:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    for note in table.notes:
        lines.append(f"note: {note}")
    return "\n".join(lines)


def format_markdown(table: Table) -> str:
    """Render GitHub-flavoured markdown."""
    header, body = _grid(table)
    lines = [f"### {table.title}", ""]
    lines.append("| " + " | ".join(header) + " |")
    lines.append("|" + "|".join("---" for _ in header) + "|")
    for row in body:
        lines.append("| " + " | ".join(row) + " |")
    for note in table.notes:
        lines.append("")
        lines.append(f"_note: {note}_")
    return "\n".join(lines)


def summarize_series(values: Iterable[float]) -> dict[str, float]:
    """Mean/min/max summary used by repeated-trial experiment rows."""
    vals = [float(v) for v in values]
    if not vals:
        raise ValueError("summarize_series requires at least one value")
    return {
        "mean": sum(vals) / len(vals),
        "min": min(vals),
        "max": max(vals),
        "n": len(vals),
    }


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean; the conventional aggregate for ratio columns."""
    vals = [float(v) for v in values]
    if not vals:
        raise ValueError("geometric_mean requires at least one value")
    if any(v <= 0 for v in vals):
        raise ValueError("geometric_mean requires positive values")
    log_sum = sum(__import__("math").log(v) for v in vals)
    return float(__import__("math").exp(log_sum / len(vals)))
