"""Shared utilities: seeded RNG management, table rendering, validation.

These helpers carry no algorithmic content; they exist so that every
module in :mod:`repro` handles randomness, argument validation, and
result presentation the same way.
"""

from repro.utils.rng import RngFactory, as_generator, spawn
from repro.utils.tables import Table, format_markdown, format_ascii
from repro.utils.validation import (
    check_fraction,
    check_positive_int,
    check_probability,
    check_in_range,
)

__all__ = [
    "RngFactory",
    "as_generator",
    "spawn",
    "Table",
    "format_markdown",
    "format_ascii",
    "check_fraction",
    "check_positive_int",
    "check_probability",
    "check_in_range",
]
