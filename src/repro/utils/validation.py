"""Argument-validation helpers with consistent error messages.

Validation failures in a research library are most useful when the
message names the offending parameter and the constraint, so every
public entry point funnels through these.
"""

from __future__ import annotations

from typing import Any

import numpy as np


def check_positive_int(value: Any, name: str) -> int:
    """Validate that ``value`` is an integer >= 1 and return it as int."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    if value < 1:
        raise ValueError(f"{name} must be >= 1, got {value}")
    return int(value)


def check_nonnegative_int(value: Any, name: str) -> int:
    """Validate that ``value`` is an integer >= 0 and return it as int."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return int(value)


def check_fraction(value: Any, name: str, *, inclusive_high: float = 1.0) -> float:
    """Validate ``0 < value <= inclusive_high`` (an ε-like parameter)."""
    value = float(value)
    if not np.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value}")
    if not (0.0 < value <= inclusive_high):
        raise ValueError(f"{name} must lie in (0, {inclusive_high}], got {value}")
    return value


def check_probability(value: Any, name: str) -> float:
    """Validate ``0 <= value <= 1``."""
    value = float(value)
    if not np.isfinite(value) or not (0.0 <= value <= 1.0):
        raise ValueError(f"{name} must lie in [0, 1], got {value}")
    return value


def check_in_range(value: Any, name: str, low: float, high: float) -> float:
    """Validate ``low <= value <= high``."""
    value = float(value)
    if not np.isfinite(value) or not (low <= value <= high):
        raise ValueError(f"{name} must lie in [{low}, {high}], got {value}")
    return value


def check_array_shape(arr: np.ndarray, name: str, shape: tuple[int, ...]) -> np.ndarray:
    """Validate that ``arr`` has exactly ``shape``."""
    arr = np.asarray(arr)
    if arr.shape != shape:
        raise ValueError(f"{name} must have shape {shape}, got {arr.shape}")
    return arr


def check_integer_array(arr: Any, name: str) -> np.ndarray:
    """Coerce to an int64 array, rejecting non-integral values."""
    arr = np.asarray(arr)
    if arr.dtype.kind == "f":
        if not np.all(np.isfinite(arr)) or not np.all(arr == np.floor(arr)):
            raise ValueError(f"{name} must contain integers, got non-integral values")
        arr = arr.astype(np.int64)
    elif arr.dtype.kind not in ("i", "u"):
        raise TypeError(f"{name} must be an integer array, got dtype {arr.dtype}")
    return arr.astype(np.int64)
