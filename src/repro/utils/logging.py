"""Minimal structured logging for long-running experiment drivers.

Benchmarks run under ``pytest-benchmark`` where stdout noise is
unwelcome; library code therefore logs through the standard
:mod:`logging` module under the ``repro`` namespace and stays silent
unless the caller opts in via :func:`enable_progress_logging`.
"""

from __future__ import annotations

import logging
import time
from contextlib import contextmanager
from typing import Iterator

LOGGER_NAME = "repro"


def get_logger(child: str | None = None) -> logging.Logger:
    """Fetch the package logger or a named child of it."""
    name = LOGGER_NAME if child is None else f"{LOGGER_NAME}.{child}"
    return logging.getLogger(name)


def enable_progress_logging(level: int = logging.INFO) -> None:
    """Attach a stderr handler to the package logger (idempotent)."""
    logger = get_logger()
    if not any(isinstance(h, logging.StreamHandler) for h in logger.handlers):
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s %(message)s")
        )
        logger.addHandler(handler)
    logger.setLevel(level)


@contextmanager
def log_duration(logger: logging.Logger, label: str) -> Iterator[None]:
    """Log wall-clock duration of a block at DEBUG level."""
    start = time.perf_counter()
    try:
        yield
    finally:
        logger.debug("%s took %.3fs", label, time.perf_counter() - start)
