"""Comparators: exact OPT oracle, greedy, auction, and the prior
state-of-the-art MPC baseline (AZM18 run for O(log n) rounds).

The Dinic/exact/greedy trio sits *below* :mod:`repro.core` in the
dependency order (the arboricity machinery reuses Dinic), while the
AZM18 and auction baselines sit *above* it (they drive the core
solvers).  The latter are therefore exported lazily (PEP 562) so that
importing the low-level oracles from low-level code cannot create an
import cycle.
"""

from repro.baselines.dinic import DinicSolver
from repro.baselines.exact import ExactSolution, solve_exact, optimum_value
from repro.baselines.greedy import greedy_allocation, is_maximal_allocation

__all__ = [
    "DinicSolver",
    "ExactSolution",
    "solve_exact",
    "optimum_value",
    "greedy_allocation",
    "is_maximal_allocation",
    "AZM18Result",
    "solve_azm18_mpc",
    "AuctionResult",
    "auction_allocation",
]

_LAZY = {
    "AZM18Result": "repro.baselines.azm18",
    "solve_azm18_mpc": "repro.baselines.azm18",
    "AuctionResult": "repro.baselines.auction",
    "auction_allocation": "repro.baselines.auction",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
