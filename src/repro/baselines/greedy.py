"""Greedy allocation baselines.

``greedy_allocation`` scans edges in a given order and takes every edge
whose endpoints still have residual capacity — the standard maximal-
allocation baseline.  A maximal allocation is a ½-approximation (every
optimal edge shares an endpoint with some chosen edge, and each chosen
edge can block at most two optimal ones — the same argument as maximal
matching, applied to the b-matching polytope).

This is the cheap comparator the experiment tables include alongside
the proportional-allocation family, and the quality floor tests assert
against.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.capacities import validate_capacities
from repro.utils.rng import as_generator

__all__ = ["greedy_allocation", "is_maximal_allocation"]


def greedy_allocation(
    graph: BipartiteGraph,
    capacities: np.ndarray,
    *,
    order: str = "canonical",
    seed=None,
) -> np.ndarray:
    """Boolean edge mask of a maximal allocation.

    ``order`` is ``"canonical"`` (edge-id order), ``"random"`` (uniform
    shuffle — the standard randomized-greedy baseline), or
    ``"degree"`` (edges at low-degree left vertices first, a well-known
    heuristic that helps on skewed instances).
    """
    caps = validate_capacities(graph, capacities)
    m = graph.n_edges
    if order == "canonical":
        perm = np.arange(m, dtype=np.int64)
    elif order == "random":
        perm = as_generator(seed).permutation(m).astype(np.int64)
    elif order == "degree":
        perm = np.argsort(graph.left_degrees[graph.edge_u], kind="stable").astype(np.int64)
    else:
        raise ValueError(f"unknown order {order!r}")

    left_free = np.ones(graph.n_left, dtype=bool)
    right_residual = caps.copy()
    mask = np.zeros(m, dtype=bool)
    edge_u = graph.edge_u
    edge_v = graph.edge_v
    for e in perm.tolist():
        u = edge_u[e]
        v = edge_v[e]
        if left_free[u] and right_residual[v] > 0:
            mask[e] = True
            left_free[u] = False
            right_residual[v] -= 1
    return mask


def is_maximal_allocation(
    graph: BipartiteGraph, capacities: np.ndarray, edge_mask: np.ndarray
) -> bool:
    """Check that no edge can be added without violating a constraint."""
    caps = validate_capacities(graph, capacities)
    edge_mask = np.asarray(edge_mask, dtype=bool)
    left_used = np.zeros(graph.n_left, dtype=np.int64)
    right_used = np.zeros(graph.n_right, dtype=np.int64)
    np.add.at(left_used, graph.edge_u[edge_mask], 1)
    np.add.at(right_used, graph.edge_v[edge_mask], 1)
    if np.any(left_used > 1) or np.any(right_used > caps):
        return False  # not even feasible
    addable = (~edge_mask) & (left_used[graph.edge_u] == 0) & (
        right_used[graph.edge_v] < caps[graph.edge_v]
    )
    return not bool(np.any(addable))
