"""Exact allocation via the max-flow reduction.

``solve_exact`` builds the standard flow network (source → L with unit
capacity, original edges with unit capacity, R → sink with capacity
``C_v``) and runs :class:`repro.baselines.dinic.DinicSolver`.  By flow
integrality the value equals both the maximum integral allocation size
and the maximum fractional allocation weight (Definition 6) — the
denominator of every approximation ratio reported by the experiment
suite.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.dinic import DinicSolver
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.capacities import validate_capacities
from repro.graphs.instances import AllocationInstance

__all__ = ["ExactSolution", "solve_exact", "optimum_value"]


@dataclass(frozen=True)
class ExactSolution:
    """An optimal integral allocation.

    ``edge_mask`` selects the allocation edges (canonical edge order);
    ``value`` is its cardinality = OPT = maximum fractional weight.
    """

    value: int
    edge_mask: np.ndarray

    def edges(self, graph: BipartiteGraph) -> list[tuple[int, int]]:
        ids = np.nonzero(self.edge_mask)[0]
        return [(int(graph.edge_u[e]), int(graph.edge_v[e])) for e in ids]


def solve_exact(
    graph: BipartiteGraph, capacities: np.ndarray
) -> ExactSolution:
    """Compute a maximum allocation exactly.

    Node layout: ``0`` = source, ``1 + u`` for ``u ∈ L``,
    ``1 + n_left + v`` for ``v ∈ R``, last = sink.
    """
    caps = validate_capacities(graph, capacities)
    n_nodes = 2 + graph.n_left + graph.n_right
    source = 0
    sink = n_nodes - 1
    solver = DinicSolver(n_nodes)
    for u in range(graph.n_left):
        solver.add_edge(source, 1 + u, 1)
    edge_arcs = np.empty(graph.n_edges, dtype=np.int64)
    for e in range(graph.n_edges):
        u = int(graph.edge_u[e])
        v = int(graph.edge_v[e])
        edge_arcs[e] = solver.add_edge(1 + u, 1 + graph.n_left + v, 1)
    for v in range(graph.n_right):
        solver.add_edge(1 + graph.n_left + v, sink, int(caps[v]))

    value = solver.max_flow(source, sink)
    mask = np.zeros(graph.n_edges, dtype=bool)
    for e in range(graph.n_edges):
        if solver.flow_on(int(edge_arcs[e])) > 0:
            mask[e] = True
    assert int(mask.sum()) == value, "flow decomposition mismatch"
    return ExactSolution(value=value, edge_mask=mask)


def optimum_value(instance: AllocationInstance) -> int:
    """OPT of an instance (both integral and fractional, see module doc)."""
    return solve_exact(instance.graph, instance.capacities).value
