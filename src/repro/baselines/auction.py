"""Sequential auction algorithm for allocation (classic comparator).

Bertsekas-style auction adapted to unit-demand bidders (L) and
capacitated items (R): each free bidder bids on its best item at the
item's current price + increment ε; an item holding more winners than
capacity evicts its lowest-value assignment.  With ε-scaling this is a
classical near-optimal sequential algorithm; here values are uniform
(cardinality objective) so the auction reduces to a price-guided
augmenting process.  It serves as an additional *sequential* baseline
in the experiment tables — a sanity anchor that is neither greedy nor
flow-based.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.capacities import validate_capacities
from repro.utils.validation import check_fraction

__all__ = ["AuctionResult", "auction_allocation"]


@dataclass(frozen=True)
class AuctionResult:
    edge_mask: np.ndarray
    iterations: int
    prices: np.ndarray

    @property
    def size(self) -> int:
        return int(self.edge_mask.sum())


def auction_allocation(
    graph: BipartiteGraph,
    capacities: np.ndarray,
    *,
    epsilon: float = 0.1,
    max_iterations: int | None = None,
) -> AuctionResult:
    """Run the auction to completion (no free bidder can profitably bid).

    With unit values, bidder ``u``'s profit for item ``v`` is
    ``1 − price_v``; it bids while some neighbour has price < 1.  An
    item at capacity evicts its earliest assignment when outbid (FIFO —
    value ties make eviction order immaterial to the final size, which
    is within ``ε·n`` of optimal by the standard auction argument).
    """
    caps = validate_capacities(graph, capacities)
    epsilon = check_fraction(epsilon, "epsilon")
    if max_iterations is None:
        max_iterations = 8 * (graph.n_left + graph.n_edges) * max(1, int(1.0 / epsilon))

    prices = np.zeros(graph.n_right, dtype=np.float64)
    owner_edges: list[list[int]] = [[] for _ in range(graph.n_right)]
    assignment = np.full(graph.n_left, -1, dtype=np.int64)  # edge id per bidder

    free = [u for u in range(graph.n_left) if graph.left_degrees[u] > 0]
    iterations = 0
    while free and iterations < max_iterations:
        iterations += 1
        u = free.pop()
        row_start = graph.left_indptr[u]
        nbrs = graph.left_neighbors(u)
        # Best = cheapest neighbour (uniform values).
        local_prices = prices[nbrs]
        best_idx = int(np.argmin(local_prices))
        best_price = float(local_prices[best_idx])
        if best_price >= 1.0:
            continue  # no profitable item left for u
        v = int(nbrs[best_idx])
        eid = int(graph.left_edge[row_start + best_idx])

        owner_edges[v].append(eid)
        assignment[u] = eid
        if len(owner_edges[v]) > caps[v]:
            evicted_edge = owner_edges[v].pop(0)
            evicted_bidder = int(graph.edge_u[evicted_edge])
            assignment[evicted_bidder] = -1
            free.append(evicted_bidder)
            # Item is contested: raise the price.
            prices[v] += epsilon
        elif len(owner_edges[v]) == caps[v]:
            prices[v] += epsilon

    mask = np.zeros(graph.n_edges, dtype=bool)
    for eid in assignment[assignment >= 0].tolist():
        mask[eid] = True
    return AuctionResult(edge_mask=mask, iterations=iterations, prices=prices)
