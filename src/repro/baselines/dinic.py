"""Dinic maximum-flow, implemented from scratch.

This is the repository's exact-optimum oracle.  The allocation problem
reduces to max-flow (source → every ``u ∈ L`` with capacity 1, edge
``(u, v)`` with capacity 1, every ``v ∈ R`` → sink with capacity
``C_v``), and because the constraint matrix is totally unimodular the
maximum *fractional* allocation weight equals the maximum *integral*
allocation size — so one Dinic run prices both denominators used by the
approximation measurements.

The same solver powers the exact Nash–Williams arboricity decision
network in :mod:`repro.graphs.arboricity`.

Implementation notes: iterative BFS/DFS (no recursion — graphs can be
deep), paired-arc residual representation in flat Python lists.  Flow
values and capacities are integers throughout; ``INF`` is a large int,
not ``float('inf')``, so arithmetic stays exact.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

__all__ = ["DinicSolver", "INF_CAPACITY"]

INF_CAPACITY = 1 << 60


class DinicSolver:
    """Residual network with Dinic's blocking-flow max-flow.

    Arcs are stored as parallel lists; arc ``i`` and ``i ^ 1`` are
    residual partners.  ``add_edge`` returns the forward arc id so
    callers can read off the final flow (``flow_on``) — the exact
    allocation extractor needs per-edge flows, and the arboricity
    decision procedure needs min-cut sides (``min_cut_source_side``).
    """

    def __init__(self, n_nodes: int):
        if n_nodes < 1:
            raise ValueError(f"network needs at least one node, got {n_nodes}")
        self.n_nodes = n_nodes
        self._head: list[list[int]] = [[] for _ in range(n_nodes)]
        self._to: list[int] = []
        self._cap: list[int] = []
        self._initial_cap: list[int] = []

    def add_edge(self, u: int, v: int, capacity: int) -> int:
        """Add a directed arc ``u → v``; returns the forward arc id."""
        if not (0 <= u < self.n_nodes and 0 <= v < self.n_nodes):
            raise ValueError(f"arc endpoints ({u}, {v}) out of range")
        if capacity < 0:
            raise ValueError(f"capacity must be non-negative, got {capacity}")
        arc = len(self._to)
        self._to.append(v)
        self._cap.append(int(capacity))
        self._initial_cap.append(int(capacity))
        self._head[u].append(arc)
        self._to.append(u)
        self._cap.append(0)
        self._initial_cap.append(0)
        self._head[v].append(arc + 1)
        return arc

    @property
    def n_arcs(self) -> int:
        return len(self._to)

    def flow_on(self, arc: int) -> int:
        """Flow currently routed on forward arc ``arc``."""
        if arc % 2 != 0:
            raise ValueError("flow_on expects a forward arc id (even)")
        return self._initial_cap[arc] - self._cap[arc]

    def _bfs_levels(self, source: int, sink: int) -> Optional[list[int]]:
        level = [-1] * self.n_nodes
        level[source] = 0
        queue = deque([source])
        while queue:
            u = queue.popleft()
            for arc in self._head[u]:
                v = self._to[arc]
                if self._cap[arc] > 0 and level[v] < 0:
                    level[v] = level[u] + 1
                    queue.append(v)
        return level if level[sink] >= 0 else None

    def _blocking_flow(self, source: int, sink: int, level: list[int]) -> int:
        """Send a blocking flow along the level graph, iteratively.

        A DFS stack of (node, arc-iterator-index) pairs with the usual
        current-arc optimisation (``it``): arcs proven useless for this
        level graph are never rescanned.
        """
        total = 0
        it = [0] * self.n_nodes
        while True:
            # Find one augmenting path in the level graph.
            path_arcs: list[int] = []
            u = source
            while u != sink:
                advanced = False
                while it[u] < len(self._head[u]):
                    arc = self._head[u][it[u]]
                    v = self._to[arc]
                    if self._cap[arc] > 0 and level[v] == level[u] + 1:
                        path_arcs.append(arc)
                        u = v
                        advanced = True
                        break
                    it[u] += 1
                if not advanced:
                    if u == source:
                        return total
                    # Dead end: retreat, burn the arc that led here.
                    dead_arc = path_arcs.pop()
                    u = self._to[dead_arc ^ 1]
                    it[u] += 1
            # Augment along the found path.
            bottleneck = min(self._cap[arc] for arc in path_arcs)
            for arc in path_arcs:
                self._cap[arc] -= bottleneck
                self._cap[arc ^ 1] += bottleneck
            total += bottleneck
            # Restart the walk from the source, reusing arc pointers;
            # saturated arcs will be skipped via the cap check.
            # (Pointers of nodes on the path may now point at saturated
            # arcs; the cap check in the walk handles that.)

    def max_flow(self, source: int, sink: int) -> int:
        """Run Dinic to completion; returns the max-flow value.

        May be called once per network instance (residual capacities
        are consumed).
        """
        if source == sink:
            raise ValueError("source and sink must differ")
        flow = 0
        while True:
            level = self._bfs_levels(source, sink)
            if level is None:
                return flow
            flow += self._blocking_flow(source, sink, level)

    def min_cut_source_side(self, source: int) -> list[bool]:
        """After ``max_flow``, vertices reachable from ``source`` in the
        residual network — the source side of a minimum cut."""
        seen = [False] * self.n_nodes
        seen[source] = True
        queue = deque([source])
        while queue:
            u = queue.popleft()
            for arc in self._head[u]:
                v = self._to[arc]
                if self._cap[arc] > 0 and not seen[v]:
                    seen[v] = True
                    queue.append(v)
        return seen
