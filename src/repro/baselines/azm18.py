"""The prior state of the art: AZM18 run straight in MPC (§1.2.1).

Agrawal–Zadimoghaddam–Mirrokni's proportional allocation reaches a
``(1+O(ε))``-approximate *fractional* allocation in ``O(log(|R|/ε)/ε²)``
LOCAL rounds, and because each round only moves polylog-size messages
per edge it translates to sublinear MPC at **one MPC round per LOCAL
round** — the ``O(log n)`` baseline this paper's ``Õ(√log λ)`` result
improves on.  The experiment tables quote this driver's round count as
the "prior art" column.

The dynamics are byte-identical to Algorithm 1 (this paper's §3.1 *is*
AZM18's algorithm); only the round budget and the round-accounting
differ, which is why this module is a thin driver over
:class:`ProportionalRun` rather than a re-implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.core import params
from repro.core.fractional import FractionalAllocation
from repro.core.proportional import ProportionalRun
from repro.graphs.instances import AllocationInstance
from repro.utils.validation import check_fraction

__all__ = ["AZM18Result", "solve_azm18_mpc"]


@dataclass(frozen=True)
class AZM18Result:
    """Outcome of the baseline run."""

    allocation: FractionalAllocation
    match_weight: float
    local_rounds: int
    mpc_rounds: int      # = local_rounds (1:1 simulation)
    epsilon: float
    guarantee: float
    meta: dict[str, Any]


def solve_azm18_mpc(
    instance: AllocationInstance,
    epsilon: float,
    *,
    tau: Optional[int] = None,
) -> AZM18Result:
    """Run the baseline for its published budget ``⌈log(|R|/ε)/ε²⌉``.

    Returns the (1+O(ε)) fractional allocation together with the MPC
    round bill — ``τ`` rounds, one per LOCAL round.
    """
    epsilon = check_fraction(epsilon, "epsilon")
    if tau is None:
        tau = params.tau_azm18(max(2, instance.graph.n_right), epsilon)
    run = ProportionalRun(instance.graph, instance.capacities, epsilon)
    run.run(tau)
    allocation = run.fractional_allocation().require_feasible(
        instance.graph, instance.capacities, tol=1e-6
    )
    return AZM18Result(
        allocation=allocation,
        match_weight=run.match_weight(),
        local_rounds=tau,
        mpc_rounds=tau,
        epsilon=epsilon,
        guarantee=params.approx_factor_one_plus_eps(epsilon, k=1.0),
        meta={"mode": "azm18_mpc_baseline"},
    )
