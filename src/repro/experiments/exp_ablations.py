"""E10 — ablations of the design choices DESIGN.md calls out.

(a) **Threshold width** (Algorithm 3): constant ``k ∈ {¼, 1, 2, 4}``
    thresholds — Theorem 16 predicts graceful degradation to
    ``2+(2k+8)ε``.
(b) **Estimator**: stratified (Lemma 11's form) vs pooled (the paper's
    literal line-5 rescale) error at a fixed small budget.
(c) **Phase length B**: longer phases reuse staler groups; Lemma 11's
    spread term ``(1+ε)^B`` predicts growing error at a fixed budget.
"""

from __future__ import annotations

from repro.analysis.concentration import collect_error_quantiles
from repro.baselines.exact import optimum_value
from repro.core import params
from repro.core.proportional import ConstantThresholds, ProportionalRun
from repro.core.sampled import SampledRun
from repro.experiments.harness import Scale, register
from repro.graphs.generators import planted_dense_core_instance, union_of_forests
from repro.utils.tables import Table

_SCALE_FACTOR = {"smoke": 1, "normal": 4, "full": 10}

EPSILON = 0.2


@register(
    "e10",
    "Ablations: thresholds, estimator, phase length",
    "T16 threshold robustness; L11 estimator form and (1+eps)^B spread",
)
def run(*, scale: Scale = "normal", seed: int = 0) -> Table:
    f = _SCALE_FACTOR[scale]
    table = Table(title="E10: ablations")

    # (a) threshold width on Algorithm 3.
    inst = union_of_forests(30 * f, 24 * f, 3, capacity=2, seed=seed)
    opt = optimum_value(inst)
    tau = params.tau_two_approx(3, EPSILON)
    for k in (0.25, 1.0, 2.0, 4.0):
        run_obj = ProportionalRun(
            inst.graph, inst.capacities, EPSILON, thresholds=ConstantThresholds(k)
        ).run(tau)
        table.add_row(
            ablation="threshold_k",
            setting=k,
            ratio=round(opt / max(run_obj.match_weight(), 1e-12), 4),
            predicted_bound=round(params.approx_factor_adaptive(EPSILON, max(k, 1.0)), 3),
            rounds=tau,
        )

    # (b) estimator form at a fixed small budget.
    dense = planted_dense_core_instance(3 * f, 3 * f, 15 * f, 15 * f, seed=seed)
    for estimator in ("stratified", "pooled"):
        run_obj = SampledRun(
            dense.graph, dense.capacities, EPSILON, block=2, sample_budget=6,
            estimator=estimator, sampler="fast", seed=seed,
        )
        run_obj.run_rounds(8)
        beta_q, alloc_q = collect_error_quantiles(run_obj.phase_reports)
        table.add_row(
            ablation="estimator",
            setting=estimator,
            beta_err_q99=round(beta_q.q99, 5),
            alloc_err_q99=round(alloc_q.q99, 5),
        )

    # (c) phase length at a fixed small budget.
    for block in (1, 2, 4, 8):
        run_obj = SampledRun(
            dense.graph, dense.capacities, EPSILON, block=block, sample_budget=6,
            sampler="fast", seed=seed,
        )
        run_obj.run_rounds(8)
        beta_q, alloc_q = collect_error_quantiles(run_obj.phase_reports)
        table.add_row(
            ablation="phase_length_B",
            setting=block,
            spread_bound=round((1 + EPSILON) ** block, 3),
            beta_err_q99=round(beta_q.q99, 5),
            alloc_err_q99=round(alloc_q.q99, 5),
        )
    return table
