"""CLI for the experiment suite.

Examples::

    python -m repro.experiments e1
    python -m repro.experiments --exp e5 --scale full --seed 3
    python -m repro.experiments e5 --backend reference --substrate object
    python -m repro.experiments all --scale smoke
    python -m repro.experiments --list

``--backend`` / ``--substrate`` select the engine driving every solve
(a :class:`repro.api.SolverConfig` activated for the run — the scoped
replacement for exporting ``REPRO_KERNEL_BACKEND`` /
``REPRO_MPC_SUBSTRATE`` around the harness).
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.harness import (
    REGISTRY,
    _ensure_loaded,
    run_and_save,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Run the theorem-driven experiment suite (e0-e12).",
    )
    parser.add_argument(
        "experiment", nargs="?", default=None,
        help="experiment id (e0..e12), 'all', or 'list'",
    )
    parser.add_argument(
        "--exp", default=None, metavar="ID",
        help="experiment id to run (flag form of the positional)",
    )
    parser.add_argument(
        "--list", action="store_true",
        help="print the id/title/claim table of registered experiments",
    )
    parser.add_argument("--scale", choices=["smoke", "normal", "full"], default="normal")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--backend", default=None,
        help="kernel backend driving every solve (repro.registry "
             "kind 'kernel_backend')",
    )
    parser.add_argument(
        "--substrate", default=None,
        help="faithful-mode MPC substrate (kind 'mpc_substrate')",
    )
    args = parser.parse_args(argv)

    config = None
    if args.backend is not None or args.substrate is not None:
        from repro.api import SolverConfig

        try:
            config = SolverConfig(backend=args.backend, substrate=args.substrate)
        except ValueError as exc:
            print(exc, file=sys.stderr)
            return 2

    _ensure_loaded()
    if args.list or args.experiment == "list":
        from repro.utils.tables import Table

        table = Table(
            "Registered experiments", columns=["id", "title", "claim"]
        )
        for exp_id in sorted(REGISTRY):
            spec = REGISTRY[exp_id]
            table.add_row(id=exp_id, title=spec.title, claim=spec.claim)
        print(table.to_ascii())
        return 0

    if args.exp is not None and args.experiment is not None:
        print("give either a positional experiment id or --exp, not both",
              file=sys.stderr)
        return 2
    experiment = args.exp if args.exp is not None else args.experiment
    if experiment is None:
        parser.print_usage(sys.stderr)
        print("an experiment id, 'all', or --list is required", file=sys.stderr)
        return 2

    targets = sorted(REGISTRY) if experiment == "all" else [experiment]
    for exp_id in targets:
        if exp_id not in REGISTRY:
            print(
                f"unknown experiment {exp_id!r}; "
                f"valid: {', '.join(sorted(REGISTRY))}",
                file=sys.stderr,
            )
            return 2
        run_and_save(exp_id, scale=args.scale, seed=args.seed, config=config)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
