"""CLI for the experiment suite.

Examples::

    python -m repro.experiments e1
    python -m repro.experiments e5 --scale full --seed 3
    python -m repro.experiments e5 --backend reference --substrate object
    python -m repro.experiments all --scale smoke
    python -m repro.experiments list

``--backend`` / ``--substrate`` select the engine driving every solve
(a :class:`repro.api.SolverConfig` activated for the run — the scoped
replacement for exporting ``REPRO_KERNEL_BACKEND`` /
``REPRO_MPC_SUBSTRATE`` around the harness).
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.harness import (
    REGISTRY,
    _ensure_loaded,
    run_and_save,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Run the theorem-driven experiment suite (e0-e12).",
    )
    parser.add_argument("experiment", help="experiment id (e0..e12), 'all', or 'list'")
    parser.add_argument("--scale", choices=["smoke", "normal", "full"], default="normal")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--backend", default=None,
        help="kernel backend driving every solve (repro.registry "
             "kind 'kernel_backend')",
    )
    parser.add_argument(
        "--substrate", default=None,
        help="faithful-mode MPC substrate (kind 'mpc_substrate')",
    )
    args = parser.parse_args(argv)

    config = None
    if args.backend is not None or args.substrate is not None:
        from repro.api import SolverConfig

        try:
            config = SolverConfig(backend=args.backend, substrate=args.substrate)
        except ValueError as exc:
            print(exc, file=sys.stderr)
            return 2

    _ensure_loaded()
    if args.experiment == "list":
        for exp_id in sorted(REGISTRY):
            spec = REGISTRY[exp_id]
            print(f"{exp_id:5s} {spec.title}")
            print(f"      claim: {spec.claim}")
        return 0

    targets = sorted(REGISTRY) if args.experiment == "all" else [args.experiment]
    for exp_id in targets:
        if exp_id not in REGISTRY:
            print(f"unknown experiment {exp_id!r}; try 'list'", file=sys.stderr)
            return 2
        run_and_save(exp_id, scale=args.scale, seed=args.seed, config=config)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
