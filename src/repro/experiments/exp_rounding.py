"""E7 — §6 rounding: E[|M|] ≥ wt(M_f)/9, best-of-copies, repair.

Per family: the fractional weight, the Monte-Carlo mean of one-shot
rounding (against the /9 bound), the best of O(log n) copies (the whp
variant), and the greedy-repair extension (E7b ablation).  The /9
bound is loose by design — the measured means should clear it with a
wide margin, and repair should recover most of the remaining gap.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.exact import optimum_value
from repro.core.local_driver import solve_fractional_fixed_tau
from repro.experiments.harness import Scale, register
from repro.graphs.generators import (
    load_balancing_instance,
    power_law_instance,
    star_instance,
    union_of_forests,
)
from repro.rounding.repair import greedy_fill
from repro.rounding.sampling import (
    default_copies,
    expected_size_lower_bound,
    round_best_of,
    round_once,
)
from repro.utils.tables import Table

_SCALE_FACTOR = {"smoke": 1, "normal": 4, "full": 10}
_TRIALS = {"smoke": 30, "normal": 200, "full": 500}

EPSILON = 0.2


def _families(scale: str, seed: int):
    f = _SCALE_FACTOR[scale]
    return [
        union_of_forests(40 * f, 30 * f, 3, capacity=2, seed=seed),
        star_instance(20 * f, center_capacity=8 * f),
        power_law_instance(40 * f, 12 * f, mean_left_degree=3, seed=seed),
        load_balancing_instance(40 * f, 8 * f, locality=3, seed=seed),
    ]


@register(
    "e7",
    "Randomized rounding quality",
    "S6: E[|M|] >= wt(M_f)/9; whp via O(log n) parallel copies",
)
def run(*, scale: Scale = "normal", seed: int = 0) -> Table:
    trials = _TRIALS[scale]
    table = Table(title="E7: rounding — expectation bound, best-of, repair")
    for inst in _families(scale, seed):
        frac = solve_fractional_fixed_tau(inst, EPSILON).allocation
        sizes = [
            round_once(inst.graph, inst.capacities, frac, seed=seed * trials + t).size
            for t in range(trials)
        ]
        mean = float(np.mean(sizes))
        bound = expected_size_lower_bound(frac.weight)
        copies = default_copies(inst.graph.n_vertices)
        best = round_best_of(
            inst.graph, inst.capacities, frac, copies=copies, seed=seed
        )
        filled = greedy_fill(inst.graph, inst.capacities, best.edge_mask, seed=seed)
        opt = optimum_value(inst)
        table.add_row(
            family=inst.name,
            frac_weight=round(frac.weight, 2),
            bound_w_over_9=round(bound, 2),
            mean_one_shot=round(mean, 2),
            bound_holds=mean >= bound - 3 * float(np.std(sizes)) / np.sqrt(trials),
            best_of_copies=best.size,
            copies=copies,
            repaired=int(filled.sum()),
            opt=opt,
            repaired_ratio=round(opt / max(1, int(filled.sum())), 3),
        )
    table.add_note(f"{trials} one-shot trials per family; 'bound_holds' allows 3 standard errors")
    return table
