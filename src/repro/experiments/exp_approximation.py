"""E2 — the (2+10ε) fractional guarantee across families and ε.

For every generator family and ε ∈ sweep, run Algorithm 1 at the
Theorem-9 budget and report OPT / MatchWeight against the guarantee,
alongside the greedy and auction integral baselines.  The expected
pattern: measured ratios sit far below the worst-case bound (the bound
is tight only on adversarial level structures), and never above it.
"""

from __future__ import annotations

from repro.analysis.metrics import approximation_ratio
from repro.baselines.auction import auction_allocation
from repro.baselines.exact import optimum_value
from repro.baselines.greedy import greedy_allocation
from repro.core import params
from repro.core.local_driver import solve_fractional_fixed_tau
from repro.experiments.harness import Scale, register
from repro.graphs.generators import (
    adwords_instance,
    complete_bipartite_instance,
    erdos_renyi_instance,
    grid_instance,
    load_balancing_instance,
    planted_dense_core_instance,
    power_law_instance,
    star_instance,
    union_of_forests,
)
from repro.utils.tables import Table

_EPS_SWEEP: dict[str, list[float]] = {
    "smoke": [0.25],
    "normal": [0.05, 0.1, 0.25],
    "full": [0.05, 0.1, 0.25],
}

_SCALE_FACTOR = {"smoke": 1, "normal": 4, "full": 12}


def _families(scale: str, seed: int):
    f = _SCALE_FACTOR[scale]
    return [
        union_of_forests(30 * f, 24 * f, 3, capacity=2, seed=seed),
        star_instance(20 * f, center_capacity=10 * f),
        complete_bipartite_instance(3 * f, 3 * f, capacity=2),
        grid_instance(4 * f, 5 * f),
        erdos_renyi_instance(20 * f, 16 * f, 60 * f, capacity=2, seed=seed),
        power_law_instance(30 * f, 10 * f, mean_left_degree=3, seed=seed),
        load_balancing_instance(40 * f, 8 * f, locality=3, seed=seed),
        planted_dense_core_instance(2 * f, 2 * f, 20 * f, 20 * f, seed=seed),
        adwords_instance(30 * f, 10 * f, seed=seed),
    ]


@register(
    "e2",
    "Approximation ratio across families and epsilon",
    "T9: OPT <= (2+10eps) * MatchWeight at the tau(lambda, eps) budget",
)
def run(*, scale: Scale = "normal", seed: int = 0) -> Table:
    table = Table(title="E2: fractional approximation vs guarantee")
    worst = 0.0
    for eps in _EPS_SWEEP[scale]:
        for inst in _families(scale, seed):
            res = solve_fractional_fixed_tau(inst, eps)
            opt = optimum_value(inst)
            ratio = approximation_ratio(opt, res.match_weight)
            worst = max(worst, ratio)
            greedy = int(
                greedy_allocation(inst.graph, inst.capacities, order="random", seed=seed).sum()
            )
            auction = auction_allocation(inst.graph, inst.capacities).size
            table.add_row(
                family=inst.name,
                eps=eps,
                opt=opt,
                match_weight=round(res.match_weight, 2),
                ratio=round(ratio, 4),
                guarantee=params.approx_factor_two_regime(eps),
                ok=ratio <= params.approx_factor_two_regime(eps) + 1e-9,
                rounds=res.rounds,
                greedy_ratio=round(approximation_ratio(opt, greedy), 3),
                auction_ratio=round(approximation_ratio(opt, auction), 3),
            )
    table.add_note(f"worst measured ratio: {worst:.4f} (bound held everywhere)")
    return table
