"""E12 (extension) — two-sided b-matching with the proportional dynamics.

§1.2.1 leaves ``o(log n)``-round constant-approximate b-matching open
and calls this paper "the first step".  This extension experiment runs
the natural two-sided generalization of Algorithm 1 (left vertices
distribute ``b_u`` units proportionally) against the exact optimum and
the greedy ½-approximation across b-value scales, measuring how the
empirical ratio behaves — data for the open question, not a theorem.
"""

from __future__ import annotations

import numpy as np

from repro.bmatching.exact import optimum_bmatching_value
from repro.bmatching.greedy import greedy_bmatching
from repro.bmatching.problem import BMatchingInstance
from repro.core import params
from repro.experiments.harness import Scale, register
from repro.graphs import build_graph
from repro.bmatching.proportional import proportional_bmatching
from repro.utils.rng import as_generator
from repro.utils.tables import Table

_SIZES: dict[str, tuple[int, int, int, int]] = {
    # scale -> (n_left, n_right, m, repetitions)
    "smoke": (15, 12, 40, 1),
    "normal": (60, 48, 200, 3),
    "full": (200, 160, 800, 5),
}

EPSILON = 0.2


def _random_instance(n_left, n_right, m, bmax, rng):
    chosen = rng.choice(n_left * n_right, size=m, replace=False)
    g = build_graph(
        n_left, n_right,
        (chosen // n_right).astype(np.int64),
        (chosen % n_right).astype(np.int64),
    )
    return BMatchingInstance(
        graph=g,
        b_left=rng.integers(1, bmax + 1, size=n_left),
        b_right=rng.integers(1, bmax + 1, size=n_right),
        name=f"bm(bmax={bmax})",
    )


@register(
    "e12",
    "Extension: two-sided b-matching proportional dynamics",
    "S1.2.1 open question: empirical behaviour of the generalized dynamics "
    "(no guarantee claimed by the paper)",
)
def run(*, scale: Scale = "normal", seed: int = 0) -> Table:
    n_left, n_right, m, reps = _SIZES[scale]
    table = Table(title="E12: two-sided b-matching (extension study)")
    for bmax in (1, 2, 4, 8):
        ratios = []
        greedy_ratios = []
        for rep in range(reps):
            rng = as_generator(seed * 1000 + bmax * 10 + rep)
            inst = _random_instance(n_left, n_right, m, bmax, rng)
            opt = optimum_bmatching_value(inst)
            tau = params.tau_azm18(n_right, EPSILON)
            frac = proportional_bmatching(inst, EPSILON, tau)
            greedy = int(greedy_bmatching(inst, seed=rep).sum())
            ratios.append(opt / max(frac.weight, 1e-12))
            greedy_ratios.append(opt / max(greedy, 1))
        table.add_row(
            b_max=bmax,
            n=n_left + n_right,
            m=m,
            frac_ratio_mean=round(float(np.mean(ratios)), 3),
            frac_ratio_worst=round(float(np.max(ratios)), 3),
            greedy_ratio_mean=round(float(np.mean(greedy_ratios)), 3),
            rounds=params.tau_azm18(n_right, EPSILON),
        )
    table.add_note(
        "bmax=1 is bipartite maximum matching; larger b stresses the "
        "unproven two-sided regime — ratios are data for the open question"
    )
    return table
