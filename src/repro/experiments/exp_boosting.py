"""E8 — boosting (2+ε) → (1+ε) (Theorem 1 / Appendix B).

Start from the full pipeline's constant-approximate integral
allocation (fractional → round → repair) and boost with the layered
framework at several ε targets; the deterministic eliminator provides
the reference ratio for the same k.  Expected shape: ratio marches
towards 1+1/k as k grows, with iteration counts growing steeply in k —
the exp(O(2^k)) the framework pays for parallelism.
"""

from __future__ import annotations

from repro.analysis.metrics import approximation_ratio
from repro.baselines.exact import optimum_value
from repro.boosting.boost import boost_allocation, k_for_epsilon
from repro.core.local_driver import solve_fractional_fixed_tau
from repro.experiments.harness import Scale, register
from repro.graphs.generators import power_law_instance, union_of_forests
from repro.rounding.repair import greedy_fill
from repro.rounding.sampling import round_best_of
from repro.utils.tables import Table

_SCALE_FACTOR = {"smoke": 1, "normal": 3, "full": 8}
_EPS_TARGETS = {"smoke": [0.5], "normal": [1.0, 0.5, 0.34, 0.25], "full": [1.0, 0.5, 0.34, 0.25, 0.2]}

BASE_EPS = 0.2


def _start_allocation(inst, seed):
    """The paper pipeline's hand-off point: the §6 rounded output
    *without* repair — a genuine Θ(1)-approximation (≈ wt/6 of the
    fractional weight survives), leaving boosting real work to do."""
    frac = solve_fractional_fixed_tau(inst, BASE_EPS).allocation
    rounded = round_best_of(inst.graph, inst.capacities, frac, copies=8, seed=seed)
    return rounded.edge_mask


@register(
    "e8",
    "Boosting a constant approximation to (1+eps)",
    "T1/App.B: GGM22 layered augmentation lifts the constant factor to 1+eps",
)
def run(*, scale: Scale = "normal", seed: int = 0) -> Table:
    f = _SCALE_FACTOR[scale]
    table = Table(title="E8: boosting ratio vs target epsilon")
    instances = [
        union_of_forests(40 * f, 30 * f, 3, capacity=2, seed=seed),
        power_law_instance(40 * f, 12 * f, mean_left_degree=3, seed=seed),
    ]
    for inst in instances:
        opt = optimum_value(inst)
        start = _start_allocation(inst, seed)
        start_ratio = approximation_ratio(opt, int(start.sum()))
        for eps in _EPS_TARGETS[scale]:
            k = k_for_epsilon(eps)
            layered = boost_allocation(
                inst, start, eps, mode="layered", seed=seed,
            )
            det = boost_allocation(inst, start, eps, mode="deterministic")
            table.add_row(
                family=inst.name,
                target_eps=eps,
                k=k,
                start_ratio=round(start_ratio, 3),
                layered_ratio=round(approximation_ratio(opt, layered.final_size), 3),
                det_ratio=round(approximation_ratio(opt, det.final_size), 3),
                target_ratio=round(1.0 + 1.0 / k, 3),
                det_within_target=approximation_ratio(opt, det.final_size)
                <= 1.0 + 1.0 / k + 1e-9,
                layered_iterations=layered.iterations_used,
                layered_augmentations=layered.augmentations,
            )
    table.add_note(
        "det_* is the sequential eliminator (the certified reference); the "
        "layered column is the randomized parallel framework"
    )
    return table
