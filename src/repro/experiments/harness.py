"""Experiment harness: registry, scales, result persistence.

Every experiment module exposes ``run(scale, seed) -> Table`` and
registers itself under its id (``e0`` … ``e12``; the full id set is
pinned by ``EXPECTED_EXPERIMENT_IDS`` and asserted against the
registry whenever the modules are loaded, so the registry and the
module list cannot silently drift apart).  Three scales:

* ``smoke`` — seconds; used by the test suite to keep every experiment
  permanently runnable;
* ``normal`` — the default for ``pytest benchmarks/``;
* ``full`` — the sizes quoted in EXPERIMENTS.md.

``run_and_save`` renders the table to both ASCII (stdout-friendly) and
markdown + JSON under ``benchmarks/results/`` so EXPERIMENTS.md can
cite regenerable artifacts.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Literal, Optional

from repro.utils.tables import Table

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.api import SolverConfig

__all__ = [
    "Scale",
    "ExperimentSpec",
    "EXPECTED_EXPERIMENT_IDS",
    "REGISTRY",
    "register",
    "get_experiment",
    "run_experiment",
    "run_and_save",
    "default_results_dir",
]

Scale = Literal["smoke", "normal", "full"]

_EXPERIMENT_MODULES = [
    "repro.experiments.exp_inventory",
    "repro.experiments.exp_round_complexity",
    "repro.experiments.exp_approximation",
    "repro.experiments.exp_n_independence",
    "repro.experiments.exp_sampling",
    "repro.experiments.exp_mpc_rounds",
    "repro.experiments.exp_lambda_guessing",
    "repro.experiments.exp_rounding",
    "repro.experiments.exp_boosting",
    "repro.experiments.exp_star_reduction",
    "repro.experiments.exp_ablations",
    "repro.experiments.exp_levelset_dynamics",
    "repro.experiments.exp_bmatching",
]

# One id per module above.  _ensure_loaded() asserts the registry
# matches exactly, so adding an experiment module without its id here
# (or vice versa) fails at first use instead of silently drifting.
EXPECTED_EXPERIMENT_IDS = tuple(f"e{i}" for i in range(len(_EXPERIMENT_MODULES)))


@dataclass(frozen=True)
class ExperimentSpec:
    """A registered experiment."""

    exp_id: str
    title: str
    claim: str                      # the paper statement being checked
    run: Callable[..., Table]       # run(scale=..., seed=...) -> Table


REGISTRY: dict[str, ExperimentSpec] = {}


def register(exp_id: str, title: str, claim: str):
    """Decorator: register a ``run(scale, seed)`` callable."""

    def deco(fn: Callable[..., Table]) -> Callable[..., Table]:
        if exp_id in REGISTRY:
            raise ValueError(f"duplicate experiment id {exp_id!r}")
        REGISTRY[exp_id] = ExperimentSpec(exp_id=exp_id, title=title, claim=claim, run=fn)
        return fn

    return deco


def _ensure_loaded() -> None:
    for module in _EXPERIMENT_MODULES:
        importlib.import_module(module)
    if set(REGISTRY) != set(EXPECTED_EXPERIMENT_IDS):
        missing = sorted(set(EXPECTED_EXPERIMENT_IDS) - set(REGISTRY))
        extra = sorted(set(REGISTRY) - set(EXPECTED_EXPERIMENT_IDS))
        raise ImportError(
            "experiment registry drifted from _EXPERIMENT_MODULES: "
            f"missing ids {missing}, unexpected ids {extra}"
        )


def get_experiment(exp_id: str) -> ExperimentSpec:
    _ensure_loaded()
    try:
        return REGISTRY[exp_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {exp_id!r}; available: {sorted(REGISTRY)}"
        ) from None


def run_experiment(
    exp_id: str,
    *,
    scale: Scale = "normal",
    seed: int = 0,
    config: Optional["SolverConfig"] = None,
) -> Table:
    """Run one experiment, optionally under an engine configuration.

    ``config`` is the harness's driver selection: when given, the run
    executes inside an activated :class:`repro.api.Engine`, so the
    config's kernel backend and MPC substrate drive every solve the
    experiment performs (the scoped replacement for exporting
    ``REPRO_KERNEL_BACKEND`` / ``REPRO_MPC_SUBSTRATE`` around the
    harness).  The selection is recorded as a table note so persisted
    results say which engine produced them.
    """
    spec = get_experiment(exp_id)
    if config is None:
        table = spec.run(scale=scale, seed=seed)
    else:
        from repro.api import Engine

        with Engine(config):
            table = spec.run(scale=scale, seed=seed)
        if config.backend is not None or config.substrate is not None:
            table.add_note(
                f"engine: backend={config.backend or 'active'} "
                f"substrate={config.substrate or 'active'}"
            )
    table.add_note(f"claim: {spec.claim}")
    table.add_note(f"scale={scale} seed={seed}")
    return table


def default_results_dir() -> Path:
    """``benchmarks/results`` under the repo root when the source tree
    is importable in place, else ``results/`` in the working directory.

    The canonical directory name is ``results`` everywhere (the name
    tests and EXPERIMENTS.md cite); the repo root is recognized by its
    packaging marker (``pyproject.toml`` or ``setup.py``).
    """
    here = Path(__file__).resolve()
    for parent in here.parents:
        if (parent / "pyproject.toml").exists() or (parent / "setup.py").exists():
            return parent / "benchmarks" / "results"
    return Path.cwd() / "results"


def run_and_save(
    exp_id: str,
    *,
    scale: Scale = "normal",
    seed: int = 0,
    results_dir: Path | None = None,
    echo: bool = True,
    config: Optional["SolverConfig"] = None,
) -> Table:
    """Run one experiment and persist its table (markdown + JSON)."""
    table = run_experiment(exp_id, scale=scale, seed=seed, config=config)
    out_dir = results_dir or default_results_dir()
    out_dir.mkdir(parents=True, exist_ok=True)
    (out_dir / f"{exp_id}.md").write_text(table.to_markdown() + "\n")
    (out_dir / f"{exp_id}.json").write_text(table.to_json() + "\n")
    if echo:
        print()
        print(table.to_ascii())
    return table
