"""E3 — the separation: rounds flat in n at fixed λ; AZM18 grows.

This is the paper's raison d'être.  Prior to this work the best
sublinear-MPC round bound for constant-approximate allocation was
``O(log n)`` (AZM18 simulated round-for-round); Theorem 2's analysis
shows the same dynamics certify a constant approximation after
``O(log λ)`` rounds.  Fix the contention core (λ ≈ 8) of the stress
family and grow n by widening the fringe 64×: the measured certificate
round must stay flat while the baseline's budget climbs with log n.
"""

from __future__ import annotations

from repro.analysis.theory import growth_exponent
from repro.core import params
from repro.core.local_driver import solve_fractional_until_certificate
from repro.experiments.harness import Scale, register
from repro.graphs.generators import slow_spread_instance
from repro.utils.tables import Table

_SIZES: dict[str, list[int]] = {
    # Width sweep: n grows linearly in width at fixed core (λ fixed).
    # Widths start beyond the knee width ≈ (1+ε)/ε · core where the
    # fringe-stabilization horizon (the λ-governed quantity) dominates
    # the core-stabilization horizon (which grows with log n): past the
    # knee the certificate round is flat in n — exactly T2's claim.
    "smoke": [128, 512],
    "normal": [128, 256, 512, 1024, 2048],
    "full": [128, 512, 2048, 8192, 16384],
}

EPSILON = 0.1
CORE = 8


@register(
    "e3",
    "Round count vs n at fixed arboricity",
    "T2 vs prior art: certificate round is O(log lambda), flat in n; AZM18 budget is O(log n)",
)
def run(*, scale: Scale = "normal", seed: int = 0) -> Table:
    table = Table(title=f"E3: n-independence at fixed core density (lambda≈{CORE})")
    ns: list[int] = []
    rounds: list[float] = []
    for width in _SIZES[scale]:
        inst = slow_spread_instance(CORE, width=width)
        res = solve_fractional_until_certificate(inst, EPSILON)
        n = inst.graph.n_vertices
        ns.append(n)
        rounds.append(res.rounds)
        table.add_row(
            n=n,
            m=inst.graph.n_edges,
            lambda_bound=CORE + 1,
            ours_rounds=res.rounds,
            ours_budget=params.tau_two_approx(CORE + 1, EPSILON),
            azm18_budget=params.tau_azm18(inst.graph.n_right, EPSILON),
            speedup_vs_azm18=round(
                params.tau_azm18(inst.graph.n_right, EPSILON) / max(1, res.rounds), 1
            ),
        )
    if len(ns) >= 2:
        expo = growth_exponent(ns, rounds)
        table.add_note(
            f"measured rounds ~ n^{expo:.3f} (flat ⇔ exponent ≈ 0) while the "
            f"AZM18 budget grows with log n"
        )
    return table
