"""E5 — MPC round complexity and space (Theorem 3/10).

Three comparisons per arboricity point:

1. **measured** MPC rounds of the full driver (simulate mode, known λ),
2. the **cost model**'s closed-form prediction for the same
   configuration, and
3. the **AZM18 baseline** bill ``O(log n/ε²)``.

Final faithful-mode rows at small scale execute every communication
step on the accounted cluster and report peak per-machine words
against the ``S = O(n^α)`` budget (zero violations required) — once
under the fixed sample budget and once under the adaptive budget
policy (DESIGN.md §13), whose per-phase budget trajectory and
decisions become table columns.  The shape note fits measured rounds
against ``√log λ·log log λ``.
"""

from __future__ import annotations

from repro.analysis.theory import shape_verdict
from repro.core import params
from repro.core.mpc_driver import solve_allocation_mpc
from repro.experiments.harness import Scale, register
from repro.graphs.generators import slow_spread_instance, union_of_forests
from repro.mpc.costmodel import MPCCostModel
from repro.utils.tables import Table

_SIZES: dict[str, tuple[int, list[int]]] = {
    # (width of the stress family, core sweep = lambda targets)
    "smoke": (3, [2, 4]),
    "normal": (4, [2, 4, 8, 16, 32]),
    "full": (4, [2, 4, 8, 16, 32, 64, 128]),
}

# Faithful rows: (n, space_slack) per scale.  The columnar substrate
# (DESIGN.md §7) makes cluster-accounted runs cheap enough to grow the
# faithful instance with the scale; slack grows with ball volume so the
# S-budget stays feasible.
_FAITHFUL_SIZES: dict[str, list[tuple[int, float]]] = {
    "smoke": [(16, 512.0)],
    "normal": [(16, 512.0), (48, 1024.0)],
    "full": [(16, 512.0), (48, 1024.0), (96, 2048.0)],
}

EPSILON = 0.2
ALPHA = 0.5


@register(
    "e5",
    "MPC rounds and space vs arboricity",
    "T3/T10: O(sqrt(log lambda) loglog lambda) MPC rounds, n^alpha local memory, "
    "O~(lambda n) total memory",
)
def run(*, scale: Scale = "normal", seed: int = 0) -> Table:
    width, ks = _SIZES[scale]
    table = Table(title="E5: MPC rounds (simulate) + space (faithful)")
    measured: list[float] = []
    for k in ks:
        inst = slow_spread_instance(k, width=width)
        lam = k + 1
        res = solve_allocation_mpc(inst, EPSILON, alpha=ALPHA, lam=lam, seed=seed)
        model = MPCCostModel(n=inst.graph.n_vertices, lam=lam, epsilon=EPSILON, alpha=ALPHA)
        measured.append(res.mpc_rounds)
        table.add_row(
            mode="simulate",
            lambda_bound=lam,
            n=inst.graph.n_vertices,
            m=inst.graph.n_edges,
            mpc_rounds=res.mpc_rounds,
            local_rounds=res.local_rounds,
            model_predicted=model.rounds_known_lambda(),
            azm18_rounds=model.baseline_rounds_azm18(),
            block=res.meta["block"],
            phases=res.ledger.phases,
        )

    # Phase-compression economics: eq. (4)'s B exceeds 1 only at
    # asymptotic n, so force B at a fixed λ to expose the τ/B·log B
    # trade-off the paper's compression buys (§3.2.1).
    k_fixed = ks[-1]
    inst = slow_spread_instance(k_fixed, width=width)
    for forced_b in (1, 2, 4, 8):
        res = solve_allocation_mpc(
            inst, EPSILON, alpha=ALPHA, lam=k_fixed + 1, seed=seed,
            block_override=forced_b,
        )
        table.add_row(
            mode=f"simulate(B={forced_b})",
            lambda_bound=k_fixed + 1,
            n=inst.graph.n_vertices,
            mpc_rounds=res.mpc_rounds,
            local_rounds=res.local_rounds,
            block=forced_b,
            phases=res.ledger.phases,
        )

    # Faithful rows: full cluster accounting, growing with the scale
    # (the columnar substrate's payoff — see BENCH_mpc_substrate.json).
    from repro.mpc.substrate import get_substrate

    for small_n, slack in _FAITHFUL_SIZES[scale]:
        inst = union_of_forests(small_n, small_n, 2, capacity=2, seed=seed)
        res = solve_allocation_mpc(
            inst, EPSILON, alpha=ALPHA, lam=2, mode="faithful", seed=seed,
            sample_budget=6, space_slack=slack,
        )
        s_words = int(slack * inst.graph.n_vertices**ALPHA)
        table.add_row(
            mode="faithful",
            lambda_bound=2,
            n=inst.graph.n_vertices,
            m=inst.graph.n_edges,
            mpc_rounds=res.mpc_rounds,
            local_rounds=res.local_rounds,
            peak_machine_words=res.ledger.peak_machine_words,
            machine_budget_words=s_words,
            space_violations=len(res.ledger.violations),
            substrate=get_substrate(),
        )

        # Same instance under the adaptive budget policy (DESIGN.md
        # §13): the per-phase budget trajectory becomes a column so the
        # throttle's decisions are auditable next to the fixed row.
        adaptive = solve_allocation_mpc(
            inst, EPSILON, alpha=ALPHA, lam=2, mode="faithful", seed=seed,
            sample_budget=6, space_slack=slack, budget_policy="adaptive",
        )
        accepted = [r for r in adaptive.ledger.trajectory if r["accepted"]]
        table.add_row(
            mode="faithful(adaptive)",
            lambda_bound=2,
            n=inst.graph.n_vertices,
            m=inst.graph.n_edges,
            mpc_rounds=adaptive.mpc_rounds,
            local_rounds=adaptive.local_rounds,
            peak_machine_words=adaptive.ledger.peak_machine_words,
            machine_budget_words=s_words,
            space_violations=len(adaptive.ledger.violations),
            substrate=get_substrate(),
            budget_trajectory="->".join(str(r["sample_budget"]) for r in accepted),
            budget_decisions=",".join(
                r["decision"] for r in adaptive.ledger.trajectory
            ),
            certificate_crosscheck=bool(adaptive.meta["certificate_crosscheck"]),
        )

    if len(ks) >= 2:
        verdict = shape_verdict(ks, measured)
        best = max(verdict, key=verdict.get)
        table.add_note(
            "MPC-round shape fit R² vs λ: "
            + ", ".join(f"{k2}={v:.3f}" for k2, v in sorted(verdict.items()))
            + f" → best: {best}"
        )
    table.add_note(
        "faithful mode executes every exchange on the accounted cluster; "
        "violations must be 0"
    )
    return table
