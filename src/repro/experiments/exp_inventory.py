"""E0 — workload inventory (the "Table 1" of the evaluation).

One row per generator family at the experiment scales: structural
profile (degrees, components, diameter), the generator's certified
arboricity bound, the measured degeneracy (λ ≤ degeneracy ≤ 2λ−1), and
the exact optimum.  Serves as the provenance table every other
experiment's instances are drawn from, and demonstrates the sandwich
``density ceiling ≤ λ ≤ degeneracy`` on every family.
"""

from __future__ import annotations

from repro.baselines.exact import optimum_value
from repro.experiments.harness import Scale, register
from repro.graphs import degeneracy, exact_arboricity, profile_graph
from repro.graphs.generators import (
    adwords_instance,
    complete_bipartite_instance,
    erdos_renyi_instance,
    grid_instance,
    load_balancing_instance,
    planted_dense_core_instance,
    power_law_instance,
    regular_instance,
    slow_spread_instance,
    star_instance,
    union_of_forests,
)
from repro.utils.tables import Table

_SCALE_FACTOR = {"smoke": 1, "normal": 4, "full": 10}


def _zoo(scale: str, seed: int):
    f = _SCALE_FACTOR[scale]
    return [
        union_of_forests(30 * f, 24 * f, 3, capacity=2, seed=seed),
        star_instance(20 * f),
        complete_bipartite_instance(3 * f, 3 * f),
        grid_instance(4 * f, 5 * f),
        erdos_renyi_instance(20 * f, 16 * f, 60 * f, seed=seed),
        power_law_instance(30 * f, 10 * f, seed=seed),
        regular_instance(10 * f, 3, seed=seed),
        load_balancing_instance(40 * f, 8 * f, locality=3, seed=seed),
        planted_dense_core_instance(2 * f, 2 * f, 20 * f, 20 * f, seed=seed),
        slow_spread_instance(2 * f, width=4),
        adwords_instance(30 * f, 10 * f, seed=seed),
    ]


@register(
    "e0",
    "Workload inventory",
    "Def. 4 sandwich: density ceiling <= lambda <= degeneracy <= 2*lambda-1 "
    "on every family; certified bounds hold",
)
def run(*, scale: Scale = "normal", seed: int = 0) -> Table:
    table = Table(title="E0: workload families and their structure")
    for inst in _zoo(scale, seed):
        prof = profile_graph(inst.graph)
        degen = prof.degeneracy
        row = dict(
            family=inst.name,
            n=inst.graph.n_vertices,
            m=inst.n_edges,
            max_deg=max(prof.left_degrees.maximum, prof.right_degrees.maximum),
            components=prof.n_components,
            diameter_lb=prof.diameter_lower_bound,
            density_ceiling=prof.density_ceiling,
            degeneracy=degen,
            lambda_certified=inst.arboricity_upper_bound,
            total_capacity=int(inst.capacities.sum()),
            opt=optimum_value(inst),
        )
        # Exact λ where affordable; verifies the certificate.
        if inst.n_edges <= 2500:
            lam = exact_arboricity(inst.graph).value
            row["lambda_exact"] = lam
            row["certificate_ok"] = (
                inst.arboricity_upper_bound is None
                or lam <= inst.arboricity_upper_bound
            )
            row["sandwich_ok"] = lam <= degen <= max(1, 2 * lam - 1) or lam == 0
        table.add_row(**row)
    table.add_note(
        "lambda_exact via matroid-union partitioning (validated certificates); "
        "degeneracy is the scalable proxy with λ ≤ degeneracy ≤ 2λ−1"
    )
    return table
