"""E11 — the densest part saturates first (Remark 1).

The intuition behind Theorem 2: the proportional dynamics saturate the
densest region quickly and then spread outward, which is why the
convergence horizon is governed by density (λ) rather than diameter-ish
quantities (log n).  On a planted dense-core instance we trace, per
round, the mean utilization (alloc/C) of core vs fringe right vertices
plus the level-set extremes — the core's utilization should cross 1
within a few rounds while the fringe drifts up slowly.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.metrics import utilization
from repro.core.proportional import ProportionalRun
from repro.experiments.harness import Scale, register
from repro.graphs.generators import planted_dense_core_instance
from repro.utils.tables import Table

_SIZES: dict[str, tuple[int, int, int]] = {
    # scale -> (core side, fringe factor, rounds)
    "smoke": (4, 8, 8),
    "normal": (12, 10, 24),
    "full": (24, 12, 40),
}

EPSILON = 0.15


@register(
    "e11",
    "Level-set dynamics on a planted dense core",
    "Remark 1: the dynamics saturate the densest part first, then spread",
)
def run(*, scale: Scale = "normal", seed: int = 0) -> Table:
    core, ff, rounds = _SIZES[scale]
    inst = planted_dense_core_instance(
        core, core, core * ff, core * ff, core_density=0.9, capacity=1, seed=seed
    )
    n_core_right = core  # generator layout: core right ids come first
    run_obj = ProportionalRun(inst.graph, inst.capacities, EPSILON)
    table = Table(title="E11: core vs fringe utilization per round")
    core_cross = None
    fringe_cross = None
    report_rounds = sorted(set(
        [1, 2, 3, 4] + list(range(5, rounds + 1, max(1, rounds // 8)))
    ))
    for r in range(1, rounds + 1):
        run_obj.step()
        util = utilization(inst.capacities, run_obj.alloc)
        core_util = float(np.mean(util[:n_core_right]))
        fringe_util = float(np.mean(util[n_core_right:]))
        if core_cross is None and core_util >= 0.8:
            core_cross = r
        if fringe_cross is None and fringe_util >= 0.8:
            fringe_cross = r
        if r in report_rounds:
            hist = run_obj.level_histogram()
            table.add_row(
                round=r,
                core_mean_util=round(core_util, 3),
                fringe_mean_util=round(fringe_util, 3),
                l0_size=int(hist[0]),
                top_size=int(hist[-1]),
                match_weight=round(run_obj.match_weight(), 2),
                saturated_frac=round(
                    float((run_obj.alloc >= run_obj.capacities / (1 + EPSILON)).mean()), 3
                ),
            )
    table.add_note(
        f"core mean utilization first ≥ 0.8 at round {core_cross}; "
        f"fringe first ≥ 0.8 at round {fringe_cross} — Remark 1 predicts "
        "core before fringe"
    )
    return table
