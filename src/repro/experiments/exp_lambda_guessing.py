"""E6 — the λ-guessing overhead is a constant factor (§3.2.2).

Four regimes per instance:

* ``known_budget`` — λ known, run the fixed Theorem-9 budget τ(λ) with
  no termination test at all (correct by Theorem 9; what Theorem 10's
  round bound bills);
* ``known_cert`` — λ known, but stop at the first per-phase
  certificate (strictly cheaper in practice);
* ``guessed`` — the literal §3.2.2 schedule: guesses λ_i = 2^(4^i),
  certificate tested only at the end of each guess's budget;
* ``guessed_eager`` — guessing with per-phase tests (our default).

The paper's claim bounds the *worst case*: Σ_i τ(λ_i)-budgets ≤ O(1) ×
τ(λ) (the ``model_overhead`` column).  The measured finding is
stronger and worth reporting: because the certificate usually fires
well before the worst-case budget, guessing is often *cheaper* than
the known-λ fixed budget — λ-obliviousness costs nothing on these
workloads.
"""

from __future__ import annotations

from repro.core.mpc_driver import solve_allocation_mpc
from repro.experiments.harness import Scale, register
from repro.graphs.generators import slow_spread_instance
from repro.mpc.costmodel import MPCCostModel
from repro.utils.tables import Table

_SIZES: dict[str, tuple[int, list[int]]] = {
    # (width of the stress family, core sweep = lambda targets)
    "smoke": (3, [8, 32]),
    "normal": (4, [8, 16, 32, 64, 128]),
    "full": (4, [8, 32, 128, 256, 512]),
}

EPSILON = 0.2
ALPHA = 0.5


@register(
    "e6",
    "Known-lambda vs lambda-guessing overhead",
    "S3.2.2: guessing sqrt(log lambda_i) = 2^i costs only a constant factor",
)
def run(*, scale: Scale = "normal", seed: int = 0) -> Table:
    width, ks = _SIZES[scale]
    table = Table(title="E6: lambda-guessing overhead")
    worst_vs_budget = 0.0
    for k in ks:
        inst = slow_spread_instance(k, width=width)
        lam = k + 1
        model = MPCCostModel(
            n=inst.graph.n_vertices, lam=lam, epsilon=EPSILON, alpha=ALPHA
        )
        known_budget = model.rounds_known_lambda()
        known_cert = solve_allocation_mpc(inst, EPSILON, alpha=ALPHA, lam=lam, seed=seed)
        guessed = solve_allocation_mpc(
            inst, EPSILON, alpha=ALPHA, seed=seed, certificate_cadence="per_guess"
        )
        eager = solve_allocation_mpc(inst, EPSILON, alpha=ALPHA, seed=seed)
        ratio_vs_budget = guessed.mpc_rounds / max(1, known_budget)
        worst_vs_budget = max(worst_vs_budget, ratio_vs_budget)
        table.add_row(
            lambda_bound=lam,
            known_budget_rounds=known_budget,
            known_cert_rounds=known_cert.mpc_rounds,
            guessed_rounds=guessed.mpc_rounds,
            guessed_eager_rounds=eager.mpc_rounds,
            guesses_tried=len(guessed.ledger.guesses),
            used_guess=guessed.meta["used_guess"],
            overhead_vs_budget=round(ratio_vs_budget, 2),
            model_worstcase_overhead=round(model.guessing_overhead(), 2),
        )
    table.add_note(
        f"worst guessed/known-budget ratio {worst_vs_budget:.2f} — the measured "
        "overhead never approaches the worst-case model column because the "
        "certificate fires before each guess's budget expires"
    )
    table.add_note(
        "finding: λ-obliviousness is effectively free here; the paper's "
        "constant-factor bound is the worst case (model_worstcase_overhead)"
    )
    return table
