"""E9 — the vertex-splitting reduction blows up arboricity (§1.1).

The remark after Theorem 2: a star whose center has capacity ``n−1``
has arboricity 1, but splitting the center into its capacity copies
yields a complete bipartite graph with arboricity Θ(n) — so reducing
allocation to matching forfeits every λ-parameterized bound.  This
table materializes the split graph, measures both arboricities, and
contrasts the round budgets each λ implies.
"""

from __future__ import annotations

from repro.core import params
from repro.core.local_driver import solve_fractional_until_certificate
from repro.experiments.harness import Scale, register
from repro.graphs import degeneracy, exact_arboricity
from repro.graphs.generators import star_instance
from repro.graphs.splitting import split_to_matching_instance
from repro.utils.tables import Table

_SIZES: dict[str, list[int]] = {
    "smoke": [4, 8],
    "normal": [4, 8, 16, 32, 64],
    "full": [4, 8, 16, 32, 64, 128, 256],
}

EPSILON = 0.1


@register(
    "e9",
    "Arboricity blow-up of the splitting reduction on stars",
    "Remark S1.1: splitting a capacity-(n-1) star center creates K_{n,n-1} — "
    "arboricity 1 → Θ(n)",
)
def run(*, scale: Scale = "normal", seed: int = 0) -> Table:
    table = Table(title="E9: star with center capacity n-1 — direct vs split")
    for n in _SIZES[scale]:
        inst = star_instance(n, center_capacity=n - 1 if n > 1 else 1)
        direct_rounds = solve_fractional_until_certificate(inst, EPSILON).rounds
        split = split_to_matching_instance(inst.graph, inst.capacities)
        if split.graph.n_edges <= 4000:
            split_lambda = exact_arboricity(split.graph).value
        else:
            split_lambda = degeneracy(split.graph)  # λ ≤ deg ≤ 2λ−1
        table.add_row(
            n_leaves=n,
            direct_lambda=1,
            direct_edges=inst.graph.n_edges,
            direct_rounds=direct_rounds,
            direct_budget=params.tau_two_approx(1, EPSILON),
            split_edges=split.graph.n_edges,
            split_lambda=split_lambda,
            split_budget=params.tau_two_approx(max(1, split_lambda), EPSILON),
            blowup=round(split_lambda / 1.0, 1),
        )
    table.add_note(
        "split_budget is what a λ-parameterized matching algorithm would pay "
        "after the reduction; the direct algorithm keeps the λ=1 budget"
    )
    return table
