"""E4 — sampling concentration (Lemma 11 / Lemma 12).

Sweep the per-(vertex, group, round) sample budget from a handful of
edges up to the theoretical ``t`` on a dense-core instance, and report
the relative-error quantiles of both estimates together with the
Lemma 12 violation rates (errors beyond ε/12 for β̂, ε/4 for alloc).
Expected shape: error quantiles fall like ~1/√budget; at the
theoretical ``t`` every group is fully sampled and the error is zero.
"""

from __future__ import annotations

from repro.analysis.concentration import collect_error_quantiles, lemma12_violation_rates
from repro.core import params
from repro.core.sampled import SampledRun
from repro.experiments.harness import Scale, register
from repro.graphs.generators import planted_dense_core_instance
from repro.utils.tables import Table

_SIZES: dict[str, tuple[int, list[int], int]] = {
    # scale -> (core side, budgets, rounds); the core side bounds the
    # level-group sizes, so budgets must stay well below it for the
    # error-decay curve to be visible.
    "smoke": (8, [2, 8], 4),
    "normal": (48, [2, 4, 8, 16, 32], 8),
    "full": (96, [2, 4, 8, 16, 32, 64], 12),
}

EPSILON = 0.25
BLOCK = 2


@register(
    "e4",
    "Estimate concentration vs sample budget",
    "L11/L12: t=(1+eps)^{2B} eps^-5 log n samples keep estimates within eps/12 and eps/4 whp",
)
def run(*, scale: Scale = "normal", seed: int = 0) -> Table:
    core, budgets, rounds = _SIZES[scale]
    inst = planted_dense_core_instance(
        core, core, 10 * core, 10 * core, core_density=0.9, seed=seed
    )
    table = Table(title="E4: sampling error vs budget (dense-core instance)")
    t_theory = params.sample_size(BLOCK, EPSILON, inst.graph.n_vertices)
    for budget in budgets + [t_theory]:
        run_obj = SampledRun(
            inst.graph, inst.capacities, EPSILON, block=BLOCK,
            sample_budget=budget, sampler="fast", seed=seed,
        )
        run_obj.run_rounds(rounds)
        beta_q, alloc_q = collect_error_quantiles(run_obj.phase_reports)
        beta_viol, alloc_viol = lemma12_violation_rates(run_obj)
        table.add_row(
            budget=budget,
            theoretical=budget == t_theory,
            beta_err_median=round(beta_q.median, 5),
            beta_err_q99=round(beta_q.q99, 5),
            alloc_err_median=round(alloc_q.median, 5),
            alloc_err_q99=round(alloc_q.q99, 5),
            beta_beyond_eps12=round(beta_viol, 4),
            alloc_beyond_eps4=round(alloc_viol, 4),
        )
    table.add_note(
        f"theoretical t = {t_theory} (Lemma 11 regime); at that budget "
        "every group is fully sampled ⇒ exact estimates"
    )
    table.add_note(f"epsilon/12 = {EPSILON/12:.4f}, epsilon/4 = {EPSILON/4:.4f}")
    return table
