"""E1 — rounds-to-certificate grow like log λ (Theorem 2/9).

Two workload rows per arboricity point:

* ``slow_spread`` — the Theorem-9 Case-2 stress family (dense
  over-allocated core + starving private fringe), where the priority
  gap must grow to ``≈ λ/ε`` before the certificate's mass condition
  can fire; this family makes the ``log λ`` horizon *visible*.
* ``forests`` — benign union-of-forests, where the certificate fires
  almost immediately; included to show the bound is a worst case, not
  a typical cost.

The shape-fit note is the reproduction verdict: on the stress family,
measured rounds must track ``log`` decisively better than ``linear``.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.theory import fit_against_log, shape_verdict
from repro.baselines.exact import optimum_value
from repro.core import params
from repro.core.local_driver import solve_fractional_until_certificate
from repro.experiments.harness import Scale, register
from repro.graphs import degeneracy
from repro.graphs.generators import slow_spread_instance, union_of_forests
from repro.utils.rng import spawn
from repro.utils.tables import Table

_SIZES: dict[str, tuple[list[int], int, int]] = {
    # scale -> (core sweep = lambda targets, width, forest n)
    "smoke": ([2, 4, 8], 3, 60),
    "normal": ([2, 4, 8, 16, 32, 64], 4, 400),
    "full": ([2, 4, 8, 16, 32, 64, 128, 256], 4, 2000),
}

EPSILON = 0.1


@register(
    "e1",
    "Rounds vs arboricity (LOCAL, certificate-stopped)",
    "T2/T9: Algorithm 1 certifies (2+10eps) within ceil(log_{1+eps}(4*lam/eps))+1 rounds",
)
def run(*, scale: Scale = "normal", seed: int = 0) -> Table:
    cores, width, forest_n = _SIZES[scale]
    table = Table(title="E1: certificate round vs arboricity")
    stress_rounds: list[float] = []
    for b in cores:
        inst = slow_spread_instance(b, width=width)
        res = solve_fractional_until_certificate(inst, EPSILON)
        opt = optimum_value(inst)
        bound = params.tau_two_approx(b + 1, EPSILON)
        stress_rounds.append(res.rounds)
        table.add_row(
            family="slow_spread",
            lambda_bound=b + 1,
            degeneracy=degeneracy(inst.graph),
            n=inst.graph.n_vertices,
            rounds=res.rounds,
            paper_budget=bound,
            within_budget=res.rounds <= bound,
            ratio=round(opt / max(res.match_weight, 1e-12), 4),
            ratio_guarantee=params.approx_factor_two_regime(EPSILON),
        )
    # Benign rows: forests of matching λ certificates converge at once.
    for k in cores[: max(2, len(cores) // 2)]:
        rounds_list = []
        for stream in spawn(seed + k, 3):
            inst = union_of_forests(forest_n, forest_n, k, capacity=2, seed=stream)
            rounds_list.append(
                solve_fractional_until_certificate(inst, EPSILON).rounds
            )
        table.add_row(
            family="forests",
            lambda_bound=k,
            n=2 * forest_n,
            rounds=float(np.mean(rounds_list)),
            paper_budget=params.tau_two_approx(k, EPSILON),
            within_budget=max(rounds_list) <= params.tau_two_approx(k, EPSILON),
        )
    if len(cores) >= 3:
        fit = fit_against_log(cores, stress_rounds)
        table.add_note(
            f"stress rounds ≈ {fit.slope:.2f}·log2(λ) + {fit.intercept:.2f} "
            f"(R²={fit.r_squared:.3f})"
        )
        verdict = shape_verdict(cores, stress_rounds)
        best = max(verdict, key=verdict.get)
        table.add_note(
            "stress shape fit R²: "
            + ", ".join(f"{k2}={v:.3f}" for k2, v in sorted(verdict.items()))
            + f" → best: {best}"
        )
    return table
