"""The theorem-driven experiment suite (E1–E11).

The paper is a theory contribution with no evaluation section of its
own; this suite plays the role of its tables and figures (DESIGN.md
§3).  Use :func:`repro.experiments.harness.run_experiment` or the CLI::

    python -m repro.experiments e1 --scale normal
    python -m repro.experiments all --scale smoke
"""

from repro.experiments.harness import (
    REGISTRY,
    ExperimentSpec,
    get_experiment,
    run_experiment,
    run_and_save,
)

__all__ = [
    "REGISTRY",
    "ExperimentSpec",
    "get_experiment",
    "run_experiment",
    "run_and_save",
]
