"""repro — reproduction of "Faster MPC Algorithms for Approximate
Allocation in Uniformly Sparse Graphs" (SPAA 2025, arXiv:2506.04524).

The supported entry point is the :mod:`repro.api` Engine façade —
:class:`Engine` bound to a :class:`SolverConfig`, returning
:class:`AllocationReport` results — re-exported here.  Pluggable
implementations (kernel backends, MPC substrates, pipeline stages)
register through :mod:`repro.registry`.

Subpackages
-----------
``repro.api``
    The unified Engine façade: one typed :class:`SolverConfig`, one
    :class:`AllocationReport` result schema, one lifecycle over the
    cold, warm, MPC and dynamic paths (DESIGN.md §10).
``repro.registry``
    One ``register()``/``resolve()`` protocol over every pluggable
    implementation axis (kernel backends, MPC substrates, pipeline
    stages).
``repro.graphs``
    Bipartite graph substrate, workload generators, arboricity tools.
``repro.local``
    LOCAL model simulator (synchronous message passing).
``repro.mpc``
    MPC model simulator: machines, space accounting, primitives,
    graph exponentiation, round cost model, pluggable substrates
    (object / columnar, DESIGN.md §7).
``repro.kernels``
    The unified kernel layer: segment primitives behind pluggable
    backends (reference / optimized) and cached per-graph
    :class:`~repro.kernels.RoundWorkspace` state (DESIGN.md §6).
``repro.core``
    The paper's algorithms: proportional allocation (Algorithm 1),
    adaptive thresholds (Algorithm 3), sampled phases (Algorithm 2),
    LOCAL and MPC drivers, termination certificates, and the
    composable stage pipeline.
``repro.rounding``
    §6 randomized rounding from fractional to integral allocations.
``repro.boosting``
    Appendix B: (1+ε) boosting via the GGM22 layered-graph framework.
``repro.baselines``
    Exact OPT (Dinic max-flow), greedy, auction, AZM18-in-MPC.
``repro.analysis``
    Metrics, theoretical predictions, concentration diagnostics.
``repro.experiments``
    The theorem-driven experiment suite (E0–E12) and its harness.
``repro.serve``
    The serving layer: resident sessions with warm-started solves and
    the thread-parallel batch executor (DESIGN.md §8).
``repro.dynamic``
    Delta-driven dynamic instances: the typed delta algebra, the
    :class:`~repro.dynamic.DynamicSession` carrying warm state across
    deltas, and reproducible churn scenarios (DESIGN.md §9).
"""

__version__ = "2.0.0"

from repro.graphs import AllocationInstance, BipartiteGraph, build_graph

__all__ = [
    "AllocationInstance",
    "BipartiteGraph",
    "build_graph",
    "Engine",
    "SolverConfig",
    "AllocationReport",
    "__version__",
]

# The façade exports resolve lazily (PEP 562): `from repro import
# Engine` works, but `import repro` alone — and the config-free CLI
# paths (info/generate) — do not pay for loading the whole solver
# stack behind repro.api.
_API_EXPORTS = ("Engine", "SolverConfig", "AllocationReport")


def __getattr__(name: str):
    if name in _API_EXPORTS:
        from repro import api

        return getattr(api, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_API_EXPORTS))
