"""repro — reproduction of "Faster MPC Algorithms for Approximate
Allocation in Uniformly Sparse Graphs" (SPAA 2025, arXiv:2506.04524).

Subpackages
-----------
``repro.graphs``
    Bipartite graph substrate, workload generators, arboricity tools.
``repro.local``
    LOCAL model simulator (synchronous message passing).
``repro.mpc``
    MPC model simulator: machines, space accounting, primitives,
    graph exponentiation, round cost model.
``repro.core``
    The paper's algorithms: proportional allocation (Algorithm 1),
    adaptive thresholds (Algorithm 3), sampled phases (Algorithm 2),
    LOCAL and MPC drivers, termination certificates.
``repro.rounding``
    §6 randomized rounding from fractional to integral allocations.
``repro.boosting``
    Appendix B: (1+ε) boosting via the GGM22 layered-graph framework.
``repro.baselines``
    Exact OPT (Dinic max-flow), greedy, auction, AZM18-in-MPC.
``repro.analysis``
    Metrics, theoretical predictions, concentration diagnostics.
``repro.experiments``
    The theorem-driven experiment suite (E0–E12) and its harness.
``repro.serve``
    The serving layer: resident sessions with warm-started solves and
    the thread-parallel batch executor (DESIGN.md §8).
"""

__version__ = "1.0.0"

from repro.graphs import AllocationInstance, BipartiteGraph, build_graph

__all__ = ["AllocationInstance", "BipartiteGraph", "build_graph", "__version__"]
