"""Algorithm 1 — the proportional allocation dynamics of [AZM18].

State: one priority exponent per right vertex, ``β_v = (1+ε)^{b_v}``,
``b_v`` starting at 0.  Each round:

1. every left vertex splits its unit mass proportionally to its
   neighbours' priorities, ``x_{u,v} = β_v / Σ_{v'∈N_u} β_{v'}``;
2. every right vertex measures ``alloc_v = Σ_{u∈N_v} x_{u,v}``;
3. priorities move one ε-step: up if under-allocated by the threshold
   factor, down if over-allocated, else unchanged.

The integer-exponent representation makes level sets (§4) *exact* —
``L_j = {v : b_v = j − τ}`` is an integer comparison — and the x
computation shifts exponents by the per-neighbourhood maximum before
exponentiating, so the ``τ = Θ(log n/ε²)`` regime of Theorem 20 cannot
overflow (DESIGN.md §5).

Algorithm 3 (Appendix A) differs only in its per-(vertex, round)
decision thresholds ``k_{v,r}``; it is obtained by passing a
:class:`ThresholdSchedule`.  Algorithm 1 is the constant-1 schedule.

Everything is vectorized over CSR segments per the domain guides; one
round costs O(m) numpy work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Protocol, Union

import numpy as np

from repro.core.fractional import FractionalAllocation
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.capacities import validate_capacities
from repro.kernels import RoundWorkspace, proportional_round, resolve_workspace
from repro.utils.validation import check_fraction

__all__ = [
    "ThresholdSchedule",
    "ConstantThresholds",
    "ReplayThresholds",
    "ProportionalRun",
    "compute_x_alloc",
    "match_weight_from_alloc",
    "validate_initial_exponents",
    "init_exponent_state",
    "level_indices_from",
    "top_level_mask_from",
    "bottom_level_mask_from",
]

ThresholdValue = Union[float, np.ndarray]


class ThresholdSchedule(Protocol):
    """Per-round decision thresholds ``k_{v,r}`` (Algorithm 3).

    ``thresholds(round_index, n_right)`` returns a scalar or an
    ``(n_right,)`` array of ``k`` values for the given 0-based round.
    Algorithm 1 is the constant schedule ``k ≡ 1``.
    """

    def thresholds(self, round_index: int, n_right: int) -> ThresholdValue: ...


@dataclass(frozen=True)
class ConstantThresholds:
    """``k_{v,r} ≡ k`` — Algorithm 1 when ``k = 1``."""

    k: float = 1.0

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise ValueError(f"threshold k must be positive, got {self.k}")

    def thresholds(self, round_index: int, n_right: int) -> float:
        return self.k


@dataclass
class ReplayThresholds:
    """Explicit per-round threshold arrays (Lemma 13 reconstructions)."""

    table: list[np.ndarray] = field(default_factory=list)

    def thresholds(self, round_index: int, n_right: int) -> np.ndarray:
        if round_index >= len(self.table):
            raise IndexError(
                f"no thresholds recorded for round {round_index} "
                f"(have {len(self.table)})"
            )
        arr = self.table[round_index]
        if arr.shape != (n_right,):
            raise ValueError(f"threshold array has shape {arr.shape}")
        return arr


def compute_x_alloc(
    graph: BipartiteGraph,
    beta_exp: np.ndarray,
    log1p_eps: float,
    *,
    workspace: Optional[RoundWorkspace] = None,
) -> tuple[np.ndarray, np.ndarray]:
    """One evaluation of lines 2–3 of Algorithm 1.

    Returns ``(x, alloc)`` where ``x`` is per-edge in canonical order
    (identical to L-CSR slot order by construction) and ``alloc`` is
    per right vertex.  Numerically: within each left neighbourhood the
    exponents are shifted by their maximum, so every weight lies in
    ``(0, 1]`` and the denominator in ``[1, deg]`` — no overflow at any
    exponent magnitude (DESIGN.md §5).  The heavy lifting is the shared
    round kernel in :mod:`repro.kernels` (DESIGN.md §6).
    """
    return proportional_round(
        resolve_workspace(graph, workspace), beta_exp, log1p_eps
    )


def match_weight_from_alloc(capacities: np.ndarray, alloc: np.ndarray) -> float:
    """``MatchWeight = Σ_v min(C_v, alloc_v)`` — the weight of the
    scaled output allocation (§4)."""
    return float(np.minimum(capacities, alloc).sum())


def validate_initial_exponents(
    graph: BipartiteGraph, initial_exponents: Optional[np.ndarray]
) -> Optional[np.ndarray]:
    """Normalize a warm-start exponent vector (DESIGN.md §8).

    ``None`` means the paper's cold start (``b ≡ 0``).  Otherwise the
    vector must hold one integer exponent per right vertex; a frozen
    int64 copy is returned so runs can keep it as their level-set base
    without aliasing caller state.
    """
    if initial_exponents is None:
        return None
    base = np.asarray(initial_exponents)
    if base.shape != (graph.n_right,):
        raise ValueError(
            f"initial_exponents must have shape ({graph.n_right},), "
            f"got {base.shape}"
        )
    if not np.issubdtype(base.dtype, np.integer):
        raise TypeError(
            "initial_exponents must be integer β exponents, got dtype "
            f"{base.dtype}"
        )
    base = base.astype(np.int64, copy=True)
    base.setflags(write=False)
    return base


def init_exponent_state(
    graph: BipartiteGraph, initial_exponents: Optional[np.ndarray]
) -> tuple[Optional[np.ndarray], np.ndarray]:
    """``(base, beta_exp)`` starting state shared by the run classes:
    cold start gives ``(None, zeros)``, a warm start gives the frozen
    base plus a mutable working copy."""
    base = validate_initial_exponents(graph, initial_exponents)
    if base is None:
        return None, np.zeros(graph.n_right, dtype=np.int64)
    return base, base.copy()


def level_indices_from(
    beta_exp: np.ndarray, base: Optional[np.ndarray], rounds: int
) -> np.ndarray:
    """Level index ``j ∈ [0, 2r]`` per right vertex, measured relative
    to the run's base vector (§4; DESIGN.md §8 for warm starts)."""
    if base is None:
        return beta_exp + rounds
    return beta_exp - base + rounds


def top_level_mask_from(
    beta_exp: np.ndarray, base: Optional[np.ndarray], rounds: int
) -> np.ndarray:
    """``L_{2r}`` membership: β rose every round of this run."""
    if base is None:
        return beta_exp == rounds
    return beta_exp == base + rounds


def bottom_level_mask_from(
    beta_exp: np.ndarray, base: Optional[np.ndarray], rounds: int
) -> np.ndarray:
    """``L_0`` membership: β fell every round of this run."""
    if base is None:
        return beta_exp == -rounds
    return beta_exp == base - rounds


class ProportionalRun:
    """A mutable execution of Algorithm 1/3 on one instance.

    Typical use::

        run = ProportionalRun(graph, caps, epsilon=0.1)
        run.run(tau)
        out = run.fractional_allocation()   # lines 5-6 scaling
        w = run.match_weight()

    After ``r`` completed rounds, ``x_slots``/``alloc`` hold the values
    computed *during* round ``r`` (i.e. from the β at the start of that
    round), while ``beta_exp`` holds the post-update priorities — the
    exact state the §4 analysis inspects.
    """

    def __init__(
        self,
        graph: BipartiteGraph,
        capacities: np.ndarray,
        epsilon: float,
        *,
        thresholds: Optional[ThresholdSchedule] = None,
        workspace: Optional[RoundWorkspace] = None,
        initial_exponents: Optional[np.ndarray] = None,
    ):
        self.graph = graph
        self.capacities = validate_capacities(graph, capacities).astype(np.float64)
        self.epsilon = check_fraction(epsilon, "epsilon")
        self.log1p_eps = float(np.log1p(self.epsilon))
        self.schedule: ThresholdSchedule = thresholds or ConstantThresholds(1.0)
        self.workspace = resolve_workspace(graph, workspace)
        self.base_exponents, self.beta_exp = init_exponent_state(
            graph, initial_exponents
        )
        self.rounds_completed = 0
        self.x_slots: Optional[np.ndarray] = None
        self.alloc: Optional[np.ndarray] = None
        self.last_decisions: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Dynamics
    # ------------------------------------------------------------------
    def compute_x_alloc(self) -> tuple[np.ndarray, np.ndarray]:
        """Evaluate x/alloc for the *current* priorities (pure)."""
        return compute_x_alloc(
            self.graph, self.beta_exp, self.log1p_eps, workspace=self.workspace
        )

    def decide(self, alloc: np.ndarray, k: ThresholdValue) -> np.ndarray:
        """Line-4 decisions from true allocs: +1 (raise β), −1, or 0."""
        caps = self.capacities
        k_eps = np.asarray(k, dtype=np.float64) * self.epsilon
        increase = alloc <= caps / (1.0 + k_eps)
        decrease = alloc >= caps * (1.0 + k_eps)
        return increase.astype(np.int64) - decrease.astype(np.int64)

    def step(self) -> np.ndarray:
        """Execute one full round; returns the ±1/0 decision vector."""
        x, alloc = self.compute_x_alloc()
        k = self.schedule.thresholds(self.rounds_completed, self.graph.n_right)
        decisions = self.decide(alloc, k)
        self.beta_exp += decisions
        self.rounds_completed += 1
        self.x_slots, self.alloc = x, alloc
        self.last_decisions = decisions
        return decisions

    def step_with_decisions(self, decisions: np.ndarray) -> None:
        """Apply externally chosen decisions (the sampled Algorithm 2
        path: decisions come from *estimated* allocs, but the recorded
        x/alloc are the true ones, which Lemma 13's reconstruction and
        the §4 analysis consume)."""
        decisions = np.asarray(decisions, dtype=np.int64)
        if decisions.shape != (self.graph.n_right,):
            raise ValueError(f"decisions must have shape ({self.graph.n_right},)")
        if decisions.size and (decisions.min() < -1 or decisions.max() > 1):
            raise ValueError("decisions must be in {-1, 0, +1}")
        x, alloc = self.compute_x_alloc()
        self.beta_exp += decisions
        self.rounds_completed += 1
        self.x_slots, self.alloc = x, alloc
        self.last_decisions = decisions

    def run(self, rounds: int) -> "ProportionalRun":
        """Execute ``rounds`` further rounds; returns self."""
        if rounds < 0:
            raise ValueError(f"rounds must be >= 0, got {rounds}")
        for _ in range(rounds):
            self.step()
        return self

    # ------------------------------------------------------------------
    # Outputs & analysis views
    # ------------------------------------------------------------------
    def _require_started(self) -> None:
        if self.rounds_completed == 0 or self.alloc is None:
            raise RuntimeError("no rounds executed yet; call step()/run() first")

    def match_weight(self) -> float:
        """``Σ_v min(C_v, alloc_v)`` for the last computed allocs."""
        self._require_started()
        return match_weight_from_alloc(self.capacities, self.alloc)

    def fractional_allocation(self) -> FractionalAllocation:
        """Lines 5–6: scale the last x down to feasibility."""
        self._require_started()
        raw = FractionalAllocation(x=self.x_slots)
        return raw.scaled_into_feasibility(self.graph, self.capacities)

    def level_indices(self) -> np.ndarray:
        """Level index ``j ∈ [0, 2r]`` of every right vertex, where
        ``L_j = {v : β_v = (1+ε)^{j−r}}`` (§4).

        Warm-started runs (``initial_exponents``) measure levels
        relative to their starting vector: the §4 level sets track how
        a priority moved over *this* run's rounds, so the base shifts
        out (DESIGN.md §8).
        """
        return level_indices_from(
            self.beta_exp, self.base_exponents, self.rounds_completed
        )

    def level_histogram(self) -> np.ndarray:
        """``|L_j|`` for ``j = 0..2r``."""
        return np.bincount(self.level_indices(), minlength=2 * self.rounds_completed + 1)

    def top_level_mask(self) -> np.ndarray:
        """Membership mask of ``L_{2r}`` (β increased every round)."""
        return top_level_mask_from(
            self.beta_exp, self.base_exponents, self.rounds_completed
        )

    def bottom_level_mask(self) -> np.ndarray:
        """Membership mask of ``L_0`` (β decreased every round)."""
        return bottom_level_mask_from(
            self.beta_exp, self.base_exponents, self.rounds_completed
        )

    def snapshot(self) -> dict:
        """Cheap state dump for traces and cross-implementation tests."""
        return {
            "round": self.rounds_completed,
            "beta_exp": self.beta_exp.copy(),
            "alloc": None if self.alloc is None else self.alloc.copy(),
            "x": None if self.x_slots is None else self.x_slots.copy(),
        }
